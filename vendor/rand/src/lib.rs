//! Offline stand-in for the `rand` crate.
//!
//! This workspace builds in hermetic environments with no crates.io
//! access, so the external dependencies are vendored as minimal,
//! API-compatible shims. This crate reimplements exactly the subset of
//! `rand` 0.8 that the workspace uses:
//!
//! * [`rngs::StdRng`] — a deterministic, seedable generator
//!   (xoshiro256++, seeded via SplitMix64 like `rand`'s
//!   `seed_from_u64`);
//! * [`Rng`] — `gen`, `gen_range` (integer and float ranges, inclusive
//!   and exclusive), `gen_bool`;
//! * [`SeedableRng`] — `from_seed`, `seed_from_u64`;
//! * [`seq::SliceRandom`] — `shuffle` and `choose`.
//!
//! Determinism is the whole point: the simulation's reproducibility
//! guarantees (identical seeds ⇒ identical runs) hold across platforms
//! because the generator and all derivations here are fixed-width
//! integer arithmetic with no platform dependence.

#![forbid(unsafe_code)]

use std::ops::{Range, RangeInclusive};

/// A random number generator: the core sampling interface.
pub trait Rng {
    /// The next 64 uniformly random bits.
    fn next_u64(&mut self) -> u64;

    /// The next 32 uniformly random bits.
    fn next_u32(&mut self) -> u32 {
        (self.next_u64() >> 32) as u32
    }

    /// Sample a value of type `T` from its standard distribution
    /// (uniform over the type's domain; `[0, 1)` for floats).
    fn gen<T: Standard>(&mut self) -> T
    where
        Self: Sized,
    {
        T::sample(self)
    }

    /// Sample uniformly from a range (`a..b` or `a..=b`).
    ///
    /// # Panics
    /// Panics if the range is empty.
    fn gen_range<T, R>(&mut self, range: R) -> T
    where
        R: SampleRange<T>,
        Self: Sized,
    {
        range.sample_single(self)
    }

    /// `true` with probability `p`.
    ///
    /// # Panics
    /// Panics if `p` is not in `[0, 1]`.
    fn gen_bool(&mut self, p: f64) -> bool
    where
        Self: Sized,
    {
        assert!((0.0..=1.0).contains(&p), "gen_bool: p out of range: {p}");
        f64::sample(self) < p
    }
}

impl<R: Rng + ?Sized> Rng for &mut R {
    fn next_u64(&mut self) -> u64 {
        (**self).next_u64()
    }
}

/// Types samplable from their "standard" distribution via [`Rng::gen`].
pub trait Standard: Sized {
    /// Draw one value.
    fn sample<R: Rng>(rng: &mut R) -> Self;
}

impl Standard for f64 {
    fn sample<R: Rng>(rng: &mut R) -> Self {
        // 53 uniform bits in [0, 1), the standard conversion.
        (rng.next_u64() >> 11) as f64 * (1.0 / (1u64 << 53) as f64)
    }
}

impl Standard for f32 {
    fn sample<R: Rng>(rng: &mut R) -> Self {
        (rng.next_u32() >> 8) as f32 * (1.0 / (1u32 << 24) as f32)
    }
}

impl Standard for bool {
    fn sample<R: Rng>(rng: &mut R) -> Self {
        rng.next_u64() & 1 == 1
    }
}

impl Standard for u64 {
    fn sample<R: Rng>(rng: &mut R) -> Self {
        rng.next_u64()
    }
}

impl Standard for u32 {
    fn sample<R: Rng>(rng: &mut R) -> Self {
        rng.next_u32()
    }
}

/// Ranges that [`Rng::gen_range`] can sample from.
pub trait SampleRange<T> {
    /// Sample one value uniformly from the range.
    fn sample_single<R: Rng>(self, rng: &mut R) -> T;
}

/// Uniform `u64` in `[0, n)` by Lemire-style rejection (unbiased).
fn uniform_u64_below<R: Rng>(rng: &mut R, n: u64) -> u64 {
    assert!(n > 0, "gen_range: empty range");
    if n.is_power_of_two() {
        return rng.next_u64() & (n - 1);
    }
    // Rejection zone keeps the mapping exactly uniform.
    let zone = u64::MAX - (u64::MAX - n + 1) % n;
    loop {
        let v = rng.next_u64();
        if v <= zone {
            return v % n;
        }
    }
}

macro_rules! impl_int_range {
    ($($t:ty),*) => {$(
        impl SampleRange<$t> for Range<$t> {
            fn sample_single<R: Rng>(self, rng: &mut R) -> $t {
                assert!(self.start < self.end, "gen_range: empty range");
                let span = (self.end as i128 - self.start as i128) as u64;
                let off = uniform_u64_below(rng, span);
                (self.start as i128 + off as i128) as $t
            }
        }
        impl SampleRange<$t> for RangeInclusive<$t> {
            fn sample_single<R: Rng>(self, rng: &mut R) -> $t {
                let (lo, hi) = (*self.start(), *self.end());
                assert!(lo <= hi, "gen_range: empty range");
                let span = (hi as i128 - lo as i128) as u128 + 1;
                if span > u64::MAX as u128 {
                    // Whole-domain request: any value is uniform.
                    return rng.next_u64() as $t;
                }
                let off = uniform_u64_below(rng, span as u64);
                (lo as i128 + off as i128) as $t
            }
        }
    )*};
}

impl_int_range!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);

macro_rules! impl_float_range {
    ($($t:ty),*) => {$(
        impl SampleRange<$t> for Range<$t> {
            fn sample_single<R: Rng>(self, rng: &mut R) -> $t {
                assert!(self.start < self.end, "gen_range: empty range");
                let u = <$t as Standard>::sample(rng);
                self.start + u * (self.end - self.start)
            }
        }
        impl SampleRange<$t> for RangeInclusive<$t> {
            fn sample_single<R: Rng>(self, rng: &mut R) -> $t {
                let (lo, hi) = (*self.start(), *self.end());
                assert!(lo <= hi, "gen_range: empty range");
                // Closed-interval sample: u spans [0, 1] *inclusive*
                // (53 bits over 2^53 - 1), so `hi` is reachable.
                let u = (rng.next_u64() >> 11) as $t / ((1u64 << 53) - 1) as $t;
                lo + u * (hi - lo)
            }
        }
    )*};
}

impl_float_range!(f32, f64);

/// RNGs constructible from a fixed-size seed.
pub trait SeedableRng: Sized {
    /// The seed type (a byte array).
    type Seed: Default + AsMut<[u8]>;

    /// Construct from a full seed.
    fn from_seed(seed: Self::Seed) -> Self;

    /// Construct from a `u64`, expanded with SplitMix64 — the same
    /// expansion `rand` uses, so seeds are portable in spirit.
    fn seed_from_u64(mut state: u64) -> Self {
        let mut seed = Self::Seed::default();
        for chunk in seed.as_mut().chunks_mut(8) {
            // SplitMix64 step.
            state = state.wrapping_add(0x9E37_79B9_7F4A_7C15);
            let mut z = state;
            z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
            z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
            z ^= z >> 31;
            for (dst, src) in chunk.iter_mut().zip(z.to_le_bytes()) {
                *dst = src;
            }
        }
        Self::from_seed(seed)
    }
}

/// Concrete generators.
pub mod rngs {
    use super::{Rng, SeedableRng};

    /// The workspace's standard deterministic RNG: xoshiro256++.
    ///
    /// Not the ChaCha12 generator real `rand` uses, but statistically
    /// strong, fast, and — what matters here — fully deterministic for
    /// a given seed.
    #[derive(Debug, Clone)]
    pub struct StdRng {
        s: [u64; 4],
    }

    impl Rng for StdRng {
        fn next_u64(&mut self) -> u64 {
            let result = self.s[0]
                .wrapping_add(self.s[3])
                .rotate_left(23)
                .wrapping_add(self.s[0]);
            let t = self.s[1] << 17;
            self.s[2] ^= self.s[0];
            self.s[3] ^= self.s[1];
            self.s[1] ^= self.s[2];
            self.s[0] ^= self.s[3];
            self.s[2] ^= t;
            self.s[3] = self.s[3].rotate_left(45);
            result
        }
    }

    impl SeedableRng for StdRng {
        type Seed = [u8; 32];

        fn from_seed(seed: Self::Seed) -> Self {
            let mut s = [0u64; 4];
            for (i, word) in s.iter_mut().enumerate() {
                let mut b = [0u8; 8];
                b.copy_from_slice(&seed[i * 8..i * 8 + 8]);
                *word = u64::from_le_bytes(b);
            }
            // The all-zero state is a fixed point; nudge it.
            if s == [0; 4] {
                s = [0x9E37_79B9_7F4A_7C15, 1, 2, 3];
            }
            StdRng { s }
        }
    }
}

/// Sequence-related helpers.
pub mod seq {
    use super::Rng;

    /// Random operations on slices.
    pub trait SliceRandom {
        /// The element type.
        type Item;

        /// Fisher–Yates shuffle in place.
        fn shuffle<R: Rng>(&mut self, rng: &mut R);

        /// A uniformly random element, or `None` if empty.
        fn choose<R: Rng>(&self, rng: &mut R) -> Option<&Self::Item>;
    }

    impl<T> SliceRandom for [T] {
        type Item = T;

        fn shuffle<R: Rng>(&mut self, rng: &mut R) {
            for i in (1..self.len()).rev() {
                let j = super::uniform_u64_below(rng, i as u64 + 1) as usize;
                self.swap(i, j);
            }
        }

        fn choose<R: Rng>(&self, rng: &mut R) -> Option<&T> {
            if self.is_empty() {
                None
            } else {
                let i = super::uniform_u64_below(rng, self.len() as u64) as usize;
                Some(&self[i])
            }
        }
    }
}

/// Re-exports mirroring `rand::prelude`.
pub mod prelude {
    pub use crate::rngs::StdRng;
    pub use crate::seq::SliceRandom;
    pub use crate::{Rng, SeedableRng};
}

#[cfg(test)]
mod tests {
    use super::prelude::*;

    #[test]
    fn deterministic_across_instances() {
        let mut a = StdRng::seed_from_u64(42);
        let mut b = StdRng::seed_from_u64(42);
        for _ in 0..100 {
            assert_eq!(a.next_u64(), b.next_u64());
        }
    }

    #[test]
    fn seeds_differ() {
        let mut a = StdRng::seed_from_u64(1);
        let mut b = StdRng::seed_from_u64(2);
        assert_ne!(
            (0..4).map(|_| a.next_u64()).collect::<Vec<_>>(),
            (0..4).map(|_| b.next_u64()).collect::<Vec<_>>()
        );
    }

    #[test]
    fn gen_range_bounds_hold() {
        let mut rng = StdRng::seed_from_u64(7);
        for _ in 0..1000 {
            let v = rng.gen_range(3u32..17);
            assert!((3..17).contains(&v));
            let w = rng.gen_range(1u64..=5);
            assert!((1..=5).contains(&w));
            let f = rng.gen_range(0.25f64..0.75);
            assert!((0.25..0.75).contains(&f));
            let u: f64 = rng.gen();
            assert!((0.0..1.0).contains(&u));
        }
    }

    #[test]
    fn shuffle_permutes() {
        let mut rng = StdRng::seed_from_u64(3);
        let mut v: Vec<u32> = (0..50).collect();
        v.shuffle(&mut rng);
        let mut sorted = v.clone();
        sorted.sort_unstable();
        assert_eq!(sorted, (0..50).collect::<Vec<_>>());
        assert_ne!(v, sorted, "shuffle left the identity permutation");
    }

    #[test]
    fn gen_bool_extremes() {
        let mut rng = StdRng::seed_from_u64(9);
        assert!(!rng.gen_bool(0.0));
        assert!(rng.gen_bool(1.0));
    }
}
