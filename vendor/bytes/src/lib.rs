//! Offline stand-in for the `bytes` crate.
//!
//! Implements the subset the wire codec uses: [`Bytes`] (a cheaply
//! cloneable, sliceable, shared byte view), [`BytesMut`] (a growable
//! buffer), and the [`Buf`]/[`BufMut`] read/write-cursor traits with
//! big-endian integer accessors. Semantics match `bytes` 1.x for this
//! subset, including panics on under-/overflow reads, so the codec's
//! bounds discipline is exercised the same way.

#![forbid(unsafe_code)]

use std::fmt;
use std::ops::{Deref, DerefMut, RangeBounds};
use std::sync::Arc;

/// A cheaply cloneable, immutable view into shared byte storage.
#[derive(Clone, Default)]
pub struct Bytes {
    data: Arc<[u8]>,
    start: usize,
    end: usize,
}

impl Bytes {
    /// An empty buffer.
    pub fn new() -> Bytes {
        Bytes::from_vec(Vec::new())
    }

    /// Wrap a static byte slice (no copy in spirit; here, one upfront).
    pub fn from_static(bytes: &'static [u8]) -> Bytes {
        Bytes::from_vec(bytes.to_vec())
    }

    fn from_vec(v: Vec<u8>) -> Bytes {
        let end = v.len();
        Bytes {
            data: v.into(),
            start: 0,
            end,
        }
    }

    /// Bytes remaining in the view.
    pub fn len(&self) -> usize {
        self.end - self.start
    }

    /// `true` if no bytes remain.
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }

    /// A sub-view of `range` (relative to this view), sharing storage.
    ///
    /// # Panics
    /// Panics if the range is out of bounds.
    pub fn slice(&self, range: impl RangeBounds<usize>) -> Bytes {
        use std::ops::Bound;
        let lo = match range.start_bound() {
            Bound::Included(&n) => n,
            Bound::Excluded(&n) => n + 1,
            Bound::Unbounded => 0,
        };
        let hi = match range.end_bound() {
            Bound::Included(&n) => n + 1,
            Bound::Excluded(&n) => n,
            Bound::Unbounded => self.len(),
        };
        assert!(
            lo <= hi && hi <= self.len(),
            "slice out of bounds: {lo}..{hi} of {}",
            self.len()
        );
        Bytes {
            data: Arc::clone(&self.data),
            start: self.start + lo,
            end: self.start + hi,
        }
    }

    /// Split off and return the first `at` bytes, advancing `self`.
    ///
    /// # Panics
    /// Panics if `at > self.len()`.
    pub fn split_to(&mut self, at: usize) -> Bytes {
        assert!(at <= self.len(), "split_to out of bounds: {at}");
        let head = Bytes {
            data: Arc::clone(&self.data),
            start: self.start,
            end: self.start + at,
        };
        self.start += at;
        head
    }

    /// Copy the remaining bytes into a fresh `Vec`.
    pub fn to_vec(&self) -> Vec<u8> {
        self.as_slice().to_vec()
    }

    fn as_slice(&self) -> &[u8] {
        &self.data[self.start..self.end]
    }
}

impl Deref for Bytes {
    type Target = [u8];
    fn deref(&self) -> &[u8] {
        self.as_slice()
    }
}

impl AsRef<[u8]> for Bytes {
    fn as_ref(&self) -> &[u8] {
        self.as_slice()
    }
}

impl From<Vec<u8>> for Bytes {
    fn from(v: Vec<u8>) -> Bytes {
        Bytes::from_vec(v)
    }
}

impl From<&'static [u8]> for Bytes {
    fn from(v: &'static [u8]) -> Bytes {
        Bytes::from_static(v)
    }
}

impl PartialEq for Bytes {
    fn eq(&self, other: &Bytes) -> bool {
        self.as_slice() == other.as_slice()
    }
}

impl Eq for Bytes {}

impl PartialEq<[u8]> for Bytes {
    fn eq(&self, other: &[u8]) -> bool {
        self.as_slice() == other
    }
}

impl std::hash::Hash for Bytes {
    fn hash<H: std::hash::Hasher>(&self, state: &mut H) {
        self.as_slice().hash(state);
    }
}

impl fmt::Debug for Bytes {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "b\"")?;
        for &b in self.as_slice() {
            for esc in std::ascii::escape_default(b) {
                write!(f, "{}", esc as char)?;
            }
        }
        write!(f, "\"")
    }
}

/// A growable byte buffer for building messages.
#[derive(Clone, Default, PartialEq, Eq)]
pub struct BytesMut {
    buf: Vec<u8>,
}

impl BytesMut {
    /// An empty buffer.
    pub fn new() -> BytesMut {
        BytesMut { buf: Vec::new() }
    }

    /// An empty buffer with reserved capacity.
    pub fn with_capacity(cap: usize) -> BytesMut {
        BytesMut {
            buf: Vec::with_capacity(cap),
        }
    }

    /// Bytes written so far.
    pub fn len(&self) -> usize {
        self.buf.len()
    }

    /// `true` if nothing has been written.
    pub fn is_empty(&self) -> bool {
        self.buf.is_empty()
    }

    /// Append a byte slice.
    pub fn extend_from_slice(&mut self, extend: &[u8]) {
        self.buf.extend_from_slice(extend);
    }

    /// Freeze into an immutable, shareable [`Bytes`].
    pub fn freeze(self) -> Bytes {
        Bytes::from_vec(self.buf)
    }
}

impl Deref for BytesMut {
    type Target = [u8];
    fn deref(&self) -> &[u8] {
        &self.buf
    }
}

impl DerefMut for BytesMut {
    fn deref_mut(&mut self) -> &mut [u8] {
        &mut self.buf
    }
}

impl AsRef<[u8]> for BytesMut {
    fn as_ref(&self) -> &[u8] {
        &self.buf
    }
}

impl fmt::Debug for BytesMut {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        fmt::Debug::fmt(&Bytes::from_vec(self.buf.clone()), f)
    }
}

/// Read cursor over a byte source; integer reads are big-endian.
///
/// All `get_*` methods panic if fewer than the required bytes remain,
/// matching the `bytes` crate.
pub trait Buf {
    /// Bytes left to read.
    fn remaining(&self) -> usize;

    /// `true` if any bytes remain.
    fn has_remaining(&self) -> bool {
        self.remaining() > 0
    }

    /// Skip `cnt` bytes.
    fn advance(&mut self, cnt: usize);

    /// Copy out exactly `dst.len()` bytes.
    fn copy_to_slice(&mut self, dst: &mut [u8]);

    /// Read one byte.
    fn get_u8(&mut self) -> u8 {
        let mut b = [0u8; 1];
        self.copy_to_slice(&mut b);
        b[0]
    }

    /// Read a big-endian `u16`.
    fn get_u16(&mut self) -> u16 {
        let mut b = [0u8; 2];
        self.copy_to_slice(&mut b);
        u16::from_be_bytes(b)
    }

    /// Read a big-endian `u32`.
    fn get_u32(&mut self) -> u32 {
        let mut b = [0u8; 4];
        self.copy_to_slice(&mut b);
        u32::from_be_bytes(b)
    }

    /// Read a big-endian `i32`.
    fn get_i32(&mut self) -> i32 {
        let mut b = [0u8; 4];
        self.copy_to_slice(&mut b);
        i32::from_be_bytes(b)
    }

    /// Read a big-endian `u64`.
    fn get_u64(&mut self) -> u64 {
        let mut b = [0u8; 8];
        self.copy_to_slice(&mut b);
        u64::from_be_bytes(b)
    }
}

impl Buf for Bytes {
    fn remaining(&self) -> usize {
        self.len()
    }

    fn advance(&mut self, cnt: usize) {
        assert!(cnt <= self.len(), "advance past end of buffer");
        self.start += cnt;
    }

    fn copy_to_slice(&mut self, dst: &mut [u8]) {
        assert!(dst.len() <= self.len(), "read past end of buffer");
        dst.copy_from_slice(&self.data[self.start..self.start + dst.len()]);
        self.start += dst.len();
    }
}

/// Write cursor; integer writes are big-endian.
pub trait BufMut {
    /// Append raw bytes.
    fn put_slice(&mut self, src: &[u8]);

    /// Write one byte.
    fn put_u8(&mut self, n: u8) {
        self.put_slice(&[n]);
    }

    /// Write a big-endian `u16`.
    fn put_u16(&mut self, n: u16) {
        self.put_slice(&n.to_be_bytes());
    }

    /// Write a big-endian `u32`.
    fn put_u32(&mut self, n: u32) {
        self.put_slice(&n.to_be_bytes());
    }

    /// Write a big-endian `i32`.
    fn put_i32(&mut self, n: i32) {
        self.put_slice(&n.to_be_bytes());
    }

    /// Write a big-endian `u64`.
    fn put_u64(&mut self, n: u64) {
        self.put_slice(&n.to_be_bytes());
    }
}

impl BufMut for BytesMut {
    fn put_slice(&mut self, src: &[u8]) {
        self.buf.extend_from_slice(src);
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn roundtrip_integers() {
        let mut w = BytesMut::new();
        w.put_u8(0xAB);
        w.put_u16(0x1234);
        w.put_u32(0xDEAD_BEEF);
        w.put_i32(-7);
        let mut r = w.freeze();
        assert_eq!(r.remaining(), 11);
        assert_eq!(r.get_u8(), 0xAB);
        assert_eq!(r.get_u16(), 0x1234);
        assert_eq!(r.get_u32(), 0xDEAD_BEEF);
        assert_eq!(r.get_i32(), -7);
        assert_eq!(r.remaining(), 0);
    }

    #[test]
    fn slice_and_split_share_storage() {
        let b = Bytes::from(vec![1u8, 2, 3, 4, 5]);
        let mid = b.slice(1..4);
        assert_eq!(&mid[..], &[2, 3, 4]);
        let mut rest = b.clone();
        let head = rest.split_to(2);
        assert_eq!(&head[..], &[1, 2]);
        assert_eq!(&rest[..], &[3, 4, 5]);
        assert_eq!(b.len(), 5, "originals are unaffected");
    }

    #[test]
    #[should_panic(expected = "read past end")]
    fn underflow_read_panics() {
        let mut b = Bytes::from(vec![1u8]);
        let _ = b.get_u16();
    }

    #[test]
    fn big_endian_wire_order() {
        let mut w = BytesMut::new();
        w.put_u16(0x0102);
        assert_eq!(&w[..], &[1, 2]);
    }
}
