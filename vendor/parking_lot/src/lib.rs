//! Offline stand-in for `parking_lot`, backed by `std::sync`.
//!
//! Provides [`Mutex`] and [`RwLock`] with `parking_lot`'s ergonomics —
//! `lock()` returns the guard directly, no poisoning `Result`. A
//! poisoned std lock (a panic while held) here just yields the inner
//! guard, matching `parking_lot`'s "no poisoning" semantics.

#![forbid(unsafe_code)]

use std::fmt;
use std::sync::{MutexGuard, RwLockReadGuard, RwLockWriteGuard};

/// A mutual-exclusion lock without poisoning.
#[derive(Default)]
pub struct Mutex<T: ?Sized> {
    inner: std::sync::Mutex<T>,
}

impl<T> Mutex<T> {
    /// Create a new mutex holding `value`.
    pub fn new(value: T) -> Mutex<T> {
        Mutex {
            inner: std::sync::Mutex::new(value),
        }
    }

    /// Consume the mutex, returning the inner value.
    pub fn into_inner(self) -> T {
        self.inner
            .into_inner()
            .unwrap_or_else(|poison| poison.into_inner())
    }
}

impl<T: ?Sized> Mutex<T> {
    /// Acquire the lock, blocking until available.
    pub fn lock(&self) -> MutexGuard<'_, T> {
        self.inner
            .lock()
            .unwrap_or_else(|poison| poison.into_inner())
    }

    /// Try to acquire the lock without blocking.
    pub fn try_lock(&self) -> Option<MutexGuard<'_, T>> {
        match self.inner.try_lock() {
            Ok(g) => Some(g),
            Err(std::sync::TryLockError::Poisoned(p)) => Some(p.into_inner()),
            Err(std::sync::TryLockError::WouldBlock) => None,
        }
    }

    /// Mutable access without locking (requires `&mut self`).
    pub fn get_mut(&mut self) -> &mut T {
        self.inner
            .get_mut()
            .unwrap_or_else(|poison| poison.into_inner())
    }
}

impl<T: fmt::Debug> fmt::Debug for Mutex<T> {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self.try_lock() {
            Some(g) => f.debug_tuple("Mutex").field(&&*g).finish(),
            None => f.write_str("Mutex(<locked>)"),
        }
    }
}

/// A reader-writer lock without poisoning.
#[derive(Default)]
pub struct RwLock<T: ?Sized> {
    inner: std::sync::RwLock<T>,
}

impl<T> RwLock<T> {
    /// Create a new lock holding `value`.
    pub fn new(value: T) -> RwLock<T> {
        RwLock {
            inner: std::sync::RwLock::new(value),
        }
    }
}

impl<T: ?Sized> RwLock<T> {
    /// Acquire a shared read guard.
    pub fn read(&self) -> RwLockReadGuard<'_, T> {
        self.inner
            .read()
            .unwrap_or_else(|poison| poison.into_inner())
    }

    /// Acquire an exclusive write guard.
    pub fn write(&self) -> RwLockWriteGuard<'_, T> {
        self.inner
            .write()
            .unwrap_or_else(|poison| poison.into_inner())
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::sync::Arc;

    #[test]
    fn lock_returns_guard_directly() {
        let m = Mutex::new(5);
        *m.lock() += 1;
        assert_eq!(*m.lock(), 6);
    }

    #[test]
    fn shared_across_threads() {
        let m = Arc::new(Mutex::new(0u64));
        let handles: Vec<_> = (0..4)
            .map(|_| {
                let m = Arc::clone(&m);
                std::thread::spawn(move || {
                    for _ in 0..1000 {
                        *m.lock() += 1;
                    }
                })
            })
            .collect();
        for h in handles {
            h.join().unwrap();
        }
        assert_eq!(*m.lock(), 4000);
    }

    #[test]
    fn rwlock_read_write() {
        let l = RwLock::new(vec![1, 2, 3]);
        assert_eq!(l.read().len(), 3);
        l.write().push(4);
        assert_eq!(l.read().len(), 4);
    }
}
