//! Offline stand-in for `criterion`: a minimal statistics-free
//! benchmark harness with criterion's API shape.
//!
//! Benchmarks declared with [`criterion_group!`]/[`criterion_main!`]
//! compile to ordinary `harness = false` bench binaries. Each
//! `Bencher::iter` target is warmed up briefly, then timed for a fixed
//! wall-clock window, and the mean iteration time is printed:
//!
//! ```text
//! spf_full/20             time: 84.21 µs/iter (1188 iters)
//! ```
//!
//! No sampling distributions, outlier analysis, or HTML reports — the
//! point is that `cargo bench` runs every registered target quickly and
//! deterministically enough for CI smoke coverage and coarse
//! regression eyeballing. Honest numbers still come from dedicated
//! benchmarking environments.

#![forbid(unsafe_code)]

use std::fmt::Display;
use std::hint;
use std::time::{Duration, Instant};

/// Opaque value sink preventing the optimizer from deleting the
/// benchmarked computation.
pub fn black_box<T>(dummy: T) -> T {
    hint::black_box(dummy)
}

/// Throughput annotation for a benchmark (recorded, reported per-iter).
#[derive(Debug, Clone, Copy)]
pub enum Throughput {
    /// Bytes processed per iteration.
    Bytes(u64),
    /// Logical elements processed per iteration.
    Elements(u64),
}

/// A benchmark's identifier within a group.
#[derive(Debug, Clone)]
pub struct BenchmarkId {
    id: String,
}

impl BenchmarkId {
    /// `name/parameter`.
    pub fn new(name: impl Into<String>, parameter: impl Display) -> BenchmarkId {
        BenchmarkId {
            id: format!("{}/{}", name.into(), parameter),
        }
    }

    /// Just the parameter (the group name is the prefix).
    pub fn from_parameter(parameter: impl Display) -> BenchmarkId {
        BenchmarkId {
            id: parameter.to_string(),
        }
    }
}

impl From<&str> for BenchmarkId {
    fn from(s: &str) -> BenchmarkId {
        BenchmarkId { id: s.to_string() }
    }
}

impl From<String> for BenchmarkId {
    fn from(s: String) -> BenchmarkId {
        BenchmarkId { id: s }
    }
}

/// Times closures over a fixed measurement window.
pub struct Bencher {
    /// Mean nanoseconds per iteration, filled by `iter`.
    mean_ns: f64,
    /// Iterations actually executed during measurement.
    iters: u64,
    /// Measurement window.
    window: Duration,
}

impl Bencher {
    /// Measure `routine` repeatedly and record the mean time.
    pub fn iter<O, R: FnMut() -> O>(&mut self, mut routine: R) {
        // Warm-up: a few iterations or 10 ms, whichever first.
        let warm_start = Instant::now();
        let mut warm_iters = 0u64;
        while warm_iters < 3
            || (warm_start.elapsed() < Duration::from_millis(10) && warm_iters < 1000)
        {
            hint::black_box(routine());
            warm_iters += 1;
        }

        let start = Instant::now();
        let mut iters = 0u64;
        loop {
            hint::black_box(routine());
            iters += 1;
            if start.elapsed() >= self.window && iters >= 1 {
                break;
            }
        }
        self.mean_ns = start.elapsed().as_nanos() as f64 / iters as f64;
        self.iters = iters;
    }

    /// Measure `routine` on fresh `setup()` output each iteration;
    /// only the routine is timed.
    pub fn iter_with_setup<I, O, S, R>(&mut self, mut setup: S, mut routine: R)
    where
        S: FnMut() -> I,
        R: FnMut(I) -> O,
    {
        // Warm-up.
        for _ in 0..3 {
            hint::black_box(routine(setup()));
        }
        let mut timed = Duration::ZERO;
        let mut iters = 0u64;
        while timed < self.window {
            let input = setup();
            let start = Instant::now();
            hint::black_box(routine(input));
            timed += start.elapsed();
            iters += 1;
        }
        self.mean_ns = timed.as_nanos() as f64 / iters as f64;
        self.iters = iters;
    }
}

fn human_time(ns: f64) -> String {
    if ns < 1_000.0 {
        format!("{ns:.2} ns")
    } else if ns < 1_000_000.0 {
        format!("{:.2} µs", ns / 1_000.0)
    } else if ns < 1_000_000_000.0 {
        format!("{:.2} ms", ns / 1_000_000.0)
    } else {
        format!("{:.2} s", ns / 1_000_000_000.0)
    }
}

/// A named collection of related benchmarks.
pub struct BenchmarkGroup<'a> {
    criterion: &'a mut Criterion,
    name: String,
    throughput: Option<Throughput>,
    /// Group-scoped measurement window override (criterion semantics:
    /// `measurement_time` applies to this group only).
    window: Option<Duration>,
}

impl BenchmarkGroup<'_> {
    /// Criterion's target sample count — accepted for API parity; this
    /// harness sizes runs by wall-clock window instead.
    pub fn sample_size(&mut self, _samples: usize) -> &mut Self {
        self
    }

    /// Shrink or grow this group's measurement window.
    pub fn measurement_time(&mut self, window: Duration) -> &mut Self {
        self.window = Some(window);
        self
    }

    /// Annotate subsequent benchmarks with a throughput.
    pub fn throughput(&mut self, throughput: Throughput) -> &mut Self {
        self.throughput = Some(throughput);
        self
    }

    /// Run `routine` as a benchmark named `id` within this group.
    pub fn bench_function<R>(&mut self, id: impl Into<BenchmarkId>, mut routine: R) -> &mut Self
    where
        R: FnMut(&mut Bencher),
    {
        let id = id.into();
        if !self.criterion.enabled(&format!("{}/{}", self.name, id.id)) {
            return self;
        }
        let mut b = Bencher {
            mean_ns: 0.0,
            iters: 0,
            window: self.window.unwrap_or(self.criterion.window),
        };
        routine(&mut b);
        self.report(&id, &b);
        self
    }

    /// Run `routine` with a borrowed input.
    pub fn bench_with_input<I: ?Sized, R>(
        &mut self,
        id: impl Into<BenchmarkId>,
        input: &I,
        mut routine: R,
    ) -> &mut Self
    where
        R: FnMut(&mut Bencher, &I),
    {
        let id = id.into();
        if !self.criterion.enabled(&format!("{}/{}", self.name, id.id)) {
            return self;
        }
        let mut b = Bencher {
            mean_ns: 0.0,
            iters: 0,
            window: self.window.unwrap_or(self.criterion.window),
        };
        routine(&mut b, input);
        self.report(&id, &b);
        self
    }

    fn report(&self, id: &BenchmarkId, b: &Bencher) {
        let full = format!("{}/{}", self.name, id.id);
        let mut line = format!(
            "{full:<40} time: {:>12}/iter ({} iters)",
            human_time(b.mean_ns),
            b.iters
        );
        if let Some(Throughput::Bytes(n)) = self.throughput {
            let gib = n as f64 / b.mean_ns; // bytes/ns == GB/s
            line.push_str(&format!("  thrpt: {gib:.3} GB/s"));
        }
        println!("{line}");
    }

    /// Finish the group (criterion parity; reporting is immediate).
    pub fn finish(&mut self) {}
}

/// The benchmark harness entry point.
pub struct Criterion {
    window: Duration,
    filter: Option<String>,
}

impl Default for Criterion {
    fn default() -> Criterion {
        // CI sets FIB_BENCH_WINDOW_MS to shrink the smoke run.
        let ms = std::env::var("FIB_BENCH_WINDOW_MS")
            .ok()
            .and_then(|v| v.parse().ok())
            .unwrap_or(100);
        Criterion {
            window: Duration::from_millis(ms),
            filter: None,
        }
    }
}

impl Criterion {
    /// Honor the CLI filter cargo-bench passes through (`cargo bench
    /// -- <filter>`); unknown flags are ignored.
    pub fn configure_from_args(mut self) -> Criterion {
        let filter = std::env::args()
            .skip(1)
            .find(|a| !a.starts_with('-') && a != "bench");
        self.filter = filter;
        self
    }

    /// Whether a full benchmark id (`group/name`) passes the filter.
    fn enabled(&self, full_id: &str) -> bool {
        match &self.filter {
            Some(f) => full_id.contains(f.as_str()),
            None => true,
        }
    }

    /// Open a named benchmark group.
    pub fn benchmark_group(&mut self, name: impl Into<String>) -> BenchmarkGroup<'_> {
        BenchmarkGroup {
            criterion: self,
            name: name.into(),
            throughput: None,
            window: None,
        }
    }

    /// Run a stand-alone benchmark (no group).
    pub fn bench_function<R>(&mut self, name: &str, routine: R) -> &mut Criterion
    where
        R: FnMut(&mut Bencher),
    {
        self.benchmark_group("bench").bench_function(name, routine);
        self
    }
}

/// Declare a group of benchmark functions, criterion-style.
#[macro_export]
macro_rules! criterion_group {
    ($group:ident, $($target:path),+ $(,)?) => {
        fn $group() {
            let mut criterion = $crate::Criterion::default().configure_from_args();
            $($target(&mut criterion);)+
        }
    };
}

/// Declare the bench binary's `main`, running the listed groups.
#[macro_export]
macro_rules! criterion_main {
    ($($group:path),+ $(,)?) => {
        fn main() {
            $($group();)+
        }
    };
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn bencher_measures_something() {
        let mut c = Criterion {
            window: Duration::from_millis(5),
            filter: None,
        };
        let mut g = c.benchmark_group("smoke");
        g.bench_function("add", |b| b.iter(|| black_box(1u64) + black_box(2)));
        g.bench_with_input(BenchmarkId::from_parameter(8), &8u64, |b, &n| {
            b.iter(|| (0..n).sum::<u64>())
        });
        g.finish();
    }

    #[test]
    fn ids_format() {
        assert_eq!(BenchmarkId::new("spf", 100).id, "spf/100");
        assert_eq!(BenchmarkId::from_parameter(7).id, "7");
    }

    #[test]
    fn human_time_units() {
        assert!(human_time(12.0).ends_with("ns"));
        assert!(human_time(12_500.0).ends_with("µs"));
        assert!(human_time(12_500_000.0).ends_with("ms"));
    }
}
