//! Offline stand-in for `proptest`: deterministic property-based
//! testing over random inputs.
//!
//! Implements the subset of proptest's API this workspace uses:
//! strategies ([`strategy::Strategy`], ranges, tuples, [`strategy::Just`],
//! [`arbitrary::any`], [`collection::vec`], [`option::of`],
//! [`prop_oneof!`]), the [`proptest!`] test macro with
//! `#![proptest_config(..)]`, and `prop_assert!`/`prop_assert_eq!`.
//!
//! Two deliberate simplifications versus real proptest:
//!
//! 1. **No shrinking.** A failing case reports its case index and seed;
//!    rerunning is deterministic, so the failure is reproducible as-is.
//! 2. **Fixed seeding.** Cases derive from a fixed base seed (plus the
//!    case index), so test runs are byte-for-byte repeatable — the same
//!    determinism discipline the simulator itself guarantees.

#![forbid(unsafe_code)]

/// Strategy combinators: the core generation abstraction.
pub mod strategy {
    use rand::prelude::*;

    /// The RNG handed to strategies during generation.
    pub type TestRng = StdRng;

    /// A recipe for generating values of `Value`.
    pub trait Strategy {
        /// The type of generated values.
        type Value;

        /// Generate one value.
        fn generate(&self, rng: &mut TestRng) -> Self::Value;

        /// Map generated values through `f`.
        fn prop_map<T, F>(self, f: F) -> Map<Self, F>
        where
            Self: Sized,
            F: Fn(Self::Value) -> T,
        {
            Map { inner: self, f }
        }

        /// Erase the concrete strategy type.
        fn boxed(self) -> BoxedStrategy<Self::Value>
        where
            Self: Sized + 'static,
        {
            Box::new(self)
        }
    }

    /// A type-erased strategy.
    pub type BoxedStrategy<T> = Box<dyn Strategy<Value = T>>;

    impl<S: Strategy + ?Sized> Strategy for Box<S> {
        type Value = S::Value;
        fn generate(&self, rng: &mut TestRng) -> Self::Value {
            (**self).generate(rng)
        }
    }

    impl<S: Strategy + ?Sized> Strategy for &S {
        type Value = S::Value;
        fn generate(&self, rng: &mut TestRng) -> Self::Value {
            (**self).generate(rng)
        }
    }

    /// See [`Strategy::prop_map`].
    pub struct Map<S, F> {
        inner: S,
        f: F,
    }

    impl<S, F, T> Strategy for Map<S, F>
    where
        S: Strategy,
        F: Fn(S::Value) -> T,
    {
        type Value = T;
        fn generate(&self, rng: &mut TestRng) -> T {
            (self.f)(self.inner.generate(rng))
        }
    }

    /// A strategy that always yields a clone of one value.
    #[derive(Clone, Debug)]
    pub struct Just<T: Clone>(pub T);

    impl<T: Clone> Strategy for Just<T> {
        type Value = T;
        fn generate(&self, _rng: &mut TestRng) -> T {
            self.0.clone()
        }
    }

    /// Uniform choice among boxed alternatives (`prop_oneof!`).
    pub struct Union<T> {
        options: Vec<BoxedStrategy<T>>,
    }

    impl<T> Union<T> {
        /// Build from the alternatives (must be non-empty).
        pub fn new(options: Vec<BoxedStrategy<T>>) -> Union<T> {
            assert!(!options.is_empty(), "prop_oneof! needs at least one arm");
            Union { options }
        }
    }

    impl<T> Strategy for Union<T> {
        type Value = T;
        fn generate(&self, rng: &mut TestRng) -> T {
            let i = rng.gen_range(0..self.options.len());
            self.options[i].generate(rng)
        }
    }

    macro_rules! impl_range_strategy {
        ($($t:ty),*) => {$(
            impl Strategy for std::ops::Range<$t> {
                type Value = $t;
                fn generate(&self, rng: &mut TestRng) -> $t {
                    rng.gen_range(self.clone())
                }
            }
            impl Strategy for std::ops::RangeInclusive<$t> {
                type Value = $t;
                fn generate(&self, rng: &mut TestRng) -> $t {
                    rng.gen_range(self.clone())
                }
            }
        )*};
    }

    impl_range_strategy!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize, f32, f64);

    macro_rules! impl_tuple_strategy {
        ($($name:ident),+) => {
            impl<$($name: Strategy),+> Strategy for ($($name,)+) {
                type Value = ($($name::Value,)+);
                #[allow(non_snake_case)]
                fn generate(&self, rng: &mut TestRng) -> Self::Value {
                    let ($($name,)+) = self;
                    ($($name.generate(rng),)+)
                }
            }
        };
    }

    impl_tuple_strategy!(A);
    impl_tuple_strategy!(A, B);
    impl_tuple_strategy!(A, B, C);
    impl_tuple_strategy!(A, B, C, D);
    impl_tuple_strategy!(A, B, C, D, E);
    impl_tuple_strategy!(A, B, C, D, E, F);
    impl_tuple_strategy!(A, B, C, D, E, F, G);
    impl_tuple_strategy!(A, B, C, D, E, F, G, H);
    impl_tuple_strategy!(A, B, C, D, E, F, G, H, I);
    impl_tuple_strategy!(A, B, C, D, E, F, G, H, I, J);
}

/// `any::<T>()` — arbitrary values of a type.
pub mod arbitrary {
    use super::strategy::{Strategy, TestRng};
    use rand::Rng;
    use std::marker::PhantomData;

    /// Types with a default "anything goes" strategy.
    pub trait Arbitrary: Sized {
        /// Generate an arbitrary value.
        fn arbitrary(rng: &mut TestRng) -> Self;
    }

    /// The strategy returned by [`any`].
    pub struct Any<A>(PhantomData<A>);

    impl<A: Arbitrary> Strategy for Any<A> {
        type Value = A;
        fn generate(&self, rng: &mut TestRng) -> A {
            A::arbitrary(rng)
        }
    }

    /// A strategy producing any value of `A`, with boundary values
    /// (zero, max, …) mixed in at an elevated rate the way real
    /// proptest's binary search around edges tends to probe them.
    pub fn any<A: Arbitrary>() -> Any<A> {
        Any(PhantomData)
    }

    macro_rules! impl_arbitrary_int {
        ($($t:ty),*) => {$(
            impl Arbitrary for $t {
                fn arbitrary(rng: &mut TestRng) -> $t {
                    // 1-in-8: draw from the edge set instead of uniform.
                    if rng.gen_range(0u32..8) == 0 {
                        const EDGES: [$t; 3] = [0 as $t, <$t>::MIN, <$t>::MAX];
                        EDGES[rng.gen_range(0..EDGES.len())]
                    } else {
                        rng.next_u64() as $t
                    }
                }
            }
        )*};
    }

    impl_arbitrary_int!(u8, u16, u32, i8, i16, i32);

    impl Arbitrary for u64 {
        fn arbitrary(rng: &mut TestRng) -> u64 {
            if rng.gen_range(0u32..8) == 0 {
                [0, u64::MAX][rng.gen_range(0..2usize)]
            } else {
                rng.next_u64()
            }
        }
    }

    impl Arbitrary for i64 {
        fn arbitrary(rng: &mut TestRng) -> i64 {
            u64::arbitrary(rng) as i64
        }
    }

    impl Arbitrary for usize {
        fn arbitrary(rng: &mut TestRng) -> usize {
            u64::arbitrary(rng) as usize
        }
    }

    impl Arbitrary for bool {
        fn arbitrary(rng: &mut TestRng) -> bool {
            rng.gen_bool(0.5)
        }
    }
}

/// Collection strategies.
pub mod collection {
    use super::strategy::{Strategy, TestRng};
    use rand::Rng;

    /// The strategy returned by [`vec()`].
    pub struct VecStrategy<S> {
        element: S,
        size: std::ops::Range<usize>,
    }

    /// A `Vec` of `element`-generated values with a length drawn
    /// uniformly from `size`.
    pub fn vec<S: Strategy>(element: S, size: std::ops::Range<usize>) -> VecStrategy<S> {
        VecStrategy { element, size }
    }

    impl<S: Strategy> Strategy for VecStrategy<S> {
        type Value = Vec<S::Value>;
        fn generate(&self, rng: &mut TestRng) -> Vec<S::Value> {
            let len = if self.size.is_empty() {
                self.size.start
            } else {
                rng.gen_range(self.size.clone())
            };
            (0..len).map(|_| self.element.generate(rng)).collect()
        }
    }
}

/// `Option` strategies.
pub mod option {
    use super::strategy::{Strategy, TestRng};
    use rand::Rng;

    /// The strategy returned by [`of`].
    pub struct OptionStrategy<S> {
        inner: S,
    }

    /// `Some(value)` three times out of four, `None` otherwise
    /// (mirroring proptest's Some-biased default).
    pub fn of<S: Strategy>(inner: S) -> OptionStrategy<S> {
        OptionStrategy { inner }
    }

    impl<S: Strategy> Strategy for OptionStrategy<S> {
        type Value = Option<S::Value>;
        fn generate(&self, rng: &mut TestRng) -> Option<S::Value> {
            if rng.gen_range(0u32..4) == 0 {
                None
            } else {
                Some(self.inner.generate(rng))
            }
        }
    }
}

/// Test execution: configuration, the runner, and failure plumbing.
pub mod test_runner {
    use super::strategy::{Strategy, TestRng};
    use rand::SeedableRng;

    /// Per-test configuration (`#![proptest_config(..)]`).
    #[derive(Debug, Clone)]
    pub struct ProptestConfig {
        /// Number of random cases each property runs.
        pub cases: u32,
    }

    impl ProptestConfig {
        /// A config running `cases` cases.
        pub fn with_cases(cases: u32) -> ProptestConfig {
            ProptestConfig { cases }
        }
    }

    impl Default for ProptestConfig {
        fn default() -> ProptestConfig {
            // Real proptest defaults to 256; 64 keeps the pipeline
            // properties (which run the full optimizer) CI-friendly.
            ProptestConfig { cases: 64 }
        }
    }

    /// A property failure: an assertion message plus location.
    #[derive(Debug, Clone)]
    pub struct TestCaseError {
        message: String,
    }

    impl TestCaseError {
        /// Fail the current case with `message`.
        pub fn fail(message: impl Into<String>) -> TestCaseError {
            TestCaseError {
                message: message.into(),
            }
        }

        /// Alias of [`TestCaseError::fail`] kept for proptest parity
        /// (`reject` does not re-draw here; rejection is failure).
        pub fn reject(message: impl Into<String>) -> TestCaseError {
            TestCaseError::fail(message)
        }
    }

    impl std::fmt::Display for TestCaseError {
        fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
            f.write_str(&self.message)
        }
    }

    /// Base seed all properties derive their cases from. Fixed, so a
    /// failure seen once is seen every run until fixed.
    pub const BASE_SEED: u64 = 0x5EED_F1BB_0001;

    /// Drives a strategy through `cases` deterministic cases.
    pub struct TestRunner {
        config: ProptestConfig,
    }

    impl TestRunner {
        /// A runner for `config`.
        pub fn new(config: ProptestConfig) -> TestRunner {
            TestRunner { config }
        }

        /// Run `test` on `cases` generated inputs; panics on the first
        /// failing case with its index and seed.
        pub fn run<S, F>(&mut self, strategy: &S, test: F)
        where
            S: Strategy,
            F: Fn(S::Value) -> Result<(), TestCaseError>,
        {
            for case in 0..self.config.cases {
                let seed = BASE_SEED ^ (u64::from(case).wrapping_mul(0x9E37_79B9_7F4A_7C15));
                let mut rng = TestRng::seed_from_u64(seed);
                let value = strategy.generate(&mut rng);
                if let Err(e) = test(value) {
                    panic!(
                        "proptest case {case}/{} failed (seed {seed:#x}): {e}",
                        self.config.cases
                    );
                }
            }
        }
    }
}

/// The common imports: `use proptest::prelude::*;`.
pub mod prelude {
    pub use crate::arbitrary::any;
    pub use crate::strategy::{BoxedStrategy, Just, Strategy};
    pub use crate::test_runner::{ProptestConfig, TestCaseError};
    pub use crate::{prop_assert, prop_assert_eq, prop_assert_ne, prop_oneof, proptest};
    /// Namespace alias mirroring `proptest::prelude::prop`.
    pub mod prop {
        pub use crate::collection;
        pub use crate::option;
    }
}

/// Uniform choice among strategy alternatives with a common value type.
#[macro_export]
macro_rules! prop_oneof {
    ($($strategy:expr),+ $(,)?) => {
        $crate::strategy::Union::new(vec![
            $($crate::strategy::Strategy::boxed($strategy)),+
        ])
    };
}

/// Assert inside a property; failures carry the formatted message.
#[macro_export]
macro_rules! prop_assert {
    ($cond:expr) => {
        $crate::prop_assert!($cond, "assertion failed: {}", stringify!($cond))
    };
    ($cond:expr, $($fmt:tt)*) => {
        if !$cond {
            return ::core::result::Result::Err(
                $crate::test_runner::TestCaseError::fail(format!($($fmt)*)),
            );
        }
    };
}

/// Assert equality inside a property.
#[macro_export]
macro_rules! prop_assert_eq {
    ($left:expr, $right:expr $(,)?) => {{
        let (l, r) = (&$left, &$right);
        $crate::prop_assert!(
            *l == *r,
            "assertion failed: `left == right`\n  left: `{:?}`\n right: `{:?}`",
            l,
            r
        );
    }};
}

/// Assert inequality inside a property.
#[macro_export]
macro_rules! prop_assert_ne {
    ($left:expr, $right:expr $(,)?) => {{
        let (l, r) = (&$left, &$right);
        $crate::prop_assert!(
            *l != *r,
            "assertion failed: `left != right`\n  both: `{:?}`",
            l
        );
    }};
}

/// Define property tests: each `fn name(pat in strategy, ..) { body }`
/// becomes a `#[test]` running the body over generated inputs.
#[macro_export]
macro_rules! proptest {
    (#![proptest_config($config:expr)] $($rest:tt)*) => {
        $crate::__proptest_items! { ($config); $($rest)* }
    };
    ($($rest:tt)*) => {
        $crate::__proptest_items! {
            ($crate::test_runner::ProptestConfig::default());
            $($rest)*
        }
    };
}

/// Implementation detail of [`proptest!`].
#[doc(hidden)]
#[macro_export]
macro_rules! __proptest_items {
    (($config:expr); $(
        $(#[$meta:meta])*
        fn $name:ident($($arg:ident in $strategy:expr),+ $(,)?) $body:block
    )*) => {$(
        $(#[$meta])*
        fn $name() {
            let mut runner = $crate::test_runner::TestRunner::new($config);
            runner.run(
                &($($strategy,)+),
                |($($arg,)+)| -> ::core::result::Result<(), $crate::test_runner::TestCaseError> {
                    $body
                    #[allow(unreachable_code)]
                    ::core::result::Result::Ok(())
                },
            );
        }
    )*};
}

#[cfg(test)]
mod tests {
    use crate::prelude::*;

    #[test]
    fn generation_is_deterministic() {
        use crate::strategy::Strategy;
        use rand::prelude::*;
        let s = crate::collection::vec(0u32..100, 5..10);
        let mut r1 = StdRng::seed_from_u64(1);
        let mut r2 = StdRng::seed_from_u64(1);
        assert_eq!(s.generate(&mut r1), s.generate(&mut r2));
    }

    proptest! {
        #[test]
        fn ranges_respect_bounds(x in 10u32..20, y in 0.5f64..1.5) {
            prop_assert!((10..20).contains(&x));
            prop_assert!((0.5..1.5).contains(&y));
        }

        #[test]
        fn vec_lengths_in_range(v in crate::collection::vec(0u8..=255, 3..7)) {
            prop_assert!(v.len() >= 3 && v.len() < 7);
        }

        #[test]
        fn oneof_and_just(k in prop_oneof![Just(1u8), Just(2), Just(3)]) {
            prop_assert!((1..=3).contains(&k));
        }

        #[test]
        fn options_mix(o in crate::option::of(1u32..5)) {
            if let Some(v) = o {
                prop_assert!((1..5).contains(&v));
            }
        }

        #[test]
        fn maps_apply(s in (0u32..10).prop_map(|v| v * 2)) {
            prop_assert!(s % 2 == 0 && s < 20);
        }
    }

    proptest! {
        #![proptest_config(ProptestConfig::with_cases(8))]

        #[test]
        fn config_override_accepted(x in 0u64..1000) {
            prop_assert!(x < 1000);
        }
    }

    #[test]
    #[should_panic(expected = "proptest case")]
    fn failures_report_case_and_seed() {
        let mut runner = crate::test_runner::TestRunner::new(ProptestConfig::with_cases(4));
        runner.run(&(0u32..10,), |(_x,)| {
            Err(TestCaseError::fail("always fails"))
        });
    }
}
