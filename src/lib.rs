//! # fibbing — on-demand load-balancing by lying to routers
//!
//! A full reproduction of *"Fibbing in action: On-demand
//! load-balancing for better video delivery"* (Tilmans, Vissicchio,
//! Vanbever, Rexford — SIGCOMM 2016 demo), built on the Fibbing system
//! of Vissicchio et al. (SIGCOMM 2015).
//!
//! This facade crate re-exports the whole stack and ships the paper's
//! demo scenario ([`demo`]):
//!
//! | crate | role |
//! |-------|------|
//! | [`igp`] | link-state IGP substrate: LSAs, flooding, neighbor FSM, ECMP SPF, wire codec |
//! | [`netsim`] | deterministic co-simulation: capacitated links, ECMP FIBs, max-min fluid flows, SNMP-fed counters |
//! | [`telemetry`] | SNMP-style monitoring: ifTable counters, pollers, EWMA rates, hysteresis alarms |
//! | [`core`] | Fibbing itself: lies, augmentation, uneven splits, optimizer, verification, the controller |
//! | [`te`] | baselines: RSVP-TE tunnels, Fortz–Thorup weight search, ECMP optimality bounds |
//! | [`video`] | the workload: playback buffers, ABR, QoE, flash crowds |
//! | [`scenario`] | declarative what-if harness: topology × workload × fault-script specs, runner, reports |
//!
//! ## Quickstart
//!
//! ```
//! use fibbing::demo;
//!
//! // Run the paper's experiment for 12 simulated seconds with the
//! // controller enabled (the full 60 s run lives in the benches).
//! let cfg = demo::DemoConfig::default();
//! let run = demo::run(&cfg, 12);
//! // The three links of Fig. 2 are recorded as named series.
//! let recorder = run.sim.recorder();
//! assert!(recorder.max("B-R2").unwrap() > 0.0);
//! ```

#![warn(missing_docs)]
#![forbid(unsafe_code)]

pub use fib_core as core;
pub use fib_igp as igp;
pub use fib_netsim as netsim;
pub use fib_scenario as scenario;
pub use fib_te as te;
pub use fib_telemetry as telemetry;
pub use fib_video as video;

pub mod demo;

/// One-stop prelude for applications using the stack.
pub mod prelude {
    pub use fib_core::prelude::*;
    pub use fib_igp::prelude::*;
    pub use fib_netsim::prelude::*;
    pub use fib_scenario::prelude::*;
    pub use fib_te::prelude::*;
    pub use fib_telemetry::prelude::*;
    pub use fib_video::prelude::*;
}
