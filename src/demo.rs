//! The paper's demo scenario, end to end.
//!
//! This module pins down everything Sec. 3 of the paper describes:
//! the Fig. 1a topology (weights included), the video servers S1/S2 at
//! B and A, the blue destination prefix behind C, the Fibbing
//! controller attached to R3, and the exact flow schedule of Fig. 2
//! (1 flow at t = 0 s, +30 at t = 15 s, +31 from the second source at
//! t = 35 s).
//!
//! ## Calibration
//!
//! The testbed used ~10–30 Mb/s emulated links and ~1 Mb/s videos; we
//! use 4 MB/s (32 Mb/s) links and 125 kB/s (1 Mb/s) videos so that:
//!
//! * 31 videos ≈ 3.875 MB/s saturate a single link (the t = 15 surge
//!   overloads B–R2 exactly as in Fig. 1b),
//! * 62 videos ≈ 7.75 MB/s exceed any two paths but fit across three
//!   with the paper's 1/3–2/3 split at A (Fig. 1d ⇒ max link load
//!   ≈ 2.6 MB/s, the plateau Fig. 2 shows).
//!
//! With the controller's optimizer budget at 0.5 utilization, the
//! computed plans coincide with the paper's lies *exactly*: one fake
//! node at B (cost 2 via R3) at t = 15, plus two fake nodes at A
//! (cost 3 via R1) at t = 35.

use fib_core::prelude::{ControllerConfig, FibbingController};
use fib_igp::prelude::*;
use fib_netsim::link::LinkSpec;
use fib_netsim::sim::{Sim, SimConfig};
use fib_video::prelude::{paper_schedule, QoeHandle, VideoWorkload};
use std::collections::BTreeMap;

/// Router A (hosts video source S2).
pub const A: RouterId = RouterId(1);
/// Router B (hosts video source S1).
pub const B: RouterId = RouterId(2);
/// Router R1 (A's long detour).
pub const R1: RouterId = RouterId(3);
/// Router R2 (B's shortest path).
pub const R2: RouterId = RouterId(4);
/// Router R3 (B's alternate; the controller peers here).
pub const R3: RouterId = RouterId(5);
/// Router R4 (on the long A detour).
pub const R4: RouterId = RouterId(6);
/// Router C (announces the blue prefix; clients D1/D2 sit behind it).
pub const C: RouterId = RouterId(7);
/// The Fibbing controller's speaker id.
pub const CTRL: RouterId = RouterId(100);

/// The blue destination prefix of Fig. 1.
pub const BLUE: Prefix = Prefix::net24(1);

/// Human name of a demo router.
pub fn name(r: RouterId) -> &'static str {
    match r {
        A => "A",
        B => "B",
        R1 => "R1",
        R2 => "R2",
        R3 => "R3",
        R4 => "R4",
        C => "C",
        CTRL => "ctrl",
        _ => "?",
    }
}

/// `"A-R1"`-style name of a directed link.
pub fn link_name(from: RouterId, to: RouterId) -> String {
    format!("{}-{}", name(from), name(to))
}

/// The symmetric links of Fig. 1a: `(a, b, igp_weight)`. Unlabeled
/// weights in the figure are 1.
pub const PAPER_LINKS: [(RouterId, RouterId, u32); 8] = [
    (A, B, 1),
    (B, R2, 1),
    (R2, C, 1),
    (B, R3, 2),
    (R3, C, 1),
    (A, R1, 2),
    (R1, R4, 2),
    (R4, C, 2),
];

/// The Fig. 1a topology with the blue prefix announced at C.
///
/// Delegates to [`fib_igp::builders::paper_fig1`], the canonical
/// definition shared with the scenario engine; [`PAPER_LINKS`] names
/// the same links for capacity maps and `LinkSpec` construction.
pub fn paper_topology() -> Topology {
    fib_igp::builders::paper_fig1()
}

/// Uniform per-direction capacities for the paper topology.
pub fn paper_capacities(capacity: f64) -> BTreeMap<(RouterId, RouterId), f64> {
    paper_topology()
        .all_links()
        .map(|(a, b, _)| ((a, b), capacity))
        .collect()
}

/// Demo configuration.
#[derive(Debug, Clone)]
pub struct DemoConfig {
    /// Run with the Fibbing controller (the paper's "enabled" run).
    pub controller: bool,
    /// Per-direction link capacity in bytes/s.
    pub capacity: f64,
    /// Per-video bitrate in bytes/s.
    pub video_rate: f64,
    /// Video clip length in seconds (long enough to span the run).
    pub video_secs: f64,
    /// Controller reacts to notifications (predictive) or SNMP only.
    pub predictive: bool,
}

impl Default for DemoConfig {
    fn default() -> Self {
        DemoConfig {
            controller: true,
            capacity: 4.0e6,
            video_rate: 125_000.0,
            video_secs: 300.0,
            predictive: true,
        }
    }
}

/// A built demo: the simulator plus the live QoE handle.
pub struct Demo {
    /// The co-simulation, ready to run.
    pub sim: Sim,
    /// Live per-session QoE reports (keyed by session tag).
    pub qoe: QoeHandle,
}

/// Build the full demo simulation. Sampled trace series are named
/// `A-R1`, `B-R2`, `B-R3` — the links Fig. 2 plots.
pub fn build(cfg: &DemoConfig) -> Demo {
    let mut sim = Sim::new(SimConfig::default());
    for r in [A, B, R1, R2, R3, R4, C] {
        sim.add_router(r);
    }
    for (a, b, w) in PAPER_LINKS {
        sim.add_link(LinkSpec::new(a, b, Metric(w), cfg.capacity));
    }
    sim.announce_prefix(C, BLUE);

    // The links Fig. 2 plots (direction: toward the clients).
    sim.sample_link("A-R1", A, R1);
    sim.sample_link("B-R2", B, R2);
    sim.sample_link("B-R3", B, R3);
    sim.sample_link("A-B", A, B);
    sim.sample_link("R2-C", R2, C);
    sim.sample_link("R3-C", R3, C);
    sim.sample_link("R4-C", R4, C);

    if cfg.controller {
        sim.add_controller_speaker(CTRL, R3); // "connected to R3"
        let mut ctl = ControllerConfig::new(CTRL);
        ctl.target_util = 0.5;
        ctl.util_hi = 0.8;
        ctl.util_lo = 0.3;
        ctl.slot_budget = 8;
        ctl.default_flow_rate = cfg.video_rate;
        ctl.predictive = cfg.predictive;
        sim.add_app(Box::new(FibbingController::new(ctl)));
    }

    // S1 streams from B, S2 from A (Fig. 1b/2).
    let schedule = paper_schedule(B, A, BLUE, cfg.video_rate, cfg.video_secs);
    let (driver, qoe) = VideoWorkload::new(schedule, Dur::from_millis(100));
    sim.add_app(Box::new(driver));

    Demo { sim, qoe }
}

/// Build, start, and run the demo for `secs` seconds of simulated
/// time.
pub fn run(cfg: &DemoConfig, secs: u64) -> Demo {
    let mut demo = build(cfg);
    demo.sim.start();
    demo.sim.run_until(Timestamp::from_secs(secs));
    demo
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn paper_topology_matches_fig_1a() {
        let t = paper_topology();
        assert_eq!(t.router_count(), 7);
        assert_eq!(t.all_links().count(), 16);
        // Fig. 1a path costs: B reaches blue at 2 via R2; the B–R3–C
        // detour costs 3; A reaches blue at 3 via B; the A–R1–R4–C
        // detour costs 6.
        let rt_b = compute_routes(&t, B);
        assert_eq!(rt_b.route(BLUE).unwrap().dist, Metric(2));
        assert_eq!(rt_b.nexthops(BLUE), &[FwAddr::primary(R2)]);
        let rt_a = compute_routes(&t, A);
        assert_eq!(rt_a.route(BLUE).unwrap().dist, Metric(3));
        assert_eq!(rt_a.nexthops(BLUE), &[FwAddr::primary(B)]);
    }

    #[test]
    fn shortest_paths_overlap_on_b_r2_c() {
        // "The IGP shortest paths starting at A and B overlap along
        // B–R2–C" (Fig. 1a caption).
        let t = paper_topology();
        let from_a = enumerate_paths(&t, A, BLUE, 8);
        let from_b = enumerate_paths(&t, B, BLUE, 8);
        assert_eq!(from_a, vec![vec![A, B, R2, C]]);
        assert_eq!(from_b, vec![vec![B, R2, C]]);
    }

    #[test]
    fn paper_links_match_the_canonical_builder() {
        // PAPER_LINKS (used for LinkSpecs and capacity maps) and the
        // igp builder must describe the same graph.
        let t = paper_topology();
        assert_eq!(t.all_links().count(), PAPER_LINKS.len() * 2);
        for (a, b, w) in PAPER_LINKS {
            assert_eq!(t.link_metric(a, b), Some(Metric(w)), "{a}-{b}");
            assert_eq!(t.link_metric(b, a), Some(Metric(w)), "{b}-{a}");
        }
    }

    #[test]
    fn names_are_stable() {
        assert_eq!(name(A), "A");
        assert_eq!(name(R4), "R4");
        assert_eq!(link_name(B, R3), "B-R3");
    }
}
