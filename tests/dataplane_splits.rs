//! Hashed ECMP realizes the planned ratios in the data plane.
//!
//! The analytical layers prove the *expected* split; this test drives
//! hundreds of hashed flows through the live simulator and checks the
//! realized split converges to the plan (1/3–2/3 at A), i.e. that
//! replicated forwarding addresses actually bias per-flow hashing.

use fibbing::demo::{paper_capacities, paper_topology, A, B, BLUE, C, R1, R2, R3, R4};
use fibbing::prelude::*;

#[test]
fn hashed_flows_realize_uneven_split() {
    // Offline plan for the paper's demand.
    let topo = paper_topology();
    let caps = paper_capacities(100.0);
    let plan = plan_paths(&topo, BLUE, &[(A, 100.0), (B, 100.0)], &caps, 0.5, 8).unwrap();
    let mut alloc = LieAllocator::new();
    let aug = augment(&topo, &plan.dag, &mut alloc).unwrap();
    let lies = reduce(&topo, &plan.dag, &aug.lies);

    // Live network + controller speaker injecting that exact plan.
    let mut sim = Sim::new(SimConfig::default());
    for r in [A, B, R1, R2, R3, R4, C] {
        sim.add_router(r);
    }
    for (a, b, w) in fibbing::demo::PAPER_LINKS {
        sim.add_link(LinkSpec::new(a, b, Metric(w), 1e9));
    }
    sim.announce_prefix(C, BLUE);
    sim.add_controller_speaker(RouterId(100), R3);
    sim.start();
    sim.run_until(Timestamp::from_secs(10));
    {
        let mut api = sim.ctx();
        for lie in &lies {
            api.inject_fake(
                RouterId(100),
                lie.fake_id,
                lie.attach,
                lie.attach_metric,
                lie.prefix,
                lie.prefix_metric,
                lie.fw,
            )
            .unwrap();
        }
    }
    sim.run_until(Timestamp::from_secs(20));

    // 600 hashed flows from A; count first hops.
    let n = 600;
    let mut ids = Vec::new();
    for i in 0..n {
        let spec = FlowSpec::new(A, BLUE).with_cap(1.0).with_hash_id(i);
        ids.push(sim.ctx().start_flow(spec));
    }
    sim.run_until(Timestamp::from_secs(21));
    let mut via_b = 0;
    let mut via_r1 = 0;
    for id in &ids {
        match sim.ctx().flow_path(*id).expect("routable")[0].to {
            x if x == B => via_b += 1,
            x if x == R1 => via_r1 += 1,
            other => panic!("unexpected first hop {other}"),
        }
    }
    let frac_r1 = f64::from(via_r1) / f64::from(n as u32);
    assert!(
        (frac_r1 - 2.0 / 3.0).abs() < 0.06,
        "expected ~2/3 via R1, got {frac_r1} ({via_r1}/{n}, {via_b} via B)"
    );
}

#[test]
fn retraction_restores_natural_forwarding() {
    let mut sim = Sim::new(SimConfig::default());
    for r in [A, B, R1, R2, R3, R4, C] {
        sim.add_router(r);
    }
    for (a, b, w) in fibbing::demo::PAPER_LINKS {
        sim.add_link(LinkSpec::new(a, b, Metric(w), 1e9));
    }
    sim.announce_prefix(C, BLUE);
    sim.add_controller_speaker(RouterId(100), R3);
    sim.start();
    sim.run_until(Timestamp::from_secs(10));
    let fake = RouterId::fake(7);
    {
        let mut api = sim.ctx();
        api.inject_fake(
            RouterId(100),
            fake,
            B,
            Metric(1),
            BLUE,
            Metric(1),
            FwAddr::secondary(R3, 1),
        )
        .unwrap();
    }
    sim.run_until(Timestamp::from_secs(15));
    assert_eq!(sim.ctx().fib_nexthops(B, BLUE).len(), 2, "lie installed");
    {
        let mut api = sim.ctx();
        api.retract_fake(RouterId(100), fake).unwrap();
    }
    sim.run_until(Timestamp::from_secs(25));
    let hops = sim.ctx().fib_nexthops(B, BLUE);
    assert_eq!(hops, vec![FwAddr::primary(R2)], "natural state restored");
}
