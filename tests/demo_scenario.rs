//! End-to-end reproduction of the demo experiment (Fig. 2).
//!
//! Runs the full co-simulation — real IGP convergence, controller
//! reacting to server notifications and SNMP, video players — and
//! asserts the shape of the paper's Fig. 2: additional paths appear
//! as load increases, the maximum link load stays below capacity with
//! the controller, and playback only stutters without it.

use fibbing::demo::{self, DemoConfig, A, B, BLUE, R1, R2, R3};
use fibbing::prelude::*;

#[test]
fn fig2_with_controller_prevents_congestion() {
    let cfg = DemoConfig::default();
    let mut run = demo::build(&cfg);
    run.sim.start();
    run.sim.run_until(Timestamp::from_secs(55));
    let rec = run.sim.recorder();

    // Phase 1 (t < 15): a single ~125 kB/s flow on B–R2 only.
    let b_r2_p1 = rec.mean_over("B-R2", 8.0, 14.0).unwrap();
    assert!(
        (b_r2_p1 - cfg.video_rate).abs() < 0.2 * cfg.video_rate,
        "phase 1 B-R2 ≈ one video, got {b_r2_p1}"
    );
    assert_eq!(rec.mean_over("A-R1", 8.0, 14.0), Some(0.0));
    assert_eq!(rec.mean_over("B-R3", 8.0, 14.0), Some(0.0));

    // Phase 2 (15 < t < 35): 31 flows, fB splits B's traffic evenly
    // over B–R2 and B–R3; A–R1 still idle.
    let b_r2_p2 = rec.mean_over("B-R2", 25.0, 34.0).unwrap();
    let b_r3_p2 = rec.mean_over("B-R3", 25.0, 34.0).unwrap();
    let total_p2 = 31.0 * cfg.video_rate;
    assert!(
        (b_r2_p2 + b_r3_p2 - total_p2).abs() < 0.1 * total_p2,
        "phase 2 total: {b_r2_p2} + {b_r3_p2} vs {total_p2}"
    );
    assert!(
        (b_r2_p2 - b_r3_p2).abs() < 0.25 * total_p2,
        "phase 2 split should be roughly even: {b_r2_p2} vs {b_r3_p2}"
    );
    assert!(rec.mean_over("A-R1", 25.0, 34.0).unwrap() < 1e3);

    // Phase 3 (t > 35): 62 flows; A–R1 carries ~2/3 of S2's traffic;
    // nothing exceeds capacity.
    let a_r1_p3 = rec.mean_over("A-R1", 45.0, 54.0).unwrap();
    let s2_total = 31.0 * cfg.video_rate;
    assert!(
        (a_r1_p3 - 2.0 / 3.0 * s2_total).abs() < 0.25 * s2_total,
        "phase 3 A-R1 ≈ 2/3 of S2 ({}), got {a_r1_p3}",
        2.0 / 3.0 * s2_total
    );
    for series in ["A-R1", "B-R2", "B-R3", "R2-C", "R3-C", "R4-C"] {
        let max = rec.max(series).unwrap_or(0.0);
        assert!(
            max <= cfg.capacity + 1.0,
            "{series} exceeded capacity: {max}"
        );
    }

    // The controller installed the paper's slot structure: 3 at A
    // (1×B + 2×R1), 2 at B (R2 + R3).
    let a_hops = run.sim.ctx().fib_nexthops(A, BLUE);
    let a_routers: Vec<RouterId> = a_hops.iter().map(|h| h.router).collect();
    assert_eq!(a_hops.len(), 3, "A has 3 ECMP slots: {a_hops:?}");
    assert_eq!(a_routers.iter().filter(|r| **r == R1).count(), 2);
    let b_hops = run.sim.ctx().fib_nexthops(B, BLUE);
    assert_eq!(b_hops.len(), 2, "B has 2 ECMP slots: {b_hops:?}");
    assert!(b_hops.iter().any(|h| h.router == R2));
    assert!(b_hops.iter().any(|h| h.router == R3));

    // "The video playbacks are smooth when the Fibbing controller is
    // in use": the overwhelming majority of sessions never stall.
    let reports: Vec<_> = run.qoe.lock().values().cloned().collect();
    let summary = summarize(&reports);
    assert_eq!(summary.sessions, 62);
    assert!(
        summary.smooth
            + reports
                .iter()
                .filter(|r| !r.completed && r.stalls == 0)
                .count()
            >= 58,
        "most sessions smooth, got {summary:?}"
    );
}

#[test]
fn fig2_without_controller_congests_and_stutters() {
    let cfg = DemoConfig {
        controller: false,
        ..DemoConfig::default()
    };
    let mut run = demo::build(&cfg);
    run.sim.start();
    run.sim.run_until(Timestamp::from_secs(55));
    let rec = run.sim.recorder();

    // All traffic squeezes onto B–R2–C; the link saturates.
    let b_r2 = rec.mean_over("B-R2", 45.0, 54.0).unwrap();
    assert!(
        b_r2 > 0.97 * cfg.capacity,
        "B-R2 should saturate, got {b_r2}"
    );
    assert_eq!(rec.mean_over("A-R1", 45.0, 54.0), Some(0.0));
    assert_eq!(rec.mean_over("B-R3", 45.0, 54.0), Some(0.0));

    // Players starve: "stutter when disabled".
    let reports: Vec<_> = run.qoe.lock().values().cloned().collect();
    let stalled = reports.iter().filter(|r| r.stalls > 0).count();
    assert!(
        stalled > 20,
        "expected widespread stalls without the controller, got {stalled}/62"
    );
}

#[test]
fn demo_is_deterministic() {
    let run_csv = || {
        let run = demo::run(&DemoConfig::default(), 40);
        run.sim.recorder().to_csv()
    };
    assert_eq!(run_csv(), run_csv());
}
