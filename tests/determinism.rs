//! Workspace determinism smoke test.
//!
//! The reproduction's whole verification story rests on determinism:
//! identical configs (same seed) must yield identical runs. This test
//! pins the paper's control-plane milestones — the single-lie plan the
//! controller installs after the t=15 wave (B splits evenly over R2 and
//! R3) and the two-lie plan after the t=35 wave (A gets a 1/3–2/3
//! split toward B and R1) — and asserts both the plan structure and
//! its bit-for-bit reproducibility across two independent runs.

use fibbing::demo::{self, DemoConfig, A, B, BLUE, R1, R2, R3};
use fibbing::prelude::*;
use fibbing::scenario::runner::{build as build_scenario, RunOptions};
use fibbing::scenario::suite::load_scenario;

/// Sorted next-hop routers for `router` toward the blue prefix.
fn hops(run: &mut demo::Demo, router: RouterId) -> Vec<RouterId> {
    let mut v: Vec<RouterId> = run
        .sim
        .ctx()
        .fib_nexthops(router, BLUE)
        .iter()
        .map(|h| h.router)
        .collect();
    v.sort();
    v
}

/// Drive one demo to just past each wave and snapshot the installed
/// forwarding structure at both milestones.
#[allow(clippy::type_complexity)]
fn milestones() -> (
    Vec<RouterId>,
    Vec<RouterId>,
    Vec<RouterId>,
    Vec<RouterId>,
    String,
) {
    let mut run = demo::build(&DemoConfig::default());
    run.sim.start();

    // Past the t=15 wave: the controller has started lying at B —
    // traffic is spread over both R2 and R3 — while A is untouched.
    // (The first reaction over-provisions slots; reconciliation trims
    // it to the paper's even split by the next milestone.)
    run.sim.run_until(Timestamp::from_secs(25));
    let b_first_wave = hops(&mut run, B);
    let a_untouched = hops(&mut run, A);

    // Past the t=35 wave, settled: the single-lie plan at B (even
    // R2/R3 split) and the two-lie plan at A (three ECMP slots, two of
    // them via R1 — the 1/3–2/3 split).
    run.sim.run_until(Timestamp::from_secs(45));
    let b_single_lie = hops(&mut run, B);
    let a_two_lie = hops(&mut run, A);

    let csv = run.sim.recorder().to_csv();
    (b_first_wave, a_untouched, b_single_lie, a_two_lie, csv)
}

#[test]
fn demo_reproduces_paper_plans_deterministically() {
    let (bw1, a_idle1, b1, a1, csv1) = milestones();
    let (bw2, a_idle2, b2, a2, csv2) = milestones();

    // After the first wave, B spreads over both egresses …
    assert!(
        bw1.contains(&R2) && bw1.contains(&R3),
        "B must spread over R2 and R3 after the first wave: {bw1:?}"
    );
    // … while A still forwards only via B until its own wave hits.
    assert_eq!(a_idle1, vec![B], "A untouched until the t=35 wave");

    // The paper's single-lie plan at B: one slot each via R2 and R3.
    assert_eq!(b1, vec![R2, R3], "B's even split once plans settle");
    // The paper's two-lie plan at A: 3 slots, two of them via R1.
    assert_eq!(a1.len(), 3, "A has 3 ECMP slots after the second wave");
    assert_eq!(
        a1.iter().filter(|r| **r == R1).count(),
        2,
        "two of A's slots point at R1 (the 2/3 share)"
    );
    assert!(a1.contains(&B), "one of A's slots still points at B");

    // Same seed ⇒ same plans, same everything.
    assert_eq!(bw1, bw2, "first-wave reaction differs between runs");
    assert_eq!(a_idle1, a_idle2);
    assert_eq!(b1, b2, "single-lie plan differs between runs");
    assert_eq!(a1, a2, "two-lie plan differs between runs");
    assert_eq!(csv1, csv2, "recorded traces differ between runs");
}

/// Sorted next-hop routers toward the blue prefix, scenario flavor.
fn scenario_hops(run: &mut ScenarioRun, router: RouterId) -> Vec<RouterId> {
    let mut v: Vec<RouterId> = run
        .sim
        .ctx()
        .fib_nexthops(router, BLUE)
        .iter()
        .map(|h| h.router)
        .collect();
    v.sort();
    v
}

/// The same pinned milestones, reached through the declarative
/// scenario engine instead of the hand-wired demo module: the
/// `scenarios/paper_demo.toml` port must reproduce the paper's t=15
/// single-lie and t=35 two-lie plans, and the whole run — summary and
/// trace CSVs included — must be byte-identical across same-seed runs.
#[test]
fn scenario_paper_demo_reproduces_plans_deterministically() {
    let spec = load_scenario("paper_demo").expect("shipped spec parses");
    let milestones = || {
        let mut run = build_scenario(
            &spec,
            RunOptions {
                seed: Some(7),
                horizon_secs: Some(45.0),
                ..RunOptions::default()
            },
        )
        .expect("paper_demo builds");
        run.run_until_secs(25.0);
        let b_wave = scenario_hops(&mut run, B);
        let a_idle = scenario_hops(&mut run, A);
        run.run_until_secs(45.0);
        let b_settled = scenario_hops(&mut run, B);
        let a_settled = scenario_hops(&mut run, A);
        let report = run.finish();
        (b_wave, a_idle, b_settled, a_settled, report)
    };
    let (bw1, ai1, b1, a1, r1) = milestones();
    let (bw2, ai2, b2, a2, r2) = milestones();

    assert!(
        bw1.contains(&R2) && bw1.contains(&R3),
        "B must spread over R2 and R3 after the first wave: {bw1:?}"
    );
    assert_eq!(ai1, vec![B], "A untouched until the t=35 wave");
    assert_eq!(b1, vec![R2, R3], "B's settled single-lie plan");
    assert_eq!(a1.len(), 3, "A has 3 ECMP slots after the second wave");
    assert_eq!(a1.iter().filter(|r| **r == R1).count(), 2, "2 slots via R1");
    assert!(a1.contains(&B), "one slot still via B");

    assert_eq!(bw1, bw2);
    assert_eq!(ai1, ai2);
    assert_eq!(b1, b2);
    assert_eq!(a1, a2);
    assert_eq!(
        r1.summary_csv(),
        r2.summary_csv(),
        "scenario summary CSV differs between same-seed runs"
    );
    assert_eq!(
        r1.trace_csv, r2.trace_csv,
        "scenario trace CSV differs between same-seed runs"
    );
    // The report actually carries the signals the suite table prints.
    assert!(
        r1.peak_lies >= 2,
        "both waves install lies: {:?}",
        r1.peak_lies
    );
    assert!(r1.max_util > 0.0 && r1.qoe.sessions == 62);
}
