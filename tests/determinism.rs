//! Workspace determinism smoke test.
//!
//! The reproduction's whole verification story rests on determinism:
//! identical configs (same seed) must yield identical runs. This test
//! pins the paper's control-plane milestones — the single-lie plan the
//! controller installs after the t=15 wave (B splits evenly over R2 and
//! R3) and the two-lie plan after the t=35 wave (A gets a 1/3–2/3
//! split toward B and R1) — and asserts both the plan structure and
//! its bit-for-bit reproducibility across two independent runs.

use fibbing::demo::{self, DemoConfig, A, B, BLUE, R1, R2, R3};
use fibbing::prelude::*;

/// Sorted next-hop routers for `router` toward the blue prefix.
fn hops(run: &mut demo::Demo, router: RouterId) -> Vec<RouterId> {
    let mut v: Vec<RouterId> = run
        .sim
        .api()
        .fib_nexthops(router, BLUE)
        .iter()
        .map(|h| h.router)
        .collect();
    v.sort();
    v
}

/// Drive one demo to just past each wave and snapshot the installed
/// forwarding structure at both milestones.
#[allow(clippy::type_complexity)]
fn milestones() -> (
    Vec<RouterId>,
    Vec<RouterId>,
    Vec<RouterId>,
    Vec<RouterId>,
    String,
) {
    let mut run = demo::build(&DemoConfig::default());
    run.sim.start();

    // Past the t=15 wave: the controller has started lying at B —
    // traffic is spread over both R2 and R3 — while A is untouched.
    // (The first reaction over-provisions slots; reconciliation trims
    // it to the paper's even split by the next milestone.)
    run.sim.run_until(Timestamp::from_secs(25));
    let b_first_wave = hops(&mut run, B);
    let a_untouched = hops(&mut run, A);

    // Past the t=35 wave, settled: the single-lie plan at B (even
    // R2/R3 split) and the two-lie plan at A (three ECMP slots, two of
    // them via R1 — the 1/3–2/3 split).
    run.sim.run_until(Timestamp::from_secs(45));
    let b_single_lie = hops(&mut run, B);
    let a_two_lie = hops(&mut run, A);

    let csv = run.sim.recorder().to_csv();
    (b_first_wave, a_untouched, b_single_lie, a_two_lie, csv)
}

#[test]
fn demo_reproduces_paper_plans_deterministically() {
    let (bw1, a_idle1, b1, a1, csv1) = milestones();
    let (bw2, a_idle2, b2, a2, csv2) = milestones();

    // After the first wave, B spreads over both egresses …
    assert!(
        bw1.contains(&R2) && bw1.contains(&R3),
        "B must spread over R2 and R3 after the first wave: {bw1:?}"
    );
    // … while A still forwards only via B until its own wave hits.
    assert_eq!(a_idle1, vec![B], "A untouched until the t=35 wave");

    // The paper's single-lie plan at B: one slot each via R2 and R3.
    assert_eq!(b1, vec![R2, R3], "B's even split once plans settle");
    // The paper's two-lie plan at A: 3 slots, two of them via R1.
    assert_eq!(a1.len(), 3, "A has 3 ECMP slots after the second wave");
    assert_eq!(
        a1.iter().filter(|r| **r == R1).count(),
        2,
        "two of A's slots point at R1 (the 2/3 share)"
    );
    assert!(a1.contains(&B), "one of A's slots still points at B");

    // Same seed ⇒ same plans, same everything.
    assert_eq!(bw1, bw2, "first-wave reaction differs between runs");
    assert_eq!(a_idle1, a_idle2);
    assert_eq!(b1, b2, "single-lie plan differs between runs");
    assert_eq!(a1, a2, "two-lie plan differs between runs");
    assert_eq!(csv1, csv2, "recorded traces differ between runs");
}
