//! Offline reproduction of every number in Fig. 1 (panels a–d).
//!
//! These tests use only the analytical layers (SPF, load model,
//! optimizer, augmentation) — no event simulation — and assert the
//! paper's exact values.

use fibbing::demo::{paper_capacities, paper_topology, A, B, BLUE, C, R1, R2, R3, R4};
use fibbing::prelude::*;

/// Fig. 1b: both sources send 100 units; the overlap on B–R2–C
/// doubles the load there (the "200" relative load in the figure).
#[test]
fn fig1b_overload_on_b_r2_c() {
    let topo = paper_topology();
    let demands = [
        Demand {
            src: A,
            prefix: BLUE,
            rate: 100.0,
        },
        Demand {
            src: B,
            prefix: BLUE,
            rate: 100.0,
        },
    ];
    let loads = spread(&topo, &demands).expect("routable");
    assert!((loads[&(A, B)] - 100.0).abs() < 1e-9);
    assert!(
        (loads[&(B, R2)] - 200.0).abs() < 1e-9,
        "B-R2 must carry 200"
    );
    assert!(
        (loads[&(R2, C)] - 200.0).abs() < 1e-9,
        "R2-C must carry 200"
    );
    assert_eq!(loads.get(&(A, R1)), None, "the long path is unused");
    assert_eq!(loads.get(&(B, R3)), None, "B-R3 is unused");
    // Max relative load = 200 on capacity-100 links.
    let caps = paper_capacities(100.0);
    assert!((max_utilization(&loads, &caps) - 2.0).abs() < 1e-9);
}

/// Fig. 1c: the computed augmentation is exactly the paper's — one
/// fake node at B announcing the blue prefix at cost 2 resolving to
/// R3, and two fake nodes at A at cost 3 resolving to R1.
#[test]
fn fig1c_exact_lies() {
    let topo = paper_topology();
    let caps = paper_capacities(100.0);
    let plan =
        plan_paths(&topo, BLUE, &[(A, 100.0), (B, 100.0)], &caps, 0.50, 8).expect("plan exists");
    let mut alloc = LieAllocator::new();
    let aug = augment(&topo, &plan.dag, &mut alloc).expect("augmentable");
    let lies = reduce(&topo, &plan.dag, &aug.lies);

    assert_eq!(lies.len(), 3, "the paper injects exactly 3 fake nodes");
    let at_b: Vec<&Lie> = lies.iter().filter(|l| l.attach == B).collect();
    let at_a: Vec<&Lie> = lies.iter().filter(|l| l.attach == A).collect();
    assert_eq!(at_b.len(), 1, "one fake node fB at B");
    assert_eq!(at_a.len(), 2, "two fake nodes fA at A");
    assert_eq!(
        at_b[0].cost_at_attach(),
        Metric(2),
        "fB announces at cost 2"
    );
    assert_eq!(at_b[0].fw.router, R3, "fB resolves to R3");
    for l in &at_a {
        assert_eq!(l.cost_at_attach(), Metric(3), "fA announces at cost 3");
        assert_eq!(l.fw.router, R1, "fA resolves to R1");
    }
    // The two fA lies occupy distinct gateway addresses.
    assert_ne!(at_a[0].fw, at_a[1].fw);
}

/// Fig. 1c caption: fB gives B two equal-cost paths; fA×2 give A
/// three.
#[test]
fn fig1c_path_counts() {
    let topo = paper_topology();
    let caps = paper_capacities(100.0);
    let plan = plan_paths(&topo, BLUE, &[(A, 100.0), (B, 100.0)], &caps, 0.50, 8).unwrap();
    let mut alloc = LieAllocator::new();
    let aug = augment(&topo, &plan.dag, &mut alloc).unwrap();
    let lies = reduce(&topo, &plan.dag, &aug.lies);
    let augmented = apply_all(&topo, &lies);

    let rt_b = compute_routes(&augmented, B);
    assert_eq!(rt_b.nexthops(BLUE).len(), 2, "B: 2 equal-cost slots");
    let rt_a = compute_routes(&augmented, A);
    assert_eq!(rt_a.nexthops(BLUE).len(), 3, "A: 3 equal-cost slots");
    // A's slots: one via B (primary), two via R1 (secondary addrs).
    let a_routers: Vec<RouterId> = rt_a.nexthops(BLUE).iter().map(|h| h.router).collect();
    assert_eq!(a_routers.iter().filter(|r| **r == B).count(), 1);
    assert_eq!(a_routers.iter().filter(|r| **r == R1).count(), 2);
}

/// Fig. 1d: the augmented data plane carries 33/66/66… and the max
/// link load drops from 200 to ~66.7.
#[test]
fn fig1d_balanced_loads() {
    let topo = paper_topology();
    let caps = paper_capacities(100.0);
    let plan = plan_paths(&topo, BLUE, &[(A, 100.0), (B, 100.0)], &caps, 0.50, 8).unwrap();
    let mut alloc = LieAllocator::new();
    let aug = augment(&topo, &plan.dag, &mut alloc).unwrap();
    let lies = reduce(&topo, &plan.dag, &aug.lies);
    let augmented = apply_all(&topo, &lies);

    let demands = [
        Demand {
            src: A,
            prefix: BLUE,
            rate: 100.0,
        },
        Demand {
            src: B,
            prefix: BLUE,
            rate: 100.0,
        },
    ];
    let loads = spread(&augmented, &demands).expect("routable");
    let want = [
        ((A, B), 100.0 / 3.0),  // "33"
        ((A, R1), 200.0 / 3.0), // "66"
        ((R1, R4), 200.0 / 3.0),
        ((R4, C), 200.0 / 3.0),
        ((B, R2), 200.0 / 3.0),
        ((R2, C), 200.0 / 3.0),
        ((B, R3), 200.0 / 3.0),
        ((R3, C), 200.0 / 3.0),
    ];
    for (key, expect) in want {
        let got = loads.get(&key).copied().unwrap_or(0.0);
        assert!(
            (got - expect).abs() < 1e-6,
            "{key:?}: expected {expect:.1}, got {got:.1}"
        );
    }
    assert!((max_utilization(&loads, &caps) - 2.0 / 3.0).abs() < 1e-6);
}

/// The fractional min-max optimum for the Fig. 1 demand is exactly
/// 2/3 — Fibbing's rounded plan achieves it (the paper's "Fibbing can
/// implement the optimal solution" claim).
#[test]
fn fibbing_achieves_min_max_optimum() {
    let topo = paper_topology();
    let caps = paper_capacities(100.0);
    let theta = min_max_theta(&topo, BLUE, &[(A, 100.0), (B, 100.0)], &caps).unwrap();
    assert!((theta - 2.0 / 3.0).abs() < 1e-3, "θ* = {theta}");
}

/// The verifier proves the full plan: constrained routers match the
/// DAG, everyone else is untouched, and forwarding is loop-free.
#[test]
fn plan_verifies_end_to_end() {
    let topo = paper_topology();
    let caps = paper_capacities(100.0);
    let plan = plan_paths(&topo, BLUE, &[(A, 100.0), (B, 100.0)], &caps, 0.50, 8).unwrap();
    let mut alloc = LieAllocator::new();
    let aug = augment(&topo, &plan.dag, &mut alloc).unwrap();
    let report = check_preserving(&topo, &apply_all(&topo, &aug.lies), &plan.dag);
    assert!(report.ok(), "{report}");
}
