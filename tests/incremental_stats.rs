//! Guard rails for the incremental data plane.
//!
//! The dirty-set machinery is invisible in functional tests — a
//! regression back to global recompute would still produce correct
//! traces, just O(flows × events) slower. These tests pin the
//! *counters*: across a controller-on scenario with flow churn, lie
//! churn, and a link failure, most path resolutions must be skipped,
//! the allocator must answer some reallocations from cache, and
//! lie-only SPF runs must stay partial.

use fibbing::netsim::sim::SimStats;
use fibbing::scenario::runner::{build, RunOptions};
use fibbing::scenario::spec::ScenarioSpec;

/// A compact controller-on scenario with everything the dirty set
/// tracks: a flash crowd (flow churn), an overloaded shortest path
/// (lie churn), a failure and recovery (link + FIB invalidations).
const SPEC: &str = r#"
name = "incremental-guard"
description = "counter guard for dirty-set recompute"
horizon_secs = 40.0
seed = 5
capacity = 2.5e6
sinks = [25]

[topology]
kind = "grid"
rows = 5
cols = 5

[controller]
attach = 25
target_util = 0.6
default_flow_rate = 100000.0

[[workload]]
kind = "constant"
at = 8.0
src = 1
n = 50
rate = 1e5
video_secs = 120.0

[[workload]]
kind = "constant"
at = 10.0
src = 5
n = 50
rate = 1e5
video_secs = 120.0

[[event]]
at = 20.0
action = "fail_link"
a = 24
b = 25

[[event]]
at = 30.0
action = "restore_link"
a = 24
b = 25
"#;

fn run_guard() -> (SimStats, u64) {
    let spec = ScenarioSpec::from_toml_str(SPEC).unwrap();
    let mut run = build(&spec, RunOptions::default()).unwrap();
    run.run_until_secs(40.0);
    let injections = run
        .ctrl
        .as_ref()
        .expect("controller on")
        .lock()
        .stats
        .injections;
    (run.sim.stats(), injections)
}

#[test]
fn dirty_set_counters_prove_incrementality() {
    let (stats, injections) = run_guard();

    // The engine reallocated and resolved paths at all.
    assert!(stats.reallocs > 40, "reallocs: {}", stats.reallocs);
    assert!(
        stats.paths_resolved > 100,
        "paths_resolved: {}",
        stats.paths_resolved
    );

    // The heart of the guard: the old engine re-resolved every flow at
    // every reallocation (`paths_resolved + paths_skipped` is exactly
    // that count, so a regression to global recompute lands at ratio
    // 1). This deliberately lie-churn-heavy scenario still skips over
    // half the work (observed ~2.7x; the 16-28x headline ratios are
    // tracked by the `sim_scale` bench on the larger sweeps).
    let naive = stats.paths_resolved + stats.paths_skipped;
    assert!(
        stats.paths_resolved * 2 <= naive,
        "dirty-set resolution no longer incremental: resolved {} of naive {}",
        stats.paths_resolved,
        naive
    );

    // Reallocations whose inputs did not change (FIB churn that moved
    // no path) must be answered from the allocator cache.
    assert!(
        stats.alloc_skips > 0,
        "allocator never skipped: fills {} skips {}",
        stats.alloc_fills,
        stats.alloc_skips
    );
    assert_eq!(stats.alloc_fills + stats.alloc_skips, stats.reallocs);

    // The controller lied (the scenario overloads the shortest path),
    // and lie churn must ride the partial-SPF path, not full Dijkstra.
    assert!(injections > 0, "no lies injected");
    assert!(
        stats.spf_partial_runs > 0,
        "lie churn re-ran full SPF everywhere: full {} partial {}",
        stats.spf_full_runs,
        stats.spf_partial_runs
    );

    // Full runs still happen (startup convergence + the failure), but
    // partial runs must not degenerate to zero share.
    assert!(stats.spf_full_runs > 0);

    // And the counters themselves are part of the determinism
    // contract: a second same-seed run must reproduce them exactly.
    let (again, _) = run_guard();
    assert_eq!(
        (
            stats.events,
            stats.reallocs,
            stats.paths_resolved,
            stats.paths_skipped,
            stats.alloc_fills,
            stats.alloc_skips,
            stats.spf_full_runs,
            stats.spf_partial_runs,
        ),
        (
            again.events,
            again.reallocs,
            again.paths_resolved,
            again.paths_skipped,
            again.alloc_fills,
            again.alloc_skips,
            again.spf_full_runs,
            again.spf_partial_runs,
        ),
        "incrementality counters are not deterministic"
    );
}
