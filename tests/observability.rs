//! Workspace tests for the tracing spine (`fib-trace`).
//!
//! Two guarantees are pinned here:
//!
//! * **Determinism modulo wall time** — exporting a Chrome trace of
//!   the same seeded scenario twice yields byte-identical documents
//!   once the wall-derived `"ts"`/`"dur"` fields are masked, and the
//!   lie-lifecycle audit logs (which carry no wall fields at all)
//!   match record for record.
//! * **Noop is absent** — with no sink installed, running a pinned
//!   scenario arms zero spans: the default configuration cannot
//!   disturb (or even observe) the simulation. Together with the
//!   byte-pinned artifacts in `tests/determinism.rs` this is the "the
//!   spine is write-only" tripwire.

use fib_trace::{ChromeSink, Phase};
use fibbing::scenario::runner::{build, RunOptions};
use fibbing::scenario::suite::load_scenario;

/// Run `metro_edge` to `horizon` seconds with a Chrome sink installed
/// and hand the sink back. The scenario reacts (injects lies) within
/// the first 10 simulated seconds, so the trace exercises every layer.
fn traced_metro_edge(horizon: f64) -> ChromeSink {
    let spec = load_scenario("metro_edge").expect("shipped scenario");
    fib_trace::install(Box::new(ChromeSink::new(500_000)));
    let mut run = build(
        &spec,
        RunOptions {
            horizon_secs: Some(horizon),
            ..RunOptions::default()
        },
    )
    .expect("build metro_edge");
    run.run_until_secs(horizon);
    let _ = run.finish();
    *fib_trace::take()
        .expect("sink still installed")
        .into_any()
        .downcast::<ChromeSink>()
        .expect("chrome sink")
}

#[test]
fn chrome_export_is_deterministic_modulo_wall_time() {
    let a = traced_metro_edge(15.0);
    let b = traced_metro_edge(15.0);
    assert_eq!(
        fib_trace::mask_wall_fields(&a.to_json()),
        fib_trace::mask_wall_fields(&b.to_json()),
        "same seed must export the same trace once ts/dur are masked"
    );
    // Audit records carry no wall-clock fields, so they must be equal
    // outright — trigger strings, candidate counts, utilizations, all.
    assert_eq!(a.audits(), b.audits());
    assert!(
        !a.audits().is_empty(),
        "metro_edge must inject at least one lie by t=15"
    );
}

#[test]
fn trace_covers_every_layer_of_the_stack() {
    let sink = traced_metro_edge(15.0);
    let json = sink.to_json();
    for phase in [
        Phase::KernelDispatch,
        Phase::SpfFull,
        Phase::SpfPartial,
        Phase::PrefixRoutes,
        Phase::SolverProbe,
        Phase::Settle,
        Phase::FibInstall,
        Phase::CtrlPoll,
        Phase::CtrlOptimize,
    ] {
        assert!(
            sink.attribution().iter().any(|a| a.phase == phase.name()),
            "no spans recorded for {}",
            phase.name()
        );
    }
    assert!(json.contains("\"name\":\"lie.inject\""), "audit instants");
    assert!(json.contains("\"name\":\"queue.depth\""), "kernel gauge");
    assert!(
        json.contains("\"name\":\"settle.dirty_flows\""),
        "dirty-set histogram"
    );
    let pct_sum: f64 = sink.attribution().iter().map(|a| a.pct).sum();
    assert!(
        (pct_sum - 100.0).abs() < 1e-6,
        "self-time attribution must partition the traced clock, got {pct_sum}"
    );
}

#[test]
fn noop_default_arms_zero_spans() {
    assert!(!fib_trace::enabled(), "no sink installed by default");
    let before = fib_trace::spans_started();
    let spec = load_scenario("metro_edge").expect("shipped scenario");
    let mut run = build(
        &spec,
        RunOptions {
            horizon_secs: Some(15.0),
            ..RunOptions::default()
        },
    )
    .expect("build metro_edge");
    run.run_until_secs(15.0);
    let _ = run.finish();
    assert!(!fib_trace::enabled());
    assert_eq!(
        fib_trace::spans_started(),
        before,
        "a sink-less run must not arm a single span"
    );
}
