//! Resilience scenarios beyond the paper's happy path: link failure
//! during the flash crowd, and two concurrent crowds toward different
//! prefixes (the controller manages lies per destination).

use fibbing::demo::{self, DemoConfig, A, B, BLUE, C, R1, R2, R3, R4};
use fibbing::prelude::*;

/// Allocate an id and schedule a typed flow start (the sequence the
/// old `schedule_flow` convenience produced).
fn sched_flow(sim: &mut Sim, at: Timestamp, spec: FlowSpec) -> FlowId {
    let id = sim.new_flow_id();
    sim.schedule(at, Event::FlowStart { id, spec });
    id
}

/// During the controlled flash crowd, the B–R2 link dies. The IGP
/// reconverges, flows reroute, and — crucially — the injected lies do
/// not trap traffic: everything keeps being delivered loop-free.
#[test]
fn link_failure_during_crowd_reroutes() {
    let cfg = DemoConfig::default();
    let mut run = demo::build(&cfg);
    run.sim.schedule(
        Timestamp::from_secs(45),
        Event::LinkAdmin {
            a: B,
            b: R2,
            up: false,
        },
    );
    run.sim.start();
    run.sim.run_until(Timestamp::from_secs(55));

    // B must have rerouted everything away from the dead link.
    let rec = run.sim.recorder();
    let b_r2_after = rec.mean_over("B-R2", 50.0, 54.0).unwrap_or(0.0);
    assert!(b_r2_after < 1.0, "dead link still carries {b_r2_after}");
    // Total delivery continues: remaining egress links carry the load.
    let b_r3 = rec.mean_over("B-R3", 50.0, 54.0).unwrap_or(0.0);
    let a_r1 = rec.mean_over("A-R1", 50.0, 54.0).unwrap_or(0.0);
    assert!(
        b_r3 + a_r1 > 4.0e6,
        "surviving paths must carry the crowd: B-R3={b_r3} A-R1={a_r1}"
    );
    // Every flow still has a loop-free path.
    let unrouted = run.sim.flows().filter(|f| f.path.is_none()).count();
    assert_eq!(unrouted, 0, "{unrouted} flows lost their path");
}

/// Two flash crowds toward two different prefixes: lies are
/// per-destination, so relieving one prefix must not steer the other.
#[test]
fn two_prefixes_are_steered_independently() {
    let green = Prefix::net24(2);
    let mut sim = Sim::new(SimConfig::default());
    for r in [A, B, R1, R2, R3, R4, C] {
        sim.add_router(r);
    }
    for (a, b, w) in fibbing::demo::PAPER_LINKS {
        sim.add_link(LinkSpec::new(a, b, Metric(w), 4.0e6));
    }
    sim.announce_prefix(C, BLUE);
    sim.announce_prefix(R4, green); // second destination, behind R4
    sim.add_controller_speaker(RouterId(100), R3);
    let mut ctl = ControllerConfig::new(RouterId(100));
    ctl.target_util = 0.5;
    ctl.default_flow_rate = 125_000.0;
    sim.add_app(Box::new(FibbingController::new(ctl)));

    // Crowd 1: 31 videos B → blue (needs the fB lie).
    for i in 0..31u64 {
        sched_flow(
            &mut sim,
            Timestamp::from_secs(10) + Dur::from_millis(i * 20),
            FlowSpec::new(B, BLUE).with_cap(125_000.0),
        );
    }
    // Light traffic A → green (no congestion there).
    for i in 0..4u64 {
        sched_flow(
            &mut sim,
            Timestamp::from_secs(12) + Dur::from_millis(i * 20),
            FlowSpec::new(A, green).with_cap(125_000.0),
        );
    }
    sim.start();
    sim.run_until(Timestamp::from_secs(40));

    // Blue got its extra slot at B; green kept its natural single path.
    let b_blue = sim.ctx().fib_nexthops(B, BLUE);
    assert!(b_blue.len() >= 2, "blue crowd must be spread: {b_blue:?}");
    let a_green = sim.ctx().fib_nexthops(A, green);
    assert_eq!(
        a_green.len(),
        1,
        "green must be untouched by blue's lies: {a_green:?}"
    );
    assert_eq!(a_green[0].router, R1, "green's natural path is via R1");
    // And green flows deliver at full rate.
    for f in sim.flows() {
        assert!(
            (f.rate - 125_000.0).abs() < 1.0,
            "flow {} starved at {}",
            f.id,
            f.rate
        );
    }
}

/// Stopping the crowd mid-run retracts lies; restarting it re-installs
/// them — the controller is idempotent across cycles.
#[test]
fn crowd_cycles_install_and_retract_repeatedly() {
    let mut sim = Sim::new(SimConfig::default());
    for r in [A, B, R1, R2, R3, R4, C] {
        sim.add_router(r);
    }
    for (a, b, w) in fibbing::demo::PAPER_LINKS {
        sim.add_link(LinkSpec::new(a, b, Metric(w), 4.0e6));
    }
    sim.announce_prefix(C, BLUE);
    sim.add_controller_speaker(RouterId(100), R3);
    let mut ctl = ControllerConfig::new(RouterId(100));
    ctl.target_util = 0.5;
    sim.add_app(Box::new(FibbingController::new(ctl)));

    // Two crowd waves with a quiet gap.
    let wave = |start: u64, stop: u64, sim: &mut Sim| {
        let mut ids = Vec::new();
        for i in 0..31u64 {
            let id = sched_flow(
                sim,
                Timestamp::from_secs(start) + Dur::from_millis(i * 10),
                FlowSpec::new(B, BLUE).with_cap(125_000.0),
            );
            ids.push(id);
        }
        for id in ids {
            sim.schedule(Timestamp::from_secs(stop), Event::FlowStop { id });
        }
    };
    wave(10, 30, &mut sim);
    wave(60, 80, &mut sim);
    sim.start();

    sim.run_until(Timestamp::from_secs(25));
    assert!(sim.ctx().fib_nexthops(B, BLUE).len() >= 2, "wave 1 spread");
    sim.run_until(Timestamp::from_secs(50));
    assert_eq!(
        sim.ctx().fib_nexthops(B, BLUE).len(),
        1,
        "quiet gap: lies retracted"
    );
    sim.run_until(Timestamp::from_secs(75));
    assert!(sim.ctx().fib_nexthops(B, BLUE).len() >= 2, "wave 2 spread");
    sim.run_until(Timestamp::from_secs(100));
    assert_eq!(
        sim.ctx().fib_nexthops(B, BLUE).len(),
        1,
        "after wave 2: retracted again"
    );
}
