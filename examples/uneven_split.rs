//! Uneven ECMP splitting: accuracy versus lie count.
//!
//! Fibbing realizes fractional splits by replicating fake next-hops:
//! more ECMP slots approximate a target ratio better but cost more
//! lies (and FIB entries). This example sweeps slot budgets for
//! several target ratios and shows the realized split measured over
//! hashed flows in the live simulator.
//!
//! Run with: `cargo run --example uneven_split`

use fibbing::prelude::*;

fn realized_fraction(weights: &[u32]) -> Vec<f64> {
    // Build a star: ingress r1 with one neighbor per target, prefix
    // reachable through each; measure hashed flow dispersion.
    let n = weights.len() as u32;
    let mut sim = Sim::new(SimConfig::default());
    let ingress = RouterId(1);
    sim.add_router(ingress);
    let sink = RouterId(100);
    sim.add_router(sink);
    let p = Prefix::net24(1);
    for i in 0..n {
        let mid = RouterId(2 + i);
        sim.add_router(mid);
        sim.add_link(LinkSpec::new(ingress, mid, Metric(1), 1e9));
        sim.add_link(LinkSpec::new(mid, sink, Metric(1), 1e9));
    }
    sim.announce_prefix(sink, p);
    sim.add_controller_speaker(RouterId(99), ingress);
    sim.start();
    sim.run_until(Timestamp::from_secs(10));
    // Inject weights[i] slots toward neighbor i (one is free via the
    // natural ECMP set, which includes every mid router at equal cost
    // — so add weight-1 extra lies per mid).
    {
        let mut api = sim.ctx();
        let mut fake = 0;
        for (i, w) in weights.iter().enumerate() {
            let mid = RouterId(2 + i as u32);
            for k in 1..*w {
                api.inject_fake(
                    RouterId(99),
                    RouterId::fake(fake),
                    ingress,
                    Metric(1),
                    p,
                    Metric(1),
                    FwAddr::secondary(mid, k as u16),
                )
                .unwrap();
                fake += 1;
            }
        }
    }
    sim.run_until(Timestamp::from_secs(20));
    let flows = 4000u64;
    let mut ids = Vec::new();
    for i in 0..flows {
        ids.push(
            sim.ctx()
                .start_flow(FlowSpec::new(ingress, p).with_cap(1.0).with_hash_id(i)),
        );
    }
    sim.run_until(Timestamp::from_secs(21));
    let mut counts = vec![0u64; weights.len()];
    for id in ids {
        let first = sim.ctx().flow_path(id).expect("routable")[0].to;
        counts[(first.0 - 2) as usize] += 1;
    }
    counts.iter().map(|c| *c as f64 / flows as f64).collect()
}

fn main() {
    println!("target ratio -> slot plan (plan_split) -> hashed-flow realization\n");
    let cases: Vec<(&str, Vec<f64>)> = vec![
        ("1:2      ", vec![1.0 / 3.0, 2.0 / 3.0]),
        ("1:1      ", vec![0.5, 0.5]),
        ("45:55    ", vec![0.45, 0.55]),
        ("1:2:7    ", vec![0.1, 0.2, 0.7]),
    ];
    for (label, fractions) in cases {
        for budget in [4u32, 8, 16] {
            let plan = plan_split(&fractions, budget).expect("valid fractions");
            let realized = realized_fraction(&plan.weights);
            let realized_s: Vec<String> = realized.iter().map(|f| format!("{:.3}", f)).collect();
            println!(
                "  {label} budget {budget:>2}: slots {plan} -> measured [{}]",
                realized_s.join(", ")
            );
        }
        println!();
    }
    println!("(measured fractions deviate from slot shares only by hash");
    println!(" dispersion over 4000 flows — the same effect real ECMP has)");
}
