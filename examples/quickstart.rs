//! Quickstart: lie to a network and prove the lie worked.
//!
//! Builds the paper's Fig. 1a topology offline, asks Fibbing for an
//! uneven 1/3–2/3 split at router A, and shows the computed fake
//! nodes, the resulting ECMP slots, and the verifier's judgment.
//!
//! Run with: `cargo run --example quickstart`

use fibbing::demo::{name, paper_topology, A, B, BLUE, R1};
use fibbing::prelude::*;

fn main() {
    let topo = paper_topology();
    println!("== the real topology (Fig. 1a) ==");
    for (from, to, m) in topo.all_links() {
        if from < to {
            println!("  {}-{}  weight {}", name(from), name(to), m);
        }
    }
    let natural = compute_routes(&topo, A);
    println!(
        "\nA's natural route to {BLUE}: cost {}, next-hops {:?}",
        natural.route(BLUE).unwrap().dist,
        natural.nexthops(BLUE)
    );

    // Requirement: A splits 1/3 via B, 2/3 via R1.
    let mut dag = WeightedDag::new(BLUE);
    dag.require(A, &[(B, 1), (R1, 2)]);
    println!("\n== requirement ==\n{dag}");

    let mut alloc = LieAllocator::new();
    let plan = augment(&topo, &dag, &mut alloc).expect("requirement is realizable");
    println!("== computed lies ==");
    for lie in &plan.lies {
        println!("  {lie}");
    }

    let augmented = apply_all(&topo, &plan.lies);
    let table = compute_routes(&augmented, A);
    println!("\nA's augmented ECMP slots: {:?}", table.nexthops(BLUE));
    for (router, frac) in table.route(BLUE).unwrap().split_by_router() {
        println!(
            "  {} carries {:.1}% of A's traffic",
            name(router),
            frac * 100.0
        );
    }

    let report = check_preserving(&topo, &augmented, &dag);
    println!("\nverifier: {report}");
    assert!(report.ok());

    // The lie-churn is cheap: fake nodes never affect real distances,
    // so routers run only the partial SPF route phase.
    let mut engine = SpfEngine::new();
    let _ = engine.compute(&topo, A);
    let _ = engine.compute(&augmented, A);
    println!(
        "SPF work at A: {} full Dijkstra run(s), {} partial (lie-only) run(s)",
        engine.full_runs, engine.partial_runs
    );
}
