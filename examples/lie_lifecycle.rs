//! The life of a lie, at protocol level.
//!
//! Watches a fake LSA be injected by the controller speaker, flood
//! through the network, change FIBs, survive (freshness rules), and
//! finally be purged — with the control-plane message and byte counts
//! at every step. This is the "very limited control-plane overhead"
//! claim of the paper made concrete.
//!
//! Run with: `cargo run --example lie_lifecycle`

use fibbing::demo::{name, A, B, BLUE, C, PAPER_LINKS, R1, R2, R3, R4};
use fibbing::prelude::*;

fn fib_line(sim: &mut Sim) -> String {
    let mut parts = Vec::new();
    for r in [A, B] {
        let hops = sim.ctx().fib_nexthops(r, BLUE);
        let hs: Vec<String> = hops.iter().map(|h| format!("{h}")).collect();
        parts.push(format!("{}: [{}]", name(r), hs.join(", ")));
    }
    parts.join("   ")
}

fn main() {
    let mut sim = Sim::new(SimConfig::default());
    for r in [A, B, R1, R2, R3, R4, C] {
        sim.add_router(r);
    }
    for (a, b, w) in PAPER_LINKS {
        sim.add_link(LinkSpec::new(a, b, Metric(w), 4e6));
    }
    sim.announce_prefix(C, BLUE);
    sim.add_controller_speaker(RouterId(100), R3);
    sim.start();

    sim.run_until(Timestamp::from_secs(10));
    let s0 = sim.stats();
    println!("t=10s  IGP converged.");
    println!("       {}", fib_line(&mut sim));
    println!(
        "       control plane so far: {} packets, {} bytes (full adjacency bring-up)",
        s0.ctrl_pkts, s0.ctrl_bytes
    );

    // Inject fB: one fake node at B, cost 2, resolving to R3.
    {
        let mut api = sim.ctx();
        api.inject_fake(
            RouterId(100),
            RouterId::fake(0),
            B,
            Metric(1),
            BLUE,
            Metric(1),
            FwAddr::secondary(R3, 1),
        )
        .unwrap();
    }
    sim.run_until(Timestamp::from_secs(12));
    let s1 = sim.stats();
    println!("\nt=12s  injected fB (fake node at B, cost 2, via R3).");
    println!("       {}", fib_line(&mut sim));
    println!(
        "       marginal control plane: {} packets, {} bytes — one LSA flooded network-wide",
        s1.ctrl_pkts - s0.ctrl_pkts,
        s1.ctrl_bytes - s0.ctrl_bytes
    );

    // Inject the two fA lies.
    {
        let mut api = sim.ctx();
        for k in 1..=2u16 {
            api.inject_fake(
                RouterId(100),
                RouterId::fake(u32::from(k)),
                A,
                Metric(1),
                BLUE,
                Metric(2),
                FwAddr::secondary(R1, k),
            )
            .unwrap();
        }
    }
    sim.run_until(Timestamp::from_secs(14));
    let s2 = sim.stats();
    println!("\nt=14s  injected fA x2 (fake nodes at A, cost 3, via R1).");
    println!("       {}", fib_line(&mut sim));
    println!(
        "       marginal control plane: {} packets, {} bytes",
        s2.ctrl_pkts - s1.ctrl_pkts,
        s2.ctrl_bytes - s1.ctrl_bytes
    );

    // Show the LSDB view of a remote router: everyone knows the lies.
    let lsdb_len = sim.instance(R4).map(|i| i.lsdb().len()).unwrap_or(0);
    let fakes_at_r4 = sim
        .instance(R4)
        .map(|i| i.lsdb().iter().filter(|l| l.key.origin.is_fake()).count())
        .unwrap_or(0);
    println!("\n       R4's LSDB holds {lsdb_len} LSAs, {fakes_at_r4} of them lies.");

    // Retract everything (MaxAge purge floods).
    {
        let mut api = sim.ctx();
        for k in 0..=2u32 {
            api.retract_fake(RouterId(100), RouterId::fake(k)).unwrap();
        }
    }
    sim.run_until(Timestamp::from_secs(20));
    let s3 = sim.stats();
    println!("\nt=20s  retracted all lies (MaxAge purges).");
    println!("       {}", fib_line(&mut sim));
    println!(
        "       marginal control plane: {} packets, {} bytes",
        s3.ctrl_pkts - s2.ctrl_pkts,
        s3.ctrl_bytes - s2.ctrl_bytes
    );
    let fakes_left = sim
        .instance(R4)
        .map(|i| i.lsdb().iter().filter(|l| l.key.origin.is_fake()).count())
        .unwrap_or(99);
    println!("       R4's LSDB now holds {fakes_left} lies — the network forgot.");
}
