//! The paper's demo, end to end: a video flash crowd with and without
//! the Fibbing controller.
//!
//! Reproduces Fig. 2 (throughput over A–R1, B–R2, B–R3 with flows
//! arriving at t = 0/15/35 s) and the Sec. 3 observation that
//! playback is smooth with the controller and stutters without.
//!
//! Run with: `cargo run --release --example flash_crowd`

use fibbing::demo::{self, DemoConfig};
use fibbing::prelude::*;

fn run_once(controller: bool) {
    let cfg = DemoConfig {
        controller,
        ..DemoConfig::default()
    };
    println!(
        "\n================ controller {} ================",
        if controller { "ENABLED" } else { "DISABLED" }
    );
    let run = demo::run(&cfg, 55);
    let rec = run.sim.recorder();

    println!("link throughput over time (x: 0..55 s, y: 0..4 MB/s):");
    print!(
        "{}",
        rec.ascii_chart(&["A-R1", "B-R2", "B-R3"], 72, 55.0, cfg.capacity)
    );
    for phase in [
        (8.0, 14.0, "t in  8..14s"),
        (25.0, 34.0, "t in 25..34s"),
        (45.0, 54.0, "t in 45..54s"),
    ] {
        let (from, to, label) = phase;
        println!(
            "  {label}:  A-R1 {:>9.0} B/s   B-R2 {:>9.0} B/s   B-R3 {:>9.0} B/s",
            rec.mean_over("A-R1", from, to).unwrap_or(0.0),
            rec.mean_over("B-R2", from, to).unwrap_or(0.0),
            rec.mean_over("B-R3", from, to).unwrap_or(0.0),
        );
    }

    let reports: Vec<QoeReport> = run.qoe.lock().values().cloned().collect();
    let summary = summarize(&reports);
    println!(
        "\nQoE over {} sessions: {} smooth, {} stalls ({:.1}s stalled), mean score {:.2}",
        summary.sessions, summary.smooth, summary.stalls, summary.stall_secs, summary.mean_score
    );
}

fn main() {
    println!("Fibbing in action — the SIGCOMM'16 demo scenario");
    println!("62 videos of 125 kB/s; links of 4 MB/s; schedule 1/+30/+31 at t=0/15/35 s");
    run_once(true);
    run_once(false);
    println!("\n(Compare the two runs: with Fibbing the surge spreads over");
    println!(" B-R3 and A-R1 and everyone streams smoothly; without it the");
    println!(" B-R2 link saturates and playback stutters.)");
}
