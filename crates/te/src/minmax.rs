//! Reference bounds for the optimality-gap table (T3).
//!
//! * [`even_ecmp_max_util`] — what plain IGP ECMP achieves (the
//!   starting point of the demo);
//! * [`best_ecmp_weights_max_util`] — the best *any* even-ECMP weight
//!   setting can do, by exhaustive search over small weight spaces
//!   (finding it is NP-hard in general — Chiesa et al., INFOCOM'14 —
//!   which is exactly why the paper dismisses weight tuning);
//! * Fibbing's achievable point and the fractional optimum θ* come
//!   from `fib-core::optimizer` and are combined with these in the
//!   benchmark harness.

use crate::demand::TrafficMatrix;
use fib_igp::loadmodel::{max_utilization, spread};
use fib_igp::topology::Topology;
use fib_igp::types::{Metric, RouterId};
use std::collections::BTreeMap;

/// Max link utilization of plain ECMP routing on the given weights.
/// `None` if some demand is unroutable.
pub fn even_ecmp_max_util(
    topo: &Topology,
    tm: &TrafficMatrix,
    capacities: &BTreeMap<(RouterId, RouterId), f64>,
) -> Option<f64> {
    let loads = spread(topo, &tm.demands()).ok()?;
    Some(max_utilization(&loads, &capacities_f(capacities)))
}

fn capacities_f(caps: &BTreeMap<(RouterId, RouterId), f64>) -> BTreeMap<(RouterId, RouterId), f64> {
    caps.clone()
}

/// Exhaustively search symmetric weight assignments in
/// `1..=max_weight` for the one minimizing max utilization under even
/// ECMP. Exponential (`max_weight ^ links`) — only for demo-scale
/// inputs; asserts the search space stays below ~2 million
/// combinations.
pub fn best_ecmp_weights_max_util(
    topo: &Topology,
    tm: &TrafficMatrix,
    capacities: &BTreeMap<(RouterId, RouterId), f64>,
    max_weight: u32,
) -> Option<(f64, Topology)> {
    let mut sym_links: Vec<(RouterId, RouterId)> = topo
        .all_links()
        .filter(|(a, b, _)| a < b)
        .map(|(a, b, _)| (a, b))
        .collect();
    sym_links.sort();
    sym_links.dedup();
    let combos = (max_weight as u64).checked_pow(sym_links.len() as u32)?;
    assert!(
        combos <= 2_000_000,
        "search space too large: {combos} combinations"
    );

    let mut best: Option<(f64, Topology)> = None;
    let mut assignment = vec![1u32; sym_links.len()];
    loop {
        // Evaluate the current assignment.
        let mut cand = topo.clone();
        for ((a, b), w) in sym_links.iter().zip(&assignment) {
            cand.set_metric(*a, *b, Metric(*w)).unwrap();
            cand.set_metric(*b, *a, Metric(*w)).unwrap();
        }
        if let Ok(loads) = spread(&cand, &tm.demands()) {
            let u = max_utilization(&loads, capacities);
            let better = best.as_ref().map(|(bu, _)| u < *bu - 1e-12).unwrap_or(true);
            if better {
                best = Some((u, cand));
            }
        }
        // Next assignment (odometer).
        let mut i = 0;
        loop {
            if i == assignment.len() {
                return best;
            }
            if assignment[i] < max_weight {
                assignment[i] += 1;
                break;
            }
            assignment[i] = 1;
            i += 1;
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use fib_igp::types::Prefix;

    fn r(n: u32) -> RouterId {
        RouterId(n)
    }

    /// Square with two 2-hop paths from r1 to r4; prefix at r4.
    fn square(asymmetric: bool) -> (Topology, BTreeMap<(RouterId, RouterId), f64>, Prefix) {
        let mut t = Topology::new();
        for i in 1..=4 {
            t.add_router(r(i));
        }
        t.add_link_sym(r(1), r(2), Metric(1)).unwrap();
        t.add_link_sym(r(2), r(4), Metric(1)).unwrap();
        t.add_link_sym(r(1), r(3), Metric(if asymmetric { 3 } else { 1 }))
            .unwrap();
        t.add_link_sym(r(3), r(4), Metric(1)).unwrap();
        let p = Prefix::net24(1);
        t.announce_prefix(r(4), p, Metric::ZERO).unwrap();
        let caps = t.all_links().map(|(a, b, _)| ((a, b), 100.0)).collect();
        (t, caps, p)
    }

    #[test]
    fn even_ecmp_on_asymmetric_weights_hotspots() {
        let (t, caps, p) = square(true);
        let mut tm = TrafficMatrix::new();
        tm.add(r(1), p, 160.0);
        let u = even_ecmp_max_util(&t, &tm, &caps).unwrap();
        assert!((u - 1.6).abs() < 1e-9, "single path carries all: {u}");
    }

    #[test]
    fn exhaustive_search_finds_balanced_weights() {
        let (t, caps, p) = square(true);
        let mut tm = TrafficMatrix::new();
        tm.add(r(1), p, 160.0);
        let (u, best_topo) = best_ecmp_weights_max_util(&t, &tm, &caps, 3).unwrap();
        // Even ECMP can reach 0.8 by making both paths equal cost.
        assert!((u - 0.8).abs() < 1e-9, "best even ECMP: {u}");
        let loads = spread(&best_topo, &tm.demands()).unwrap();
        assert!((loads[&(r(1), r(2))] - 80.0).abs() < 1e-6);
    }

    #[test]
    fn unroutable_demand_is_none() {
        let (mut t, caps, p) = square(false);
        t.add_router(r(9));
        let mut tm = TrafficMatrix::new();
        tm.add(r(9), p, 1.0);
        assert_eq!(even_ecmp_max_util(&t, &tm, &caps), None);
    }

    #[test]
    #[should_panic(expected = "search space too large")]
    fn oversized_search_is_refused() {
        let (t, caps, p) = square(false);
        let mut tm = TrafficMatrix::new();
        tm.add(r(1), p, 10.0);
        let _ = best_ecmp_weights_max_util(&t, &tm, &caps, 64);
    }
}
