//! Reference bounds for the optimality-gap table (T3).
//!
//! * [`even_ecmp_max_util`] — what plain IGP ECMP achieves (the
//!   starting point of the demo);
//! * [`best_ecmp_weights_max_util`] — the best *any* even-ECMP weight
//!   setting can do (finding it is NP-hard in general — Chiesa et al.,
//!   INFOCOM'14 — which is exactly why the paper dismisses weight
//!   tuning). Implemented as a branch-and-bound search over symmetric
//!   weight assignments that returns exactly the exhaustive optimum:
//!   leaves are evaluated by a compact single-Dijkstra-per-prefix load
//!   model with the per-prefix spread memoized on the induced ECMP
//!   DAG (many weight vectors route identically), scalar-multiple
//!   assignments are skipped via a gcd canonicalization when every
//!   cost scales with the assignment (no fixed-metric edges, zero
//!   announce metrics), partial assignments are pruned when the load they
//!   already force onto some link exceeds the incumbent, and the
//!   search exits early once the incumbent meets the weight-free cut
//!   bound no routing can beat;
//! * Fibbing's achievable point and the fractional optimum θ* come
//!   from `fib-core::optimizer` and are combined with these in the
//!   benchmark harness.

use crate::demand::TrafficMatrix;
use fib_igp::loadmodel::{max_utilization, spread};
use fib_igp::topology::Topology;
use fib_igp::types::{Metric, Prefix, RouterId};
use std::collections::{BTreeMap, HashMap};

/// Max link utilization of plain ECMP routing on the given weights.
/// `None` if some demand is unroutable.
pub fn even_ecmp_max_util(
    topo: &Topology,
    tm: &TrafficMatrix,
    capacities: &BTreeMap<(RouterId, RouterId), f64>,
) -> Option<f64> {
    let loads = spread(topo, &tm.demands()).ok()?;
    Some(max_utilization(&loads, capacities))
}

const UNREACH: u64 = u64::MAX;

/// A directed edge of the compact search graph.
struct CEdge {
    from: u32,
    to: u32,
    /// Index into the symmetric-link assignment, or `NOT_SYM` when the
    /// edge keeps its original metric.
    sym: u32,
    /// Original metric (used when `sym == NOT_SYM`).
    fixed: u64,
    /// Capacity, `None` when absent from the capacity map (such links
    /// carry traffic but are excluded from the utilization, mirroring
    /// [`max_utilization`]).
    cap: Option<f64>,
}

const NOT_SYM: u32 = u32::MAX;

/// Demands and announcers of one destination prefix.
struct Group {
    /// `(node, announce metric)` per announcing router.
    announcers: Vec<(u32, u64)>,
    /// `(node, rate)` per demand source.
    demands: Vec<(u32, f64)>,
}

/// The per-problem state shared by every branch-and-bound node: the
/// compact graph, the per-prefix demand groups, and the memoized
/// per-DAG spreads.
struct Evaluator {
    n: usize,
    edges: Vec<CEdge>,
    /// Incoming edge ids per node (reverse adjacency for the
    /// to-destination Dijkstra).
    in_edges: Vec<Vec<u32>>,
    out_edges: Vec<Vec<u32>>,
    groups: Vec<Group>,
    max_weight: u64,
    /// Per-group cache: ECMP-DAG structure (hop lists + sink
    /// sentinels, node-separated) → per-edge loads.
    memo: Vec<HashMap<Vec<u32>, Vec<f64>>>,
    /// Scalar-multiple weight vectors route identically only when
    /// every cost scales with the assignment: no usable fixed-metric
    /// edge, no nonzero announce metric (neither scales with link
    /// weights).
    gcd_safe: bool,
    // Scratch buffers reused across evaluations and pruning probes.
    dist: Vec<u64>,
    hops: Vec<Vec<u32>>,
    inflow: Vec<f64>,
    order: Vec<u32>,
    dmin: Vec<u64>,
    dmax: Vec<u64>,
    forced: Vec<f64>,
}

/// Multi-source reverse Dijkstra toward a group's announcers: fills
/// `dist` with the cost of the best route from every node, under the
/// given per-edge weight function (`None` = unusable edge).
fn dijkstra_into(
    edges: &[CEdge],
    in_edges: &[Vec<u32>],
    announcers: &[(u32, u64)],
    weight_of: impl Fn(&CEdge) -> Option<u64>,
    dist: &mut [u64],
) {
    dist.iter_mut().for_each(|d| *d = UNREACH);
    let mut heap: std::collections::BinaryHeap<std::cmp::Reverse<(u64, u32)>> =
        std::collections::BinaryHeap::new();
    for &(node, m) in announcers {
        if m < dist[node as usize] {
            dist[node as usize] = m;
            heap.push(std::cmp::Reverse((m, node)));
        }
    }
    while let Some(std::cmp::Reverse((d, v))) = heap.pop() {
        if dist[v as usize] != d {
            continue;
        }
        for &eid in &in_edges[v as usize] {
            let e = &edges[eid as usize];
            let Some(w) = weight_of(e) else { continue };
            let nd = d.saturating_add(w);
            if nd < dist[e.from as usize] {
                dist[e.from as usize] = nd;
                heap.push(std::cmp::Reverse((nd, e.from)));
            }
        }
    }
}

/// How an edge's weight is constrained at a search node.
#[derive(Clone, Copy)]
enum WeightRange {
    /// Assigned or original-metric edge.
    Exact(u64),
    /// Unassigned symmetric link: anywhere in `1..=max_weight`.
    Free,
    /// Original metric is infinite: the edge never carries traffic.
    Unusable,
}

impl Evaluator {
    fn build(
        topo: &Topology,
        tm: &TrafficMatrix,
        capacities: &BTreeMap<(RouterId, RouterId), f64>,
        sym_links: &[(RouterId, RouterId)],
        max_weight: u32,
    ) -> Evaluator {
        let nodes: Vec<RouterId> = topo.routers().collect();
        let index: BTreeMap<RouterId, u32> = nodes
            .iter()
            .enumerate()
            .map(|(i, r)| (*r, i as u32))
            .collect();
        let sym_index: BTreeMap<(RouterId, RouterId), u32> = sym_links
            .iter()
            .enumerate()
            .map(|(i, l)| (*l, i as u32))
            .collect();
        let n = nodes.len();
        let mut edges = Vec::new();
        let mut in_edges = vec![Vec::new(); n];
        let mut out_edges = vec![Vec::new(); n];
        for (u, v, m) in topo.all_links() {
            let (fu, fv) = (index[&u], index[&v]);
            let key = if u < v { (u, v) } else { (v, u) };
            let id = edges.len() as u32;
            edges.push(CEdge {
                from: fu,
                to: fv,
                sym: sym_index.get(&key).copied().unwrap_or(NOT_SYM),
                fixed: if m.is_finite() {
                    u64::from(m.0)
                } else {
                    UNREACH
                },
                cap: capacities.get(&(u, v)).copied(),
            });
            out_edges[fu as usize].push(id);
            in_edges[fv as usize].push(id);
        }
        // Demands grouped by prefix, announcers resolved per group.
        let mut by_prefix: BTreeMap<Prefix, Vec<(u32, f64)>> = BTreeMap::new();
        for (src, prefix, rate) in tm.iter() {
            if let Some(i) = index.get(&src) {
                by_prefix.entry(prefix).or_default().push((*i, rate));
            }
        }
        // Scaling every assigned weight by a constant preserves the
        // routing only if *all* costs scale with it: any usable edge
        // outside the symmetric assignment keeps a fixed metric, and
        // any nonzero announce metric stays fixed too — either one
        // breaks the equivalence, so it disables the gcd prune.
        let mut gcd_safe = edges
            .iter()
            .all(|e: &CEdge| e.sym != NOT_SYM || e.fixed == UNREACH);
        let mut groups = Vec::new();
        for (prefix, demands) in by_prefix {
            let mut announcers: BTreeMap<u32, u64> = BTreeMap::new();
            for (node, p, m) in topo.all_announcements() {
                if p != prefix || node.is_fake() {
                    continue;
                }
                let m = if m.is_finite() {
                    u64::from(m.0)
                } else {
                    continue;
                };
                if m != 0 {
                    gcd_safe = false;
                }
                let e = announcers.entry(index[&node]).or_insert(m);
                *e = (*e).min(m);
            }
            groups.push(Group {
                announcers: announcers.into_iter().collect(),
                demands,
            });
        }
        let memo = groups.iter().map(|_| HashMap::new()).collect();
        let n_edges = edges.len();
        Evaluator {
            n,
            edges,
            in_edges,
            out_edges,
            groups,
            max_weight: u64::from(max_weight.max(1)),
            memo,
            gcd_safe,
            dist: vec![UNREACH; n],
            hops: vec![Vec::new(); n],
            inflow: vec![0.0; n],
            order: Vec::with_capacity(n),
            dmin: vec![UNREACH; n],
            dmax: vec![UNREACH; n],
            forced: vec![0.0; n_edges],
        }
    }

    /// Weight of edge `e` under a (possibly partial) assignment:
    /// symmetric links beyond `assigned.len()` are [`WeightRange::Free`].
    fn range(&self, e: &CEdge, assigned: &[u32]) -> WeightRange {
        if e.sym != NOT_SYM {
            match assigned.get(e.sym as usize) {
                Some(w) => WeightRange::Exact(u64::from(*w)),
                None => WeightRange::Free,
            }
        } else if e.fixed == UNREACH {
            WeightRange::Unusable
        } else {
            WeightRange::Exact(e.fixed)
        }
    }

    /// Evaluate a complete assignment: max utilization of the even-ECMP
    /// routing it induces, or `None` when some demand is unroutable.
    fn eval(&mut self, assigned: &[u32]) -> Option<f64> {
        let mut total_loads: Vec<f64> = vec![0.0; self.edges.len()];
        for g in 0..self.groups.len() {
            let mut dist = std::mem::take(&mut self.dist);
            dijkstra_into(
                &self.edges,
                &self.in_edges,
                &self.groups[g].announcers,
                |e| self.range_full(e, assigned),
                &mut dist,
            );
            self.dist = dist;
            for &(src, _) in &self.groups[g].demands {
                if self.dist[src as usize] == UNREACH {
                    return None;
                }
            }
            // ECMP next-hops and sinks induced by the distances. A
            // router announcing at its own distance delivers locally
            // (the rib's local-wins rule) and forwards nothing.
            for h in &mut self.hops {
                h.clear();
            }
            let mut is_sink = vec![false; self.n];
            for &(node, m) in &self.groups[g].announcers {
                if m == self.dist[node as usize] {
                    is_sink[node as usize] = true;
                }
            }
            for (eid, e) in self.edges.iter().enumerate() {
                if is_sink[e.from as usize] {
                    continue;
                }
                let Some(w) = self.range_full(e, assigned) else {
                    continue;
                };
                let (du, dv) = (self.dist[e.from as usize], self.dist[e.to as usize]);
                if dv != UNREACH && du == dv.saturating_add(w) && du != UNREACH {
                    self.hops[e.from as usize].push(eid as u32);
                }
            }
            // The memo key is the DAG structure itself (per-node hop
            // lists, sinks marked with a sentinel no edge id can take)
            // so a hash collision can never resurrect the wrong
            // spread; the HashMap's equality check settles it.
            let mut sig: Vec<u32> = Vec::with_capacity(self.n + self.edges.len());
            for (u, h) in self.hops.iter().enumerate() {
                if is_sink[u] {
                    sig.push(u32::MAX);
                } else {
                    sig.extend_from_slice(h);
                }
                sig.push(u32::MAX - 1); // node separator
            }
            if let Some(loads) = self.memo[g].get(&sig) {
                for (t, l) in total_loads.iter_mut().zip(loads) {
                    *t += l;
                }
                continue;
            }
            // Spread this group's demands over the DAG in a Kahn
            // topological order. Distance alone is NOT a valid order:
            // a fixed Metric(0) edge puts equal-distance nodes on the
            // DAG. A hop cycle (possible only through zero-metric
            // fixed edges) mirrors `spread`'s ForwardingLoop error:
            // the assignment is skipped.
            let mut loads = vec![0.0; self.edges.len()];
            self.inflow.iter_mut().for_each(|f| *f = 0.0);
            for &(src, rate) in &self.groups[g].demands {
                self.inflow[src as usize] += rate;
            }
            let mut indeg = vec![0u32; self.n];
            for (u, sink) in is_sink.iter().enumerate() {
                if *sink {
                    continue;
                }
                for &eid in &self.hops[u] {
                    indeg[self.edges[eid as usize].to as usize] += 1;
                }
            }
            self.order.clear();
            for (u, d) in indeg.iter().enumerate() {
                if *d == 0 {
                    self.order.push(u as u32);
                }
            }
            let mut done = 0usize;
            while done < self.order.len() {
                let u = self.order[done] as usize;
                done += 1;
                let flow = self.inflow[u];
                if !is_sink[u] {
                    for &eid in &self.hops[u] {
                        let to = self.edges[eid as usize].to as usize;
                        indeg[to] -= 1;
                        if indeg[to] == 0 {
                            self.order.push(to as u32);
                        }
                    }
                    if flow > 0.0 && !self.hops[u].is_empty() {
                        let share = flow / self.hops[u].len() as f64;
                        for &eid in &self.hops[u] {
                            loads[eid as usize] += share;
                            self.inflow[self.edges[eid as usize].to as usize] += share;
                        }
                    }
                }
            }
            if done < self.n {
                return None; // forwarding loop via zero-metric edges
            }
            for (t, l) in total_loads.iter_mut().zip(&loads) {
                *t += l;
            }
            self.memo[g].insert(sig, loads);
        }
        let mut util = 0.0f64;
        for (e, load) in self.edges.iter().zip(&total_loads) {
            if let Some(cap) = e.cap {
                util = util.max(load / cap);
            }
        }
        Some(util)
    }

    /// Weight under a complete assignment (`None` = unusable edge).
    fn range_full(&self, e: &CEdge, assigned: &[u32]) -> Option<u64> {
        match self.range(e, assigned) {
            WeightRange::Exact(w) => Some(w),
            WeightRange::Free => Some(1), // complete assignments never hit this
            WeightRange::Unusable => None,
        }
    }

    /// Lower bound on the max utilization of *any* completion of a
    /// partial assignment: interval distances (free links at 1 and at
    /// `max_weight`) identify routers whose next hop is already forced,
    /// and the demand walked along forced chains is load no completion
    /// can avoid.
    fn forced_bound(&mut self, assigned: &[u32]) -> f64 {
        let w_max = self.max_weight;
        // Reuse the scratch buffers: this runs once per pruning probe
        // in the search hot loop.
        let mut forced = std::mem::take(&mut self.forced);
        let mut dmin = std::mem::take(&mut self.dmin);
        let mut dmax = std::mem::take(&mut self.dmax);
        forced.iter_mut().for_each(|f| *f = 0.0);
        for g in 0..self.groups.len() {
            dijkstra_into(
                &self.edges,
                &self.in_edges,
                &self.groups[g].announcers,
                |e| match self.range(e, assigned) {
                    WeightRange::Exact(w) => Some(w),
                    WeightRange::Free => Some(1),
                    WeightRange::Unusable => None,
                },
                &mut dmin,
            );
            dijkstra_into(
                &self.edges,
                &self.in_edges,
                &self.groups[g].announcers,
                |e| match self.range(e, assigned) {
                    WeightRange::Exact(w) => Some(w),
                    WeightRange::Free => Some(w_max),
                    WeightRange::Unusable => None,
                },
                &mut dmax,
            );
            let announces: Vec<bool> = {
                let mut a = vec![false; self.n];
                for &(node, _) in &self.groups[g].announcers {
                    a[node as usize] = true;
                }
                a
            };
            // The unique possible next hop of `u`, if any: the only
            // edge whose optimistic cost beats every alternative's
            // pessimistic cost.
            let unique_hop = |u: usize, ev: &Evaluator| -> Option<u32> {
                // Pessimistic bound on dist(u) in any completion.
                let mut ub = UNREACH;
                for &eid in &ev.out_edges[u] {
                    let e = &ev.edges[eid as usize];
                    let w = match ev.range(e, assigned) {
                        WeightRange::Exact(w) => w,
                        WeightRange::Free => w_max,
                        WeightRange::Unusable => continue,
                    };
                    if dmax[e.to as usize] != UNREACH {
                        ub = ub.min(dmax[e.to as usize].saturating_add(w));
                    }
                }
                let mut only: Option<u32> = None;
                for &eid in &ev.out_edges[u] {
                    let e = &ev.edges[eid as usize];
                    let w = match ev.range(e, assigned) {
                        WeightRange::Exact(w) => w,
                        WeightRange::Free => 1,
                        WeightRange::Unusable => continue,
                    };
                    if dmin[e.to as usize] == UNREACH {
                        continue;
                    }
                    if dmin[e.to as usize].saturating_add(w) <= ub {
                        if only.is_some() {
                            return None; // two candidates: not forced
                        }
                        only = Some(eid);
                    }
                }
                only
            };
            for di in 0..self.groups[g].demands.len() {
                let (src, rate) = self.groups[g].demands[di];
                let mut u = src as usize;
                let mut steps = 0;
                // Follow the chain of forced hops; any node that might
                // absorb or split ends the certainty.
                while !announces[u] && steps <= self.n {
                    let Some(eid) = unique_hop(u, self) else {
                        break;
                    };
                    forced[eid as usize] += rate;
                    u = self.edges[eid as usize].to as usize;
                    steps += 1;
                }
            }
        }
        let mut bound = 0.0f64;
        for (e, load) in self.edges.iter().zip(&forced) {
            if let Some(cap) = e.cap {
                bound = bound.max(load / cap);
            }
        }
        self.forced = forced;
        self.dmin = dmin;
        self.dmax = dmax;
        bound
    }

    /// A weight-independent lower bound on the max utilization of any
    /// routing: demand must leave its source and enter the announcer
    /// set, so those cuts' capacities bound every scheme. Links absent
    /// from the capacity map make a cut unbounded (they are free).
    fn cut_bound(&self) -> f64 {
        let usable = |e: &CEdge| e.sym != NOT_SYM || e.fixed != UNREACH;
        let mut bound = 0.0f64;
        for g in &self.groups {
            let mut announces = vec![false; self.n];
            for &(node, _) in &g.announcers {
                announces[node as usize] = true;
            }
            for &(src, rate) in &g.demands {
                if announces[src as usize] {
                    continue; // might be absorbed locally
                }
                let mut cap_sum = 0.0;
                let mut unbounded = false;
                for &eid in &self.out_edges[src as usize] {
                    let e = &self.edges[eid as usize];
                    if !usable(e) {
                        continue;
                    }
                    match e.cap {
                        Some(c) => cap_sum += c,
                        None => unbounded = true,
                    }
                }
                if !unbounded && cap_sum > 0.0 {
                    bound = bound.max(rate / cap_sum);
                }
            }
            let total: f64 = g
                .demands
                .iter()
                .filter(|(s, _)| !announces[*s as usize])
                .map(|(_, r)| r)
                .sum();
            if total > 0.0 {
                let mut cap_in = 0.0;
                let mut unbounded = false;
                for e in &self.edges {
                    if usable(e) && announces[e.to as usize] && !announces[e.from as usize] {
                        match e.cap {
                            Some(c) => cap_in += c,
                            None => unbounded = true,
                        }
                    }
                }
                if !unbounded && cap_in > 0.0 {
                    bound = bound.max(total / cap_in);
                }
            }
        }
        bound
    }
}

/// Branch-and-bound state.
struct Search {
    ev: Evaluator,
    assignment: Vec<u32>,
    max_weight: u32,
    best: Option<(f64, Vec<u32>)>,
    cut_bound: f64,
    done: bool,
}

fn gcd(a: u32, b: u32) -> u32 {
    if b == 0 {
        a
    } else {
        gcd(b, a % b)
    }
}

impl Search {
    fn dfs(&mut self, depth: usize) {
        if self.done {
            return;
        }
        let links = self.assignment.len();
        if depth == links {
            if self.ev.gcd_safe && links > 0 {
                let g = self.assignment.iter().copied().fold(0, gcd);
                if g > 1 {
                    // A scalar multiple of an earlier assignment with
                    // identical routing: already evaluated.
                    return;
                }
            }
            let Some(util) = self.ev.eval(&self.assignment) else {
                return;
            };
            let better = self
                .best
                .as_ref()
                .map(|(b, _)| util < *b - 1e-12)
                .unwrap_or(true);
            if better {
                self.best = Some((util, self.assignment.clone()));
                if util <= self.cut_bound + 1e-12 {
                    self.done = true; // nothing can beat the cut bound
                }
            }
            return;
        }
        for w in 1..=self.max_weight {
            self.assignment[depth] = w;
            // The bound costs two Dijkstras per prefix: only worth it
            // while the subtree it can cut is substantially larger.
            if links - depth > 3 {
                if let Some((incumbent, _)) = &self.best {
                    let bound = self.ev.forced_bound(&self.assignment[..=depth]);
                    if bound > incumbent + 1e-9 {
                        continue;
                    }
                }
            }
            self.dfs(depth + 1);
            if self.done {
                return;
            }
        }
    }
}

/// The best symmetric weight assignment in `1..=max_weight` minimizing
/// max utilization under even ECMP, with the utilization it achieves.
/// `None` if some demand is unroutable (a property of the graph, not
/// of the weights). Exact — a branch-and-bound over the
/// `max_weight ^ links` space that provably returns the exhaustive
/// optimum; the space is still asserted below ~2 million combinations
/// as a guard against calls no search could make tractable.
pub fn best_ecmp_weights_max_util(
    topo: &Topology,
    tm: &TrafficMatrix,
    capacities: &BTreeMap<(RouterId, RouterId), f64>,
    max_weight: u32,
) -> Option<(f64, Topology)> {
    assert_eq!(
        topo.fake_count(),
        0,
        "weight search expects a lie-free baseline topology"
    );
    let mut sym_links: Vec<(RouterId, RouterId)> = topo
        .all_links()
        .filter(|(a, b, _)| a < b)
        .map(|(a, b, _)| (a, b))
        .collect();
    sym_links.sort();
    sym_links.dedup();
    let combos = (max_weight as u64).checked_pow(sym_links.len() as u32)?;
    assert!(
        combos <= 2_000_000,
        "search space too large: {combos} combinations"
    );

    let ev = Evaluator::build(topo, tm, capacities, &sym_links, max_weight);
    let cut_bound = ev.cut_bound();
    let mut search = Search {
        ev,
        assignment: vec![1; sym_links.len()],
        max_weight: max_weight.max(1),
        best: None,
        cut_bound,
        done: false,
    };
    search.dfs(0);
    let (_, assignment) = search.best?;

    // Materialize the winner and report its utilization through the
    // same load model `even_ecmp_max_util` uses.
    let mut best_topo = topo.clone();
    for ((a, b), w) in sym_links.iter().zip(&assignment) {
        // Directed-only links have just one direction to set.
        if best_topo.has_link(*a, *b) {
            best_topo.set_metric(*a, *b, Metric(*w)).unwrap();
        }
        if best_topo.has_link(*b, *a) {
            best_topo.set_metric(*b, *a, Metric(*w)).unwrap();
        }
    }
    let loads = spread(&best_topo, &tm.demands()).ok()?;
    Some((max_utilization(&loads, capacities), best_topo))
}

#[cfg(test)]
mod tests {
    use super::*;
    use fib_igp::types::Prefix;

    fn r(n: u32) -> RouterId {
        RouterId(n)
    }

    /// Square with two 2-hop paths from r1 to r4; prefix at r4.
    fn square(asymmetric: bool) -> (Topology, BTreeMap<(RouterId, RouterId), f64>, Prefix) {
        let mut t = Topology::new();
        for i in 1..=4 {
            t.add_router(r(i));
        }
        t.add_link_sym(r(1), r(2), Metric(1)).unwrap();
        t.add_link_sym(r(2), r(4), Metric(1)).unwrap();
        t.add_link_sym(r(1), r(3), Metric(if asymmetric { 3 } else { 1 }))
            .unwrap();
        t.add_link_sym(r(3), r(4), Metric(1)).unwrap();
        let p = Prefix::net24(1);
        t.announce_prefix(r(4), p, Metric::ZERO).unwrap();
        let caps = t.all_links().map(|(a, b, _)| ((a, b), 100.0)).collect();
        (t, caps, p)
    }

    #[test]
    fn even_ecmp_on_asymmetric_weights_hotspots() {
        let (t, caps, p) = square(true);
        let mut tm = TrafficMatrix::new();
        tm.add(r(1), p, 160.0);
        let u = even_ecmp_max_util(&t, &tm, &caps).unwrap();
        assert!((u - 1.6).abs() < 1e-9, "single path carries all: {u}");
    }

    #[test]
    fn exhaustive_search_finds_balanced_weights() {
        let (t, caps, p) = square(true);
        let mut tm = TrafficMatrix::new();
        tm.add(r(1), p, 160.0);
        let (u, best_topo) = best_ecmp_weights_max_util(&t, &tm, &caps, 3).unwrap();
        // Even ECMP can reach 0.8 by making both paths equal cost.
        assert!((u - 0.8).abs() < 1e-9, "best even ECMP: {u}");
        let loads = spread(&best_topo, &tm.demands()).unwrap();
        assert!((loads[&(r(1), r(2))] - 80.0).abs() < 1e-6);
    }

    #[test]
    fn unroutable_demand_is_none() {
        let (mut t, caps, p) = square(false);
        t.add_router(r(9));
        let mut tm = TrafficMatrix::new();
        tm.add(r(9), p, 1.0);
        assert_eq!(even_ecmp_max_util(&t, &tm, &caps), None);
        assert!(best_ecmp_weights_max_util(&t, &tm, &caps, 2).is_none());
    }

    #[test]
    #[should_panic(expected = "search space too large")]
    fn oversized_search_is_refused() {
        let (t, caps, p) = square(false);
        let mut tm = TrafficMatrix::new();
        tm.add(r(1), p, 10.0);
        let _ = best_ecmp_weights_max_util(&t, &tm, &caps, 64);
    }

    /// The original odometer implementation, kept verbatim as the
    /// oracle the branch-and-bound is pinned against.
    fn exhaustive_reference(
        topo: &Topology,
        tm: &TrafficMatrix,
        capacities: &BTreeMap<(RouterId, RouterId), f64>,
        max_weight: u32,
    ) -> Option<(f64, Topology)> {
        let mut sym_links: Vec<(RouterId, RouterId)> = topo
            .all_links()
            .filter(|(a, b, _)| a < b)
            .map(|(a, b, _)| (a, b))
            .collect();
        sym_links.sort();
        sym_links.dedup();
        let mut best: Option<(f64, Topology)> = None;
        let mut assignment = vec![1u32; sym_links.len()];
        loop {
            let mut cand = topo.clone();
            for ((a, b), w) in sym_links.iter().zip(&assignment) {
                cand.set_metric(*a, *b, Metric(*w)).unwrap();
                cand.set_metric(*b, *a, Metric(*w)).unwrap();
            }
            if let Ok(loads) = spread(&cand, &tm.demands()) {
                let u = max_utilization(&loads, capacities);
                let better = best.as_ref().map(|(bu, _)| u < *bu - 1e-12).unwrap_or(true);
                if better {
                    best = Some((u, cand));
                }
            }
            let mut i = 0;
            loop {
                if i == assignment.len() {
                    return best;
                }
                if assignment[i] < max_weight {
                    assignment[i] += 1;
                    break;
                }
                assignment[i] = 1;
                i += 1;
            }
        }
    }

    #[test]
    fn directed_only_fixed_metric_link_disables_gcd_prune() {
        // A one-directional link (from > to, so it is outside the
        // symmetric assignment) keeps its original metric, which does
        // NOT scale with the weight vector — so (2,2) is not
        // equivalent to (1,1) and must not be gcd-pruned. Here the
        // true optimum needs weight 2 on both symmetric links to make
        // the fixed-cost direct link (the only high-capacity one)
        // shortest.
        let mut t = Topology::new();
        for i in 1..=3 {
            t.add_router(r(i));
        }
        t.add_link_sym(r(3), r(2), Metric(1)).unwrap();
        t.add_link_sym(r(2), r(1), Metric(1)).unwrap();
        t.add_link(r(3), r(1), Metric(3)).unwrap(); // directed only
        let p = Prefix::net24(1);
        t.announce_prefix(r(1), p, Metric::ZERO).unwrap();
        let mut tm = TrafficMatrix::new();
        tm.add(r(3), p, 100.0);
        let mut caps: BTreeMap<(RouterId, RouterId), f64> =
            t.all_links().map(|(a, b, _)| ((a, b), 10.0)).collect();
        caps.insert((r(3), r(1)), 100.0);
        let (fast, _) = best_ecmp_weights_max_util(&t, &tm, &caps, 2).unwrap();
        let (slow, _) = exhaustive_reference(&t, &tm, &caps, 2).unwrap();
        assert!(
            (fast - slow).abs() <= 1e-9,
            "bnb {fast} vs exhaustive {slow}"
        );
        assert!(
            (fast - 1.0).abs() <= 1e-9,
            "optimum routes directly: {fast}"
        );
    }

    #[test]
    fn zero_metric_directed_link_spreads_in_true_topological_order() {
        // A fixed Metric(0) directed link makes two nodes equal-
        // distance, so distance order alone is not a topological
        // order of the hop DAG — the spread must still push r3's
        // traffic through r2 onto the overloaded 2→1 link.
        let mut t = Topology::new();
        for i in 1..=3 {
            t.add_router(r(i));
        }
        t.add_link_sym(r(2), r(1), Metric(1)).unwrap();
        t.add_link_sym(r(3), r(1), Metric(1)).unwrap();
        t.add_link(r(3), r(2), Metric(0)).unwrap(); // directed only
        let p = Prefix::net24(1);
        t.announce_prefix(r(1), p, Metric::ZERO).unwrap();
        let mut tm = TrafficMatrix::new();
        tm.add(r(3), p, 100.0);
        let mut caps: BTreeMap<(RouterId, RouterId), f64> =
            t.all_links().map(|(a, b, _)| ((a, b), 50.0)).collect();
        caps.insert((r(3), r(2)), 1000.0);
        caps.insert((r(2), r(1)), 10.0);
        for w in 2..=3u32 {
            let fast = best_ecmp_weights_max_util(&t, &tm, &caps, w).map(|(u, _)| u);
            let slow = exhaustive_reference(&t, &tm, &caps, w).map(|(u, _)| u);
            match (fast, slow) {
                (Some(f), Some(s)) => {
                    assert!((f - s).abs() <= 1e-9, "w={w}: bnb {f} vs exhaustive {s}")
                }
                (a, b) => assert_eq!(a.is_some(), b.is_some(), "w={w}: {a:?} vs {b:?}"),
            }
        }
    }

    #[test]
    fn bnb_matches_exhaustive_on_the_paper_topology() {
        // The T3 table's first row: Fig. 1a, 100 units from A and B,
        // weights 1..=3 over 8 symmetric links (6561 assignments).
        let topo = fib_igp::builders::paper_fig1();
        let caps: BTreeMap<(RouterId, RouterId), f64> =
            topo.all_links().map(|(a, b, _)| ((a, b), 100.0)).collect();
        let mut tm = TrafficMatrix::new();
        tm.add(r(1), Prefix::net24(1), 100.0);
        tm.add(r(2), Prefix::net24(1), 100.0);
        let (fast, _) = best_ecmp_weights_max_util(&topo, &tm, &caps, 3).unwrap();
        let (slow, _) = exhaustive_reference(&topo, &tm, &caps, 3).unwrap();
        assert!(
            (fast - slow).abs() <= 1e-9,
            "bnb {fast} vs exhaustive {slow}"
        );
    }

    mod bnb_equivalence {
        use super::*;
        use proptest::prelude::*;
        use rand::rngs::StdRng;
        use rand::{Rng, SeedableRng};

        /// A random connected topology with at most `max_links`
        /// symmetric links (n chosen so the tree alone fits), plus a
        /// sink and 1–2 demands.
        fn scenario(seed: u64) -> (Topology, TrafficMatrix, BTreeMap<(RouterId, RouterId), f64>) {
            let mut rng = StdRng::seed_from_u64(seed);
            let n = rng.gen_range(3..=5u32);
            let extra = rng.gen_range(0..=(6 - (n - 1)));
            let mut topo = fib_igp::builders::random_connected(&mut rng, n, extra, 4);
            let routers: Vec<RouterId> = topo.routers().collect();
            let sink = routers[rng.gen_range(0..routers.len())];
            let prefix = Prefix::net24(1);
            // Nonzero announce metrics sometimes, to exercise the
            // gcd-unsafe path.
            let m = if rng.gen_range(0..4u32) == 0 {
                Metric(rng.gen_range(1..3))
            } else {
                Metric::ZERO
            };
            topo.announce_prefix(sink, prefix, m).unwrap();
            let mut tm = TrafficMatrix::new();
            let n_dem = rng.gen_range(1..=2usize);
            let mut used = Vec::new();
            while used.len() < n_dem.min(routers.len() - 1) {
                let s = routers[rng.gen_range(0..routers.len())];
                if s != sink && !used.contains(&s) {
                    used.push(s);
                    tm.add(s, prefix, rng.gen_range(20.0..200.0));
                }
            }
            let caps: BTreeMap<(RouterId, RouterId), f64> = topo
                .all_links()
                .map(|(a, b, _)| ((a, b), rng.gen_range(50.0..150.0)))
                .collect();
            (topo, tm, caps)
        }

        proptest! {
            #![proptest_config(ProptestConfig::with_cases(48))]

            /// Branch-and-bound returns exactly the exhaustive-search
            /// optimum on every ≤6-link topology with max_weight ≤ 3.
            #[test]
            fn bnb_matches_exhaustive_optimum(seed in 0u64..4000, w in 2u32..=3) {
                let (topo, tm, caps) = scenario(seed);
                let fast = best_ecmp_weights_max_util(&topo, &tm, &caps, w);
                let slow = exhaustive_reference(&topo, &tm, &caps, w);
                match (fast, slow) {
                    (Some((uf, tf)), Some((us, _))) => {
                        prop_assert!((uf - us).abs() <= 1e-9,
                            "bnb {uf} vs exhaustive {us}");
                        // The returned topology really achieves it.
                        let loads = spread(&tf, &tm.demands()).unwrap();
                        let real = max_utilization(&loads, &caps);
                        prop_assert!((real - uf).abs() <= 1e-9);
                    }
                    (None, None) => {}
                    (a, b) => prop_assert!(
                        false,
                        "diverged: bnb {:?} vs exhaustive {:?}",
                        a.map(|x| x.0), b.map(|x| x.0)
                    ),
                }
            }
        }
    }
}
