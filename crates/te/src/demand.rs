//! Traffic matrices and demand generators.
//!
//! Traditional TE (the paper's Sec. 1 strawman) pre-computes link
//! weights for a *predicted* traffic matrix. The generators here
//! produce the base matrices those schemes are tuned for, plus the
//! flash-crowd overlays that break them.

use fib_igp::types::{Prefix, RouterId};
use rand::Rng;
use std::collections::BTreeMap;
use std::fmt;

/// A traffic matrix: offered rate per (ingress, destination prefix).
#[derive(Debug, Clone, Default, PartialEq)]
pub struct TrafficMatrix {
    entries: BTreeMap<(RouterId, Prefix), f64>,
}

impl TrafficMatrix {
    /// An empty matrix.
    pub fn new() -> TrafficMatrix {
        TrafficMatrix::default()
    }

    /// Add (accumulate) demand.
    pub fn add(&mut self, src: RouterId, dst: Prefix, rate: f64) {
        assert!(rate >= 0.0);
        *self.entries.entry((src, dst)).or_insert(0.0) += rate;
    }

    /// The rate for one pair (0 if absent).
    pub fn rate(&self, src: RouterId, dst: Prefix) -> f64 {
        self.entries.get(&(src, dst)).copied().unwrap_or(0.0)
    }

    /// Iterate over all non-zero demands.
    pub fn iter(&self) -> impl Iterator<Item = (RouterId, Prefix, f64)> + '_ {
        self.entries
            .iter()
            .filter(|(_, r)| **r > 0.0)
            .map(|((s, d), r)| (*s, *d, *r))
    }

    /// Demands as the load-model input.
    pub fn demands(&self) -> Vec<fib_igp::loadmodel::Demand> {
        self.iter()
            .map(|(src, prefix, rate)| fib_igp::loadmodel::Demand { src, prefix, rate })
            .collect()
    }

    /// Demands toward one prefix as `(src, rate)` pairs.
    pub fn toward(&self, dst: Prefix) -> Vec<(RouterId, f64)> {
        self.iter()
            .filter(|(_, d, _)| *d == dst)
            .map(|(s, _, r)| (s, r))
            .collect()
    }

    /// Total offered traffic.
    pub fn total(&self) -> f64 {
        self.entries.values().sum()
    }

    /// Scale every entry by `k`.
    pub fn scaled(&self, k: f64) -> TrafficMatrix {
        TrafficMatrix {
            entries: self.entries.iter().map(|(key, r)| (*key, r * k)).collect(),
        }
    }

    /// Superpose another matrix onto this one.
    pub fn merge(&mut self, other: &TrafficMatrix) {
        for ((s, d), r) in &other.entries {
            *self.entries.entry((*s, *d)).or_insert(0.0) += r;
        }
    }

    /// Number of non-zero entries.
    pub fn len(&self) -> usize {
        self.entries.values().filter(|r| **r > 0.0).count()
    }

    /// `true` when no demand is present.
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }
}

impl fmt::Display for TrafficMatrix {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        for (s, d, r) in self.iter() {
            writeln!(f, "{s} -> {d}: {r:.1}")?;
        }
        Ok(())
    }
}

/// Gravity-model matrix: demand(src, dst) ∝ weight(src) × weight(dst),
/// normalized so the total equals `total_rate`. Weights are drawn
/// uniformly from `[0.5, 1.5)` with the given RNG (deterministic per
/// seed).
pub fn gravity<R: Rng>(
    rng: &mut R,
    sources: &[RouterId],
    sinks: &[(Prefix, RouterId)],
    total_rate: f64,
) -> TrafficMatrix {
    let src_w: Vec<f64> = sources.iter().map(|_| rng.gen_range(0.5..1.5)).collect();
    let dst_w: Vec<f64> = sinks.iter().map(|_| rng.gen_range(0.5..1.5)).collect();
    let mut tm = TrafficMatrix::new();
    let mut raw = Vec::new();
    let mut sum = 0.0;
    for (i, s) in sources.iter().enumerate() {
        for (j, (p, owner)) in sinks.iter().enumerate() {
            if s == owner {
                continue;
            }
            let w = src_w[i] * dst_w[j];
            raw.push((*s, *p, w));
            sum += w;
        }
    }
    for (s, p, w) in raw {
        tm.add(s, p, total_rate * w / sum);
    }
    tm
}

/// A flash crowd: `n_flows` flows of `flow_rate` each entering at
/// `src` toward `dst` (the demo's workload shape).
pub fn flash_crowd(src: RouterId, dst: Prefix, n_flows: u32, flow_rate: f64) -> TrafficMatrix {
    let mut tm = TrafficMatrix::new();
    tm.add(src, dst, f64::from(n_flows) * flow_rate);
    tm
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    fn r(n: u32) -> RouterId {
        RouterId(n)
    }

    #[test]
    fn add_accumulates() {
        let mut tm = TrafficMatrix::new();
        tm.add(r(1), Prefix::net24(1), 10.0);
        tm.add(r(1), Prefix::net24(1), 5.0);
        assert_eq!(tm.rate(r(1), Prefix::net24(1)), 15.0);
        assert_eq!(tm.len(), 1);
        assert!(!tm.is_empty());
    }

    #[test]
    fn scale_and_merge() {
        let mut a = TrafficMatrix::new();
        a.add(r(1), Prefix::net24(1), 10.0);
        let b = a.scaled(3.0);
        assert_eq!(b.rate(r(1), Prefix::net24(1)), 30.0);
        let mut c = a.clone();
        c.merge(&b);
        assert_eq!(c.rate(r(1), Prefix::net24(1)), 40.0);
        assert_eq!(c.total(), 40.0);
    }

    #[test]
    fn gravity_is_deterministic_and_normalized() {
        let sources = vec![r(1), r(2)];
        let sinks = vec![(Prefix::net24(1), r(3)), (Prefix::net24(2), r(4))];
        let mk = |seed| {
            let mut rng = StdRng::seed_from_u64(seed);
            gravity(&mut rng, &sources, &sinks, 1000.0)
        };
        let tm1 = mk(5);
        let tm2 = mk(5);
        assert_eq!(tm1, tm2);
        assert!((tm1.total() - 1000.0).abs() < 1e-6);
        assert_ne!(mk(5), mk(6));
    }

    #[test]
    fn gravity_skips_self_demand() {
        let mut rng = StdRng::seed_from_u64(1);
        let tm = gravity(
            &mut rng,
            &[r(1)],
            &[(Prefix::net24(1), r(1)), (Prefix::net24(2), r(2))],
            100.0,
        );
        assert_eq!(tm.rate(r(1), Prefix::net24(1)), 0.0);
        assert!((tm.rate(r(1), Prefix::net24(2)) - 100.0).abs() < 1e-9);
    }

    #[test]
    fn flash_crowd_shape() {
        let tm = flash_crowd(r(2), Prefix::net24(1), 31, 125_000.0);
        assert!((tm.total() - 31.0 * 125_000.0).abs() < 1e-6);
        assert_eq!(tm.toward(Prefix::net24(1)), vec![(r(2), 31.0 * 125_000.0)]);
    }
}
