//! # fib-te — traffic-engineering baselines
//!
//! The comparators the paper positions Fibbing against (Sec. 2):
//!
//! * [`demand`] — traffic matrices (gravity model, flash crowds);
//! * [`weights`] — Fortz–Thorup-style IGP weight local search and the
//!   disruption model of applying a reconfiguration mid-crowd;
//! * [`rsvp`] — an MPLS RSVP-TE baseline: CSPF, Path/Resv signalling
//!   and soft-state accounting, label/encap overhead, stateful
//!   unequal splits over tunnel sets;
//! * [`minmax`] — reference bounds for the optimality-gap table
//!   (plain ECMP, exhaustive best-even-ECMP weights).
//!
//! Everything here is deliberately *honest to the baselines*: CSPF
//! really computes constrained shortest paths over residual capacity,
//! the weight search really descends the Fortz–Thorup objective, and
//! their costs (messages, state, reconfigured devices) are counted,
//! not assumed.

#![warn(missing_docs)]
#![forbid(unsafe_code)]

pub mod demand;
pub mod minmax;
pub mod rsvp;
pub mod weights;

/// Convenient re-exports of the most used items.
pub mod prelude {
    pub use crate::demand::{flash_crowd, gravity, TrafficMatrix};
    pub use crate::minmax::{best_ecmp_weights_max_util, even_ecmp_max_util};
    pub use crate::rsvp::{RsvpError, RsvpStats, RsvpTe, Tunnel, TunnelId, LABEL_BYTES};
    pub use crate::weights::{
        disruption, network_cost, optimize_weights, phi, Disruption, WeightOptResult,
    };
}
