//! IGP weight optimization (Fortz–Thorup-style local search) and its
//! disruption model.
//!
//! This is the "traditional TE" strawman of the paper's introduction:
//! link weights are tuned offline for a predicted traffic matrix. The
//! optimizer minimizes the classic piecewise-linear link cost Φ. The
//! [`disruption`] model quantifies why re-running it *during* a flash
//! crowd is a bad idea: every changed weight re-originates router LSAs
//! at both endpoints, triggers full SPF on every router, and shifts
//! unrelated traffic — the reaction-time table (T4) compares this
//! against Fibbing's single flooded lie per path.

use crate::demand::TrafficMatrix;
use fib_igp::loadmodel::spread;
use fib_igp::spf::compute_all_routes;
use fib_igp::time::Dur;
use fib_igp::topology::Topology;
use fib_igp::types::{Metric, RouterId};
use std::collections::BTreeMap;

/// The Fortz–Thorup piecewise-linear cost of one link at utilization
/// `u` (slope rises steeply as the link saturates).
pub fn phi(u: f64) -> f64 {
    // Segment boundaries and slopes from the original paper.
    const SEGS: [(f64, f64); 6] = [
        (0.0, 1.0),
        (1.0 / 3.0, 3.0),
        (2.0 / 3.0, 10.0),
        (0.9, 70.0),
        (1.0, 500.0),
        (1.1, 5000.0),
    ];
    let mut cost = 0.0;
    let mut prev_b = 0.0;
    let mut prev_s = 0.0;
    for (b, s) in SEGS {
        if u > b {
            cost += (b - prev_b) * prev_s;
            prev_b = b;
            prev_s = s;
        } else {
            break;
        }
    }
    cost + (u - prev_b).max(0.0) * prev_s
}

/// Network-wide Φ cost of a weight setting under a traffic matrix.
/// Returns `None` if the routing has no path for some demand.
pub fn network_cost(
    topo: &Topology,
    tm: &TrafficMatrix,
    capacities: &BTreeMap<(RouterId, RouterId), f64>,
) -> Option<(f64, f64)> {
    let loads = spread(topo, &tm.demands()).ok()?;
    let mut cost = 0.0;
    let mut max_util: f64 = 0.0;
    for (key, load) in &loads {
        let cap = capacities.get(key)?;
        let u = load / cap;
        cost += phi(u);
        max_util = max_util.max(u);
    }
    Some((cost, max_util))
}

/// Result of a local-search run.
#[derive(Debug, Clone)]
pub struct WeightOptResult {
    /// The optimized topology (weights applied).
    pub topo: Topology,
    /// Φ cost before optimization.
    pub cost_before: f64,
    /// Φ cost after optimization.
    pub cost_after: f64,
    /// Max utilization before.
    pub max_util_before: f64,
    /// Max utilization after.
    pub max_util_after: f64,
    /// Symmetric links whose weight changed.
    pub changed_links: Vec<(RouterId, RouterId)>,
    /// Candidate evaluations performed (search effort).
    pub evaluations: u64,
}

/// Fortz–Thorup-style local search over symmetric integer weights.
///
/// Neighborhood: per symmetric link, try every weight in
/// `1..=max_weight` (coarsely sampled for large ranges); accept the
/// best improving move; repeat for `max_rounds` rounds or until no
/// move improves.
pub fn optimize_weights(
    topo: &Topology,
    tm: &TrafficMatrix,
    capacities: &BTreeMap<(RouterId, RouterId), f64>,
    max_weight: u32,
    max_rounds: u32,
) -> WeightOptResult {
    let mut current = topo.clone();
    let (mut cost, util0) = network_cost(&current, tm, capacities)
        .expect("initial weight setting must route all demands");
    let cost0 = cost;
    let mut evaluations = 0u64;

    // Symmetric link list (a < b).
    let mut sym_links: Vec<(RouterId, RouterId)> = current
        .all_links()
        .filter(|(a, b, _)| a < b && a.is_real() && b.is_real())
        .map(|(a, b, _)| (a, b))
        .collect();
    sym_links.sort();
    sym_links.dedup();

    // Candidate weights: all of 1..=max_weight if small, else a
    // logarithmic sample plus neighbors of the current weight.
    let candidates = |cur: u32| -> Vec<u32> {
        let mut c: Vec<u32> = if max_weight <= 16 {
            (1..=max_weight).collect()
        } else {
            let mut v = vec![1, 2, 3, 4, 6, 8, 12, 16];
            let mut w = 24;
            while w <= max_weight {
                v.push(w);
                w *= 2;
            }
            v.push(max_weight);
            v.push(cur.saturating_sub(1).max(1));
            v.push((cur + 1).min(max_weight));
            v
        };
        c.retain(|w| *w >= 1 && *w <= max_weight && *w != cur);
        c.sort();
        c.dedup();
        c
    };

    for _round in 0..max_rounds {
        let mut best_move: Option<((RouterId, RouterId), u32, f64)> = None;
        for &(a, b) in &sym_links {
            let cur = current.link_metric(a, b).expect("link exists").0;
            for w in candidates(cur) {
                let mut cand = current.clone();
                cand.set_metric(a, b, Metric(w)).unwrap();
                cand.set_metric(b, a, Metric(w)).unwrap();
                evaluations += 1;
                if let Some((c, _)) = network_cost(&cand, tm, capacities) {
                    if c < cost - 1e-9 && best_move.map(|(_, _, bc)| c < bc).unwrap_or(true) {
                        best_move = Some(((a, b), w, c));
                    }
                }
            }
        }
        match best_move {
            Some(((a, b), w, c)) => {
                current.set_metric(a, b, Metric(w)).unwrap();
                current.set_metric(b, a, Metric(w)).unwrap();
                cost = c;
            }
            None => break,
        }
    }

    let (_, util1) = network_cost(&current, tm, capacities).expect("optimized setting routes");
    let changed_links: Vec<(RouterId, RouterId)> = sym_links
        .iter()
        .filter(|(a, b)| topo.link_metric(*a, *b) != current.link_metric(*a, *b))
        .copied()
        .collect();
    WeightOptResult {
        topo: current,
        cost_before: cost0,
        cost_after: cost,
        max_util_before: util0,
        max_util_after: util1,
        changed_links,
        evaluations,
    }
}

/// Disruption of applying a reconfiguration `before → after`.
#[derive(Debug, Clone, PartialEq)]
pub struct Disruption {
    /// Routers whose device configuration must be touched.
    pub devices_reconfigured: usize,
    /// Router LSAs re-originated (two endpoints per changed link).
    pub lsas_reoriginated: usize,
    /// Routers whose route table changed for at least one prefix.
    pub routers_rerouted: usize,
    /// Estimated convergence time: per-device config latency
    /// (sequential) + flooding + SPF.
    pub est_convergence: Dur,
}

/// Quantify the churn of moving the network from `before` to `after`.
///
/// `per_device_config` models the CLI/agent latency of changing one
/// router's weights (the paper's "too slow for a transient event");
/// `flood_and_spf` models LSA propagation plus SPF delay.
pub fn disruption(
    before: &Topology,
    after: &Topology,
    per_device_config: Dur,
    flood_and_spf: Dur,
) -> Disruption {
    // Changed directed links → touched devices (the `from` endpoint
    // owns the weight) and re-originations.
    let mut touched: Vec<RouterId> = Vec::new();
    let mut changed_sym: Vec<(RouterId, RouterId)> = Vec::new();
    for (a, b, m) in before.all_links() {
        if after.link_metric(a, b) != Some(m) {
            touched.push(a);
            let key = if a < b { (a, b) } else { (b, a) };
            if !changed_sym.contains(&key) {
                changed_sym.push(key);
            }
        }
    }
    touched.sort();
    touched.dedup();

    // Routers whose routes changed.
    let rt_before = compute_all_routes(before);
    let rt_after = compute_all_routes(after);
    let mut rerouted = 0;
    for (r, t0) in &rt_before {
        if let Some(t1) = rt_after.get(r) {
            if t0.routes != t1.routes {
                rerouted += 1;
            }
        }
    }

    Disruption {
        devices_reconfigured: touched.len(),
        lsas_reoriginated: 2 * changed_sym.len(),
        routers_rerouted: rerouted,
        est_convergence: Dur(per_device_config.0.saturating_mul(touched.len() as u64))
            + flood_and_spf,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use fib_igp::types::Prefix;

    fn r(n: u32) -> RouterId {
        RouterId(n)
    }

    /// Square with two disjoint paths from r1 to r4.
    fn square() -> (Topology, BTreeMap<(RouterId, RouterId), f64>, Prefix) {
        let mut t = Topology::new();
        for i in 1..=4 {
            t.add_router(r(i));
        }
        t.add_link_sym(r(1), r(2), Metric(1)).unwrap();
        t.add_link_sym(r(2), r(4), Metric(1)).unwrap();
        t.add_link_sym(r(1), r(3), Metric(1)).unwrap();
        t.add_link_sym(r(3), r(4), Metric(3)).unwrap();
        let p = Prefix::net24(1);
        t.announce_prefix(r(4), p, Metric::ZERO).unwrap();
        let caps: BTreeMap<(RouterId, RouterId), f64> =
            t.all_links().map(|(a, b, _)| ((a, b), 100.0)).collect();
        (t, caps, p)
    }

    #[test]
    fn phi_is_convex_increasing() {
        let us = [0.0, 0.2, 0.4, 0.6, 0.8, 0.95, 1.05, 1.2];
        let mut prev_c = -1.0;
        let mut prev_slope = 0.0;
        for w in us.windows(2) {
            let c0 = phi(w[0]);
            let c1 = phi(w[1]);
            assert!(c1 > c0, "phi must increase");
            let slope = (c1 - c0) / (w[1] - w[0]);
            assert!(slope >= prev_slope - 1e-9, "phi must be convex");
            prev_slope = slope;
            prev_c = c1;
        }
        assert!(prev_c > 100.0, "overload must be expensive");
    }

    #[test]
    fn optimizer_splits_load_over_both_paths() {
        let (t, caps, p) = square();
        // 160 units from r1: one path alone → 160% utilization; the
        // optimizer must re-weight so both paths carry traffic.
        let mut tm = TrafficMatrix::new();
        tm.add(r(1), p, 160.0);
        let res = optimize_weights(&t, &tm, &caps, 8, 10);
        assert!(res.cost_after < res.cost_before);
        assert!(
            res.max_util_after <= 1.0 + 1e-9,
            "after: {}",
            res.max_util_after
        );
        assert!(res.max_util_before > 1.5);
        assert!(!res.changed_links.is_empty());
        assert!(res.evaluations > 0);
    }

    #[test]
    fn optimizer_is_a_noop_when_already_optimal() {
        let (mut t, caps, p) = square();
        // Symmetric weights → ECMP already splits evenly.
        t.set_metric(r(3), r(4), Metric(1)).unwrap();
        t.set_metric(r(4), r(3), Metric(1)).unwrap();
        let mut tm = TrafficMatrix::new();
        tm.add(r(1), p, 100.0);
        let res = optimize_weights(&t, &tm, &caps, 8, 10);
        assert!(res.changed_links.is_empty());
        assert!((res.cost_after - res.cost_before).abs() < 1e-9);
    }

    #[test]
    fn disruption_counts_devices_and_churn() {
        let (t, caps, p) = square();
        let mut tm = TrafficMatrix::new();
        tm.add(r(1), p, 160.0);
        let res = optimize_weights(&t, &tm, &caps, 8, 10);
        let d = disruption(&t, &res.topo, Dur::from_secs(5), Dur::from_millis(200));
        assert!(d.devices_reconfigured >= 1);
        assert_eq!(d.lsas_reoriginated, 2 * res.changed_links.len());
        assert!(d.routers_rerouted >= 1);
        assert!(d.est_convergence >= Dur::from_secs(5));
    }

    #[test]
    fn no_change_no_disruption() {
        let (t, _, _) = square();
        let d = disruption(&t, &t, Dur::from_secs(5), Dur::from_millis(200));
        assert_eq!(d.devices_reconfigured, 0);
        assert_eq!(d.lsas_reoriginated, 0);
        assert_eq!(d.routers_rerouted, 0);
        assert_eq!(d.est_convergence, Dur::from_millis(200));
    }
}
