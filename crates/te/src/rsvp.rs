//! An MPLS RSVP-TE baseline: explicit-route tunnels with bandwidth
//! reservations.
//!
//! Section 2 of the paper argues that RSVP-TE *can* react to flash
//! crowds but "introduces overhead on both the control and data
//! planes, by establishing a potentially-high number of tunnels,
//! encapsulating packets, and performing stateful uneven
//! load-balancing". This module implements enough of RSVP-TE to
//! quantify those claims:
//!
//! * **CSPF** — constrained shortest path over residual bandwidth;
//! * **signalling** — Path/Resv messages per hop at setup, PathTear at
//!   teardown, periodic soft-state refreshes;
//! * **state** — per-hop path+reservation soft state and one label per
//!   hop per tunnel;
//! * **data plane** — label stack encapsulation bytes per packet and
//!   per-ingress stateful split tables for unequal balancing.

use fib_igp::time::Dur;
use fib_igp::topology::Topology;
use fib_igp::types::{Metric, RouterId};
use std::collections::BTreeMap;
use std::fmt;

/// Bytes of one MPLS label stack entry.
pub const LABEL_BYTES: u64 = 4;

/// Tunnel identifier.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub struct TunnelId(pub u32);

/// An established tunnel.
#[derive(Debug, Clone)]
pub struct Tunnel {
    /// Identifier.
    pub id: TunnelId,
    /// Head-end router.
    pub ingress: RouterId,
    /// Tail-end router.
    pub egress: RouterId,
    /// Directed links traversed.
    pub path: Vec<(RouterId, RouterId)>,
    /// Reserved bandwidth (bytes/s).
    pub bw: f64,
}

impl Tunnel {
    /// Number of hops (links) of the tunnel.
    pub fn hops(&self) -> usize {
        self.path.len()
    }
}

/// Control-plane accounting.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct RsvpStats {
    /// Path messages sent (setup, one per hop per tunnel).
    pub path_msgs: u64,
    /// Resv messages sent (setup, one per hop per tunnel).
    pub resv_msgs: u64,
    /// Tear messages sent.
    pub tear_msgs: u64,
    /// Labels allocated (one per hop per tunnel).
    pub labels: u64,
    /// CSPF runs performed.
    pub cspf_runs: u64,
}

/// RSVP-TE errors.
#[derive(Debug, Clone, PartialEq)]
pub enum RsvpError {
    /// No path with enough residual bandwidth exists.
    NoPath {
        /// Requested ingress.
        ingress: RouterId,
        /// Requested egress.
        egress: RouterId,
        /// Requested bandwidth.
        bw: f64,
    },
    /// Unknown tunnel id.
    UnknownTunnel(TunnelId),
}

impl fmt::Display for RsvpError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            RsvpError::NoPath {
                ingress,
                egress,
                bw,
            } => write!(f, "no path {ingress}->{egress} with {bw} B/s residual"),
            RsvpError::UnknownTunnel(id) => write!(f, "unknown tunnel {id:?}"),
        }
    }
}

impl std::error::Error for RsvpError {}

/// The RSVP-TE control plane for one network.
#[derive(Debug, Clone)]
pub struct RsvpTe {
    topo: Topology,
    capacities: BTreeMap<(RouterId, RouterId), f64>,
    reserved: BTreeMap<(RouterId, RouterId), f64>,
    tunnels: BTreeMap<TunnelId, Tunnel>,
    next_id: u32,
    /// Signalling counters.
    pub stats: RsvpStats,
}

impl RsvpTe {
    /// Build over a topology and per-directed-link capacities.
    pub fn new(topo: Topology, capacities: BTreeMap<(RouterId, RouterId), f64>) -> RsvpTe {
        RsvpTe {
            topo,
            capacities,
            reserved: BTreeMap::new(),
            tunnels: BTreeMap::new(),
            next_id: 0,
            stats: RsvpStats::default(),
        }
    }

    /// Residual bandwidth on a directed link.
    pub fn residual(&self, from: RouterId, to: RouterId) -> f64 {
        let cap = self.capacities.get(&(from, to)).copied().unwrap_or(0.0);
        cap - self.reserved.get(&(from, to)).copied().unwrap_or(0.0)
    }

    /// Constrained shortest path: IGP-metric shortest path using only
    /// links with `residual >= bw`.
    pub fn cspf(
        &mut self,
        ingress: RouterId,
        egress: RouterId,
        bw: f64,
    ) -> Option<Vec<(RouterId, RouterId)>> {
        self.stats.cspf_runs += 1;
        // Dijkstra over filtered links.
        use std::cmp::Reverse;
        use std::collections::BinaryHeap;
        let mut dist: BTreeMap<RouterId, (Metric, Option<RouterId>)> = BTreeMap::new();
        let mut heap = BinaryHeap::new();
        dist.insert(ingress, (Metric::ZERO, None));
        heap.push(Reverse((Metric::ZERO, ingress)));
        while let Some(Reverse((d, u))) = heap.pop() {
            if dist.get(&u).map(|(dd, _)| *dd != d).unwrap_or(true) {
                continue;
            }
            if u == egress {
                break;
            }
            for link in self.topo.links(u) {
                if link.to.is_fake() {
                    continue;
                }
                if self.residual(u, link.to) + 1e-9 < bw {
                    continue;
                }
                let nd = d.add(link.metric);
                let better = dist.get(&link.to).map(|(dd, _)| nd < *dd).unwrap_or(true);
                if better {
                    dist.insert(link.to, (nd, Some(u)));
                    heap.push(Reverse((nd, link.to)));
                }
            }
        }
        let mut path = Vec::new();
        let mut cur = egress;
        while cur != ingress {
            let (_, prev) = dist.get(&cur)?;
            let p = (*prev)?;
            path.push((p, cur));
            cur = p;
        }
        path.reverse();
        Some(path)
    }

    /// Establish a tunnel; signals Path+Resv per hop and allocates one
    /// label per hop.
    pub fn establish(
        &mut self,
        ingress: RouterId,
        egress: RouterId,
        bw: f64,
    ) -> Result<TunnelId, RsvpError> {
        let path = self.cspf(ingress, egress, bw).ok_or(RsvpError::NoPath {
            ingress,
            egress,
            bw,
        })?;
        if path.is_empty() {
            return Err(RsvpError::NoPath {
                ingress,
                egress,
                bw,
            });
        }
        for key in &path {
            *self.reserved.entry(*key).or_insert(0.0) += bw;
        }
        let hops = path.len() as u64;
        self.stats.path_msgs += hops;
        self.stats.resv_msgs += hops;
        self.stats.labels += hops;
        let id = TunnelId(self.next_id);
        self.next_id += 1;
        self.tunnels.insert(
            id,
            Tunnel {
                id,
                ingress,
                egress,
                path,
                bw,
            },
        );
        Ok(id)
    }

    /// Tear a tunnel down (PathTear per hop, reservations released).
    pub fn teardown(&mut self, id: TunnelId) -> Result<(), RsvpError> {
        let t = self
            .tunnels
            .remove(&id)
            .ok_or(RsvpError::UnknownTunnel(id))?;
        for key in &t.path {
            if let Some(r) = self.reserved.get_mut(key) {
                *r = (*r - t.bw).max(0.0);
            }
        }
        self.stats.tear_msgs += t.path.len() as u64;
        Ok(())
    }

    /// Established tunnels.
    pub fn tunnels(&self) -> impl Iterator<Item = &Tunnel> {
        self.tunnels.values()
    }

    /// Soft-state entries per router (path + resv state per tunnel
    /// traversing it, head and tail included).
    pub fn state_per_router(&self) -> BTreeMap<RouterId, usize> {
        let mut out: BTreeMap<RouterId, usize> = BTreeMap::new();
        for t in self.tunnels.values() {
            let mut routers: Vec<RouterId> = vec![t.ingress];
            routers.extend(t.path.iter().map(|(_, to)| *to));
            for r in routers {
                *out.entry(r).or_insert(0) += 2; // path + resv blocks
            }
        }
        out
    }

    /// Total soft-state entries network-wide.
    pub fn total_state(&self) -> usize {
        self.state_per_router().values().sum()
    }

    /// Refresh messages per second with the given soft-state refresh
    /// interval (Path and Resv both refresh per hop).
    pub fn refresh_msgs_per_sec(&self, interval: Dur) -> f64 {
        let hops: u64 = self.tunnels.values().map(|t| t.hops() as u64).sum();
        (2 * hops) as f64 / interval.as_secs_f64()
    }

    /// Data-plane encapsulation overhead fraction for `pkt_bytes`
    /// payload packets over a depth-1 label stack.
    pub fn encap_overhead_fraction(pkt_bytes: u64) -> f64 {
        LABEL_BYTES as f64 / (pkt_bytes + LABEL_BYTES) as f64
    }

    /// Greedy demand placement: route `rate` from `ingress` to
    /// `egress`, splitting over up to `max_tunnels` tunnels when a
    /// single one does not fit. Returns established tunnel ids.
    ///
    /// This is the "stateful uneven load-balancing" of Sec. 2: the
    /// resulting per-tunnel bandwidths form the ingress's split table.
    pub fn place_demand(
        &mut self,
        ingress: RouterId,
        egress: RouterId,
        rate: f64,
        max_tunnels: u32,
    ) -> Result<Vec<TunnelId>, RsvpError> {
        let mut remaining = rate;
        let mut out = Vec::new();
        for _ in 0..max_tunnels {
            if remaining <= 1e-9 {
                break;
            }
            // Try the full remainder first; else the widest path.
            if let Ok(id) = self.establish(ingress, egress, remaining) {
                out.push(id);
                remaining = 0.0;
                break;
            }
            let widest = self.widest_path_bw(ingress, egress);
            if widest <= 1e-9 {
                break;
            }
            let bw = widest.min(remaining);
            let id = self.establish(ingress, egress, bw)?;
            out.push(id);
            remaining -= bw;
        }
        if remaining > 1e-9 {
            // Roll back everything we placed.
            for id in &out {
                let _ = self.teardown(*id);
            }
            return Err(RsvpError::NoPath {
                ingress,
                egress,
                bw: remaining,
            });
        }
        Ok(out)
    }

    /// Max-bottleneck (widest) path residual bandwidth from ingress to
    /// egress.
    fn widest_path_bw(&self, ingress: RouterId, egress: RouterId) -> f64 {
        // Binary search over bandwidth with CSPF feasibility (coarse
        // but simple and deterministic).
        let mut caps: Vec<f64> = self
            .capacities
            .keys()
            .map(|k| self.residual(k.0, k.1))
            .filter(|r| *r > 1e-9)
            .collect();
        caps.sort_by(|a, b| a.partial_cmp(b).unwrap());
        caps.dedup();
        // Feasible bandwidths are bounded by link residuals; test from
        // the largest down.
        let mut probe = RsvpTe {
            topo: self.topo.clone(),
            capacities: self.capacities.clone(),
            reserved: self.reserved.clone(),
            tunnels: BTreeMap::new(),
            next_id: 0,
            stats: RsvpStats::default(),
        };
        for bw in caps.iter().rev() {
            if probe.cspf(ingress, egress, *bw).is_some() {
                return *bw;
            }
        }
        0.0
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn r(n: u32) -> RouterId {
        RouterId(n)
    }

    /// Square: 1-2-4 (cheap) and 1-3-4 (expensive), caps 100.
    fn square() -> RsvpTe {
        let mut t = Topology::new();
        for i in 1..=4 {
            t.add_router(r(i));
        }
        t.add_link_sym(r(1), r(2), Metric(1)).unwrap();
        t.add_link_sym(r(2), r(4), Metric(1)).unwrap();
        t.add_link_sym(r(1), r(3), Metric(2)).unwrap();
        t.add_link_sym(r(3), r(4), Metric(2)).unwrap();
        let caps = t.all_links().map(|(a, b, _)| ((a, b), 100.0)).collect();
        RsvpTe::new(t, caps)
    }

    #[test]
    fn cspf_prefers_cheap_path_with_room() {
        let mut te = square();
        let path = te.cspf(r(1), r(4), 50.0).unwrap();
        assert_eq!(path, vec![(r(1), r(2)), (r(2), r(4))]);
    }

    #[test]
    fn cspf_respects_reservations() {
        let mut te = square();
        te.establish(r(1), r(4), 80.0).unwrap();
        // Only 20 left on the cheap path; 50 must detour.
        let path = te.cspf(r(1), r(4), 50.0).unwrap();
        assert_eq!(path, vec![(r(1), r(3)), (r(3), r(4))]);
    }

    #[test]
    fn establish_counts_messages_and_labels() {
        let mut te = square();
        te.establish(r(1), r(4), 10.0).unwrap();
        assert_eq!(te.stats.path_msgs, 2);
        assert_eq!(te.stats.resv_msgs, 2);
        assert_eq!(te.stats.labels, 2);
        assert_eq!(te.total_state(), 6); // 3 routers × 2 blocks
    }

    #[test]
    fn teardown_releases_bandwidth() {
        let mut te = square();
        let id = te.establish(r(1), r(4), 80.0).unwrap();
        assert!(te.residual(r(1), r(2)) < 30.0);
        te.teardown(id).unwrap();
        assert!((te.residual(r(1), r(2)) - 100.0).abs() < 1e-9);
        assert_eq!(te.stats.tear_msgs, 2);
        assert!(matches!(te.teardown(id), Err(RsvpError::UnknownTunnel(_))));
    }

    #[test]
    fn oversubscription_is_rejected() {
        let mut te = square();
        te.establish(r(1), r(4), 100.0).unwrap();
        te.establish(r(1), r(4), 100.0).unwrap(); // takes the detour
        let err = te.establish(r(1), r(4), 10.0).unwrap_err();
        assert!(matches!(err, RsvpError::NoPath { .. }));
    }

    #[test]
    fn place_demand_splits_over_two_tunnels() {
        let mut te = square();
        // 160 > any single path (100): requires an uneven 100/60 split.
        let ids = te.place_demand(r(1), r(4), 160.0, 4).unwrap();
        assert_eq!(ids.len(), 2);
        let bws: Vec<f64> = te.tunnels().map(|t| t.bw).collect();
        let total: f64 = bws.iter().sum();
        assert!((total - 160.0).abs() < 1e-6);
        // The split is stateful and uneven — exactly the paper's point.
        assert!(bws.iter().any(|b| (*b - 100.0).abs() < 1e-6));
    }

    #[test]
    fn place_demand_rolls_back_on_failure() {
        let mut te = square();
        let err = te.place_demand(r(1), r(4), 300.0, 4).unwrap_err();
        assert!(matches!(err, RsvpError::NoPath { .. }));
        assert_eq!(te.tunnels().count(), 0);
        assert!((te.residual(r(1), r(2)) - 100.0).abs() < 1e-9);
    }

    #[test]
    fn refresh_and_encap_overhead() {
        let mut te = square();
        te.establish(r(1), r(4), 10.0).unwrap();
        te.establish(r(1), r(4), 10.0).unwrap();
        // 2 tunnels × 2 hops × 2 (path+resv) / 30 s
        let rate = te.refresh_msgs_per_sec(Dur::from_secs(30));
        assert!((rate - 8.0 / 30.0).abs() < 1e-9);
        let f = RsvpTe::encap_overhead_fraction(1500);
        assert!((f - 4.0 / 1504.0).abs() < 1e-12);
    }
}
