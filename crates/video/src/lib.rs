//! # fib-video — the demo's video-delivery workload
//!
//! The demo streams videos from servers to playback clients across the
//! Fibbing-controlled network; its success criterion is *smooth
//! playback*. This crate provides:
//!
//! * [`catalog`] — assets and encoding ladders;
//! * [`client`] — the playback buffer model (startup, drain, stalls);
//! * [`abr`] — adaptive-bitrate policies (constant, rate-based,
//!   BBA-style buffer-based);
//! * [`qoe`] — per-session reports and aggregates (stalls, startup
//!   delay, mean bitrate, MOS-like score);
//! * [`workload`] — the netsim application driving sessions:
//!   server-paced flows feed players, ABR runs at segment
//!   granularity, QoE is published through a shared handle;
//! * [`flashcrowd`] — arrival schedules, including the paper's exact
//!   one (1 flow at t=0, +30 at t=15, +31 from a second source at
//!   t=35).

#![warn(missing_docs)]
#![forbid(unsafe_code)]

pub mod abr;
pub mod catalog;
pub mod client;
pub mod flashcrowd;
pub mod qoe;
pub mod workload;

/// Convenient re-exports of the most used items.
pub mod prelude {
    pub use crate::abr::{AbrInput, AbrPolicy};
    pub use crate::catalog::{Ladder, Video};
    pub use crate::client::{Player, PlayerConfig, PlayerState};
    pub use crate::flashcrowd::{
        batch, batch_starts, diurnal, diurnal_starts, paper_schedule, poisson_crowd, poisson_starts,
    };
    pub use crate::qoe::{summarize, QoeReport, QoeSummary};
    pub use crate::workload::{
        EagerSource, GroupedSource, QoeHandle, SessionGroup, SessionSource, SessionSpec,
        VideoWorkload,
    };
}
