//! Flash-crowd arrival schedules.
//!
//! The demo's exact workload plus generators for extended experiments.

use crate::workload::SessionSpec;
use fib_igp::time::{Dur, Timestamp};
use fib_igp::types::{Prefix, RouterId};
use rand::Rng;

/// The paper's exact schedule (Sec. 3): one flow from `s1` at t=0,
/// 30 more at t=15, then 31 flows from `s2` at t=35 — all toward the
/// blue prefix, constant-bitrate videos.
///
/// `rate` is the per-video bitrate (bytes/s); `video_secs` the clip
/// length (long enough to span the experiment). Arrivals within a
/// batch are spread over one second, as launching 30 players takes a
/// moment in the real demo too.
pub fn paper_schedule(
    s1: RouterId,
    s2: RouterId,
    dst: Prefix,
    rate: f64,
    video_secs: f64,
) -> Vec<SessionSpec> {
    let mut specs = batch(Timestamp::from_secs(0), s1, dst, 1, rate, video_secs, 0);
    specs.extend(batch(
        Timestamp::from_secs(15),
        s1,
        dst,
        30,
        rate,
        video_secs,
        1,
    ));
    specs.extend(batch(
        Timestamp::from_secs(35),
        s2,
        dst,
        31,
        rate,
        video_secs,
        31,
    ));
    specs
}

/// Arrival instants of a [`batch`]: `n` starts spread over one second
/// from `start`. The compact form the scenario engine stores (a
/// [`crate::workload::SessionGroup`]) instead of materialized specs.
pub fn batch_starts(start: Timestamp, n: u32) -> Vec<Timestamp> {
    (0..u64::from(n))
        .map(|i| start + Dur::from_millis(i * 1000 / u64::from(n.max(1))))
        .collect()
}

/// A batch of `n` constant-bitrate sessions starting at `start`,
/// spread over one second (launching 30 players takes a moment in the
/// real demo too) — the building block of [`paper_schedule`] and the
/// scenario engine's constant workloads and demand surges. Tags run
/// `tag_base..tag_base + n`.
pub fn batch(
    start: Timestamp,
    src: RouterId,
    dst: Prefix,
    n: u32,
    rate: f64,
    video_secs: f64,
    tag_base: u64,
) -> Vec<SessionSpec> {
    batch_starts(start, n)
        .into_iter()
        .enumerate()
        .map(|(i, t)| SessionSpec::constant(t, src, dst, rate, video_secs, tag_base + i as u64))
        .collect()
}

/// Arrival instants of a [`poisson_crowd`]: `n` arrivals at
/// exponential inter-arrival times of mean `mean_gap` from `start`,
/// drawn from `rng` in arrival order.
pub fn poisson_starts<R: Rng>(
    rng: &mut R,
    start: Timestamp,
    mean_gap: Dur,
    n: u32,
) -> Vec<Timestamp> {
    let mut starts = Vec::with_capacity(n as usize);
    let mut t = start;
    for _ in 0..n {
        let u: f64 = rng.gen_range(1e-9..1.0);
        let gap = Dur::from_secs_f64(-u.ln() * mean_gap.as_secs_f64());
        t += gap;
        starts.push(t);
    }
    starts
}

/// A Poisson flash crowd: `n` arrivals at exponential inter-arrival
/// times of mean `mean_gap` starting at `start`.
#[allow(clippy::too_many_arguments)] // flat schedule parameters; a builder would obscure call sites
pub fn poisson_crowd<R: Rng>(
    rng: &mut R,
    start: Timestamp,
    mean_gap: Dur,
    n: u32,
    src: RouterId,
    dst: Prefix,
    rate: f64,
    video_secs: f64,
    tag_base: u64,
) -> Vec<SessionSpec> {
    poisson_starts(rng, start, mean_gap, n)
        .into_iter()
        .enumerate()
        .map(|(i, t)| SessionSpec::constant(t, src, dst, rate, video_secs, tag_base + i as u64))
        .collect()
}

/// A diurnal demand mix: session arrivals whose intensity swings
/// sinusoidally between `trough_per_sec` and `peak_per_sec` with the
/// given period, over `[0, horizon_secs)` — the "daily cycle"
/// compressed into an experiment horizon.
///
/// Arrival times come from integrating the intensity (deterministic);
/// the RNG only jitters each arrival inside its integration step, so
/// the same seed always yields the same schedule.
/// Arrival instants of a [`diurnal`] mix, in *generation* order (tags
/// follow generation order; the jitter inside an integration step may
/// locally reorder start times — launch order sorts stably by start).
pub fn diurnal_starts<R: Rng>(
    rng: &mut R,
    horizon_secs: f64,
    period_secs: f64,
    peak_per_sec: f64,
    trough_per_sec: f64,
) -> Vec<Timestamp> {
    assert!(period_secs > 0.0, "period must be positive");
    assert!(
        peak_per_sec >= trough_per_sec && trough_per_sec >= 0.0,
        "need peak >= trough >= 0"
    );
    let mid = (peak_per_sec + trough_per_sec) / 2.0;
    let amp = (peak_per_sec - trough_per_sec) / 2.0;
    let step = 0.1; // integration step in seconds
    let mut starts = Vec::new();
    let mut acc = 0.0;
    let mut t = 0.0;
    while t < horizon_secs {
        // Trough at t=0, peak half a period in.
        let lambda = mid - amp * (2.0 * std::f64::consts::PI * t / period_secs).cos();
        acc += lambda * step;
        while acc >= 1.0 {
            acc -= 1.0;
            let jitter = rng.gen_range(0.0..step);
            starts.push(Timestamp::from_secs(0) + Dur::from_secs_f64(t + jitter));
        }
        t += step;
    }
    starts
}

/// A diurnal demand mix: session arrivals whose intensity swings
/// sinusoidally between `trough_per_sec` and `peak_per_sec` with the
/// given period, over `[0, horizon_secs)` — the "daily cycle"
/// compressed into an experiment horizon.
///
/// Arrival times come from integrating the intensity (deterministic);
/// the RNG only jitters each arrival inside its integration step, so
/// the same seed always yields the same schedule.
#[allow(clippy::too_many_arguments)] // flat schedule parameters; a builder would obscure call sites
pub fn diurnal<R: Rng>(
    rng: &mut R,
    horizon_secs: f64,
    period_secs: f64,
    peak_per_sec: f64,
    trough_per_sec: f64,
    src: RouterId,
    dst: Prefix,
    rate: f64,
    video_secs: f64,
    tag_base: u64,
) -> Vec<SessionSpec> {
    let mut specs: Vec<SessionSpec> =
        diurnal_starts(rng, horizon_secs, period_secs, peak_per_sec, trough_per_sec)
            .into_iter()
            .enumerate()
            .map(|(i, t)| SessionSpec::constant(t, src, dst, rate, video_secs, tag_base + i as u64))
            .collect();
    specs.sort_by_key(|s| s.start);
    specs
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    fn r(n: u32) -> RouterId {
        RouterId(n)
    }

    #[test]
    fn paper_schedule_counts_and_times() {
        let specs = paper_schedule(r(2), r(1), Prefix::net24(1), 125_000.0, 120.0);
        assert_eq!(specs.len(), 62);
        // Batch boundaries.
        let at = |secs: f64| -> usize {
            specs
                .iter()
                .filter(|s| s.start.as_secs_f64() < secs)
                .count()
        };
        assert_eq!(at(1.0), 1);
        assert_eq!(at(14.9), 1);
        assert_eq!(at(16.1), 31);
        assert_eq!(at(34.9), 31);
        assert_eq!(at(36.1), 62);
        // Sources per batch.
        assert!(specs[..31].iter().all(|s| s.src == r(2)));
        assert!(specs[31..].iter().all(|s| s.src == r(1)));
        // Tags unique.
        let mut tags: Vec<u64> = specs.iter().map(|s| s.tag).collect();
        tags.sort();
        tags.dedup();
        assert_eq!(tags.len(), 62);
    }

    #[test]
    fn diurnal_mix_swings_and_is_deterministic() {
        let mk = || {
            let mut rng = StdRng::seed_from_u64(11);
            diurnal(
                &mut rng,
                120.0,
                120.0,
                1.0,
                0.1,
                r(1),
                Prefix::net24(1),
                1e5,
                30.0,
                500,
            )
        };
        let a = mk();
        // Mean intensity 0.55/s over 120 s ≈ 66 arrivals.
        assert!((50..=80).contains(&a.len()), "got {}", a.len());
        for w in a.windows(2) {
            assert!(w[0].start <= w[1].start);
        }
        // Peak half (centered on t=60) sees far more arrivals than the
        // trough halves.
        let in_range = |from: f64, to: f64| {
            a.iter()
                .filter(|s| {
                    let t = s.start.as_secs_f64();
                    t >= from && t < to
                })
                .count()
        };
        assert!(in_range(30.0, 90.0) > 2 * (in_range(0.0, 30.0) + in_range(90.0, 120.0)));
        // Same seed ⇒ same schedule; tags unique from the base.
        let b = mk();
        assert_eq!(
            a.iter().map(|s| (s.start, s.tag)).collect::<Vec<_>>(),
            b.iter().map(|s| (s.start, s.tag)).collect::<Vec<_>>()
        );
        let mut tags: Vec<u64> = a.iter().map(|s| s.tag).collect();
        tags.sort();
        tags.dedup();
        assert_eq!(tags.len(), a.len());
        assert!(tags[0] >= 500);
    }

    #[test]
    fn poisson_crowd_is_ordered_and_deterministic() {
        let mk = |seed| {
            let mut rng = StdRng::seed_from_u64(seed);
            poisson_crowd(
                &mut rng,
                Timestamp::from_secs(10),
                Dur::from_millis(500),
                20,
                r(1),
                Prefix::net24(1),
                1e5,
                60.0,
                100,
            )
        };
        let a = mk(3);
        let b = mk(3);
        assert_eq!(a.len(), 20);
        for w in a.windows(2) {
            assert!(w[0].start <= w[1].start);
        }
        assert_eq!(
            a.iter().map(|s| s.start).collect::<Vec<_>>(),
            b.iter().map(|s| s.start).collect::<Vec<_>>()
        );
        assert!(a[0].start >= Timestamp::from_secs(10));
    }
}
