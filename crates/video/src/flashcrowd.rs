//! Flash-crowd arrival schedules.
//!
//! The demo's exact workload plus generators for extended experiments.

use crate::workload::SessionSpec;
use fib_igp::time::{Dur, Timestamp};
use fib_igp::types::{Prefix, RouterId};
use rand::Rng;

/// The paper's exact schedule (Sec. 3): one flow from `s1` at t=0,
/// 30 more at t=15, then 31 flows from `s2` at t=35 — all toward the
/// blue prefix, constant-bitrate videos.
///
/// `rate` is the per-video bitrate (bytes/s); `video_secs` the clip
/// length (long enough to span the experiment). Arrivals within a
/// batch are spread over one second, as launching 30 players takes a
/// moment in the real demo too.
pub fn paper_schedule(
    s1: RouterId,
    s2: RouterId,
    dst: Prefix,
    rate: f64,
    video_secs: f64,
) -> Vec<SessionSpec> {
    let mut specs = Vec::new();
    let mut tag = 0u64;
    let mut push_batch = |specs: &mut Vec<SessionSpec>, t0: u64, src: RouterId, n: u64| {
        for i in 0..n {
            let jitter = Dur::from_millis(i * 1000 / n.max(1));
            specs.push(SessionSpec::constant(
                Timestamp::from_secs(t0) + jitter,
                src,
                dst,
                rate,
                video_secs,
                tag,
            ));
            tag += 1;
        }
    };
    push_batch(&mut specs, 0, s1, 1);
    push_batch(&mut specs, 15, s1, 30);
    push_batch(&mut specs, 35, s2, 31);
    specs
}

/// A Poisson flash crowd: `n` arrivals at exponential inter-arrival
/// times of mean `mean_gap` starting at `start`.
#[allow(clippy::too_many_arguments)] // flat schedule parameters; a builder would obscure call sites
pub fn poisson_crowd<R: Rng>(
    rng: &mut R,
    start: Timestamp,
    mean_gap: Dur,
    n: u32,
    src: RouterId,
    dst: Prefix,
    rate: f64,
    video_secs: f64,
    tag_base: u64,
) -> Vec<SessionSpec> {
    let mut specs = Vec::new();
    let mut t = start;
    for i in 0..n {
        let u: f64 = rng.gen_range(1e-9..1.0);
        let gap = Dur::from_secs_f64(-u.ln() * mean_gap.as_secs_f64());
        t += gap;
        specs.push(SessionSpec::constant(
            t,
            src,
            dst,
            rate,
            video_secs,
            tag_base + u64::from(i),
        ));
    }
    specs
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    fn r(n: u32) -> RouterId {
        RouterId(n)
    }

    #[test]
    fn paper_schedule_counts_and_times() {
        let specs = paper_schedule(r(2), r(1), Prefix::net24(1), 125_000.0, 120.0);
        assert_eq!(specs.len(), 62);
        // Batch boundaries.
        let at = |secs: f64| -> usize {
            specs
                .iter()
                .filter(|s| s.start.as_secs_f64() < secs)
                .count()
        };
        assert_eq!(at(1.0), 1);
        assert_eq!(at(14.9), 1);
        assert_eq!(at(16.1), 31);
        assert_eq!(at(34.9), 31);
        assert_eq!(at(36.1), 62);
        // Sources per batch.
        assert!(specs[..31].iter().all(|s| s.src == r(2)));
        assert!(specs[31..].iter().all(|s| s.src == r(1)));
        // Tags unique.
        let mut tags: Vec<u64> = specs.iter().map(|s| s.tag).collect();
        tags.sort();
        tags.dedup();
        assert_eq!(tags.len(), 62);
    }

    #[test]
    fn poisson_crowd_is_ordered_and_deterministic() {
        let mk = |seed| {
            let mut rng = StdRng::seed_from_u64(seed);
            poisson_crowd(
                &mut rng,
                Timestamp::from_secs(10),
                Dur::from_millis(500),
                20,
                r(1),
                Prefix::net24(1),
                1e5,
                60.0,
                100,
            )
        };
        let a = mk(3);
        let b = mk(3);
        assert_eq!(a.len(), 20);
        for w in a.windows(2) {
            assert!(w[0].start <= w[1].start);
        }
        assert_eq!(
            a.iter().map(|s| s.start).collect::<Vec<_>>(),
            b.iter().map(|s| s.start).collect::<Vec<_>>()
        );
        assert!(a[0].start >= Timestamp::from_secs(10));
    }
}
