//! The playback client: buffer dynamics and stall accounting.
//!
//! The demo's observable is "video playbacks are smooth when the
//! Fibbing controller is in use and stutter when disabled". The player
//! model captures exactly that: downloaded bytes become buffered
//! seconds at the current bitrate; playback drains one second per
//! second; an empty buffer is a stall (rebuffering until a target
//! level); QoE counters accumulate along the way.

use crate::catalog::Video;
use fib_igp::time::Timestamp;

/// Player lifecycle states.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum PlayerState {
    /// Filling the initial buffer; nothing rendered yet.
    Startup,
    /// Rendering.
    Playing,
    /// Buffer ran dry mid-playback; refilling.
    Stalled,
    /// Clip finished.
    Done,
}

/// Player tuning.
#[derive(Debug, Clone, Copy)]
pub struct PlayerConfig {
    /// Buffered seconds required to start rendering.
    pub startup_buffer: f64,
    /// Buffered seconds required to resume after a stall.
    pub rebuffer_target: f64,
    /// Buffer capacity in seconds (pauses download when full).
    pub max_buffer: f64,
}

impl Default for PlayerConfig {
    fn default() -> Self {
        PlayerConfig {
            startup_buffer: 2.0,
            rebuffer_target: 2.0,
            max_buffer: 30.0,
        }
    }
}

/// A playback client for one video session.
#[derive(Debug, Clone)]
pub struct Player {
    cfg: PlayerConfig,
    video: Video,
    state: PlayerState,
    level: usize,
    buffer_secs: f64,
    played_secs: f64,
    downloaded_secs: f64,
    started_at: Option<f64>,
    session_start: f64,
    // QoE accumulators.
    stalls: u32,
    stall_secs: f64,
    bitrate_time: f64, // ∫ bitrate over played time
    switches: u32,
}

impl Player {
    /// New player for `video`, session starting at `now`.
    pub fn new(video: Video, cfg: PlayerConfig, now: Timestamp) -> Player {
        Player {
            cfg,
            video,
            state: PlayerState::Startup,
            level: 0,
            buffer_secs: 0.0,
            played_secs: 0.0,
            downloaded_secs: 0.0,
            started_at: None,
            session_start: now.as_secs_f64(),
            stalls: 0,
            stall_secs: 0.0,
            bitrate_time: 0.0,
            switches: 0,
        }
    }

    /// Current state.
    pub fn state(&self) -> PlayerState {
        self.state
    }

    /// Buffered content in seconds.
    pub fn buffer_secs(&self) -> f64 {
        self.buffer_secs
    }

    /// Seconds of content rendered so far.
    pub fn played_secs(&self) -> f64 {
        self.played_secs
    }

    /// Current ABR level.
    pub fn level(&self) -> usize {
        self.level
    }

    /// Current bitrate (bytes/s).
    pub fn bitrate(&self) -> f64 {
        self.video.ladder.rate(self.level)
    }

    /// Switch the ABR level (QoE counts the switch).
    pub fn set_level(&mut self, level: usize) {
        let clamped = level.min(self.video.ladder.levels() - 1);
        if clamped != self.level {
            self.level = clamped;
            self.switches += 1;
        }
    }

    /// `true` while the player still wants bytes.
    pub fn wants_download(&self) -> bool {
        self.state != PlayerState::Done
            && self.downloaded_secs < self.video.duration
            && self.buffer_secs < self.cfg.max_buffer
    }

    /// Advance the session by `dt` seconds during which `bytes` of
    /// content arrived. `now_secs` is the absolute session clock used
    /// for QoE timestamps.
    pub fn advance(&mut self, now_secs: f64, dt: f64, bytes: f64) {
        if self.state == PlayerState::Done || dt <= 0.0 {
            return;
        }
        // Ingest: bytes become buffered seconds at the current level's
        // bitrate, bounded by what remains of the clip.
        let rate = self.bitrate();
        if bytes > 0.0 && self.downloaded_secs < self.video.duration {
            let secs = (bytes / rate).min(self.video.duration - self.downloaded_secs);
            self.downloaded_secs += secs;
            self.buffer_secs += secs;
        }

        match self.state {
            PlayerState::Startup => {
                if self.buffer_secs >= self.cfg.startup_buffer
                    || self.downloaded_secs >= self.video.duration
                {
                    self.state = PlayerState::Playing;
                    self.started_at = Some(now_secs);
                }
            }
            PlayerState::Stalled => {
                self.stall_secs += dt;
                if self.buffer_secs >= self.cfg.rebuffer_target
                    || self.downloaded_secs >= self.video.duration
                {
                    self.state = PlayerState::Playing;
                }
            }
            PlayerState::Playing => {
                let render = dt
                    .min(self.buffer_secs)
                    .min(self.video.duration - self.played_secs);
                self.played_secs += render;
                self.buffer_secs -= render;
                self.bitrate_time += render * rate;
                if self.played_secs >= self.video.duration - 1e-9 {
                    self.state = PlayerState::Done;
                } else if render < dt - 1e-12 && self.downloaded_secs < self.video.duration {
                    // Ran dry mid-interval: stall.
                    self.state = PlayerState::Stalled;
                    self.stalls += 1;
                    self.stall_secs += dt - render;
                }
            }
            PlayerState::Done => {}
        }
    }

    /// Finalize and report QoE. Callable any time; fields reflect the
    /// session so far.
    pub fn qoe(&self) -> crate::qoe::QoeReport {
        crate::qoe::QoeReport {
            startup_delay: self
                .started_at
                .map(|t| t - self.session_start)
                .unwrap_or(f64::INFINITY),
            stalls: self.stalls,
            stall_secs: self.stall_secs,
            mean_bitrate: if self.played_secs > 0.0 {
                self.bitrate_time / self.played_secs
            } else {
                0.0
            },
            max_bitrate: self.video.ladder.max_rate(),
            switches: self.switches,
            played_secs: self.played_secs,
            duration: self.video.duration,
            completed: self.state == PlayerState::Done,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::catalog::Video;

    fn player(rate: f64) -> Player {
        Player::new(
            Video::constant(10.0, rate),
            PlayerConfig {
                startup_buffer: 1.0,
                rebuffer_target: 1.0,
                max_buffer: 5.0,
            },
            Timestamp::ZERO,
        )
    }

    #[test]
    fn smooth_playback_with_sufficient_rate() {
        let mut p = player(100.0);
        let mut t = 0.0;
        // Feed exactly the bitrate for 30 s of wall clock.
        for _ in 0..300 {
            p.advance(t, 0.1, 10.0);
            t += 0.1;
        }
        assert_eq!(p.state(), PlayerState::Done);
        let q = p.qoe();
        assert_eq!(q.stalls, 0);
        assert!(q.completed);
        assert!((q.mean_bitrate - 100.0).abs() < 1e-6);
        assert!(q.startup_delay > 0.0 && q.startup_delay < 2.0);
    }

    #[test]
    fn starved_player_stalls() {
        let mut p = player(100.0);
        let mut t = 0.0;
        // Half the required rate.
        for _ in 0..400 {
            p.advance(t, 0.1, 5.0);
            t += 0.1;
        }
        let q = p.qoe();
        assert!(q.stalls >= 1, "expected stalls, got {q:?}");
        assert!(q.stall_secs > 1.0);
    }

    #[test]
    fn fast_network_fills_buffer_then_pauses_download() {
        let mut p = player(100.0);
        // Huge burst: buffer caps at max_buffer=5 s.
        p.advance(0.0, 0.1, 100_000.0);
        assert!(p.buffer_secs() <= 10.0 + 1e-9);
        assert!(!p.wants_download() || p.buffer_secs() < 5.0);
    }

    #[test]
    fn done_player_ignores_input() {
        let mut p = player(100.0);
        let mut t = 0.0;
        for _ in 0..300 {
            p.advance(t, 0.1, 10.0);
            t += 0.1;
        }
        assert_eq!(p.state(), PlayerState::Done);
        let played = p.played_secs();
        p.advance(t, 1.0, 1000.0);
        assert_eq!(p.played_secs(), played);
    }

    #[test]
    fn level_switch_counts() {
        let mut p = Player::new(
            Video::adaptive(10.0),
            PlayerConfig::default(),
            Timestamp::ZERO,
        );
        p.set_level(2);
        p.set_level(2);
        p.set_level(0);
        assert_eq!(p.qoe().switches, 2);
    }

    #[test]
    fn never_started_reports_infinite_startup() {
        let p = player(100.0);
        assert!(p.qoe().startup_delay.is_infinite());
        assert!(!p.qoe().completed);
    }
}
