//! Adaptive-bitrate policies.
//!
//! Decisions are taken at segment boundaries from two observables:
//! the current buffer level and the recent download throughput.

use crate::catalog::Ladder;

/// Inputs to an ABR decision.
#[derive(Debug, Clone, Copy)]
pub struct AbrInput {
    /// Buffered seconds.
    pub buffer_secs: f64,
    /// Smoothed recent throughput (bytes/s).
    pub throughput: f64,
    /// Level currently playing.
    pub current_level: usize,
}

/// An ABR policy.
#[derive(Debug, Clone)]
pub enum AbrPolicy {
    /// Always the same level (the demo's constant-rate videos).
    Constant(usize),
    /// Pick the highest level at most `safety × throughput`.
    RateBased {
        /// Fraction of measured throughput considered usable.
        safety: f64,
    },
    /// Buffer-based (BBA-style): low reservoir → lowest level, above
    /// the cushion → highest, linear mapping in between.
    BufferBased {
        /// Reservoir in seconds.
        reservoir: f64,
        /// Cushion top in seconds.
        cushion: f64,
    },
}

impl AbrPolicy {
    /// Decide the next level.
    pub fn decide(&self, ladder: &Ladder, input: AbrInput) -> usize {
        match self {
            AbrPolicy::Constant(level) => (*level).min(ladder.levels() - 1),
            AbrPolicy::RateBased { safety } => ladder.level_for_budget(input.throughput * safety),
            AbrPolicy::BufferBased { reservoir, cushion } => {
                if input.buffer_secs <= *reservoir {
                    0
                } else if input.buffer_secs >= *cushion {
                    ladder.levels() - 1
                } else {
                    let frac = (input.buffer_secs - reservoir) / (cushion - reservoir);
                    ((ladder.levels() - 1) as f64 * frac).round() as usize
                }
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn input(buffer: f64, thr: f64) -> AbrInput {
        AbrInput {
            buffer_secs: buffer,
            throughput: thr,
            current_level: 0,
        }
    }

    #[test]
    fn constant_is_clamped() {
        let l = Ladder::standard();
        assert_eq!(AbrPolicy::Constant(99).decide(&l, input(0.0, 0.0)), 3);
        assert_eq!(AbrPolicy::Constant(1).decide(&l, input(0.0, 0.0)), 1);
    }

    #[test]
    fn rate_based_follows_throughput() {
        let l = Ladder::standard();
        let p = AbrPolicy::RateBased { safety: 0.8 };
        // 0.8 × 200k = 160k → level 3 is 300k (too high), level 2 is
        // 150k (fits).
        assert_eq!(p.decide(&l, input(0.0, 200_000.0)), 2);
        assert_eq!(p.decide(&l, input(0.0, 10_000.0)), 0);
        assert_eq!(p.decide(&l, input(0.0, 1e9)), 3);
    }

    #[test]
    fn buffer_based_maps_reservoir_and_cushion() {
        let l = Ladder::standard();
        let p = AbrPolicy::BufferBased {
            reservoir: 5.0,
            cushion: 15.0,
        };
        assert_eq!(p.decide(&l, input(2.0, 0.0)), 0);
        assert_eq!(p.decide(&l, input(20.0, 0.0)), 3);
        let mid = p.decide(&l, input(10.0, 0.0));
        assert!((1..=2).contains(&mid), "mid-buffer level: {mid}");
    }
}
