//! Video assets: durations and bitrate ladders.

use std::fmt;

/// An encoding ladder: available bitrates in bytes/s, ascending.
#[derive(Debug, Clone, PartialEq)]
pub struct Ladder(Vec<f64>);

impl Ladder {
    /// Build from ascending positive bitrates.
    pub fn new(rates: &[f64]) -> Ladder {
        assert!(!rates.is_empty(), "ladder needs at least one bitrate");
        assert!(
            rates.windows(2).all(|w| w[0] < w[1]),
            "ladder must be strictly ascending"
        );
        assert!(rates.iter().all(|r| *r > 0.0));
        Ladder(rates.to_vec())
    }

    /// A single-bitrate ladder (the demo's constant-rate videos).
    pub fn constant(rate: f64) -> Ladder {
        Ladder::new(&[rate])
    }

    /// A typical SD→HD ladder around 1 Mb/s (bytes/s).
    pub fn standard() -> Ladder {
        // 400 kb/s, 800 kb/s, 1.2 Mb/s, 2.4 Mb/s in bytes/s.
        Ladder::new(&[50_000.0, 100_000.0, 150_000.0, 300_000.0])
    }

    /// Number of levels.
    pub fn levels(&self) -> usize {
        self.0.len()
    }

    /// Bitrate of a level (clamped to the top).
    pub fn rate(&self, level: usize) -> f64 {
        self.0[level.min(self.0.len() - 1)]
    }

    /// Highest bitrate.
    pub fn max_rate(&self) -> f64 {
        *self.0.last().expect("non-empty")
    }

    /// Lowest bitrate.
    pub fn min_rate(&self) -> f64 {
        self.0[0]
    }

    /// The highest level whose bitrate is at most `budget` (level 0 if
    /// even the lowest exceeds it).
    pub fn level_for_budget(&self, budget: f64) -> usize {
        let mut level = 0;
        for (i, r) in self.0.iter().enumerate() {
            if *r <= budget {
                level = i;
            }
        }
        level
    }
}

/// A video asset.
#[derive(Debug, Clone, PartialEq)]
pub struct Video {
    /// Playback duration in seconds.
    pub duration: f64,
    /// Segment duration in seconds (ABR decision granularity).
    pub segment: f64,
    /// Encoding ladder.
    pub ladder: Ladder,
}

impl Video {
    /// A constant-bitrate clip (the demo's videos).
    pub fn constant(duration: f64, rate: f64) -> Video {
        Video {
            duration,
            segment: 2.0,
            ladder: Ladder::constant(rate),
        }
    }

    /// An ABR asset on the standard ladder.
    pub fn adaptive(duration: f64) -> Video {
        Video {
            duration,
            segment: 2.0,
            ladder: Ladder::standard(),
        }
    }

    /// Total bytes at a given level.
    pub fn size_at(&self, level: usize) -> f64 {
        self.duration * self.ladder.rate(level)
    }
}

impl fmt::Display for Video {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "video {:.0}s @ {}-{} B/s",
            self.duration,
            self.ladder.min_rate(),
            self.ladder.max_rate()
        )
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn ladder_lookup() {
        let l = Ladder::standard();
        assert_eq!(l.levels(), 4);
        assert_eq!(l.rate(0), 50_000.0);
        assert_eq!(l.rate(99), l.max_rate());
        assert_eq!(l.level_for_budget(120_000.0), 1);
        assert_eq!(l.level_for_budget(10.0), 0);
        assert_eq!(l.level_for_budget(1e9), 3);
    }

    #[test]
    #[should_panic(expected = "ascending")]
    fn non_ascending_ladder_panics() {
        let _ = Ladder::new(&[100.0, 100.0]);
    }

    #[test]
    fn video_sizes() {
        let v = Video::constant(60.0, 125_000.0);
        assert_eq!(v.size_at(0), 60.0 * 125_000.0);
        assert!(v.to_string().contains("60s"));
    }
}
