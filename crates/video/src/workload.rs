//! The video workload driver: a netsim [`EventHandler`] component
//! binding players to flows.
//!
//! Each session is a video server → client pair: a rate-capped flow in
//! the simulator (the server paces at the encoding bitrate, as the
//! demo's streaming servers do) feeding a [`Player`]'s buffer. The
//! driver launches sessions on schedule, advances players from
//! delivered bytes every tick, runs ABR at segment granularity, and
//! publishes live QoE reports through a shared handle the experiment
//! harness reads after the run.
//!
//! Sessions arrive through a [`SessionSource`]: either an eager,
//! pre-materialized list (small experiments) or a [`GroupedSource`]
//! holding only compact per-wave parameters plus arrival instants —
//! the full [`SessionSpec`] (asset, ladder, player config) is built
//! lazily at launch time, and finished sessions are dropped from the
//! active set, so memory tracks the number of *concurrent* viewers,
//! not the total schedule length. City-scale scenarios (thousands of
//! sessions) rely on this.

use crate::abr::{AbrInput, AbrPolicy};
use crate::catalog::Video;
use crate::client::{Player, PlayerConfig, PlayerState};
use crate::qoe::QoeReport;
use fib_igp::time::{Dur, Timestamp};
use fib_igp::types::{Prefix, RouterId};
use fib_netsim::flow::{FlowId, FlowSpec};
use fib_netsim::handler::{AppEvent, EventHandler};
use fib_netsim::sim::SimContext;
use parking_lot::Mutex;
use std::collections::BTreeMap;
use std::sync::Arc;

/// One scheduled viewing session.
#[derive(Debug, Clone)]
pub struct SessionSpec {
    /// When the client presses play.
    pub start: Timestamp,
    /// Server-side ingress router.
    pub src: RouterId,
    /// Client-side destination prefix.
    pub dst: Prefix,
    /// The asset.
    pub video: Video,
    /// ABR policy.
    pub abr: AbrPolicy,
    /// Player tuning.
    pub player: PlayerConfig,
    /// Session tag (unique; keys the QoE report).
    pub tag: u64,
}

impl SessionSpec {
    /// A constant-bitrate session (the demo's shape).
    pub fn constant(
        start: Timestamp,
        src: RouterId,
        dst: Prefix,
        rate: f64,
        secs: f64,
        tag: u64,
    ) -> SessionSpec {
        SessionSpec {
            start,
            src,
            dst,
            video: Video::constant(secs, rate),
            abr: AbrPolicy::Constant(0),
            player: PlayerConfig::default(),
            tag,
        }
    }
}

/// Shared live QoE map: tag → latest report.
pub type QoeHandle = Arc<Mutex<BTreeMap<u64, QoeReport>>>;

/// Where the driver's sessions come from, in launch (time) order.
///
/// Implementations must yield sessions with non-decreasing
/// [`SessionSpec::start`]; [`SessionSource::peek_start`] lets the
/// driver stop scanning at the first future arrival.
pub trait SessionSource {
    /// Start time of the next session, `None` when exhausted.
    fn peek_start(&self) -> Option<Timestamp>;
    /// Materialize and take the next session.
    fn next_session(&mut self) -> Option<SessionSpec>;
    /// Sessions not yet launched.
    fn remaining(&self) -> usize;
}

/// An eager source: a pre-built schedule, sorted at construction.
pub struct EagerSource {
    schedule: Vec<SessionSpec>,
    cursor: usize,
}

impl EagerSource {
    /// Wrap a schedule (sorted here; stable, so equal start times keep
    /// their original order).
    pub fn new(mut schedule: Vec<SessionSpec>) -> EagerSource {
        schedule.sort_by_key(|s| s.start);
        EagerSource {
            schedule,
            cursor: 0,
        }
    }
}

impl SessionSource for EagerSource {
    fn peek_start(&self) -> Option<Timestamp> {
        self.schedule.get(self.cursor).map(|s| s.start)
    }

    fn next_session(&mut self) -> Option<SessionSpec> {
        let spec = self.schedule.get(self.cursor).cloned();
        if spec.is_some() {
            self.cursor += 1;
        }
        spec
    }

    fn remaining(&self) -> usize {
        self.schedule.len() - self.cursor
    }
}

/// One wave of identical constant-bitrate sessions: the compact form
/// a scenario stores instead of materialized [`SessionSpec`]s.
///
/// `starts` lists each session's arrival in *generation* order (the
/// order the seeded RNG produced them); session `i` gets tag
/// `tag_base + i`. The source interleaves waves by start time.
#[derive(Debug, Clone)]
pub struct SessionGroup {
    /// Server-side ingress router.
    pub src: RouterId,
    /// Client-side destination prefix.
    pub dst: Prefix,
    /// Per-video bitrate (bytes/s).
    pub rate: f64,
    /// Clip length (seconds).
    pub video_secs: f64,
    /// First tag; session `i` of the group is `tag_base + i`.
    pub tag_base: u64,
    /// Arrival instants, in generation order.
    pub starts: Vec<Timestamp>,
}

/// A lazy source over [`SessionGroup`]s: only `(start, group, index)`
/// triples are kept per session; the spec (asset, ladder, player) is
/// built when the session actually launches.
pub struct GroupedSource {
    groups: Vec<SessionGroup>,
    /// (start, group, index-in-group), stably sorted by start — the
    /// same permutation the old eager global sort produced.
    order: Vec<(Timestamp, u32, u32)>,
    cursor: usize,
}

impl GroupedSource {
    /// Build the launch order over the given waves.
    pub fn new(groups: Vec<SessionGroup>) -> GroupedSource {
        let mut order: Vec<(Timestamp, u32, u32)> = Vec::new();
        for (g, group) in groups.iter().enumerate() {
            for (i, t) in group.starts.iter().enumerate() {
                order.push((*t, g as u32, i as u32));
            }
        }
        order.sort_by_key(|(t, _, _)| *t);
        GroupedSource {
            groups,
            order,
            cursor: 0,
        }
    }

    /// Total sessions across all groups.
    pub fn len(&self) -> usize {
        self.order.len()
    }

    /// `true` if no sessions are scheduled at all.
    pub fn is_empty(&self) -> bool {
        self.order.is_empty()
    }
}

impl SessionSource for GroupedSource {
    fn peek_start(&self) -> Option<Timestamp> {
        self.order.get(self.cursor).map(|(t, _, _)| *t)
    }

    fn next_session(&mut self) -> Option<SessionSpec> {
        let (start, g, i) = *self.order.get(self.cursor)?;
        self.cursor += 1;
        let group = &self.groups[g as usize];
        Some(SessionSpec::constant(
            start,
            group.src,
            group.dst,
            group.rate,
            group.video_secs,
            group.tag_base + u64::from(i),
        ))
    }

    fn remaining(&self) -> usize {
        self.order.len() - self.cursor
    }
}

struct Session {
    spec: SessionSpec,
    flow: FlowId,
    player: Player,
    last_delivered: f64,
    last_advanced: Timestamp,
    thr_ewma: f64,
    finished: bool,
}

/// The workload driver.
pub struct VideoWorkload {
    source: Box<dyn SessionSource>,
    active: Vec<Session>,
    tick: Dur,
    reports: QoeHandle,
}

impl VideoWorkload {
    /// Build a driver over an eager session schedule; returns the
    /// driver and the QoE handle to read after the run.
    pub fn new(schedule: Vec<SessionSpec>, tick: Dur) -> (VideoWorkload, QoeHandle) {
        Self::from_source(Box::new(EagerSource::new(schedule)), tick)
    }

    /// Build a driver over any (possibly lazy) session source.
    pub fn from_source(source: Box<dyn SessionSource>, tick: Dur) -> (VideoWorkload, QoeHandle) {
        let handle: QoeHandle = Arc::new(Mutex::new(BTreeMap::new()));
        (
            VideoWorkload {
                source,
                active: Vec::new(),
                tick,
                reports: Arc::clone(&handle),
            },
            handle,
        )
    }

    fn launch_due(&mut self, api: &mut SimContext<'_>) {
        let now = api.now();
        while let Some(start) = self.source.peek_start() {
            if start > now {
                break;
            }
            let spec = self.source.next_session().expect("peeked");
            let bitrate = spec.video.ladder.rate(match &spec.abr {
                AbrPolicy::Constant(l) => *l,
                _ => 0,
            });
            let flow = api.start_flow(
                FlowSpec::new(spec.src, spec.dst)
                    .with_cap(bitrate)
                    .with_tag(spec.tag),
            );
            let player = Player::new(spec.video.clone(), spec.player, now);
            self.active.push(Session {
                spec,
                flow,
                player,
                last_delivered: 0.0,
                last_advanced: now,
                thr_ewma: 0.0,
                finished: false,
            });
        }
    }

    fn advance_sessions(&mut self, api: &mut SimContext<'_>) {
        let now = api.now();
        let now_secs = now.as_secs_f64();
        for s in self.active.iter_mut() {
            if s.finished {
                continue;
            }
            let delivered = api.flow_delivered(s.flow).unwrap_or(s.last_delivered);
            let bytes = (delivered - s.last_delivered).max(0.0);
            s.last_delivered = delivered;
            let dt = (now - s.last_advanced).as_secs_f64();
            s.last_advanced = now;
            if dt > 0.0 {
                s.thr_ewma = 0.5 * (bytes / dt) + 0.5 * s.thr_ewma;
            }
            s.player.advance(now_secs, dt, bytes);

            // ABR decision (no-op for Constant policies).
            let level = s.spec.abr.decide(
                &s.spec.video.ladder,
                AbrInput {
                    buffer_secs: s.player.buffer_secs(),
                    throughput: s.thr_ewma,
                    current_level: s.player.level(),
                },
            );
            if level != s.player.level() {
                s.player.set_level(level);
                api.set_flow_cap(s.flow, Some(s.player.bitrate()));
            }

            // Pause/resume server pacing on buffer bounds.
            if !s.player.wants_download() && s.player.state() != PlayerState::Done {
                api.set_flow_cap(s.flow, Some(1.0)); // effectively paused
            } else if s.player.state() != PlayerState::Done {
                api.set_flow_cap(s.flow, Some(s.player.bitrate()));
            }

            if s.player.state() == PlayerState::Done {
                api.stop_flow(s.flow);
                s.finished = true;
            }
            self.reports.lock().insert(s.spec.tag, s.player.qoe());
        }
        // A finished session's final QoE was just published; drop its
        // player state so memory follows concurrency, not history.
        self.active.retain(|s| !s.finished);
    }

    /// Number of sessions not yet finished.
    pub fn active_count(&self) -> usize {
        self.active.len() + self.source.remaining()
    }
}

impl EventHandler for VideoWorkload {
    fn name(&self) -> &str {
        "video-workload"
    }

    fn tick_interval(&self) -> Option<Dur> {
        Some(self.tick)
    }

    fn on_event(&mut self, ctx: &mut SimContext<'_>, ev: AppEvent<'_>) {
        match ev {
            AppEvent::Start => self.launch_due(ctx),
            AppEvent::Tick => {
                self.launch_due(ctx);
                self.advance_sessions(ctx);
            }
            AppEvent::FlowStarted(_) | AppEvent::FlowStopped(_) => {}
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use fib_igp::types::Metric;
    use fib_netsim::link::LinkSpec;
    use fib_netsim::sim::{Sim, SimConfig};

    fn r(n: u32) -> RouterId {
        RouterId(n)
    }

    /// Line r1 - r2 with prefix at r2.
    fn line(capacity: f64) -> Sim {
        let mut sim = Sim::new(SimConfig::default());
        sim.add_router(r(1));
        sim.add_router(r(2));
        sim.add_link(LinkSpec::new(r(1), r(2), Metric(1), capacity));
        sim.announce_prefix(r(2), Prefix::net24(1));
        sim
    }

    #[test]
    fn single_session_plays_smoothly() {
        let mut sim = line(1e6);
        let spec = SessionSpec::constant(
            Timestamp::from_secs(10),
            r(1),
            Prefix::net24(1),
            125_000.0,
            20.0,
            1,
        );
        let (driver, reports) = VideoWorkload::new(vec![spec], Dur::from_millis(100));
        sim.add_app(Box::new(driver));
        sim.start();
        sim.run_until(Timestamp::from_secs(60));
        let map = reports.lock();
        let q = map.get(&1).expect("report for tag 1");
        assert!(q.completed, "{q:?}");
        assert_eq!(q.stalls, 0);
        assert!(q.score() > 4.0);
    }

    #[test]
    fn oversubscribed_link_causes_stalls() {
        // 10 sessions of 125 kB/s over a 500 kB/s link: starvation.
        let mut sim = line(5e5);
        let specs: Vec<SessionSpec> = (0..10)
            .map(|i| {
                SessionSpec::constant(
                    Timestamp::from_secs(10),
                    r(1),
                    Prefix::net24(1),
                    125_000.0,
                    30.0,
                    i,
                )
            })
            .collect();
        let (driver, reports) = VideoWorkload::new(specs, Dur::from_millis(100));
        sim.add_app(Box::new(driver));
        sim.start();
        sim.run_until(Timestamp::from_secs(80));
        let map = reports.lock();
        let stalled: usize = map.values().filter(|q| q.stalls > 0).count();
        assert!(
            stalled >= 5,
            "expected most sessions to stall, got {stalled}/10"
        );
    }

    #[test]
    fn grouped_source_matches_eager_schedule() {
        // Two interleaved waves; the lazy source must launch the same
        // sessions (start, src, tag) in the same order as the eager
        // equivalent built from materialized specs.
        let g1 = SessionGroup {
            src: r(1),
            dst: Prefix::net24(1),
            rate: 1e5,
            video_secs: 30.0,
            tag_base: 0,
            starts: (0..5).map(|i| Timestamp::from_secs(2 * i)).collect(),
        };
        let g2 = SessionGroup {
            src: r(2),
            dst: Prefix::net24(1),
            rate: 2e5,
            video_secs: 60.0,
            tag_base: 5,
            starts: (0..5).map(|i| Timestamp::from_secs(2 * i + 1)).collect(),
        };
        let eager: Vec<SessionSpec> = g1
            .starts
            .iter()
            .enumerate()
            .map(|(i, t)| SessionSpec::constant(*t, g1.src, g1.dst, g1.rate, 30.0, i as u64))
            .chain(g2.starts.iter().enumerate().map(|(i, t)| {
                SessionSpec::constant(*t, g2.src, g2.dst, g2.rate, 60.0, 5 + i as u64)
            }))
            .collect();
        let mut lazy = GroupedSource::new(vec![g1, g2]);
        let mut reference = EagerSource::new(eager);
        assert_eq!(lazy.len(), 10);
        assert_eq!(lazy.remaining(), reference.remaining());
        while let Some(expect) = reference.next_session() {
            assert_eq!(lazy.peek_start(), Some(expect.start));
            let got = lazy.next_session().unwrap();
            assert_eq!(got.start, expect.start);
            assert_eq!(got.src, expect.src);
            assert_eq!(got.tag, expect.tag);
            assert_eq!(got.video, expect.video);
        }
        assert!(lazy.next_session().is_none());
        assert_eq!(lazy.remaining(), 0);
    }

    #[test]
    fn finished_sessions_are_dropped_from_the_active_set() {
        let mut sim = line(1e6);
        let specs: Vec<SessionSpec> = (0..3)
            .map(|i| {
                SessionSpec::constant(
                    Timestamp::from_secs(5),
                    r(1),
                    Prefix::net24(1),
                    1e5,
                    10.0,
                    i,
                )
            })
            .collect();
        let (driver, reports) = VideoWorkload::new(specs, Dur::from_millis(100));
        let idx = sim.add_app(Box::new(driver));
        let _ = idx;
        sim.start();
        sim.run_until(Timestamp::from_secs(60));
        // All three finished: reports persist, players are gone.
        let map = reports.lock();
        assert_eq!(map.len(), 3);
        assert!(map.values().all(|q| q.completed));
    }

    #[test]
    fn sessions_launch_on_schedule() {
        let mut sim = line(1e6);
        let specs = vec![
            SessionSpec::constant(
                Timestamp::from_secs(5),
                r(1),
                Prefix::net24(1),
                1e5,
                100.0,
                1,
            ),
            SessionSpec::constant(
                Timestamp::from_secs(20),
                r(1),
                Prefix::net24(1),
                1e5,
                100.0,
                2,
            ),
        ];
        let (driver, reports) = VideoWorkload::new(specs, Dur::from_millis(100));
        sim.add_app(Box::new(driver));
        sim.start();
        sim.run_until(Timestamp::from_secs(10));
        assert_eq!(reports.lock().len(), 1, "only the first session yet");
        sim.run_until(Timestamp::from_secs(25));
        assert_eq!(reports.lock().len(), 2);
    }
}
