//! The video workload driver: a netsim [`App`] binding players to
//! flows.
//!
//! Each session is a video server → client pair: a rate-capped flow in
//! the simulator (the server paces at the encoding bitrate, as the
//! demo's streaming servers do) feeding a [`Player`]'s buffer. The
//! driver launches sessions on schedule, advances players from
//! delivered bytes every tick, runs ABR at segment granularity, and
//! publishes live QoE reports through a shared handle the experiment
//! harness reads after the run.

use crate::abr::{AbrInput, AbrPolicy};
use crate::catalog::Video;
use crate::client::{Player, PlayerConfig, PlayerState};
use crate::qoe::QoeReport;
use fib_igp::time::{Dur, Timestamp};
use fib_igp::types::{Prefix, RouterId};
use fib_netsim::api::{App, SimApi};
use fib_netsim::flow::{FlowId, FlowSpec};
use parking_lot::Mutex;
use std::collections::BTreeMap;
use std::sync::Arc;

/// One scheduled viewing session.
#[derive(Debug, Clone)]
pub struct SessionSpec {
    /// When the client presses play.
    pub start: Timestamp,
    /// Server-side ingress router.
    pub src: RouterId,
    /// Client-side destination prefix.
    pub dst: Prefix,
    /// The asset.
    pub video: Video,
    /// ABR policy.
    pub abr: AbrPolicy,
    /// Player tuning.
    pub player: PlayerConfig,
    /// Session tag (unique; keys the QoE report).
    pub tag: u64,
}

impl SessionSpec {
    /// A constant-bitrate session (the demo's shape).
    pub fn constant(
        start: Timestamp,
        src: RouterId,
        dst: Prefix,
        rate: f64,
        secs: f64,
        tag: u64,
    ) -> SessionSpec {
        SessionSpec {
            start,
            src,
            dst,
            video: Video::constant(secs, rate),
            abr: AbrPolicy::Constant(0),
            player: PlayerConfig::default(),
            tag,
        }
    }
}

/// Shared live QoE map: tag → latest report.
pub type QoeHandle = Arc<Mutex<BTreeMap<u64, QoeReport>>>;

struct Session {
    spec: SessionSpec,
    flow: FlowId,
    player: Player,
    last_delivered: f64,
    last_advanced: Timestamp,
    thr_ewma: f64,
    finished: bool,
}

/// The workload driver.
pub struct VideoWorkload {
    pending: Vec<SessionSpec>,
    active: Vec<Session>,
    tick: Dur,
    reports: QoeHandle,
}

impl VideoWorkload {
    /// Build a driver over a session schedule; returns the driver and
    /// the QoE handle to read after the run.
    pub fn new(mut schedule: Vec<SessionSpec>, tick: Dur) -> (VideoWorkload, QoeHandle) {
        // Earliest-first so launching scans a prefix.
        schedule.sort_by_key(|s| s.start);
        let handle: QoeHandle = Arc::new(Mutex::new(BTreeMap::new()));
        (
            VideoWorkload {
                pending: schedule,
                active: Vec::new(),
                tick,
                reports: Arc::clone(&handle),
            },
            handle,
        )
    }

    fn launch_due(&mut self, api: &mut dyn SimApi) {
        let now = api.now();
        while let Some(spec) = self.pending.first() {
            if spec.start > now {
                break;
            }
            let spec = self.pending.remove(0);
            let bitrate = spec.video.ladder.rate(match &spec.abr {
                AbrPolicy::Constant(l) => *l,
                _ => 0,
            });
            let flow = api.start_flow(
                FlowSpec::new(spec.src, spec.dst)
                    .with_cap(bitrate)
                    .with_tag(spec.tag),
            );
            let player = Player::new(spec.video.clone(), spec.player, now);
            self.active.push(Session {
                spec,
                flow,
                player,
                last_delivered: 0.0,
                last_advanced: now,
                thr_ewma: 0.0,
                finished: false,
            });
        }
    }

    fn advance_sessions(&mut self, api: &mut dyn SimApi) {
        let now = api.now();
        let now_secs = now.as_secs_f64();
        for s in self.active.iter_mut() {
            if s.finished {
                continue;
            }
            let delivered = api.flow_delivered(s.flow).unwrap_or(s.last_delivered);
            let bytes = (delivered - s.last_delivered).max(0.0);
            s.last_delivered = delivered;
            let dt = (now - s.last_advanced).as_secs_f64();
            s.last_advanced = now;
            if dt > 0.0 {
                s.thr_ewma = 0.5 * (bytes / dt) + 0.5 * s.thr_ewma;
            }
            s.player.advance(now_secs, dt, bytes);

            // ABR decision (no-op for Constant policies).
            let level = s.spec.abr.decide(
                &s.spec.video.ladder,
                AbrInput {
                    buffer_secs: s.player.buffer_secs(),
                    throughput: s.thr_ewma,
                    current_level: s.player.level(),
                },
            );
            if level != s.player.level() {
                s.player.set_level(level);
                api.set_flow_cap(s.flow, Some(s.player.bitrate()));
            }

            // Pause/resume server pacing on buffer bounds.
            if !s.player.wants_download() && s.player.state() != PlayerState::Done {
                api.set_flow_cap(s.flow, Some(1.0)); // effectively paused
            } else if s.player.state() != PlayerState::Done {
                api.set_flow_cap(s.flow, Some(s.player.bitrate()));
            }

            if s.player.state() == PlayerState::Done {
                api.stop_flow(s.flow);
                s.finished = true;
            }
            self.reports.lock().insert(s.spec.tag, s.player.qoe());
        }
        // Finished sessions stay in `active` so their QoE reports keep
        // being published; `active_count` filters them out.
    }

    /// Number of sessions not yet finished.
    pub fn active_count(&self) -> usize {
        self.active.iter().filter(|s| !s.finished).count() + self.pending.len()
    }
}

impl App for VideoWorkload {
    fn name(&self) -> &str {
        "video-workload"
    }

    fn tick_interval(&self) -> Option<Dur> {
        Some(self.tick)
    }

    fn on_start(&mut self, api: &mut dyn SimApi) {
        self.launch_due(api);
    }

    fn on_tick(&mut self, api: &mut dyn SimApi) {
        self.launch_due(api);
        self.advance_sessions(api);
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use fib_igp::types::Metric;
    use fib_netsim::link::LinkSpec;
    use fib_netsim::sim::{Sim, SimConfig};

    fn r(n: u32) -> RouterId {
        RouterId(n)
    }

    /// Line r1 - r2 with prefix at r2.
    fn line(capacity: f64) -> Sim {
        let mut sim = Sim::new(SimConfig::default());
        sim.add_router(r(1));
        sim.add_router(r(2));
        sim.add_link(LinkSpec::new(r(1), r(2), Metric(1), capacity));
        sim.announce_prefix(r(2), Prefix::net24(1));
        sim
    }

    #[test]
    fn single_session_plays_smoothly() {
        let mut sim = line(1e6);
        let spec = SessionSpec::constant(
            Timestamp::from_secs(10),
            r(1),
            Prefix::net24(1),
            125_000.0,
            20.0,
            1,
        );
        let (driver, reports) = VideoWorkload::new(vec![spec], Dur::from_millis(100));
        sim.add_app(Box::new(driver));
        sim.start();
        sim.run_until(Timestamp::from_secs(60));
        let map = reports.lock();
        let q = map.get(&1).expect("report for tag 1");
        assert!(q.completed, "{q:?}");
        assert_eq!(q.stalls, 0);
        assert!(q.score() > 4.0);
    }

    #[test]
    fn oversubscribed_link_causes_stalls() {
        // 10 sessions of 125 kB/s over a 500 kB/s link: starvation.
        let mut sim = line(5e5);
        let specs: Vec<SessionSpec> = (0..10)
            .map(|i| {
                SessionSpec::constant(
                    Timestamp::from_secs(10),
                    r(1),
                    Prefix::net24(1),
                    125_000.0,
                    30.0,
                    i,
                )
            })
            .collect();
        let (driver, reports) = VideoWorkload::new(specs, Dur::from_millis(100));
        sim.add_app(Box::new(driver));
        sim.start();
        sim.run_until(Timestamp::from_secs(80));
        let map = reports.lock();
        let stalled: usize = map.values().filter(|q| q.stalls > 0).count();
        assert!(
            stalled >= 5,
            "expected most sessions to stall, got {stalled}/10"
        );
    }

    #[test]
    fn sessions_launch_on_schedule() {
        let mut sim = line(1e6);
        let specs = vec![
            SessionSpec::constant(
                Timestamp::from_secs(5),
                r(1),
                Prefix::net24(1),
                1e5,
                100.0,
                1,
            ),
            SessionSpec::constant(
                Timestamp::from_secs(20),
                r(1),
                Prefix::net24(1),
                1e5,
                100.0,
                2,
            ),
        ];
        let (driver, reports) = VideoWorkload::new(specs, Dur::from_millis(100));
        sim.add_app(Box::new(driver));
        sim.start();
        sim.run_until(Timestamp::from_secs(10));
        assert_eq!(reports.lock().len(), 1, "only the first session yet");
        sim.run_until(Timestamp::from_secs(25));
        assert_eq!(reports.lock().len(), 2);
    }
}
