//! Quality-of-experience accounting.

use std::fmt;

/// Per-session QoE report.
#[derive(Debug, Clone, PartialEq)]
pub struct QoeReport {
    /// Seconds from session start to first rendered frame (infinite
    /// if playback never started).
    pub startup_delay: f64,
    /// Number of mid-playback stalls.
    pub stalls: u32,
    /// Total stalled seconds.
    pub stall_secs: f64,
    /// Time-weighted mean bitrate of rendered content (bytes/s).
    pub mean_bitrate: f64,
    /// Top ladder bitrate (bytes/s), for normalization.
    pub max_bitrate: f64,
    /// ABR level switches.
    pub switches: u32,
    /// Seconds of content rendered.
    pub played_secs: f64,
    /// Clip duration.
    pub duration: f64,
    /// Whether the clip finished.
    pub completed: bool,
}

impl QoeReport {
    /// Fraction of wall time spent stalled relative to content played.
    pub fn stall_ratio(&self) -> f64 {
        if self.played_secs <= 0.0 {
            return if self.stall_secs > 0.0 { 1.0 } else { 0.0 };
        }
        self.stall_secs / (self.played_secs + self.stall_secs)
    }

    /// `true` if the viewer saw smooth playback: started promptly,
    /// never stalled, finished the clip.
    pub fn smooth(&self) -> bool {
        self.completed && self.stalls == 0 && self.startup_delay.is_finite()
    }

    /// A 1–5 MOS-like score: bitrate utility minus stall and switch
    /// penalties (simple ITU-P.1203-inspired shape, documented rather
    /// than standardized).
    pub fn score(&self) -> f64 {
        if !self.startup_delay.is_finite() || self.played_secs <= 0.0 {
            return 1.0;
        }
        let bitrate_utility = (self.mean_bitrate / self.max_bitrate).clamp(0.0, 1.0);
        let base = 1.0 + 4.0 * bitrate_utility;
        let stall_penalty = 4.0 * self.stall_ratio() + 0.5 * f64::from(self.stalls.min(4));
        let switch_penalty = 0.05 * f64::from(self.switches.min(20));
        let startup_penalty = (self.startup_delay / 10.0).min(0.5);
        (base - stall_penalty - switch_penalty - startup_penalty).clamp(1.0, 5.0)
    }
}

impl fmt::Display for QoeReport {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "qoe: start {:.2}s, {} stalls ({:.2}s), mean {:.0} B/s, score {:.2}{}",
            self.startup_delay,
            self.stalls,
            self.stall_secs,
            self.mean_bitrate,
            self.score(),
            if self.smooth() { " [smooth]" } else { "" }
        )
    }
}

/// Aggregate over many sessions.
#[derive(Debug, Clone, Default, PartialEq)]
pub struct QoeSummary {
    /// Sessions aggregated.
    pub sessions: usize,
    /// Sessions with smooth playback.
    pub smooth: usize,
    /// Total stalls.
    pub stalls: u32,
    /// Total stalled seconds.
    pub stall_secs: f64,
    /// Mean of per-session scores.
    pub mean_score: f64,
    /// Mean startup delay over sessions that started.
    pub mean_startup: f64,
}

/// Summarize reports.
pub fn summarize(reports: &[QoeReport]) -> QoeSummary {
    if reports.is_empty() {
        return QoeSummary::default();
    }
    let started: Vec<&QoeReport> = reports
        .iter()
        .filter(|r| r.startup_delay.is_finite())
        .collect();
    QoeSummary {
        sessions: reports.len(),
        smooth: reports.iter().filter(|r| r.smooth()).count(),
        stalls: reports.iter().map(|r| r.stalls).sum(),
        stall_secs: reports.iter().map(|r| r.stall_secs).sum(),
        mean_score: reports.iter().map(|r| r.score()).sum::<f64>() / reports.len() as f64,
        mean_startup: if started.is_empty() {
            f64::INFINITY
        } else {
            started.iter().map(|r| r.startup_delay).sum::<f64>() / started.len() as f64
        },
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn smooth_report() -> QoeReport {
        QoeReport {
            startup_delay: 0.5,
            stalls: 0,
            stall_secs: 0.0,
            mean_bitrate: 125_000.0,
            max_bitrate: 125_000.0,
            switches: 0,
            played_secs: 60.0,
            duration: 60.0,
            completed: true,
        }
    }

    #[test]
    fn smooth_playback_scores_high() {
        let r = smooth_report();
        assert!(r.smooth());
        assert!(r.score() > 4.5, "score {}", r.score());
        assert_eq!(r.stall_ratio(), 0.0);
        assert!(r.to_string().contains("[smooth]"));
    }

    #[test]
    fn stalls_tank_the_score() {
        let mut r = smooth_report();
        r.stalls = 5;
        r.stall_secs = 20.0;
        r.completed = false;
        assert!(!r.smooth());
        assert!(r.score() < 3.0, "score {}", r.score());
        assert!(r.stall_ratio() > 0.2);
    }

    #[test]
    fn never_started_scores_one() {
        let mut r = smooth_report();
        r.startup_delay = f64::INFINITY;
        r.played_secs = 0.0;
        assert_eq!(r.score(), 1.0);
    }

    #[test]
    fn summary_aggregates() {
        let mut bad = smooth_report();
        bad.stalls = 3;
        bad.stall_secs = 10.0;
        let s = summarize(&[smooth_report(), bad]);
        assert_eq!(s.sessions, 2);
        assert_eq!(s.smooth, 1);
        assert_eq!(s.stalls, 3);
        assert!((s.mean_startup - 0.5).abs() < 1e-9);
        assert!(s.mean_score > 1.0 && s.mean_score < 5.0);
    }

    #[test]
    fn empty_summary_is_default() {
        assert_eq!(summarize(&[]), QoeSummary::default());
    }
}
