//! Error types for the IGP substrate.

use crate::types::{Prefix, RouterId};
use std::fmt;

/// Errors produced while manipulating topologies.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum TopologyError {
    /// The referenced router does not exist.
    UnknownRouter(RouterId),
    /// A link references a missing endpoint.
    UnknownEndpoint {
        /// Near end of the link.
        from: RouterId,
        /// Far end of the link.
        to: RouterId,
    },
    /// Attempt to add a duplicate directed link.
    DuplicateLink {
        /// Near end of the link.
        from: RouterId,
        /// Far end of the link.
        to: RouterId,
    },
    /// A fake node was given an attachment or forwarding address that is
    /// not a neighbor of the attachment router.
    InvalidForwardingAddress {
        /// The fake node.
        fake: RouterId,
        /// The attachment router.
        attach: RouterId,
    },
    /// A real-node operation was attempted on a fake node or vice versa.
    KindMismatch(RouterId),
}

impl fmt::Display for TopologyError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            TopologyError::UnknownRouter(r) => write!(f, "unknown router {r}"),
            TopologyError::UnknownEndpoint { from, to } => {
                write!(f, "link {from}->{to} references a missing endpoint")
            }
            TopologyError::DuplicateLink { from, to } => {
                write!(f, "duplicate link {from}->{to}")
            }
            TopologyError::InvalidForwardingAddress { fake, attach } => write!(
                f,
                "fake node {fake}: forwarding address is not a neighbor of {attach}"
            ),
            TopologyError::KindMismatch(r) => {
                write!(f, "operation does not apply to node {r} of this kind")
            }
        }
    }
}

impl std::error::Error for TopologyError {}

/// Errors produced by the wire codec.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum WireError {
    /// The buffer ended before the structure was complete.
    Truncated {
        /// Bytes required.
        need: usize,
        /// Bytes available.
        have: usize,
    },
    /// Unsupported protocol version.
    BadVersion(u8),
    /// Unknown packet type byte.
    BadPacketType(u8),
    /// Unknown LSA kind byte.
    BadLsaKind(u8),
    /// The packet checksum did not verify.
    BadChecksum {
        /// Computed checksum.
        expect: u16,
        /// Checksum carried by the packet.
        got: u16,
    },
    /// The LSA body checksum did not verify.
    BadLsaChecksum {
        /// Computed checksum.
        expect: u16,
        /// Checksum carried by the LSA.
        got: u16,
    },
    /// A declared length field is inconsistent with the buffer.
    BadLength {
        /// Length the header declared.
        declared: usize,
        /// Length actually present.
        actual: usize,
    },
    /// A prefix length field exceeded 32.
    BadPrefixLen(u8),
}

impl fmt::Display for WireError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            WireError::Truncated { need, have } => {
                write!(f, "truncated packet: need {need} bytes, have {have}")
            }
            WireError::BadVersion(v) => write!(f, "unsupported protocol version {v}"),
            WireError::BadPacketType(t) => write!(f, "unknown packet type {t:#x}"),
            WireError::BadLsaKind(k) => write!(f, "unknown LSA kind {k:#x}"),
            WireError::BadChecksum { expect, got } => {
                write!(
                    f,
                    "packet checksum mismatch: expected {expect:#06x}, got {got:#06x}"
                )
            }
            WireError::BadLsaChecksum { expect, got } => {
                write!(
                    f,
                    "LSA checksum mismatch: expected {expect:#06x}, got {got:#06x}"
                )
            }
            WireError::BadLength { declared, actual } => {
                write!(f, "bad length field: declared {declared}, actual {actual}")
            }
            WireError::BadPrefixLen(l) => write!(f, "prefix length {l} exceeds 32"),
        }
    }
}

impl std::error::Error for WireError {}

/// Errors produced by a protocol instance.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum InstanceError {
    /// The referenced interface does not exist on this instance.
    UnknownIface(u16),
    /// A packet failed to decode.
    Wire(WireError),
    /// An LSA purge was requested for an LSA this instance does not
    /// originate.
    NotOriginator {
        /// Claimed originator.
        origin: RouterId,
    },
    /// A fake LSA injection referenced a prefix the instance cannot
    /// validate.
    BadInjection {
        /// Target prefix of the lie.
        prefix: Prefix,
        /// Human-readable cause.
        reason: &'static str,
    },
}

impl fmt::Display for InstanceError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            InstanceError::UnknownIface(i) => write!(f, "unknown interface {i}"),
            InstanceError::Wire(e) => write!(f, "wire error: {e}"),
            InstanceError::NotOriginator { origin } => {
                write!(f, "not the originator of LSAs from {origin}")
            }
            InstanceError::BadInjection { prefix, reason } => {
                write!(f, "bad injection for {prefix}: {reason}")
            }
        }
    }
}

impl std::error::Error for InstanceError {
    fn source(&self) -> Option<&(dyn std::error::Error + 'static)> {
        match self {
            InstanceError::Wire(e) => Some(e),
            _ => None,
        }
    }
}

impl From<WireError> for InstanceError {
    fn from(e: WireError) -> Self {
        InstanceError::Wire(e)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn errors_display_and_chain() {
        let w = WireError::Truncated { need: 8, have: 3 };
        let i = InstanceError::from(w.clone());
        assert!(format!("{i}").contains("need 8"));
        let src = std::error::Error::source(&i).expect("source");
        assert_eq!(format!("{src}"), format!("{w}"));
    }
}
