//! A sans-IO link-state protocol speaker.
//!
//! [`Instance`] is one router's (or the Fibbing controller's) protocol
//! engine. It owns the interfaces, neighbor state machines, LSDB,
//! flooding/retransmission machinery, self-origination, and SPF
//! scheduling — but performs no IO and reads no clock. A harness (the
//! network simulator, or [`crate::harness`] in tests) drives it:
//!
//! * deliver received datagrams with [`Instance::handle_packet`],
//! * fire due timers with [`Instance::poll_timers`] (next deadline via
//!   [`Instance::next_timer`]),
//! * collect emissions (packets to send, FIB downloads, adjacency
//!   events) with [`Instance::drain_output`].
//!
//! The Fibbing controller is *just another speaker*: it forms an
//! adjacency with one real router and floods fake LSAs through the
//! ordinary machinery via [`Instance::inject_fake`] /
//! [`Instance::retract_fake`] — exactly how the original system
//! piggybacks on OSPF.

use crate::error::InstanceError;
use crate::lsa::{Freshness, Lsa, LsaHeader, LsaKey, LsaKind, LsaLink, MAX_AGE};
use crate::lsdb::{Install, Lsdb};
use crate::rib::RouteTable;
use crate::spf::SpfEngine;
use crate::time::{Dur, Timestamp};
use crate::types::{FwAddr, IfaceId, Metric, Prefix, RouterId, SeqNum};
use crate::wire::{self, Dbd, Hello, LsAck, LsRequest, LsUpdate, Packet};
use bytes::Bytes;
use std::collections::{BTreeMap, VecDeque};

/// Maximum LSA headers per DBD packet.
const MAX_DBD_HEADERS: usize = 64;
/// Maximum keys per LS request packet.
const MAX_REQ_KEYS: usize = 64;
/// Maximum LSAs per flooded LS update packet.
const MAX_UPD_LSAS: usize = 16;

/// Static configuration of an instance.
#[derive(Debug, Clone)]
pub struct Config {
    /// This speaker's router id.
    pub router_id: RouterId,
    /// Hello emission period.
    pub hello_interval: Dur,
    /// Silence after which a neighbor is declared dead.
    pub dead_interval: Dur,
    /// Retransmission period for unacked LSAs and DBDs.
    pub rxmt_interval: Dur,
    /// Delay between an LSDB change and the SPF run (batching).
    pub spf_delay: Dur,
    /// If `false`, the instance computes no routes (controller mode —
    /// the Fibbing controller participates in flooding but needs no
    /// FIB).
    pub compute_routes: bool,
}

impl Config {
    /// Defaults mirroring fast modern IGP timers: hello 1 s, dead 4 s,
    /// retransmit 1 s, SPF delay 50 ms.
    pub fn new(router_id: RouterId) -> Config {
        Config {
            router_id,
            hello_interval: Dur::from_secs(1),
            dead_interval: Dur::from_secs(4),
            rxmt_interval: Dur::from_secs(1),
            spf_delay: Dur::from_millis(50),
            compute_routes: true,
        }
    }
}

/// Adjacency state (condensed OSPF neighbor FSM for p2p links).
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord)]
pub enum NbrState {
    /// Nothing heard recently.
    Down,
    /// Heard the neighbor, not yet seen ourselves in its hellos.
    Init,
    /// Bidirectional; negotiating exchange roles.
    ExStart,
    /// Database description exchange in progress.
    Exchange,
    /// Requesting LSAs the neighbor had fresher.
    Loading,
    /// Fully adjacent: flooding enabled, link advertised.
    Full,
}

/// Events and data an instance emits for its harness.
#[derive(Debug, Clone)]
pub enum Output {
    /// Transmit a datagram on an interface.
    Send {
        /// Egress interface.
        iface: IfaceId,
        /// Encoded packet.
        data: Bytes,
    },
    /// Download a freshly computed route table into the FIB.
    FibUpdate(RouteTable),
    /// An adjacency changed state (up = reached Full / down = lost).
    NeighborChange {
        /// Interface of the adjacency.
        iface: IfaceId,
        /// Neighbor router id.
        neighbor: RouterId,
        /// `true` when the adjacency reached Full.
        up: bool,
    },
}

#[derive(Debug)]
struct NeighborSm {
    state: NbrState,
    id: RouterId,
    last_heard: Timestamp,
    /// `true` once we have appeared in the neighbor's hello `seen` list.
    two_way: bool,
    // --- database exchange ---
    master: bool,
    dd_seq: u32,
    snapshot: Vec<LsaHeader>,
    next_chunk: usize,
    peer_done: bool,
    self_done: bool,
    last_dbd: Option<Bytes>,
    last_dbd_at: Timestamp,
    // --- loading ---
    req_list: Vec<LsaKey>,
    last_req_at: Timestamp,
    // --- flooding ---
    rxmt: BTreeMap<LsaKey, Lsa>,
    last_rxmt_at: Timestamp,
}

impl NeighborSm {
    fn new(id: RouterId, now: Timestamp) -> NeighborSm {
        NeighborSm {
            state: NbrState::Init,
            id,
            last_heard: now,
            two_way: false,
            master: false,
            dd_seq: 0,
            snapshot: Vec::new(),
            next_chunk: 0,
            peer_done: false,
            self_done: false,
            last_dbd: None,
            last_dbd_at: Timestamp::ZERO,
            req_list: Vec::new(),
            last_req_at: Timestamp::ZERO,
            rxmt: BTreeMap::new(),
            last_rxmt_at: Timestamp::ZERO,
        }
    }
}

#[derive(Debug)]
struct Iface {
    id: IfaceId,
    cost: Metric,
    enabled: bool,
    neighbor: Option<NeighborSm>,
}

/// Counters exposed for benchmarks and the overhead tables.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct Stats {
    /// Packets sent, by any type.
    pub pkts_sent: u64,
    /// Packets received and accepted.
    pub pkts_recv: u64,
    /// Bytes sent.
    pub bytes_sent: u64,
    /// LSAs this instance originated or re-originated.
    pub lsas_originated: u64,
    /// LSA instances flooded onward (per neighbor enqueue).
    pub lsas_flooded: u64,
    /// SPF route computations performed.
    pub spf_runs: u64,
    /// Packets dropped due to decode errors.
    pub decode_errors: u64,
}

/// A sans-IO protocol instance. See module docs.
pub struct Instance {
    cfg: Config,
    ifaces: BTreeMap<IfaceId, Iface>,
    lsdb: Lsdb,
    originated: BTreeMap<LsaKey, SeqNum>,
    announced: BTreeMap<Prefix, (u32, Metric)>,
    next_prefix_id: u32,
    spf: SpfEngine,
    spf_at: Option<Timestamp>,
    last_spf_version: Option<crate::lsdb::DbVersion>,
    last_table: Option<RouteTable>,
    next_hello: Timestamp,
    dd_seq_counter: u32,
    out: VecDeque<Output>,
    started: bool,
    /// Observable counters.
    pub stats: Stats,
}

impl std::fmt::Debug for Instance {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("Instance")
            .field("router_id", &self.cfg.router_id)
            .field("ifaces", &self.ifaces.len())
            .field("lsdb_len", &self.lsdb.len())
            .finish_non_exhaustive()
    }
}

impl Instance {
    /// Create a stopped instance. Add interfaces and announcements,
    /// then call [`Instance::start`].
    pub fn new(cfg: Config) -> Instance {
        Instance {
            cfg,
            ifaces: BTreeMap::new(),
            lsdb: Lsdb::new(),
            originated: BTreeMap::new(),
            announced: BTreeMap::new(),
            next_prefix_id: 0,
            spf: SpfEngine::new(),
            spf_at: None,
            last_spf_version: None,
            last_table: None,
            next_hello: Timestamp::ZERO,
            dd_seq_counter: 1,
            out: VecDeque::new(),
            started: false,
            stats: Stats::default(),
        }
    }

    /// This speaker's router id.
    pub fn router_id(&self) -> RouterId {
        self.cfg.router_id
    }

    /// Immutable view of the LSDB.
    pub fn lsdb(&self) -> &Lsdb {
        &self.lsdb
    }

    /// The most recently computed route table, if any.
    pub fn route_table(&self) -> Option<&RouteTable> {
        self.last_table.as_ref()
    }

    /// SPF engine ablation counters: `(full Dijkstra runs, partial
    /// route-phase-only runs)`. Lie-only (type-5-style) churn must
    /// land in the second bucket — the simulator aggregates these so
    /// scenarios can assert it.
    pub fn spf_run_counts(&self) -> (u64, u64) {
        (self.spf.full_runs, self.spf.partial_runs)
    }

    /// Add a point-to-point interface with the given cost.
    pub fn add_iface(&mut self, id: IfaceId, cost: Metric) {
        self.ifaces.insert(
            id,
            Iface {
                id,
                cost,
                enabled: true,
                neighbor: None,
            },
        );
    }

    /// Change an interface cost; triggers re-origination if adjacent.
    pub fn set_iface_cost(&mut self, id: IfaceId, cost: Metric) -> Result<(), InstanceError> {
        let iface = self
            .ifaces
            .get_mut(&id)
            .ok_or(InstanceError::UnknownIface(id.0))?;
        iface.cost = cost;
        if self.started {
            self.originate_router_lsa();
        }
        Ok(())
    }

    /// Administratively enable/disable an interface. Disabling kills
    /// the adjacency immediately.
    pub fn set_iface_enabled(
        &mut self,
        id: IfaceId,
        enabled: bool,
        now: Timestamp,
    ) -> Result<(), InstanceError> {
        let iface = self
            .ifaces
            .get_mut(&id)
            .ok_or(InstanceError::UnknownIface(id.0))?;
        if iface.enabled == enabled {
            return Ok(());
        }
        iface.enabled = enabled;
        if !enabled {
            if let Some(n) = iface.neighbor.take() {
                if n.state == NbrState::Full {
                    self.out.push_back(Output::NeighborChange {
                        iface: id,
                        neighbor: n.id,
                        up: false,
                    });
                    self.originate_router_lsa();
                }
            }
        }
        let _ = now;
        Ok(())
    }

    /// Neighbor state on an interface (Down if none).
    pub fn neighbor_state(&self, id: IfaceId) -> NbrState {
        self.ifaces
            .get(&id)
            .and_then(|i| i.neighbor.as_ref())
            .map(|n| n.state)
            .unwrap_or(NbrState::Down)
    }

    /// Ids of fully adjacent neighbors.
    pub fn full_neighbors(&self) -> Vec<RouterId> {
        self.ifaces
            .values()
            .filter_map(|i| i.neighbor.as_ref())
            .filter(|n| n.state == NbrState::Full)
            .map(|n| n.id)
            .collect()
    }

    /// Announce a prefix at the given metric (originates a prefix LSA
    /// once started).
    pub fn announce(&mut self, prefix: Prefix, metric: Metric) {
        let id = match self.announced.get(&prefix) {
            Some((id, _)) => *id,
            None => {
                let id = self.next_prefix_id;
                self.next_prefix_id += 1;
                id
            }
        };
        self.announced.insert(prefix, (id, metric));
        if self.started {
            self.originate_prefix_lsa(prefix);
        }
    }

    /// Withdraw a prefix announcement (purges the LSA network-wide).
    pub fn withdraw(&mut self, prefix: Prefix) {
        if let Some((id, _)) = self.announced.remove(&prefix) {
            let key = LsaKey {
                origin: self.cfg.router_id,
                kind: LsaKind::Prefix,
                id,
            };
            self.purge_own(key);
        }
    }

    /// Inject a Fibbing lie: a fake node `fake_id` attached to `attach`
    /// announcing `prefix`, resolving to forwarding address `fw`.
    ///
    /// The LSA floods through normal machinery; re-injecting the same
    /// `fake_id` replaces the lie (fresher sequence number).
    pub fn inject_fake(
        &mut self,
        fake_id: RouterId,
        attach: RouterId,
        attach_metric: Metric,
        prefix: Prefix,
        prefix_metric: Metric,
        fw: FwAddr,
    ) -> Result<(), InstanceError> {
        if !fake_id.is_fake() {
            return Err(InstanceError::BadInjection {
                prefix,
                reason: "fake node id must be in the fake range",
            });
        }
        let key = LsaKey {
            origin: fake_id,
            kind: LsaKind::Fake,
            id: 0,
        };
        let seq = self.next_seq(key);
        let lsa = Lsa::fake(
            fake_id,
            seq,
            attach,
            attach_metric,
            prefix,
            prefix_metric,
            fw,
        );
        self.originate(lsa);
        Ok(())
    }

    /// Retract a previously injected lie (floods a MaxAge purge).
    pub fn retract_fake(&mut self, fake_id: RouterId) -> Result<(), InstanceError> {
        let key = LsaKey {
            origin: fake_id,
            kind: LsaKind::Fake,
            id: 0,
        };
        if !self.originated.contains_key(&key) {
            return Err(InstanceError::NotOriginator { origin: fake_id });
        }
        self.purge_own(key);
        Ok(())
    }

    /// Start the instance: originate own LSAs, arm the hello timer.
    pub fn start(&mut self, now: Timestamp) {
        self.started = true;
        self.next_hello = now; // fire immediately on first poll
        self.originate_router_lsa();
        let prefixes: Vec<Prefix> = self.announced.keys().copied().collect();
        for p in prefixes {
            self.originate_prefix_lsa(p);
        }
        self.schedule_spf(now);
    }

    /// Earliest pending deadline, if any.
    pub fn next_timer(&self) -> Option<Timestamp> {
        if !self.started {
            return None;
        }
        let mut t = self.next_hello;
        if let Some(s) = self.spf_at {
            t = t.min(s);
        }
        for iface in self.ifaces.values() {
            let Some(n) = iface.neighbor.as_ref() else {
                continue;
            };
            // Dead timer.
            t = t.min(n.last_heard + self.cfg.dead_interval);
            // DBD retransmit (master only, mid-exchange).
            if n.last_dbd.is_some() && matches!(n.state, NbrState::ExStart | NbrState::Exchange) {
                t = t.min(n.last_dbd_at + self.cfg.rxmt_interval);
            }
            // Request retransmit.
            if n.state == NbrState::Loading && !n.req_list.is_empty() {
                t = t.min(n.last_req_at + self.cfg.rxmt_interval);
            }
            // LSA retransmit.
            if !n.rxmt.is_empty() {
                t = t.min(n.last_rxmt_at + self.cfg.rxmt_interval);
            }
        }
        Some(t)
    }

    /// Fire every timer due at `now`.
    pub fn poll_timers(&mut self, now: Timestamp) {
        if !self.started {
            return;
        }
        // Hellos.
        if now >= self.next_hello {
            self.send_hellos(now);
            self.next_hello = now + self.cfg.hello_interval;
        }
        // SPF.
        if let Some(at) = self.spf_at {
            if now >= at {
                self.spf_at = None;
                self.run_spf();
            }
        }
        // Per-neighbor timers.
        let iface_ids: Vec<IfaceId> = self.ifaces.keys().copied().collect();
        for id in iface_ids {
            self.poll_neighbor_timers(id, now);
        }
        // Opportunistic MaxAge sweep: purge LSAs no longer awaiting acks.
        self.try_sweep();
    }

    fn poll_neighbor_timers(&mut self, id: IfaceId, now: Timestamp) {
        let Some(iface) = self.ifaces.get_mut(&id) else {
            return;
        };
        if !iface.enabled {
            return;
        }
        let Some(n) = iface.neighbor.as_mut() else {
            return;
        };
        // Dead timer.
        if now >= n.last_heard + self.cfg.dead_interval {
            let was_full = n.state == NbrState::Full;
            let nid = n.id;
            iface.neighbor = None;
            if was_full {
                self.out.push_back(Output::NeighborChange {
                    iface: id,
                    neighbor: nid,
                    up: false,
                });
                self.originate_router_lsa();
            }
            return;
        }
        // DBD retransmit.
        if matches!(n.state, NbrState::ExStart | NbrState::Exchange) {
            if let Some(data) = n.last_dbd.clone() {
                if now >= n.last_dbd_at + self.cfg.rxmt_interval {
                    n.last_dbd_at = now;
                    self.push_send(id, data);
                }
            }
        }
        // Request retransmit.
        if self.ifaces[&id]
            .neighbor
            .as_ref()
            .map(|n| n.state == NbrState::Loading && !n.req_list.is_empty())
            .unwrap_or(false)
        {
            let n = self.ifaces.get_mut(&id).unwrap().neighbor.as_mut().unwrap();
            if now >= n.last_req_at + self.cfg.rxmt_interval {
                n.last_req_at = now;
                let keys: Vec<LsaKey> = n.req_list.iter().take(MAX_REQ_KEYS).copied().collect();
                self.send_packet(id, Packet::LsRequest(LsRequest { keys }));
            }
        }
        // LSA retransmit.
        if self.ifaces[&id]
            .neighbor
            .as_ref()
            .map(|n| !n.rxmt.is_empty())
            .unwrap_or(false)
        {
            let n = self.ifaces.get_mut(&id).unwrap().neighbor.as_mut().unwrap();
            if now >= n.last_rxmt_at + self.cfg.rxmt_interval {
                n.last_rxmt_at = now;
                let lsas: Vec<Lsa> = n.rxmt.values().take(MAX_UPD_LSAS).cloned().collect();
                self.send_packet(id, Packet::LsUpdate(LsUpdate { lsas }));
            }
        }
    }

    /// Handle a datagram received on `iface`.
    pub fn handle_packet(
        &mut self,
        iface: IfaceId,
        data: Bytes,
        now: Timestamp,
    ) -> Result<(), InstanceError> {
        if !self.ifaces.contains_key(&iface) {
            return Err(InstanceError::UnknownIface(iface.0));
        }
        if !self.ifaces[&iface].enabled {
            return Ok(()); // silently dropped, interface is down
        }
        let (sender, packet) = match wire::decode(data) {
            Ok(x) => x,
            Err(e) => {
                self.stats.decode_errors += 1;
                return Err(e.into());
            }
        };
        self.stats.pkts_recv += 1;
        match packet {
            Packet::Hello(h) => self.on_hello(iface, sender, h, now),
            Packet::Dbd(d) => self.on_dbd(iface, sender, d, now),
            Packet::LsRequest(r) => self.on_request(iface, sender, r),
            Packet::LsUpdate(u) => self.on_update(iface, sender, u, now),
            Packet::LsAck(a) => self.on_ack(iface, sender, a),
        }
        Ok(())
    }

    /// Drain all pending outputs.
    pub fn drain_output(&mut self) -> Vec<Output> {
        self.out.drain(..).collect()
    }

    // ------------------------------------------------------------------
    // Packet handlers
    // ------------------------------------------------------------------

    fn on_hello(&mut self, iface_id: IfaceId, sender: RouterId, h: Hello, now: Timestamp) {
        let my_id = self.cfg.router_id;
        let iface = self.ifaces.get_mut(&iface_id).expect("checked");
        let n = iface
            .neighbor
            .get_or_insert_with(|| NeighborSm::new(sender, now));
        if n.id != sender {
            // Different router appeared on the p2p link: reset.
            *n = NeighborSm::new(sender, now);
        }
        n.last_heard = now;
        let sees_us = h.seen.contains(&my_id);
        if sees_us {
            n.two_way = true;
        }
        if n.state == NbrState::Init && n.two_way {
            // Bidirectional: begin database exchange.
            n.state = NbrState::ExStart;
            n.master = my_id > sender;
            n.dd_seq = self.dd_seq_counter;
            self.dd_seq_counter += 1;
            // The database summary snapshot is NOT taken here: LSAs
            // can still arrive during negotiation and would be neither
            // in the snapshot nor flooded (flooding requires state >=
            // Exchange). It is taken at the Exchange transition, as in
            // RFC 2328.
            n.snapshot.clear();
            n.next_chunk = 0;
            n.peer_done = false;
            n.self_done = false;
            if n.master {
                let pkt = Packet::Dbd(Dbd {
                    init: true,
                    more: true,
                    master: true,
                    dd_seq: n.dd_seq,
                    headers: vec![],
                });
                let data = wire::encode(&pkt, my_id);
                n.last_dbd = Some(data.clone());
                n.last_dbd_at = now;
                self.push_send(iface_id, data);
            }
        } else if n.state != NbrState::Init && !sees_us {
            // Neighbor restarted and forgot us: fall back to Init.
            let was_full = n.state == NbrState::Full;
            let nid = n.id;
            *n = NeighborSm::new(sender, now);
            if was_full {
                self.out.push_back(Output::NeighborChange {
                    iface: iface_id,
                    neighbor: nid,
                    up: false,
                });
                self.originate_router_lsa();
            }
        }
    }

    fn chunk(snapshot: &[LsaHeader], idx: usize) -> (Vec<LsaHeader>, bool) {
        let start = idx * MAX_DBD_HEADERS;
        if start >= snapshot.len() {
            return (Vec::new(), false);
        }
        let end = (start + MAX_DBD_HEADERS).min(snapshot.len());
        let more = end < snapshot.len();
        (snapshot[start..end].to_vec(), more)
    }

    fn on_dbd(&mut self, iface_id: IfaceId, sender: RouterId, d: Dbd, now: Timestamp) {
        let my_id = self.cfg.router_id;
        // Plan inside a scoped borrow of the neighbor; act afterwards.
        enum Act {
            None,
            Send(Bytes),
            SendAndMaybeFinish(Bytes, bool),
            MasterReply,
        }
        let act = {
            let Some(n) = self
                .ifaces
                .get_mut(&iface_id)
                .and_then(|i| i.neighbor.as_mut())
            else {
                return;
            };
            if n.id != sender {
                return;
            }
            n.last_heard = now;
            match n.state {
                NbrState::ExStart => {
                    if d.init && d.master && sender > my_id {
                        // Peer is master; adopt its sequence and respond
                        // with our first chunk. The summary snapshot is
                        // taken now: anything installed later floods to
                        // this neighbor directly (state >= Exchange).
                        n.master = false;
                        n.dd_seq = d.dd_seq;
                        n.state = NbrState::Exchange;
                        n.snapshot = self.lsdb.headers();
                        let (headers, more) = Self::chunk(&n.snapshot, 0);
                        n.next_chunk = 1;
                        n.self_done = !more;
                        let pkt = Packet::Dbd(Dbd {
                            init: false,
                            more,
                            master: false,
                            dd_seq: d.dd_seq,
                            headers,
                        });
                        let data = wire::encode(&pkt, my_id);
                        n.last_dbd = Some(data.clone());
                        n.last_dbd_at = now;
                        Act::Send(data)
                    } else if !d.init && n.master && d.dd_seq == n.dd_seq {
                        // Slave's reply to our init: move to Exchange
                        // and process as a normal reply. Snapshot the
                        // summary now (see above).
                        n.state = NbrState::Exchange;
                        n.snapshot = self.lsdb.headers();
                        Act::MasterReply
                    } else {
                        // Ignore (e.g. peer's init while we are master —
                        // our init packet will teach it).
                        Act::None
                    }
                }
                NbrState::Exchange => {
                    if n.master {
                        if !d.init && d.dd_seq == n.dd_seq {
                            Act::MasterReply
                        } else {
                            // Stale replies are ignored; the retransmit
                            // timer resends our last DBD if needed.
                            Act::None
                        }
                    } else {
                        // Slave: master sent the next chunk (or
                        // repeated the last one).
                        if d.dd_seq == n.dd_seq && !d.init {
                            // Duplicate of the chunk we already
                            // answered: resend last response.
                            match n.last_dbd.clone() {
                                Some(data) => {
                                    n.last_dbd_at = now;
                                    Act::Send(data)
                                }
                                None => Act::None,
                            }
                        } else if d.dd_seq != n.dd_seq + 1 {
                            Act::None // out-of-order
                        } else {
                            n.dd_seq = d.dd_seq;
                            for k in Self::headers_we_want(&self.lsdb, &d.headers) {
                                if !n.req_list.contains(&k) {
                                    n.req_list.push(k);
                                }
                            }
                            if !d.more {
                                n.peer_done = true;
                            }
                            let (headers, more) = Self::chunk(&n.snapshot, n.next_chunk);
                            n.next_chunk += 1;
                            n.self_done = !more;
                            let pkt = Packet::Dbd(Dbd {
                                init: false,
                                more,
                                master: false,
                                dd_seq: d.dd_seq,
                                headers,
                            });
                            let data = wire::encode(&pkt, my_id);
                            n.last_dbd = Some(data.clone());
                            n.last_dbd_at = now;
                            Act::SendAndMaybeFinish(data, n.peer_done && n.self_done)
                        }
                    }
                }
                _ => {
                    // DBD after the exchange finished: a duplicate from
                    // a peer that missed our last packet. A slave
                    // re-answers the master's repeated chunk; a master
                    // re-sends its final chunk when the slave is still
                    // replying to the previous sequence number.
                    let slave_dup = !n.master && !d.init && d.dd_seq == n.dd_seq;
                    let master_dup = n.master && !d.init && d.dd_seq.wrapping_add(1) == n.dd_seq;
                    if slave_dup || master_dup {
                        match n.last_dbd.clone() {
                            Some(data) => {
                                n.last_dbd_at = now;
                                Act::Send(data)
                            }
                            None => Act::None,
                        }
                    } else {
                        Act::None
                    }
                }
            }
        };
        match act {
            Act::None => {}
            Act::Send(data) => self.push_send(iface_id, data),
            Act::SendAndMaybeFinish(data, finish) => {
                self.push_send(iface_id, data);
                if finish {
                    self.finish_exchange(iface_id, now);
                }
            }
            Act::MasterReply => self.master_process_reply(iface_id, d, now),
        }
    }

    fn master_process_reply(&mut self, iface_id: IfaceId, d: Dbd, now: Timestamp) {
        let my_id = self.cfg.router_id;
        let wanted = {
            let n = self
                .ifaces
                .get_mut(&iface_id)
                .and_then(|i| i.neighbor.as_mut())
                .expect("caller checked");
            let wanted = Self::headers_we_want(&self.lsdb, &d.headers);
            for k in wanted {
                if !n.req_list.contains(&k) {
                    n.req_list.push(k);
                }
            }
            if !d.more {
                n.peer_done = true;
            }
            // Send next chunk of ours.
            let (headers, more) = Self::chunk(&n.snapshot, n.next_chunk);
            n.next_chunk += 1;
            n.self_done = !more;
            n.dd_seq += 1;
            let done = n.peer_done && n.self_done;
            if !done || !headers.is_empty() || more {
                let pkt = Packet::Dbd(Dbd {
                    init: false,
                    more,
                    master: true,
                    dd_seq: n.dd_seq,
                    headers,
                });
                let data = wire::encode(&pkt, my_id);
                n.last_dbd = Some(data.clone());
                n.last_dbd_at = now;
                Some((data, done))
            } else {
                n.last_dbd = None;
                Some((Bytes::new(), done))
            }
        };
        if let Some((data, done)) = wanted {
            if !data.is_empty() {
                self.push_send(iface_id, data);
            }
            if done {
                self.finish_exchange(iface_id, now);
            }
        }
    }

    fn headers_we_want(lsdb: &Lsdb, headers: &[LsaHeader]) -> Vec<LsaKey> {
        headers
            .iter()
            .filter(|h| h.age < MAX_AGE && lsdb.freshness_of(h) == Freshness::Newer)
            .map(|h| h.key)
            .collect()
    }

    fn finish_exchange(&mut self, iface_id: IfaceId, now: Timestamp) {
        let my_id = self.cfg.router_id;
        let (reached_full, nid, req) = {
            let n = self
                .ifaces
                .get_mut(&iface_id)
                .and_then(|i| i.neighbor.as_mut())
                .expect("caller checked");
            // Keep the last DBD: if our final chunk was lost, the
            // peer's duplicate reply must be answerable even after we
            // leave Exchange (RFC 2328 §10.8's lingering behaviour).
            if n.req_list.is_empty() {
                n.state = NbrState::Full;
                (true, n.id, Vec::new())
            } else {
                n.state = NbrState::Loading;
                n.last_req_at = now;
                let keys: Vec<LsaKey> = n.req_list.iter().take(MAX_REQ_KEYS).copied().collect();
                (false, n.id, keys)
            }
        };
        if reached_full {
            self.on_full(iface_id, nid);
        } else {
            let pkt = Packet::LsRequest(LsRequest { keys: req });
            let data = wire::encode(&pkt, my_id);
            self.push_send(iface_id, data);
        }
    }

    fn on_full(&mut self, iface_id: IfaceId, neighbor: RouterId) {
        self.out.push_back(Output::NeighborChange {
            iface: iface_id,
            neighbor,
            up: true,
        });
        self.originate_router_lsa();
    }

    fn on_request(&mut self, iface_id: IfaceId, sender: RouterId, r: LsRequest) {
        let my_id = self.cfg.router_id;
        let known = {
            let Some(n) = self.ifaces.get(&iface_id).and_then(|i| i.neighbor.as_ref()) else {
                return;
            };
            n.id == sender && n.state >= NbrState::Exchange
        };
        if !known {
            return;
        }
        let lsas: Vec<Lsa> = r
            .keys
            .iter()
            .filter_map(|k| self.lsdb.get(k).cloned())
            .collect();
        for batch in lsas.chunks(MAX_UPD_LSAS) {
            let pkt = Packet::LsUpdate(LsUpdate {
                lsas: batch.to_vec(),
            });
            let data = wire::encode(&pkt, my_id);
            self.push_send(iface_id, data);
        }
    }

    fn on_update(&mut self, iface_id: IfaceId, sender: RouterId, u: LsUpdate, now: Timestamp) {
        let my_id = self.cfg.router_id;
        {
            let Some(n) = self
                .ifaces
                .get_mut(&iface_id)
                .and_then(|i| i.neighbor.as_mut())
            else {
                return;
            };
            if n.id != sender || n.state < NbrState::Exchange {
                return;
            }
            n.last_heard = now;
        }
        let mut acks: Vec<LsaHeader> = Vec::new();
        for lsa in u.lsas {
            let hdr = lsa.header();
            // Implicit ack: if this instance (or newer) sits on the
            // sender's retransmit list, it is now acknowledged.
            if let Some(n) = self
                .ifaces
                .get_mut(&iface_id)
                .and_then(|i| i.neighbor.as_mut())
            {
                if let Some(pending) = n.rxmt.get(&hdr.key) {
                    if !matches!(lsa.freshness_vs(pending), Freshness::Older) {
                        n.rxmt.remove(&hdr.key);
                    }
                }
                // Loading: strike from request list.
                if n.state == NbrState::Loading {
                    n.req_list.retain(|k| *k != hdr.key);
                }
            }

            // Self-originated LSA arriving from elsewhere, fresher than
            // our record: we must out-originate it (RFC 2328 §13.4).
            if self.is_self_originated(&hdr.key) {
                let our_seq = self.originated.get(&hdr.key).copied();
                if our_seq.map(|s| hdr.seq >= s).unwrap_or(false) && hdr.age < MAX_AGE {
                    acks.push(hdr);
                    self.reoriginate_over(hdr);
                    continue;
                }
            }

            match self.lsdb.install(lsa.clone()) {
                Install::New | Install::Updated => {
                    acks.push(hdr);
                    self.flood(lsa, Some(iface_id), now);
                    self.schedule_spf(now);
                }
                Install::Duplicate | Install::PurgeUnknown => {
                    acks.push(hdr);
                }
                Install::Stale => {
                    // Send our fresher copy straight back.
                    if let Some(ours) = self.lsdb.get(&hdr.key).cloned() {
                        let pkt = Packet::LsUpdate(LsUpdate { lsas: vec![ours] });
                        let data = wire::encode(&pkt, my_id);
                        self.push_send(iface_id, data);
                    }
                }
            }
        }
        // Loading complete?
        let became_full = {
            if let Some(n) = self
                .ifaces
                .get_mut(&iface_id)
                .and_then(|i| i.neighbor.as_mut())
            {
                if n.state == NbrState::Loading && n.req_list.is_empty() {
                    n.state = NbrState::Full;
                    Some(n.id)
                } else {
                    None
                }
            } else {
                None
            }
        };
        if let Some(nid) = became_full {
            self.on_full(iface_id, nid);
        }
        if !acks.is_empty() {
            let pkt = Packet::LsAck(LsAck { headers: acks });
            let data = wire::encode(&pkt, my_id);
            self.push_send(iface_id, data);
        }
        self.try_sweep();
    }

    fn on_ack(&mut self, iface_id: IfaceId, sender: RouterId, a: LsAck) {
        let Some(n) = self
            .ifaces
            .get_mut(&iface_id)
            .and_then(|i| i.neighbor.as_mut())
        else {
            return;
        };
        if n.id != sender {
            return;
        }
        for h in a.headers {
            if let Some(pending) = n.rxmt.get(&h.key) {
                let pend_hdr = pending.header();
                if crate::lsa::compare_freshness(h.seq, h.age, pend_hdr.seq, pend_hdr.age)
                    != Freshness::Older
                {
                    n.rxmt.remove(&h.key);
                }
            }
        }
        self.try_sweep();
    }

    // ------------------------------------------------------------------
    // Origination & flooding
    // ------------------------------------------------------------------

    fn is_self_originated(&self, key: &LsaKey) -> bool {
        key.origin == self.cfg.router_id || self.originated.contains_key(key)
    }

    fn next_seq(&mut self, key: LsaKey) -> SeqNum {
        let seq = match self.originated.get(&key) {
            Some(s) => s.next(),
            None => {
                // If the network still holds an instance (e.g. we
                // restarted), continue above it.
                match self.lsdb.get(&key) {
                    Some(l) => l.seq.next(),
                    None => SeqNum::INITIAL,
                }
            }
        };
        self.originated.insert(key, seq);
        seq
    }

    fn reoriginate_over(&mut self, received: LsaHeader) {
        let key = received.key;
        self.originated.insert(key, received.seq);
        match key.kind {
            LsaKind::Router if key.origin == self.cfg.router_id => self.originate_router_lsa(),
            LsaKind::Prefix if key.origin == self.cfg.router_id => {
                let prefix = self
                    .announced
                    .iter()
                    .find(|(_, (id, _))| *id == key.id)
                    .map(|(p, _)| *p);
                match prefix {
                    Some(p) => self.originate_prefix_lsa(p),
                    None => self.purge_own(key),
                }
            }
            LsaKind::Fake => {
                // A fresher copy of a lie we no longer claim: purge it.
                if let Some(ours) = self.lsdb.get(&key).cloned() {
                    let mut p = ours.to_purge();
                    p.seq = received.seq.next();
                    self.originated.insert(key, p.seq);
                    self.install_and_flood(p);
                } else {
                    self.originated.remove(&key);
                }
            }
            _ => {}
        }
    }

    fn originate_router_lsa(&mut self) {
        if !self.started {
            return;
        }
        let links: Vec<LsaLink> = self
            .ifaces
            .values()
            .filter(|i| i.enabled)
            .filter_map(|i| {
                i.neighbor
                    .as_ref()
                    .filter(|n| n.state == NbrState::Full)
                    .map(|n| LsaLink {
                        to: n.id,
                        metric: i.cost,
                    })
            })
            .collect();
        let key = LsaKey {
            origin: self.cfg.router_id,
            kind: LsaKind::Router,
            id: 0,
        };
        let seq = self.next_seq(key);
        let lsa = Lsa::router(self.cfg.router_id, seq, links);
        self.originate(lsa);
    }

    fn originate_prefix_lsa(&mut self, prefix: Prefix) {
        let Some((id, metric)) = self.announced.get(&prefix).copied() else {
            return;
        };
        let key = LsaKey {
            origin: self.cfg.router_id,
            kind: LsaKind::Prefix,
            id,
        };
        let seq = self.next_seq(key);
        let lsa = Lsa::prefix(self.cfg.router_id, id, seq, prefix, metric);
        self.originate(lsa);
    }

    fn originate(&mut self, lsa: Lsa) {
        self.stats.lsas_originated += 1;
        self.install_and_flood(lsa);
    }

    fn purge_own(&mut self, key: LsaKey) {
        let Some(current) = self.lsdb.get(&key).cloned() else {
            self.originated.remove(&key);
            return;
        };
        let purge = current.to_purge();
        self.originated.insert(key, purge.seq);
        self.install_and_flood(purge);
    }

    fn install_and_flood(&mut self, lsa: Lsa) {
        let outcome = self.lsdb.install(lsa.clone());
        if matches!(outcome, Install::New | Install::Updated) {
            self.schedule_spf_now();
        }
        self.flood(lsa, None, Timestamp::ZERO);
        self.try_sweep();
    }

    /// Flood an LSA to every sufficiently adjacent neighbor except the
    /// one it came from, placing it on retransmit lists.
    fn flood(&mut self, lsa: Lsa, except: Option<IfaceId>, now: Timestamp) {
        let my_id = self.cfg.router_id;
        let targets: Vec<IfaceId> = self
            .ifaces
            .values()
            .filter(|i| i.enabled && Some(i.id) != except)
            .filter(|i| {
                i.neighbor
                    .as_ref()
                    .map(|n| n.state >= NbrState::Exchange)
                    .unwrap_or(false)
            })
            .map(|i| i.id)
            .collect();
        for t in targets {
            let n = self
                .ifaces
                .get_mut(&t)
                .and_then(|i| i.neighbor.as_mut())
                .expect("filtered above");
            if n.rxmt.is_empty() {
                n.last_rxmt_at = now;
            }
            n.rxmt.insert(lsa.key, lsa.clone());
            self.stats.lsas_flooded += 1;
            let pkt = Packet::LsUpdate(LsUpdate {
                lsas: vec![lsa.clone()],
            });
            let data = wire::encode(&pkt, my_id);
            self.push_send(t, data);
        }
    }

    /// Sweep MaxAge LSAs once no neighbor still owes an ack for them.
    fn try_sweep(&mut self) {
        let pending: Vec<LsaKey> = self
            .ifaces
            .values()
            .filter_map(|i| i.neighbor.as_ref())
            .flat_map(|n| n.rxmt.keys().copied())
            .collect();
        let dead: Vec<LsaKey> = self
            .lsdb
            .iter()
            .filter(|l| l.is_max_age() && !pending.contains(&l.key))
            .map(|l| l.key)
            .collect();
        for k in dead {
            self.lsdb.remove(&k);
            if self.originated.contains_key(&k) {
                // Keep the seq record so a future re-injection
                // continues above the purged instance.
            }
            self.schedule_spf_now();
        }
    }

    // ------------------------------------------------------------------
    // SPF
    // ------------------------------------------------------------------

    fn schedule_spf(&mut self, now: Timestamp) {
        if !self.cfg.compute_routes {
            return;
        }
        let at = now + self.cfg.spf_delay;
        self.spf_at = Some(match self.spf_at {
            Some(cur) => cur.min(at),
            None => at,
        });
    }

    /// Schedule SPF relative to an unknown "now": the harness will fire
    /// it on the next poll (deadline 0 = immediately due).
    fn schedule_spf_now(&mut self) {
        if !self.cfg.compute_routes {
            return;
        }
        if self.spf_at.is_none() {
            self.spf_at = Some(Timestamp::ZERO);
        }
    }

    fn run_spf(&mut self) {
        if !self.cfg.compute_routes {
            return;
        }
        let version = self.lsdb.version();
        if Some(version) == self.last_spf_version {
            return;
        }
        self.last_spf_version = Some(version);
        let topo = self.lsdb.to_topology();
        let table = self
            .spf
            .compute_versioned(&topo, self.cfg.router_id, self.lsdb.real_version());
        self.stats.spf_runs += 1;
        if self.last_table.as_ref() != Some(&table) {
            self.last_table = Some(table.clone());
            self.out.push_back(Output::FibUpdate(table));
        }
    }

    // ------------------------------------------------------------------
    // Helpers
    // ------------------------------------------------------------------

    fn send_hellos(&mut self, _now: Timestamp) {
        let my_id = self.cfg.router_id;
        let hello_interval = (self.cfg.hello_interval.0 / 1_000_000_000) as u16;
        let dead_interval = (self.cfg.dead_interval.0 / 1_000_000_000) as u16;
        let targets: Vec<(IfaceId, Vec<RouterId>)> = self
            .ifaces
            .values()
            .filter(|i| i.enabled)
            .map(|i| {
                let seen = i.neighbor.as_ref().map(|n| vec![n.id]).unwrap_or_default();
                (i.id, seen)
            })
            .collect();
        for (id, seen) in targets {
            let pkt = Packet::Hello(Hello {
                hello_interval,
                dead_interval,
                seen,
            });
            let data = wire::encode(&pkt, my_id);
            self.push_send(id, data);
        }
    }

    fn send_packet(&mut self, iface: IfaceId, pkt: Packet) {
        let data = wire::encode(&pkt, self.cfg.router_id);
        self.push_send(iface, data);
    }

    fn push_send(&mut self, iface: IfaceId, data: Bytes) {
        self.stats.pkts_sent += 1;
        self.stats.bytes_sent += data.len() as u64;
        self.out.push_back(Output::Send { iface, data });
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn instance_starts_and_emits_hellos() {
        let mut inst = Instance::new(Config::new(RouterId(1)));
        inst.add_iface(IfaceId(0), Metric(10));
        inst.start(Timestamp::ZERO);
        inst.poll_timers(Timestamp::ZERO);
        let out = inst.drain_output();
        let hellos = out
            .iter()
            .filter(|o| matches!(o, Output::Send { .. }))
            .count();
        assert!(hellos >= 1, "expected at least one hello, got {out:?}");
    }

    #[test]
    fn announce_before_start_is_originated_at_start() {
        let mut inst = Instance::new(Config::new(RouterId(1)));
        inst.announce(Prefix::net24(1), Metric(0));
        inst.start(Timestamp::ZERO);
        assert!(inst
            .lsdb()
            .iter()
            .any(|l| matches!(l.body, crate::lsa::LsaBody::Prefix { .. })));
    }

    #[test]
    fn inject_fake_requires_fake_id() {
        let mut inst = Instance::new(Config::new(RouterId(1)));
        inst.start(Timestamp::ZERO);
        let err = inst.inject_fake(
            RouterId(5),
            RouterId(1),
            Metric(1),
            Prefix::net24(1),
            Metric(1),
            FwAddr::primary(RouterId(2)),
        );
        assert!(err.is_err());
        assert!(inst
            .inject_fake(
                RouterId::fake(0),
                RouterId(1),
                Metric(1),
                Prefix::net24(1),
                Metric(1),
                FwAddr::primary(RouterId(2)),
            )
            .is_ok());
    }

    #[test]
    fn retract_unknown_fake_is_error() {
        let mut inst = Instance::new(Config::new(RouterId(1)));
        inst.start(Timestamp::ZERO);
        assert!(matches!(
            inst.retract_fake(RouterId::fake(9)),
            Err(InstanceError::NotOriginator { .. })
        ));
    }

    #[test]
    fn reinjection_uses_fresher_sequence() {
        let mut inst = Instance::new(Config::new(RouterId(1)));
        inst.start(Timestamp::ZERO);
        let f = RouterId::fake(0);
        let key = LsaKey {
            origin: f,
            kind: LsaKind::Fake,
            id: 0,
        };
        inst.inject_fake(
            f,
            RouterId(1),
            Metric(1),
            Prefix::net24(1),
            Metric(1),
            FwAddr::primary(RouterId(2)),
        )
        .unwrap();
        let s1 = inst.lsdb().get(&key).unwrap().seq;
        inst.inject_fake(
            f,
            RouterId(1),
            Metric(1),
            Prefix::net24(1),
            Metric(2),
            FwAddr::primary(RouterId(2)),
        )
        .unwrap();
        let s2 = inst.lsdb().get(&key).unwrap().seq;
        assert!(s2 > s1);
    }

    #[test]
    fn packet_on_unknown_iface_is_error() {
        let mut inst = Instance::new(Config::new(RouterId(1)));
        inst.start(Timestamp::ZERO);
        let err = inst.handle_packet(IfaceId(7), Bytes::from_static(b"xx"), Timestamp::ZERO);
        assert!(matches!(err, Err(InstanceError::UnknownIface(7))));
    }

    #[test]
    fn garbage_packet_counts_decode_error() {
        let mut inst = Instance::new(Config::new(RouterId(1)));
        inst.add_iface(IfaceId(0), Metric(1));
        inst.start(Timestamp::ZERO);
        let err = inst.handle_packet(
            IfaceId(0),
            Bytes::from_static(b"not a packet at all"),
            Timestamp::ZERO,
        );
        assert!(err.is_err());
        assert_eq!(inst.stats.decode_errors, 1);
    }
}
