//! Shortest-path-first computation with full ECMP support.
//!
//! The SPF engine computes, per source router:
//!
//! 1. **Node distances and first-hop sets** over the *real* part of the
//!    topology (Dijkstra). First-hop sets carry every equal-cost first
//!    hop, which is what ECMP FIBs are built from.
//! 2. **Per-prefix routes** over the *augmented* topology: prefix
//!    announcements at real nodes extend paths by a leaf edge; fake
//!    nodes extend paths from their attachment router. Because fake
//!    nodes never carry transit traffic (no outgoing links), they can
//!    never change real-node distances — so a change that only touches
//!    lies needs only the cheap route phase, not a new Dijkstra. This
//!    is the *partial SPF* behaviour real routers exhibit for OSPF
//!    type-5 churn, and it is why Fibbing's control-plane overhead is
//!    low. [`SpfEngine`] exploits it by fingerprinting the real graph.
//!
//! Next-hop identity is a [`FwAddr`]: routes deduplicate by forwarding
//! *address*, not by neighbor router, so two lies resolving to distinct
//! addresses of the same neighbor yield two ECMP slots (uneven splits).

use crate::rib::{Route, RouteTable};
use crate::topology::Topology;
use crate::types::{FwAddr, Metric, Prefix, RouterId};
use std::collections::hash_map::DefaultHasher;
use std::collections::{BTreeMap, BinaryHeap};
use std::hash::{Hash, Hasher};

/// Distances and ECMP first-hop sets from one source over the real
/// graph.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct ShortestPaths {
    /// The source router.
    pub source: RouterId,
    /// Distance to every reachable real node.
    pub dist: BTreeMap<RouterId, Metric>,
    /// Equal-cost first hops (neighbors of the source) toward every
    /// reachable real node. The source itself maps to an empty set.
    pub first_hops: BTreeMap<RouterId, Vec<RouterId>>,
}

impl ShortestPaths {
    /// Distance to `node`, or `Metric::INF` if unreachable.
    pub fn dist_to(&self, node: RouterId) -> Metric {
        self.dist.get(&node).copied().unwrap_or(Metric::INF)
    }

    /// First hops toward `node` (empty if unreachable or the source).
    pub fn first_hops_to(&self, node: RouterId) -> &[RouterId] {
        self.first_hops
            .get(&node)
            .map(|v| v.as_slice())
            .unwrap_or(&[])
    }
}

/// Dijkstra over the real part of `topo` from `source`, computing
/// distances and merged equal-cost first-hop sets.
pub fn shortest_paths(topo: &Topology, source: RouterId) -> ShortestPaths {
    let mut dist: BTreeMap<RouterId, Metric> = BTreeMap::new();
    let mut fh: BTreeMap<RouterId, Vec<RouterId>> = BTreeMap::new();
    let mut heap: BinaryHeap<std::cmp::Reverse<(Metric, RouterId)>> = BinaryHeap::new();

    if !topo.contains(source) || source.is_fake() {
        return ShortestPaths {
            source,
            dist,
            first_hops: fh,
        };
    }

    dist.insert(source, Metric::ZERO);
    fh.insert(source, Vec::new());
    heap.push(std::cmp::Reverse((Metric::ZERO, source)));

    while let Some(std::cmp::Reverse((d, u))) = heap.pop() {
        if dist.get(&u).copied().unwrap_or(Metric::INF) != d {
            continue; // stale heap entry
        }
        for link in topo.links(u) {
            if link.to.is_fake() {
                continue; // fakes handled in the route phase
            }
            if !link.metric.is_finite() {
                continue;
            }
            let nd = d.add(link.metric);
            let cur = dist.get(&link.to).copied().unwrap_or(Metric::INF);
            // First hops propagated to link.to through u.
            let inherit: Vec<RouterId> = if u == source {
                vec![link.to]
            } else {
                fh.get(&u).cloned().unwrap_or_default()
            };
            if nd < cur {
                dist.insert(link.to, nd);
                fh.insert(link.to, inherit);
                heap.push(std::cmp::Reverse((nd, link.to)));
            } else if nd == cur {
                let set = fh.entry(link.to).or_default();
                for h in inherit {
                    if !set.contains(&h) {
                        set.push(h);
                    }
                }
                set.sort();
            }
        }
    }
    for set in fh.values_mut() {
        set.sort();
        set.dedup();
    }
    ShortestPaths {
        source,
        dist,
        first_hops: fh,
    }
}

/// Compute the per-prefix route table for `source`, given precomputed
/// real-graph shortest paths (the cheap "partial SPF" phase).
pub fn route_table_from(topo: &Topology, sp: &ShortestPaths) -> RouteTable {
    let source = sp.source;
    // For every prefix collect (cost, contributing next-hop addresses).
    let mut best: BTreeMap<Prefix, (Metric, Vec<FwAddr>, bool)> = BTreeMap::new();

    let consider = |prefix: Prefix,
                    cost: Metric,
                    hops: Vec<FwAddr>,
                    local: bool,
                    best: &mut BTreeMap<Prefix, (Metric, Vec<FwAddr>, bool)>| {
        if !cost.is_finite() {
            return;
        }
        match best.get_mut(&prefix) {
            None => {
                best.insert(prefix, (cost, hops, local));
            }
            Some((bc, bh, bl)) => {
                if cost < *bc {
                    *bc = cost;
                    *bh = hops;
                    *bl = local;
                } else if cost == *bc {
                    for h in hops {
                        if !bh.contains(&h) {
                            bh.push(h);
                        }
                    }
                    *bl = *bl || local;
                }
            }
        }
    };

    // Real announcements.
    for (node, prefix, m) in topo.all_announcements() {
        if node.is_fake() {
            continue;
        }
        if node == source {
            consider(prefix, m, Vec::new(), true, &mut best);
            continue;
        }
        let d = sp.dist_to(node);
        let cost = d.add(m);
        let hops: Vec<FwAddr> = sp
            .first_hops_to(node)
            .iter()
            .map(|&n| FwAddr::primary(n))
            .collect();
        if !hops.is_empty() {
            consider(prefix, cost, hops, false, &mut best);
        }
    }

    // Lies: fake node f attached at `attach` announcing `prefix`.
    for (_fid, attrs) in topo.fake_nodes() {
        let via_cost = attrs.attach_metric.add(attrs.prefix_metric);
        if attrs.attach == source {
            // The lie targets this very router: the fake next-hop
            // resolves to the lie's forwarding address.
            consider(attrs.prefix, via_cost, vec![attrs.fw], false, &mut best);
        } else {
            let d = sp.dist_to(attrs.attach);
            let cost = d.add(via_cost);
            let hops: Vec<FwAddr> = sp
                .first_hops_to(attrs.attach)
                .iter()
                .map(|&n| FwAddr::primary(n))
                .collect();
            if !hops.is_empty() {
                consider(attrs.prefix, cost, hops, false, &mut best);
            }
        }
    }

    let mut routes = BTreeMap::new();
    for (prefix, (cost, mut hops, local)) in best {
        if local {
            // Local attachment always wins within equal cost; a router
            // never forwards traffic for its own connected prefix.
            routes.insert(
                prefix,
                Route {
                    dist: cost,
                    nexthops: Vec::new(),
                    local: true,
                },
            );
        } else {
            hops.sort();
            hops.dedup();
            routes.insert(
                prefix,
                Route {
                    dist: cost,
                    nexthops: hops,
                    local: false,
                },
            );
        }
    }
    RouteTable { source, routes }
}

/// One-shot convenience: full SPF + route phase for one source.
pub fn compute_routes(topo: &Topology, source: RouterId) -> RouteTable {
    let sp = shortest_paths(topo, source);
    route_table_from(topo, &sp)
}

/// Route tables for every real router in the topology.
pub fn compute_all_routes(topo: &Topology) -> BTreeMap<RouterId, RouteTable> {
    topo.routers()
        .map(|r| (r, compute_routes(topo, r)))
        .collect()
}

/// Every real router's route toward a single `prefix`, computed with
/// one *reverse* Dijkstra per announcement point instead of one
/// forward Dijkstra per router.
///
/// A destination-side verifier (see `fib_core::verify`) only needs the
/// per-router ECMP sets toward one prefix, yet [`compute_all_routes`]
/// pays a full SPF per router — the dominant cost of controller
/// planning at metro scale. This fast path runs Dijkstra over the
/// *reversed* real graph from each announcement point t (a real
/// announcer of `prefix`, or the attachment router of a fake node
/// announcing it), giving `dist(r → t)` for every router r in one
/// pass. Router r's equal-cost first hops toward t are then exactly
/// its real neighbors n with `metric(r→n) + dist(n→t) == dist(r→t)`.
///
/// Because [`Metric`] arithmetic is integral, the resulting slot sets
/// — and therefore every fraction derived from them — are
/// bit-identical to extracting `prefix` from [`compute_all_routes`],
/// as long as real link metrics are positive (a zero-metric link can
/// make the forward merge order-dependent; the IGP never floods one).
/// Equivalence is asserted property-style in this module's tests.
/// Routers with no route toward `prefix` are absent from the map.
pub fn prefix_routes(topo: &Topology, prefix: Prefix) -> BTreeMap<RouterId, Route> {
    let _span = fib_trace::span(fib_trace::Phase::PrefixRoutes);
    // Announcement points relevant to the prefix.
    let reals: Vec<(RouterId, Metric)> = topo
        .all_announcements()
        .filter(|(node, p, _)| *p == prefix && node.is_real())
        .map(|(node, _, m)| (node, m))
        .collect();
    let fakes: Vec<(RouterId, Metric, FwAddr)> = topo
        .fake_nodes()
        .filter(|(_, attrs)| attrs.prefix == prefix)
        .map(|(_, attrs)| (attrs.attach, attrs.cost_at_attach(), attrs.fw))
        .collect();

    let mut targets: Vec<RouterId> = reals
        .iter()
        .map(|(t, _)| *t)
        .chain(fakes.iter().map(|(t, _, _)| *t))
        .collect();
    targets.sort();
    targets.dedup();

    // Reversed real adjacency: for each node, its in-edges.
    let mut radj: BTreeMap<RouterId, Vec<(RouterId, Metric)>> = BTreeMap::new();
    for r in topo.routers() {
        for link in topo.links(r) {
            if link.to.is_real() && link.metric.is_finite() {
                radj.entry(link.to).or_default().push((r, link.metric));
            }
        }
    }

    // One reverse Dijkstra per announcement point.
    let mut dist_to: BTreeMap<RouterId, BTreeMap<RouterId, Metric>> = BTreeMap::new();
    for &t in &targets {
        let mut dist: BTreeMap<RouterId, Metric> = BTreeMap::new();
        let mut heap: BinaryHeap<std::cmp::Reverse<(Metric, RouterId)>> = BinaryHeap::new();
        if topo.contains(t) && t.is_real() {
            dist.insert(t, Metric::ZERO);
            heap.push(std::cmp::Reverse((Metric::ZERO, t)));
        }
        while let Some(std::cmp::Reverse((d, u))) = heap.pop() {
            if dist.get(&u).copied().unwrap_or(Metric::INF) != d {
                continue; // stale heap entry
            }
            for &(from, m) in radj.get(&u).map(|v| v.as_slice()).unwrap_or(&[]) {
                let nd = m.add(d);
                if nd < dist.get(&from).copied().unwrap_or(Metric::INF) {
                    dist.insert(from, nd);
                    heap.push(std::cmp::Reverse((nd, from)));
                }
            }
        }
        dist_to.insert(t, dist);
    }

    // Distance-consistent first hops of `r` toward a target with the
    // given reverse-distance table.
    let hops_toward = |r: RouterId, dist: &BTreeMap<RouterId, Metric>| -> Vec<FwAddr> {
        let dr = dist.get(&r).copied().unwrap_or(Metric::INF);
        if !dr.is_finite() {
            return Vec::new();
        }
        topo.links(r)
            .iter()
            .filter(|l| l.to.is_real() && l.metric.is_finite())
            .filter(|l| {
                l.metric
                    .add(dist.get(&l.to).copied().unwrap_or(Metric::INF))
                    == dr
            })
            .map(|l| FwAddr::primary(l.to))
            .collect()
    };

    // Per-router candidate merge, mirroring `route_table_from`.
    let mut out = BTreeMap::new();
    for r in topo.routers() {
        let mut best: Option<(Metric, Vec<FwAddr>, bool)> = None;
        let mut consider = |cost: Metric, hops: Vec<FwAddr>, local: bool| {
            if !cost.is_finite() {
                return;
            }
            match &mut best {
                None => best = Some((cost, hops, local)),
                Some((bc, bh, bl)) => {
                    if cost < *bc {
                        *bc = cost;
                        *bh = hops;
                        *bl = local;
                    } else if cost == *bc {
                        for h in hops {
                            if !bh.contains(&h) {
                                bh.push(h);
                            }
                        }
                        *bl = *bl || local;
                    }
                }
            }
        };

        for &(node, m) in &reals {
            if node == r {
                consider(m, Vec::new(), true);
            } else {
                let dist = &dist_to[&node];
                let cost = dist.get(&r).copied().unwrap_or(Metric::INF).add(m);
                let hops = hops_toward(r, dist);
                if !hops.is_empty() {
                    consider(cost, hops, false);
                }
            }
        }
        for &(attach, via_cost, fw) in &fakes {
            if attach == r {
                consider(via_cost, vec![fw], false);
            } else {
                let dist = &dist_to[&attach];
                let cost = dist.get(&r).copied().unwrap_or(Metric::INF).add(via_cost);
                let hops = hops_toward(r, dist);
                if !hops.is_empty() {
                    consider(cost, hops, false);
                }
            }
        }

        if let Some((cost, mut hops, local)) = best {
            let route = if local {
                Route {
                    dist: cost,
                    nexthops: Vec::new(),
                    local: true,
                }
            } else {
                hops.sort();
                hops.dedup();
                Route {
                    dist: cost,
                    nexthops: hops,
                    local: false,
                }
            };
            out.insert(r, route);
        }
    }
    out
}

/// Caching SPF engine exploiting partial SPF for lie-only changes.
///
/// The engine fingerprints the *real* part of the topology (routers,
/// links, metrics). When only fake nodes or prefix announcements
/// changed, the cached Dijkstra result is reused and only the route
/// phase reruns — this is the ablation point contrasting Fibbing's
/// type-5-style churn with full topology churn.
#[derive(Debug, Default)]
pub struct SpfEngine {
    cache: BTreeMap<RouterId, (u64, ShortestPaths)>,
    /// Last real-graph version seen per source (the O(1) fast path of
    /// [`SpfEngine::compute_versioned`]).
    seen_real: BTreeMap<RouterId, u64>,
    /// Counts of full Dijkstra runs (for benchmarks/ablation).
    pub full_runs: u64,
    /// Counts of cache hits where only the route phase ran.
    pub partial_runs: u64,
}

/// Fingerprint of the real graph: routers + real links with metrics.
pub fn real_graph_fingerprint(topo: &Topology) -> u64 {
    let mut h = DefaultHasher::new();
    for r in topo.routers() {
        r.0.hash(&mut h);
        for l in topo.links(r) {
            if l.to.is_real() {
                l.to.0.hash(&mut h);
                l.metric.0.hash(&mut h);
            }
        }
        0xffff_ffffu32.hash(&mut h); // node separator
    }
    h.finish()
}

impl SpfEngine {
    /// A fresh engine with an empty cache.
    pub fn new() -> Self {
        SpfEngine::default()
    }

    /// Compute the route table for `source`, reusing the cached
    /// Dijkstra result when the real graph is unchanged.
    pub fn compute(&mut self, topo: &Topology, source: RouterId) -> RouteTable {
        let fp = real_graph_fingerprint(topo);
        self.compute_with_fingerprint(topo, source, fp)
    }

    /// Like [`SpfEngine::compute`], but gated on the caller's
    /// real-graph version counter (see `Lsdb::real_version`): when the
    /// version is unchanged since the last call the cached Dijkstra is
    /// reused *without even hashing the topology* — the common case on
    /// lie/prefix (type-5-style) churn, where only the cheap route
    /// phase runs. A bumped version falls back to the fingerprint
    /// check, so a content-identical re-origination still takes the
    /// partial path.
    pub fn compute_versioned(
        &mut self,
        topo: &Topology,
        source: RouterId,
        real_version: u64,
    ) -> RouteTable {
        if self.seen_real.get(&source) == Some(&real_version) {
            if let Some((_, sp)) = self.cache.get(&source) {
                self.partial_runs += 1;
                let _span = fib_trace::span(fib_trace::Phase::SpfPartial);
                return route_table_from(topo, sp);
            }
        }
        self.seen_real.insert(source, real_version);
        self.compute(topo, source)
    }

    fn compute_with_fingerprint(
        &mut self,
        topo: &Topology,
        source: RouterId,
        fp: u64,
    ) -> RouteTable {
        let need_full = match self.cache.get(&source) {
            Some((cached_fp, _)) => *cached_fp != fp,
            None => true,
        };
        let _span = fib_trace::span(if need_full {
            fib_trace::Phase::SpfFull
        } else {
            fib_trace::Phase::SpfPartial
        });
        if need_full {
            let sp = shortest_paths(topo, source);
            self.cache.insert(source, (fp, sp));
            self.full_runs += 1;
        } else {
            self.partial_runs += 1;
        }
        let (_, sp) = self.cache.get(&source).expect("just inserted");
        route_table_from(topo, sp)
    }

    /// Drop all cached state.
    pub fn invalidate(&mut self) {
        self.cache.clear();
        self.seen_real.clear();
    }
}

/// Enumerate complete equal-cost shortest paths from `source` to
/// `prefix` (sequences of node ids ending at the announcing node, fake
/// nodes included). Stops after `limit` paths.
pub fn enumerate_paths(
    topo: &Topology,
    source: RouterId,
    prefix: Prefix,
    limit: usize,
) -> Vec<Vec<RouterId>> {
    let sp = shortest_paths(topo, source);
    // Total best cost to the prefix (through real or fake announcers).
    let mut best = Metric::INF;
    for (node, p, m) in topo.all_announcements() {
        if p != prefix {
            continue;
        }
        let cost = if node.is_fake() {
            let attrs = topo.fake_attrs(node).expect("fake announcer has attrs");
            sp.dist_to(attrs.attach).add(attrs.attach_metric).add(m)
        } else {
            sp.dist_to(node).add(m)
        };
        if cost < best {
            best = cost;
        }
    }
    if !best.is_finite() {
        return Vec::new();
    }

    // DFS forward from source following distance-consistent edges.
    let mut out = Vec::new();
    let mut stack = vec![source];
    dfs_paths(
        topo,
        &sp,
        source,
        prefix,
        best,
        Metric::ZERO,
        &mut stack,
        &mut out,
        limit,
    );
    out.sort();
    out
}

#[allow(clippy::too_many_arguments)]
fn dfs_paths(
    topo: &Topology,
    sp: &ShortestPaths,
    node: RouterId,
    prefix: Prefix,
    best: Metric,
    spent: Metric,
    stack: &mut Vec<RouterId>,
    out: &mut Vec<Vec<RouterId>>,
    limit: usize,
) {
    if out.len() >= limit {
        return;
    }
    // Does `node` announce the prefix at exactly the remaining cost?
    for (p, m) in topo.prefixes_at(node) {
        if *p == prefix && spent.add(*m) == best {
            out.push(stack.clone());
            if out.len() >= limit {
                return;
            }
        }
    }
    for link in topo.links(node) {
        let next_spent = spent.add(link.metric);
        if next_spent > best {
            continue;
        }
        if link.to.is_fake() {
            let Some(attrs) = topo.fake_attrs(link.to) else {
                continue;
            };
            if attrs.prefix == prefix && next_spent.add(attrs.prefix_metric) == best {
                stack.push(link.to);
                out.push(stack.clone());
                stack.pop();
                if out.len() >= limit {
                    return;
                }
            }
            continue;
        }
        // Only descend along globally shortest sub-paths: the distance
        // of link.to from the source must equal spent + metric.
        if sp.dist_to(link.to) == next_spent && !stack.contains(&link.to) {
            stack.push(link.to);
            dfs_paths(
                topo, sp, link.to, prefix, best, next_spent, stack, out, limit,
            );
            stack.pop();
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::topology::FakeAttrs;

    fn r(n: u32) -> RouterId {
        RouterId(n)
    }

    /// Square: 1 -2- 2, 1 -1- 3, 3 -1- 2 (so 1→2 has two equal paths of
    /// cost 2), prefix at 2.
    fn square() -> Topology {
        let mut t = Topology::new();
        for i in 1..=3 {
            t.add_router(r(i));
        }
        t.add_link_sym(r(1), r(2), Metric(2)).unwrap();
        t.add_link_sym(r(1), r(3), Metric(1)).unwrap();
        t.add_link_sym(r(3), r(2), Metric(1)).unwrap();
        t.announce_prefix(r(2), Prefix::net24(1), Metric(0))
            .unwrap();
        t
    }

    #[test]
    fn dijkstra_distances_and_ecmp_first_hops() {
        let t = square();
        let sp = shortest_paths(&t, r(1));
        assert_eq!(sp.dist_to(r(2)), Metric(2));
        assert_eq!(sp.dist_to(r(3)), Metric(1));
        assert_eq!(sp.first_hops_to(r(2)), &[r(2), r(3)]);
        assert_eq!(sp.first_hops_to(r(1)), &[] as &[RouterId]);
    }

    #[test]
    fn unreachable_nodes_are_absent() {
        let mut t = square();
        t.add_router(r(9)); // isolated
        let sp = shortest_paths(&t, r(1));
        assert_eq!(sp.dist_to(r(9)), Metric::INF);
        assert!(sp.first_hops_to(r(9)).is_empty());
    }

    #[test]
    fn route_table_merges_equal_cost_nexthops() {
        let t = square();
        let rt = compute_routes(&t, r(1));
        let route = rt.routes.get(&Prefix::net24(1)).unwrap();
        assert_eq!(route.dist, Metric(2));
        assert_eq!(
            route.nexthops,
            vec![FwAddr::primary(r(2)), FwAddr::primary(r(3))]
        );
        assert!(!route.local);
    }

    #[test]
    fn local_announcement_wins() {
        let t = square();
        let rt = compute_routes(&t, r(2));
        let route = rt.routes.get(&Prefix::net24(1)).unwrap();
        assert!(route.local);
        assert!(route.nexthops.is_empty());
        assert_eq!(route.dist, Metric(0));
    }

    #[test]
    fn fake_node_adds_equal_cost_path_at_attach() {
        let mut t = square();
        // At r1 the shortest cost is 2; add a lie via r3's secondary
        // address at exactly cost 2 → 3 ECMP slots at r1.
        t.add_fake_node(
            RouterId::fake(0),
            FakeAttrs {
                attach: r(1),
                attach_metric: Metric(1),
                prefix: Prefix::net24(1),
                prefix_metric: Metric(1),
                fw: FwAddr::secondary(r(3), 1),
            },
        )
        .unwrap();
        let rt = compute_routes(&t, r(1));
        let route = rt.routes.get(&Prefix::net24(1)).unwrap();
        assert_eq!(route.dist, Metric(2));
        assert_eq!(
            route.nexthops,
            vec![
                FwAddr::primary(r(2)),
                FwAddr::primary(r(3)),
                FwAddr::secondary(r(3), 1)
            ]
        );
    }

    #[test]
    fn fake_node_cheaper_than_real_overrides() {
        let mut t = square();
        t.add_fake_node(
            RouterId::fake(0),
            FakeAttrs {
                attach: r(1),
                attach_metric: Metric(1),
                prefix: Prefix::net24(1),
                prefix_metric: Metric::ZERO,
                fw: FwAddr::secondary(r(3), 1),
            },
        )
        .unwrap();
        let rt = compute_routes(&t, r(1));
        let route = rt.routes.get(&Prefix::net24(1)).unwrap();
        assert_eq!(route.dist, Metric(1));
        assert_eq!(route.nexthops, vec![FwAddr::secondary(r(3), 1)]);
    }

    #[test]
    fn fake_node_visible_from_remote_routers_via_attach() {
        let mut t = square();
        // Lie at r3 (cost 1 there, equal to its real path cost via r2).
        t.add_fake_node(
            RouterId::fake(0),
            FakeAttrs {
                attach: r(3),
                attach_metric: Metric(1),
                prefix: Prefix::net24(1),
                prefix_metric: Metric::ZERO,
                fw: FwAddr::secondary(r(1), 1),
            },
        )
        .unwrap();
        // From r1, path via the lie costs dist(r3)+1 = 2 == shortest →
        // contributes first hop r3 (already present) — dedup keeps 2.
        let rt = compute_routes(&t, r(1));
        let route = rt.routes.get(&Prefix::net24(1)).unwrap();
        assert_eq!(
            route.nexthops,
            vec![FwAddr::primary(r(2)), FwAddr::primary(r(3))]
        );
    }

    #[test]
    fn engine_partial_runs_on_lie_churn() {
        let mut t = square();
        let mut eng = SpfEngine::new();
        let _ = eng.compute(&t, r(1));
        assert_eq!((eng.full_runs, eng.partial_runs), (1, 0));
        // Lie-only change: no new Dijkstra.
        t.add_fake_node(
            RouterId::fake(0),
            FakeAttrs {
                attach: r(1),
                attach_metric: Metric(1),
                prefix: Prefix::net24(1),
                prefix_metric: Metric(1),
                fw: FwAddr::secondary(r(3), 1),
            },
        )
        .unwrap();
        let rt = eng.compute(&t, r(1));
        assert_eq!((eng.full_runs, eng.partial_runs), (1, 1));
        assert_eq!(rt.routes[&Prefix::net24(1)].nexthops.len(), 3);
        // Real-graph change: full run.
        t.set_metric(r(1), r(3), Metric(5)).unwrap();
        let _ = eng.compute(&t, r(1));
        assert_eq!((eng.full_runs, eng.partial_runs), (2, 1));
    }

    #[test]
    fn versioned_engine_skips_hashing_on_stable_real_graph() {
        let mut t = square();
        let mut eng = SpfEngine::new();
        let _ = eng.compute_versioned(&t, r(1), 0);
        assert_eq!((eng.full_runs, eng.partial_runs), (1, 0));
        // Same version: partial without consulting the fingerprint.
        t.add_fake_node(
            RouterId::fake(0),
            FakeAttrs {
                attach: r(1),
                attach_metric: Metric(1),
                prefix: Prefix::net24(1),
                prefix_metric: Metric(1),
                fw: FwAddr::secondary(r(3), 1),
            },
        )
        .unwrap();
        let rt = eng.compute_versioned(&t, r(1), 0);
        assert_eq!((eng.full_runs, eng.partial_runs), (1, 1));
        assert_eq!(rt.routes[&Prefix::net24(1)].nexthops.len(), 3);
        // Bumped version, identical real graph: the fingerprint check
        // still lands on the partial path.
        let _ = eng.compute_versioned(&t, r(1), 1);
        assert_eq!((eng.full_runs, eng.partial_runs), (1, 2));
        // Bumped version, changed real graph: full run.
        t.set_metric(r(1), r(3), Metric(5)).unwrap();
        let _ = eng.compute_versioned(&t, r(1), 2);
        assert_eq!((eng.full_runs, eng.partial_runs), (2, 2));
        // A stale version after invalidate() recomputes from scratch.
        eng.invalidate();
        let _ = eng.compute_versioned(&t, r(1), 2);
        assert_eq!((eng.full_runs, eng.partial_runs), (3, 2));
    }

    #[test]
    fn path_enumeration_lists_equal_cost_paths() {
        let t = square();
        let paths = enumerate_paths(&t, r(1), Prefix::net24(1), 16);
        assert_eq!(paths, vec![vec![r(1), r(2)], vec![r(1), r(3), r(2)]]);
    }

    #[test]
    fn path_enumeration_includes_fake_terminals() {
        let mut t = square();
        t.add_fake_node(
            RouterId::fake(0),
            FakeAttrs {
                attach: r(1),
                attach_metric: Metric(1),
                prefix: Prefix::net24(1),
                prefix_metric: Metric(1),
                fw: FwAddr::secondary(r(3), 1),
            },
        )
        .unwrap();
        let paths = enumerate_paths(&t, r(1), Prefix::net24(1), 16);
        assert_eq!(paths.len(), 3);
        assert!(paths.contains(&vec![r(1), RouterId::fake(0)]));
    }

    #[test]
    fn spf_from_missing_or_fake_source_is_empty() {
        let t = square();
        let sp = shortest_paths(&t, r(77));
        assert!(sp.dist.is_empty());
        let sp = shortest_paths(&t, RouterId::fake(1));
        assert!(sp.dist.is_empty());
    }

    /// `prefix_routes` must agree bit-for-bit with extracting the
    /// prefix from the per-source forward SPF.
    fn assert_prefix_routes_match(t: &Topology, prefix: Prefix) {
        let fast = prefix_routes(t, prefix);
        let full = compute_all_routes(t);
        for r_ in t.routers() {
            let reference = full.get(&r_).and_then(|tab| tab.route(prefix));
            assert_eq!(
                fast.get(&r_),
                reference,
                "route divergence at {r_} for {prefix}"
            );
        }
        assert_eq!(
            fast.len(),
            full.values()
                .filter(|tab| tab.route(prefix).is_some())
                .count(),
            "router set divergence for {prefix}"
        );
    }

    #[test]
    fn prefix_routes_matches_forward_spf_on_square_with_lies() {
        let mut t = square();
        assert_prefix_routes_match(&t, Prefix::net24(1));
        t.add_fake_node(
            RouterId::fake(0),
            FakeAttrs {
                attach: r(1),
                attach_metric: Metric(1),
                prefix: Prefix::net24(1),
                prefix_metric: Metric(1),
                fw: FwAddr::secondary(r(3), 1),
            },
        )
        .unwrap();
        assert_prefix_routes_match(&t, Prefix::net24(1));
        // A cheaper lie that overrides the real paths at its attach.
        t.add_fake_node(
            RouterId::fake(1),
            FakeAttrs {
                attach: r(3),
                attach_metric: Metric(1),
                prefix: Prefix::net24(1),
                prefix_metric: Metric::ZERO,
                fw: FwAddr::secondary(r(1), 1),
            },
        )
        .unwrap();
        assert_prefix_routes_match(&t, Prefix::net24(1));
        // Absent prefix: both sides must agree it routes nowhere.
        assert!(prefix_routes(&t, Prefix::net24(9)).is_empty());
    }

    /// Randomized equivalence over asymmetric topologies with partial
    /// connectivity, multiple announcers, and seed-scripted lies.
    #[test]
    fn prefix_routes_matches_forward_spf_randomized() {
        let mut st: u64 = 0x5EED_CAFE;
        let mut next = move || {
            st = st.wrapping_add(0x9E37_79B9_7F4A_7C15);
            let mut z = st;
            z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
            z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
            z ^ (z >> 31)
        };
        for case in 0..40u32 {
            let n = 4 + (next() % 9) as u32; // 4..=12 routers
            let mut t = Topology::new();
            for i in 1..=n {
                t.add_router(r(i));
            }
            // Ring for base connectivity, then random directed chords
            // with independent per-direction metrics (asymmetric).
            for i in 1..=n {
                let j = if i == n { 1 } else { i + 1 };
                t.add_link(r(i), r(j), Metric(1 + (next() % 4) as u32))
                    .unwrap();
                t.add_link(r(j), r(i), Metric(1 + (next() % 4) as u32))
                    .unwrap();
            }
            for _ in 0..n {
                let a = 1 + (next() as u32 % n);
                let b = 1 + (next() as u32 % n);
                if a != b && !t.has_link(r(a), r(b)) {
                    t.add_link(r(a), r(b), Metric(1 + (next() % 6) as u32))
                        .unwrap();
                }
            }
            // Sometimes disconnect a router's out-edges entirely.
            if case % 5 == 0 {
                let v = 1 + (next() as u32 % n);
                let outs: Vec<RouterId> = t.links(r(v)).iter().map(|l| l.to).collect();
                for to in outs {
                    t.remove_link(r(v), to);
                }
            }
            let prefix = Prefix::net24(1);
            // One or two real announcers (possibly tied costs).
            let owners = 1 + (next() % 2);
            for _ in 0..owners {
                let o = 1 + (next() as u32 % n);
                t.announce_prefix(r(o), prefix, Metric((next() % 3) as u32))
                    .unwrap();
            }
            // A decoy prefix to ensure filtering is exercised.
            t.announce_prefix(r(1 + (next() as u32 % n)), Prefix::net24(7), Metric::ZERO)
                .unwrap();
            // Seed-scripted lies at random attach points.
            for k in 0..(next() % 4) as u32 {
                let attach = 1 + (next() as u32 % n);
                let nbrs: Vec<RouterId> = t
                    .links(r(attach))
                    .iter()
                    .filter(|l| l.to.is_real())
                    .map(|l| l.to)
                    .collect();
                let Some(&nbr) = nbrs.get(next() as usize % nbrs.len().max(1)) else {
                    continue;
                };
                t.add_fake_node(
                    RouterId::fake(k),
                    FakeAttrs {
                        attach: r(attach),
                        attach_metric: Metric(1 + (next() % 3) as u32),
                        prefix,
                        prefix_metric: Metric((next() % 3) as u32),
                        fw: FwAddr::secondary(nbr, 1 + (next() % 3) as u16),
                    },
                )
                .unwrap();
            }
            assert_prefix_routes_match(&t, prefix);
            assert_prefix_routes_match(&t, Prefix::net24(7));
        }
    }
}
