//! The (possibly augmented) weighted topology graph.
//!
//! A [`Topology`] is the shared view every router computes shortest paths
//! on. It contains:
//!
//! * **real routers** connected by directed weighted links (the IGP view
//!   derived from router LSAs after the two-way connectivity check),
//! * **prefix attachments**: `(router, prefix, metric)` leaf edges, and
//! * **fake nodes** injected by a Fibbing controller: each fake node
//!   hangs off one real router via a directed real→fake link, announces
//!   exactly one prefix, and carries a forwarding address that the
//!   attachment router's FIB resolves the fake next-hop to.
//!
//! Fake nodes have no outgoing links into the real graph, so they can
//! never attract transit traffic for other destinations — matching the
//! semantics of OSPF type-5 lies used by the original Fibbing
//! implementation.

use crate::error::TopologyError;
use crate::types::{FwAddr, Metric, Prefix, RouterId};
use std::collections::BTreeMap;

/// A directed link in the topology.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct TopoLink {
    /// Far endpoint.
    pub to: RouterId,
    /// Link metric in the `from → to` direction.
    pub metric: Metric,
}

/// Attributes carried by a fake node.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct FakeAttrs {
    /// The real router the fake node is attached to.
    pub attach: RouterId,
    /// Metric of the (directed) `attach → fake` link.
    pub attach_metric: Metric,
    /// The single prefix the fake node announces.
    pub prefix: Prefix,
    /// Metric of the announcement at the fake node.
    pub prefix_metric: Metric,
    /// Forwarding address the attachment router resolves this fake
    /// next-hop to. Must denote a physical neighbor of `attach`.
    pub fw: FwAddr,
}

impl FakeAttrs {
    /// Total cost of the prefix as seen from the attachment router when
    /// going through this fake node.
    pub fn cost_at_attach(&self) -> Metric {
        self.attach_metric.add(self.prefix_metric)
    }
}

#[derive(Debug, Clone, Default)]
struct Node {
    links: Vec<TopoLink>,
    prefixes: Vec<(Prefix, Metric)>,
    fake: Option<FakeAttrs>,
}

/// The shared weighted graph (real + fake parts).
#[derive(Debug, Clone, Default)]
pub struct Topology {
    nodes: BTreeMap<RouterId, Node>,
}

impl Topology {
    /// An empty topology.
    pub fn new() -> Self {
        Topology::default()
    }

    /// Add a real router. Idempotent.
    pub fn add_router(&mut self, id: RouterId) {
        assert!(id.is_real(), "use add_fake_node for fake nodes");
        self.nodes.entry(id).or_default();
    }

    /// `true` if the node exists (real or fake).
    pub fn contains(&self, id: RouterId) -> bool {
        self.nodes.contains_key(&id)
    }

    /// Number of nodes, real and fake.
    pub fn node_count(&self) -> usize {
        self.nodes.len()
    }

    /// Number of real routers.
    pub fn router_count(&self) -> usize {
        self.nodes.keys().filter(|r| r.is_real()).count()
    }

    /// Number of fake nodes.
    pub fn fake_count(&self) -> usize {
        self.nodes.keys().filter(|r| r.is_fake()).count()
    }

    /// Iterate over all node ids in ascending order (real before fake,
    /// since fake ids live in the top half of the id space).
    pub fn nodes(&self) -> impl Iterator<Item = RouterId> + '_ {
        self.nodes.keys().copied()
    }

    /// Iterate over real router ids in ascending order.
    pub fn routers(&self) -> impl Iterator<Item = RouterId> + '_ {
        self.nodes.keys().copied().filter(|r| r.is_real())
    }

    /// Iterate over fake node ids with their attributes.
    pub fn fake_nodes(&self) -> impl Iterator<Item = (RouterId, &FakeAttrs)> + '_ {
        self.nodes
            .iter()
            .filter_map(|(id, n)| n.fake.as_ref().map(|f| (*id, f)))
    }

    /// Add a directed link between two existing real routers.
    pub fn add_link(
        &mut self,
        from: RouterId,
        to: RouterId,
        metric: Metric,
    ) -> Result<(), TopologyError> {
        if !self.nodes.contains_key(&from) || !self.nodes.contains_key(&to) {
            return Err(TopologyError::UnknownEndpoint { from, to });
        }
        if from.is_fake() || to.is_fake() {
            return Err(TopologyError::KindMismatch(if from.is_fake() {
                from
            } else {
                to
            }));
        }
        let node = self.nodes.get_mut(&from).expect("checked above");
        if node.links.iter().any(|l| l.to == to) {
            return Err(TopologyError::DuplicateLink { from, to });
        }
        node.links.push(TopoLink { to, metric });
        node.links.sort_by_key(|l| l.to);
        Ok(())
    }

    /// Add a symmetric link (both directions, same metric).
    pub fn add_link_sym(
        &mut self,
        a: RouterId,
        b: RouterId,
        metric: Metric,
    ) -> Result<(), TopologyError> {
        self.add_link(a, b, metric)?;
        self.add_link(b, a, metric)
    }

    /// Change the metric of an existing directed link.
    pub fn set_metric(
        &mut self,
        from: RouterId,
        to: RouterId,
        metric: Metric,
    ) -> Result<(), TopologyError> {
        let node = self
            .nodes
            .get_mut(&from)
            .ok_or(TopologyError::UnknownRouter(from))?;
        let link = node
            .links
            .iter_mut()
            .find(|l| l.to == to)
            .ok_or(TopologyError::UnknownEndpoint { from, to })?;
        link.metric = metric;
        Ok(())
    }

    /// Remove a directed link if present; returns whether it existed.
    pub fn remove_link(&mut self, from: RouterId, to: RouterId) -> bool {
        if let Some(node) = self.nodes.get_mut(&from) {
            let before = node.links.len();
            node.links.retain(|l| l.to != to);
            return node.links.len() != before;
        }
        false
    }

    /// Metric of the directed link `from → to`, if it exists.
    pub fn link_metric(&self, from: RouterId, to: RouterId) -> Option<Metric> {
        self.nodes
            .get(&from)?
            .links
            .iter()
            .find(|l| l.to == to)
            .map(|l| l.metric)
    }

    /// `true` if `to` is a direct successor of `from`.
    pub fn has_link(&self, from: RouterId, to: RouterId) -> bool {
        self.link_metric(from, to).is_some()
    }

    /// Outgoing links of a node (empty for fake nodes).
    pub fn links(&self, from: RouterId) -> &[TopoLink] {
        self.nodes
            .get(&from)
            .map(|n| n.links.as_slice())
            .unwrap_or(&[])
    }

    /// All directed real links as `(from, to, metric)` triples.
    pub fn all_links(&self) -> impl Iterator<Item = (RouterId, RouterId, Metric)> + '_ {
        self.nodes
            .iter()
            .flat_map(|(from, n)| n.links.iter().map(move |l| (*from, l.to, l.metric)))
    }

    /// Attach a prefix announcement to an existing node.
    ///
    /// Re-announcing the same prefix replaces its metric.
    pub fn announce_prefix(
        &mut self,
        router: RouterId,
        prefix: Prefix,
        metric: Metric,
    ) -> Result<(), TopologyError> {
        let node = self
            .nodes
            .get_mut(&router)
            .ok_or(TopologyError::UnknownRouter(router))?;
        if let Some(slot) = node.prefixes.iter_mut().find(|(p, _)| *p == prefix) {
            slot.1 = metric;
        } else {
            node.prefixes.push((prefix, metric));
            node.prefixes.sort_by_key(|(p, _)| *p);
        }
        Ok(())
    }

    /// Withdraw a prefix announcement; returns whether it existed.
    pub fn withdraw_prefix(&mut self, router: RouterId, prefix: Prefix) -> bool {
        if let Some(node) = self.nodes.get_mut(&router) {
            let before = node.prefixes.len();
            node.prefixes.retain(|(p, _)| *p != prefix);
            return node.prefixes.len() != before;
        }
        false
    }

    /// Prefix announcements of one node.
    pub fn prefixes_at(&self, router: RouterId) -> &[(Prefix, Metric)] {
        self.nodes
            .get(&router)
            .map(|n| n.prefixes.as_slice())
            .unwrap_or(&[])
    }

    /// The set of distinct prefixes announced anywhere (real and fake).
    pub fn all_prefixes(&self) -> Vec<Prefix> {
        let mut out: Vec<Prefix> = self
            .nodes
            .values()
            .flat_map(|n| n.prefixes.iter().map(|(p, _)| *p))
            .collect();
        out.sort();
        out.dedup();
        out
    }

    /// All `(node, prefix, metric)` announcements.
    pub fn all_announcements(&self) -> impl Iterator<Item = (RouterId, Prefix, Metric)> + '_ {
        self.nodes
            .iter()
            .flat_map(|(r, n)| n.prefixes.iter().map(move |(p, m)| (*r, *p, *m)))
    }

    /// Inject a fake node.
    ///
    /// The fake node `id` (which must be in the fake id range) is hung
    /// off `attrs.attach` with a directed link of `attrs.attach_metric`
    /// and announces `attrs.prefix` at `attrs.prefix_metric`. The
    /// forwarding address must identify a physical neighbor of the
    /// attachment router (any address index of that neighbor).
    pub fn add_fake_node(&mut self, id: RouterId, attrs: FakeAttrs) -> Result<(), TopologyError> {
        if !id.is_fake() {
            return Err(TopologyError::KindMismatch(id));
        }
        if !self.nodes.contains_key(&attrs.attach) || attrs.attach.is_fake() {
            return Err(TopologyError::UnknownRouter(attrs.attach));
        }
        if !self.has_link(attrs.attach, attrs.fw.router) {
            return Err(TopologyError::InvalidForwardingAddress {
                fake: id,
                attach: attrs.attach,
            });
        }
        let node = self.nodes.entry(id).or_default();
        node.fake = Some(attrs);
        node.prefixes = vec![(attrs.prefix, attrs.prefix_metric)];
        // The attach → fake link lives on the attachment router, flagged
        // by the far end being in the fake range.
        let attach_node = self.nodes.get_mut(&attrs.attach).expect("checked above");
        attach_node.links.retain(|l| l.to != id);
        attach_node.links.push(TopoLink {
            to: id,
            metric: attrs.attach_metric,
        });
        attach_node.links.sort_by_key(|l| l.to);
        Ok(())
    }

    /// Remove a fake node and its attachment link; returns whether it
    /// existed.
    pub fn remove_fake_node(&mut self, id: RouterId) -> bool {
        let Some(node) = self.nodes.get(&id) else {
            return false;
        };
        let Some(attrs) = node.fake else {
            return false;
        };
        self.nodes.remove(&id);
        if let Some(attach) = self.nodes.get_mut(&attrs.attach) {
            attach.links.retain(|l| l.to != id);
        }
        true
    }

    /// Attributes of a fake node, if `id` is one.
    pub fn fake_attrs(&self, id: RouterId) -> Option<&FakeAttrs> {
        self.nodes.get(&id)?.fake.as_ref()
    }

    /// A copy of this topology with every fake node stripped — the
    /// "truth", i.e. what the IGP would look like without a controller.
    pub fn without_fakes(&self) -> Topology {
        let mut t = Topology::new();
        for (&id, node) in &self.nodes {
            if id.is_fake() {
                continue;
            }
            t.nodes.insert(
                id,
                Node {
                    links: node
                        .links
                        .iter()
                        .filter(|l| !l.to.is_fake())
                        .copied()
                        .collect(),
                    prefixes: node.prefixes.clone(),
                    fake: None,
                },
            );
        }
        t
    }

    /// Check structural invariants; used by debug assertions and tests.
    ///
    /// Invariants: link endpoints exist; fake nodes have no outgoing
    /// links, exactly one announcement, and a valid forwarding address;
    /// real nodes carry no fake attributes.
    pub fn validate(&self) -> Result<(), TopologyError> {
        for (&id, node) in &self.nodes {
            for l in &node.links {
                if !self.nodes.contains_key(&l.to) {
                    return Err(TopologyError::UnknownEndpoint { from: id, to: l.to });
                }
            }
            if id.is_fake() {
                let attrs = node.fake.as_ref().ok_or(TopologyError::KindMismatch(id))?;
                if !node.links.is_empty() {
                    return Err(TopologyError::KindMismatch(id));
                }
                if node.prefixes.len() != 1 {
                    return Err(TopologyError::KindMismatch(id));
                }
                if !self.has_link(attrs.attach, attrs.fw.router) {
                    return Err(TopologyError::InvalidForwardingAddress {
                        fake: id,
                        attach: attrs.attach,
                    });
                }
            } else if node.fake.is_some() {
                return Err(TopologyError::KindMismatch(id));
            }
        }
        Ok(())
    }

    /// Render the topology in Graphviz dot format (fake nodes dashed).
    pub fn to_dot(&self) -> String {
        use std::fmt::Write as _;
        let mut s = String::from("digraph igp {\n");
        for (&id, node) in &self.nodes {
            if id.is_fake() {
                let _ = writeln!(s, "  \"{id}\" [style=dashed];");
            }
            for (p, m) in &node.prefixes {
                let _ = writeln!(s, "  \"{id}\" -> \"{p}\" [label=\"{m}\", style=dotted];");
            }
            for l in &node.links {
                let _ = writeln!(s, "  \"{id}\" -> \"{}\" [label=\"{}\"];", l.to, l.metric);
            }
        }
        s.push_str("}\n");
        s
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn r(n: u32) -> RouterId {
        RouterId(n)
    }

    fn two_routers() -> Topology {
        let mut t = Topology::new();
        t.add_router(r(1));
        t.add_router(r(2));
        t.add_link_sym(r(1), r(2), Metric(10)).unwrap();
        t
    }

    #[test]
    fn links_are_directed_and_unique() {
        let mut t = two_routers();
        assert_eq!(t.link_metric(r(1), r(2)), Some(Metric(10)));
        assert_eq!(t.link_metric(r(2), r(1)), Some(Metric(10)));
        assert!(matches!(
            t.add_link(r(1), r(2), Metric(5)),
            Err(TopologyError::DuplicateLink { .. })
        ));
        t.set_metric(r(1), r(2), Metric(3)).unwrap();
        assert_eq!(t.link_metric(r(1), r(2)), Some(Metric(3)));
        assert_eq!(t.link_metric(r(2), r(1)), Some(Metric(10)));
        assert!(t.remove_link(r(1), r(2)));
        assert!(!t.remove_link(r(1), r(2)));
        assert!(t.has_link(r(2), r(1)));
    }

    #[test]
    fn link_to_unknown_endpoint_is_rejected() {
        let mut t = Topology::new();
        t.add_router(r(1));
        assert!(matches!(
            t.add_link(r(1), r(9), Metric(1)),
            Err(TopologyError::UnknownEndpoint { .. })
        ));
    }

    #[test]
    fn prefix_announcements_replace_and_withdraw() {
        let mut t = two_routers();
        let p = Prefix::net24(1);
        t.announce_prefix(r(2), p, Metric(0)).unwrap();
        t.announce_prefix(r(2), p, Metric(5)).unwrap();
        assert_eq!(t.prefixes_at(r(2)), &[(p, Metric(5))]);
        assert!(t.withdraw_prefix(r(2), p));
        assert!(!t.withdraw_prefix(r(2), p));
        assert!(t.all_prefixes().is_empty());
    }

    #[test]
    fn fake_node_lifecycle() {
        let mut t = two_routers();
        let p = Prefix::net24(1);
        let f = RouterId::fake(0);
        let attrs = FakeAttrs {
            attach: r(1),
            attach_metric: Metric(1),
            prefix: p,
            prefix_metric: Metric(1),
            fw: FwAddr::secondary(r(2), 1),
        };
        t.add_fake_node(f, attrs).unwrap();
        assert_eq!(t.fake_count(), 1);
        assert_eq!(t.link_metric(r(1), f), Some(Metric(1)));
        assert_eq!(t.fake_attrs(f).unwrap().cost_at_attach(), Metric(2));
        t.validate().unwrap();

        let stripped = t.without_fakes();
        assert_eq!(stripped.fake_count(), 0);
        assert!(!stripped.has_link(r(1), f));
        stripped.validate().unwrap();

        assert!(t.remove_fake_node(f));
        assert!(!t.remove_fake_node(f));
        assert!(!t.has_link(r(1), f));
        t.validate().unwrap();
    }

    #[test]
    fn fake_node_needs_valid_forwarding_address() {
        let mut t = two_routers();
        t.add_router(r(3)); // not a neighbor of r1
        let attrs = FakeAttrs {
            attach: r(1),
            attach_metric: Metric(1),
            prefix: Prefix::net24(1),
            prefix_metric: Metric(1),
            fw: FwAddr::primary(r(3)),
        };
        assert!(matches!(
            t.add_fake_node(RouterId::fake(0), attrs),
            Err(TopologyError::InvalidForwardingAddress { .. })
        ));
    }

    #[test]
    fn fake_id_range_enforced() {
        let mut t = two_routers();
        let attrs = FakeAttrs {
            attach: r(1),
            attach_metric: Metric(1),
            prefix: Prefix::net24(1),
            prefix_metric: Metric(1),
            fw: FwAddr::primary(r(2)),
        };
        assert!(matches!(
            t.add_fake_node(r(5), attrs),
            Err(TopologyError::KindMismatch(_))
        ));
    }

    #[test]
    fn dot_rendering_mentions_every_node() {
        let mut t = two_routers();
        t.announce_prefix(r(2), Prefix::net24(1), Metric(0))
            .unwrap();
        let dot = t.to_dot();
        assert!(dot.contains("\"r1\" -> \"r2\""));
        assert!(dot.contains("10.0.1.0/24"));
    }
}
