//! Routing tables, FIB diffs, and forwarding DAGs.
//!
//! [`RouteTable`] is what SPF produces for one router and what gets
//! downloaded into the data-plane FIB. [`ForwardingDag`] is the
//! network-wide per-destination view (who forwards to whom) used by the
//! Fibbing controller both as the *requirement* language and for
//! verification.

use crate::types::{FwAddr, Metric, Prefix, RouterId};
use std::collections::{BTreeMap, BTreeSet};
use std::fmt;

/// One route: cost, ECMP next-hop set (by forwarding address), and
/// whether the destination is locally attached.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Route {
    /// Total cost to the destination.
    pub dist: Metric,
    /// Sorted, deduplicated ECMP next-hop addresses. Empty for local
    /// routes.
    pub nexthops: Vec<FwAddr>,
    /// `true` if the prefix is attached to this router.
    pub local: bool,
}

impl Route {
    /// Fraction of traffic sent to each distinct next-hop *router*
    /// (addresses of the same router aggregated), assuming uniform
    /// hashing over the next-hop addresses.
    pub fn split_by_router(&self) -> BTreeMap<RouterId, f64> {
        let mut out = BTreeMap::new();
        let n = self.nexthops.len();
        if n == 0 {
            return out;
        }
        let share = 1.0 / n as f64;
        for nh in &self.nexthops {
            *out.entry(nh.router).or_insert(0.0) += share;
        }
        out
    }
}

/// All routes of one router.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct RouteTable {
    /// The router owning this table.
    pub source: RouterId,
    /// Per-prefix routes.
    pub routes: BTreeMap<Prefix, Route>,
}

impl RouteTable {
    /// An empty table for `source`.
    pub fn empty(source: RouterId) -> Self {
        RouteTable {
            source,
            routes: BTreeMap::new(),
        }
    }

    /// The route toward `prefix`, if any.
    pub fn route(&self, prefix: Prefix) -> Option<&Route> {
        self.routes.get(&prefix)
    }

    /// Next-hop addresses toward `prefix` (empty slice if none/local).
    pub fn nexthops(&self, prefix: Prefix) -> &[FwAddr] {
        self.routes
            .get(&prefix)
            .map(|r| r.nexthops.as_slice())
            .unwrap_or(&[])
    }
}

/// A single difference between two route tables.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum RouteChange {
    /// A prefix gained a route.
    Added(Prefix, Route),
    /// A prefix's route changed (cost or next-hop set).
    Modified {
        /// Affected prefix.
        prefix: Prefix,
        /// Previous route.
        old: Route,
        /// New route.
        new: Route,
    },
    /// A prefix lost its route.
    Removed(Prefix, Route),
}

impl RouteChange {
    /// The prefix this change concerns.
    pub fn prefix(&self) -> Prefix {
        match self {
            RouteChange::Added(p, _) => *p,
            RouteChange::Modified { prefix, .. } => *prefix,
            RouteChange::Removed(p, _) => *p,
        }
    }
}

/// Compute the ordered diff `old → new`.
pub fn diff(old: &RouteTable, new: &RouteTable) -> Vec<RouteChange> {
    let mut changes = Vec::new();
    for (p, r) in &new.routes {
        match old.routes.get(p) {
            None => changes.push(RouteChange::Added(*p, r.clone())),
            Some(prev) if prev != r => changes.push(RouteChange::Modified {
                prefix: *p,
                old: prev.clone(),
                new: r.clone(),
            }),
            Some(_) => {}
        }
    }
    for (p, r) in &old.routes {
        if !new.routes.contains_key(p) {
            changes.push(RouteChange::Removed(*p, r.clone()));
        }
    }
    changes
}

/// Network-wide forwarding state for one prefix: every router's ECMP
/// next-hop addresses. Routers where the prefix is local map to an
/// empty set.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct ForwardingDag {
    /// The destination prefix.
    pub prefix: Prefix,
    /// Per-router next-hop addresses (empty = local delivery).
    pub nexthops: BTreeMap<RouterId, Vec<FwAddr>>,
}

impl ForwardingDag {
    /// Build the DAG for `prefix` from a set of route tables.
    pub fn from_tables<'a>(
        prefix: Prefix,
        tables: impl IntoIterator<Item = &'a RouteTable>,
    ) -> ForwardingDag {
        let mut nexthops = BTreeMap::new();
        for t in tables {
            if let Some(route) = t.routes.get(&prefix) {
                nexthops.insert(t.source, route.nexthops.clone());
            }
        }
        ForwardingDag { prefix, nexthops }
    }

    /// Build the DAG for `prefix` from single-prefix routes (the
    /// output of [`crate::spf::prefix_routes`]). Local routes become
    /// empty next-hop sets, i.e. sinks. Identical to
    /// [`ForwardingDag::from_tables`] over full tables, without paying
    /// a per-router SPF.
    pub fn from_prefix_routes(prefix: Prefix, routes: &BTreeMap<RouterId, Route>) -> ForwardingDag {
        ForwardingDag {
            prefix,
            nexthops: routes
                .iter()
                .map(|(r, route)| (*r, route.nexthops.clone()))
                .collect(),
        }
    }

    /// Routers that deliver locally (sinks of the DAG).
    pub fn sinks(&self) -> Vec<RouterId> {
        self.nexthops
            .iter()
            .filter(|(_, h)| h.is_empty())
            .map(|(r, _)| *r)
            .collect()
    }

    /// Verify the forwarding graph is loop-free: following next-hop
    /// *routers* from any source must reach a sink without revisiting a
    /// node. Returns the first loop found as a witness, or `None`.
    pub fn find_loop(&self) -> Option<Vec<RouterId>> {
        #[derive(Clone, Copy, PartialEq)]
        enum Mark {
            White,
            Grey,
            Black,
        }
        let mut marks: BTreeMap<RouterId, Mark> =
            self.nexthops.keys().map(|r| (*r, Mark::White)).collect();

        fn visit(
            dag: &ForwardingDag,
            node: RouterId,
            marks: &mut BTreeMap<RouterId, Mark>,
            stack: &mut Vec<RouterId>,
        ) -> Option<Vec<RouterId>> {
            match marks.get(&node) {
                Some(Mark::Black) => return None,
                Some(Mark::Grey) => {
                    // Loop: slice the stack from the first occurrence.
                    let pos = stack.iter().position(|r| *r == node).unwrap_or(0);
                    let mut cycle = stack[pos..].to_vec();
                    cycle.push(node);
                    return Some(cycle);
                }
                Some(Mark::White) => {}
                // A next-hop router with no entry (e.g. the forwarding
                // address owner has no route because it is the sink's
                // neighbor): treat as terminating — the data plane
                // would drop or deliver there, not loop.
                None => return None,
            }
            marks.insert(node, Mark::Grey);
            stack.push(node);
            let hops: Vec<RouterId> = dag
                .nexthops
                .get(&node)
                .map(|v| v.iter().map(|a| a.router).collect())
                .unwrap_or_default();
            for nh in hops {
                if let Some(cycle) = visit(dag, nh, marks, stack) {
                    return Some(cycle);
                }
            }
            stack.pop();
            marks.insert(node, Mark::Black);
            None
        }

        let sources: Vec<RouterId> = self.nexthops.keys().copied().collect();
        for s in sources {
            let mut stack = Vec::new();
            if let Some(cycle) = visit(self, s, &mut marks, &mut stack) {
                return Some(cycle);
            }
        }
        None
    }

    /// The set of directed router edges `(from, to)` used by the DAG,
    /// with the fraction of `from`'s traffic crossing each (uniform
    /// hashing over next-hop addresses).
    pub fn edge_fractions(&self) -> BTreeMap<(RouterId, RouterId), f64> {
        let mut out = BTreeMap::new();
        for (from, hops) in &self.nexthops {
            if hops.is_empty() {
                continue;
            }
            let share = 1.0 / hops.len() as f64;
            for h in hops {
                *out.entry((*from, h.router)).or_insert(0.0) += share;
            }
        }
        out
    }

    /// Routers whose next-hop set is non-empty (transit/forwarding).
    pub fn forwarding_routers(&self) -> BTreeSet<RouterId> {
        self.nexthops
            .iter()
            .filter(|(_, h)| !h.is_empty())
            .map(|(r, _)| *r)
            .collect()
    }
}

impl fmt::Display for ForwardingDag {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        writeln!(f, "dag for {}:", self.prefix)?;
        for (r, hops) in &self.nexthops {
            if hops.is_empty() {
                writeln!(f, "  {r}: local")?;
            } else {
                let hs: Vec<String> = hops.iter().map(|h| h.to_string()).collect();
                writeln!(f, "  {r}: [{}]", hs.join(", "))?;
            }
        }
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn r(n: u32) -> RouterId {
        RouterId(n)
    }

    fn route(dist: u32, hops: &[(u32, u16)]) -> Route {
        Route {
            dist: Metric(dist),
            nexthops: hops
                .iter()
                .map(|&(r_, a)| FwAddr {
                    router: RouterId(r_),
                    addr: a,
                })
                .collect(),
            local: false,
        }
    }

    #[test]
    fn split_by_router_aggregates_addresses() {
        let rt = route(3, &[(2, 0), (5, 1), (5, 2)]);
        let split = rt.split_by_router();
        assert!((split[&r(2)] - 1.0 / 3.0).abs() < 1e-12);
        assert!((split[&r(5)] - 2.0 / 3.0).abs() < 1e-12);
    }

    #[test]
    fn diff_reports_add_modify_remove() {
        let p1 = Prefix::net24(1);
        let p2 = Prefix::net24(2);
        let p3 = Prefix::net24(3);
        let mut old = RouteTable::empty(r(1));
        old.routes.insert(p1, route(2, &[(2, 0)]));
        old.routes.insert(p2, route(4, &[(3, 0)]));
        let mut new = RouteTable::empty(r(1));
        new.routes.insert(p1, route(2, &[(2, 0), (3, 0)]));
        new.routes.insert(p3, route(9, &[(2, 0)]));
        let d = diff(&old, &new);
        assert_eq!(d.len(), 3);
        assert!(d
            .iter()
            .any(|c| matches!(c, RouteChange::Modified { prefix, .. } if *prefix == p1)));
        assert!(d
            .iter()
            .any(|c| matches!(c, RouteChange::Added(p, _) if *p == p3)));
        assert!(d
            .iter()
            .any(|c| matches!(c, RouteChange::Removed(p, _) if *p == p2)));
    }

    #[test]
    fn dag_detects_loops() {
        let p = Prefix::net24(1);
        let mut nexthops = BTreeMap::new();
        nexthops.insert(r(1), vec![FwAddr::primary(r(2))]);
        nexthops.insert(r(2), vec![FwAddr::primary(r(1))]);
        nexthops.insert(r(3), vec![]);
        let dag = ForwardingDag {
            prefix: p,
            nexthops,
        };
        let cycle = dag.find_loop().expect("loop expected");
        assert!(cycle.len() >= 2);
    }

    #[test]
    fn dag_without_loops_passes() {
        let p = Prefix::net24(1);
        let mut nexthops = BTreeMap::new();
        nexthops.insert(r(1), vec![FwAddr::primary(r(2)), FwAddr::primary(r(3))]);
        nexthops.insert(r(2), vec![FwAddr::primary(r(3))]);
        nexthops.insert(r(3), vec![]);
        let dag = ForwardingDag {
            prefix: p,
            nexthops,
        };
        assert_eq!(dag.find_loop(), None);
        assert_eq!(dag.sinks(), vec![r(3)]);
        let fr = dag.edge_fractions();
        assert!((fr[&(r(1), r(2))] - 0.5).abs() < 1e-12);
        assert!((fr[&(r(2), r(3))] - 1.0).abs() < 1e-12);
    }

    #[test]
    fn dag_display_is_readable() {
        let p = Prefix::net24(1);
        let mut nexthops = BTreeMap::new();
        nexthops.insert(r(1), vec![FwAddr::secondary(r(2), 1)]);
        nexthops.insert(r(2), vec![]);
        let dag = ForwardingDag {
            prefix: p,
            nexthops,
        };
        let s = dag.to_string();
        assert!(s.contains("r1: [r2#1]"));
        assert!(s.contains("r2: local"));
    }
}
