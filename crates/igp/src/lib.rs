//! # fib-igp — a link-state IGP substrate
//!
//! This crate implements the routing substrate the Fibbing system lies
//! to: an OSPF-like link-state interior gateway protocol with
//!
//! * LSAs ([`lsa`]) and a freshness-ruled database ([`lsdb`]),
//! * a byte-exact wire codec with Fletcher-16 checksums ([`wire`]),
//! * a sans-IO protocol speaker per router — neighbor FSM, database
//!   exchange, reliable flooding with retransmissions, origination,
//!   and SPF scheduling ([`instance`]),
//! * ECMP shortest-path computation with partial-SPF caching ([`spf`]),
//! * route tables, FIB diffs, and per-destination forwarding DAGs
//!   ([`rib`]),
//! * topology modelling including Fibbing's fake nodes ([`topology`]),
//! * and a tiny in-crate event harness for protocol-level tests and
//!   benchmarks ([`harness`]).
//!
//! ## Fake nodes
//!
//! Fibbing steers traffic by injecting *lies*: fake nodes attached to
//! real routers announcing a destination prefix at a chosen cost, each
//! carrying a forwarding address that the attachment router resolves
//! the fake next-hop to. Lies ride ordinary LSAs ([`lsa::LsaBody::Fake`])
//! through ordinary flooding — the controller is just another protocol
//! speaker ([`instance::Instance::inject_fake`]).
//!
//! Two properties of this crate are load-bearing for the reproduction:
//!
//! 1. **FIB entries deduplicate by forwarding address, not by neighbor
//!    router** ([`types::FwAddr`]), which is how `k` lies pointing at
//!    distinct addresses of one neighbor realise a `k/n` traffic share.
//! 2. **Fake nodes never affect real-node distances** (they have no
//!    outgoing links), so lie churn triggers only the cheap partial
//!    SPF route phase ([`spf::SpfEngine`]) — Fibbing's low control
//!    plane overhead, measured in the paper's Section 2 comparison.
//!
//! ## Example
//!
//! ```
//! use fib_igp::prelude::*;
//!
//! // Build the topology by hand and compute routes directly.
//! let mut topo = Topology::new();
//! let (a, b, c) = (RouterId(1), RouterId(2), RouterId(3));
//! topo.add_router(a);
//! topo.add_router(b);
//! topo.add_router(c);
//! topo.add_link_sym(a, b, Metric(1)).unwrap();
//! topo.add_link_sym(b, c, Metric(1)).unwrap();
//! topo.add_link_sym(a, c, Metric(2)).unwrap();
//! let blue = Prefix::net24(1);
//! topo.announce_prefix(c, blue, Metric::ZERO).unwrap();
//!
//! // a reaches the prefix at cost 2 with two equal-cost paths.
//! let table = compute_routes(&topo, a);
//! let route = table.route(blue).unwrap();
//! assert_eq!(route.dist, Metric(2));
//! assert_eq!(route.nexthops.len(), 2);
//! ```

#![warn(missing_docs)]
#![forbid(unsafe_code)]

pub mod builders;
pub mod error;
pub mod harness;
pub mod instance;
pub mod loadmodel;
pub mod lsa;
pub mod lsdb;
pub mod rib;
pub mod spf;
pub mod time;
pub mod topology;
pub mod types;
pub mod wire;

/// Convenient re-exports of the most used items.
pub mod prelude {
    pub use crate::error::{InstanceError, TopologyError, WireError};
    pub use crate::instance::{Config, Instance, NbrState, Output};
    pub use crate::loadmodel::{max_utilization, spread, Demand, LoadModelError};
    pub use crate::lsa::{Lsa, LsaBody, LsaHeader, LsaKey, LsaKind};
    pub use crate::lsdb::{Install, Lsdb};
    pub use crate::rib::{diff, ForwardingDag, Route, RouteChange, RouteTable};
    pub use crate::spf::{
        compute_all_routes, compute_routes, enumerate_paths, prefix_routes, shortest_paths,
        SpfEngine,
    };
    pub use crate::time::{Dur, Timestamp};
    pub use crate::topology::{FakeAttrs, TopoLink, Topology};
    pub use crate::types::{FwAddr, IfaceId, Metric, Prefix, RouterId, SeqNum};
}
