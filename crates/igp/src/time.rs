//! Simulation time: nanosecond timestamps and durations.
//!
//! The whole stack shares this clock. Timestamps are nanoseconds since
//! simulation start; arithmetic is checked in debug builds and
//! saturating in release (time never wraps).

use std::fmt;
use std::ops::{Add, AddAssign, Sub};

/// A point in simulated time (nanoseconds since simulation start).
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Default)]
pub struct Timestamp(pub u64);

/// A span of simulated time (nanoseconds).
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Default)]
pub struct Dur(pub u64);

impl Timestamp {
    /// The simulation epoch.
    pub const ZERO: Timestamp = Timestamp(0);
    /// The far future (used as "no deadline").
    pub const NEVER: Timestamp = Timestamp(u64::MAX);

    /// Construct from whole seconds.
    pub const fn from_secs(s: u64) -> Timestamp {
        Timestamp(s * 1_000_000_000)
    }

    /// Construct from milliseconds.
    pub const fn from_millis(ms: u64) -> Timestamp {
        Timestamp(ms * 1_000_000)
    }

    /// Whole seconds since the epoch (truncating).
    pub const fn as_secs(self) -> u64 {
        self.0 / 1_000_000_000
    }

    /// Seconds since the epoch as a float.
    pub fn as_secs_f64(self) -> f64 {
        self.0 as f64 / 1e9
    }

    /// Saturating difference `self - earlier`.
    pub fn since(self, earlier: Timestamp) -> Dur {
        Dur(self.0.saturating_sub(earlier.0))
    }
}

impl Dur {
    /// Zero-length duration.
    pub const ZERO: Dur = Dur(0);

    /// Construct from whole seconds.
    pub const fn from_secs(s: u64) -> Dur {
        Dur(s * 1_000_000_000)
    }

    /// Construct from milliseconds.
    pub const fn from_millis(ms: u64) -> Dur {
        Dur(ms * 1_000_000)
    }

    /// Construct from microseconds.
    pub const fn from_micros(us: u64) -> Dur {
        Dur(us * 1_000)
    }

    /// Construct from a float number of seconds (clamped at 0).
    pub fn from_secs_f64(s: f64) -> Dur {
        Dur((s.max(0.0) * 1e9).round() as u64)
    }

    /// Length in seconds as a float.
    pub fn as_secs_f64(self) -> f64 {
        self.0 as f64 / 1e9
    }

    /// Saturating scalar multiplication.
    // Named like the sibling saturating helpers rather than the `Mul`
    // operator, which would imply wrapping semantics.
    #[allow(clippy::should_implement_trait)]
    pub fn mul(self, k: u64) -> Dur {
        Dur(self.0.saturating_mul(k))
    }
}

impl Add<Dur> for Timestamp {
    type Output = Timestamp;
    fn add(self, rhs: Dur) -> Timestamp {
        Timestamp(self.0.saturating_add(rhs.0))
    }
}

impl AddAssign<Dur> for Timestamp {
    fn add_assign(&mut self, rhs: Dur) {
        self.0 = self.0.saturating_add(rhs.0);
    }
}

impl Sub<Timestamp> for Timestamp {
    type Output = Dur;
    fn sub(self, rhs: Timestamp) -> Dur {
        Dur(self.0.saturating_sub(rhs.0))
    }
}

impl Add<Dur> for Dur {
    type Output = Dur;
    fn add(self, rhs: Dur) -> Dur {
        Dur(self.0.saturating_add(rhs.0))
    }
}

impl fmt::Display for Timestamp {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "t={:.6}s", self.as_secs_f64())
    }
}

impl fmt::Display for Dur {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{:.6}s", self.as_secs_f64())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn construction_and_accessors() {
        assert_eq!(Timestamp::from_secs(2).0, 2_000_000_000);
        assert_eq!(Timestamp::from_millis(1500).as_secs(), 1);
        assert!((Timestamp::from_millis(1500).as_secs_f64() - 1.5).abs() < 1e-12);
        assert_eq!(Dur::from_secs(1), Dur::from_millis(1000));
        assert_eq!(Dur::from_millis(1), Dur::from_micros(1000));
        assert_eq!(Dur::from_secs_f64(0.25), Dur(250_000_000));
        assert_eq!(Dur::from_secs_f64(-3.0), Dur::ZERO);
    }

    #[test]
    fn arithmetic_saturates() {
        let t = Timestamp::from_secs(10);
        assert_eq!(t + Dur::from_secs(5), Timestamp::from_secs(15));
        assert_eq!(t - Timestamp::from_secs(4), Dur::from_secs(6));
        assert_eq!(Timestamp::from_secs(4) - t, Dur::ZERO);
        assert_eq!(Timestamp::NEVER + Dur::from_secs(1), Timestamp::NEVER);
        assert_eq!(t.since(Timestamp::ZERO), Dur::from_secs(10));
        assert_eq!(Dur::from_secs(1).mul(3), Dur::from_secs(3));
    }

    #[test]
    fn ordering_and_display() {
        assert!(Timestamp::from_secs(1) < Timestamp::from_secs(2));
        assert!(Timestamp::NEVER > Timestamp::from_secs(u32::MAX as u64));
        assert_eq!(format!("{}", Timestamp::from_millis(1500)), "t=1.500000s");
        assert_eq!(format!("{}", Dur::from_millis(250)), "0.250000s");
    }
}
