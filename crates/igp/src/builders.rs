//! Topology builders for tests, benchmarks, and experiments.
//!
//! All builders produce plain [`Topology`] values (no protocol state).
//! Random builders take explicit RNGs so every experiment is seedable
//! and reproducible.

use crate::topology::Topology;
use crate::types::{Metric, Prefix, RouterId};
use rand::seq::SliceRandom;
use rand::Rng;

/// A line of `n` routers `r1 - r2 - … - rn` with unit metrics.
pub fn line(n: u32) -> Topology {
    let mut t = Topology::new();
    for i in 1..=n {
        t.add_router(RouterId(i));
    }
    for i in 1..n {
        t.add_link_sym(RouterId(i), RouterId(i + 1), Metric(1))
            .expect("line link");
    }
    t
}

/// A ring of `n >= 3` routers with unit metrics.
pub fn ring(n: u32) -> Topology {
    assert!(n >= 3, "a ring needs at least 3 routers");
    let mut t = line(n);
    t.add_link_sym(RouterId(n), RouterId(1), Metric(1))
        .expect("ring closure");
    t
}

/// A `rows × cols` grid with unit metrics. Router ids are
/// `row * cols + col + 1`.
pub fn grid(rows: u32, cols: u32) -> Topology {
    let mut t = Topology::new();
    let id = |r: u32, c: u32| RouterId(r * cols + c + 1);
    for r in 0..rows {
        for c in 0..cols {
            t.add_router(id(r, c));
        }
    }
    for r in 0..rows {
        for c in 0..cols {
            if c + 1 < cols {
                t.add_link_sym(id(r, c), id(r, c + 1), Metric(1)).unwrap();
            }
            if r + 1 < rows {
                t.add_link_sym(id(r, c), id(r + 1, c), Metric(1)).unwrap();
            }
        }
    }
    t
}

/// A full mesh over `n` routers with unit metrics.
pub fn full_mesh(n: u32) -> Topology {
    let mut t = Topology::new();
    for i in 1..=n {
        t.add_router(RouterId(i));
    }
    for i in 1..=n {
        for j in i + 1..=n {
            t.add_link_sym(RouterId(i), RouterId(j), Metric(1)).unwrap();
        }
    }
    t
}

/// A random connected graph: a random spanning tree plus `extra_edges`
/// random chords, metrics uniform in `1..=max_metric`.
pub fn random_connected<R: Rng>(
    rng: &mut R,
    n: u32,
    extra_edges: u32,
    max_metric: u32,
) -> Topology {
    assert!(n >= 2);
    let mut t = Topology::new();
    for i in 1..=n {
        t.add_router(RouterId(i));
    }
    // Random spanning tree: shuffle, then attach each node to a random
    // earlier node.
    let mut order: Vec<u32> = (1..=n).collect();
    order.shuffle(rng);
    for idx in 1..order.len() {
        let child = order[idx];
        let parent = order[rng.gen_range(0..idx)];
        let m = Metric(rng.gen_range(1..=max_metric));
        t.add_link_sym(RouterId(child), RouterId(parent), m)
            .expect("tree link");
    }
    // Chords.
    let mut added = 0;
    let mut attempts = 0;
    while added < extra_edges && attempts < extra_edges * 20 {
        attempts += 1;
        let a = RouterId(rng.gen_range(1..=n));
        let b = RouterId(rng.gen_range(1..=n));
        if a == b || t.has_link(a, b) {
            continue;
        }
        let m = Metric(rng.gen_range(1..=max_metric));
        t.add_link_sym(a, b, m).expect("chord");
        added += 1;
    }
    t
}

/// Attach one distinct /24 prefix (`Prefix::net24(i)`) to each of the
/// given routers at metric 0. Returns the prefixes in order.
pub fn attach_prefixes(t: &mut Topology, routers: &[RouterId]) -> Vec<Prefix> {
    let mut out = Vec::with_capacity(routers.len());
    for (i, r) in routers.iter().enumerate() {
        let p = Prefix::net24((i + 1) as u8);
        t.announce_prefix(*r, p, Metric::ZERO)
            .expect("attach prefix");
        out.push(p);
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::spf::shortest_paths;
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    #[test]
    fn line_and_ring_shapes() {
        let l = line(5);
        assert_eq!(l.router_count(), 5);
        assert_eq!(l.all_links().count(), 8); // 4 symmetric links
        let r = ring(5);
        assert_eq!(r.all_links().count(), 10);
        let sp = shortest_paths(&r, RouterId(1));
        // In a 5-ring the far node is 2 hops either way → ECMP.
        assert_eq!(sp.dist_to(RouterId(3)), Metric(2));
    }

    #[test]
    fn grid_shape() {
        let g = grid(3, 4);
        assert_eq!(g.router_count(), 12);
        // Edges: 3*3 horizontal + 2*4 vertical = 17 symmetric = 34 directed.
        assert_eq!(g.all_links().count(), 34);
        g.validate().unwrap();
    }

    #[test]
    fn mesh_shape() {
        let m = full_mesh(4);
        assert_eq!(m.all_links().count(), 12);
        let sp = shortest_paths(&m, RouterId(1));
        assert_eq!(sp.dist_to(RouterId(4)), Metric(1));
    }

    #[test]
    fn random_graph_is_connected_and_deterministic() {
        let mut rng = StdRng::seed_from_u64(42);
        let t = random_connected(&mut rng, 30, 20, 10);
        t.validate().unwrap();
        let sp = shortest_paths(&t, RouterId(1));
        for r in t.routers() {
            assert!(sp.dist_to(r).is_finite(), "router {r} unreachable");
        }
        // Determinism: same seed, same graph.
        let mut rng2 = StdRng::seed_from_u64(42);
        let t2 = random_connected(&mut rng2, 30, 20, 10);
        let links1: Vec<_> = t.all_links().collect();
        let links2: Vec<_> = t2.all_links().collect();
        assert_eq!(links1, links2);
    }

    #[test]
    fn prefix_attachment_helper() {
        let mut t = line(3);
        let ps = attach_prefixes(&mut t, &[RouterId(1), RouterId(3)]);
        assert_eq!(ps.len(), 2);
        assert_eq!(t.prefixes_at(RouterId(3)), &[(ps[1], Metric::ZERO)]);
    }
}
