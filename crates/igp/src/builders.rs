//! Topology builders for tests, benchmarks, and experiments.
//!
//! All builders produce plain [`Topology`] values (no protocol state).
//! Random builders take explicit RNGs so every experiment is seedable
//! and reproducible.

use crate::topology::Topology;
use crate::types::{Metric, Prefix, RouterId};
use rand::seq::SliceRandom;
use rand::Rng;

/// A line of `n` routers `r1 - r2 - … - rn` with unit metrics.
pub fn line(n: u32) -> Topology {
    let mut t = Topology::new();
    for i in 1..=n {
        t.add_router(RouterId(i));
    }
    for i in 1..n {
        t.add_link_sym(RouterId(i), RouterId(i + 1), Metric(1))
            .expect("line link");
    }
    t
}

/// A ring of `n >= 3` routers with unit metrics.
pub fn ring(n: u32) -> Topology {
    assert!(n >= 3, "a ring needs at least 3 routers");
    let mut t = line(n);
    t.add_link_sym(RouterId(n), RouterId(1), Metric(1))
        .expect("ring closure");
    t
}

/// A `rows × cols` grid with unit metrics. Router ids are
/// `row * cols + col + 1`.
pub fn grid(rows: u32, cols: u32) -> Topology {
    let mut t = Topology::new();
    let id = |r: u32, c: u32| RouterId(r * cols + c + 1);
    for r in 0..rows {
        for c in 0..cols {
            t.add_router(id(r, c));
        }
    }
    for r in 0..rows {
        for c in 0..cols {
            if c + 1 < cols {
                t.add_link_sym(id(r, c), id(r, c + 1), Metric(1)).unwrap();
            }
            if r + 1 < rows {
                t.add_link_sym(id(r, c), id(r + 1, c), Metric(1)).unwrap();
            }
        }
    }
    t
}

/// A full mesh over `n` routers with unit metrics.
pub fn full_mesh(n: u32) -> Topology {
    let mut t = Topology::new();
    for i in 1..=n {
        t.add_router(RouterId(i));
    }
    for i in 1..=n {
        for j in i + 1..=n {
            t.add_link_sym(RouterId(i), RouterId(j), Metric(1)).unwrap();
        }
    }
    t
}

/// A random connected graph: a random spanning tree plus `extra_edges`
/// random chords, metrics uniform in `1..=max_metric`.
pub fn random_connected<R: Rng>(
    rng: &mut R,
    n: u32,
    extra_edges: u32,
    max_metric: u32,
) -> Topology {
    assert!(n >= 2);
    let mut t = Topology::new();
    for i in 1..=n {
        t.add_router(RouterId(i));
    }
    // Random spanning tree: shuffle, then attach each node to a random
    // earlier node.
    let mut order: Vec<u32> = (1..=n).collect();
    order.shuffle(rng);
    for idx in 1..order.len() {
        let child = order[idx];
        let parent = order[rng.gen_range(0..idx)];
        let m = Metric(rng.gen_range(1..=max_metric));
        t.add_link_sym(RouterId(child), RouterId(parent), m)
            .expect("tree link");
    }
    // Chords.
    let mut added = 0;
    let mut attempts = 0;
    while added < extra_edges && attempts < extra_edges * 20 {
        attempts += 1;
        let a = RouterId(rng.gen_range(1..=n));
        let b = RouterId(rng.gen_range(1..=n));
        if a == b || t.has_link(a, b) {
            continue;
        }
        let m = Metric(rng.gen_range(1..=max_metric));
        t.add_link_sym(a, b, m).expect("chord");
        added += 1;
    }
    t
}

/// The paper's Fig. 1a topology (the canonical demo graph).
///
/// Routers `1..=7` are A, B, R1, R2, R3, R4, C in that order; the
/// "blue" destination prefix (`Prefix::net24(1)`) is announced at C.
/// Unlabeled weights in the figure are 1. This is the single source of
/// truth shared by the facade's demo module and the scenario engine.
pub fn paper_fig1() -> Topology {
    let (a, b, r1, r2, r3, r4, c) = (
        RouterId(1),
        RouterId(2),
        RouterId(3),
        RouterId(4),
        RouterId(5),
        RouterId(6),
        RouterId(7),
    );
    let mut t = Topology::new();
    for r in [a, b, r1, r2, r3, r4, c] {
        t.add_router(r);
    }
    for (x, y, w) in [
        (a, b, 1),
        (b, r2, 1),
        (r2, c, 1),
        (b, r3, 2),
        (r3, c, 1),
        (a, r1, 2),
        (r1, r4, 2),
        (r4, c, 2),
    ] {
        t.add_link_sym(x, y, Metric(w)).expect("fig 1a links");
    }
    t.announce_prefix(c, Prefix::net24(1), Metric::ZERO)
        .expect("C announces the blue prefix");
    t
}

/// A Waxman random graph, stitched to guarantee connectivity.
///
/// `n` routers are placed uniformly in the unit square; each pair is
/// linked with the classic Waxman probability
/// `alpha * exp(-d / (beta * L))` where `d` is Euclidean distance and
/// `L = sqrt(2)` the diameter. Link metrics grow with distance, from 1
/// up to `max_metric`. If the random pass leaves the graph
/// disconnected, the closest inter-component pairs are linked until it
/// is (deterministic given the RNG stream), so every returned topology
/// is connected.
pub fn waxman<R: Rng>(rng: &mut R, n: u32, alpha: f64, beta: f64, max_metric: u32) -> Topology {
    assert!(n >= 2, "a Waxman graph needs at least 2 routers");
    assert!(alpha > 0.0 && beta > 0.0, "waxman parameters must be > 0");
    let max_metric = max_metric.max(1);
    let pos: Vec<(f64, f64)> = (0..n)
        .map(|_| (rng.gen_range(0.0..1.0), rng.gen_range(0.0..1.0)))
        .collect();
    let dist = |i: usize, j: usize| -> f64 {
        let (xi, yi) = pos[i];
        let (xj, yj) = pos[j];
        ((xi - xj).powi(2) + (yi - yj).powi(2)).sqrt()
    };
    let l = 2f64.sqrt();
    let metric_of = |d: f64| Metric(1 + (d / l * (max_metric - 1) as f64).round() as u32);
    let mut t = Topology::new();
    for i in 1..=n {
        t.add_router(RouterId(i));
    }
    for i in 0..n as usize {
        for j in i + 1..n as usize {
            let d = dist(i, j);
            let p = (alpha * (-d / (beta * l)).exp()).clamp(0.0, 1.0);
            if rng.gen_range(0.0..1.0) < p {
                t.add_link_sym(RouterId(i as u32 + 1), RouterId(j as u32 + 1), metric_of(d))
                    .expect("waxman link");
            }
        }
    }
    // Stitch components: repeatedly link the closest pair spanning the
    // component of router 1 and the rest. Purely a function of the
    // graph built so far, so the result stays deterministic per seed.
    loop {
        let mut comp = vec![false; n as usize];
        let mut stack = vec![0usize];
        comp[0] = true;
        while let Some(i) = stack.pop() {
            for link in t.links(RouterId(i as u32 + 1)) {
                let j = (link.to.0 - 1) as usize;
                if !comp[j] {
                    comp[j] = true;
                    stack.push(j);
                }
            }
        }
        let mut best: Option<(usize, usize, f64)> = None;
        for i in 0..n as usize {
            if !comp[i] {
                continue;
            }
            for (j, reached) in comp.iter().enumerate() {
                if *reached {
                    continue;
                }
                let d = dist(i, j);
                if best.map(|(_, _, bd)| d < bd).unwrap_or(true) {
                    best = Some((i, j, d));
                }
            }
        }
        match best {
            Some((i, j, d)) => {
                t.add_link_sym(RouterId(i as u32 + 1), RouterId(j as u32 + 1), metric_of(d))
                    .expect("stitch link");
            }
            None => break, // all routers reachable from router 1
        }
    }
    t
}

/// A `k`-ary fat tree (`k` even, `k >= 2`): `(k/2)^2` core switches and
/// `k` pods of `k/2` aggregation plus `k/2` edge switches, all links
/// metric 1.
///
/// Router ids are assigned deterministically: cores first
/// (`1..=(k/2)^2`), then per pod the aggregation switches followed by
/// the edge switches. Aggregation switch `j` (0-based within its pod)
/// uplinks to cores `j*k/2 .. (j+1)*k/2`; every edge switch links to
/// every aggregation switch of its pod. Hosts are not modeled — attach
/// prefixes at edge switches to terminate traffic.
pub fn fat_tree(k: u32) -> Topology {
    assert!(k >= 2 && k % 2 == 0, "fat tree arity must be even and >= 2");
    let half = k / 2;
    let cores = half * half;
    let core_id = |c: u32| RouterId(1 + c);
    let agg_id = |pod: u32, j: u32| RouterId(1 + cores + pod * k + j);
    let edge_id = |pod: u32, j: u32| RouterId(1 + cores + pod * k + half + j);
    let mut t = Topology::new();
    for c in 0..cores {
        t.add_router(core_id(c));
    }
    for pod in 0..k {
        for j in 0..half {
            t.add_router(agg_id(pod, j));
            t.add_router(edge_id(pod, j));
        }
    }
    for pod in 0..k {
        for j in 0..half {
            for c in j * half..(j + 1) * half {
                t.add_link_sym(agg_id(pod, j), core_id(c), Metric(1))
                    .expect("uplink");
            }
            for e in 0..half {
                t.add_link_sym(edge_id(pod, e), agg_id(pod, j), Metric(1))
                    .expect("pod link");
            }
        }
    }
    t
}

/// Attach one distinct /24 prefix (`Prefix::net24(i)`) to each of the
/// given routers at metric 0. Returns the prefixes in order.
pub fn attach_prefixes(t: &mut Topology, routers: &[RouterId]) -> Vec<Prefix> {
    let mut out = Vec::with_capacity(routers.len());
    for (i, r) in routers.iter().enumerate() {
        let p = Prefix::net24((i + 1) as u8);
        t.announce_prefix(*r, p, Metric::ZERO)
            .expect("attach prefix");
        out.push(p);
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::spf::shortest_paths;
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    #[test]
    fn line_and_ring_shapes() {
        let l = line(5);
        assert_eq!(l.router_count(), 5);
        assert_eq!(l.all_links().count(), 8); // 4 symmetric links
        let r = ring(5);
        assert_eq!(r.all_links().count(), 10);
        let sp = shortest_paths(&r, RouterId(1));
        // In a 5-ring the far node is 2 hops either way → ECMP.
        assert_eq!(sp.dist_to(RouterId(3)), Metric(2));
    }

    #[test]
    fn grid_shape() {
        let g = grid(3, 4);
        assert_eq!(g.router_count(), 12);
        // Edges: 3*3 horizontal + 2*4 vertical = 17 symmetric = 34 directed.
        assert_eq!(g.all_links().count(), 34);
        g.validate().unwrap();
    }

    #[test]
    fn mesh_shape() {
        let m = full_mesh(4);
        assert_eq!(m.all_links().count(), 12);
        let sp = shortest_paths(&m, RouterId(1));
        assert_eq!(sp.dist_to(RouterId(4)), Metric(1));
    }

    #[test]
    fn random_graph_is_connected_and_deterministic() {
        let mut rng = StdRng::seed_from_u64(42);
        let t = random_connected(&mut rng, 30, 20, 10);
        t.validate().unwrap();
        let sp = shortest_paths(&t, RouterId(1));
        for r in t.routers() {
            assert!(sp.dist_to(r).is_finite(), "router {r} unreachable");
        }
        // Determinism: same seed, same graph.
        let mut rng2 = StdRng::seed_from_u64(42);
        let t2 = random_connected(&mut rng2, 30, 20, 10);
        let links1: Vec<_> = t.all_links().collect();
        let links2: Vec<_> = t2.all_links().collect();
        assert_eq!(links1, links2);
    }

    #[test]
    fn paper_fig1_matches_the_figure() {
        let t = paper_fig1();
        assert_eq!(t.router_count(), 7);
        assert_eq!(t.all_links().count(), 16); // 8 symmetric links
        t.validate().unwrap();
        // B (router 2) reaches blue at cost 2 via R2; the detour via
        // R3 costs 3 — the structure the whole demo rests on.
        let sp = shortest_paths(&t, RouterId(2));
        assert_eq!(sp.dist_to(RouterId(7)), Metric(2));
        assert_eq!(t.prefixes_at(RouterId(7)).len(), 1);
    }

    #[test]
    fn waxman_is_connected_and_deterministic() {
        for seed in [1u64, 7, 42] {
            let mut rng = StdRng::seed_from_u64(seed);
            let t = waxman(&mut rng, 20, 0.6, 0.3, 5);
            t.validate().unwrap();
            let sp = shortest_paths(&t, RouterId(1));
            for r in t.routers() {
                assert!(sp.dist_to(r).is_finite(), "router {r} unreachable");
            }
            let mut rng2 = StdRng::seed_from_u64(seed);
            let t2 = waxman(&mut rng2, 20, 0.6, 0.3, 5);
            assert_eq!(
                t.all_links().collect::<Vec<_>>(),
                t2.all_links().collect::<Vec<_>>()
            );
        }
    }

    #[test]
    fn waxman_sparse_still_connected() {
        // Tiny alpha: almost no random edges, connectivity comes from
        // the stitching pass alone.
        let mut rng = StdRng::seed_from_u64(9);
        let t = waxman(&mut rng, 12, 0.01, 0.05, 3);
        let sp = shortest_paths(&t, RouterId(1));
        for r in t.routers() {
            assert!(sp.dist_to(r).is_finite());
        }
    }

    #[test]
    fn fat_tree_shape() {
        let t = fat_tree(4);
        // (k/2)^2 = 4 cores + 4 pods * (2 agg + 2 edge) = 20 routers.
        assert_eq!(t.router_count(), 20);
        // Per pod: 2 agg * 2 uplinks + 2 edge * 2 agg = 8 symmetric
        // links; 4 pods → 32 symmetric = 64 directed.
        assert_eq!(t.all_links().count(), 64);
        t.validate().unwrap();
        let sp = shortest_paths(&t, RouterId(1));
        for r in t.routers() {
            assert!(sp.dist_to(r).is_finite(), "router {r} unreachable");
        }
        // Edge switches in different pods are 4 hops apart (edge-agg-
        // core-agg-edge).
        let edge_pod0 = RouterId(1 + 4 + 2); // pod 0, edge 0
        let sp_e = shortest_paths(&t, edge_pod0);
        let edge_pod3 = RouterId(1 + 4 + 3 * 4 + 2);
        assert_eq!(sp_e.dist_to(edge_pod3), Metric(4));
    }

    #[test]
    fn prefix_attachment_helper() {
        let mut t = line(3);
        let ps = attach_prefixes(&mut t, &[RouterId(1), RouterId(3)]);
        assert_eq!(ps.len(), 2);
        assert_eq!(t.prefixes_at(RouterId(3)), &[(ps[1], Metric::ZERO)]);
    }
}
