//! The link-state database.
//!
//! Every router (and the Fibbing controller) maintains an [`Lsdb`]: the
//! set of freshest LSA instances it has heard. Installation follows the
//! freshness rules of [`crate::lsa::compare_freshness`]; MaxAge
//! instances linger only long enough to be flooded, then fall out via
//! [`Lsdb::sweep`]. The database can materialize the augmented
//! [`Topology`] that SPF runs on, applying the two-way connectivity
//! check to real links and trusting fake-node LSAs as complete
//! descriptions of lies.

use crate::lsa::{compare_freshness, Freshness, Lsa, LsaBody, LsaHeader, LsaKey, MAX_AGE};
use crate::topology::{FakeAttrs, Topology};
use crate::types::RouterId;
use std::collections::BTreeMap;

/// Outcome of trying to install an LSA instance.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Install {
    /// The instance was new (no previous instance of this key).
    New,
    /// The instance replaced an older one.
    Updated,
    /// The exact same instance was already present.
    Duplicate,
    /// The database already holds a fresher instance.
    Stale,
    /// A MaxAge instance for an unknown key — nothing to purge, drop it.
    PurgeUnknown,
}

/// A monotonically increasing database version, bumped on every
/// content-changing installation. Consumers (SPF scheduling) compare
/// versions to know whether recomputation is needed.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord)]
pub struct DbVersion(pub u64);

/// The link-state database.
#[derive(Debug, Clone, Default)]
pub struct Lsdb {
    entries: BTreeMap<LsaKey, Lsa>,
    version: u64,
    real_version: u64,
}

impl Lsdb {
    /// An empty database.
    pub fn new() -> Self {
        Lsdb::default()
    }

    /// Current content version.
    pub fn version(&self) -> DbVersion {
        DbVersion(self.version)
    }

    /// Version of the *real graph* only: bumped when a router LSA
    /// changes, untouched by lie (fake) and prefix churn. The SPF
    /// engine uses it to decide — in O(1), without hashing the
    /// topology — that a change cannot have moved any real node and a
    /// cheap partial run suffices ([`crate::spf::SpfEngine`]).
    pub fn real_version(&self) -> u64 {
        self.real_version
    }

    fn bump(&mut self, key: &LsaKey) {
        self.version += 1;
        if key.kind == crate::lsa::LsaKind::Router {
            self.real_version += 1;
        }
    }

    /// Number of stored LSAs (including MaxAge ones not yet swept).
    pub fn len(&self) -> usize {
        self.entries.len()
    }

    /// `true` if the database holds no LSAs.
    pub fn is_empty(&self) -> bool {
        self.entries.is_empty()
    }

    /// Look up the stored instance for a key.
    pub fn get(&self, key: &LsaKey) -> Option<&Lsa> {
        self.entries.get(key)
    }

    /// Freshness of a candidate header against the stored instance.
    /// `Newer` if we have nothing stored.
    pub fn freshness_of(&self, hdr: &LsaHeader) -> Freshness {
        match self.entries.get(&hdr.key) {
            None => Freshness::Newer,
            Some(stored) => compare_freshness(hdr.seq, hdr.age, stored.seq, stored.age),
        }
    }

    /// Try to install an LSA instance, enforcing freshness rules.
    ///
    /// Content-changing outcomes bump the database version.
    pub fn install(&mut self, lsa: Lsa) -> Install {
        match self.entries.get(&lsa.key) {
            None => {
                if lsa.is_max_age() {
                    // Purge for something we never heard of: ack it but
                    // do not create state (RFC 2328 §13 step 5 nuance).
                    return Install::PurgeUnknown;
                }
                let key = lsa.key;
                self.entries.insert(key, lsa);
                self.bump(&key);
                Install::New
            }
            Some(stored) => match lsa.freshness_vs(stored) {
                Freshness::Newer => {
                    let key = lsa.key;
                    self.entries.insert(key, lsa);
                    self.bump(&key);
                    Install::Updated
                }
                Freshness::Same => Install::Duplicate,
                Freshness::Older => Install::Stale,
            },
        }
    }

    /// Remove MaxAge LSAs. Returns the purged headers. A real router
    /// does this once the purge has been acked everywhere; the instance
    /// layer calls it when retransmit lists drain.
    pub fn sweep(&mut self) -> Vec<LsaHeader> {
        let dead: Vec<LsaKey> = self
            .entries
            .iter()
            .filter(|(_, l)| l.is_max_age())
            .map(|(k, _)| *k)
            .collect();
        let mut headers = Vec::with_capacity(dead.len());
        for k in dead {
            if let Some(l) = self.entries.remove(&k) {
                headers.push(l.header());
                self.bump(&k);
            }
        }
        headers
    }

    /// Remove one LSA by key regardless of age (used when the
    /// originator re-learns a self-originated LSA it no longer wants).
    pub fn remove(&mut self, key: &LsaKey) -> Option<Lsa> {
        let removed = self.entries.remove(key);
        if removed.is_some() {
            self.bump(key);
        }
        removed
    }

    /// Advance every LSA's age by `secs`, clamping at MaxAge. Returns
    /// keys of self-expired LSAs that just hit MaxAge (so the caller can
    /// flood the purge).
    pub fn age_all(&mut self, secs: u16) -> Vec<LsaKey> {
        let mut expired = Vec::new();
        for (k, l) in self.entries.iter_mut() {
            if l.age >= MAX_AGE {
                continue;
            }
            let new_age = l.age.saturating_add(secs).min(MAX_AGE);
            if new_age == MAX_AGE {
                expired.push(*k);
            }
            l.age = new_age;
        }
        if !expired.is_empty() {
            self.version += 1;
            if expired
                .iter()
                .any(|k| k.kind == crate::lsa::LsaKind::Router)
            {
                self.real_version += 1;
            }
        }
        expired
    }

    /// Iterate over all stored LSAs in key order.
    pub fn iter(&self) -> impl Iterator<Item = &Lsa> {
        self.entries.values()
    }

    /// Headers of all stored LSAs (for database description packets).
    pub fn headers(&self) -> Vec<LsaHeader> {
        self.entries.values().map(|l| l.header()).collect()
    }

    /// Materialize the augmented topology this database describes.
    ///
    /// Real links pass the two-way check: a directed link `u → v`
    /// appears only if `v`'s router LSA also reports a link back to
    /// `u`. Fake-node LSAs are self-contained and exempt (that is the
    /// lie); their attachment link appears as long as the attachment
    /// router exists and the forwarding address is one of its
    /// neighbors. MaxAge LSAs are ignored.
    pub fn to_topology(&self) -> Topology {
        let mut topo = Topology::new();
        // Pass 1: create all real routers that have a live router LSA.
        for lsa in self.entries.values() {
            if lsa.is_max_age() {
                continue;
            }
            if let LsaBody::Router { .. } = &lsa.body {
                if lsa.key.origin.is_real() {
                    topo.add_router(lsa.key.origin);
                }
            }
        }
        // Pass 2: two-way-checked links.
        let reports = |from: RouterId, to: RouterId| -> Option<crate::types::Metric> {
            let key = LsaKey {
                origin: from,
                kind: crate::lsa::LsaKind::Router,
                id: 0,
            };
            let lsa = self.entries.get(&key)?;
            if lsa.is_max_age() {
                return None;
            }
            if let LsaBody::Router { links } = &lsa.body {
                links.iter().find(|l| l.to == to).map(|l| l.metric)
            } else {
                None
            }
        };
        for lsa in self.entries.values() {
            if lsa.is_max_age() {
                continue;
            }
            let LsaBody::Router { links } = &lsa.body else {
                continue;
            };
            let from = lsa.key.origin;
            if from.is_fake() {
                continue;
            }
            for l in links {
                if !topo.contains(l.to) {
                    continue;
                }
                if reports(l.to, from).is_some() {
                    // Two-way check passed; duplicates impossible since
                    // router LSAs are unique per origin.
                    let _ = topo.add_link(from, l.to, l.metric);
                }
            }
        }
        // Pass 3: prefix announcements on live routers.
        for lsa in self.entries.values() {
            if lsa.is_max_age() {
                continue;
            }
            if let LsaBody::Prefix { prefix, metric } = &lsa.body {
                if topo.contains(lsa.key.origin) {
                    let _ = topo.announce_prefix(lsa.key.origin, *prefix, *metric);
                }
            }
        }
        // Pass 4: fake nodes (lies). Invalid lies (dangling attachment
        // or forwarding address) are skipped, mirroring how a router
        // ignores a type-5 LSA whose forwarding address is unreachable.
        for lsa in self.entries.values() {
            if lsa.is_max_age() {
                continue;
            }
            if let LsaBody::Fake {
                attach,
                attach_metric,
                prefix,
                prefix_metric,
                fw,
            } = &lsa.body
            {
                let attrs = FakeAttrs {
                    attach: *attach,
                    attach_metric: *attach_metric,
                    prefix: *prefix,
                    prefix_metric: *prefix_metric,
                    fw: *fw,
                };
                let _ = topo.add_fake_node(lsa.key.origin, attrs);
            }
        }
        topo
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::lsa::{LsaKind, LsaLink};
    use crate::types::{FwAddr, Metric, Prefix, SeqNum};

    fn router_lsa(origin: u32, seq: i32, neighbors: &[(u32, u32)]) -> Lsa {
        Lsa::router(
            RouterId(origin),
            SeqNum(seq),
            neighbors
                .iter()
                .map(|&(to, m)| LsaLink {
                    to: RouterId(to),
                    metric: Metric(m),
                })
                .collect(),
        )
    }

    #[test]
    fn install_follows_freshness() {
        let mut db = Lsdb::new();
        let v0 = db.version();
        assert_eq!(db.install(router_lsa(1, 1, &[])), Install::New);
        assert!(db.version() > v0);
        assert_eq!(db.install(router_lsa(1, 1, &[])), Install::Duplicate);
        assert_eq!(db.install(router_lsa(1, 2, &[(2, 1)])), Install::Updated);
        assert_eq!(db.install(router_lsa(1, 1, &[])), Install::Stale);
        assert_eq!(db.len(), 1);
    }

    #[test]
    fn purge_for_unknown_key_creates_no_state() {
        let mut db = Lsdb::new();
        let mut l = router_lsa(9, 4, &[]);
        l.age = MAX_AGE;
        assert_eq!(db.install(l), Install::PurgeUnknown);
        assert!(db.is_empty());
    }

    #[test]
    fn sweep_removes_max_age() {
        let mut db = Lsdb::new();
        db.install(router_lsa(1, 1, &[]));
        db.install(router_lsa(2, 1, &[]));
        let purge = db
            .get(&LsaKey {
                origin: RouterId(1),
                kind: LsaKind::Router,
                id: 0,
            })
            .unwrap()
            .to_purge();
        assert_eq!(db.install(purge), Install::Updated);
        let swept = db.sweep();
        assert_eq!(swept.len(), 1);
        assert_eq!(swept[0].key.origin, RouterId(1));
        assert_eq!(db.len(), 1);
    }

    #[test]
    fn aging_expires_lsas() {
        let mut db = Lsdb::new();
        db.install(router_lsa(1, 1, &[]));
        let expired = db.age_all(MAX_AGE - 1);
        assert!(expired.is_empty());
        let expired = db.age_all(5);
        assert_eq!(expired.len(), 1);
        assert!(db.get(&expired[0]).unwrap().is_max_age());
        // Aging an already-MaxAge LSA does not re-report it.
        assert!(db.age_all(5).is_empty());
    }

    #[test]
    fn topology_applies_two_way_check() {
        let mut db = Lsdb::new();
        db.install(router_lsa(1, 1, &[(2, 10), (3, 5)]));
        db.install(router_lsa(2, 1, &[(1, 10)]));
        // Router 3 exists but does not report the link back to 1.
        db.install(router_lsa(3, 1, &[]));
        let topo = db.to_topology();
        assert!(topo.has_link(RouterId(1), RouterId(2)));
        assert!(topo.has_link(RouterId(2), RouterId(1)));
        assert!(!topo.has_link(RouterId(1), RouterId(3)));
    }

    #[test]
    fn topology_includes_prefixes_and_fakes() {
        let mut db = Lsdb::new();
        db.install(router_lsa(1, 1, &[(2, 1)]));
        db.install(router_lsa(2, 1, &[(1, 1)]));
        let p = Prefix::net24(7);
        db.install(Lsa::prefix(RouterId(2), 0, SeqNum(1), p, Metric(0)));
        db.install(Lsa::fake(
            RouterId::fake(0),
            SeqNum(1),
            RouterId(1),
            Metric(1),
            p,
            Metric(1),
            FwAddr::secondary(RouterId(2), 1),
        ));
        let topo = db.to_topology();
        assert_eq!(topo.prefixes_at(RouterId(2)), &[(p, Metric(0))]);
        assert_eq!(topo.fake_count(), 1);
        let (fid, attrs) = topo.fake_nodes().next().unwrap();
        assert_eq!(fid, RouterId::fake(0));
        assert_eq!(attrs.fw, FwAddr::secondary(RouterId(2), 1));
        topo.validate().unwrap();
    }

    #[test]
    fn invalid_fake_lsa_is_ignored_in_topology() {
        let mut db = Lsdb::new();
        db.install(router_lsa(1, 1, &[(2, 1)]));
        db.install(router_lsa(2, 1, &[(1, 1)]));
        // Forwarding address r9 is not a neighbor of the attachment.
        db.install(Lsa::fake(
            RouterId::fake(0),
            SeqNum(1),
            RouterId(1),
            Metric(1),
            Prefix::net24(7),
            Metric(1),
            FwAddr::primary(RouterId(9)),
        ));
        let topo = db.to_topology();
        assert_eq!(topo.fake_count(), 0);
    }

    #[test]
    fn max_age_lsas_do_not_contribute_to_topology() {
        let mut db = Lsdb::new();
        db.install(router_lsa(1, 1, &[(2, 1)]));
        db.install(router_lsa(2, 1, &[(1, 1)]));
        let key = LsaKey {
            origin: RouterId(2),
            kind: LsaKind::Router,
            id: 0,
        };
        let purge = db.get(&key).unwrap().to_purge();
        db.install(purge);
        let topo = db.to_topology();
        assert!(!topo.contains(RouterId(2)));
        assert!(!topo.has_link(RouterId(1), RouterId(2)));
    }
}
