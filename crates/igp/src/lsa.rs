//! Link-state advertisements.
//!
//! Three LSA kinds exist:
//!
//! * [`LsaBody::Router`] — a router's own view of its links (like OSPF
//!   type-1). Subject to the two-way check when building the topology.
//! * [`LsaBody::Prefix`] — a prefix attached to the originating router
//!   (like an OSPF stub network / type-5 without forwarding address).
//! * [`LsaBody::Fake`] — a Fibbing lie: describes a fake node, its
//!   attachment, announced prefix, and forwarding address. In a real
//!   deployment this is carried in type-5 LSAs with a forwarding
//!   address; we model the augmented-topology semantics directly while
//!   keeping the flooding/refresh/purge mechanics identical to real
//!   LSAs.

use crate::types::{FwAddr, Metric, Prefix, RouterId, SeqNum};
use std::fmt;

/// Maximum LSA age, in seconds. An LSA at `MAX_AGE` is being purged.
pub const MAX_AGE: u16 = 3600;

/// Age at which the originator re-floods a fresh copy.
pub const REFRESH_AGE: u16 = 1800;

/// Discriminant for LSA kinds (also the wire encoding).
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash)]
#[repr(u8)]
pub enum LsaKind {
    /// Router links LSA.
    Router = 1,
    /// Prefix attachment LSA.
    Prefix = 2,
    /// Fibbing fake-node LSA.
    Fake = 3,
}

impl LsaKind {
    /// Decode from the wire byte.
    pub fn from_u8(v: u8) -> Option<LsaKind> {
        match v {
            1 => Some(LsaKind::Router),
            2 => Some(LsaKind::Prefix),
            3 => Some(LsaKind::Fake),
            _ => None,
        }
    }
}

/// Identity of an LSA instance stream: who originated it, what kind,
/// and which of the originator's LSAs of that kind.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub struct LsaKey {
    /// Originating node (a fake node id for lies).
    pub origin: RouterId,
    /// Kind discriminant.
    pub kind: LsaKind,
    /// Originator-scoped identifier (e.g. one per announced prefix).
    pub id: u32,
}

impl fmt::Display for LsaKey {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{:?}/{:?}/{}", self.origin, self.kind, self.id)
    }
}

/// One link reported in a router LSA.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct LsaLink {
    /// Neighbor router.
    pub to: RouterId,
    /// Metric toward the neighbor.
    pub metric: Metric,
}

/// LSA payload.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum LsaBody {
    /// The originator's links to its neighbors.
    Router {
        /// Reported adjacencies.
        links: Vec<LsaLink>,
    },
    /// A prefix attached at the originator.
    Prefix {
        /// The announced prefix.
        prefix: Prefix,
        /// Announcement metric.
        metric: Metric,
    },
    /// A Fibbing lie describing a complete fake node.
    Fake {
        /// Real router the fake node hangs off.
        attach: RouterId,
        /// Metric of the directed `attach → fake` link.
        attach_metric: Metric,
        /// Prefix announced by the fake node.
        prefix: Prefix,
        /// Announcement metric at the fake node.
        prefix_metric: Metric,
        /// Forwarding address resolving the fake next-hop at `attach`.
        fw: FwAddr,
    },
}

impl LsaBody {
    /// Kind discriminant of this body.
    pub fn kind(&self) -> LsaKind {
        match self {
            LsaBody::Router { .. } => LsaKind::Router,
            LsaBody::Prefix { .. } => LsaKind::Prefix,
            LsaBody::Fake { .. } => LsaKind::Fake,
        }
    }
}

/// A full LSA: key, freshness metadata, and payload.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Lsa {
    /// Identity of the LSA stream this instance belongs to.
    pub key: LsaKey,
    /// Sequence number (higher = fresher).
    pub seq: SeqNum,
    /// Age in seconds; [`MAX_AGE`] means "being purged".
    pub age: u16,
    /// Payload.
    pub body: LsaBody,
}

/// Compact header used in DBD/ACK packets and retransmit bookkeeping.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct LsaHeader {
    /// Identity.
    pub key: LsaKey,
    /// Sequence number.
    pub seq: SeqNum,
    /// Age in seconds.
    pub age: u16,
}

/// Relative freshness of two LSA instances of the same key.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Freshness {
    /// Left instance is fresher.
    Newer,
    /// Both instances are the same.
    Same,
    /// Left instance is stale.
    Older,
}

/// Compare freshness of `(seq_a, age_a)` against `(seq_b, age_b)`
/// following the RFC 2328 §13.1 rules (sequence number first, then
/// MaxAge beats non-MaxAge, then lower age within a tolerance is
/// considered the same instance).
pub fn compare_freshness(a_seq: SeqNum, a_age: u16, b_seq: SeqNum, b_age: u16) -> Freshness {
    if a_seq > b_seq {
        return Freshness::Newer;
    }
    if a_seq < b_seq {
        return Freshness::Older;
    }
    let a_max = a_age >= MAX_AGE;
    let b_max = b_age >= MAX_AGE;
    match (a_max, b_max) {
        (true, false) => Freshness::Newer,
        (false, true) => Freshness::Older,
        _ => Freshness::Same,
    }
}

impl Lsa {
    /// Header summary of this LSA.
    pub fn header(&self) -> LsaHeader {
        LsaHeader {
            key: self.key,
            seq: self.seq,
            age: self.age,
        }
    }

    /// `true` if this instance is a purge (MaxAge) instance.
    pub fn is_max_age(&self) -> bool {
        self.age >= MAX_AGE
    }

    /// Freshness of `self` relative to `other` (which must share the key).
    pub fn freshness_vs(&self, other: &Lsa) -> Freshness {
        debug_assert_eq!(self.key, other.key);
        compare_freshness(self.seq, self.age, other.seq, other.age)
    }

    /// Build a router LSA.
    pub fn router(origin: RouterId, seq: SeqNum, links: Vec<LsaLink>) -> Lsa {
        Lsa {
            key: LsaKey {
                origin,
                kind: LsaKind::Router,
                id: 0,
            },
            seq,
            age: 0,
            body: LsaBody::Router { links },
        }
    }

    /// Build a prefix LSA. `id` disambiguates multiple prefixes from the
    /// same originator.
    pub fn prefix(origin: RouterId, id: u32, seq: SeqNum, prefix: Prefix, metric: Metric) -> Lsa {
        Lsa {
            key: LsaKey {
                origin,
                kind: LsaKind::Prefix,
                id,
            },
            seq,
            age: 0,
            body: LsaBody::Prefix { prefix, metric },
        }
    }

    /// Build a fake-node LSA. The LSA is originated *by the fake node
    /// itself* (its id is in the fake range), which is what lets
    /// ordinary freshness/purge rules manage lies.
    pub fn fake(
        fake_id: RouterId,
        seq: SeqNum,
        attach: RouterId,
        attach_metric: Metric,
        prefix: Prefix,
        prefix_metric: Metric,
        fw: FwAddr,
    ) -> Lsa {
        debug_assert!(fake_id.is_fake());
        Lsa {
            key: LsaKey {
                origin: fake_id,
                kind: LsaKind::Fake,
                id: 0,
            },
            seq,
            age: 0,
            body: LsaBody::Fake {
                attach,
                attach_metric,
                prefix,
                prefix_metric,
                fw,
            },
        }
    }

    /// A MaxAge copy of this LSA, used to purge it network-wide.
    pub fn to_purge(&self) -> Lsa {
        let mut l = self.clone();
        l.age = MAX_AGE;
        l
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn lsa_with(seq: i32, age: u16) -> Lsa {
        Lsa {
            key: LsaKey {
                origin: RouterId(1),
                kind: LsaKind::Router,
                id: 0,
            },
            seq: SeqNum(seq),
            age,
            body: LsaBody::Router { links: vec![] },
        }
    }

    #[test]
    fn freshness_prefers_higher_seq() {
        let a = lsa_with(5, 100);
        let b = lsa_with(4, 0);
        assert_eq!(a.freshness_vs(&b), Freshness::Newer);
        assert_eq!(b.freshness_vs(&a), Freshness::Older);
    }

    #[test]
    fn freshness_max_age_beats_same_seq() {
        let purge = lsa_with(5, MAX_AGE);
        let live = lsa_with(5, 10);
        assert_eq!(purge.freshness_vs(&live), Freshness::Newer);
        assert_eq!(live.freshness_vs(&purge), Freshness::Older);
        assert_eq!(live.freshness_vs(&live), Freshness::Same);
    }

    #[test]
    fn purge_copy_is_max_age_and_newer_than_nothing_else() {
        let l = lsa_with(7, 12);
        let p = l.to_purge();
        assert!(p.is_max_age());
        assert_eq!(p.seq, l.seq);
        assert_eq!(p.freshness_vs(&l), Freshness::Newer);
    }

    #[test]
    fn constructors_fill_keys() {
        let r = Lsa::router(RouterId(3), SeqNum::INITIAL, vec![]);
        assert_eq!(r.key.kind, LsaKind::Router);
        let p = Lsa::prefix(RouterId(3), 2, SeqNum::INITIAL, Prefix::net24(1), Metric(0));
        assert_eq!(p.key.id, 2);
        let f = Lsa::fake(
            RouterId::fake(1),
            SeqNum::INITIAL,
            RouterId(3),
            Metric(1),
            Prefix::net24(1),
            Metric(1),
            FwAddr::secondary(RouterId(4), 1),
        );
        assert_eq!(f.key.kind, LsaKind::Fake);
        assert!(f.key.origin.is_fake());
    }

    #[test]
    fn lsa_kind_roundtrip() {
        for k in [LsaKind::Router, LsaKind::Prefix, LsaKind::Fake] {
            assert_eq!(LsaKind::from_u8(k as u8), Some(k));
        }
        assert_eq!(LsaKind::from_u8(0), None);
        assert_eq!(LsaKind::from_u8(9), None);
    }
}
