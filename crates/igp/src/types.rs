//! Core identifier and scalar types shared by the whole stack.
//!
//! The types here deliberately mirror what a link-state IGP actually
//! manipulates on the wire: 32-bit router identifiers, prefixes with a
//! length, 32-bit metrics with an "infinity" sentinel, and forwarding
//! addresses (a router may own several addresses; ECMP FIB entries are
//! keyed by *address*, not by router — the distinction is load-bearing
//! for Fibbing's uneven splitting, see [`FwAddr`]).

use std::fmt;

/// Base of the identifier range reserved for fake (lied-about) nodes.
///
/// Real routers must have identifiers strictly below this value. The
/// Fibbing controller allocates fake-node identifiers at or above it,
/// which lets every layer (SPF, FIB resolution, tracing) distinguish
/// lies from real topology without extra bookkeeping.
pub const FAKE_NODE_BASE: u32 = 0x8000_0000;

/// Identifier of a node in the (possibly augmented) IGP topology.
///
/// Identifiers at or above [`FAKE_NODE_BASE`] denote fake nodes injected
/// by a Fibbing controller; all others are real routers.
#[derive(Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub struct RouterId(pub u32);

impl RouterId {
    /// Construct the `n`-th fake-node identifier.
    pub const fn fake(n: u32) -> Self {
        RouterId(FAKE_NODE_BASE + n)
    }

    /// `true` if this identifier denotes a fake (injected) node.
    pub const fn is_fake(self) -> bool {
        self.0 >= FAKE_NODE_BASE
    }

    /// `true` if this identifier denotes a real router.
    pub const fn is_real(self) -> bool {
        !self.is_fake()
    }

    /// Index of a fake node within the fake range.
    ///
    /// Returns `None` for real routers.
    pub const fn fake_index(self) -> Option<u32> {
        if self.is_fake() {
            Some(self.0 - FAKE_NODE_BASE)
        } else {
            None
        }
    }
}

impl fmt::Debug for RouterId {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        if let Some(n) = self.fake_index() {
            write!(f, "fake{n}")
        } else {
            write!(f, "r{}", self.0)
        }
    }
}

impl fmt::Display for RouterId {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        fmt::Debug::fmt(self, f)
    }
}

impl From<u32> for RouterId {
    fn from(v: u32) -> Self {
        RouterId(v)
    }
}

/// Per-router interface index (point-to-point interfaces only).
#[derive(Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub struct IfaceId(pub u16);

impl fmt::Debug for IfaceId {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "if{}", self.0)
    }
}

impl fmt::Display for IfaceId {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        fmt::Debug::fmt(self, f)
    }
}

/// An IPv4-style destination prefix.
///
/// The simulator does not assign addresses to hosts; prefixes are opaque
/// routing destinations. They still carry address/length so that wire
/// encodings, display, and containment checks behave like the real thing.
#[derive(Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub struct Prefix {
    addr: u32,
    len: u8,
}

impl Prefix {
    /// Create a prefix from a 32-bit address and a mask length.
    ///
    /// Host bits below the mask are cleared, so `Prefix::new(x, l)` is
    /// always in canonical form.
    pub const fn new(addr: u32, len: u8) -> Self {
        assert!(len <= 32);
        let mask = if len == 0 { 0 } else { u32::MAX << (32 - len) };
        Prefix {
            addr: addr & mask,
            len,
        }
    }

    /// Convenience constructor: `10.0.<n>.0/24`.
    pub const fn net24(n: u8) -> Self {
        Prefix::new(0x0A00_0000 | ((n as u32) << 8), 24)
    }

    /// The (canonicalized) base address.
    pub const fn addr(self) -> u32 {
        self.addr
    }

    /// The mask length.
    // A mask length, not a container size; "empty" is `is_default`.
    #[allow(clippy::len_without_is_empty)]
    pub const fn len(self) -> u8 {
        self.len
    }

    /// `true` for the zero-length default prefix.
    pub const fn is_default(self) -> bool {
        self.len == 0
    }

    /// `true` if `other` is fully contained in `self`.
    pub const fn contains(self, other: Prefix) -> bool {
        if other.len < self.len {
            return false;
        }
        let mask = if self.len == 0 {
            0
        } else {
            u32::MAX << (32 - self.len)
        };
        (other.addr & mask) == self.addr
    }
}

impl fmt::Debug for Prefix {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        let a = self.addr;
        write!(
            f,
            "{}.{}.{}.{}/{}",
            a >> 24,
            (a >> 16) & 0xff,
            (a >> 8) & 0xff,
            a & 0xff,
            self.len
        )
    }
}

impl fmt::Display for Prefix {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        fmt::Debug::fmt(self, f)
    }
}

/// An IGP link or route metric.
///
/// Metrics are unsigned 24-bit-ish quantities in real protocols; we use
/// `u32` with [`Metric::INF`] as the unreachable sentinel and saturating
/// arithmetic so that cost computations can never wrap.
#[derive(Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub struct Metric(pub u32);

impl Metric {
    /// The unreachable sentinel. Greater than every finite metric.
    pub const INF: Metric = Metric(u32::MAX);
    /// The zero metric.
    pub const ZERO: Metric = Metric(0);

    /// `true` unless this is the unreachable sentinel.
    pub const fn is_finite(self) -> bool {
        self.0 != u32::MAX
    }

    /// Saturating addition that also absorbs infinity.
    #[must_use]
    pub const fn add(self, rhs: Metric) -> Metric {
        if !self.is_finite() || !rhs.is_finite() {
            return Metric::INF;
        }
        let sum = self.0.saturating_add(rhs.0);
        if sum == u32::MAX {
            Metric(u32::MAX - 1)
        } else {
            Metric(sum)
        }
    }

    /// Saturating subtraction; `INF - x = INF`.
    #[must_use]
    pub const fn sub(self, rhs: Metric) -> Metric {
        if !self.is_finite() {
            return Metric::INF;
        }
        Metric(self.0.saturating_sub(rhs.0))
    }
}

impl fmt::Debug for Metric {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        if self.is_finite() {
            write!(f, "{}", self.0)
        } else {
            write!(f, "inf")
        }
    }
}

impl fmt::Display for Metric {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        fmt::Debug::fmt(self, f)
    }
}

impl From<u32> for Metric {
    fn from(v: u32) -> Self {
        Metric(v)
    }
}

/// A forwarding address: one of possibly several addresses owned by a
/// physical router.
///
/// Link-state FIBs key ECMP entries by *gateway address*. Two routes
/// whose gateways are distinct addresses of the same neighbor occupy two
/// ECMP slots — this is precisely the mechanism Fibbing exploits to
/// realise uneven splitting ratios with zero data-plane overhead: `k`
/// fake nodes resolving to `k` distinct addresses of the same next-hop
/// give that next-hop a `k/n` share of hashed flows.
///
/// Address index `0` is the router's primary address, used by all real
/// (non-injected) routes; indexes `>= 1` are secondary addresses that
/// only lies reference.
#[derive(Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub struct FwAddr {
    /// The physical router owning the address.
    pub router: RouterId,
    /// Which of the router's addresses (0 = primary).
    pub addr: u16,
}

impl FwAddr {
    /// The primary address of `router`.
    pub const fn primary(router: RouterId) -> Self {
        FwAddr { router, addr: 0 }
    }

    /// A secondary address of `router` (index must be >= 1 to be
    /// distinct from real-route gateways).
    pub const fn secondary(router: RouterId, addr: u16) -> Self {
        FwAddr { router, addr }
    }
}

impl fmt::Debug for FwAddr {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        if self.addr == 0 {
            write!(f, "{}", self.router)
        } else {
            write!(f, "{}#{}", self.router, self.addr)
        }
    }
}

impl fmt::Display for FwAddr {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        fmt::Debug::fmt(self, f)
    }
}

/// LSA sequence number with OSPF-style signed wrapping comparison.
///
/// Sequence numbers start at [`SeqNum::INITIAL`] and increment on each
/// re-origination. Comparison is a plain signed comparison (the signed
/// space gives ~2^31 re-originations before wrap, which the simulator
/// never approaches, matching RFC 2328's linear sequence space).
#[derive(Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub struct SeqNum(pub i32);

impl SeqNum {
    /// First sequence number used by a fresh origination.
    pub const INITIAL: SeqNum = SeqNum(i32::MIN + 1);
    /// Largest representable sequence number.
    pub const MAX: SeqNum = SeqNum(i32::MAX);

    /// The next sequence number.
    #[must_use]
    pub fn next(self) -> SeqNum {
        assert!(self.0 < i32::MAX, "LSA sequence space exhausted");
        SeqNum(self.0 + 1)
    }
}

impl fmt::Debug for SeqNum {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "seq({:#x})", self.0)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn fake_router_ids_are_distinguished() {
        let r = RouterId(7);
        let f = RouterId::fake(3);
        assert!(r.is_real() && !r.is_fake());
        assert!(f.is_fake() && !f.is_real());
        assert_eq!(f.fake_index(), Some(3));
        assert_eq!(r.fake_index(), None);
        assert_eq!(format!("{f}"), "fake3");
        assert_eq!(format!("{r}"), "r7");
    }

    #[test]
    fn prefix_is_canonicalized() {
        let p = Prefix::new(0x0A00_01FF, 24);
        assert_eq!(p.addr(), 0x0A00_0100);
        assert_eq!(format!("{p}"), "10.0.1.0/24");
        assert_eq!(Prefix::net24(1), p);
    }

    #[test]
    fn prefix_containment() {
        let wide = Prefix::new(0x0A00_0000, 8);
        let narrow = Prefix::net24(5);
        assert!(wide.contains(narrow));
        assert!(!narrow.contains(wide));
        assert!(narrow.contains(narrow));
        let deflt = Prefix::new(0, 0);
        assert!(deflt.contains(wide));
        assert!(deflt.is_default());
    }

    #[test]
    fn metric_saturates_and_absorbs_infinity() {
        assert_eq!(Metric(2).add(Metric(3)), Metric(5));
        assert_eq!(Metric::INF.add(Metric(1)), Metric::INF);
        assert_eq!(Metric(1).add(Metric::INF), Metric::INF);
        // Saturation never accidentally produces the INF sentinel.
        let near = Metric(u32::MAX - 1);
        assert!(near.add(near).is_finite());
        assert_eq!(Metric(5).sub(Metric(7)), Metric::ZERO);
        assert_eq!(Metric::INF.sub(Metric(7)), Metric::INF);
    }

    #[test]
    fn seqnum_orders_linearly() {
        let s = SeqNum::INITIAL;
        let t = s.next();
        assert!(t > s);
        assert!(SeqNum::MAX > t);
    }

    #[test]
    fn fwaddr_identity() {
        let a = FwAddr::primary(RouterId(4));
        let b = FwAddr::secondary(RouterId(4), 1);
        assert_ne!(a, b);
        assert_eq!(a.router, b.router);
        assert_eq!(format!("{b}"), "r4#1");
    }
}
