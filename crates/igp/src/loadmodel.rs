//! Analytical traffic spreading over ECMP forwarding state.
//!
//! Given a topology (possibly augmented with lies) and a set of
//! demands, compute the load every directed link carries when each
//! router splits traffic uniformly over its ECMP slots. This is the
//! fluid expectation of hash-based splitting, and it is what both the
//! paper's Fig. 1b/1d load numbers and the controller's *predictive*
//! reaction use (the controller knows the demands from server
//! notifications and the forwarding state from its LSDB — it can
//! predict link loads before SNMP counters show them).

use crate::rib::ForwardingDag;
use crate::spf::prefix_routes;
use crate::topology::Topology;
use crate::types::{Prefix, RouterId};
use std::collections::BTreeMap;
use std::fmt;

/// A demand: `rate` units of traffic entering at `src` toward `prefix`.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct Demand {
    /// Ingress router.
    pub src: RouterId,
    /// Destination prefix.
    pub prefix: Prefix,
    /// Offered rate (any unit; loads come out in the same unit).
    pub rate: f64,
}

/// Why spreading failed.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum LoadModelError {
    /// The forwarding state for this prefix contains a loop.
    ForwardingLoop(Prefix),
    /// A demand's ingress has no route toward the prefix.
    NoRoute(RouterId, Prefix),
}

impl fmt::Display for LoadModelError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            LoadModelError::ForwardingLoop(p) => write!(f, "forwarding loop toward {p}"),
            LoadModelError::NoRoute(r, p) => write!(f, "no route from {r} toward {p}"),
        }
    }
}

impl std::error::Error for LoadModelError {}

/// Spread `demands` over the ECMP forwarding state of `topo`.
///
/// Returns per-directed-link loads keyed `(from, to)`. Links carrying
/// no traffic are absent.
pub fn spread(
    topo: &Topology,
    demands: &[Demand],
) -> Result<BTreeMap<(RouterId, RouterId), f64>, LoadModelError> {
    let mut loads: BTreeMap<(RouterId, RouterId), f64> = BTreeMap::new();

    // Group demands by prefix.
    let mut by_prefix: BTreeMap<Prefix, Vec<(RouterId, f64)>> = BTreeMap::new();
    for d in demands {
        by_prefix.entry(d.prefix).or_default().push((d.src, d.rate));
    }

    for (prefix, dems) in by_prefix {
        // Only the demanded prefixes' forwarding state matters: the
        // single-prefix reverse SPF sidesteps a full per-router SPF.
        let dag = ForwardingDag::from_prefix_routes(prefix, &prefix_routes(topo, prefix));
        for (src, _) in &dems {
            let known = dag
                .nexthops
                .get(src)
                .map(|h| !h.is_empty() || dag.sinks().contains(src))
                .unwrap_or(false);
            if !known {
                return Err(LoadModelError::NoRoute(*src, prefix));
            }
        }
        if dag.find_loop().is_some() {
            return Err(LoadModelError::ForwardingLoop(prefix));
        }

        // Per-router split fractions (slot-weighted, by next-hop router).
        let fractions = dag.edge_fractions();
        // Kahn topological order over the per-prefix forwarding graph.
        let mut indeg: BTreeMap<RouterId, usize> = BTreeMap::new();
        for r in dag.nexthops.keys() {
            indeg.entry(*r).or_insert(0);
        }
        for (_, to) in fractions.keys() {
            *indeg.entry(*to).or_insert(0) += 1;
        }
        let mut inflow: BTreeMap<RouterId, f64> = BTreeMap::new();
        for (src, rate) in &dems {
            *inflow.entry(*src).or_insert(0.0) += rate;
        }
        let mut ready: Vec<RouterId> = indeg
            .iter()
            .filter(|(_, d)| **d == 0)
            .map(|(r, _)| *r)
            .collect();
        ready.sort();
        let mut order = Vec::with_capacity(indeg.len());
        let mut indeg_mut = indeg.clone();
        while let Some(r) = ready.pop() {
            order.push(r);
            if let Some(hops) = dag.nexthops.get(&r) {
                let mut next_routers: Vec<RouterId> = hops.iter().map(|h| h.router).collect();
                next_routers.sort();
                next_routers.dedup();
                for nh in next_routers {
                    if let Some(d) = indeg_mut.get_mut(&nh) {
                        *d -= 1;
                        if *d == 0 {
                            ready.push(nh);
                            ready.sort();
                        }
                    }
                }
            }
        }

        for r in order {
            let flow_in = inflow.get(&r).copied().unwrap_or(0.0);
            if flow_in <= 0.0 {
                continue;
            }
            let Some(hops) = dag.nexthops.get(&r) else {
                continue;
            };
            if hops.is_empty() {
                continue; // delivered locally
            }
            // Split by slot shares, aggregated per next-hop router.
            let mut shares: BTreeMap<RouterId, f64> = BTreeMap::new();
            let per_slot = 1.0 / hops.len() as f64;
            for h in hops {
                *shares.entry(h.router).or_insert(0.0) += per_slot;
            }
            for (nh, share) in shares {
                let amount = flow_in * share;
                *loads.entry((r, nh)).or_insert(0.0) += amount;
                *inflow.entry(nh).or_insert(0.0) += amount;
            }
        }
    }
    Ok(loads)
}

/// Maximum link utilization of a load map against capacities. Links
/// missing from `capacities` are skipped.
pub fn max_utilization(
    loads: &BTreeMap<(RouterId, RouterId), f64>,
    capacities: &BTreeMap<(RouterId, RouterId), f64>,
) -> f64 {
    loads
        .iter()
        .filter_map(|(k, l)| capacities.get(k).map(|c| l / c))
        .fold(0.0, f64::max)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::topology::FakeAttrs;
    use crate::types::{FwAddr, Metric};

    fn r(n: u32) -> RouterId {
        RouterId(n)
    }

    /// Diamond: 1 → {2, 3} → 4, all unit metrics; prefix at 4.
    fn diamond() -> Topology {
        let mut t = Topology::new();
        for i in 1..=4 {
            t.add_router(r(i));
        }
        t.add_link_sym(r(1), r(2), Metric(1)).unwrap();
        t.add_link_sym(r(1), r(3), Metric(1)).unwrap();
        t.add_link_sym(r(2), r(4), Metric(1)).unwrap();
        t.add_link_sym(r(3), r(4), Metric(1)).unwrap();
        t.announce_prefix(r(4), Prefix::net24(1), Metric::ZERO)
            .unwrap();
        t
    }

    #[test]
    fn ecmp_splits_evenly() {
        let t = diamond();
        let loads = spread(
            &t,
            &[Demand {
                src: r(1),
                prefix: Prefix::net24(1),
                rate: 100.0,
            }],
        )
        .unwrap();
        assert!((loads[&(r(1), r(2))] - 50.0).abs() < 1e-9);
        assert!((loads[&(r(1), r(3))] - 50.0).abs() < 1e-9);
        assert!((loads[&(r(2), r(4))] - 50.0).abs() < 1e-9);
        assert!((loads[&(r(3), r(4))] - 50.0).abs() < 1e-9);
    }

    #[test]
    fn fake_slots_bias_the_split() {
        let mut t = diamond();
        // Two extra slots at r1 via r3's secondary addresses at the
        // same cost (2): slots = [r2, r3, r3#1, r3#2] → r3 gets 3/4.
        for k in 1..=2u16 {
            t.add_fake_node(
                RouterId::fake(k as u32),
                FakeAttrs {
                    attach: r(1),
                    attach_metric: Metric(1),
                    prefix: Prefix::net24(1),
                    prefix_metric: Metric(1),
                    fw: FwAddr::secondary(r(3), k),
                },
            )
            .unwrap();
        }
        let loads = spread(
            &t,
            &[Demand {
                src: r(1),
                prefix: Prefix::net24(1),
                rate: 100.0,
            }],
        )
        .unwrap();
        assert!((loads[&(r(1), r(2))] - 25.0).abs() < 1e-9);
        assert!((loads[&(r(1), r(3))] - 75.0).abs() < 1e-9);
    }

    #[test]
    fn multiple_demands_superpose() {
        let t = diamond();
        let loads = spread(
            &t,
            &[
                Demand {
                    src: r(1),
                    prefix: Prefix::net24(1),
                    rate: 100.0,
                },
                Demand {
                    src: r(2),
                    prefix: Prefix::net24(1),
                    rate: 10.0,
                },
            ],
        )
        .unwrap();
        // r2 carries 50 from r1 plus its own 10.
        assert!((loads[&(r(2), r(4))] - 60.0).abs() < 1e-9);
    }

    #[test]
    fn missing_route_is_error() {
        let mut t = diamond();
        t.add_router(r(9)); // isolated
        let err = spread(
            &t,
            &[Demand {
                src: r(9),
                prefix: Prefix::net24(1),
                rate: 1.0,
            }],
        )
        .unwrap_err();
        assert_eq!(err, LoadModelError::NoRoute(r(9), Prefix::net24(1)));
    }

    #[test]
    fn max_utilization_math() {
        let mut loads = BTreeMap::new();
        loads.insert((r(1), r(2)), 80.0);
        loads.insert((r(2), r(3)), 10.0);
        let mut caps = BTreeMap::new();
        caps.insert((r(1), r(2)), 100.0);
        caps.insert((r(2), r(3)), 100.0);
        assert!((max_utilization(&loads, &caps) - 0.8).abs() < 1e-12);
    }

    #[test]
    fn demand_at_sink_adds_no_load() {
        let t = diamond();
        let loads = spread(
            &t,
            &[Demand {
                src: r(4),
                prefix: Prefix::net24(1),
                rate: 50.0,
            }],
        )
        .unwrap();
        assert!(loads.is_empty());
    }
}
