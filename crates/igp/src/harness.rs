//! A minimal event-driven harness wiring [`Instance`]s together.
//!
//! This is the IGP crate's own test/bench driver: a tiny discrete-event
//! loop that delivers packets between instances over fixed-delay links
//! and fires protocol timers in timestamp order. The full data-plane
//! simulator in `fib-netsim` supersedes it for real experiments; this
//! one exists so the protocol can be exercised (and benchmarked)
//! without any higher layer.

use crate::instance::{Config, Instance, Output};
use crate::rib::RouteTable;
use crate::time::{Dur, Timestamp};
use crate::types::{IfaceId, Metric, RouterId};
use bytes::Bytes;
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};
use std::collections::{BTreeMap, BinaryHeap};

#[derive(Debug)]
struct Wire {
    a: (RouterId, IfaceId),
    b: (RouterId, IfaceId),
    delay: Dur,
    up: bool,
}

#[derive(Debug, PartialEq, Eq)]
struct PendingPkt {
    at: Timestamp,
    seq: u64,
    to: RouterId,
    iface: IfaceId,
    data: Bytes,
}

impl Ord for PendingPkt {
    fn cmp(&self, other: &Self) -> std::cmp::Ordering {
        // Reverse for min-heap on (at, seq).
        (other.at, other.seq).cmp(&(self.at, self.seq))
    }
}

impl PartialOrd for PendingPkt {
    fn partial_cmp(&self, other: &Self) -> Option<std::cmp::Ordering> {
        Some(self.cmp(other))
    }
}

/// A network of protocol instances linked by fixed-delay wires.
pub struct Harness {
    instances: BTreeMap<RouterId, Instance>,
    wires: Vec<Wire>,
    pkts: BinaryHeap<PendingPkt>,
    seq: u64,
    now: Timestamp,
    loss: f64,
    rng: StdRng,
    /// FIB downloads observed per router (latest wins).
    pub fibs: BTreeMap<RouterId, RouteTable>,
    /// Count of delivered packets (for convergence benchmarks).
    pub delivered: u64,
    /// Count of dropped packets (wire down or random loss).
    pub dropped: u64,
}

impl Harness {
    /// An empty harness at time zero.
    pub fn new() -> Harness {
        Harness {
            instances: BTreeMap::new(),
            wires: Vec::new(),
            pkts: BinaryHeap::new(),
            seq: 0,
            now: Timestamp::ZERO,
            loss: 0.0,
            rng: StdRng::seed_from_u64(0),
            fibs: BTreeMap::new(),
            delivered: 0,
            dropped: 0,
        }
    }

    /// Fault injection: drop each packet independently with
    /// probability `loss` (deterministic per `seed`). The protocol's
    /// retransmission machinery must still converge the network —
    /// asserted by tests.
    pub fn set_loss(&mut self, loss: f64, seed: u64) {
        assert!((0.0..1.0).contains(&loss), "loss must be in [0,1)");
        self.loss = loss;
        self.rng = StdRng::seed_from_u64(seed);
    }

    /// Current simulated time.
    pub fn now(&self) -> Timestamp {
        self.now
    }

    /// Add a router with default configuration.
    pub fn add_router(&mut self, id: RouterId) {
        self.add_router_cfg(Config::new(id));
    }

    /// Add a router with explicit configuration.
    pub fn add_router_cfg(&mut self, cfg: Config) {
        let id = cfg.router_id;
        self.instances.insert(id, Instance::new(cfg));
    }

    /// Access an instance.
    pub fn instance(&self, id: RouterId) -> &Instance {
        &self.instances[&id]
    }

    /// Mutable access to an instance.
    pub fn instance_mut(&mut self, id: RouterId) -> &mut Instance {
        self.instances.get_mut(&id).expect("unknown router")
    }

    /// All router ids.
    pub fn routers(&self) -> Vec<RouterId> {
        self.instances.keys().copied().collect()
    }

    /// Connect two routers with a symmetric wire. Allocates the next
    /// free interface id on each side; returns them.
    pub fn connect(
        &mut self,
        a: RouterId,
        b: RouterId,
        cost: Metric,
        delay: Dur,
    ) -> (IfaceId, IfaceId) {
        let ia = self.next_iface(a);
        let ib = self.next_iface(b);
        self.instances.get_mut(&a).unwrap().add_iface(ia, cost);
        self.instances.get_mut(&b).unwrap().add_iface(ib, cost);
        self.wires.push(Wire {
            a: (a, ia),
            b: (b, ib),
            delay,
            up: true,
        });
        (ia, ib)
    }

    fn next_iface(&self, r: RouterId) -> IfaceId {
        let used = self
            .wires
            .iter()
            .flat_map(|w| [w.a, w.b])
            .filter(|(rid, _)| *rid == r)
            .count();
        IfaceId(used as u16)
    }

    /// Bring a wire down/up by endpoints (first matching wire).
    pub fn set_wire_up(&mut self, a: RouterId, b: RouterId, up: bool) -> bool {
        for w in &mut self.wires {
            let ends = (w.a.0, w.b.0);
            if ends == (a, b) || ends == (b, a) {
                w.up = up;
                return true;
            }
        }
        false
    }

    /// Start every instance at the current time.
    pub fn start_all(&mut self) {
        let now = self.now;
        for inst in self.instances.values_mut() {
            inst.start(now);
        }
        self.collect_outputs();
    }

    fn route_pkt(&self, from: RouterId, iface: IfaceId) -> Option<(RouterId, IfaceId, Dur)> {
        for w in &self.wires {
            if !w.up {
                continue;
            }
            if w.a == (from, iface) {
                return Some((w.b.0, w.b.1, w.delay));
            }
            if w.b == (from, iface) {
                return Some((w.a.0, w.a.1, w.delay));
            }
        }
        None
    }

    fn collect_outputs(&mut self) {
        let ids: Vec<RouterId> = self.instances.keys().copied().collect();
        let mut to_send: Vec<(RouterId, IfaceId, Bytes)> = Vec::new();
        for id in ids {
            let inst = self.instances.get_mut(&id).unwrap();
            for out in inst.drain_output() {
                match out {
                    Output::Send { iface, data } => to_send.push((id, iface, data)),
                    Output::FibUpdate(table) => {
                        self.fibs.insert(id, table);
                    }
                    Output::NeighborChange { .. } => {}
                }
            }
        }
        for (from, iface, data) in to_send {
            match self.route_pkt(from, iface) {
                Some((to, rif, delay)) => {
                    if self.loss > 0.0 && self.rng.gen::<f64>() < self.loss {
                        self.dropped += 1;
                        continue;
                    }
                    self.seq += 1;
                    self.pkts.push(PendingPkt {
                        at: self.now + delay,
                        seq: self.seq,
                        to,
                        iface: rif,
                        data,
                    });
                }
                None => self.dropped += 1,
            }
        }
    }

    fn next_event_time(&self) -> Option<Timestamp> {
        let pkt = self.pkts.peek().map(|p| p.at);
        let timer = self.instances.values().filter_map(|i| i.next_timer()).min();
        match (pkt, timer) {
            (Some(a), Some(b)) => Some(a.min(b)),
            (Some(a), None) => Some(a),
            (None, Some(b)) => Some(b),
            (None, None) => None,
        }
    }

    /// Advance simulated time to `until`, processing all events in
    /// order. Returns the number of events processed.
    pub fn run_until(&mut self, until: Timestamp) -> u64 {
        let mut events = 0;
        while let Some(t) = self.next_event_time() {
            if t > until {
                break;
            }
            self.now = self.now.max(t);
            // Deliver every packet due now.
            while self.pkts.peek().map(|p| p.at <= self.now).unwrap_or(false) {
                let p = self.pkts.pop().unwrap();
                events += 1;
                if let Some(inst) = self.instances.get_mut(&p.to) {
                    // Decode errors are the receiver's problem (they
                    // count them); the harness keeps running.
                    let _ = inst.handle_packet(p.iface, p.data, self.now);
                    self.delivered += 1;
                }
            }
            // Fire timers due now.
            let now = self.now;
            for inst in self.instances.values_mut() {
                if inst.next_timer().map(|t| t <= now).unwrap_or(false) {
                    inst.poll_timers(now);
                    events += 1;
                }
            }
            self.collect_outputs();
        }
        self.now = self.now.max(until);
        events
    }

    /// Run until no packets are in flight and the earliest timer is a
    /// periodic hello (i.e. the network is quiescent), or `deadline`
    /// passes. Returns `true` if quiescence was reached.
    pub fn run_until_converged(&mut self, deadline: Timestamp) -> bool {
        // Convergence check: every pair of adjacent started instances
        // has identical LSDB versions is too strong (versions are
        // per-instance); instead: no packets in flight and all
        // instances' LSDBs describe the same set of (key, seq).
        loop {
            // Process a chunk of events.
            let step = Dur::from_millis(200);
            let target = (self.now + step).min(deadline);
            self.run_until(target);
            if self.pkts.is_empty() && self.lsdbs_agree() {
                return true;
            }
            if self.now >= deadline {
                return self.pkts.is_empty() && self.lsdbs_agree();
            }
        }
    }

    /// `true` if every instance's LSDB holds exactly the same LSA
    /// headers (ignoring age).
    pub fn lsdbs_agree(&self) -> bool {
        let mut iter = self.instances.values();
        let Some(first) = iter.next() else {
            return true;
        };
        let canon = |i: &Instance| -> Vec<(crate::lsa::LsaKey, crate::types::SeqNum)> {
            let mut v: Vec<_> = i.lsdb().iter().map(|l| (l.key, l.seq)).collect();
            v.sort();
            v
        };
        let reference = canon(first);
        iter.all(|i| canon(i) == reference)
    }
}

impl Default for Harness {
    fn default() -> Self {
        Harness::new()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::types::Prefix;

    fn r(n: u32) -> RouterId {
        RouterId(n)
    }

    /// Three routers in a line: r1 - r2 - r3, prefix at r3.
    fn line3() -> Harness {
        let mut h = Harness::new();
        for i in 1..=3 {
            h.add_router(r(i));
        }
        h.connect(r(1), r(2), Metric(10), Dur::from_millis(1));
        h.connect(r(2), r(3), Metric(10), Dur::from_millis(1));
        h.instance_mut(r(3)).announce(Prefix::net24(1), Metric(0));
        h
    }

    #[test]
    fn line_converges_and_routes() {
        let mut h = line3();
        h.start_all();
        assert!(h.run_until_converged(Timestamp::from_secs(30)));
        let fib1 = h.fibs.get(&r(1)).expect("r1 has a FIB");
        let route = fib1.route(Prefix::net24(1)).expect("r1 routes to prefix");
        assert_eq!(route.dist, Metric(20));
        assert_eq!(route.nexthops, vec![crate::types::FwAddr::primary(r(2))]);
        // All LSDBs agree on content.
        assert!(h.lsdbs_agree());
    }

    #[test]
    fn fake_lsa_floods_to_every_router() {
        let mut h = line3();
        h.start_all();
        assert!(h.run_until_converged(Timestamp::from_secs(30)));
        // Controller-style injection at r1: fake node attached to r3.
        h.instance_mut(r(1))
            .inject_fake(
                RouterId::fake(0),
                r(3),
                Metric(1),
                Prefix::net24(1),
                Metric(1),
                crate::types::FwAddr::primary(r(2)),
            )
            .unwrap();
        let t = h.now();
        assert!(h.run_until_converged(t + Dur::from_secs(30)));
        for id in [r(1), r(2), r(3)] {
            let has_fake = h
                .instance(id)
                .lsdb()
                .iter()
                .any(|l| l.key.origin == RouterId::fake(0));
            assert!(has_fake, "router {id} missing the fake LSA");
        }
    }

    #[test]
    fn retraction_purges_everywhere() {
        let mut h = line3();
        h.start_all();
        assert!(h.run_until_converged(Timestamp::from_secs(30)));
        h.instance_mut(r(1))
            .inject_fake(
                RouterId::fake(0),
                r(3),
                Metric(1),
                Prefix::net24(1),
                Metric(1),
                crate::types::FwAddr::primary(r(2)),
            )
            .unwrap();
        let t = h.now();
        assert!(h.run_until_converged(t + Dur::from_secs(30)));
        h.instance_mut(r(1))
            .retract_fake(RouterId::fake(0))
            .unwrap();
        let t = h.now();
        assert!(h.run_until_converged(t + Dur::from_secs(30)));
        for id in [r(1), r(2), r(3)] {
            let has_fake = h
                .instance(id)
                .lsdb()
                .iter()
                .any(|l| l.key.origin == RouterId::fake(0));
            assert!(!has_fake, "router {id} still holds the purged fake LSA");
        }
    }

    #[test]
    fn convergence_survives_packet_loss() {
        // Random loss: hellos, DBDs, updates and acks all get dropped;
        // retransmissions must still converge the network. (This test
        // caught two real protocol bugs: a lost final DBD chunk
        // deadlocking the slave, and a database summary snapshot taken
        // before concurrently learned LSAs could flood.)
        for seed in 1..=6u64 {
            for loss in [0.1, 0.25] {
                let mut h = line3();
                h.set_loss(loss, seed);
                h.start_all();
                // Under heavy loss, dead intervals can legitimately
                // fire (4 consecutive hellos lost) and flap an
                // adjacency; wait for a window where the network is
                // both quiescent and fully routed.
                let mut routed = false;
                while h.now() < Timestamp::from_secs(240) {
                    let t = h.now();
                    h.run_until_converged(t + Dur::from_secs(2));
                    let ok = h.lsdbs_agree()
                        && h.fibs
                            .get(&r(1))
                            .map(|f| {
                                f.nexthops(Prefix::net24(1))
                                    == [crate::types::FwAddr::primary(r(2))]
                            })
                            .unwrap_or(false);
                    if ok {
                        routed = true;
                        break;
                    }
                }
                assert!(routed, "seed {seed} loss {loss}: never fully routed");
                assert!(h.dropped > 0, "seed {seed}: loss was never exercised");
            }
        }
    }

    #[test]
    fn lie_injection_survives_packet_loss() {
        let mut h = line3();
        h.set_loss(0.2, 7);
        h.start_all();
        assert!(h.run_until_converged(Timestamp::from_secs(120)));
        h.instance_mut(r(1))
            .inject_fake(
                RouterId::fake(0),
                r(3),
                Metric(1),
                Prefix::net24(1),
                Metric(1),
                crate::types::FwAddr::primary(r(2)),
            )
            .unwrap();
        let t = h.now();
        assert!(h.run_until_converged(t + Dur::from_secs(120)));
        for id in [r(1), r(2), r(3)] {
            assert!(
                h.instance(id)
                    .lsdb()
                    .iter()
                    .any(|l| l.key.origin == RouterId::fake(0)),
                "router {id} missing the fake LSA despite retransmissions"
            );
        }
    }

    #[test]
    fn link_failure_reroutes() {
        // Square: r1-r2, r2-r4, r1-r3, r3-r4; prefix at r4.
        let mut h = Harness::new();
        for i in 1..=4 {
            h.add_router(r(i));
        }
        h.connect(r(1), r(2), Metric(1), Dur::from_millis(1));
        h.connect(r(2), r(4), Metric(1), Dur::from_millis(1));
        h.connect(r(1), r(3), Metric(5), Dur::from_millis(1));
        h.connect(r(3), r(4), Metric(5), Dur::from_millis(1));
        h.instance_mut(r(4)).announce(Prefix::net24(1), Metric(0));
        h.start_all();
        assert!(h.run_until_converged(Timestamp::from_secs(30)));
        let p = Prefix::net24(1);
        assert_eq!(
            h.fibs[&r(1)].nexthops(p),
            &[crate::types::FwAddr::primary(r(2))]
        );
        // Fail r1-r2; r1 must reroute via r3 once the dead interval
        // expires.
        assert!(h.set_wire_up(r(1), r(2), false));
        let t = h.now();
        h.run_until(t + Dur::from_secs(10));
        assert_eq!(
            h.fibs[&r(1)].nexthops(p),
            &[crate::types::FwAddr::primary(r(3))],
            "r1 should reroute via r3 after the failure"
        );
    }
}
