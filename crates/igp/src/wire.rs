//! Wire codec for the IGP's five packet types.
//!
//! The protocol exchanges Hello, Database Description (DBD), Link-State
//! Request, Link-State Update and Link-State Ack packets over
//! point-to-point interfaces. All integers are big-endian. Every packet
//! carries a Fletcher-16 checksum (the same family OSPF uses for LSAs)
//! computed over the whole packet with the checksum field zeroed.
//!
//! The codec is strict: trailing garbage, bad lengths, unknown
//! discriminants and checksum mismatches are all decode errors — a
//! router never acts on a packet it cannot fully validate.

use crate::error::WireError;
use crate::lsa::{Lsa, LsaBody, LsaHeader, LsaKey, LsaKind, LsaLink};
use crate::types::{FwAddr, Metric, Prefix, RouterId, SeqNum};
use bytes::{Buf, BufMut, Bytes, BytesMut};

/// Protocol version carried in every packet header.
pub const VERSION: u8 = 1;

/// Fixed packet header length in bytes.
pub const HEADER_LEN: usize = 12;

/// Encoded length of an LSA header.
pub const LSA_HEADER_LEN: usize = 15;

/// A decoded protocol packet.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum Packet {
    /// Periodic liveness + neighbor discovery.
    Hello(Hello),
    /// Database description (summary of LSDB contents).
    Dbd(Dbd),
    /// Request for specific full LSAs.
    LsRequest(LsRequest),
    /// Flooded or requested full LSAs.
    LsUpdate(LsUpdate),
    /// Explicit acknowledgment of received LSAs.
    LsAck(LsAck),
}

/// Hello packet body.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Hello {
    /// Sender's hello interval, in seconds.
    pub hello_interval: u16,
    /// Sender's dead interval, in seconds.
    pub dead_interval: u16,
    /// Routers the sender has recently heard hellos from.
    pub seen: Vec<RouterId>,
}

/// Database description packet body.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Dbd {
    /// Init bit: first packet of the exchange.
    pub init: bool,
    /// More bit: sender has further headers to describe.
    pub more: bool,
    /// Master bit: sender claims the master role.
    pub master: bool,
    /// Exchange sequence number.
    pub dd_seq: u32,
    /// Described LSA headers.
    pub headers: Vec<LsaHeader>,
}

/// Link-state request packet body.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct LsRequest {
    /// Keys of the LSAs being requested.
    pub keys: Vec<LsaKey>,
}

/// Link-state update packet body.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct LsUpdate {
    /// Full LSAs being flooded.
    pub lsas: Vec<Lsa>,
}

/// Link-state ack packet body.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct LsAck {
    /// Headers of the LSAs being acknowledged.
    pub headers: Vec<LsaHeader>,
}

impl Packet {
    /// Wire discriminant for this packet type.
    pub fn type_byte(&self) -> u8 {
        match self {
            Packet::Hello(_) => 1,
            Packet::Dbd(_) => 2,
            Packet::LsRequest(_) => 3,
            Packet::LsUpdate(_) => 4,
            Packet::LsAck(_) => 5,
        }
    }
}

/// Fletcher-16 checksum (two running sums mod 255) over `data`.
pub fn fletcher16(data: &[u8]) -> u16 {
    let mut c0: u32 = 0;
    let mut c1: u32 = 0;
    for chunk in data.chunks(5802) {
        // 5802 is the largest block for which u32 sums cannot overflow.
        for &b in chunk {
            c0 += u32::from(b);
            c1 += c0;
        }
        c0 %= 255;
        c1 %= 255;
    }
    ((c1 as u16) << 8) | c0 as u16
}

fn put_prefix(buf: &mut BytesMut, p: Prefix) {
    buf.put_u32(p.addr());
    buf.put_u8(p.len());
}

fn get_prefix(buf: &mut Bytes) -> Result<Prefix, WireError> {
    need(buf, 5)?;
    let addr = buf.get_u32();
    let len = buf.get_u8();
    if len > 32 {
        return Err(WireError::BadPrefixLen(len));
    }
    Ok(Prefix::new(addr, len))
}

fn need(buf: &Bytes, n: usize) -> Result<(), WireError> {
    if buf.remaining() < n {
        Err(WireError::Truncated {
            need: n,
            have: buf.remaining(),
        })
    } else {
        Ok(())
    }
}

fn put_lsa_header(buf: &mut BytesMut, h: &LsaHeader) {
    buf.put_u32(h.key.origin.0);
    buf.put_u8(h.key.kind as u8);
    buf.put_u32(h.key.id);
    buf.put_i32(h.seq.0);
    buf.put_u16(h.age);
}

fn get_lsa_header(buf: &mut Bytes) -> Result<LsaHeader, WireError> {
    need(buf, LSA_HEADER_LEN)?;
    let origin = RouterId(buf.get_u32());
    let kind_byte = buf.get_u8();
    let kind = LsaKind::from_u8(kind_byte).ok_or(WireError::BadLsaKind(kind_byte))?;
    let id = buf.get_u32();
    let seq = SeqNum(buf.get_i32());
    let age = buf.get_u16();
    Ok(LsaHeader {
        key: LsaKey { origin, kind, id },
        seq,
        age,
    })
}

/// Encode a full LSA (header + length-prefixed body).
pub fn encode_lsa(lsa: &Lsa, buf: &mut BytesMut) {
    put_lsa_header(
        buf,
        &LsaHeader {
            key: lsa.key,
            seq: lsa.seq,
            age: lsa.age,
        },
    );
    let mut body = BytesMut::new();
    match &lsa.body {
        LsaBody::Router { links } => {
            body.put_u16(links.len() as u16);
            for l in links {
                body.put_u32(l.to.0);
                body.put_u32(l.metric.0);
            }
        }
        LsaBody::Prefix { prefix, metric } => {
            put_prefix(&mut body, *prefix);
            body.put_u32(metric.0);
        }
        LsaBody::Fake {
            attach,
            attach_metric,
            prefix,
            prefix_metric,
            fw,
        } => {
            body.put_u32(attach.0);
            body.put_u32(attach_metric.0);
            put_prefix(&mut body, *prefix);
            body.put_u32(prefix_metric.0);
            body.put_u32(fw.router.0);
            body.put_u16(fw.addr);
        }
    }
    buf.put_u16(body.len() as u16);
    buf.extend_from_slice(&body);
}

/// Decode a full LSA; validates the body length and kind consistency.
pub fn decode_lsa(buf: &mut Bytes) -> Result<Lsa, WireError> {
    let hdr = get_lsa_header(buf)?;
    need(buf, 2)?;
    let body_len = buf.get_u16() as usize;
    need(buf, body_len)?;
    let mut body = buf.split_to(body_len);
    let parsed = match hdr.key.kind {
        LsaKind::Router => {
            if body.remaining() < 2 {
                return Err(WireError::Truncated {
                    need: 2,
                    have: body.remaining(),
                });
            }
            let n = body.get_u16() as usize;
            let mut links = Vec::with_capacity(n.min(1024));
            for _ in 0..n {
                need(&body, 8)?;
                links.push(LsaLink {
                    to: RouterId(body.get_u32()),
                    metric: Metric(body.get_u32()),
                });
            }
            LsaBody::Router { links }
        }
        LsaKind::Prefix => {
            let prefix = get_prefix(&mut body)?;
            need(&body, 4)?;
            let metric = Metric(body.get_u32());
            LsaBody::Prefix { prefix, metric }
        }
        LsaKind::Fake => {
            need(&body, 8)?;
            let attach = RouterId(body.get_u32());
            let attach_metric = Metric(body.get_u32());
            let prefix = get_prefix(&mut body)?;
            need(&body, 10)?;
            let prefix_metric = Metric(body.get_u32());
            let fw_router = RouterId(body.get_u32());
            let fw_addr = body.get_u16();
            LsaBody::Fake {
                attach,
                attach_metric,
                prefix,
                prefix_metric,
                fw: FwAddr {
                    router: fw_router,
                    addr: fw_addr,
                },
            }
        }
    };
    if body.has_remaining() {
        return Err(WireError::BadLength {
            declared: body_len,
            actual: body_len - body.remaining(),
        });
    }
    Ok(Lsa {
        key: hdr.key,
        seq: hdr.seq,
        age: hdr.age,
        body: parsed,
    })
}

/// Encode a packet (header + body + checksum) ready for transmission.
pub fn encode(packet: &Packet, sender: RouterId) -> Bytes {
    let mut body = BytesMut::new();
    match packet {
        Packet::Hello(h) => {
            body.put_u16(h.hello_interval);
            body.put_u16(h.dead_interval);
            body.put_u16(h.seen.len() as u16);
            for r in &h.seen {
                body.put_u32(r.0);
            }
        }
        Packet::Dbd(d) => {
            let mut flags = 0u8;
            if d.init {
                flags |= 0x1;
            }
            if d.more {
                flags |= 0x2;
            }
            if d.master {
                flags |= 0x4;
            }
            body.put_u8(flags);
            body.put_u32(d.dd_seq);
            body.put_u16(d.headers.len() as u16);
            for h in &d.headers {
                put_lsa_header(&mut body, h);
            }
        }
        Packet::LsRequest(r) => {
            body.put_u16(r.keys.len() as u16);
            for k in &r.keys {
                body.put_u32(k.origin.0);
                body.put_u8(k.kind as u8);
                body.put_u32(k.id);
            }
        }
        Packet::LsUpdate(u) => {
            body.put_u16(u.lsas.len() as u16);
            for l in &u.lsas {
                encode_lsa(l, &mut body);
            }
        }
        Packet::LsAck(a) => {
            body.put_u16(a.headers.len() as u16);
            for h in &a.headers {
                put_lsa_header(&mut body, h);
            }
        }
    }

    let total = HEADER_LEN + body.len();
    let mut out = BytesMut::with_capacity(total);
    out.put_u8(VERSION);
    out.put_u8(packet.type_byte());
    out.put_u16(total as u16);
    out.put_u32(sender.0);
    out.put_u16(0); // checksum placeholder
    out.put_u16(0); // reserved
    out.extend_from_slice(&body);
    let ck = fletcher16(&out);
    out[8] = (ck >> 8) as u8;
    out[9] = (ck & 0xff) as u8;
    out.freeze()
}

/// Decode and validate a packet; returns the sender and the payload.
pub fn decode(mut buf: Bytes) -> Result<(RouterId, Packet), WireError> {
    if buf.remaining() < HEADER_LEN {
        return Err(WireError::Truncated {
            need: HEADER_LEN,
            have: buf.remaining(),
        });
    }
    // Verify checksum over the whole datagram with ck field zeroed.
    let mut copy = buf.to_vec();
    let got = (u16::from(copy[8]) << 8) | u16::from(copy[9]);
    copy[8] = 0;
    copy[9] = 0;
    let expect = fletcher16(&copy);
    if got != expect {
        return Err(WireError::BadChecksum { expect, got });
    }

    let version = buf.get_u8();
    if version != VERSION {
        return Err(WireError::BadVersion(version));
    }
    let ptype = buf.get_u8();
    let declared = buf.get_u16() as usize;
    if declared != copy.len() {
        return Err(WireError::BadLength {
            declared,
            actual: copy.len(),
        });
    }
    let sender = RouterId(buf.get_u32());
    let _ck = buf.get_u16();
    let _reserved = buf.get_u16();

    let packet = match ptype {
        1 => {
            need(&buf, 6)?;
            let hello_interval = buf.get_u16();
            let dead_interval = buf.get_u16();
            let n = buf.get_u16() as usize;
            let mut seen = Vec::with_capacity(n.min(4096));
            for _ in 0..n {
                need(&buf, 4)?;
                seen.push(RouterId(buf.get_u32()));
            }
            Packet::Hello(Hello {
                hello_interval,
                dead_interval,
                seen,
            })
        }
        2 => {
            need(&buf, 7)?;
            let flags = buf.get_u8();
            let dd_seq = buf.get_u32();
            let n = buf.get_u16() as usize;
            let mut headers = Vec::with_capacity(n.min(4096));
            for _ in 0..n {
                headers.push(get_lsa_header(&mut buf)?);
            }
            Packet::Dbd(Dbd {
                init: flags & 0x1 != 0,
                more: flags & 0x2 != 0,
                master: flags & 0x4 != 0,
                dd_seq,
                headers,
            })
        }
        3 => {
            need(&buf, 2)?;
            let n = buf.get_u16() as usize;
            let mut keys = Vec::with_capacity(n.min(4096));
            for _ in 0..n {
                need(&buf, 9)?;
                let origin = RouterId(buf.get_u32());
                let kind_byte = buf.get_u8();
                let kind = LsaKind::from_u8(kind_byte).ok_or(WireError::BadLsaKind(kind_byte))?;
                let id = buf.get_u32();
                keys.push(LsaKey { origin, kind, id });
            }
            Packet::LsRequest(LsRequest { keys })
        }
        4 => {
            need(&buf, 2)?;
            let n = buf.get_u16() as usize;
            let mut lsas = Vec::with_capacity(n.min(4096));
            for _ in 0..n {
                lsas.push(decode_lsa(&mut buf)?);
            }
            Packet::LsUpdate(LsUpdate { lsas })
        }
        5 => {
            need(&buf, 2)?;
            let n = buf.get_u16() as usize;
            let mut headers = Vec::with_capacity(n.min(4096));
            for _ in 0..n {
                headers.push(get_lsa_header(&mut buf)?);
            }
            Packet::LsAck(LsAck { headers })
        }
        other => return Err(WireError::BadPacketType(other)),
    };
    if buf.has_remaining() {
        return Err(WireError::BadLength {
            declared,
            actual: declared - buf.remaining(),
        });
    }
    Ok((sender, packet))
}

#[cfg(test)]
mod tests {
    use super::*;

    fn roundtrip(p: Packet) {
        let bytes = encode(&p, RouterId(42));
        let (sender, decoded) = decode(bytes).expect("decode");
        assert_eq!(sender, RouterId(42));
        assert_eq!(decoded, p);
    }

    #[test]
    fn hello_roundtrip() {
        roundtrip(Packet::Hello(Hello {
            hello_interval: 1,
            dead_interval: 4,
            seen: vec![RouterId(1), RouterId(9)],
        }));
        roundtrip(Packet::Hello(Hello {
            hello_interval: 10,
            dead_interval: 40,
            seen: vec![],
        }));
    }

    #[test]
    fn dbd_roundtrip() {
        roundtrip(Packet::Dbd(Dbd {
            init: true,
            more: true,
            master: false,
            dd_seq: 0xdead_beef,
            headers: vec![LsaHeader {
                key: LsaKey {
                    origin: RouterId(3),
                    kind: LsaKind::Router,
                    id: 0,
                },
                seq: SeqNum(17),
                age: 12,
            }],
        }));
    }

    #[test]
    fn request_roundtrip() {
        roundtrip(Packet::LsRequest(LsRequest {
            keys: vec![
                LsaKey {
                    origin: RouterId(1),
                    kind: LsaKind::Prefix,
                    id: 4,
                },
                LsaKey {
                    origin: RouterId::fake(2),
                    kind: LsaKind::Fake,
                    id: 0,
                },
            ],
        }));
    }

    #[test]
    fn update_roundtrip_all_lsa_kinds() {
        let lsas = vec![
            Lsa::router(
                RouterId(1),
                SeqNum(3),
                vec![
                    LsaLink {
                        to: RouterId(2),
                        metric: Metric(10),
                    },
                    LsaLink {
                        to: RouterId(7),
                        metric: Metric(2),
                    },
                ],
            ),
            Lsa::prefix(RouterId(1), 1, SeqNum(2), Prefix::net24(9), Metric(0)),
            Lsa::fake(
                RouterId::fake(5),
                SeqNum(1),
                RouterId(1),
                Metric(1),
                Prefix::net24(9),
                Metric(1),
                FwAddr::secondary(RouterId(2), 3),
            ),
        ];
        roundtrip(Packet::LsUpdate(LsUpdate { lsas }));
    }

    #[test]
    fn ack_roundtrip() {
        roundtrip(Packet::LsAck(LsAck {
            headers: vec![LsaHeader {
                key: LsaKey {
                    origin: RouterId(6),
                    kind: LsaKind::Fake,
                    id: 1,
                },
                seq: SeqNum(-4),
                age: 3600,
            }],
        }));
    }

    #[test]
    fn corruption_is_detected() {
        let bytes = encode(
            &Packet::Hello(Hello {
                hello_interval: 1,
                dead_interval: 4,
                seen: vec![RouterId(1)],
            }),
            RouterId(42),
        );
        // Fletcher-16 cannot see 0x00 ↔ 0xff flips (255 ≡ 0 mod 255),
        // like the real OSPF checksum; a ±1 change is always caught.
        for i in 0..bytes.len() {
            let mut corrupted = bytes.to_vec();
            corrupted[i] ^= 0x01;
            let res = decode(Bytes::from(corrupted));
            assert!(res.is_err(), "corruption at byte {i} went undetected");
        }
    }

    #[test]
    fn truncation_is_detected() {
        let bytes = encode(
            &Packet::Hello(Hello {
                hello_interval: 1,
                dead_interval: 4,
                seen: vec![RouterId(1), RouterId(2)],
            }),
            RouterId(42),
        );
        for cut in 0..bytes.len() {
            let res = decode(bytes.slice(0..cut));
            assert!(res.is_err(), "truncation to {cut} bytes went undetected");
        }
    }

    #[test]
    fn fletcher_matches_reference_values() {
        assert_eq!(fletcher16(b""), 0);
        assert_eq!(fletcher16(b"\x01\x02"), {
            // c0 = 3, c1 = 1 + 3 = 4
            (4 << 8) | 3
        });
        assert_eq!(fletcher16(b"abcde"), {
            let mut c0: u32 = 0;
            let mut c1: u32 = 0;
            for &b in b"abcde" {
                c0 = (c0 + u32::from(b)) % 255;
                c1 = (c1 + c0) % 255;
            }
            ((c1 as u16) << 8) | c0 as u16
        });
    }

    #[test]
    fn bad_version_and_type_rejected() {
        let good = encode(
            &Packet::Hello(Hello {
                hello_interval: 1,
                dead_interval: 4,
                seen: vec![],
            }),
            RouterId(1),
        );
        // Flip version, fix checksum.
        let mut v = good.to_vec();
        v[0] = 9;
        v[8] = 0;
        v[9] = 0;
        let ck = fletcher16(&v);
        v[8] = (ck >> 8) as u8;
        v[9] = (ck & 0xff) as u8;
        assert!(matches!(
            decode(Bytes::from(v)),
            Err(WireError::BadVersion(9))
        ));

        let mut v = good.to_vec();
        v[1] = 0x7f;
        v[8] = 0;
        v[9] = 0;
        let ck = fletcher16(&v);
        v[8] = (ck >> 8) as u8;
        v[9] = (ck & 0xff) as u8;
        assert!(matches!(
            decode(Bytes::from(v)),
            Err(WireError::BadPacketType(0x7f))
        ));
    }
}
