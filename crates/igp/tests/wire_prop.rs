//! Property-based tests of the wire codec: arbitrary valid packets
//! roundtrip byte-exactly, and the decoder never panics on arbitrary
//! input (it is fed by a network).

use bytes::Bytes;
use fib_igp::lsa::{Lsa, LsaHeader, LsaKey, LsaKind, LsaLink};
use fib_igp::types::{FwAddr, Metric, Prefix, RouterId, SeqNum};
use fib_igp::wire::{decode, encode, Dbd, Hello, LsAck, LsRequest, LsUpdate, Packet};
use proptest::prelude::*;

fn arb_router() -> impl Strategy<Value = RouterId> {
    any::<u32>().prop_map(RouterId)
}

fn arb_prefix() -> impl Strategy<Value = Prefix> {
    (any::<u32>(), 0u8..=32).prop_map(|(a, l)| Prefix::new(a, l))
}

fn arb_kind() -> impl Strategy<Value = LsaKind> {
    prop_oneof![
        Just(LsaKind::Router),
        Just(LsaKind::Prefix),
        Just(LsaKind::Fake),
    ]
}

fn arb_header() -> impl Strategy<Value = LsaHeader> {
    (
        arb_router(),
        arb_kind(),
        any::<u32>(),
        any::<i32>(),
        any::<u16>(),
    )
        .prop_map(|(origin, kind, id, seq, age)| LsaHeader {
            key: LsaKey { origin, kind, id },
            seq: SeqNum(seq),
            age,
        })
}

fn arb_lsa() -> impl Strategy<Value = Lsa> {
    let router = (
        arb_router(),
        any::<i32>(),
        any::<u16>(),
        proptest::collection::vec((arb_router(), any::<u32>()), 0..12),
    )
        .prop_map(|(origin, seq, age, links)| {
            let mut l = Lsa::router(
                origin,
                SeqNum(seq),
                links
                    .into_iter()
                    .map(|(to, m)| LsaLink {
                        to,
                        metric: Metric(m),
                    })
                    .collect(),
            );
            l.age = age;
            l
        });
    let prefix = (
        arb_router(),
        any::<u32>(),
        any::<i32>(),
        any::<u16>(),
        arb_prefix(),
        any::<u32>(),
    )
        .prop_map(|(origin, id, seq, age, p, m)| {
            let mut l = Lsa::prefix(origin, id, SeqNum(seq), p, Metric(m));
            l.age = age;
            l
        });
    let fake = (
        any::<u32>(),
        any::<i32>(),
        any::<u16>(),
        arb_router(),
        any::<u32>(),
        arb_prefix(),
        any::<u32>(),
        arb_router(),
        any::<u16>(),
    )
        .prop_map(|(fid, seq, age, attach, am, p, pm, fwr, fwa)| {
            let mut l = Lsa::fake(
                RouterId::fake(fid % 0x7fff_ffff),
                SeqNum(seq),
                attach,
                Metric(am),
                p,
                Metric(pm),
                FwAddr {
                    router: fwr,
                    addr: fwa,
                },
            );
            l.age = age;
            l
        });
    prop_oneof![router, prefix, fake]
}

fn arb_packet() -> impl Strategy<Value = Packet> {
    let hello = (
        any::<u16>(),
        any::<u16>(),
        proptest::collection::vec(arb_router(), 0..8),
    )
        .prop_map(|(h, d, seen)| {
            Packet::Hello(Hello {
                hello_interval: h,
                dead_interval: d,
                seen,
            })
        });
    let dbd = (
        any::<bool>(),
        any::<bool>(),
        any::<bool>(),
        any::<u32>(),
        proptest::collection::vec(arb_header(), 0..8),
    )
        .prop_map(|(init, more, master, dd_seq, headers)| {
            Packet::Dbd(Dbd {
                init,
                more,
                master,
                dd_seq,
                headers,
            })
        });
    let req = proptest::collection::vec((arb_router(), arb_kind(), any::<u32>()), 0..8).prop_map(
        |keys| {
            Packet::LsRequest(LsRequest {
                keys: keys
                    .into_iter()
                    .map(|(origin, kind, id)| LsaKey { origin, kind, id })
                    .collect(),
            })
        },
    );
    let upd = proptest::collection::vec(arb_lsa(), 0..6)
        .prop_map(|lsas| Packet::LsUpdate(LsUpdate { lsas }));
    let ack = proptest::collection::vec(arb_header(), 0..8)
        .prop_map(|headers| Packet::LsAck(LsAck { headers }));
    prop_oneof![hello, dbd, req, upd, ack]
}

proptest! {
    /// Any packet we can construct roundtrips exactly.
    #[test]
    fn roundtrip(pkt in arb_packet(), sender in arb_router()) {
        let bytes = encode(&pkt, sender);
        let (got_sender, got_pkt) = decode(bytes).expect("own encoding decodes");
        prop_assert_eq!(got_sender, sender);
        prop_assert_eq!(got_pkt, pkt);
    }

    /// The decoder never panics on arbitrary bytes — it either decodes
    /// or returns an error.
    #[test]
    fn decode_never_panics(data in proptest::collection::vec(any::<u8>(), 0..512)) {
        let _ = decode(Bytes::from(data));
    }

    /// Single-byte truncation of a valid packet is always rejected.
    #[test]
    fn truncation_rejected(pkt in arb_packet()) {
        let bytes = encode(&pkt, RouterId(1));
        if bytes.len() > 1 {
            let cut = bytes.slice(0..bytes.len() - 1);
            prop_assert!(decode(cut).is_err());
        }
    }
}
