//! Property tests of the topology generators: every graph a builder
//! can emit — on any seed — must be connected (the scenario engine
//! routes traffic on them) and byte-identical when rebuilt from the
//! same seed (the determinism story of the whole reproduction).

use fib_igp::builders::{fat_tree, random_connected, waxman};
use fib_igp::spf::shortest_paths;
use fib_igp::topology::Topology;
use fib_igp::types::RouterId;
use proptest::prelude::*;
use rand::rngs::StdRng;
use rand::SeedableRng;

/// Every router reachable from the lowest-id router.
fn assert_connected(t: &Topology) {
    let first = t.routers().next().expect("non-empty topology");
    let sp = shortest_paths(t, first);
    for r in t.routers() {
        assert!(sp.dist_to(r).is_finite(), "router {r} unreachable");
    }
}

/// Canonical link fingerprint for equality checks.
fn links_of(t: &Topology) -> Vec<(RouterId, RouterId, u32)> {
    t.all_links().map(|(a, b, m)| (a, b, m.0)).collect()
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(32))]

    #[test]
    fn random_connected_is_connected_and_deterministic(
        seed in 0u64..10_000,
        n in 2u32..40,
        extra in 0u32..20,
        max_metric in 1u32..10,
    ) {
        let build = || {
            let mut rng = StdRng::seed_from_u64(seed);
            random_connected(&mut rng, n, extra, max_metric)
        };
        let t = build();
        t.validate().expect("structurally valid");
        assert_connected(&t);
        prop_assert_eq!(links_of(&t), links_of(&build()));
    }

    #[test]
    fn waxman_is_connected_and_deterministic(
        seed in 0u64..10_000,
        n in 2u32..32,
        alpha in 0.05f64..1.0,
        beta in 0.05f64..1.0,
        max_metric in 1u32..8,
    ) {
        let build = || {
            let mut rng = StdRng::seed_from_u64(seed);
            waxman(&mut rng, n, alpha, beta, max_metric)
        };
        let t = build();
        t.validate().expect("structurally valid");
        assert_connected(&t);
        prop_assert_eq!(links_of(&t), links_of(&build()));
    }

    #[test]
    fn fat_tree_is_connected_with_expected_shape(half in 1u32..4) {
        let k = half * 2;
        let t = fat_tree(k);
        t.validate().expect("structurally valid");
        assert_connected(&t);
        let routers = (half * half) + k * k;
        prop_assert_eq!(t.router_count(), routers as usize);
        // Seed-independent builder: rebuilding gives the same graph.
        prop_assert_eq!(links_of(&t), links_of(&fat_tree(k)));
    }
}
