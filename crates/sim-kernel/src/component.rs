//! The flat component arena.
//!
//! Components are addressed by dense [`ComponentId`]s (`u32` indices)
//! — never by name or hash on a hot path. Names are kept alongside for
//! tracing and diagnostics only.

use std::fmt;

/// Dense handle of a registered component.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub struct ComponentId(pub u32);

impl ComponentId {
    /// The arena index.
    pub fn index(self) -> usize {
        self.0 as usize
    }
}

impl fmt::Display for ComponentId {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "#{}", self.0)
    }
}

/// Flat arena of boxed components with tracing names.
pub struct Registry<H: ?Sized> {
    items: Vec<Box<H>>,
    names: Vec<String>,
}

impl<H: ?Sized> Registry<H> {
    /// An empty registry.
    pub fn new() -> Self {
        Registry {
            items: Vec::new(),
            names: Vec::new(),
        }
    }

    /// Register a component; its id is the next dense index.
    pub fn register(&mut self, name: impl Into<String>, item: Box<H>) -> ComponentId {
        self.items.push(item);
        self.names.push(name.into());
        ComponentId((self.items.len() - 1) as u32)
    }

    /// Mutable access by id.
    pub fn get_mut(&mut self, id: ComponentId) -> Option<&mut H> {
        self.items.get_mut(id.index()).map(|b| &mut **b)
    }

    /// The tracing name of a component.
    pub fn name(&self, id: ComponentId) -> Option<&str> {
        self.names.get(id.index()).map(|s| s.as_str())
    }

    /// Number of registered components.
    pub fn len(&self) -> usize {
        self.items.len()
    }

    /// `true` if nothing is registered.
    pub fn is_empty(&self) -> bool {
        self.items.is_empty()
    }

    /// Iterate ids in registration order.
    pub fn ids(&self) -> impl Iterator<Item = ComponentId> {
        (0..self.items.len() as u32).map(ComponentId)
    }
}

impl<H: ?Sized> Default for Registry<H> {
    fn default() -> Self {
        Registry::new()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    trait Named {
        fn tag(&self) -> u32;
    }
    struct A(u32);
    impl Named for A {
        fn tag(&self) -> u32 {
            self.0
        }
    }

    #[test]
    fn registers_dense_ids_and_names() {
        let mut reg: Registry<dyn Named> = Registry::new();
        let a = reg.register("alpha", Box::new(A(1)));
        let b = reg.register("beta", Box::new(A(2)));
        assert_eq!((a, b), (ComponentId(0), ComponentId(1)));
        assert_eq!(reg.len(), 2);
        assert_eq!(reg.name(a), Some("alpha"));
        assert_eq!(reg.get_mut(b).unwrap().tag(), 2);
        assert!(reg.get_mut(ComponentId(9)).is_none());
        assert_eq!(reg.ids().collect::<Vec<_>>(), vec![a, b]);
    }
}
