//! Generic discrete-event simulation kernel.
//!
//! The reusable core under the Fibbing co-simulator (and any future
//! domain world): deterministic by construction, allocation-light on
//! the hot paths.
//!
//! * [`EventQueue`] — one time-ordered queue with stable FIFO
//!   tie-breaking and O(1) cancellable [`EventId`]s;
//! * [`DeadlineHeap`] — `O(log n)`-per-change tracking of the earliest
//!   internal timer across components that own timer wheels;
//! * [`ComponentId`] / [`Registry`] — a flat arena of components
//!   (dense `u32` handles on hot paths, names kept for tracing only);
//! * [`Simulation`] / [`SimContext`] / [`EventHandler`] — a seeded,
//!   clock-owning driver dispatching typed events to components.
//!
//! Domain simulators with batch semantics between events (rate
//! accrual, settlement) compose the primitives around their own loop;
//! see the "Event kernel" section of the repository ARCHITECTURE.md.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod component;
pub mod deadline;
pub mod queue;
pub mod sim;

pub use component::{ComponentId, Registry};
pub use deadline::DeadlineHeap;
pub use queue::{EventId, EventQueue, TieBreak};
pub use sim::{EventHandler, SimContext, Simulation};
