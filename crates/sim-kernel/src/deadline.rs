//! Lazy deadline tracking for components with internal timers.
//!
//! Protocol instances own their timer wheels; the simulator only needs
//! *the earliest deadline across all of them* to decide how far the
//! clock may jump. Scanning every component per batch is `O(n)` at
//! every single event — this heap makes it `O(log n)` per deadline
//! *change* instead, with stale entries discarded lazily: the
//! authoritative deadline per slot lives in `current`, and heap
//! entries are valid only while they match it.

use std::cmp::Reverse;
use std::collections::BinaryHeap;

/// Min-tracker of per-slot deadlines with lazy invalidation.
pub struct DeadlineHeap<T> {
    heap: BinaryHeap<Reverse<(T, u32)>>,
    current: Vec<Option<T>>,
}

impl<T: Ord + Copy> DeadlineHeap<T> {
    /// An empty heap.
    pub fn new() -> Self {
        DeadlineHeap {
            heap: BinaryHeap::new(),
            current: Vec::new(),
        }
    }

    /// Number of slots tracked.
    pub fn slots(&self) -> usize {
        self.current.len()
    }

    /// Append one slot (deadline unset); returns its index.
    pub fn push_slot(&mut self) -> u32 {
        self.current.push(None);
        (self.current.len() - 1) as u32
    }

    /// Set (or clear) a slot's deadline. Cheap no-op when unchanged.
    pub fn set(&mut self, slot: u32, deadline: Option<T>) {
        let cur = &mut self.current[slot as usize];
        if *cur == deadline {
            return;
        }
        *cur = deadline;
        if let Some(t) = deadline {
            self.heap.push(Reverse((t, slot)));
        }
    }

    /// The earliest live deadline, discarding stale heap entries.
    pub fn peek_min(&mut self) -> Option<T> {
        while let Some(Reverse((t, slot))) = self.heap.peek().copied() {
            if self.current[slot as usize] == Some(t) {
                return Some(t);
            }
            self.heap.pop();
        }
        None
    }

    /// Collect every slot whose deadline is `<= now` into `due`
    /// (cleared first). Each popped slot's deadline is reset to
    /// `None`; the caller must [`DeadlineHeap::set`] it again after
    /// servicing the slot, or further deadlines for it are lost.
    pub fn pop_due(&mut self, now: T, due: &mut Vec<u32>) {
        due.clear();
        while let Some(Reverse((t, slot))) = self.heap.peek().copied() {
            if self.current[slot as usize] != Some(t) {
                self.heap.pop();
                continue;
            }
            if t > now {
                break;
            }
            self.heap.pop();
            self.current[slot as usize] = None;
            due.push(slot);
        }
    }
}

impl<T: Ord + Copy> Default for DeadlineHeap<T> {
    fn default() -> Self {
        DeadlineHeap::new()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn tracks_minimum_across_slots() {
        let mut h = DeadlineHeap::new();
        let a = h.push_slot();
        let b = h.push_slot();
        let c = h.push_slot();
        h.set(a, Some(30u64));
        h.set(b, Some(10));
        h.set(c, Some(20));
        assert_eq!(h.peek_min(), Some(10));
        // Moving a deadline invalidates the old entry lazily.
        h.set(b, Some(40));
        assert_eq!(h.peek_min(), Some(20));
        h.set(c, None);
        assert_eq!(h.peek_min(), Some(30));
    }

    #[test]
    fn pop_due_collects_and_clears() {
        let mut h = DeadlineHeap::new();
        let a = h.push_slot();
        let b = h.push_slot();
        let c = h.push_slot();
        h.set(a, Some(5u64));
        h.set(b, Some(7));
        h.set(c, Some(9));
        let mut due = Vec::new();
        h.pop_due(7, &mut due);
        assert_eq!(due, vec![a, b]);
        // Popped slots are unset until re-armed.
        assert_eq!(h.peek_min(), Some(9));
        h.set(a, Some(8));
        h.pop_due(10, &mut due);
        assert_eq!(due, vec![a, c]);
        assert_eq!(h.peek_min(), None);
    }

    #[test]
    fn re_set_same_deadline_after_pop_rearms() {
        let mut h = DeadlineHeap::new();
        let a = h.push_slot();
        h.set(a, Some(5u64));
        let mut due = Vec::new();
        h.pop_due(5, &mut due);
        assert_eq!(due, vec![a]);
        h.set(a, Some(5));
        assert_eq!(h.peek_min(), Some(5));
    }
}
