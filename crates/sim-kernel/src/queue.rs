//! The time-ordered, cancellable event queue.
//!
//! One queue per simulation: entries are ordered by `(time, sequence)`
//! so simultaneous events pop in exactly the order they were pushed
//! (stable FIFO tie-break), which is what makes whole-run determinism
//! an invariant rather than an accident. Every push returns an
//! [`EventId`]; cancellation is O(1) (tombstone) and cancelled entries
//! are skipped lazily on pop, so neither path disturbs the heap.
//!
//! ## Controlled nondeterminism
//!
//! The FIFO tie-break is also the one place where a real network's
//! scheduling freedom hides: packets arriving "at the same instant"
//! have no canonical order, and the simulator's stable order is just
//! one of `n!` the physical world could serve. The queue therefore
//! accepts an optional [`TieBreak`] hook ([`EventQueue::set_tie_break`])
//! that, for every batch of two or more pending events sharing the
//! earliest timestamp, chooses the serving permutation. Unarmed
//! (default), the hook costs one branch per pop and the queue is
//! byte-identical to the stock FIFO behaviour; armed, an adversarial
//! explorer can enumerate or sample interleavings while cancellation,
//! `len`, and `peek_time` semantics stay exact.

use std::collections::BinaryHeap;
use std::collections::VecDeque;

/// A controlled-nondeterminism hook over same-time event batches.
///
/// When armed via [`EventQueue::set_tie_break`], the queue calls
/// [`TieBreak::permute`] once per batch of `n >= 2` pending events
/// sharing the earliest time. The hook writes a permutation of
/// `0..n` into `out` (index `0` = the event FIFO order would serve
/// first); leaving `out` empty selects the identity permutation, i.e.
/// stock FIFO. The hook observes every decision point it is asked
/// about, so an implementation can also record the schedule trace for
/// replay and distinctness accounting.
pub trait TieBreak<T>: Send {
    /// Choose the serving order for `n` events due at time `at`.
    ///
    /// `out` arrives empty; either leave it empty (identity) or fill
    /// it with a permutation of `0..n`. Anything else is a programming
    /// error and panics deterministically.
    fn permute(&mut self, at: T, n: usize, out: &mut Vec<u32>);
}

/// Handle to a scheduled event, returned by [`EventQueue::push`].
///
/// Ids are unique for the lifetime of the queue (they are the push
/// sequence number) and stay valid after the event fires — cancelling
/// a fired or already-cancelled event is a no-op that returns `false`.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub struct EventId(u64);

impl EventId {
    /// The raw sequence number (diagnostics only).
    pub fn raw(self) -> u64 {
        self.0
    }
}

struct Entry<T, E> {
    at: T,
    seq: u64,
    ev: E,
}

impl<T: Ord, E> PartialEq for Entry<T, E> {
    fn eq(&self, other: &Self) -> bool {
        self.at == other.at && self.seq == other.seq
    }
}
impl<T: Ord, E> Eq for Entry<T, E> {}
impl<T: Ord, E> PartialOrd for Entry<T, E> {
    fn partial_cmp(&self, other: &Self) -> Option<std::cmp::Ordering> {
        Some(self.cmp(other))
    }
}
impl<T: Ord, E> Ord for Entry<T, E> {
    fn cmp(&self, other: &Self) -> std::cmp::Ordering {
        // Reversed: BinaryHeap is a max-heap, we want earliest first,
        // and among equals the lowest sequence number (push order).
        other
            .at
            .cmp(&self.at)
            .then_with(|| other.seq.cmp(&self.seq))
    }
}

/// A min-heap of `(time, event)` with stable FIFO tie-breaking and
/// O(1) cancellation.
pub struct EventQueue<T, E> {
    heap: BinaryHeap<Entry<T, E>>,
    /// `pending[seq]` — true while the event with that sequence number
    /// is scheduled and not yet fired or cancelled. One byte per event
    /// ever pushed; the backstop for O(1) cancel and exact
    /// double-cancel / cancel-after-fire semantics.
    pending: Vec<bool>,
    live: usize,
    /// The armed tie-break strategy, if any (`None` = stock FIFO).
    hook: Option<Box<dyn TieBreak<T>>>,
    /// A drained same-time batch, already permuted into serving order.
    /// Entries here keep their `pending` bit set until actually served,
    /// so cancellation keeps working on buffered events.
    batch: VecDeque<Entry<T, E>>,
}

impl<T: Ord + Copy, E> EventQueue<T, E> {
    /// An empty queue.
    pub fn new() -> Self {
        EventQueue {
            heap: BinaryHeap::new(),
            pending: Vec::new(),
            live: 0,
            hook: None,
            batch: VecDeque::new(),
        }
    }

    /// Arm (or, with `None`, disarm) the same-time [`TieBreak`] hook.
    ///
    /// Disarming while a permuted batch is buffered keeps serving that
    /// batch in its committed order; only future batches revert to
    /// FIFO.
    pub fn set_tie_break(&mut self, hook: Option<Box<dyn TieBreak<T>>>) {
        self.hook = hook;
    }

    /// `true` while a [`TieBreak`] hook is armed.
    pub fn tie_break_armed(&self) -> bool {
        self.hook.is_some()
    }

    /// Schedule `ev` at time `at`; returns its cancellation handle.
    pub fn push(&mut self, at: T, ev: E) -> EventId {
        let seq = self.pending.len() as u64;
        self.pending.push(true);
        self.live += 1;
        self.heap.push(Entry { at, seq, ev });
        EventId(seq)
    }

    /// Cancel a scheduled event. Returns `true` iff the event was
    /// still pending (it will not fire); `false` if it already fired,
    /// was already cancelled, or was never scheduled here.
    pub fn cancel(&mut self, id: EventId) -> bool {
        match self.pending.get_mut(id.0 as usize) {
            Some(p) if *p => {
                *p = false;
                self.live -= 1;
                true
            }
            _ => false,
        }
    }

    /// The time of the earliest pending event, purging cancelled
    /// entries from the top of the heap.
    pub fn peek_time(&mut self) -> Option<T> {
        if self.hook.is_some() || !self.batch.is_empty() {
            self.purge_batch_front();
            let batch_at = self.batch.front().map(|e| e.at);
            let heap_at = self.peek_heap_time();
            return match (batch_at, heap_at) {
                (Some(b), Some(h)) => Some(if h < b { h } else { b }),
                (b, h) => b.or(h),
            };
        }
        self.peek_heap_time()
    }

    /// Pop the earliest pending event.
    pub fn pop(&mut self) -> Option<(T, E)> {
        if self.hook.is_some() || !self.batch.is_empty() {
            return self.pop_with_batch();
        }
        // Stock FIFO fast path: two branches above are the whole cost
        // of the unarmed hook.
        while let Some(e) = self.heap.pop() {
            let p = &mut self.pending[e.seq as usize];
            if *p {
                *p = false;
                self.live -= 1;
                return Some((e.at, e.ev));
            }
        }
        None
    }

    /// The earliest pending time in the heap alone, purging cancelled
    /// tops.
    fn peek_heap_time(&mut self) -> Option<T> {
        loop {
            let top = self.heap.peek()?;
            if self.pending[top.seq as usize] {
                return Some(top.at);
            }
            self.heap.pop();
        }
    }

    /// Drop cancelled entries off the front of the buffered batch.
    fn purge_batch_front(&mut self) {
        while let Some(front) = self.batch.front() {
            if self.pending[front.seq as usize] {
                break;
            }
            self.batch.pop_front();
        }
    }

    /// Serve an entry, clearing its pending bit.
    fn serve(&mut self, e: Entry<T, E>) -> (T, E) {
        self.pending[e.seq as usize] = false;
        self.live -= 1;
        (e.at, e.ev)
    }

    /// Pop on the armed (or batch-draining) path.
    fn pop_with_batch(&mut self) -> Option<(T, E)> {
        self.purge_batch_front();
        if self.batch.is_empty() {
            self.fill_batch();
        } else if let Some(h) = self.peek_heap_time() {
            // A push landed strictly *before* the buffered batch's
            // time (never happens under a monotone simulation clock,
            // but queue semantics must not depend on that): serve the
            // earlier heap entries stock-FIFO until the batch is
            // earliest again.
            if h < self.batch.front().expect("batch nonempty").at {
                let e = self.heap.pop().expect("peeked entry present");
                return Some(self.serve(e));
            }
        }
        let e = self.batch.pop_front()?;
        Some(self.serve(e))
    }

    /// Drain the earliest same-time group of pending events into the
    /// batch buffer, asking the hook for a serving permutation when
    /// the group has two or more members.
    fn fill_batch(&mut self) {
        let Some(at) = self.peek_heap_time() else {
            return;
        };
        let mut drained: Vec<Entry<T, E>> = Vec::new();
        while let Some(top) = self.heap.peek() {
            if top.at != at {
                break;
            }
            let e = self.heap.pop().expect("peeked entry present");
            if self.pending[e.seq as usize] {
                drained.push(e);
            }
        }
        if drained.len() >= 2 {
            if let Some(hook) = self.hook.as_mut() {
                let n = drained.len();
                let mut perm: Vec<u32> = Vec::new();
                hook.permute(at, n, &mut perm);
                if !perm.is_empty() {
                    assert_eq!(
                        perm.len(),
                        n,
                        "TieBreak::permute wrote {} indices for a batch of {n}",
                        perm.len()
                    );
                    let mut seen = vec![false; n];
                    for &i in &perm {
                        let i = i as usize;
                        assert!(
                            i < n && !seen[i],
                            "TieBreak::permute output is not a permutation of 0..{n}"
                        );
                        seen[i] = true;
                    }
                    // `drained` is FIFO order (the heap pops equal-time
                    // entries by ascending sequence number); apply the
                    // chosen serving order on top of it.
                    let mut slots: Vec<Option<Entry<T, E>>> =
                        drained.into_iter().map(Some).collect();
                    for &i in &perm {
                        let entry = slots[i as usize].take().expect("validated permutation");
                        self.batch.push_back(entry);
                    }
                    return;
                }
            }
        }
        self.batch.extend(drained);
    }

    /// Pop the earliest pending event if its time is `<= now`.
    pub fn pop_due(&mut self, now: T) -> Option<(T, E)> {
        if self.peek_time()? <= now {
            self.pop()
        } else {
            None
        }
    }

    /// Number of pending (live) events.
    pub fn len(&self) -> usize {
        self.live
    }

    /// `true` if no events are pending.
    pub fn is_empty(&self) -> bool {
        self.live == 0
    }
}

impl<T: Ord + Copy, E> Default for EventQueue<T, E> {
    fn default() -> Self {
        EventQueue::new()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn pops_in_time_order() {
        let mut q = EventQueue::new();
        q.push(30u64, "c");
        q.push(10, "a");
        q.push(20, "b");
        assert_eq!(q.peek_time(), Some(10));
        assert_eq!(q.pop(), Some((10, "a")));
        assert_eq!(q.pop(), Some((20, "b")));
        assert_eq!(q.pop(), Some((30, "c")));
        assert_eq!(q.pop(), None);
    }

    #[test]
    fn simultaneous_events_are_fifo() {
        let mut q = EventQueue::new();
        for i in 0..100 {
            q.push(5u64, i);
        }
        for i in 0..100 {
            assert_eq!(q.pop(), Some((5, i)));
        }
    }

    #[test]
    fn tie_break_is_stable_across_interleaved_times() {
        // Pushes at mixed times: equal-time events must still pop in
        // push order even when later pushes land earlier in time.
        let mut q = EventQueue::new();
        q.push(7u64, "x0");
        q.push(3, "a0");
        q.push(7, "x1");
        q.push(3, "a1");
        q.push(7, "x2");
        let order: Vec<_> = std::iter::from_fn(|| q.pop()).collect();
        assert_eq!(
            order,
            vec![(3, "a0"), (3, "a1"), (7, "x0"), (7, "x1"), (7, "x2")]
        );
    }

    #[test]
    fn pop_due_respects_now() {
        let mut q = EventQueue::new();
        q.push(10u64, "a");
        q.push(20, "b");
        assert_eq!(q.pop_due(5), None);
        assert_eq!(q.pop_due(10), Some((10, "a")));
        assert_eq!(q.pop_due(10), None);
        assert_eq!(q.pop_due(99), Some((20, "b")));
    }

    #[test]
    fn cancel_before_fire_suppresses_event() {
        let mut q = EventQueue::new();
        let a = q.push(10u64, "a");
        q.push(20, "b");
        assert_eq!(q.len(), 2);
        assert!(q.cancel(a));
        assert_eq!(q.len(), 1);
        assert_eq!(q.peek_time(), Some(20));
        assert_eq!(q.pop(), Some((20, "b")));
        assert!(q.is_empty());
    }

    #[test]
    fn double_cancel_is_false() {
        let mut q = EventQueue::new();
        let a = q.push(10u64, ());
        assert!(q.cancel(a));
        assert!(!q.cancel(a));
    }

    #[test]
    fn cancel_after_fire_is_false() {
        let mut q = EventQueue::new();
        let a = q.push(10u64, ());
        assert_eq!(q.pop(), Some((10, ())));
        assert!(!q.cancel(a));
    }

    #[test]
    fn cancel_of_foreign_id_is_false() {
        let mut q: EventQueue<u64, ()> = EventQueue::new();
        let mut other = EventQueue::new();
        let id = other.push(1u64, ());
        assert!(!q.cancel(id));
    }

    #[test]
    fn cancelled_events_do_not_block_peek() {
        let mut q = EventQueue::new();
        let a = q.push(1u64, "a");
        let b = q.push(2, "b");
        q.push(3, "c");
        q.cancel(a);
        q.cancel(b);
        assert_eq!(q.peek_time(), Some(3));
        assert_eq!(q.pop_due(3), Some((3, "c")));
    }

    /// Reverses every same-time batch.
    struct Reverse;
    impl TieBreak<u64> for Reverse {
        fn permute(&mut self, _at: u64, n: usize, out: &mut Vec<u32>) {
            out.extend((0..n as u32).rev());
        }
    }

    /// Always identity, via the empty-`out` shorthand.
    struct Identity;
    impl TieBreak<u64> for Identity {
        fn permute(&mut self, _at: u64, _n: usize, _out: &mut Vec<u32>) {}
    }

    #[test]
    fn armed_reverse_hook_permutes_equal_time_batches() {
        let mut q = EventQueue::new();
        q.set_tie_break(Some(Box::new(Reverse)));
        q.push(5u64, "a");
        q.push(5, "b");
        q.push(5, "c");
        q.push(9, "z");
        let order: Vec<_> = std::iter::from_fn(|| q.pop()).collect();
        assert_eq!(order, vec![(5, "c"), (5, "b"), (5, "a"), (9, "z")]);
    }

    #[test]
    fn identity_hook_matches_stock_fifo() {
        let mut armed = EventQueue::new();
        armed.set_tie_break(Some(Box::new(Identity)));
        let mut stock = EventQueue::new();
        for (t, v) in [(7u64, 0), (3, 1), (7, 2), (3, 3), (7, 4), (1, 5)] {
            armed.push(t, v);
            stock.push(t, v);
        }
        let a: Vec<_> = std::iter::from_fn(|| armed.pop()).collect();
        let s: Vec<_> = std::iter::from_fn(|| stock.pop()).collect();
        assert_eq!(a, s);
    }

    /// Records decision points through a shared handle so tests can
    /// inspect them after the boxed hook is owned by the queue.
    struct SharedRecorder(std::sync::Arc<std::sync::Mutex<Vec<(u64, usize)>>>);
    impl TieBreak<u64> for SharedRecorder {
        fn permute(&mut self, at: u64, n: usize, out: &mut Vec<u32>) {
            self.0.lock().unwrap().push((at, n));
            out.extend((0..n as u32).rev());
        }
    }

    #[test]
    fn singleton_batches_do_not_consult_the_hook() {
        let log = std::sync::Arc::new(std::sync::Mutex::new(Vec::new()));
        let mut q = EventQueue::new();
        q.set_tie_break(Some(Box::new(SharedRecorder(log.clone()))));
        q.push(1u64, "a");
        q.push(2, "b");
        q.push(2, "c");
        let order: Vec<_> = std::iter::from_fn(|| q.pop()).collect();
        assert_eq!(order, vec![(1, "a"), (2, "c"), (2, "b")]);
        // Only the t=2 pair was a decision point; the t=1 singleton
        // never reached the hook.
        assert_eq!(*log.lock().unwrap(), vec![(2, 2)]);
    }

    #[test]
    fn cancellation_works_on_buffered_batch_entries() {
        let mut q = EventQueue::new();
        q.set_tie_break(Some(Box::new(Reverse)));
        q.push(4u64, "a");
        let b = q.push(4, "b");
        q.push(4, "c");
        // First pop drains and reverses the batch: serves "c".
        assert_eq!(q.pop(), Some((4, "c")));
        // "b" is buffered in the batch; cancel must still bite.
        assert!(q.cancel(b));
        assert_eq!(q.len(), 1);
        assert_eq!(q.peek_time(), Some(4));
        assert_eq!(q.pop(), Some((4, "a")));
        assert!(q.is_empty());
    }

    #[test]
    fn same_time_pushes_during_a_batch_form_the_next_batch() {
        let mut q = EventQueue::new();
        q.set_tie_break(Some(Box::new(Reverse)));
        q.push(4u64, "a");
        q.push(4, "b");
        assert_eq!(q.pop(), Some((4, "b")));
        // A dispatch-time push at the same instant: joins a *new*
        // batch rather than the committed one.
        q.push(4, "x");
        q.push(4, "y");
        assert_eq!(q.pop(), Some((4, "a")));
        let rest: Vec<_> = std::iter::from_fn(|| q.pop()).collect();
        assert_eq!(rest, vec![(4, "y"), (4, "x")]);
    }

    #[test]
    fn disarming_mid_batch_keeps_the_committed_order() {
        let mut q = EventQueue::new();
        q.set_tie_break(Some(Box::new(Reverse)));
        q.push(1u64, "a");
        q.push(1, "b");
        q.push(1, "c");
        assert_eq!(q.pop(), Some((1, "c")));
        q.set_tie_break(None);
        assert!(!q.tie_break_armed());
        assert_eq!(q.pop(), Some((1, "b")));
        assert_eq!(q.pop(), Some((1, "a")));
        // Future batches are FIFO again.
        q.push(2, "d");
        q.push(2, "e");
        assert_eq!(q.pop(), Some((2, "d")));
        assert_eq!(q.pop(), Some((2, "e")));
    }

    #[test]
    fn pop_due_respects_now_with_armed_hook() {
        let mut q = EventQueue::new();
        q.set_tie_break(Some(Box::new(Reverse)));
        q.push(10u64, "a");
        q.push(10, "b");
        q.push(20, "z");
        assert_eq!(q.pop_due(5), None);
        assert_eq!(q.pop_due(10), Some((10, "b")));
        assert_eq!(q.pop_due(10), Some((10, "a")));
        assert_eq!(q.pop_due(10), None);
        assert_eq!(q.pop_due(20), Some((20, "z")));
    }
}
