//! The time-ordered, cancellable event queue.
//!
//! One queue per simulation: entries are ordered by `(time, sequence)`
//! so simultaneous events pop in exactly the order they were pushed
//! (stable FIFO tie-break), which is what makes whole-run determinism
//! an invariant rather than an accident. Every push returns an
//! [`EventId`]; cancellation is O(1) (tombstone) and cancelled entries
//! are skipped lazily on pop, so neither path disturbs the heap.

use std::collections::BinaryHeap;

/// Handle to a scheduled event, returned by [`EventQueue::push`].
///
/// Ids are unique for the lifetime of the queue (they are the push
/// sequence number) and stay valid after the event fires — cancelling
/// a fired or already-cancelled event is a no-op that returns `false`.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub struct EventId(u64);

impl EventId {
    /// The raw sequence number (diagnostics only).
    pub fn raw(self) -> u64 {
        self.0
    }
}

struct Entry<T, E> {
    at: T,
    seq: u64,
    ev: E,
}

impl<T: Ord, E> PartialEq for Entry<T, E> {
    fn eq(&self, other: &Self) -> bool {
        self.at == other.at && self.seq == other.seq
    }
}
impl<T: Ord, E> Eq for Entry<T, E> {}
impl<T: Ord, E> PartialOrd for Entry<T, E> {
    fn partial_cmp(&self, other: &Self) -> Option<std::cmp::Ordering> {
        Some(self.cmp(other))
    }
}
impl<T: Ord, E> Ord for Entry<T, E> {
    fn cmp(&self, other: &Self) -> std::cmp::Ordering {
        // Reversed: BinaryHeap is a max-heap, we want earliest first,
        // and among equals the lowest sequence number (push order).
        other
            .at
            .cmp(&self.at)
            .then_with(|| other.seq.cmp(&self.seq))
    }
}

/// A min-heap of `(time, event)` with stable FIFO tie-breaking and
/// O(1) cancellation.
pub struct EventQueue<T, E> {
    heap: BinaryHeap<Entry<T, E>>,
    /// `pending[seq]` — true while the event with that sequence number
    /// is scheduled and not yet fired or cancelled. One byte per event
    /// ever pushed; the backstop for O(1) cancel and exact
    /// double-cancel / cancel-after-fire semantics.
    pending: Vec<bool>,
    live: usize,
}

impl<T: Ord + Copy, E> EventQueue<T, E> {
    /// An empty queue.
    pub fn new() -> Self {
        EventQueue {
            heap: BinaryHeap::new(),
            pending: Vec::new(),
            live: 0,
        }
    }

    /// Schedule `ev` at time `at`; returns its cancellation handle.
    pub fn push(&mut self, at: T, ev: E) -> EventId {
        let seq = self.pending.len() as u64;
        self.pending.push(true);
        self.live += 1;
        self.heap.push(Entry { at, seq, ev });
        EventId(seq)
    }

    /// Cancel a scheduled event. Returns `true` iff the event was
    /// still pending (it will not fire); `false` if it already fired,
    /// was already cancelled, or was never scheduled here.
    pub fn cancel(&mut self, id: EventId) -> bool {
        match self.pending.get_mut(id.0 as usize) {
            Some(p) if *p => {
                *p = false;
                self.live -= 1;
                true
            }
            _ => false,
        }
    }

    /// The time of the earliest pending event, purging cancelled
    /// entries from the top of the heap.
    pub fn peek_time(&mut self) -> Option<T> {
        loop {
            let top = self.heap.peek()?;
            if self.pending[top.seq as usize] {
                return Some(top.at);
            }
            self.heap.pop();
        }
    }

    /// Pop the earliest pending event.
    pub fn pop(&mut self) -> Option<(T, E)> {
        while let Some(e) = self.heap.pop() {
            let p = &mut self.pending[e.seq as usize];
            if *p {
                *p = false;
                self.live -= 1;
                return Some((e.at, e.ev));
            }
        }
        None
    }

    /// Pop the earliest pending event if its time is `<= now`.
    pub fn pop_due(&mut self, now: T) -> Option<(T, E)> {
        if self.peek_time()? <= now {
            self.pop()
        } else {
            None
        }
    }

    /// Number of pending (live) events.
    pub fn len(&self) -> usize {
        self.live
    }

    /// `true` if no events are pending.
    pub fn is_empty(&self) -> bool {
        self.live == 0
    }
}

impl<T: Ord + Copy, E> Default for EventQueue<T, E> {
    fn default() -> Self {
        EventQueue::new()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn pops_in_time_order() {
        let mut q = EventQueue::new();
        q.push(30u64, "c");
        q.push(10, "a");
        q.push(20, "b");
        assert_eq!(q.peek_time(), Some(10));
        assert_eq!(q.pop(), Some((10, "a")));
        assert_eq!(q.pop(), Some((20, "b")));
        assert_eq!(q.pop(), Some((30, "c")));
        assert_eq!(q.pop(), None);
    }

    #[test]
    fn simultaneous_events_are_fifo() {
        let mut q = EventQueue::new();
        for i in 0..100 {
            q.push(5u64, i);
        }
        for i in 0..100 {
            assert_eq!(q.pop(), Some((5, i)));
        }
    }

    #[test]
    fn tie_break_is_stable_across_interleaved_times() {
        // Pushes at mixed times: equal-time events must still pop in
        // push order even when later pushes land earlier in time.
        let mut q = EventQueue::new();
        q.push(7u64, "x0");
        q.push(3, "a0");
        q.push(7, "x1");
        q.push(3, "a1");
        q.push(7, "x2");
        let order: Vec<_> = std::iter::from_fn(|| q.pop()).collect();
        assert_eq!(
            order,
            vec![(3, "a0"), (3, "a1"), (7, "x0"), (7, "x1"), (7, "x2")]
        );
    }

    #[test]
    fn pop_due_respects_now() {
        let mut q = EventQueue::new();
        q.push(10u64, "a");
        q.push(20, "b");
        assert_eq!(q.pop_due(5), None);
        assert_eq!(q.pop_due(10), Some((10, "a")));
        assert_eq!(q.pop_due(10), None);
        assert_eq!(q.pop_due(99), Some((20, "b")));
    }

    #[test]
    fn cancel_before_fire_suppresses_event() {
        let mut q = EventQueue::new();
        let a = q.push(10u64, "a");
        q.push(20, "b");
        assert_eq!(q.len(), 2);
        assert!(q.cancel(a));
        assert_eq!(q.len(), 1);
        assert_eq!(q.peek_time(), Some(20));
        assert_eq!(q.pop(), Some((20, "b")));
        assert!(q.is_empty());
    }

    #[test]
    fn double_cancel_is_false() {
        let mut q = EventQueue::new();
        let a = q.push(10u64, ());
        assert!(q.cancel(a));
        assert!(!q.cancel(a));
    }

    #[test]
    fn cancel_after_fire_is_false() {
        let mut q = EventQueue::new();
        let a = q.push(10u64, ());
        assert_eq!(q.pop(), Some((10, ())));
        assert!(!q.cancel(a));
    }

    #[test]
    fn cancel_of_foreign_id_is_false() {
        let mut q: EventQueue<u64, ()> = EventQueue::new();
        let mut other = EventQueue::new();
        let id = other.push(1u64, ());
        assert!(!q.cancel(id));
    }

    #[test]
    fn cancelled_events_do_not_block_peek() {
        let mut q = EventQueue::new();
        let a = q.push(1u64, "a");
        let b = q.push(2, "b");
        q.push(3, "c");
        q.cancel(a);
        q.cancel(b);
        assert_eq!(q.peek_time(), Some(3));
        assert_eq!(q.pop_due(3), Some((3, "c")));
    }
}
