//! The generic simulation driver.
//!
//! [`Simulation`] owns the clock, the seeded RNG, and one
//! [`EventQueue`]; components live in a flat [`Registry`] behind the
//! [`EventHandler`] trait and interact with the world through a
//! [`SimContext`] handle — emit to other components, self-schedule,
//! cancel. Determinism is structural: one queue with stable
//! tie-breaking, one RNG consumed in dispatch order, dense component
//! ids (no hash iteration anywhere).
//!
//! Domain simulators with richer batch semantics (the fluid-flow
//! network world in `fib-netsim`) compose the same primitives —
//! [`EventQueue`], [`crate::DeadlineHeap`], [`Registry`] — around
//! their own loop instead of using this driver directly.

use crate::component::{ComponentId, Registry};
use crate::queue::{EventId, EventQueue};
use rand::rngs::StdRng;
use rand::SeedableRng;

/// A component: receives the typed events addressed to it.
pub trait EventHandler<T, E> {
    /// Handle one event delivered at time `at`.
    fn on_event(&mut self, ctx: &mut SimContext<'_, T, E>, at: T, ev: E);
}

/// The handle through which a component acts on the world during
/// dispatch: schedule (to anyone, itself included), cancel, read the
/// clock, draw randomness.
pub struct SimContext<'a, T, E> {
    now: T,
    self_id: ComponentId,
    queue: &'a mut EventQueue<T, (ComponentId, E)>,
    rng: &'a mut StdRng,
}

impl<T: Ord + Copy, E> SimContext<'_, T, E> {
    /// Current simulation time.
    pub fn now(&self) -> T {
        self.now
    }

    /// The id of the component being dispatched.
    pub fn self_id(&self) -> ComponentId {
        self.self_id
    }

    /// Schedule an event for component `to` at time `at`.
    pub fn schedule(&mut self, at: T, to: ComponentId, ev: E) -> EventId {
        self.queue.push(at, (to, ev))
    }

    /// Schedule an event for this component itself.
    pub fn schedule_self(&mut self, at: T, ev: E) -> EventId {
        let id = self.self_id;
        self.queue.push(at, (id, ev))
    }

    /// Cancel a scheduled event (see [`EventQueue::cancel`]).
    pub fn cancel(&mut self, id: EventId) -> bool {
        self.queue.cancel(id)
    }

    /// The simulation's seeded RNG.
    pub fn rng(&mut self) -> &mut StdRng {
        self.rng
    }
}

/// A deterministic discrete-event simulation over event type `E` and
/// time type `T`.
pub struct Simulation<T, E> {
    now: T,
    queue: EventQueue<T, (ComponentId, E)>,
    components: Registry<dyn EventHandler<T, E>>,
    rng: StdRng,
    events_dispatched: u64,
}

impl<T: Ord + Copy, E> Simulation<T, E> {
    /// A simulation starting at `start` with a seeded RNG.
    pub fn new(start: T, seed: u64) -> Self {
        Simulation {
            now: start,
            queue: EventQueue::new(),
            components: Registry::new(),
            rng: StdRng::seed_from_u64(seed),
            events_dispatched: 0,
        }
    }

    /// Register a component under a tracing name.
    pub fn register(
        &mut self,
        name: impl Into<String>,
        handler: Box<dyn EventHandler<T, E>>,
    ) -> ComponentId {
        self.components.register(name, handler)
    }

    /// A component's tracing name.
    pub fn name(&self, id: ComponentId) -> Option<&str> {
        self.components.name(id)
    }

    /// Current simulation time.
    pub fn now(&self) -> T {
        self.now
    }

    /// Events dispatched so far.
    pub fn events_dispatched(&self) -> u64 {
        self.events_dispatched
    }

    /// Pending events.
    pub fn pending(&self) -> usize {
        self.queue.len()
    }

    /// Schedule an event for `to` at `at` (from outside any handler).
    pub fn schedule(&mut self, at: T, to: ComponentId, ev: E) -> EventId {
        self.queue.push(at, (to, ev))
    }

    /// Cancel a scheduled event.
    pub fn cancel(&mut self, id: EventId) -> bool {
        self.queue.cancel(id)
    }

    /// Dispatch the next pending event, if any, advancing the clock to
    /// its time. Returns `false` when the queue is empty.
    pub fn step(&mut self) -> bool {
        let Some((at, (to, ev))) = self.queue.pop() else {
            return false;
        };
        self.now = at;
        self.events_dispatched += 1;
        let _span = fib_trace::span(fib_trace::Phase::KernelDispatch);
        fib_trace::counter("queue.depth", self.queue.len() as f64);
        let mut ctx = SimContext {
            now: at,
            self_id: to,
            queue: &mut self.queue,
            rng: &mut self.rng,
        };
        if let Some(h) = self.components.get_mut(to) {
            h.on_event(&mut ctx, at, ev);
        }
        true
    }

    /// Run until no pending event is at or before `until` (events at
    /// exactly `until` are dispatched). The clock ends at the last
    /// dispatched time, never beyond `until`.
    pub fn run_until(&mut self, until: T) {
        while self.queue.peek_time().map(|t| t <= until).unwrap_or(false) {
            self.step();
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::Rng;
    use std::cell::RefCell;
    use std::rc::Rc;

    type Log = Rc<RefCell<Vec<(u64, ComponentId, u32)>>>;

    /// Records deliveries; optionally ping-pongs with a peer.
    struct Echo {
        log: Log,
        peer: Option<ComponentId>,
        hops: u32,
    }

    impl EventHandler<u64, u32> for Echo {
        fn on_event(&mut self, ctx: &mut SimContext<'_, u64, u32>, at: u64, ev: u32) {
            self.log.borrow_mut().push((at, ctx.self_id(), ev));
            if let Some(peer) = self.peer {
                if ev < self.hops {
                    ctx.schedule(at + 1, peer, ev + 1);
                }
            }
        }
    }

    #[test]
    fn components_ping_pong_deterministically() {
        let log: Log = Rc::new(RefCell::new(Vec::new()));
        let mut sim: Simulation<u64, u32> = Simulation::new(0, 1);
        // a's peer is b, which gets the next dense id.
        let a = sim.register(
            "a",
            Box::new(Echo {
                log: log.clone(),
                peer: Some(ComponentId(1)),
                hops: 3,
            }),
        );
        let b = sim.register(
            "b",
            Box::new(Echo {
                log: log.clone(),
                peer: Some(a),
                hops: 3,
            }),
        );
        assert_eq!((sim.name(a), sim.name(b)), (Some("a"), Some("b")));
        sim.schedule(5, a, 0);
        sim.run_until(100);
        assert_eq!(
            *log.borrow(),
            vec![
                (5, ComponentId(0), 0),
                (6, ComponentId(1), 1),
                (7, ComponentId(0), 2),
                (8, ComponentId(1), 3),
            ]
        );
        assert_eq!(sim.now(), 8);
        assert_eq!(sim.events_dispatched(), 4);
    }

    #[test]
    fn run_until_is_inclusive_and_clock_stops_at_last_event() {
        let log: Log = Rc::new(RefCell::new(Vec::new()));
        let mut sim: Simulation<u64, u32> = Simulation::new(0, 0);
        let a = sim.register(
            "a",
            Box::new(Echo {
                log: log.clone(),
                peer: None,
                hops: 0,
            }),
        );
        sim.schedule(10, a, 1);
        sim.schedule(20, a, 2);
        sim.schedule(30, a, 3);
        sim.run_until(20);
        assert_eq!(log.borrow().len(), 2);
        assert_eq!(sim.now(), 20);
        assert_eq!(sim.pending(), 1);
    }

    #[test]
    fn cancelled_events_never_fire() {
        let log: Log = Rc::new(RefCell::new(Vec::new()));
        let mut sim: Simulation<u64, u32> = Simulation::new(0, 0);
        let a = sim.register(
            "a",
            Box::new(Echo {
                log: log.clone(),
                peer: None,
                hops: 0,
            }),
        );
        let keep = sim.schedule(10, a, 1);
        let drop_ = sim.schedule(10, a, 2);
        assert!(sim.cancel(drop_));
        assert!(!sim.cancel(drop_), "double cancel");
        sim.run_until(50);
        assert!(!sim.cancel(keep), "cancel after fire");
        assert_eq!(*log.borrow(), vec![(10, a, 1)]);
    }

    #[test]
    fn same_seed_same_rng_stream() {
        struct Draw {
            log: Rc<RefCell<Vec<u64>>>,
        }
        impl EventHandler<u64, u32> for Draw {
            fn on_event(&mut self, ctx: &mut SimContext<'_, u64, u32>, _at: u64, _ev: u32) {
                let v = ctx.rng().gen_range(0..1_000_000u64);
                self.log.borrow_mut().push(v);
            }
        }
        let run = || {
            let log = Rc::new(RefCell::new(Vec::new()));
            let mut sim: Simulation<u64, u32> = Simulation::new(0, 42);
            let a = sim.register("draw", Box::new(Draw { log: log.clone() }));
            for t in 0..16 {
                sim.schedule(t, a, 0);
            }
            sim.run_until(100);
            let draws = log.borrow().clone();
            draws
        };
        assert_eq!(run(), run());
    }
}
