//! Deterministic observability spine.
//!
//! Every hot layer of the workspace (kernel dispatch, SPF, fluid
//! settlement, controller optimization, scenario runs) emits *spans*,
//! *counters*, *histogram observations*, and *audit records* through
//! this crate. The design invariant is that tracing is **write-only
//! and wall-clock-isolated**: instrumentation never touches simulation
//! state, RNG streams, or event ordering, and the monotonic wall clock
//! is sampled only when a sink is installed — so every byte-pinned
//! artifact in the workspace is identical with tracing on or off, and
//! the default (no sink) costs a single thread-local flag read per
//! call site.
//!
//! ## Model
//!
//! * A [`TraceSink`] is installed per thread ([`install`]/[`take`]).
//!   No sink installed — the default — is the "Noop" configuration:
//!   no span is armed, no clock is read, nothing allocates.
//! * [`span`] returns a drop guard. Guards nest lexically; the crate
//!   maintains a per-thread stack so each span reports both its total
//!   wall time and its *self* time (total minus enclosed child spans).
//!   Self times partition the traced wall clock, which is what makes
//!   per-phase attribution sum to ~100%.
//! * Span timestamps carry the *simulated* clock too: the event loop
//!   publishes it via [`set_sim_now`], and every span/counter records
//!   the value current at its start. Sim time is deterministic; wall
//!   time is not — exporters keep them in separate fields so byte
//!   diffs can mask exactly the wall-derived ones.
//! * [`audit`] feeds the structured lie-lifecycle log: one record per
//!   injection/retraction with trigger provenance and predicted vs.
//!   measured max-utilization.
//!
//! Shipped sinks: [`AggSink`] (in-memory per-phase aggregation feeding
//! `phase_attribution` bench sections) and [`ChromeSink`] (Chrome
//! trace-event JSON for Perfetto / `chrome://tracing`).
//!
//! Sinks must not call back into this crate (the thread-local state is
//! borrowed while a sink runs), and [`take`] must not be called while
//! span guards are live.

#![warn(missing_docs)]

mod audit;
mod chrome;
mod sink;

pub use audit::{AuditAction, AuditRecord, OrderRecord};
pub use chrome::{mask_wall_fields, ChromeSink};
pub use sink::{AggSink, HistSummary, PhaseAttribution, SpanWall, TraceSink};

use std::cell::{Cell, RefCell};
use std::marker::PhantomData;
use std::time::Instant;

/// A traced phase: the fixed taxonomy of instrumented code regions.
///
/// The names (see [`Phase::name`]) are the public contract — they key
/// `phase_attribution` sections in bench JSON and span names in
/// exported traces; `docs/OBSERVABILITY.md` documents each one.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub enum Phase {
    /// One event dispatched by an event loop (kernel or netsim core).
    KernelDispatch,
    /// A full Dijkstra run (real-graph change or cold cache).
    SpfFull,
    /// A partial SPF: cached Dijkstra reused, only the route phase ran.
    SpfPartial,
    /// Single-prefix reverse SPF (`prefix_routes`).
    PrefixRoutes,
    /// One `MinMaxSolver` feasibility probe.
    SolverProbe,
    /// One fluid settlement (path re-resolution + max-min allocation).
    Settle,
    /// Installing a FIB diff produced by an IGP instance.
    FibInstall,
    /// Controller SNMP polling round.
    CtrlPoll,
    /// Controller optimization pass (evaluate + plan + reconcile).
    CtrlOptimize,
    /// One whole scenario / bench-case run (outermost span).
    ScenarioRun,
}

/// Number of phases (array-indexed aggregation).
pub const PHASE_COUNT: usize = 10;

/// Every phase, in [`Phase::index`] order.
pub const PHASES: [Phase; PHASE_COUNT] = [
    Phase::KernelDispatch,
    Phase::SpfFull,
    Phase::SpfPartial,
    Phase::PrefixRoutes,
    Phase::SolverProbe,
    Phase::Settle,
    Phase::FibInstall,
    Phase::CtrlPoll,
    Phase::CtrlOptimize,
    Phase::ScenarioRun,
];

impl Phase {
    /// Stable span name (dotted, lowercase).
    pub const fn name(self) -> &'static str {
        match self {
            Phase::KernelDispatch => "kernel.dispatch",
            Phase::SpfFull => "spf.full",
            Phase::SpfPartial => "spf.partial",
            Phase::PrefixRoutes => "spf.prefix_routes",
            Phase::SolverProbe => "solver.probe",
            Phase::Settle => "fluid.settle",
            Phase::FibInstall => "fib.install",
            Phase::CtrlPoll => "ctrl.poll",
            Phase::CtrlOptimize => "ctrl.optimize",
            Phase::ScenarioRun => "scenario.run",
        }
    }

    /// Dense index into [`PHASES`].
    pub const fn index(self) -> usize {
        match self {
            Phase::KernelDispatch => 0,
            Phase::SpfFull => 1,
            Phase::SpfPartial => 2,
            Phase::PrefixRoutes => 3,
            Phase::SolverProbe => 4,
            Phase::Settle => 5,
            Phase::FibInstall => 6,
            Phase::CtrlPoll => 7,
            Phase::CtrlOptimize => 8,
            Phase::ScenarioRun => 9,
        }
    }
}

/// An open span on the per-thread stack.
struct Active {
    phase: Phase,
    sim_ns: u64,
    start: Instant,
    /// Wall nanoseconds consumed by already-closed child spans.
    child_ns: u64,
}

/// Per-thread tracing state.
struct TlState {
    sink: Option<Box<dyn TraceSink>>,
    stack: Vec<Active>,
    sim_now_ns: u64,
    spans_started: u64,
}

thread_local! {
    /// Fast-path flag mirroring `TL.sink.is_some()`; checked before
    /// touching the `RefCell` so the Noop configuration costs one
    /// thread-local read per call site.
    static ENABLED: Cell<bool> = const { Cell::new(false) };
    static TL: RefCell<TlState> = const {
        RefCell::new(TlState {
            sink: None,
            stack: Vec::new(),
            sim_now_ns: 0,
            spans_started: 0,
        })
    };
}

/// Install a sink on the current thread, replacing (and returning) any
/// previous one. Tracing is enabled until [`take`] removes it.
pub fn install(sink: Box<dyn TraceSink>) -> Option<Box<dyn TraceSink>> {
    ENABLED.with(|e| e.set(true));
    TL.with(|tl| {
        let mut tl = tl.borrow_mut();
        tl.stack.clear();
        tl.sink.replace(sink)
    })
}

/// Remove and return the current thread's sink (tracing disabled).
pub fn take() -> Option<Box<dyn TraceSink>> {
    ENABLED.with(|e| e.set(false));
    TL.with(|tl| {
        let mut tl = tl.borrow_mut();
        tl.stack.clear();
        tl.sink.take()
    })
}

/// Whether a sink is installed on this thread.
pub fn enabled() -> bool {
    ENABLED.with(|e| e.get())
}

/// Spans armed on this thread since it started (stays 0 while no sink
/// is installed — the "Noop records nothing" tripwire).
pub fn spans_started() -> u64 {
    TL.with(|tl| tl.borrow().spans_started)
}

/// Publish the current simulated time (nanoseconds). Event loops call
/// this at dispatch; subsequent spans/counters record the value
/// without their call sites needing a clock handle.
#[inline]
pub fn set_sim_now(sim_ns: u64) {
    if !enabled() {
        return;
    }
    TL.with(|tl| tl.borrow_mut().sim_now_ns = sim_ns);
}

/// Open a span for `phase`; it closes (and reports to the sink) when
/// the returned guard drops. Free when no sink is installed.
#[inline]
pub fn span(phase: Phase) -> SpanGuard {
    if !enabled() {
        return SpanGuard {
            armed: false,
            _not_send: PhantomData,
        };
    }
    TL.with(|tl| {
        let mut tl = tl.borrow_mut();
        if tl.sink.is_none() {
            return SpanGuard {
                armed: false,
                _not_send: PhantomData,
            };
        }
        tl.spans_started += 1;
        let sim_ns = tl.sim_now_ns;
        tl.stack.push(Active {
            phase,
            sim_ns,
            start: Instant::now(),
            child_ns: 0,
        });
        SpanGuard {
            armed: true,
            _not_send: PhantomData,
        }
    })
}

/// Record a gauge sample (e.g. queue depth) at the current sim time.
#[inline]
pub fn counter(name: &'static str, value: f64) {
    if !enabled() {
        return;
    }
    TL.with(|tl| {
        let mut tl = tl.borrow_mut();
        let sim_ns = tl.sim_now_ns;
        if let Some(sink) = tl.sink.as_mut() {
            sink.counter(name, sim_ns, value);
        }
    });
}

/// Record one histogram observation (e.g. a dirty-set size).
#[inline]
pub fn observe(name: &'static str, value: u64) {
    if !enabled() {
        return;
    }
    TL.with(|tl| {
        let mut tl = tl.borrow_mut();
        let sim_ns = tl.sim_now_ns;
        if let Some(sink) = tl.sink.as_mut() {
            sink.observe(name, sim_ns, value);
        }
    });
}

/// Append a lie-lifecycle audit record.
#[inline]
pub fn audit(record: AuditRecord) {
    if !enabled() {
        return;
    }
    TL.with(|tl| {
        let mut tl = tl.borrow_mut();
        if let Some(sink) = tl.sink.as_mut() {
            sink.audit(&record);
        }
    });
}

/// Append an explored-ordering audit record (the schedule explorer's
/// counterpart to [`audit`]: one record per reordered same-timestamp
/// batch). Free when no sink is installed.
#[inline]
pub fn order(record: OrderRecord) {
    if !enabled() {
        return;
    }
    TL.with(|tl| {
        let mut tl = tl.borrow_mut();
        if let Some(sink) = tl.sink.as_mut() {
            sink.order(&record);
        }
    });
}

/// Drop guard closing a span opened by [`span`]. Guards must drop in
/// LIFO order (lexical scoping guarantees this); the type is `!Send`
/// because the span stack is per-thread.
pub struct SpanGuard {
    armed: bool,
    _not_send: PhantomData<*const ()>,
}

impl Drop for SpanGuard {
    fn drop(&mut self) {
        if !self.armed {
            return;
        }
        TL.with(|tl| {
            let mut tl = tl.borrow_mut();
            let Some(active) = tl.stack.pop() else {
                return; // sink swapped mid-span; nothing to report
            };
            let total_ns = active.start.elapsed().as_nanos() as u64;
            let self_ns = total_ns.saturating_sub(active.child_ns);
            if let Some(parent) = tl.stack.last_mut() {
                parent.child_ns += total_ns;
            }
            if let Some(sink) = tl.sink.as_mut() {
                sink.span(
                    active.phase,
                    active.sim_ns,
                    SpanWall {
                        start: active.start,
                        total_ns,
                        self_ns,
                    },
                );
            }
        });
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn noop_configuration_records_nothing() {
        assert!(!enabled());
        let before = spans_started();
        {
            let _a = span(Phase::KernelDispatch);
            let _b = span(Phase::Settle);
            counter("queue.depth", 3.0);
            observe("settle.dirty_flows", 7);
            audit(AuditRecord {
                sim_ns: 0,
                action: AuditAction::Inject,
                prefix: "p".into(),
                lie: "l".into(),
                trigger: "t".into(),
                candidates: 0,
                predicted_max_util: 0.0,
                measured_max_util: 0.0,
            });
            order(OrderRecord {
                sim_ns: 0,
                batch: 2,
                perm: vec![1, 0],
            });
        }
        assert_eq!(spans_started(), before, "no sink, no armed spans");
    }

    #[test]
    fn order_records_reach_the_sink() {
        install(Box::<AggSink>::default());
        order(OrderRecord {
            sim_ns: 7,
            batch: 3,
            perm: vec![2, 1, 0],
        });
        let sink = take().unwrap();
        let agg = sink.as_any().downcast_ref::<AggSink>().unwrap();
        assert_eq!(agg.orders().len(), 1);
        assert_eq!(agg.orders()[0].render(), "t=7 n=3 perm=2.1.0");
    }

    #[test]
    fn nested_spans_report_self_time_partition() {
        install(Box::<AggSink>::default());
        {
            let _outer = span(Phase::ScenarioRun);
            {
                let _inner = span(Phase::Settle);
                std::thread::sleep(std::time::Duration::from_millis(2));
            }
        }
        let agg = take().expect("sink installed");
        let agg = agg.as_any().downcast_ref::<AggSink>().unwrap();
        let attr = agg.attribution();
        let total: f64 = attr.iter().map(|a| a.pct).sum();
        assert!(
            (total - 100.0).abs() < 1e-6,
            "self-time percentages partition the traced clock: {total}"
        );
        let settle = attr
            .iter()
            .find(|a| a.phase == Phase::Settle.name())
            .unwrap();
        let outer = attr
            .iter()
            .find(|a| a.phase == Phase::ScenarioRun.name())
            .unwrap();
        assert_eq!(settle.spans, 1);
        assert_eq!(outer.spans, 1);
        assert!(
            settle.self_ns >= 2_000_000,
            "child span owns the slept time"
        );
    }

    #[test]
    fn sim_now_is_captured_at_span_start() {
        install(Box::new(ChromeSink::new(16)));
        set_sim_now(1_500);
        {
            let _s = span(Phase::FibInstall);
        }
        let sink = take().unwrap();
        let chrome = sink.as_any().downcast_ref::<ChromeSink>().unwrap();
        assert!(chrome.to_json().contains("\"sim_ns\":1500"));
    }

    #[test]
    fn install_returns_previous_sink() {
        assert!(install(Box::<AggSink>::default()).is_none());
        assert!(install(Box::<AggSink>::default()).is_some());
        assert!(take().is_some());
        assert!(take().is_none());
        assert!(!enabled());
    }
}
