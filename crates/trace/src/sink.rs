//! The sink trait and the in-memory aggregation sink.

use crate::audit::{AuditRecord, OrderRecord};
use crate::{Phase, PHASES, PHASE_COUNT};
use std::any::Any;
use std::collections::BTreeMap;
use std::time::Instant;

/// Wall-clock measurements of one closed span. Wall values are **not**
/// deterministic; exporters must keep them in maskable fields.
#[derive(Debug, Clone, Copy)]
pub struct SpanWall {
    /// When the span opened (monotonic).
    pub start: Instant,
    /// Total wall nanoseconds, children included.
    pub total_ns: u64,
    /// Wall nanoseconds not covered by child spans. Self times of all
    /// spans partition the traced clock.
    pub self_ns: u64,
}

/// Receives everything the instrumentation emits on one thread.
///
/// Implementations must not call back into `fib_trace` (the
/// thread-local state is borrowed during delivery).
pub trait TraceSink {
    /// One closed span.
    fn span(&mut self, phase: Phase, sim_ns: u64, wall: SpanWall);
    /// One gauge sample.
    fn counter(&mut self, name: &'static str, sim_ns: u64, value: f64);
    /// One histogram observation.
    fn observe(&mut self, name: &'static str, sim_ns: u64, value: u64);
    /// One lie-lifecycle audit record.
    fn audit(&mut self, record: &AuditRecord);
    /// One explored-ordering audit record (adversary runs only). The
    /// default discards it, so sinks that predate the schedule
    /// explorer keep working unchanged.
    fn order(&mut self, _record: &OrderRecord) {}
    /// Downcast support (recover the concrete sink after [`crate::take`]).
    fn as_any(&self) -> &dyn Any;
    /// Owned downcast support.
    fn into_any(self: Box<Self>) -> Box<dyn Any>;
}

/// One phase's share of the traced wall clock.
#[derive(Debug, Clone, PartialEq)]
pub struct PhaseAttribution {
    /// Stable phase name ([`Phase::name`]).
    pub phase: &'static str,
    /// Spans closed (deterministic across runs of the same seed).
    pub spans: u64,
    /// Self wall nanoseconds (wall-derived; masked in byte diffs).
    pub self_ns: u64,
    /// Percentage of the total traced self time (wall-derived).
    pub pct: f64,
}

/// Summary statistics of one observation series.
#[derive(Debug, Clone, Copy, PartialEq, Default)]
pub struct HistSummary {
    /// Observations recorded.
    pub count: u64,
    /// Smallest value (0 when empty).
    pub min: u64,
    /// Largest value.
    pub max: u64,
    /// Sum of all values.
    pub sum: u64,
}

impl HistSummary {
    fn add(&mut self, v: u64) {
        if self.count == 0 {
            self.min = v;
            self.max = v;
        } else {
            self.min = self.min.min(v);
            self.max = self.max.max(v);
        }
        self.count += 1;
        self.sum += v;
    }

    /// Mean observation (0 when empty).
    pub fn mean(&self) -> f64 {
        if self.count == 0 {
            0.0
        } else {
            self.sum as f64 / self.count as f64
        }
    }

    fn merge(&mut self, other: &HistSummary) {
        if other.count == 0 {
            return;
        }
        if self.count == 0 {
            *self = *other;
            return;
        }
        self.min = self.min.min(other.min);
        self.max = self.max.max(other.max);
        self.count += other.count;
        self.sum += other.sum;
    }
}

/// In-memory aggregation: per-phase span counts and self times,
/// histogram summaries, and the audit log. Feeds the
/// `phase_attribution` sections of the bench JSON artifacts.
#[derive(Debug, Default)]
pub struct AggSink {
    spans: [u64; PHASE_COUNT],
    self_ns: [u64; PHASE_COUNT],
    total_ns: [u64; PHASE_COUNT],
    hists: BTreeMap<&'static str, HistSummary>,
    audits: Vec<AuditRecord>,
    orders: Vec<OrderRecord>,
}

impl AggSink {
    /// An empty sink.
    pub fn new() -> AggSink {
        AggSink::default()
    }

    /// Per-phase attribution over phases that recorded at least one
    /// span; `pct` values sum to ~100 (self times partition the
    /// traced clock).
    pub fn attribution(&self) -> Vec<PhaseAttribution> {
        let total: u64 = self.self_ns.iter().sum();
        PHASES
            .iter()
            .filter(|p| self.spans[p.index()] > 0)
            .map(|p| {
                let i = p.index();
                PhaseAttribution {
                    phase: p.name(),
                    spans: self.spans[i],
                    self_ns: self.self_ns[i],
                    pct: if total == 0 {
                        0.0
                    } else {
                        self.self_ns[i] as f64 / total as f64 * 100.0
                    },
                }
            })
            .collect()
    }

    /// Spans closed for one phase.
    pub fn span_count(&self, phase: Phase) -> u64 {
        self.spans[phase.index()]
    }

    /// Total (inclusive) wall nanoseconds for one phase.
    pub fn total_ns(&self, phase: Phase) -> u64 {
        self.total_ns[phase.index()]
    }

    /// Summary of one observation series, if any was recorded.
    pub fn hist(&self, name: &str) -> Option<&HistSummary> {
        self.hists.get(name)
    }

    /// All observation series, in name order.
    pub fn hists(&self) -> impl Iterator<Item = (&&'static str, &HistSummary)> {
        self.hists.iter()
    }

    /// The audit log, in emission order.
    pub fn audits(&self) -> &[AuditRecord] {
        &self.audits
    }

    /// The explored-ordering log, in emission order (empty outside
    /// adversary runs).
    pub fn orders(&self) -> &[OrderRecord] {
        &self.orders
    }

    /// Fold another sink's aggregates into this one (sweep rollup).
    pub fn merge(&mut self, other: &AggSink) {
        for i in 0..PHASE_COUNT {
            self.spans[i] += other.spans[i];
            self.self_ns[i] += other.self_ns[i];
            self.total_ns[i] += other.total_ns[i];
        }
        for (name, h) in &other.hists {
            self.hists.entry(name).or_default().merge(h);
        }
        self.audits.extend(other.audits.iter().cloned());
        self.orders.extend(other.orders.iter().cloned());
    }

    /// Rebuild an `AggSink` from pre-aggregated attribution rows
    /// (sweep cells ship rows, not sinks).
    pub fn from_attribution(rows: &[PhaseAttribution]) -> AggSink {
        let mut agg = AggSink::new();
        for row in rows {
            if let Some(p) = PHASES.iter().find(|p| p.name() == row.phase) {
                agg.spans[p.index()] = row.spans;
                agg.self_ns[p.index()] = row.self_ns;
            }
        }
        agg
    }
}

impl TraceSink for AggSink {
    fn span(&mut self, phase: Phase, _sim_ns: u64, wall: SpanWall) {
        let i = phase.index();
        self.spans[i] += 1;
        self.self_ns[i] += wall.self_ns;
        self.total_ns[i] += wall.total_ns;
    }

    fn counter(&mut self, _name: &'static str, _sim_ns: u64, _value: f64) {}

    fn observe(&mut self, name: &'static str, _sim_ns: u64, value: u64) {
        self.hists.entry(name).or_default().add(value);
    }

    fn audit(&mut self, record: &AuditRecord) {
        self.audits.push(record.clone());
    }

    fn order(&mut self, record: &OrderRecord) {
        self.orders.push(record.clone());
    }

    fn as_any(&self) -> &dyn Any {
        self
    }

    fn into_any(self: Box<Self>) -> Box<dyn Any> {
        self
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn wall(self_ns: u64, total_ns: u64) -> SpanWall {
        SpanWall {
            start: Instant::now(),
            total_ns,
            self_ns,
        }
    }

    #[test]
    fn attribution_percentages_partition() {
        let mut agg = AggSink::new();
        agg.span(Phase::SpfFull, 0, wall(300, 300));
        agg.span(Phase::Settle, 0, wall(700, 900));
        let attr = agg.attribution();
        assert_eq!(attr.len(), 2);
        let total: f64 = attr.iter().map(|a| a.pct).sum();
        assert!((total - 100.0).abs() < 1e-9);
        let spf = attr.iter().find(|a| a.phase == "spf.full").unwrap();
        assert!((spf.pct - 30.0).abs() < 1e-9);
    }

    #[test]
    fn merge_and_roundtrip() {
        let mut a = AggSink::new();
        a.span(Phase::SpfFull, 0, wall(100, 100));
        a.observe("settle.dirty_flows", 0, 4);
        let mut b = AggSink::new();
        b.span(Phase::SpfFull, 0, wall(50, 50));
        b.span(Phase::CtrlOptimize, 0, wall(50, 50));
        b.observe("settle.dirty_flows", 0, 10);
        a.merge(&b);
        assert_eq!(a.span_count(Phase::SpfFull), 2);
        let h = a.hist("settle.dirty_flows").unwrap();
        assert_eq!((h.count, h.min, h.max, h.sum), (2, 4, 10, 14));
        assert!((h.mean() - 7.0).abs() < 1e-9);

        let rebuilt = AggSink::from_attribution(&a.attribution());
        assert_eq!(rebuilt.span_count(Phase::SpfFull), 2);
        assert_eq!(rebuilt.attribution(), a.attribution());
    }

    #[test]
    fn empty_sink_attributes_nothing() {
        assert!(AggSink::new().attribution().is_empty());
        assert_eq!(AggSink::new().hist("x"), None);
    }
}
