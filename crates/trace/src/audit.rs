//! The structured lie-lifecycle audit log.
//!
//! One record per controller action on the lied topology. The schema
//! is documented (and worked through) in `docs/OBSERVABILITY.md`.

/// What the controller did.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum AuditAction {
    /// A fake node was injected.
    Inject,
    /// A fake node was retracted.
    Retract,
}

impl AuditAction {
    /// Stable lowercase name (`inject` / `retract`).
    pub const fn name(self) -> &'static str {
        match self {
            AuditAction::Inject => "inject",
            AuditAction::Retract => "retract",
        }
    }
}

/// One audited injection or retraction.
///
/// Every field except nothing is deterministic for a fixed seed: the
/// record carries only simulation state (sim time, topology names,
/// utilizations), never wall-clock values.
#[derive(Debug, Clone, PartialEq)]
pub struct AuditRecord {
    /// Simulated time of the action (nanoseconds).
    pub sim_ns: u64,
    /// Injection or retraction.
    pub action: AuditAction,
    /// The destination prefix the lie steers.
    pub prefix: String,
    /// The lie itself (fake node, attachment router, forwarding
    /// address) — empty on bulk retractions with no surviving plan.
    pub lie: String,
    /// Why the controller acted: the triggering condition, including
    /// the most recent alarm edge when one fired this poll cycle
    /// (cross-reference into the `alarm.*` trace series).
    pub trigger: String,
    /// Size of the candidate path set the planner considered.
    pub candidates: usize,
    /// Max link utilization the plan predicts after the action.
    pub predicted_max_util: f64,
    /// Max utilization measured by the monitor when the decision was
    /// taken (the "realized" side of the predicted-vs-realized pair:
    /// the next decision's measured value closes the loop on this
    /// one's prediction).
    pub measured_max_util: f64,
}

/// One explored same-timestamp ordering decision.
///
/// Emitted through [`crate::order`] by the adversarial schedule
/// explorer every time its `TieBreak` hook reorders a batch of
/// equal-time events, so explored interleavings leave the same kind of
/// deterministic audit trail the lie lifecycle does: replaying a seed
/// reproduces the exact record sequence (see `docs/ADVERSARY.md`).
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct OrderRecord {
    /// Simulated time of the batch (nanoseconds).
    pub sim_ns: u64,
    /// Events in the tied batch.
    pub batch: u32,
    /// The permutation applied: `perm[k]` is the FIFO slot served
    /// `k`-th. Empty means identity (the hook declined to reorder).
    pub perm: Vec<u32>,
}

impl OrderRecord {
    /// Compact stable rendering (`t=<ns> n=<batch> perm=<a.b.c>`),
    /// the unit the explorer's schedule fingerprints are built from.
    pub fn render(&self) -> String {
        let perm: Vec<String> = self.perm.iter().map(|p| p.to_string()).collect();
        format!(
            "t={} n={} perm={}",
            self.sim_ns,
            self.batch,
            if perm.is_empty() {
                "id".to_string()
            } else {
                perm.join(".")
            }
        )
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn action_names_are_stable() {
        assert_eq!(AuditAction::Inject.name(), "inject");
        assert_eq!(AuditAction::Retract.name(), "retract");
    }

    #[test]
    fn records_compare_structurally() {
        let r = AuditRecord {
            sim_ns: 5,
            action: AuditAction::Inject,
            prefix: "p9".into(),
            lie: "fake@r3".into(),
            trigger: "predicted>=hi".into(),
            candidates: 4,
            predicted_max_util: 0.7,
            measured_max_util: 0.95,
        };
        assert_eq!(r, r.clone());
    }

    #[test]
    fn order_records_render_compactly() {
        let r = OrderRecord {
            sim_ns: 15_000_000_000,
            batch: 3,
            perm: vec![2, 0, 1],
        };
        assert_eq!(r.render(), "t=15000000000 n=3 perm=2.0.1");
        let id = OrderRecord {
            sim_ns: 5,
            batch: 2,
            perm: Vec::new(),
        };
        assert_eq!(id.render(), "t=5 n=2 perm=id");
    }
}
