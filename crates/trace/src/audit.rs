//! The structured lie-lifecycle audit log.
//!
//! One record per controller action on the lied topology. The schema
//! is documented (and worked through) in `docs/OBSERVABILITY.md`.

/// What the controller did.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum AuditAction {
    /// A fake node was injected.
    Inject,
    /// A fake node was retracted.
    Retract,
}

impl AuditAction {
    /// Stable lowercase name (`inject` / `retract`).
    pub const fn name(self) -> &'static str {
        match self {
            AuditAction::Inject => "inject",
            AuditAction::Retract => "retract",
        }
    }
}

/// One audited injection or retraction.
///
/// Every field except nothing is deterministic for a fixed seed: the
/// record carries only simulation state (sim time, topology names,
/// utilizations), never wall-clock values.
#[derive(Debug, Clone, PartialEq)]
pub struct AuditRecord {
    /// Simulated time of the action (nanoseconds).
    pub sim_ns: u64,
    /// Injection or retraction.
    pub action: AuditAction,
    /// The destination prefix the lie steers.
    pub prefix: String,
    /// The lie itself (fake node, attachment router, forwarding
    /// address) — empty on bulk retractions with no surviving plan.
    pub lie: String,
    /// Why the controller acted: the triggering condition, including
    /// the most recent alarm edge when one fired this poll cycle
    /// (cross-reference into the `alarm.*` trace series).
    pub trigger: String,
    /// Size of the candidate path set the planner considered.
    pub candidates: usize,
    /// Max link utilization the plan predicts after the action.
    pub predicted_max_util: f64,
    /// Max utilization measured by the monitor when the decision was
    /// taken (the "realized" side of the predicted-vs-realized pair:
    /// the next decision's measured value closes the loop on this
    /// one's prediction).
    pub measured_max_util: f64,
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn action_names_are_stable() {
        assert_eq!(AuditAction::Inject.name(), "inject");
        assert_eq!(AuditAction::Retract.name(), "retract");
    }

    #[test]
    fn records_compare_structurally() {
        let r = AuditRecord {
            sim_ns: 5,
            action: AuditAction::Inject,
            prefix: "p9".into(),
            lie: "fake@r3".into(),
            trigger: "predicted>=hi".into(),
            candidates: 4,
            predicted_max_util: 0.7,
            measured_max_util: 0.95,
        };
        assert_eq!(r, r.clone());
    }
}
