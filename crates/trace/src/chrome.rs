//! Chrome trace-event JSON export (Perfetto / `chrome://tracing`).
//!
//! Spans become `"X"` complete events, gauges and observations become
//! `"C"` counter tracks, audit records become `"i"` instants. The
//! only non-deterministic bytes in the output are the wall-derived
//! `"ts"` and `"dur"` fields; [`mask_wall_fields`] blanks exactly
//! those, so two runs of the same seed compare byte-identical after
//! masking (asserted in the workspace tests and diffed in CI).

use crate::audit::{AuditRecord, OrderRecord};
use crate::sink::{AggSink, PhaseAttribution, SpanWall, TraceSink};
use crate::Phase;
use std::any::Any;
use std::fmt::Write as _;
use std::time::Instant;

enum Event {
    Span {
        phase: Phase,
        sim_ns: u64,
        ts_us: u64,
        dur_us: u64,
    },
    Counter {
        name: &'static str,
        sim_ns: u64,
        ts_us: u64,
        value: f64,
    },
    Observe {
        name: &'static str,
        sim_ns: u64,
        ts_us: u64,
        value: u64,
    },
    Audit {
        record: AuditRecord,
        ts_us: u64,
    },
    Order {
        record: OrderRecord,
        ts_us: u64,
    },
}

/// A bounded Chrome trace-event recorder.
///
/// Events beyond the cap are counted in `dropped` (the cap is on the
/// deterministic event sequence, so the kept prefix is identical
/// across runs). The sink embeds an [`AggSink`], so per-phase
/// attribution stays available alongside the exported trace.
pub struct ChromeSink {
    epoch: Instant,
    cap: usize,
    dropped: u64,
    events: Vec<Event>,
    agg: AggSink,
}

impl ChromeSink {
    /// A sink keeping at most `cap` events, with its epoch (the
    /// trace's t=0) at construction time.
    pub fn new(cap: usize) -> ChromeSink {
        ChromeSink::with_epoch(cap, Instant::now())
    }

    /// Like [`ChromeSink::new`] with an explicit epoch, so several
    /// sinks (one per bench case) share one timeline.
    pub fn with_epoch(cap: usize, epoch: Instant) -> ChromeSink {
        ChromeSink {
            epoch,
            cap,
            dropped: 0,
            events: Vec::new(),
            agg: AggSink::new(),
        }
    }

    /// The sink's epoch.
    pub fn epoch(&self) -> Instant {
        self.epoch
    }

    /// Events currently held.
    pub fn event_count(&self) -> usize {
        self.events.len()
    }

    /// Events discarded by the cap.
    pub fn dropped(&self) -> u64 {
        self.dropped
    }

    /// Per-phase attribution (from the embedded [`AggSink`]).
    pub fn attribution(&self) -> Vec<PhaseAttribution> {
        self.agg.attribution()
    }

    /// The audit log.
    pub fn audits(&self) -> &[AuditRecord] {
        self.agg.audits()
    }

    /// The explored-ordering log.
    pub fn orders(&self) -> &[OrderRecord] {
        self.agg.orders()
    }

    /// Append another sink's events to this one (same epoch assumed;
    /// used to merge per-case sinks into one trace file).
    pub fn absorb(&mut self, other: ChromeSink) {
        self.dropped += other.dropped;
        for ev in other.events {
            self.push(ev);
        }
        self.agg.merge(&other.agg);
    }

    fn push(&mut self, ev: Event) {
        if self.events.len() >= self.cap {
            self.dropped += 1;
        } else {
            self.events.push(ev);
        }
    }

    fn now_us(&self) -> u64 {
        self.epoch.elapsed().as_micros() as u64
    }

    /// Render the full Chrome trace-event JSON document.
    pub fn to_json(&self) -> String {
        let mut out = String::new();
        out.push_str("{\"displayTimeUnit\":\"ms\",\"otherData\":{");
        let _ = write!(out, "\"dropped\":{}", self.dropped);
        out.push_str("},\"traceEvents\":[");
        for (i, ev) in self.events.iter().enumerate() {
            if i > 0 {
                out.push(',');
            }
            out.push('\n');
            match ev {
                Event::Span {
                    phase,
                    sim_ns,
                    ts_us,
                    dur_us,
                } => {
                    let _ = write!(
                        out,
                        "{{\"name\":\"{}\",\"ph\":\"X\",\"pid\":1,\"tid\":1,\
                         \"ts\":{ts_us},\"dur\":{dur_us},\"args\":{{\"sim_ns\":{sim_ns}}}}}",
                        phase.name()
                    );
                }
                Event::Counter {
                    name,
                    sim_ns,
                    ts_us,
                    value,
                } => {
                    let _ = write!(
                        out,
                        "{{\"name\":\"{name}\",\"ph\":\"C\",\"pid\":1,\"tid\":1,\
                         \"ts\":{ts_us},\"args\":{{\"value\":{value:.6},\"sim_ns\":{sim_ns}}}}}",
                    );
                }
                Event::Observe {
                    name,
                    sim_ns,
                    ts_us,
                    value,
                } => {
                    let _ = write!(
                        out,
                        "{{\"name\":\"{name}\",\"ph\":\"C\",\"pid\":1,\"tid\":1,\
                         \"ts\":{ts_us},\"args\":{{\"value\":{value},\"sim_ns\":{sim_ns}}}}}",
                    );
                }
                Event::Audit { record, ts_us } => {
                    let _ = write!(
                        out,
                        "{{\"name\":\"lie.{}\",\"ph\":\"i\",\"pid\":1,\"tid\":1,\
                         \"ts\":{ts_us},\"s\":\"t\",\"args\":{{\"sim_ns\":{},\
                         \"prefix\":{},\"lie\":{},\"trigger\":{},\"candidates\":{},\
                         \"predicted_max_util\":{:.6},\"measured_max_util\":{:.6}}}}}",
                        record.action.name(),
                        record.sim_ns,
                        jstr(&record.prefix),
                        jstr(&record.lie),
                        jstr(&record.trigger),
                        record.candidates,
                        record.predicted_max_util,
                        record.measured_max_util,
                    );
                }
                Event::Order { record, ts_us } => {
                    let _ = write!(
                        out,
                        "{{\"name\":\"sched.order\",\"ph\":\"i\",\"pid\":1,\"tid\":1,\
                         \"ts\":{ts_us},\"s\":\"t\",\"args\":{{\"sim_ns\":{},\
                         \"batch\":{},\"perm\":{}}}}}",
                        record.sim_ns,
                        record.batch,
                        jstr(&record.render()),
                    );
                }
            }
        }
        out.push_str("\n]}\n");
        out
    }
}

impl TraceSink for ChromeSink {
    fn span(&mut self, phase: Phase, sim_ns: u64, wall: SpanWall) {
        self.agg.span(phase, sim_ns, wall);
        let ts_us = wall.start.saturating_duration_since(self.epoch).as_micros() as u64;
        let dur_us = wall.total_ns / 1_000;
        self.push(Event::Span {
            phase,
            sim_ns,
            ts_us,
            dur_us,
        });
    }

    fn counter(&mut self, name: &'static str, sim_ns: u64, value: f64) {
        let ts_us = self.now_us();
        self.push(Event::Counter {
            name,
            sim_ns,
            ts_us,
            value,
        });
    }

    fn observe(&mut self, name: &'static str, sim_ns: u64, value: u64) {
        self.agg.observe(name, sim_ns, value);
        let ts_us = self.now_us();
        self.push(Event::Observe {
            name,
            sim_ns,
            ts_us,
            value,
        });
    }

    fn audit(&mut self, record: &AuditRecord) {
        self.agg.audit(record);
        let ts_us = self.now_us();
        self.push(Event::Audit {
            record: record.clone(),
            ts_us,
        });
    }

    fn order(&mut self, record: &OrderRecord) {
        self.agg.order(record);
        let ts_us = self.now_us();
        self.push(Event::Order {
            record: record.clone(),
            ts_us,
        });
    }

    fn as_any(&self) -> &dyn Any {
        self
    }

    fn into_any(self: Box<Self>) -> Box<dyn Any> {
        self
    }
}

/// JSON string literal with minimal escaping.
fn jstr(s: &str) -> String {
    let mut out = String::with_capacity(s.len() + 2);
    out.push('"');
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\r' => out.push_str("\\r"),
            '\t' => out.push_str("\\t"),
            c if (c as u32) < 0x20 => {
                let _ = write!(out, "\\u{:04x}", c as u32);
            }
            c => out.push(c),
        }
    }
    out.push('"');
    out
}

/// Blank the wall-derived `"ts"` and `"dur"` values of a Chrome trace
/// JSON document: after masking, two exports of the same seeded run
/// are byte-identical. (CI applies the equivalent `sed` expression.)
pub fn mask_wall_fields(json: &str) -> String {
    let mut out = String::with_capacity(json.len());
    let bytes = json.as_bytes();
    let mut i = 0;
    while i < bytes.len() {
        let rest = &json[i..];
        let key = if rest.starts_with("\"ts\":") {
            Some(5)
        } else if rest.starts_with("\"dur\":") {
            Some(6)
        } else {
            None
        };
        match key {
            Some(len) => {
                out.push_str(&rest[..len]);
                i += len;
                out.push('X');
                while i < bytes.len() && bytes[i].is_ascii_digit() {
                    i += 1;
                }
            }
            None => {
                let c = rest.chars().next().expect("in bounds");
                out.push(c);
                i += c.len_utf8();
            }
        }
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::AuditAction;

    fn wall(ns: u64) -> SpanWall {
        SpanWall {
            start: Instant::now(),
            total_ns: ns,
            self_ns: ns,
        }
    }

    #[test]
    fn json_has_all_event_kinds() {
        let mut sink = ChromeSink::new(16);
        sink.span(Phase::SpfFull, 100, wall(2_000));
        sink.counter("queue.depth", 100, 3.0);
        sink.observe("settle.dirty_flows", 100, 9);
        sink.audit(&AuditRecord {
            sim_ns: 100,
            action: AuditAction::Inject,
            prefix: "p1".into(),
            lie: "fake@r2 via r3".into(),
            trigger: "alarm r1->r2 raised @0.91".into(),
            candidates: 3,
            predicted_max_util: 0.66,
            measured_max_util: 0.91,
        });
        let json = sink.to_json();
        assert!(json.contains("\"name\":\"spf.full\",\"ph\":\"X\""));
        assert!(json.contains("\"name\":\"queue.depth\",\"ph\":\"C\""));
        assert!(json.contains("\"name\":\"settle.dirty_flows\",\"ph\":\"C\""));
        assert!(json.contains("\"name\":\"lie.inject\",\"ph\":\"i\""));
        assert!(json.contains("\"candidates\":3"));
        assert!(json.contains("\"dropped\":0"));
    }

    #[test]
    fn cap_drops_deterministically() {
        let mut sink = ChromeSink::new(2);
        for i in 0..5 {
            sink.span(Phase::Settle, i, wall(10));
        }
        assert_eq!(sink.event_count(), 2);
        assert_eq!(sink.dropped(), 3);
        assert!(sink.to_json().contains("\"dropped\":3"));
        // Aggregation is not capped.
        assert_eq!(sink.attribution()[0].spans, 5);
    }

    #[test]
    fn masking_blanks_exactly_ts_and_dur() {
        let mut sink = ChromeSink::new(16);
        sink.span(Phase::FibInstall, 42, wall(1_234_000));
        let masked = mask_wall_fields(&sink.to_json());
        assert!(masked.contains("\"ts\":X"));
        assert!(masked.contains("\"dur\":X"));
        assert!(masked.contains("\"sim_ns\":42"), "sim time survives");
        let again = mask_wall_fields(&ChromeSink::new(16).to_json());
        assert_eq!(again, mask_wall_fields(&ChromeSink::new(16).to_json()));
    }

    #[test]
    fn escaping_handles_quotes() {
        assert_eq!(jstr("a\"b\\c\n"), "\"a\\\"b\\\\c\\n\"");
    }

    #[test]
    fn absorb_merges_events_and_attribution() {
        let epoch = Instant::now();
        let mut a = ChromeSink::with_epoch(16, epoch);
        let mut b = ChromeSink::with_epoch(16, epoch);
        a.span(Phase::SpfFull, 0, wall(10));
        b.span(Phase::Settle, 0, wall(30));
        a.absorb(b);
        assert_eq!(a.event_count(), 2);
        assert_eq!(a.attribution().len(), 2);
    }
}
