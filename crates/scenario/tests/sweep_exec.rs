//! Integration tests for the sweep engine: byte-identical merged
//! output at any worker count, override precedence, pin_seed
//! rejection surfacing as readable per-cell failures, and failure
//! isolation.

use fib_scenario::prelude::*;
use fib_scenario::sweep::stats::{cells_csv, mask_timing, to_json};
use fib_scenario::sweep::{run_sweep_with, CellFailure};

/// A small in-memory scenario: ring with a detour, one overloading
/// batch, controller on. Fast enough to fan out in debug tests.
const TINY: &str = r#"
name = "tiny"
horizon_secs = 25.0
seed = 1
capacity = 1e6
sinks = [3]
[topology]
kind = "ring"
n = 3
[controller]
attach = 2
default_flow_rate = 100000.0
[[workload]]
kind = "constant"
at = 8.0
src = 1
n = 12
rate = 1e5
video_secs = 60.0
"#;

const PINNED: &str = r#"
name = "pinned"
horizon_secs = 10.0
seed = 5
pin_seed = true
capacity = 1e6
sinks = [3]
[topology]
kind = "ring"
n = 3
[[workload]]
kind = "constant"
at = 1.0
src = 1
n = 2
rate = 1e5
video_secs = 5.0
"#;

fn loader(name: &str) -> Result<ScenarioSpec, SpecError> {
    match name {
        "tiny" => ScenarioSpec::from_toml_str(TINY),
        "pinned" => ScenarioSpec::from_toml_str(PINNED),
        other => Err(SpecError(format!("no such test scenario `{other}`"))),
    }
}

const GRID: &str = r#"
name = "t"
[[grid]]
scenario = "tiny"
seeds = [1, 2, 3, 4]
capacity_scale = [1.0, 0.9]
"#;

#[test]
fn merged_output_is_byte_identical_at_any_jobs() {
    let sweep = SweepSpec::from_toml_str(GRID).unwrap();
    let reference = run_sweep_with(&sweep, 1, None, &loader).unwrap();
    assert_eq!(reference.outcomes.len(), 16, "4 seeds x 2 caps x twins");
    assert!(reference.failures().is_empty());
    let ref_cells = cells_csv(&reference);
    let ref_summary = SweepSummary::from_run(&reference);
    let ref_dist = ref_summary.dist_csv();
    for jobs in [2, 4, 8] {
        let run = run_sweep_with(&sweep, jobs, None, &loader).unwrap();
        assert_eq!(
            cells_csv(&run),
            ref_cells,
            "per-cell CSV must be byte-identical at jobs={jobs}"
        );
        let summary = SweepSummary::from_run(&run);
        assert_eq!(
            summary.dist_csv(),
            ref_dist,
            "distribution CSV must be byte-identical at jobs={jobs}"
        );
        // The JSON differs only in its wall-clock/jobs keys; compare
        // through the shared mask (the same one the sweep binary's
        // --baseline-jobs check uses).
        assert_eq!(
            mask_timing(&to_json(&run, &summary, None)),
            mask_timing(&to_json(&reference, &ref_summary, None)),
            "masked JSON must match at jobs={jobs}"
        );
    }
}

#[test]
fn distributions_aggregate_on_and_baseline_cells() {
    let sweep = SweepSpec::from_toml_str(GRID).unwrap();
    let run = run_sweep_with(&sweep, 4, None, &loader).unwrap();
    let summary = SweepSummary::from_run(&run);
    assert_eq!(summary.cells, 16);
    assert_eq!(summary.failed, 0);
    assert_eq!(summary.groups.len(), 2, "one group per capacity point");
    for g in &summary.groups {
        assert_eq!(g.cells, 8);
        let qoe = g.qoe.expect("controller-on distribution");
        assert_eq!(qoe.n, 4, "one sample per seed");
        assert!(qoe.p5 <= qoe.p50 && qoe.p50 <= qoe.p95);
        let delta = g.qoe_delta.expect("paired deltas");
        assert_eq!(delta.n, 4);
        assert!(
            delta.p50 >= 0.0,
            "controller should not hurt the median seed: {delta:?}"
        );
        assert!(g.rollup.get("events") > 0, "rollups merged");
    }
    // The overload is real: the baseline saturates where the
    // controller spreads.
    let g = &summary.groups[0];
    let on = g.qoe.unwrap();
    let base = g.baseline_qoe.unwrap();
    assert!(
        on.mean > base.mean,
        "controller-on QoE must beat baseline: {} vs {}",
        on.mean,
        base.mean
    );
}

#[test]
fn pin_seed_violations_fail_the_cell_not_the_sweep() {
    let sweep = SweepSpec::from_toml_str(
        r#"
name = "t"
[[grid]]
scenario = "pinned"
seeds = [5, 6]
baseline = false
"#,
    )
    .unwrap();
    let run = run_sweep_with(&sweep, 2, None, &loader).unwrap();
    assert_eq!(run.outcomes.len(), 2);
    // Seed 5 is the pinned seed: it runs.
    assert!(run.outcomes[0].result.is_ok(), "pinned seed itself is fine");
    // Seed 6 violates the pin: that cell fails with the runner's
    // loud message, the sweep keeps going.
    match &run.outcomes[1].result {
        Err(CellFailure::Spec(msg)) => {
            assert!(msg.contains("pins seed"), "{msg}");
        }
        other => panic!("expected a pin_seed Spec failure, got {other:?}"),
    }
    let failures = run.failures();
    assert_eq!(failures.len(), 1);
    assert_eq!(failures[0].0, 1);
    assert!(failures[0].1.contains("pinned#s6"), "{}", failures[0].1);
    // And the summary carries it into the artifacts.
    let summary = SweepSummary::from_run(&run);
    assert_eq!(summary.failed, 1);
    let csv = cells_csv(&run);
    assert!(csv.contains("pinned#s6,pinned,6,on,failed"), "{csv}");
    assert!(to_json(&run, &summary, None).contains("pins seed"));
}

#[test]
fn cli_horizon_overrides_grid_horizon() {
    // Grid horizon 12 s (beats the spec's 25 s), CLI 6 s (beats both).
    let sweep = SweepSpec::from_toml_str(
        r#"
name = "t"
[[grid]]
scenario = "tiny"
seeds = [1]
horizon_secs = 12.0
baseline = false
"#,
    )
    .unwrap();
    let grid_run = run_sweep_with(&sweep, 1, None, &loader).unwrap();
    let report = grid_run.outcomes[0].result.as_ref().unwrap();
    assert!((report.report.horizon_secs - 12.0).abs() < 1e-12);
    let cli_run = run_sweep_with(&sweep, 1, Some(6.0), &loader).unwrap();
    let report = cli_run.outcomes[0].result.as_ref().unwrap();
    assert!((report.report.horizon_secs - 6.0).abs() < 1e-12);
}

#[test]
fn unknown_scenarios_fail_the_sweep_up_front() {
    let sweep = SweepSpec::from_toml_str(
        r#"
name = "t"
[[grid]]
scenario = "no_such_scenario"
seeds = [1]
"#,
    )
    .unwrap();
    let err = run_sweep_with(&sweep, 1, None, &loader).unwrap_err();
    assert!(err.to_string().contains("no_such_scenario"), "{err}");
}

#[test]
fn shipped_sweep_grids_parse_and_reference_shipped_scenarios() {
    for name in ["smoke", "flashcrowd_grid"] {
        let sweep = load_sweep(name).unwrap_or_else(|e| panic!("{name}: {e}"));
        assert_eq!(sweep.name, name);
        assert!(!sweep.expand().is_empty());
        for entry in &sweep.grid {
            assert!(
                ALL_SCENARIOS.contains(&entry.scenario.as_str()),
                "sweep {name} references unknown scenario {}",
                entry.scenario
            );
            let spec = load_scenario(&entry.scenario).unwrap();
            if spec.pin_seed {
                assert!(
                    entry.seeds.iter().all(|s| *s == spec.seed),
                    "sweep {name} would sweep pinned scenario {} across foreign seeds",
                    entry.scenario
                );
            }
        }
    }
    // The flagship grid is the acceptance surface: at least 60
    // controller-on scenario x seed cells.
    let grid = load_sweep("flashcrowd_grid").unwrap();
    let on_cells = grid.expand().iter().filter(|c| !c.baseline).count();
    assert!(on_cells >= 60, "flagship grid too small: {on_cells}");
}
