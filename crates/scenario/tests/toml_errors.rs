//! Error-path coverage for the zero-dependency TOML-subset parser and
//! the spec layers above it: every rejection must carry the offending
//! key or a 1-based line number, because sweep grids multiply one
//! typo into hundreds of failed cells and the message is all the
//! operator gets.

use fib_scenario::spec::ScenarioSpec;
use fib_scenario::sweep::SweepSpec;
use fib_scenario::toml::{parse, Value};

#[test]
fn unknown_keys_name_the_key_and_context() {
    let src = r#"
name = "t"
horizon_secs = 10.0
capacity = 1e6
horizn = 3.0
[topology]
kind = "line"
n = 3
[[workload]]
kind = "constant"
at = 1.0
src = 1
n = 1
rate = 1e5
video_secs = 5.0
"#;
    let e = ScenarioSpec::from_toml_str(src).unwrap_err().to_string();
    assert!(e.contains("horizn"), "{e}");
    assert!(e.contains("allowed:"), "lists the valid keys: {e}");
    // Nested contexts are named too.
    let nested = src.replace("kind = \"line\"\nn = 3", "kind = \"line\"\nm = 3");
    let e = ScenarioSpec::from_toml_str(&nested)
        .unwrap_err()
        .to_string();
    assert!(e.contains('m') && e.contains("topology"), "{e}");
}

#[test]
fn type_mismatches_name_expected_and_actual() {
    // Each case is a complete, otherwise-valid spec with exactly one
    // mistyped root key, so the reported error is about the type.
    let with_body = |root: &str| {
        format!(
            "{root}\n[topology]\nkind = \"line\"\nn = 3\n\
             [[workload]]\nkind = \"constant\"\nat = 1.0\nsrc = 1\nn = 1\n\
             rate = 1e5\nvideo_secs = 5.0\n"
        )
    };
    let cases = [
        (
            "name = 7\nhorizon_secs = 1.0\ncapacity = 1e6",
            "must be a string",
        ),
        (
            "name = \"t\"\nhorizon_secs = \"long\"\ncapacity = 1e6",
            "must be a number",
        ),
        (
            "name = \"t\"\nhorizon_secs = 1.0\ncapacity = 1e6\npin_seed = 1",
            "must be a boolean",
        ),
        (
            "name = \"t\"\nhorizon_secs = 1.0\ncapacity = 1e6\nseed = 1.5",
            "`seed` must be a non-negative integer",
        ),
        (
            "name = \"t\"\nhorizon_secs = 1.0\ncapacity = 1e6\nsinks = 3",
            "`sinks` must be an array",
        ),
        (
            "name = \"t\"\nhorizon_secs = 1.0\ncapacity = 1e6\ncontroller = 3",
            "`controller` must be a table",
        ),
        (
            "name = \"t\"\ndescription = 3\nhorizon_secs = 1.0\ncapacity = 1e6",
            "`scenario.description` must be a string",
        ),
    ];
    for (root, needle) in cases {
        let src = with_body(root);
        let e = ScenarioSpec::from_toml_str(&src).unwrap_err().to_string();
        assert!(
            e.contains(needle),
            "`{root}` should say `{needle}`, got {e}"
        );
    }
    // `workload` mistyped at the root (no `[[workload]]` body, which
    // would collide at the TOML layer already).
    let src = "name = \"t\"\nhorizon_secs = 1.0\ncapacity = 1e6\nworkload = 3\n\
               [topology]\nkind = \"line\"\nn = 3\n";
    let e = ScenarioSpec::from_toml_str(src).unwrap_err().to_string();
    assert!(e.contains("`workload` must be an array of tables"), "{e}");
}

#[test]
fn malformed_arrays_of_tables_are_line_numbered() {
    let e = parse("a = 1\n[[event]\nat = 2.0").unwrap_err();
    assert_eq!(e.line, 2);
    assert!(e.message.contains("array-of-tables"), "{e}");
    // A scalar key cannot later become an array of tables.
    let e = parse("event = 3\n[[event]]\nat = 2.0").unwrap_err();
    assert_eq!(e.line, 2);
    assert!(e.message.contains("not an array of tables"), "{e}");
    // Nor can a [[header]] collide with a plain [table].
    let e = parse("[event]\nat = 1.0\n\n[[event]]\nat = 2.0").unwrap_err();
    assert_eq!(e.line, 4);
    assert!(e.message.contains("not an array of tables"), "{e}");
}

#[test]
fn parse_errors_carry_one_based_line_numbers() {
    for (src, line) in [
        ("ok = 1\nbad", 2),
        ("ok = 1\n\n\nbad = @nope", 4),
        ("a = [1,\n2,\n!]", 1), // multi-line arrays report the opening line
        ("s = \"unterminated", 1),
        ("[t]\nx = {inline = 1}", 2),
        ("key with space = 1", 1),
    ] {
        let e = parse(src).unwrap_err();
        assert_eq!(e.line, line, "`{src}`: {e}");
        assert!(
            e.to_string().starts_with(&format!("line {line}:")),
            "display includes the line: {e}"
        );
    }
}

#[test]
fn duplicate_keys_and_tables_are_rejected() {
    assert!(parse("a = 1\na = 2")
        .unwrap_err()
        .message
        .contains("duplicate"));
    // Re-opening a [table] and re-defining a key inside it collides.
    let e = parse("[t]\na = 1\n[t]\na = 2").unwrap_err();
    assert!(e.message.contains("duplicate"), "{e}");
}

#[test]
fn float_values_do_not_pass_as_integers() {
    assert_eq!(Value::Float(2.5).as_i64(), None);
    let src = r#"
name = "t"
horizon_secs = 10.0
capacity = 1e6
[topology]
kind = "line"
n = 3.5
[[workload]]
kind = "constant"
at = 1.0
src = 1
n = 1
rate = 1e5
video_secs = 5.0
"#;
    let e = ScenarioSpec::from_toml_str(src).unwrap_err().to_string();
    assert!(
        e.contains("topology.n") && e.contains("non-negative integer"),
        "{e}"
    );
}

#[test]
fn sweep_specs_reject_bad_shapes_with_context() {
    for (src, needle) in [
        (
            "name = \"s\"\ngrid = 3",
            "`grid` must be an array of tables",
        ),
        (
            "name = \"s\"\ndefaults = 3\n[[grid]]\nscenario = \"x\"\nseeds = [1]",
            "`defaults` must be a table",
        ),
        (
            "name = \"s\"\n[[grid]]\nscenario = \"x\"\nseeds = [1]\ncapacity_scale = 2.0",
            "capacity_scale",
        ),
        (
            "name = \"s\"\n[[grid]]\nscenario = \"x\"\nseeds = [-1]",
            "seeds",
        ),
        (
            "name = \"s\"\n[[grid]]\nscenario = \"x\"\nseeds = [1]\nseed_count = 2",
            "not both",
        ),
    ] {
        let e = SweepSpec::from_toml_str(src).unwrap_err().to_string();
        assert!(e.contains(needle), "`{src}` should mention `{needle}`: {e}");
    }
}
