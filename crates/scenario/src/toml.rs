//! A hand-rolled parser for the TOML subset scenario specs use.
//!
//! The workspace builds hermetically with no registry access, so
//! instead of a `toml` dependency this module implements exactly the
//! slice of TOML the `scenarios/` files need:
//!
//! * comments (`#` to end of line) and blank lines;
//! * `[table]` and `[[array-of-tables]]` headers, with dotted names;
//! * `key = value` pairs with bare (`[A-Za-z0-9_-]+`) or quoted keys;
//! * values: basic `"strings"` (with `\\ \" \n \t \r` escapes),
//!   integers (optional sign and `_` separators), floats (including
//!   exponent forms like `4e6`), booleans, and (possibly multi-line)
//!   arrays.
//!
//! Not supported, by design: datetimes, inline tables, literal/
//! multi-line strings, and dotted keys on the left of `=`. The parser
//! reports line-numbered errors for anything outside the subset.

use std::collections::BTreeMap;
use std::fmt;

/// A parsed TOML value.
#[derive(Debug, Clone, PartialEq)]
pub enum Value {
    /// A basic string.
    Str(String),
    /// An integer.
    Int(i64),
    /// A float.
    Float(f64),
    /// A boolean.
    Bool(bool),
    /// An array of values.
    Array(Vec<Value>),
    /// A table (also the type of the document root).
    Table(Table),
}

/// A table: ordered map from key to value.
pub type Table = BTreeMap<String, Value>;

impl Value {
    /// The value as a string, if it is one.
    pub fn as_str(&self) -> Option<&str> {
        match self {
            Value::Str(s) => Some(s),
            _ => None,
        }
    }

    /// The value as an f64 (integers coerce).
    pub fn as_f64(&self) -> Option<f64> {
        match self {
            Value::Int(i) => Some(*i as f64),
            Value::Float(f) => Some(*f),
            _ => None,
        }
    }

    /// The value as an i64 (floats do not coerce).
    pub fn as_i64(&self) -> Option<i64> {
        match self {
            Value::Int(i) => Some(*i),
            _ => None,
        }
    }

    /// The value as a bool, if it is one.
    pub fn as_bool(&self) -> Option<bool> {
        match self {
            Value::Bool(b) => Some(*b),
            _ => None,
        }
    }

    /// The value as an array slice, if it is one.
    pub fn as_array(&self) -> Option<&[Value]> {
        match self {
            Value::Array(v) => Some(v),
            _ => None,
        }
    }

    /// The value as a table, if it is one.
    pub fn as_table(&self) -> Option<&Table> {
        match self {
            Value::Table(t) => Some(t),
            _ => None,
        }
    }

    /// Human name of the value's type (for error messages).
    pub fn type_name(&self) -> &'static str {
        match self {
            Value::Str(_) => "string",
            Value::Int(_) => "integer",
            Value::Float(_) => "float",
            Value::Bool(_) => "boolean",
            Value::Array(_) => "array",
            Value::Table(_) => "table",
        }
    }
}

/// A parse failure, with the 1-based line it occurred on.
#[derive(Debug, Clone, PartialEq)]
pub struct ParseError {
    /// 1-based source line.
    pub line: usize,
    /// What went wrong.
    pub message: String,
}

impl fmt::Display for ParseError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "line {}: {}", self.line, self.message)
    }
}

impl std::error::Error for ParseError {}

fn err<T>(line: usize, message: impl Into<String>) -> Result<T, ParseError> {
    Err(ParseError {
        line,
        message: message.into(),
    })
}

/// Strip a comment that starts outside any string.
fn strip_comment(line: &str) -> &str {
    let mut in_str = false;
    let mut escaped = false;
    for (i, c) in line.char_indices() {
        if in_str {
            if escaped {
                escaped = false;
            } else if c == '\\' {
                escaped = true;
            } else if c == '"' {
                in_str = false;
            }
        } else if c == '"' {
            in_str = true;
        } else if c == '#' {
            return &line[..i];
        }
    }
    line
}

fn is_bare_key_char(c: char) -> bool {
    c.is_ascii_alphanumeric() || c == '_' || c == '-'
}

/// Parse a dotted header name like `a.b.c` into segments.
fn parse_header_name(name: &str, line: usize) -> Result<Vec<String>, ParseError> {
    let mut out = Vec::new();
    for seg in name.split('.') {
        let seg = seg.trim();
        if seg.is_empty() || !seg.chars().all(is_bare_key_char) {
            return err(line, format!("invalid table name `{name}`"));
        }
        out.push(seg.to_string());
    }
    Ok(out)
}

/// Navigate (creating as needed) to the table at `path`. The final
/// segment of an array-of-tables path gets a fresh element appended.
fn navigate<'a>(
    root: &'a mut Table,
    path: &[String],
    array_leaf: bool,
    line: usize,
) -> Result<&'a mut Table, ParseError> {
    let mut cur = root;
    for (depth, seg) in path.iter().enumerate() {
        let last = depth == path.len() - 1;
        let entry = cur.entry(seg.clone()).or_insert_with(|| {
            if last && array_leaf {
                Value::Array(Vec::new())
            } else {
                Value::Table(Table::new())
            }
        });
        if last && array_leaf {
            match entry {
                Value::Array(items) => {
                    items.push(Value::Table(Table::new()));
                    match items.last_mut() {
                        Some(Value::Table(t)) => return Ok(t),
                        _ => unreachable!("just pushed a table"),
                    }
                }
                other => {
                    return err(
                        line,
                        format!("`{seg}` is a {}, not an array of tables", other.type_name()),
                    )
                }
            }
        }
        cur = match entry {
            Value::Table(t) => t,
            // Intermediate segment naming an array of tables: descend
            // into its most recent element (standard TOML behavior).
            Value::Array(items) => match items.last_mut() {
                Some(Value::Table(t)) => t,
                _ => return err(line, format!("`{seg}` is not a table")),
            },
            other => {
                return err(
                    line,
                    format!("`{seg}` is a {}, not a table", other.type_name()),
                )
            }
        };
    }
    Ok(cur)
}

/// Scan a value's text from `chars`, returning the parsed value and
/// how many bytes were consumed.
struct ValueParser<'a> {
    src: &'a str,
    pos: usize,
    line: usize,
}

impl<'a> ValueParser<'a> {
    fn peek(&self) -> Option<char> {
        self.src[self.pos..].chars().next()
    }

    fn bump(&mut self) -> Option<char> {
        let c = self.peek()?;
        self.pos += c.len_utf8();
        Some(c)
    }

    fn skip_ws(&mut self) {
        // Newlines appear only in accumulated multi-line array text.
        while matches!(self.peek(), Some(' ' | '\t' | '\n' | '\r')) {
            self.bump();
        }
    }

    fn parse_string(&mut self) -> Result<Value, ParseError> {
        let quote = self.bump();
        debug_assert_eq!(quote, Some('"'));
        let mut out = String::new();
        loop {
            match self.bump() {
                None => return err(self.line, "unterminated string"),
                Some('"') => return Ok(Value::Str(out)),
                Some('\\') => match self.bump() {
                    Some('"') => out.push('"'),
                    Some('\\') => out.push('\\'),
                    Some('n') => out.push('\n'),
                    Some('t') => out.push('\t'),
                    Some('r') => out.push('\r'),
                    other => {
                        return err(self.line, format!("unsupported escape `\\{other:?}`"));
                    }
                },
                Some(c) => out.push(c),
            }
        }
    }

    fn parse_array(&mut self) -> Result<Value, ParseError> {
        let bracket = self.bump();
        debug_assert_eq!(bracket, Some('['));
        let mut items = Vec::new();
        // Elements must be comma-separated; a trailing comma is fine.
        let mut expect_item = true;
        loop {
            self.skip_ws();
            match self.peek() {
                None => return err(self.line, "unterminated array"),
                Some(']') => {
                    self.bump();
                    return Ok(Value::Array(items));
                }
                Some(',') => {
                    if expect_item {
                        return err(self.line, "unexpected `,` in array");
                    }
                    self.bump();
                    expect_item = true;
                }
                _ => {
                    if !expect_item {
                        return err(self.line, "missing `,` between array elements");
                    }
                    items.push(self.parse_value()?);
                    expect_item = false;
                }
            }
        }
    }

    fn parse_scalar(&mut self) -> Result<Value, ParseError> {
        let rest = &self.src[self.pos..];
        let end = rest
            .find([',', ']', ' ', '\t', '\n', '\r'])
            .unwrap_or(rest.len());
        let tok = &rest[..end];
        if tok.is_empty() {
            return err(self.line, "expected a value");
        }
        self.pos += end;
        match tok {
            "true" => return Ok(Value::Bool(true)),
            "false" => return Ok(Value::Bool(false)),
            _ => {}
        }
        let clean: String = tok.chars().filter(|c| *c != '_').collect();
        let looks_float = clean.contains(['.', 'e', 'E']);
        if looks_float {
            if let Ok(f) = clean.parse::<f64>() {
                return Ok(Value::Float(f));
            }
        } else if let Ok(i) = clean.parse::<i64>() {
            return Ok(Value::Int(i));
        }
        err(self.line, format!("cannot parse value `{tok}`"))
    }

    fn parse_value(&mut self) -> Result<Value, ParseError> {
        self.skip_ws();
        match self.peek() {
            Some('"') => self.parse_string(),
            Some('[') => self.parse_array(),
            Some('{') => err(self.line, "inline tables are not supported"),
            _ => self.parse_scalar(),
        }
    }
}

/// Parse a TOML-subset document into its root table.
pub fn parse(src: &str) -> Result<Table, ParseError> {
    let mut root = Table::new();
    let mut current_path: Vec<String> = Vec::new();
    let mut current_is_array = false;
    // Pending multi-line array continuation: accumulated text + key.
    let mut lines = src.lines().enumerate().peekable();
    while let Some((idx, raw)) = lines.next() {
        let lineno = idx + 1;
        let line = strip_comment(raw).trim();
        if line.is_empty() {
            continue;
        }
        if let Some(rest) = line.strip_prefix("[[") {
            let Some(name) = rest.strip_suffix("]]") else {
                return err(lineno, "malformed [[array-of-tables]] header");
            };
            current_path = parse_header_name(name.trim(), lineno)?;
            current_is_array = true;
            // Append the new element eagerly so empty tables exist.
            navigate(&mut root, &current_path, true, lineno)?;
            continue;
        }
        if let Some(rest) = line.strip_prefix('[') {
            let Some(name) = rest.strip_suffix(']') else {
                return err(lineno, "malformed [table] header");
            };
            current_path = parse_header_name(name.trim(), lineno)?;
            current_is_array = false;
            let target = navigate(&mut root, &current_path, false, lineno)?;
            let _ = target;
            continue;
        }
        // key = value
        let Some(eq) = line.find('=') else {
            return err(lineno, format!("expected `key = value`, got `{line}`"));
        };
        let key_raw = line[..eq].trim();
        let key = if let Some(stripped) = key_raw.strip_prefix('"') {
            match stripped.strip_suffix('"') {
                Some(k) => k.to_string(),
                None => return err(lineno, "malformed quoted key"),
            }
        } else {
            if key_raw.is_empty() || !key_raw.chars().all(is_bare_key_char) {
                return err(lineno, format!("invalid key `{key_raw}`"));
            }
            key_raw.to_string()
        };
        // Accumulate continuation lines until brackets balance (for
        // multi-line arrays).
        let mut text = line[eq + 1..].trim().to_string();
        while bracket_depth(&text) > 0 {
            match lines.next() {
                Some((_, cont)) => {
                    text.push('\n');
                    text.push_str(strip_comment(cont).trim());
                }
                None => return err(lineno, "unterminated array"),
            }
        }
        let mut vp = ValueParser {
            src: &text,
            pos: 0,
            line: lineno,
        };
        let value = vp.parse_value()?;
        vp.skip_ws();
        if vp.pos < vp.src.len() {
            return err(
                lineno,
                format!("trailing characters after value: `{}`", &vp.src[vp.pos..]),
            );
        }
        let target = if current_path.is_empty() {
            &mut root
        } else {
            // Re-navigating on each key is O(depth) — fine for specs.
            navigate_existing(&mut root, &current_path, current_is_array, lineno)?
        };
        if target.insert(key.clone(), value).is_some() {
            return err(lineno, format!("duplicate key `{key}`"));
        }
    }
    Ok(root)
}

/// Net bracket depth of `text`, ignoring brackets inside strings.
fn bracket_depth(text: &str) -> i32 {
    let mut depth = 0;
    let mut in_str = false;
    let mut escaped = false;
    for c in text.chars() {
        if in_str {
            if escaped {
                escaped = false;
            } else if c == '\\' {
                escaped = true;
            } else if c == '"' {
                in_str = false;
            }
        } else {
            match c {
                '"' => in_str = true,
                '[' => depth += 1,
                ']' => depth -= 1,
                _ => {}
            }
        }
    }
    depth
}

/// Like [`navigate`] but never appends a new array element: it finds
/// the most recent one (key assignment after a `[[header]]`).
fn navigate_existing<'a>(
    root: &'a mut Table,
    path: &[String],
    array_leaf: bool,
    line: usize,
) -> Result<&'a mut Table, ParseError> {
    let mut cur = root;
    for (depth, seg) in path.iter().enumerate() {
        let last = depth == path.len() - 1;
        let entry = match cur.get_mut(seg) {
            Some(e) => e,
            None => return err(line, format!("internal: missing table `{seg}`")),
        };
        cur = match entry {
            Value::Array(items) => match items.last_mut() {
                Some(Value::Table(t)) => t,
                _ => return err(line, format!("`{seg}` is not a table array")),
            },
            Value::Table(t) => {
                if last && array_leaf {
                    return err(line, format!("`{seg}` is not a table array"));
                }
                t
            }
            other => {
                return err(
                    line,
                    format!("`{seg}` is a {}, not a table", other.type_name()),
                )
            }
        };
    }
    Ok(cur)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn scalars_and_comments() {
        let t = parse(
            r#"
# a comment
name = "flash crowd" # trailing comment
count = 42
big = 1_000_000
rate = 4e6
neg = -2.5
on = true
off = false
"#,
        )
        .unwrap();
        assert_eq!(t["name"], Value::Str("flash crowd".into()));
        assert_eq!(t["count"], Value::Int(42));
        assert_eq!(t["big"], Value::Int(1_000_000));
        assert_eq!(t["rate"], Value::Float(4e6));
        assert_eq!(t["neg"], Value::Float(-2.5));
        assert_eq!(t["on"], Value::Bool(true));
        assert_eq!(t["off"], Value::Bool(false));
    }

    #[test]
    fn strings_with_escapes_and_hashes() {
        let t = parse(r#"s = "a \"quoted\" # not a comment\n""#).unwrap();
        assert_eq!(t["s"].as_str().unwrap(), "a \"quoted\" # not a comment\n");
    }

    #[test]
    fn tables_and_dotted_headers() {
        let t = parse(
            r#"
top = 1
[controller]
enabled = true
[topology.params]
n = 12
"#,
        )
        .unwrap();
        assert_eq!(t["top"], Value::Int(1));
        let ctl = t["controller"].as_table().unwrap();
        assert_eq!(ctl["enabled"], Value::Bool(true));
        let params = t["topology"].as_table().unwrap()["params"]
            .as_table()
            .unwrap();
        assert_eq!(params["n"], Value::Int(12));
    }

    #[test]
    fn arrays_of_tables() {
        let t = parse(
            r#"
[[event]]
at = 10.0
action = "fail_link"

[[event]]
at = 20.0
action = "restore_link"
"#,
        )
        .unwrap();
        let events = t["event"].as_array().unwrap();
        assert_eq!(events.len(), 2);
        assert_eq!(
            events[1].as_table().unwrap()["action"].as_str().unwrap(),
            "restore_link"
        );
    }

    #[test]
    fn arrays_single_and_multi_line() {
        let t = parse(
            r#"
links = ["1-2", "2-3"]
nested = [[1, 2], [3]]
multi = [
  1,  # first
  2,
  3,
]
"#,
        )
        .unwrap();
        assert_eq!(
            t["links"],
            Value::Array(vec![Value::Str("1-2".into()), Value::Str("2-3".into())])
        );
        assert_eq!(
            t["nested"],
            Value::Array(vec![
                Value::Array(vec![Value::Int(1), Value::Int(2)]),
                Value::Array(vec![Value::Int(3)]),
            ])
        );
        assert_eq!(
            t["multi"],
            Value::Array(vec![Value::Int(1), Value::Int(2), Value::Int(3)])
        );
    }

    #[test]
    fn arrays_enforce_comma_separation() {
        // Trailing comma is valid TOML.
        assert_eq!(
            parse("a = [1, 2,]").unwrap()["a"],
            Value::Array(vec![Value::Int(1), Value::Int(2)])
        );
        assert_eq!(parse("a = []").unwrap()["a"], Value::Array(vec![]));
        for bad in ["a = [1 2]", "a = [1,,2]", "a = [,1]", "a = [\"x\" \"y\"]"] {
            let e = parse(bad).unwrap_err();
            assert!(
                e.message.contains("array"),
                "`{bad}` must be rejected, got {e}"
            );
        }
    }

    #[test]
    fn errors_carry_line_numbers() {
        let e = parse("a = 1\nb = @nope").unwrap_err();
        assert_eq!(e.line, 2);
        assert!(e.to_string().contains("line 2"));
        assert!(parse("a = 1\na = 2")
            .unwrap_err()
            .message
            .contains("duplicate"));
        assert!(parse("x = {a = 1}").unwrap_err().message.contains("inline"));
        assert!(parse("[bad").is_err());
        assert!(parse("just words").is_err());
        assert!(parse("s = \"unterminated").is_err());
        assert!(parse("v = [1, 2").is_err());
    }

    #[test]
    fn type_accessors() {
        assert_eq!(Value::Int(3).as_f64(), Some(3.0));
        assert_eq!(Value::Float(0.5).as_f64(), Some(0.5));
        assert_eq!(Value::Float(0.5).as_i64(), None);
        assert_eq!(Value::Str("x".into()).type_name(), "string");
        assert_eq!(Value::Bool(true).as_bool(), Some(true));
    }
}
