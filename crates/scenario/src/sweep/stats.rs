//! Distribution aggregation and deterministic rendering.
//!
//! The stats layer folds the ordered [`CellOutcome`] list into
//! per-group distributions — a *group* is one grid configuration
//! (scenario × capacity scale × crowd scale), aggregated **across its
//! seeds** — and renders three artifacts:
//!
//! * a per-cell CSV (one row per run, counters included);
//! * a per-group distribution CSV (QoE p5/p50/p95, paired
//!   controller-on vs baseline QoE deltas, utilization and
//!   unroutable-flow-secs and reaction-latency tails);
//! * the `BENCH_sweep.json` record (both of the above plus wall-clock
//!   timing, which is the only non-deterministic content and is
//!   masked in CI's byte diffs).
//!
//! Everything here is pure folding over an already-ordered input, so
//! the rendered bytes are identical at any worker count.

use super::exec::{CellOutcome, SweepRun};
use fib_telemetry::rollup::Rollup;
use std::collections::BTreeMap;
use std::fmt::Write as _;

/// Quantile of an ascending-sorted slice, by linear interpolation
/// between order statistics (the common "type 7" estimator).
pub fn quantile(sorted: &[f64], q: f64) -> f64 {
    assert!(!sorted.is_empty(), "quantile of an empty sample");
    assert!((0.0..=1.0).contains(&q), "q must be in [0, 1]");
    let pos = q * (sorted.len() - 1) as f64;
    let lo = pos.floor() as usize;
    let hi = pos.ceil() as usize;
    sorted[lo] + (sorted[hi] - sorted[lo]) * (pos - lo as f64)
}

/// A five-number view of one metric across a group's seeds.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct Dist {
    /// Sample count.
    pub n: usize,
    /// Arithmetic mean.
    pub mean: f64,
    /// 5th percentile.
    pub p5: f64,
    /// Median.
    pub p50: f64,
    /// 95th percentile.
    pub p95: f64,
}

impl Dist {
    /// Build from unsorted samples (`None` when empty).
    pub fn from_samples(values: &[f64]) -> Option<Dist> {
        if values.is_empty() {
            return None;
        }
        let mut sorted = values.to_vec();
        sorted.sort_by(|a, b| a.partial_cmp(b).expect("finite metric samples"));
        Some(Dist {
            n: sorted.len(),
            mean: sorted.iter().sum::<f64>() / sorted.len() as f64,
            p5: quantile(&sorted, 0.05),
            p50: quantile(&sorted, 0.50),
            p95: quantile(&sorted, 0.95),
        })
    }
}

/// Aggregates for one grid configuration across its seeds.
#[derive(Debug, Clone)]
pub struct GroupDist {
    /// Index of the grid entry this group came from.
    pub entry: usize,
    /// Group label (scenario plus scale axes).
    pub label: String,
    /// Scenario name.
    pub scenario: String,
    /// Capacity multiplier of this configuration.
    pub capacity_scale: f64,
    /// Crowd multiplier of this configuration.
    pub crowd_scale: f64,
    /// Cells in the group (baseline twins included).
    pub cells: usize,
    /// Cells that failed.
    pub failed: usize,
    /// Total sessions scheduled across controller-on cells.
    pub sessions: u64,
    /// Total stalls across controller-on cells.
    pub stalls: u64,
    /// QoE mean-score distribution over controller-on seeds.
    pub qoe: Option<Dist>,
    /// QoE mean-score distribution over baseline seeds.
    pub baseline_qoe: Option<Dist>,
    /// Paired per-seed QoE delta (controller-on minus baseline).
    pub qoe_delta: Option<Dist>,
    /// Peak-utilization distribution over controller-on seeds.
    pub max_util: Option<Dist>,
    /// Unroutable-flow-seconds distribution (controller-on seeds).
    pub unroutable: Option<Dist>,
    /// Reaction-latency distribution over the seeds that reacted.
    pub reaction: Option<Dist>,
    /// Controller-on cells in which at least one lie was installed.
    pub reacted: usize,
    /// Machinery counters summed over every cell of the group.
    pub rollup: Rollup,
}

/// The whole sweep, condensed.
#[derive(Debug, Clone)]
pub struct SweepSummary {
    /// Sweep name.
    pub name: String,
    /// Sweep description.
    pub description: String,
    /// Total cells.
    pub cells: usize,
    /// Failed cells.
    pub failed: usize,
    /// Per-configuration distributions, in grid order.
    pub groups: Vec<GroupDist>,
    /// Failures as `(cell index, label, error)`, in cell order.
    pub failures: Vec<(usize, String, String)>,
    /// Machinery counters summed over the whole sweep.
    pub rollup: Rollup,
    /// Per-phase wall-clock attribution merged over every successful
    /// cell (span counts deterministic, percentages masked in diffs).
    pub phases: Vec<fib_trace::PhaseAttribution>,
}

/// Fixed-precision float rendering shared by every CSV/JSON cell.
fn num(v: f64) -> String {
    format!("{v:.6}")
}

fn opt_num(v: Option<f64>) -> String {
    v.map(num).unwrap_or_else(|| "-".into())
}

impl SweepSummary {
    /// Fold an ordered run into per-group distributions.
    pub fn from_run(run: &SweepRun) -> SweepSummary {
        // Group key: (entry, scale bits). Scales within one run come
        // from a single parse, so bit-equality is exact.
        type Key = (usize, u64, u64);
        let mut order: Vec<Key> = Vec::new();
        let mut buckets: BTreeMap<Key, Vec<&CellOutcome>> = BTreeMap::new();
        for o in &run.outcomes {
            let key = (
                o.cell.entry,
                o.cell.capacity_scale.to_bits(),
                o.cell.crowd_scale.to_bits(),
            );
            if !buckets.contains_key(&key) {
                order.push(key);
            }
            buckets.entry(key).or_default().push(o);
        }
        let mut groups = Vec::with_capacity(order.len());
        let mut total_rollup = Rollup::new();
        let mut total_phases = fib_trace::AggSink::new();
        for o in &run.outcomes {
            if let Ok(m) = &o.result {
                total_phases.merge(&fib_trace::AggSink::from_attribution(&m.phases));
            }
        }
        for key in order {
            let cells = &buckets[&key];
            let first = cells[0];
            let mut g = GroupDist {
                entry: first.cell.entry,
                label: first.cell.group_label(),
                scenario: first.cell.scenario.clone(),
                capacity_scale: first.cell.capacity_scale,
                crowd_scale: first.cell.crowd_scale,
                cells: cells.len(),
                failed: 0,
                sessions: 0,
                stalls: 0,
                qoe: None,
                baseline_qoe: None,
                qoe_delta: None,
                max_util: None,
                unroutable: None,
                reaction: None,
                reacted: 0,
                rollup: Rollup::new(),
            };
            let mut qoe = Vec::new();
            let mut base_qoe: BTreeMap<u64, f64> = BTreeMap::new();
            let mut on_qoe: BTreeMap<u64, f64> = BTreeMap::new();
            let mut max_util = Vec::new();
            let mut unroutable = Vec::new();
            let mut reaction = Vec::new();
            for o in cells {
                match &o.result {
                    Err(_) => g.failed += 1,
                    Ok(m) => {
                        g.rollup.merge(&m.rollup);
                        let r = &m.report;
                        if o.cell.baseline {
                            base_qoe.insert(o.cell.seed, r.qoe.mean_score);
                        } else {
                            on_qoe.insert(o.cell.seed, r.qoe.mean_score);
                            qoe.push(r.qoe.mean_score);
                            max_util.push(r.max_util);
                            unroutable.push(r.unroutable_flow_secs);
                            g.sessions += r.sessions as u64;
                            g.stalls += u64::from(r.qoe.stalls);
                            if let Some(t) = r.reaction_secs {
                                reaction.push(t);
                                g.reacted += 1;
                            }
                        }
                    }
                }
            }
            // Paired deltas, in ascending-seed order: only seeds where
            // both twins succeeded contribute.
            let deltas: Vec<f64> = on_qoe
                .iter()
                .filter_map(|(seed, on)| base_qoe.get(seed).map(|base| on - base))
                .collect();
            g.qoe = Dist::from_samples(&qoe);
            g.baseline_qoe = Dist::from_samples(&base_qoe.values().copied().collect::<Vec<_>>());
            g.qoe_delta = Dist::from_samples(&deltas);
            g.max_util = Dist::from_samples(&max_util);
            g.unroutable = Dist::from_samples(&unroutable);
            g.reaction = Dist::from_samples(&reaction);
            total_rollup.merge(&g.rollup);
            groups.push(g);
        }
        SweepSummary {
            name: run.spec.name.clone(),
            description: run.spec.description.clone(),
            cells: run.outcomes.len(),
            failed: run.failures().len(),
            groups,
            failures: run.failures(),
            rollup: total_rollup,
            phases: total_phases.attribution(),
        }
    }

    /// The per-group distribution CSV (byte-deterministic).
    pub fn dist_csv(&self) -> String {
        let mut out = String::from(
            "group,scenario,capacity_scale,crowd_scale,cells,failed,sessions,stalls,\
             qoe_p5,qoe_p50,qoe_p95,qoe_mean,base_qoe_p50,\
             dqoe_p5,dqoe_p50,dqoe_p95,\
             max_util_p50,max_util_p95,unroutable_p50,unroutable_p95,\
             reaction_p50,reaction_p95,reacted\n",
        );
        for g in &self.groups {
            let _ = writeln!(
                out,
                "{},{},{},{},{},{},{},{},{},{},{},{},{},{},{},{},{},{},{},{},{},{},{}",
                g.label,
                g.scenario,
                num(g.capacity_scale),
                num(g.crowd_scale),
                g.cells,
                g.failed,
                g.sessions,
                g.stalls,
                opt_num(g.qoe.map(|d| d.p5)),
                opt_num(g.qoe.map(|d| d.p50)),
                opt_num(g.qoe.map(|d| d.p95)),
                opt_num(g.qoe.map(|d| d.mean)),
                opt_num(g.baseline_qoe.map(|d| d.p50)),
                opt_num(g.qoe_delta.map(|d| d.p5)),
                opt_num(g.qoe_delta.map(|d| d.p50)),
                opt_num(g.qoe_delta.map(|d| d.p95)),
                opt_num(g.max_util.map(|d| d.p50)),
                opt_num(g.max_util.map(|d| d.p95)),
                opt_num(g.unroutable.map(|d| d.p50)),
                opt_num(g.unroutable.map(|d| d.p95)),
                opt_num(g.reaction.map(|d| d.p50)),
                opt_num(g.reaction.map(|d| d.p95)),
                g.reacted,
            );
        }
        out
    }
}

/// CSV sanitation: cell errors can contain anything; commas and
/// newlines would break the one-row-per-cell shape.
fn csv_safe(s: &str) -> String {
    s.replace(['\n', '\r'], " ").replace(',', ";")
}

/// The per-cell CSV (byte-deterministic; one row per run).
pub fn cells_csv(run: &SweepRun) -> String {
    let mut out = String::from(
        "cell,label,scenario,seed,variant,status,sessions,max_util,mean_util,peak_lies,\
         reaction_secs,unroutable_flow_secs,stalls,qoe_score,\
         events,spf_full_runs,spf_partial_runs,paths_resolved,alloc_fills,error\n",
    );
    for (i, o) in run.outcomes.iter().enumerate() {
        let variant = if o.cell.baseline { "base" } else { "on" };
        match &o.result {
            Ok(m) => {
                let r = &m.report;
                let _ = writeln!(
                    out,
                    "{i},{},{},{},{variant},ok,{},{},{},{},{},{},{},{},{},{},{},{},{},",
                    o.cell.label(),
                    o.cell.scenario,
                    o.cell.seed,
                    r.sessions,
                    num(r.max_util),
                    num(r.mean_util),
                    r.peak_lies,
                    opt_num(r.reaction_secs),
                    num(r.unroutable_flow_secs),
                    r.qoe.stalls,
                    num(r.qoe.mean_score),
                    m.rollup.get("events"),
                    m.rollup.get("spf_full_runs"),
                    m.rollup.get("spf_partial_runs"),
                    m.rollup.get("paths_resolved"),
                    m.rollup.get("alloc_fills"),
                );
            }
            Err(e) => {
                let _ = writeln!(
                    out,
                    "{i},{},{},{},{variant},failed,-,-,-,-,-,-,-,-,-,-,-,-,-,{}",
                    o.cell.label(),
                    o.cell.scenario,
                    o.cell.seed,
                    csv_safe(&e.to_string()),
                );
            }
        }
    }
    out
}

/// Minimal JSON string escaping for names and error messages.
fn jstr(s: &str) -> String {
    let mut out = String::with_capacity(s.len() + 2);
    out.push('"');
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\r' => out.push_str("\\r"),
            '\t' => out.push_str("\\t"),
            c if (c as u32) < 0x20 => {
                let _ = write!(out, "\\u{:04x}", c as u32);
            }
            c => out.push(c),
        }
    }
    out.push('"');
    out
}

fn dist_json(d: &Option<Dist>) -> String {
    match d {
        None => "null".into(),
        Some(d) => format!(
            "{{\"n\": {}, \"mean\": {}, \"p5\": {}, \"p50\": {}, \"p95\": {}}}",
            d.n,
            num(d.mean),
            num(d.p5),
            num(d.p50),
            num(d.p95)
        ),
    }
}

fn rollup_json(r: &Rollup) -> String {
    let body: Vec<String> = r.iter().map(|(k, v)| format!("\"{k}\": {v}")).collect();
    format!("{{{}}}", body.join(", "))
}

/// Render the `BENCH_sweep.json` record. `baseline` is the optional
/// reference run used for the speedup measurement: `(jobs,
/// wall_secs)` of a prior run of the *same grid* at another worker
/// count. Wall-clock keys (`wall_secs`, `cells_per_sec`,
/// `baseline_wall_secs`, `speedup_vs_baseline`) and the `jobs` counts
/// are the only non-deterministic content; CI masks exactly those.
pub fn to_json(run: &SweepRun, summary: &SweepSummary, baseline: Option<(usize, f64)>) -> String {
    let mut json = String::from("{\n  \"bench\": \"sweep\",\n");
    let _ = writeln!(json, "  \"sweep\": {},", jstr(&summary.name));
    let _ = writeln!(json, "  \"description\": {},", jstr(&summary.description));
    let _ = writeln!(json, "  \"cells\": {},", summary.cells);
    let _ = writeln!(json, "  \"failed\": {},", summary.failed);
    let _ = writeln!(json, "  \"jobs\": {},", run.jobs);
    let _ = writeln!(json, "  \"wall_secs\": {},", num(run.wall_secs));
    let _ = writeln!(
        json,
        "  \"cells_per_sec\": {},",
        num(summary.cells as f64 / run.wall_secs.max(1e-9))
    );
    if let Some((jobs, wall)) = baseline {
        let _ = writeln!(json, "  \"baseline_jobs\": {jobs},");
        let _ = writeln!(json, "  \"baseline_wall_secs\": {},", num(wall));
        let _ = writeln!(
            json,
            "  \"speedup_vs_baseline\": {},",
            num(wall / run.wall_secs.max(1e-9))
        );
    }
    json.push_str("  \"groups\": [\n");
    for (i, g) in summary.groups.iter().enumerate() {
        let _ = writeln!(
            json,
            "    {{\"group\": {}, \"scenario\": {}, \"capacity_scale\": {}, \
             \"crowd_scale\": {}, \"cells\": {}, \"failed\": {}, \"sessions\": {}, \
             \"stalls\": {}, \"reacted\": {}, \"qoe\": {}, \"baseline_qoe\": {}, \
             \"qoe_delta\": {}, \"max_util\": {}, \"unroutable_flow_secs\": {}, \
             \"reaction_secs\": {}, \"rollup\": {}}}{}",
            jstr(&g.label),
            jstr(&g.scenario),
            num(g.capacity_scale),
            num(g.crowd_scale),
            g.cells,
            g.failed,
            g.sessions,
            g.stalls,
            g.reacted,
            dist_json(&g.qoe),
            dist_json(&g.baseline_qoe),
            dist_json(&g.qoe_delta),
            dist_json(&g.max_util),
            dist_json(&g.unroutable),
            dist_json(&g.reaction),
            rollup_json(&g.rollup),
            if i + 1 < summary.groups.len() {
                ","
            } else {
                ""
            },
        );
    }
    json.push_str("  ],\n");
    json.push_str("  \"failures\": [\n");
    for (i, (cell, label, error)) in summary.failures.iter().enumerate() {
        let _ = writeln!(
            json,
            "    {{\"cell\": {cell}, \"label\": {}, \"error\": {}}}{}",
            jstr(label),
            jstr(error),
            if i + 1 < summary.failures.len() {
                ","
            } else {
                ""
            },
        );
    }
    json.push_str("  ],\n");
    json.push_str("  \"phase_attribution\": [\n");
    for (i, a) in summary.phases.iter().enumerate() {
        // `pct` is wall-derived, so it sits alone on its line where
        // both `mask_timing` and CI's sed mask can blank it; `spans`
        // is deterministic and stays in the byte comparison.
        let _ = writeln!(
            json,
            "    {{\"phase\": {}, \"spans\": {},",
            jstr(a.phase),
            a.spans
        );
        let _ = writeln!(json, "      \"pct\": {}", num(a.pct));
        let _ = writeln!(
            json,
            "    }}{}",
            if i + 1 < summary.phases.len() {
                ","
            } else {
                ""
            }
        );
    }
    json.push_str("  ],\n");
    let _ = writeln!(json, "  \"rollup\": {}", rollup_json(&summary.rollup));
    json.push_str("}\n");
    json
}

/// Mask the non-deterministic keys of a rendered `BENCH_sweep.json`:
/// the wall-clock fields and the worker counts. The `sweep` binary's
/// in-process cross-jobs identity check and the workspace tests both
/// compare through this, so the mask lives next to the renderer and
/// cannot drift out of sync with it. (CI's shell-level `sed` mask
/// names the same keys.)
pub fn mask_timing(json: &str) -> String {
    const MASKED: &[&str] = &[
        "jobs",
        "baseline_jobs",
        "wall_secs",
        "baseline_wall_secs",
        "cells_per_sec",
        "speedup_vs_baseline",
        "pct",
    ];
    let mut out = String::with_capacity(json.len());
    for line in json.lines() {
        let trimmed = line.trim_start();
        let masked = MASKED.iter().any(|k| {
            trimmed
                .strip_prefix(&format!("\"{k}\": "))
                .is_some_and(|rest| rest.trim_end_matches(',').parse::<f64>().is_ok())
        });
        if masked {
            let key = trimmed.split(':').next().unwrap_or("");
            let indent = &line[..line.len() - trimmed.len()];
            let comma = if line.trim_end().ends_with(',') {
                ","
            } else {
                ""
            };
            out.push_str(&format!("{indent}{key}: X{comma}\n"));
        } else {
            out.push_str(line);
            out.push('\n');
        }
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn mask_timing_hits_exactly_the_wall_clock_keys() {
        let json = "{\n  \"cells\": 3,\n  \"jobs\": 4,\n  \"wall_secs\": 1.234567,\n  \
                    \"cells_per_sec\": 2.431000,\n  \"speedup_vs_baseline\": 3.100000,\n      \
                    \"pct\": 41.200000\n  \"unroutable_flow_secs\": {\"n\": 1}\n}\n";
        let masked = mask_timing(json);
        assert!(masked.contains("\"pct\": X\n"), "{masked}");
        assert!(masked.contains("\"cells\": 3"), "{masked}");
        assert!(masked.contains("\"jobs\": X"), "{masked}");
        assert!(masked.contains("\"wall_secs\": X,"), "{masked}");
        assert!(masked.contains("\"cells_per_sec\": X,"), "{masked}");
        assert!(masked.contains("\"speedup_vs_baseline\": X,"), "{masked}");
        // Deterministic metrics whose names merely contain `secs`
        // stay in the comparison.
        assert!(masked.contains("\"unroutable_flow_secs\": {\"n\": 1}"));
    }

    #[test]
    fn quantiles_interpolate() {
        let v = [1.0, 2.0, 3.0, 4.0];
        assert_eq!(quantile(&v, 0.0), 1.0);
        assert_eq!(quantile(&v, 1.0), 4.0);
        assert_eq!(quantile(&v, 0.5), 2.5);
        assert!((quantile(&v, 0.95) - 3.85).abs() < 1e-12);
        assert_eq!(quantile(&[7.0], 0.5), 7.0);
    }

    #[test]
    fn dist_from_samples() {
        assert!(Dist::from_samples(&[]).is_none());
        let d = Dist::from_samples(&[3.0, 1.0, 2.0]).unwrap();
        assert_eq!(d.n, 3);
        assert_eq!(d.p50, 2.0);
        assert!((d.mean - 2.0).abs() < 1e-12);
    }

    #[test]
    fn json_escaping() {
        assert_eq!(jstr("plain"), "\"plain\"");
        assert_eq!(jstr("a\"b\\c\nd"), "\"a\\\"b\\\\c\\nd\"");
        assert_eq!(jstr("\u{1}"), "\"\\u0001\"");
    }

    #[test]
    fn csv_safe_strips_separators() {
        assert_eq!(csv_safe("a,b\nc"), "a;b c");
    }
}
