//! The work-stealing cell executor.
//!
//! ## Dataflow
//!
//! The expanded cell list is immutable and shared; a single atomic
//! cursor is the whole scheduling policy. Each worker thread loops:
//! claim the next unclaimed index (`fetch_add`), run that cell to
//! completion, send `(index, outcome)` down a channel, repeat. The
//! collector owns a slot vector and files every outcome under its
//! index. No locks, no per-worker queues — cells are coarse enough
//! (whole simulator runs, tens of milliseconds to minutes) that one
//! shared cursor never contends measurably, and dynamic claiming
//! gives the load balancing a static shard split would lose when cell
//! runtimes vary by 100x across grid axes.
//!
//! ## Why the merged output is byte-identical at any `--jobs`
//!
//! * each cell is an independent, deterministic simulation: its
//!   outcome is a pure function of (scenario spec, seed, overrides) —
//!   no shared mutable state, no time-of-day, no cross-cell RNG;
//! * workers only *race for indices*, never for data: claiming order
//!   affects which thread runs a cell, not what the cell computes;
//! * the collector files outcomes by index, so the final vector is in
//!   cell order regardless of completion order.
//!
//! Wall-clock fields (`wall_secs`) are the one exception and are
//! masked in CI's byte diffs.
//!
//! Panics inside a cell are caught (`catch_unwind`) and recorded as
//! that cell's failure, so one diverging simulation cannot take down
//! the other few hundred — and the `sweep` binary can end with a
//! readable one-line summary instead of a mid-sweep abort.

use super::spec::{resolve_cell, SweepCell, SweepSpec};
use crate::report::ScenarioReport;
use crate::runner::{build, RunOptions};
use crate::spec::{ScenarioSpec, SpecError};
use crate::suite::load_scenario;
use fib_telemetry::rollup::Rollup;
use std::collections::BTreeMap;
use std::panic::{catch_unwind, AssertUnwindSafe};
use std::sync::atomic::{AtomicUsize, Ordering};
use std::sync::mpsc;
use std::time::Instant;

/// Why a cell failed.
#[derive(Debug, Clone, PartialEq)]
pub enum CellFailure {
    /// The spec/build layer rejected the cell (unknown router, a
    /// `pin_seed` scenario swept with a foreign seed, …).
    Spec(String),
    /// The simulation panicked; the payload message is preserved.
    Panic(String),
}

impl std::fmt::Display for CellFailure {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            CellFailure::Spec(m) => write!(f, "{m}"),
            CellFailure::Panic(m) => write!(f, "panic: {m}"),
        }
    }
}

/// What a successful cell produced.
#[derive(Debug, Clone, PartialEq)]
pub struct CellMetrics {
    /// The condensed scenario report. The full trace CSV is dropped
    /// (emptied) — a sweep keeps hundreds of these alive at once and
    /// only the condensed metrics feed the distributions.
    pub report: ScenarioReport,
    /// The run's machinery counters (events, SPF runs, …) as a named
    /// rollup, merged into per-group and sweep totals by the stats
    /// layer.
    pub rollup: Rollup,
    /// Per-phase attribution of the cell's wall clock (each worker
    /// thread runs its cells under a thread-local
    /// [`fib_trace::AggSink`]); span counts are deterministic, wall
    /// percentages are masked in CI byte diffs. The stats layer merges
    /// these into the sweep-level `phase_attribution` section.
    pub phases: Vec<fib_trace::PhaseAttribution>,
}

/// One cell's outcome, failure or not.
#[derive(Debug, Clone, PartialEq)]
pub struct CellOutcome {
    /// The cell that ran.
    pub cell: SweepCell,
    /// Metrics, or why there are none.
    pub result: Result<CellMetrics, CellFailure>,
    /// Wall-clock seconds the cell took (not deterministic; masked in
    /// CI diffs).
    pub wall_secs: f64,
    /// Wall-clock seconds from sweep start to this cell starting (not
    /// deterministic; only consumed by `--trace-out` timeline export,
    /// never printed into pinned artifacts).
    pub start_secs: f64,
}

/// A completed sweep: every cell's outcome, in cell order.
#[derive(Debug, Clone)]
pub struct SweepRun {
    /// The sweep that ran.
    pub spec: SweepSpec,
    /// Outcomes, index-aligned with [`SweepSpec::expand`].
    pub outcomes: Vec<CellOutcome>,
    /// Worker threads used.
    pub jobs: usize,
    /// Total wall-clock seconds.
    pub wall_secs: f64,
}

impl SweepRun {
    /// Cells that failed, as `(cell index, label, error)`.
    pub fn failures(&self) -> Vec<(usize, String, String)> {
        self.outcomes
            .iter()
            .enumerate()
            .filter_map(|(i, o)| {
                o.result
                    .as_ref()
                    .err()
                    .map(|e| (i, o.cell.label(), e.to_string()))
            })
            .collect()
    }
}

/// Run one resolved cell (the worker body). Each cell runs under its
/// own thread-local [`fib_trace::AggSink`], so the sweep rolls up a
/// per-phase attribution of where its wall clock went; the sink is
/// always removed again, even when the cell panics.
fn run_one(spec: &ScenarioSpec, opts: RunOptions) -> Result<CellMetrics, CellFailure> {
    fib_trace::install(Box::new(fib_trace::AggSink::new()));
    let outcome = catch_unwind(AssertUnwindSafe(|| -> Result<CellMetrics, SpecError> {
        let _span = fib_trace::span(fib_trace::Phase::ScenarioRun);
        let mut run = build(spec, opts)?;
        let horizon = run.horizon_secs();
        run.run_until_secs(horizon);
        let rollup = run.sim.stats().rollup();
        let mut report = run.finish();
        report.trace_csv = String::new();
        Ok(CellMetrics {
            report,
            rollup,
            phases: Vec::new(),
        })
    }));
    let phases = fib_trace::take()
        .and_then(|s| s.into_any().downcast::<fib_trace::AggSink>().ok())
        .map(|agg| agg.attribution())
        .unwrap_or_default();
    match outcome {
        Ok(Ok(mut m)) => {
            m.phases = phases;
            Ok(m)
        }
        Ok(Err(e)) => Err(CellFailure::Spec(e.to_string())),
        Err(payload) => Err(CellFailure::Panic(panic_message(payload))),
    }
}

fn panic_message(payload: Box<dyn std::any::Any + Send>) -> String {
    if let Some(s) = payload.downcast_ref::<&str>() {
        (*s).to_string()
    } else if let Some(s) = payload.downcast_ref::<String>() {
        s.clone()
    } else {
        "non-string panic payload".to_string()
    }
}

/// One job's report: its result plus the wall-clock duration and the
/// start offset from the executor's epoch (both seconds, both
/// non-deterministic; timeline export only).
pub(crate) type Timed<T> = (Result<T, String>, f64, f64);

/// The generic ordered executor: run `n` jobs across `jobs` workers,
/// collect results **in index order**. Panics in `work` are caught
/// and surface as `Err(message)` for that index only. Each result
/// carries its wall duration and its start offset from the executor's
/// own start (both non-deterministic; timeline export only).
pub(crate) fn execute_ordered<T, F>(n: usize, jobs: usize, work: F) -> Vec<Timed<T>>
where
    T: Send,
    F: Fn(usize) -> T + Sync,
{
    assert!(jobs >= 1, "at least one worker");
    let epoch = Instant::now();
    let cursor = AtomicUsize::new(0);
    let (tx, rx) = mpsc::channel::<(usize, Timed<T>)>();
    let workers = jobs.min(n.max(1));
    let mut slots: Vec<Option<Timed<T>>> = Vec::new();
    slots.resize_with(n, || None);
    std::thread::scope(|scope| {
        for _ in 0..workers {
            let tx = tx.clone();
            let cursor = &cursor;
            let work = &work;
            scope.spawn(move || loop {
                let i = cursor.fetch_add(1, Ordering::Relaxed);
                if i >= n {
                    break;
                }
                let started = Instant::now();
                let start_off = started.duration_since(epoch).as_secs_f64();
                let result = catch_unwind(AssertUnwindSafe(|| work(i))).map_err(panic_message);
                let wall = started.elapsed().as_secs_f64();
                if tx.send((i, (result, wall, start_off))).is_err() {
                    break;
                }
            });
        }
        drop(tx);
        for (i, timed) in rx {
            slots[i] = Some(timed);
        }
    });
    slots
        .into_iter()
        .map(|s| s.expect("every index reports exactly once"))
        .collect()
}

/// Run a sweep with a custom scenario loader (tests inject in-memory
/// specs; [`run_sweep`] uses the shipped `scenarios/` files).
pub fn run_sweep_with(
    spec: &SweepSpec,
    jobs: usize,
    cli_horizon_secs: Option<f64>,
    loader: &dyn Fn(&str) -> Result<ScenarioSpec, SpecError>,
) -> Result<SweepRun, SpecError> {
    if jobs == 0 {
        return Err(SpecError("--jobs must be at least 1".into()));
    }
    let started = Instant::now();
    // Load each distinct scenario exactly once, before any worker
    // starts: a missing file fails the whole sweep up front, loudly,
    // instead of failing every cell of one entry.
    let mut bases: BTreeMap<&str, ScenarioSpec> = BTreeMap::new();
    for entry in &spec.grid {
        if !bases.contains_key(entry.scenario.as_str()) {
            bases.insert(entry.scenario.as_str(), loader(&entry.scenario)?);
        }
    }
    let cells = spec.expand();
    // Resolve every cell's (scaled spec, options) pair up front; the
    // workers then only simulate.
    let resolved: Vec<(ScenarioSpec, RunOptions)> = cells
        .iter()
        .map(|cell| {
            let base = &bases[cell.scenario.as_str()];
            resolve_cell(base, cell, cli_horizon_secs)
        })
        .collect();
    let raw = execute_ordered(cells.len(), jobs, |i| {
        let (spec, opts) = &resolved[i];
        run_one(spec, *opts)
    });
    let outcomes = cells
        .into_iter()
        .zip(raw)
        .map(|(cell, (result, wall_secs, start_secs))| CellOutcome {
            cell,
            // `run_one` already catches panics; a panic reaching
            // `execute_ordered`'s own guard (the outer Err) is folded
            // into the same failure channel.
            result: match result {
                Ok(r) => r,
                Err(msg) => Err(CellFailure::Panic(msg)),
            },
            wall_secs,
            start_secs,
        })
        .collect();
    Ok(SweepRun {
        spec: spec.clone(),
        outcomes,
        jobs,
        wall_secs: started.elapsed().as_secs_f64(),
    })
}

/// Run a sweep against the shipped `scenarios/` directory.
pub fn run_sweep(
    spec: &SweepSpec,
    jobs: usize,
    cli_horizon_secs: Option<f64>,
) -> Result<SweepRun, SpecError> {
    run_sweep_with(spec, jobs, cli_horizon_secs, &load_scenario)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn ordered_execution_at_any_worker_count() {
        // Work that finishes wildly out of order: earlier indices
        // sleep longer.
        let n = 17;
        let work = |i: usize| {
            if i < 4 {
                std::thread::sleep(std::time::Duration::from_millis((4 - i as u64) * 20));
            }
            i * i
        };
        let single: Vec<usize> = execute_ordered(n, 1, work)
            .into_iter()
            .map(|(r, _, _)| r.unwrap())
            .collect();
        for jobs in [2, 4, 8, 32] {
            let multi: Vec<usize> = execute_ordered(n, jobs, work)
                .into_iter()
                .map(|(r, _, _)| r.unwrap())
                .collect();
            assert_eq!(single, multi, "jobs={jobs} must not reorder results");
        }
        assert_eq!(single[16], 256);
    }

    #[test]
    fn zero_cells_is_fine() {
        let out = execute_ordered(0, 4, |_| 1u32);
        assert!(out.is_empty());
    }

    #[test]
    fn a_panicking_cell_fails_alone() {
        let out = execute_ordered(5, 3, |i| {
            if i == 2 {
                panic!("cell {i} diverged");
            }
            i
        });
        assert_eq!(out.len(), 5);
        for (i, (r, _, _)) in out.iter().enumerate() {
            if i == 2 {
                let msg = r.as_ref().unwrap_err();
                assert!(msg.contains("cell 2 diverged"), "{msg}");
            } else {
                assert_eq!(*r.as_ref().unwrap(), i);
            }
        }
    }
}
