//! # The parallel multi-seed sweep engine
//!
//! One scenario run answers "what happened on this seed?"; the paper's
//! claim — Fibbing keeps playbacks smooth *across* flash crowds — is
//! statistical, so the unit of evidence has to be a **distribution**.
//! This module turns a declarative grid (scenarios × seed ranges ×
//! parameter overrides) into hundreds of independent cells, runs them
//! across a thread pool, and aggregates the reports into per-scenario
//! quantiles with controller-on vs controller-off deltas.
//!
//! * [`spec`] — the `SweepSpec` TOML model (reusing [`crate::toml`]),
//!   grid expansion into [`spec::SweepCell`]s, and the override
//!   precedence rule: *scenario-spec default < sweep-grid value < CLI
//!   flag*;
//! * [`exec`] — the work-stealing executor: a shared atomic cursor
//!   over the cell list, `std::thread` workers, results sent back over
//!   a channel and **collected in cell order**, so the merged output
//!   is byte-identical at any `--jobs` (each cell is an independent,
//!   already byte-deterministic [`crate::runner`] run);
//! * [`stats`] — the distribution layer: p5/p50/p95 quantiles over
//!   QoE, peak utilization, reaction latency and unroutable-flow-secs
//!   tails, paired controller-on vs baseline QoE deltas, and
//!   per-cell machinery-counter rollups (via
//!   [`fib_telemetry::rollup::Rollup`]).
//!
//! Sweep grids ship under `sweeps/` at the workspace root;
//! `cargo run --release -p fib-bench --bin sweep -- sweeps/smoke.toml`
//! runs one and writes `results/BENCH_sweep.json` plus byte-diffable
//! CSVs.

pub mod exec;
pub mod spec;
pub mod stats;

pub use exec::{run_sweep, run_sweep_with, CellFailure, CellMetrics, CellOutcome, SweepRun};
pub use spec::{load_sweep, sweeps_dir, GridEntry, SweepCell, SweepSpec};
pub use stats::{Dist, GroupDist, SweepSummary};
