//! The declarative sweep-grid model and its TOML binding.
//!
//! A [`SweepSpec`] names a set of scenarios (files under `scenarios/`)
//! and, for each, the seed range and parameter overrides to fan out
//! over. Expansion is purely combinatorial and deterministic: grid
//! entries in file order, then capacity scale, then crowd scale, then
//! seed, with each controller-on cell optionally followed by its
//! paired controller-off baseline twin.
//!
//! Override precedence, weakest to strongest:
//!
//! 1. the scenario spec's own values (`horizon_secs`, `capacity`,
//!    workload sizes);
//! 2. the sweep grid (`horizon_secs`, `capacity_scale`, `crowd_scale`,
//!    the cell seed);
//! 3. CLI flags of the `sweep` binary (`--horizon`).
//!
//! The precedence is applied in [`resolve_cell`] and pinned by tests.

use crate::spec::{
    check_keys, fail, get_f64, get_str, get_u32, opt_bool, EventKind, ScenarioSpec, SpecError,
    WorkloadSpec,
};
use crate::toml::{self, Table, Value};
use crate::RunOptions;
use std::path::{Path, PathBuf};

/// One `[[grid]]` entry: a scenario and the ranges to fan out over.
#[derive(Debug, Clone, PartialEq)]
pub struct GridEntry {
    /// Scenario name (backed by `scenarios/<name>.toml`).
    pub scenario: String,
    /// Seeds to run, in order.
    pub seeds: Vec<u64>,
    /// Horizon override in seconds (`None` = the scenario's own).
    pub horizon_secs: Option<f64>,
    /// Capacity multipliers (each value is one grid axis point).
    pub capacity_scale: Vec<f64>,
    /// Crowd-size multipliers (each value is one grid axis point).
    pub crowd_scale: Vec<f64>,
    /// Also run a controller-off twin of every cell for deltas.
    pub baseline: bool,
}

/// A complete declarative sweep.
#[derive(Debug, Clone, PartialEq)]
pub struct SweepSpec {
    /// Sweep name (used for result files).
    pub name: String,
    /// One-line description.
    pub description: String,
    /// The grid entries, in file order.
    pub grid: Vec<GridEntry>,
}

/// One expanded cell of the grid: a single `Runner` invocation.
#[derive(Debug, Clone, PartialEq)]
pub struct SweepCell {
    /// Index of the [`GridEntry`] this cell came from.
    pub entry: usize,
    /// Scenario name.
    pub scenario: String,
    /// Seed the cell runs under.
    pub seed: u64,
    /// Capacity multiplier applied to the scenario spec.
    pub capacity_scale: f64,
    /// Crowd-size multiplier applied to the scenario spec.
    pub crowd_scale: f64,
    /// Grid-level horizon override (`None` = the scenario's own).
    pub horizon_secs: Option<f64>,
    /// `true` for the controller-off baseline twin.
    pub baseline: bool,
}

impl SweepCell {
    /// A stable human label for tables, CSVs and failure summaries,
    /// e.g. `flash_crowd_random[cap=0.80,crowd=2.00]#s3` (baselines
    /// get a `~base` suffix).
    pub fn label(&self) -> String {
        format!(
            "{}{}#s{}{}",
            self.scenario,
            self.group_label_suffix(),
            self.seed,
            if self.baseline { "~base" } else { "" }
        )
    }

    /// The group part of the label (scenario plus scale axes), shared
    /// by every seed of one grid configuration.
    pub fn group_label(&self) -> String {
        format!("{}{}", self.scenario, self.group_label_suffix())
    }

    fn group_label_suffix(&self) -> String {
        if self.capacity_scale == 1.0 && self.crowd_scale == 1.0 {
            String::new()
        } else {
            format!(
                "[cap={:.2},crowd={:.2}]",
                self.capacity_scale, self.crowd_scale
            )
        }
    }
}

fn parse_scales(t: &Table, key: &str, ctx: &str) -> Result<Vec<f64>, SpecError> {
    let Some(v) = t.get(key) else {
        return Ok(vec![1.0]);
    };
    let Some(items) = v.as_array() else {
        return fail(format!(
            "`{ctx}.{key}` must be an array of positive numbers, got {}",
            v.type_name()
        ));
    };
    if items.is_empty() {
        return fail(format!("`{ctx}.{key}` must not be empty"));
    }
    let mut out: Vec<f64> = Vec::with_capacity(items.len());
    for item in items {
        match item.as_f64() {
            Some(s) if s.is_finite() && s > 0.0 => {
                // Duplicate axis points would silently collapse into
                // one stats group (grouping is by value), doubling
                // its apparent cell count.
                if out.iter().any(|prev| prev.to_bits() == s.to_bits()) {
                    return fail(format!("`{ctx}.{key}` has duplicate entry {s}"));
                }
                out.push(s);
            }
            _ => {
                return fail(format!(
                    "`{ctx}.{key}` entries must be positive finite numbers"
                ))
            }
        }
    }
    Ok(out)
}

fn parse_seeds(t: &Table, ctx: &str) -> Result<Vec<u64>, SpecError> {
    let explicit = t.get("seeds").is_some();
    let ranged = t.contains_key("seed_start") || t.contains_key("seed_count");
    if explicit && ranged {
        return fail(format!(
            "`{ctx}` must use either `seeds` or `seed_start`/`seed_count`, not both"
        ));
    }
    if explicit {
        let v = t.get("seeds").expect("checked above");
        let Some(items) = v.as_array() else {
            return fail(format!(
                "`{ctx}.seeds` must be an array of non-negative integers"
            ));
        };
        if items.is_empty() {
            return fail(format!("`{ctx}.seeds` must not be empty"));
        }
        let mut out: Vec<u64> = Vec::with_capacity(items.len());
        for item in items {
            match item.as_i64() {
                Some(i) if i >= 0 => {
                    // A duplicate seed would run twice but collapse in
                    // the seed-keyed delta pairing, skewing sample
                    // counts.
                    if out.contains(&(i as u64)) {
                        return fail(format!("`{ctx}.seeds` has duplicate entry {i}"));
                    }
                    out.push(i as u64);
                }
                _ => {
                    return fail(format!(
                        "`{ctx}.seeds` entries must be non-negative integers"
                    ))
                }
            }
        }
        return Ok(out);
    }
    if !ranged {
        return fail(format!(
            "`{ctx}` needs seeds: either `seeds = [..]` or `seed_start`/`seed_count`"
        ));
    }
    let start = get_u32(t, "seed_start", ctx)? as u64;
    let count = get_u32(t, "seed_count", ctx)? as u64;
    if count == 0 {
        return fail(format!("`{ctx}.seed_count` must be at least 1"));
    }
    Ok((start..start + count).collect())
}

/// Optional-`f64` accessor that keeps `None` (unlike
/// [`crate::spec::opt_f64`], which substitutes a default).
fn maybe_f64(t: &Table, key: &str, ctx: &str) -> Result<Option<f64>, SpecError> {
    if t.contains_key(key) {
        Ok(Some(get_f64(t, key, ctx)?))
    } else {
        Ok(None)
    }
}

fn parse_entry(t: &Table, idx: usize, defaults: &Defaults) -> Result<GridEntry, SpecError> {
    let ctx = format!("grid[{idx}]");
    let ctx = ctx.as_str();
    check_keys(
        t,
        &[
            "scenario",
            "seeds",
            "seed_start",
            "seed_count",
            "horizon_secs",
            "capacity_scale",
            "crowd_scale",
            "baseline",
        ],
        ctx,
    )?;
    let entry = GridEntry {
        scenario: get_str(t, "scenario", ctx)?,
        seeds: parse_seeds(t, ctx)?,
        horizon_secs: maybe_f64(t, "horizon_secs", ctx)?.or(defaults.horizon_secs),
        capacity_scale: parse_scales(t, "capacity_scale", ctx)?,
        crowd_scale: parse_scales(t, "crowd_scale", ctx)?,
        baseline: opt_bool(t, "baseline", ctx, defaults.baseline)?,
    };
    if let Some(h) = entry.horizon_secs {
        if !(h.is_finite() && h > 0.0) {
            return fail(format!("`{ctx}.horizon_secs` must be positive"));
        }
    }
    Ok(entry)
}

struct Defaults {
    horizon_secs: Option<f64>,
    baseline: bool,
}

impl SweepSpec {
    /// Parse and validate a sweep from TOML-subset source.
    pub fn from_toml_str(src: &str) -> Result<SweepSpec, SpecError> {
        let root = toml::parse(src).map_err(|e| SpecError(e.to_string()))?;
        check_keys(&root, &["name", "description", "defaults", "grid"], "sweep")?;
        let name = get_str(&root, "name", "sweep")?;
        if name.is_empty()
            || !name
                .chars()
                .all(|c| c.is_ascii_alphanumeric() || c == '_' || c == '-')
        {
            return fail(format!(
                "sweep name `{name}` must be a non-empty [A-Za-z0-9_-]+ slug"
            ));
        }
        let defaults = match root.get("defaults") {
            None => Defaults {
                horizon_secs: None,
                baseline: true,
            },
            Some(Value::Table(t)) => {
                check_keys(t, &["horizon_secs", "baseline"], "defaults")?;
                let horizon_secs = maybe_f64(t, "horizon_secs", "defaults")?;
                if let Some(h) = horizon_secs {
                    if !(h.is_finite() && h > 0.0) {
                        return fail("`defaults.horizon_secs` must be positive");
                    }
                }
                Defaults {
                    horizon_secs,
                    baseline: opt_bool(t, "baseline", "defaults", true)?,
                }
            }
            Some(other) => {
                return fail(format!(
                    "`defaults` must be a table, got {}",
                    other.type_name()
                ))
            }
        };
        let grid = match root.get("grid") {
            None => return fail("sweep has no [[grid]] entries — nothing to run"),
            Some(Value::Array(items)) => {
                let mut out = Vec::with_capacity(items.len());
                for (i, item) in items.iter().enumerate() {
                    match item.as_table() {
                        Some(t) => out.push(parse_entry(t, i, &defaults)?),
                        None => return fail("`[[grid]]` entries must be tables"),
                    }
                }
                out
            }
            Some(other) => {
                return fail(format!(
                    "`grid` must be an array of tables, got {}",
                    other.type_name()
                ))
            }
        };
        if grid.is_empty() {
            return fail("sweep has no [[grid]] entries — nothing to run");
        }
        let description = match root.get("description") {
            None => String::new(),
            Some(v) => match v.as_str() {
                Some(s) => s.to_string(),
                None => {
                    return fail(format!(
                        "`sweep.description` must be a string, got {}",
                        v.type_name()
                    ))
                }
            },
        };
        Ok(SweepSpec {
            name,
            description,
            grid,
        })
    }

    /// Expand the grid into cells, in the deterministic order results
    /// are collected and reported in: grid entry → capacity scale →
    /// crowd scale → seed, each controller-on cell immediately
    /// followed by its baseline twin (when the entry asks for one).
    pub fn expand(&self) -> Vec<SweepCell> {
        let mut cells = Vec::new();
        for (entry, g) in self.grid.iter().enumerate() {
            for &capacity_scale in &g.capacity_scale {
                for &crowd_scale in &g.crowd_scale {
                    for &seed in &g.seeds {
                        let on = SweepCell {
                            entry,
                            scenario: g.scenario.clone(),
                            seed,
                            capacity_scale,
                            crowd_scale,
                            horizon_secs: g.horizon_secs,
                            baseline: false,
                        };
                        if g.baseline {
                            let twin = SweepCell {
                                baseline: true,
                                ..on.clone()
                            };
                            cells.push(on);
                            cells.push(twin);
                        } else {
                            cells.push(on);
                        }
                    }
                }
            }
        }
        cells
    }
}

/// Scale the scenario spec for one grid axis point: `capacity_scale`
/// multiplies the uniform link capacity and every scripted
/// `set_capacity` target; `crowd_scale` multiplies session counts
/// (constant/Poisson workloads, surge and flash-crowd events) and
/// diurnal arrival intensities. The paper workload is deliberately
/// left untouched — it *is* the paper's fixed schedule.
pub fn apply_scales(spec: &ScenarioSpec, capacity_scale: f64, crowd_scale: f64) -> ScenarioSpec {
    let scale_n = |n: u32| -> u32 {
        if n == 0 || crowd_scale == 1.0 {
            n
        } else {
            ((n as f64 * crowd_scale).round() as u32).max(1)
        }
    };
    let mut out = spec.clone();
    out.capacity *= capacity_scale;
    for w in &mut out.workloads {
        match w {
            WorkloadSpec::Paper { .. } => {}
            WorkloadSpec::Constant { n, .. } | WorkloadSpec::Poisson { n, .. } => *n = scale_n(*n),
            WorkloadSpec::Diurnal {
                peak_per_sec,
                trough_per_sec,
                ..
            } => {
                *peak_per_sec *= crowd_scale;
                *trough_per_sec *= crowd_scale;
            }
        }
    }
    for e in &mut out.events {
        match &mut e.kind {
            EventKind::SetCapacity { capacity, .. } => *capacity *= capacity_scale,
            EventKind::Surge { n, .. } | EventKind::FlashCrowd { n, .. } => *n = scale_n(*n),
            EventKind::FailLink { .. } | EventKind::RestoreLink { .. } => {}
        }
    }
    out
}

/// Apply the full override chain for one cell: the scenario spec's own
/// values, overridden by the sweep grid (scales, seed, grid horizon),
/// overridden by the CLI horizon. Returns the scaled spec plus the
/// [`RunOptions`] to run it under.
pub fn resolve_cell(
    base: &ScenarioSpec,
    cell: &SweepCell,
    cli_horizon_secs: Option<f64>,
) -> (ScenarioSpec, RunOptions) {
    let spec = apply_scales(base, cell.capacity_scale, cell.crowd_scale);
    let opts = RunOptions {
        seed: Some(cell.seed),
        horizon_secs: cli_horizon_secs.or(cell.horizon_secs),
        disable_controller: cell.baseline,
        ..RunOptions::default()
    };
    (spec, opts)
}

/// The `sweeps/` directory at the workspace root.
pub fn sweeps_dir() -> PathBuf {
    PathBuf::from(env!("CARGO_MANIFEST_DIR"))
        .join("../..")
        .join("sweeps")
}

/// Load and validate a sweep grid: `arg` is a path to a `.toml` file,
/// or a bare name resolved as `sweeps/<name>.toml`.
pub fn load_sweep(arg: &str) -> Result<SweepSpec, SpecError> {
    let direct = Path::new(arg);
    let path = if direct.is_file() {
        direct.to_path_buf()
    } else {
        sweeps_dir().join(format!("{arg}.toml"))
    };
    let src = std::fs::read_to_string(&path)
        .map_err(|e| SpecError(format!("cannot read {}: {e}", path.display())))?;
    SweepSpec::from_toml_str(&src)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::spec::ScenarioSpec;

    const SWEEP: &str = r#"
name = "demo"
description = "a grid"

[defaults]
horizon_secs = 20.0
baseline = true

[[grid]]
scenario = "alpha"
seeds = [3, 1]
capacity_scale = [1.0, 0.5]

[[grid]]
scenario = "beta"
seed_start = 10
seed_count = 3
horizon_secs = 5.0
crowd_scale = [2.0]
baseline = false
"#;

    #[test]
    fn full_sweep_parses_and_expands_in_order() {
        let s = SweepSpec::from_toml_str(SWEEP).unwrap();
        assert_eq!(s.name, "demo");
        assert_eq!(s.grid.len(), 2);
        assert_eq!(s.grid[0].seeds, vec![3, 1], "file order preserved");
        assert_eq!(s.grid[0].horizon_secs, Some(20.0), "default applies");
        assert_eq!(s.grid[1].horizon_secs, Some(5.0), "entry overrides");
        assert_eq!(s.grid[1].seeds, vec![10, 11, 12]);
        let cells = s.expand();
        // alpha: 2 caps x 1 crowd x 2 seeds x {on, base} = 8;
        // beta: 1 cap x 1 crowd x 3 seeds, no baseline = 3.
        assert_eq!(cells.len(), 11);
        assert_eq!(cells[0].label(), "alpha#s3");
        assert_eq!(cells[1].label(), "alpha#s3~base");
        assert!(!cells[0].baseline);
        assert!(cells[1].baseline);
        assert_eq!(cells[4].label(), "alpha[cap=0.50,crowd=1.00]#s3");
        assert_eq!(cells[8].scenario, "beta");
        assert_eq!(cells[8].crowd_scale, 2.0);
        assert!(cells[8..].iter().all(|c| !c.baseline));
        // Expansion is a pure function of the spec.
        assert_eq!(cells, s.expand());
    }

    #[test]
    fn seed_forms_are_exclusive_and_required() {
        let both = SWEEP.replace(
            "seeds = [3, 1]",
            "seeds = [3]\nseed_start = 0\nseed_count = 2",
        );
        let e = SweepSpec::from_toml_str(&both).unwrap_err();
        assert!(e.to_string().contains("not both"), "{e}");
        let neither = SWEEP.replace("seeds = [3, 1]\n", "");
        let e = SweepSpec::from_toml_str(&neither).unwrap_err();
        assert!(e.to_string().contains("needs seeds"), "{e}");
        let empty = SWEEP.replace("seeds = [3, 1]", "seeds = []");
        assert!(SweepSpec::from_toml_str(&empty).is_err());
        let zero = SWEEP.replace("seed_count = 3", "seed_count = 0");
        assert!(SweepSpec::from_toml_str(&zero).is_err());
    }

    #[test]
    fn bad_values_are_rejected_with_key_names() {
        for (bad, needle) in [
            (
                SWEEP.replace("capacity_scale = [1.0, 0.5]", "capacity_scale = [0.0]"),
                "capacity_scale",
            ),
            (
                SWEEP.replace("crowd_scale = [2.0]", "crowd_scale = [-1.0]"),
                "crowd_scale",
            ),
            (
                SWEEP.replace("horizon_secs = 5.0", "horizon_secs = -2.0"),
                "horizon_secs",
            ),
            (
                SWEEP.replace("scenario = \"beta\"", "scenari = \"beta\""),
                "scenari",
            ),
            (
                SWEEP.replace("name = \"demo\"", "name = \"has space\""),
                "slug",
            ),
            (
                SWEEP.replace("description = \"a grid\"", "description = 3"),
                "description",
            ),
            (
                SWEEP.replace("seeds = [3, 1]", "seeds = [3, 3]"),
                "duplicate",
            ),
            (
                SWEEP.replace("capacity_scale = [1.0, 0.5]", "capacity_scale = [0.5, 0.5]"),
                "duplicate",
            ),
        ] {
            let e = SweepSpec::from_toml_str(&bad).unwrap_err();
            assert!(e.to_string().contains(needle), "{needle}: {e}");
        }
        assert!(SweepSpec::from_toml_str("name = \"x\"").is_err(), "no grid");
    }

    const TINY_SCENARIO: &str = r#"
name = "tiny"
horizon_secs = 30.0
seed = 1
capacity = 1e6
sinks = [3]
[topology]
kind = "ring"
n = 3
[controller]
attach = 2
[[workload]]
kind = "constant"
at = 10.0
src = 1
n = 12
rate = 1e5
video_secs = 60.0
[[event]]
at = 12.0
action = "set_capacity"
a = 1
b = 2
capacity = 5e5
[[event]]
at = 15.0
action = "surge"
src = 1
n = 4
rate = 1e5
video_secs = 30.0
"#;

    #[test]
    fn scales_apply_to_capacity_and_crowd() {
        let base = ScenarioSpec::from_toml_str(TINY_SCENARIO).unwrap();
        let scaled = apply_scales(&base, 0.5, 3.0);
        assert!((scaled.capacity - 5e5).abs() < 1e-9);
        match &scaled.workloads[0] {
            WorkloadSpec::Constant { n, .. } => assert_eq!(*n, 36),
            other => panic!("unexpected workload {other:?}"),
        }
        let mut saw_cap = false;
        let mut saw_surge = false;
        for e in &scaled.events {
            match &e.kind {
                EventKind::SetCapacity { capacity, .. } => {
                    assert!((capacity - 2.5e5).abs() < 1e-9);
                    saw_cap = true;
                }
                EventKind::Surge { n, .. } => {
                    assert_eq!(*n, 12);
                    saw_surge = true;
                }
                _ => {}
            }
        }
        assert!(saw_cap && saw_surge);
        // Identity scales are a no-op.
        assert_eq!(apply_scales(&base, 1.0, 1.0), base);
    }

    #[test]
    fn override_precedence_spec_then_grid_then_cli() {
        let base = ScenarioSpec::from_toml_str(TINY_SCENARIO).unwrap();
        let mut cell = SweepCell {
            entry: 0,
            scenario: "tiny".into(),
            seed: 9,
            capacity_scale: 1.0,
            crowd_scale: 1.0,
            horizon_secs: None,
            baseline: false,
        };
        // No grid or CLI value: the scenario spec's own horizon rules
        // (RunOptions stays None so the runner falls back to it).
        let (_, opts) = resolve_cell(&base, &cell, None);
        assert_eq!(opts.horizon_secs, None);
        assert_eq!(opts.seed, Some(9), "the cell seed always applies");
        // Grid value beats the spec default.
        cell.horizon_secs = Some(12.0);
        let (_, opts) = resolve_cell(&base, &cell, None);
        assert_eq!(opts.horizon_secs, Some(12.0));
        // CLI flag beats the grid.
        let (_, opts) = resolve_cell(&base, &cell, Some(7.0));
        assert_eq!(opts.horizon_secs, Some(7.0));
        // Baseline twins disable the controller via options, never by
        // editing the spec.
        cell.baseline = true;
        let (spec, opts) = resolve_cell(&base, &cell, None);
        assert!(opts.disable_controller);
        assert!(spec.controller.is_some(), "spec untouched");
    }
}
