//! Structured results of one scenario run.
//!
//! A [`ScenarioReport`] condenses a run into the metrics the paper's
//! evaluation cares about — peak/mean link utilization, lie churn,
//! controller reaction latency, QoE, and blackout time — plus the full
//! recorded trace. Both CSV renderings are deterministic: the same
//! spec and seed yield byte-identical output (asserted in the
//! workspace determinism tests and diffed in CI).

use fib_video::prelude::QoeSummary;
use std::fmt::Write as _;

/// The condensed outcome of one scenario run.
#[derive(Debug, Clone, PartialEq)]
pub struct ScenarioReport {
    /// Scenario name (from the spec).
    pub name: String,
    /// Seed the run used.
    pub seed: u64,
    /// Simulated horizon (seconds).
    pub horizon_secs: f64,
    /// Routers in the data topology (controller speaker excluded).
    pub routers: usize,
    /// Symmetric data links.
    pub links: usize,
    /// Video sessions scheduled.
    pub sessions: usize,
    /// Peak link utilization across the run (fraction of capacity).
    pub max_util: f64,
    /// Time-mean of the per-sample mean link utilization.
    pub mean_util: f64,
    /// Peak number of simultaneously installed lies.
    pub peak_lies: u64,
    /// Lies still installed at the horizon.
    pub final_lies: u64,
    /// Lies injected in total.
    pub injections: u64,
    /// Lies retracted in total.
    pub retractions: u64,
    /// Controller plan computations.
    pub reactions: u64,
    /// Seconds from the last stimulus (workload wave or scripted
    /// event) to the first installed lie; `None` if no lie was ever
    /// installed (baselines, under-threshold runs).
    pub reaction_secs: Option<f64>,
    /// Integrated flow-seconds without a usable path.
    pub unroutable_flow_secs: f64,
    /// Settle points at which the forwarding-loop probe found a loop.
    /// Always 0 unless the probe was armed (adversary runs, specs with
    /// an `[expect]` stanza). Deliberately *not* part of
    /// [`summary_csv`](Self::summary_csv): that byte format is pinned.
    pub fwd_loop_settles: u64,
    /// Control-plane packets delivered.
    pub ctrl_pkts: u64,
    /// Control-plane bytes delivered.
    pub ctrl_bytes: u64,
    /// Aggregated viewer experience.
    pub qoe: QoeSummary,
    /// The full recorded trace (long-format CSV).
    pub trace_csv: String,
}

/// Fixed-precision float rendering shared by every CSV cell.
fn num(v: f64) -> String {
    format!("{v:.6}")
}

impl ScenarioReport {
    /// The per-scenario summary CSV (`metric,value` long format).
    pub fn summary_csv(&self) -> String {
        let mut out = String::from("metric,value\n");
        let mut kv = |k: &str, v: String| {
            let _ = writeln!(out, "{k},{v}");
        };
        kv("name", self.name.clone());
        kv("seed", self.seed.to_string());
        kv("horizon_secs", num(self.horizon_secs));
        kv("routers", self.routers.to_string());
        kv("links", self.links.to_string());
        kv("sessions", self.sessions.to_string());
        kv("max_util", num(self.max_util));
        kv("mean_util", num(self.mean_util));
        kv("peak_lies", self.peak_lies.to_string());
        kv("final_lies", self.final_lies.to_string());
        kv("injections", self.injections.to_string());
        kv("retractions", self.retractions.to_string());
        kv("reactions", self.reactions.to_string());
        kv(
            "reaction_secs",
            self.reaction_secs.map(num).unwrap_or_else(|| "-".into()),
        );
        kv("unroutable_flow_secs", num(self.unroutable_flow_secs));
        kv("ctrl_pkts", self.ctrl_pkts.to_string());
        kv("ctrl_bytes", self.ctrl_bytes.to_string());
        kv("qoe_sessions", self.qoe.sessions.to_string());
        kv("qoe_smooth", self.qoe.smooth.to_string());
        kv("qoe_stalls", self.qoe.stalls.to_string());
        kv("qoe_stall_secs", num(self.qoe.stall_secs));
        kv("qoe_mean_score", num(self.qoe.mean_score));
        kv(
            "qoe_mean_startup",
            if self.qoe.mean_startup.is_finite() {
                num(self.qoe.mean_startup)
            } else {
                "-".into()
            },
        );
        out
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn report() -> ScenarioReport {
        ScenarioReport {
            name: "t".into(),
            seed: 7,
            horizon_secs: 10.0,
            routers: 3,
            links: 2,
            sessions: 4,
            max_util: 0.75,
            mean_util: 0.25,
            peak_lies: 2,
            final_lies: 0,
            injections: 2,
            retractions: 2,
            reactions: 1,
            reaction_secs: Some(1.25),
            unroutable_flow_secs: 0.0,
            fwd_loop_settles: 0,
            ctrl_pkts: 100,
            ctrl_bytes: 5000,
            qoe: QoeSummary {
                mean_startup: f64::INFINITY,
                ..QoeSummary::default()
            },
            trace_csv: "series,time,value\n".into(),
        }
    }

    #[test]
    fn summary_is_stable_and_complete() {
        let r = report();
        let csv = r.summary_csv();
        assert!(csv.starts_with("metric,value\n"));
        assert!(csv.contains("max_util,0.750000"));
        assert!(csv.contains("reaction_secs,1.250000"));
        assert!(
            csv.contains("qoe_mean_startup,-"),
            "infinite startup is a dash"
        );
        assert_eq!(csv, r.summary_csv(), "rendering is deterministic");
    }

    #[test]
    fn missing_reaction_renders_dash() {
        let mut r = report();
        r.reaction_secs = None;
        assert!(r.summary_csv().contains("reaction_secs,-"));
    }
}
