//! # fib-scenario — the declarative what-if harness
//!
//! The paper evaluates one topology under one flash-crowd storyline;
//! this crate makes "as many scenarios as you can imagine" cheap to
//! declare, run, and compare. A scenario is a `.toml` file (parsed by
//! the zero-dependency subset parser in [`toml`]) composing:
//!
//! * a **topology** — the paper's Fig. 1a graph or a seeded generator
//!   (line/ring/grid/mesh, random connected, Waxman, fat tree);
//! * a **controller** configuration (or none, for baselines);
//! * a **video workload mix** — the paper's exact schedule, constant
//!   batches, Poisson flash crowds, diurnal demand;
//! * a timed **event script** — link failures and recoveries, capacity
//!   changes, demand surges, flash crowds.
//!
//! The [`runner`] composes `fib_netsim::sim::Sim`,
//! `fib_core`'s Fibbing controller, `fib_telemetry`'s monitoring (via
//! the controller's SNMP path), and `fib_video` workloads; executes
//! the script deterministically from a seed; and condenses the run
//! into a [`report::ScenarioReport`] (peak/mean utilization, lie
//! churn, reaction latency, QoE, blackout seconds) plus the full
//! trace recorded through `fib_netsim::trace::Recorder`.
//!
//! ## Example
//!
//! ```
//! use fib_scenario::prelude::*;
//!
//! let spec = ScenarioSpec::from_toml_str(r#"
//! name = "two-flows"
//! horizon_secs = 15.0
//! capacity = 1e6
//! [topology]
//! kind = "line"
//! n = 3
//! [[workload]]
//! kind = "constant"
//! at = 5.0
//! src = 1
//! n = 2
//! rate = 1e5
//! video_secs = 60.0
//! "#).unwrap();
//! let report = run(&spec, RunOptions::default()).unwrap();
//! assert_eq!(report.sessions, 2);
//! assert!(report.max_util > 0.0);
//! ```
//!
//! Shipped scenarios live under `scenarios/` at the workspace root;
//! `cargo run -p fib-bench --bin scenario_suite -- --suite all`
//! runs them and writes per-scenario CSVs into `results/`.
//!
//! To fan scenarios out across seed ranges and parameter overrides —
//! hundreds of cells in parallel, reported as distributions — declare
//! a grid under `sweeps/` and run it through the [`sweep`] engine
//! (`cargo run -p fib-bench --bin sweep -- sweeps/smoke.toml`).

#![warn(missing_docs)]
#![forbid(unsafe_code)]

pub mod emit;
pub mod report;
pub mod runner;
pub mod spec;
pub mod suite;
pub mod sweep;
pub mod toml;
pub mod topo;

pub use runner::RunOptions;

/// Convenient re-exports of the most used items.
pub mod prelude {
    pub use crate::report::ScenarioReport;
    pub use crate::runner::{build, run, RunOptions, ScenarioRun, CONTROLLER_ID};
    pub use crate::spec::{
        ControllerSpec, EventKind, EventSpec, ExpectSpec, ScenarioSpec, SpecError, TopologySpec,
        WorkloadSpec,
    };
    pub use crate::suite::{
        find_suite, found_dir, found_scenarios, load_found, load_scenario, scenarios_dir, Suite,
        ALL_SCENARIOS, SUITES,
    };
    pub use crate::sweep::{
        load_sweep, run_sweep, sweeps_dir, CellFailure, CellOutcome, SweepCell, SweepRun,
        SweepSpec, SweepSummary,
    };
    pub use crate::topo::build_topology;
    pub use fib_netsim::sim::SettleMode;
}
