//! Serialize a [`ScenarioSpec`] back into the TOML subset.
//!
//! The inverse of [`ScenarioSpec::from_toml_str`]: the emitted text
//! targets exactly the grammar `crate::toml` parses (floats always
//! carry a `.` or exponent so they re-parse as floats, strings use
//! only the `\\ \" \n \t \r` escapes the parser knows) and
//! round-trips structurally — `parse(emit(spec)) == spec` for every
//! valid spec, asserted property-style in the tests. The adversarial
//! fuzzer leans on this to archive minimized finds as replayable
//! regression files under `scenarios/found/`.

use crate::spec::{
    ControllerSpec, EventKind, EventSpec, ExpectSpec, ScenarioSpec, TopologySpec, WorkloadSpec,
};
use std::fmt::Write as _;

/// Render a float so the subset parser reads it back as a float
/// (`{:?}` is shortest-roundtrip and always includes `.` or an
/// exponent for finite values).
fn f(v: f64) -> String {
    format!("{v:?}")
}

/// Quote and escape a string with exactly the escapes the parser
/// understands.
fn quote(s: &str) -> String {
    let mut out = String::with_capacity(s.len() + 2);
    out.push('"');
    for c in s.chars() {
        match c {
            '\\' => out.push_str("\\\\"),
            '"' => out.push_str("\\\""),
            '\n' => out.push_str("\\n"),
            '\t' => out.push_str("\\t"),
            '\r' => out.push_str("\\r"),
            other => out.push(other),
        }
    }
    out.push('"');
    out
}

fn emit_topology(out: &mut String, t: &TopologySpec) {
    out.push_str("\n[topology]\n");
    match t {
        TopologySpec::Paper => {
            out.push_str("kind = \"paper\"\n");
        }
        TopologySpec::Line { n } => {
            let _ = writeln!(out, "kind = \"line\"\nn = {n}");
        }
        TopologySpec::Ring { n } => {
            let _ = writeln!(out, "kind = \"ring\"\nn = {n}");
        }
        TopologySpec::Grid { rows, cols } => {
            let _ = writeln!(out, "kind = \"grid\"\nrows = {rows}\ncols = {cols}");
        }
        TopologySpec::FullMesh { n } => {
            let _ = writeln!(out, "kind = \"full_mesh\"\nn = {n}");
        }
        TopologySpec::Random {
            n,
            extra_edges,
            max_metric,
        } => {
            let _ = writeln!(
                out,
                "kind = \"random\"\nn = {n}\nextra_edges = {extra_edges}\nmax_metric = {max_metric}"
            );
        }
        TopologySpec::Waxman {
            n,
            alpha,
            beta,
            max_metric,
        } => {
            let _ = writeln!(
                out,
                "kind = \"waxman\"\nn = {n}\nalpha = {}\nbeta = {}\nmax_metric = {max_metric}",
                f(*alpha),
                f(*beta)
            );
        }
        TopologySpec::FatTree { k } => {
            let _ = writeln!(out, "kind = \"fat_tree\"\nk = {k}");
        }
    }
}

fn emit_controller(out: &mut String, c: &ControllerSpec) {
    let _ = writeln!(
        out,
        "\n[controller]\nattach = {}\ntarget_util = {}\nutil_hi = {}\nutil_lo = {}\n\
         slot_budget = {}\ndefault_flow_rate = {}\npredictive = {}\nuse_snmp = {}",
        c.attach,
        f(c.target_util),
        f(c.util_hi),
        f(c.util_lo),
        c.slot_budget,
        f(c.default_flow_rate),
        c.predictive,
        c.use_snmp
    );
}

fn emit_workload(out: &mut String, w: &WorkloadSpec) {
    out.push_str("\n[[workload]]\n");
    match w {
        WorkloadSpec::Paper {
            src1,
            src2,
            rate,
            video_secs,
        } => {
            let _ = writeln!(
                out,
                "kind = \"paper\"\nsrc1 = {src1}\nsrc2 = {src2}\nrate = {}\nvideo_secs = {}",
                f(*rate),
                f(*video_secs)
            );
        }
        WorkloadSpec::Constant {
            at,
            src,
            n,
            rate,
            video_secs,
            dst,
        } => {
            let _ = writeln!(
                out,
                "kind = \"constant\"\nat = {}\nsrc = {src}\nn = {n}\nrate = {}\n\
                 video_secs = {}\ndst = {dst}",
                f(*at),
                f(*rate),
                f(*video_secs)
            );
        }
        WorkloadSpec::Poisson {
            start,
            mean_gap_secs,
            n,
            src,
            rate,
            video_secs,
            dst,
        } => {
            let _ = writeln!(
                out,
                "kind = \"poisson\"\nstart = {}\nmean_gap_secs = {}\nn = {n}\nsrc = {src}\n\
                 rate = {}\nvideo_secs = {}\ndst = {dst}",
                f(*start),
                f(*mean_gap_secs),
                f(*rate),
                f(*video_secs)
            );
        }
        WorkloadSpec::Diurnal {
            period_secs,
            peak_per_sec,
            trough_per_sec,
            src,
            rate,
            video_secs,
            dst,
        } => {
            let _ = writeln!(
                out,
                "kind = \"diurnal\"\nperiod_secs = {}\npeak_per_sec = {}\n\
                 trough_per_sec = {}\nsrc = {src}\nrate = {}\nvideo_secs = {}\ndst = {dst}",
                f(*period_secs),
                f(*peak_per_sec),
                f(*trough_per_sec),
                f(*rate),
                f(*video_secs)
            );
        }
    }
}

fn emit_event(out: &mut String, e: &EventSpec) {
    out.push_str("\n[[event]]\n");
    let _ = writeln!(out, "at = {}", f(e.at));
    match &e.kind {
        EventKind::FailLink { a, b } => {
            let _ = writeln!(out, "action = \"fail_link\"\na = {a}\nb = {b}");
        }
        EventKind::RestoreLink { a, b } => {
            let _ = writeln!(out, "action = \"restore_link\"\na = {a}\nb = {b}");
        }
        EventKind::SetCapacity { a, b, capacity } => {
            let _ = writeln!(
                out,
                "action = \"set_capacity\"\na = {a}\nb = {b}\ncapacity = {}",
                f(*capacity)
            );
        }
        EventKind::Surge {
            src,
            n,
            rate,
            video_secs,
            dst,
        } => {
            let _ = writeln!(
                out,
                "action = \"surge\"\nsrc = {src}\nn = {n}\nrate = {}\nvideo_secs = {}\ndst = {dst}",
                f(*rate),
                f(*video_secs)
            );
        }
        EventKind::FlashCrowd {
            src,
            n,
            mean_gap_secs,
            rate,
            video_secs,
            dst,
        } => {
            let _ = writeln!(
                out,
                "action = \"flash_crowd\"\nsrc = {src}\nn = {n}\nmean_gap_secs = {}\n\
                 rate = {}\nvideo_secs = {}\ndst = {dst}",
                f(*mean_gap_secs),
                f(*rate),
                f(*video_secs)
            );
        }
    }
}

fn emit_expect(out: &mut String, x: &ExpectSpec) {
    out.push_str("\n[expect]\n");
    let mut kf = |k: &str, v: Option<f64>| {
        if let Some(v) = v {
            let _ = writeln!(out, "{k} = {}", f(v));
        }
    };
    kf("max_unroutable_flow_secs", x.max_unroutable_flow_secs);
    kf("min_unroutable_flow_secs", x.min_unroutable_flow_secs);
    kf("max_mean_qoe", x.max_mean_qoe);
    kf("min_mean_qoe", x.min_mean_qoe);
    let mut ku = |k: &str, v: Option<u64>| {
        if let Some(v) = v {
            let _ = writeln!(out, "{k} = {v}");
        }
    };
    ku("max_stalls", x.max_stalls);
    ku("min_stalls", x.min_stalls);
    ku("max_final_lies", x.max_final_lies);
    ku("min_peak_lies", x.min_peak_lies);
    ku("max_fwd_loops", x.max_fwd_loops);
    ku("min_fwd_loops", x.min_fwd_loops);
}

/// Serialize `spec` into TOML-subset text that parses back to an
/// equal [`ScenarioSpec`].
pub fn to_toml_string(spec: &ScenarioSpec) -> String {
    let mut out = String::new();
    let _ = writeln!(out, "name = {}", quote(&spec.name));
    if !spec.description.is_empty() {
        let _ = writeln!(out, "description = {}", quote(&spec.description));
    }
    let _ = writeln!(out, "horizon_secs = {}", f(spec.horizon_secs));
    let _ = writeln!(out, "seed = {}", spec.seed);
    if spec.pin_seed {
        out.push_str("pin_seed = true\n");
    }
    let _ = writeln!(out, "capacity = {}", f(spec.capacity));
    if !spec.sinks.is_empty() {
        let items: Vec<String> = spec.sinks.iter().map(|s| s.to_string()).collect();
        let _ = writeln!(out, "sinks = [{}]", items.join(", "));
    }
    if !spec.trace_links.is_empty() {
        let items: Vec<String> = spec
            .trace_links
            .iter()
            .map(|(a, b)| format!("\"{a}-{b}\""))
            .collect();
        let _ = writeln!(out, "trace_links = [{}]", items.join(", "));
    }
    emit_topology(&mut out, &spec.topology);
    if let Some(c) = &spec.controller {
        emit_controller(&mut out, c);
    }
    for w in &spec.workloads {
        emit_workload(&mut out, w);
    }
    for e in &spec.events {
        emit_event(&mut out, e);
    }
    if let Some(x) = &spec.expect {
        emit_expect(&mut out, x);
    }
    out
}

impl ScenarioSpec {
    /// Serialize into TOML-subset text (see [`to_toml_string`]).
    pub fn to_toml_string(&self) -> String {
        to_toml_string(self)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn roundtrip(spec: &ScenarioSpec) {
        let text = to_toml_string(spec);
        let back = ScenarioSpec::from_toml_str(&text)
            .unwrap_or_else(|e| panic!("emitted spec must re-parse: {e}\n---\n{text}"));
        assert_eq!(&back, spec, "round-trip must be structural identity");
    }

    #[test]
    fn shipped_scenarios_round_trip() {
        for name in crate::suite::ALL_SCENARIOS {
            let spec = crate::suite::load_scenario(name).unwrap();
            roundtrip(&spec);
        }
    }

    #[test]
    fn expect_stanza_round_trips() {
        let mut spec = crate::suite::load_scenario("paper_demo").unwrap();
        spec.expect = Some(ExpectSpec {
            max_unroutable_flow_secs: Some(1.5),
            min_mean_qoe: Some(0.25),
            max_final_lies: Some(0),
            min_fwd_loops: Some(1),
            ..ExpectSpec::default()
        });
        roundtrip(&spec);
    }

    #[test]
    fn strings_with_escapes_round_trip() {
        let mut spec = crate::suite::load_scenario("paper_demo").unwrap();
        spec.description = "line one\nline\ttwo \"quoted\" back\\slash\r".to_string();
        roundtrip(&spec);
    }

    #[test]
    fn awkward_floats_round_trip() {
        let mut spec = crate::suite::load_scenario("paper_demo").unwrap();
        spec.capacity = 4e6;
        spec.horizon_secs = 55.000001;
        roundtrip(&spec);
        spec.capacity = 1.25e7;
        spec.horizon_secs = 1e-3;
        roundtrip(&spec);
    }
}
