//! The declarative scenario model and its TOML-subset binding.
//!
//! A [`ScenarioSpec`] is everything a what-if experiment needs:
//! a topology (built-in shapes or seeded generators), a controller
//! configuration, a mix of video workloads, and a timed event script
//! of faults and demand shifts. Specs live as `.toml` files under
//! `scenarios/` (see [`crate::toml`] for the exact subset) and are
//! validated strictly: unknown keys, missing fields, and wrong types
//! are errors naming the offending key.

use crate::toml::{self, Table, Value};
use fib_igp::types::RouterId;
use std::fmt;

/// A spec-level validation failure.
#[derive(Debug, Clone, PartialEq)]
pub struct SpecError(pub String);

impl fmt::Display for SpecError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "scenario spec: {}", self.0)
    }
}

impl std::error::Error for SpecError {}

pub(crate) fn fail<T>(msg: impl Into<String>) -> Result<T, SpecError> {
    Err(SpecError(msg.into()))
}

/// Which topology the scenario runs on.
#[derive(Debug, Clone, PartialEq)]
pub enum TopologySpec {
    /// The paper's Fig. 1a graph (7 routers, blue prefix at C).
    Paper,
    /// A line of `n` routers.
    Line {
        /// Router count.
        n: u32,
    },
    /// A ring of `n` routers.
    Ring {
        /// Router count.
        n: u32,
    },
    /// A `rows x cols` grid.
    Grid {
        /// Grid rows.
        rows: u32,
        /// Grid columns.
        cols: u32,
    },
    /// A full mesh over `n` routers.
    FullMesh {
        /// Router count.
        n: u32,
    },
    /// A random connected graph (spanning tree plus chords).
    Random {
        /// Router count.
        n: u32,
        /// Chords beyond the spanning tree.
        extra_edges: u32,
        /// Metrics drawn uniformly from `1..=max_metric`.
        max_metric: u32,
    },
    /// A Waxman random graph (distance-dependent edges).
    Waxman {
        /// Router count.
        n: u32,
        /// Waxman alpha (edge density).
        alpha: f64,
        /// Waxman beta (distance decay).
        beta: f64,
        /// Largest distance-derived metric.
        max_metric: u32,
    },
    /// A `k`-ary fat tree.
    FatTree {
        /// Arity (even, >= 2).
        k: u32,
    },
}

/// Controller configuration (one Fibbing controller per scenario).
#[derive(Debug, Clone, PartialEq)]
pub struct ControllerSpec {
    /// Router the controller's speaker attaches to.
    pub attach: u32,
    /// Utilization budget handed to the optimizer.
    pub target_util: f64,
    /// Reaction threshold.
    pub util_hi: f64,
    /// Retraction threshold (natural utilization).
    pub util_lo: f64,
    /// ECMP slot budget per router.
    pub slot_budget: u32,
    /// Demand assumed for uncapped flows (bytes/s).
    pub default_flow_rate: f64,
    /// React to server notifications (predictive mode).
    pub predictive: bool,
    /// Poll SNMP counters.
    pub use_snmp: bool,
}

impl Default for ControllerSpec {
    fn default() -> Self {
        ControllerSpec {
            attach: 1,
            target_util: 0.7,
            util_hi: 0.8,
            util_lo: 0.3,
            slot_budget: 8,
            default_flow_rate: 125_000.0,
            predictive: true,
            use_snmp: true,
        }
    }
}

/// One entry of the scenario's video workload mix.
#[derive(Debug, Clone, PartialEq)]
pub enum WorkloadSpec {
    /// The paper's exact Sec. 3 schedule (1 + 30 + 31 sessions).
    Paper {
        /// First source (the paper's S1 at B).
        src1: u32,
        /// Second source (the paper's S2 at A).
        src2: u32,
        /// Per-video bitrate (bytes/s).
        rate: f64,
        /// Clip length (seconds).
        video_secs: f64,
    },
    /// `n` constant-bitrate sessions starting at `at` (spread over 1 s
    /// like the paper's batches).
    Constant {
        /// Batch start time (seconds).
        at: f64,
        /// Source router.
        src: u32,
        /// Session count.
        n: u32,
        /// Per-video bitrate (bytes/s).
        rate: f64,
        /// Clip length (seconds).
        video_secs: f64,
        /// Which sink's prefix to stream to.
        dst: usize,
    },
    /// A Poisson flash crowd.
    Poisson {
        /// First possible arrival (seconds).
        start: f64,
        /// Mean inter-arrival gap (seconds).
        mean_gap_secs: f64,
        /// Arrival count.
        n: u32,
        /// Source router.
        src: u32,
        /// Per-video bitrate (bytes/s).
        rate: f64,
        /// Clip length (seconds).
        video_secs: f64,
        /// Which sink's prefix to stream to.
        dst: usize,
    },
    /// A diurnal demand mix (sinusoidal arrival intensity).
    Diurnal {
        /// Cycle period (seconds).
        period_secs: f64,
        /// Peak arrival intensity (sessions/second).
        peak_per_sec: f64,
        /// Trough arrival intensity (sessions/second).
        trough_per_sec: f64,
        /// Source router.
        src: u32,
        /// Per-video bitrate (bytes/s).
        rate: f64,
        /// Clip length (seconds).
        video_secs: f64,
        /// Which sink's prefix to stream to.
        dst: usize,
    },
}

/// A timed entry of the fault/demand script.
#[derive(Debug, Clone, PartialEq)]
pub struct EventSpec {
    /// When the event fires (seconds).
    pub at: f64,
    /// What happens.
    pub kind: EventKind,
}

/// The actions an event script can take.
#[derive(Debug, Clone, PartialEq)]
pub enum EventKind {
    /// Fail a symmetric link.
    FailLink {
        /// One endpoint.
        a: u32,
        /// Other endpoint.
        b: u32,
    },
    /// Restore a failed link.
    RestoreLink {
        /// One endpoint.
        a: u32,
        /// Other endpoint.
        b: u32,
    },
    /// Change a link's per-direction capacity.
    SetCapacity {
        /// One endpoint.
        a: u32,
        /// Other endpoint.
        b: u32,
        /// New capacity (bytes/s).
        capacity: f64,
    },
    /// A demand surge: `n` sessions at once from `src`.
    Surge {
        /// Source router.
        src: u32,
        /// Session count.
        n: u32,
        /// Per-video bitrate (bytes/s).
        rate: f64,
        /// Clip length (seconds).
        video_secs: f64,
        /// Which sink's prefix to stream to.
        dst: usize,
    },
    /// A Poisson flash crowd starting at the event time.
    FlashCrowd {
        /// Source router.
        src: u32,
        /// Arrival count.
        n: u32,
        /// Mean inter-arrival gap (seconds).
        mean_gap_secs: f64,
        /// Per-video bitrate (bytes/s).
        rate: f64,
        /// Clip length (seconds).
        video_secs: f64,
        /// Which sink's prefix to stream to.
        dst: usize,
    },
}

/// Expected-invariant bounds a run of the scenario must satisfy
/// (the `[expect]` stanza).
///
/// Archived adversarial finds under `scenarios/found/` carry one of
/// these so the regression suite *fails* when the nasty behaviour the
/// fuzzer minimized stops reproducing — or when a fix regresses. All
/// bounds are optional and inclusive; `fwd_loops` bounds compare
/// against the loop-freedom probe's settle counter, which the suite
/// runner arms automatically for specs that carry an `[expect]`
/// stanza.
#[derive(Debug, Clone, PartialEq, Default)]
pub struct ExpectSpec {
    /// Upper bound on integrated unroutable flow-seconds.
    pub max_unroutable_flow_secs: Option<f64>,
    /// Lower bound on integrated unroutable flow-seconds (asserts the
    /// find still reproduces its blackout).
    pub min_unroutable_flow_secs: Option<f64>,
    /// Upper bound on the mean QoE score.
    pub max_mean_qoe: Option<f64>,
    /// Lower bound on the mean QoE score.
    pub min_mean_qoe: Option<f64>,
    /// Upper bound on total stall events.
    pub max_stalls: Option<u64>,
    /// Lower bound on total stall events.
    pub min_stalls: Option<u64>,
    /// Upper bound on lies still installed at the horizon (eventual
    /// retraction: `max_final_lies = 0`).
    pub max_final_lies: Option<u64>,
    /// Lower bound on the peak number of simultaneous lies.
    pub min_peak_lies: Option<u64>,
    /// Upper bound on settle points with a forwarding loop.
    pub max_fwd_loops: Option<u64>,
    /// Lower bound on settle points with a forwarding loop.
    pub min_fwd_loops: Option<u64>,
}

impl ExpectSpec {
    /// Check a report against the bounds; returns one human-readable
    /// line per violated bound (empty = all expectations hold).
    pub fn check(&self, report: &crate::report::ScenarioReport) -> Vec<String> {
        let mut v = Vec::new();
        let mut chk_f = |name: &str, actual: f64, min: Option<f64>, max: Option<f64>| {
            if let Some(m) = min {
                if actual < m {
                    v.push(format!("expect: {name} = {actual:.6} < min {m:.6}"));
                }
            }
            if let Some(m) = max {
                if actual > m {
                    v.push(format!("expect: {name} = {actual:.6} > max {m:.6}"));
                }
            }
        };
        chk_f(
            "unroutable_flow_secs",
            report.unroutable_flow_secs,
            self.min_unroutable_flow_secs,
            self.max_unroutable_flow_secs,
        );
        chk_f(
            "mean_qoe",
            report.qoe.mean_score,
            self.min_mean_qoe,
            self.max_mean_qoe,
        );
        let mut chk_u = |name: &str, actual: u64, min: Option<u64>, max: Option<u64>| {
            if let Some(m) = min {
                if actual < m {
                    v.push(format!("expect: {name} = {actual} < min {m}"));
                }
            }
            if let Some(m) = max {
                if actual > m {
                    v.push(format!("expect: {name} = {actual} > max {m}"));
                }
            }
        };
        chk_u(
            "stalls",
            u64::from(report.qoe.stalls),
            self.min_stalls,
            self.max_stalls,
        );
        chk_u("final_lies", report.final_lies, None, self.max_final_lies);
        chk_u("peak_lies", report.peak_lies, self.min_peak_lies, None);
        chk_u(
            "fwd_loops",
            report.fwd_loop_settles,
            self.min_fwd_loops,
            self.max_fwd_loops,
        );
        v
    }

    /// `true` if no bound is set (an empty `[expect]` stanza).
    pub fn is_empty(&self) -> bool {
        *self == ExpectSpec::default()
    }
}

/// A complete declarative scenario.
#[derive(Debug, Clone, PartialEq)]
pub struct ScenarioSpec {
    /// Scenario name (used for result files and tables).
    pub name: String,
    /// One-line description.
    pub description: String,
    /// Simulated horizon in seconds.
    pub horizon_secs: f64,
    /// Default seed (CLI `--seed` overrides).
    pub seed: u64,
    /// Refuse to run under any other seed. For specs whose event
    /// script names links of one particular seeded graph (the metro
    /// scenarios): a `--seed` override would either fail a ghost link
    /// or — worse — silently run a different fault against a
    /// different topology.
    pub pin_seed: bool,
    /// Per-direction link capacity in bytes/s (uniform).
    pub capacity: f64,
    /// The topology to build.
    pub topology: TopologySpec,
    /// Routers announcing destination prefixes (`Prefix::net24(i+1)`
    /// for the i-th entry). Empty = topology-specific default.
    pub sinks: Vec<u32>,
    /// The controller, if enabled (baselines omit it).
    pub controller: Option<ControllerSpec>,
    /// The workload mix.
    pub workloads: Vec<WorkloadSpec>,
    /// The fault/demand script, in time order.
    pub events: Vec<EventSpec>,
    /// Directed links to trace as named series (`ra-rb`).
    pub trace_links: Vec<(u32, u32)>,
    /// Expected-invariant bounds the suite runner enforces (archived
    /// adversarial finds carry these; hand-written scenarios may too).
    pub expect: Option<ExpectSpec>,
}

/// Check `table` only contains `allowed` keys.
pub(crate) fn check_keys(table: &Table, allowed: &[&str], ctx: &str) -> Result<(), SpecError> {
    for k in table.keys() {
        if !allowed.contains(&k.as_str()) {
            return fail(format!(
                "unknown key `{k}` in {ctx} (allowed: {})",
                allowed.join(", ")
            ));
        }
    }
    Ok(())
}

pub(crate) fn get<'a>(t: &'a Table, key: &str, ctx: &str) -> Result<&'a Value, SpecError> {
    match t.get(key) {
        Some(v) => Ok(v),
        None => fail(format!("missing key `{key}` in {ctx}")),
    }
}

pub(crate) fn get_str(t: &Table, key: &str, ctx: &str) -> Result<String, SpecError> {
    let v = get(t, key, ctx)?;
    match v.as_str() {
        Some(s) => Ok(s.to_string()),
        None => fail(format!(
            "`{ctx}.{key}` must be a string, got {}",
            v.type_name()
        )),
    }
}

pub(crate) fn get_f64(t: &Table, key: &str, ctx: &str) -> Result<f64, SpecError> {
    let v = get(t, key, ctx)?;
    match v.as_f64() {
        Some(f) => Ok(f),
        None => fail(format!(
            "`{ctx}.{key}` must be a number, got {}",
            v.type_name()
        )),
    }
}

pub(crate) fn get_u32(t: &Table, key: &str, ctx: &str) -> Result<u32, SpecError> {
    let v = get(t, key, ctx)?;
    match v.as_i64() {
        Some(i) if (0..=u32::MAX as i64).contains(&i) => Ok(i as u32),
        _ => fail(format!(
            "`{ctx}.{key}` must be a non-negative integer, got {}",
            v.type_name()
        )),
    }
}

pub(crate) fn opt_f64(t: &Table, key: &str, ctx: &str, default: f64) -> Result<f64, SpecError> {
    if t.contains_key(key) {
        get_f64(t, key, ctx)
    } else {
        Ok(default)
    }
}

pub(crate) fn opt_u32(t: &Table, key: &str, ctx: &str, default: u32) -> Result<u32, SpecError> {
    if t.contains_key(key) {
        get_u32(t, key, ctx)
    } else {
        Ok(default)
    }
}

pub(crate) fn opt_bool(t: &Table, key: &str, ctx: &str, default: bool) -> Result<bool, SpecError> {
    match t.get(key) {
        None => Ok(default),
        Some(v) => match v.as_bool() {
            Some(b) => Ok(b),
            None => fail(format!(
                "`{ctx}.{key}` must be a boolean, got {}",
                v.type_name()
            )),
        },
    }
}

/// Which sink index a workload streams to (default: the first sink).
fn opt_dst(t: &Table, ctx: &str) -> Result<usize, SpecError> {
    Ok(opt_u32(t, "dst", ctx, 0)? as usize)
}

fn parse_topology(t: &Table) -> Result<TopologySpec, SpecError> {
    let ctx = "topology";
    let kind = get_str(t, "kind", ctx)?;
    let spec = match kind.as_str() {
        "paper" => {
            check_keys(t, &["kind"], ctx)?;
            TopologySpec::Paper
        }
        "line" => {
            check_keys(t, &["kind", "n"], ctx)?;
            TopologySpec::Line {
                n: get_u32(t, "n", ctx)?,
            }
        }
        "ring" => {
            check_keys(t, &["kind", "n"], ctx)?;
            TopologySpec::Ring {
                n: get_u32(t, "n", ctx)?,
            }
        }
        "grid" => {
            check_keys(t, &["kind", "rows", "cols"], ctx)?;
            TopologySpec::Grid {
                rows: get_u32(t, "rows", ctx)?,
                cols: get_u32(t, "cols", ctx)?,
            }
        }
        "full_mesh" => {
            check_keys(t, &["kind", "n"], ctx)?;
            TopologySpec::FullMesh {
                n: get_u32(t, "n", ctx)?,
            }
        }
        "random" => {
            check_keys(t, &["kind", "n", "extra_edges", "max_metric"], ctx)?;
            TopologySpec::Random {
                n: get_u32(t, "n", ctx)?,
                extra_edges: opt_u32(t, "extra_edges", ctx, 4)?,
                max_metric: opt_u32(t, "max_metric", ctx, 4)?,
            }
        }
        "waxman" => {
            check_keys(t, &["kind", "n", "alpha", "beta", "max_metric"], ctx)?;
            TopologySpec::Waxman {
                n: get_u32(t, "n", ctx)?,
                alpha: opt_f64(t, "alpha", ctx, 0.6)?,
                beta: opt_f64(t, "beta", ctx, 0.3)?,
                max_metric: opt_u32(t, "max_metric", ctx, 4)?,
            }
        }
        "fat_tree" => {
            check_keys(t, &["kind", "k"], ctx)?;
            TopologySpec::FatTree {
                k: get_u32(t, "k", ctx)?,
            }
        }
        other => return fail(format!("unknown topology kind `{other}`")),
    };
    Ok(spec)
}

fn parse_controller(t: &Table) -> Result<Option<ControllerSpec>, SpecError> {
    let ctx = "controller";
    check_keys(
        t,
        &[
            "enabled",
            "attach",
            "target_util",
            "util_hi",
            "util_lo",
            "slot_budget",
            "default_flow_rate",
            "predictive",
            "use_snmp",
        ],
        ctx,
    )?;
    if !opt_bool(t, "enabled", ctx, true)? {
        return Ok(None);
    }
    let d = ControllerSpec::default();
    Ok(Some(ControllerSpec {
        attach: get_u32(t, "attach", ctx)?,
        target_util: opt_f64(t, "target_util", ctx, d.target_util)?,
        util_hi: opt_f64(t, "util_hi", ctx, d.util_hi)?,
        util_lo: opt_f64(t, "util_lo", ctx, d.util_lo)?,
        slot_budget: opt_u32(t, "slot_budget", ctx, d.slot_budget)?,
        default_flow_rate: opt_f64(t, "default_flow_rate", ctx, d.default_flow_rate)?,
        predictive: opt_bool(t, "predictive", ctx, d.predictive)?,
        use_snmp: opt_bool(t, "use_snmp", ctx, d.use_snmp)?,
    }))
}

fn parse_workload(t: &Table, idx: usize) -> Result<WorkloadSpec, SpecError> {
    let ctx = format!("workload[{idx}]");
    let ctx = ctx.as_str();
    let kind = get_str(t, "kind", ctx)?;
    let w = match kind.as_str() {
        "paper" => {
            check_keys(t, &["kind", "src1", "src2", "rate", "video_secs"], ctx)?;
            WorkloadSpec::Paper {
                src1: get_u32(t, "src1", ctx)?,
                src2: get_u32(t, "src2", ctx)?,
                rate: opt_f64(t, "rate", ctx, 125_000.0)?,
                video_secs: opt_f64(t, "video_secs", ctx, 300.0)?,
            }
        }
        "constant" => {
            check_keys(
                t,
                &["kind", "at", "src", "n", "rate", "video_secs", "dst"],
                ctx,
            )?;
            WorkloadSpec::Constant {
                at: get_f64(t, "at", ctx)?,
                src: get_u32(t, "src", ctx)?,
                n: get_u32(t, "n", ctx)?,
                rate: get_f64(t, "rate", ctx)?,
                video_secs: get_f64(t, "video_secs", ctx)?,
                dst: opt_dst(t, ctx)?,
            }
        }
        "poisson" => {
            check_keys(
                t,
                &[
                    "kind",
                    "start",
                    "mean_gap_secs",
                    "n",
                    "src",
                    "rate",
                    "video_secs",
                    "dst",
                ],
                ctx,
            )?;
            WorkloadSpec::Poisson {
                start: get_f64(t, "start", ctx)?,
                mean_gap_secs: get_f64(t, "mean_gap_secs", ctx)?,
                n: get_u32(t, "n", ctx)?,
                src: get_u32(t, "src", ctx)?,
                rate: get_f64(t, "rate", ctx)?,
                video_secs: get_f64(t, "video_secs", ctx)?,
                dst: opt_dst(t, ctx)?,
            }
        }
        "diurnal" => {
            check_keys(
                t,
                &[
                    "kind",
                    "period_secs",
                    "peak_per_sec",
                    "trough_per_sec",
                    "src",
                    "rate",
                    "video_secs",
                    "dst",
                ],
                ctx,
            )?;
            WorkloadSpec::Diurnal {
                period_secs: get_f64(t, "period_secs", ctx)?,
                peak_per_sec: get_f64(t, "peak_per_sec", ctx)?,
                trough_per_sec: get_f64(t, "trough_per_sec", ctx)?,
                src: get_u32(t, "src", ctx)?,
                rate: get_f64(t, "rate", ctx)?,
                video_secs: get_f64(t, "video_secs", ctx)?,
                dst: opt_dst(t, ctx)?,
            }
        }
        other => return fail(format!("unknown workload kind `{other}`")),
    };
    Ok(w)
}

fn parse_event(t: &Table, idx: usize) -> Result<EventSpec, SpecError> {
    let ctx = format!("event[{idx}]");
    let ctx = ctx.as_str();
    let at = get_f64(t, "at", ctx)?;
    let action = get_str(t, "action", ctx)?;
    let kind = match action.as_str() {
        "fail_link" => {
            check_keys(t, &["at", "action", "a", "b"], ctx)?;
            EventKind::FailLink {
                a: get_u32(t, "a", ctx)?,
                b: get_u32(t, "b", ctx)?,
            }
        }
        "restore_link" => {
            check_keys(t, &["at", "action", "a", "b"], ctx)?;
            EventKind::RestoreLink {
                a: get_u32(t, "a", ctx)?,
                b: get_u32(t, "b", ctx)?,
            }
        }
        "set_capacity" => {
            check_keys(t, &["at", "action", "a", "b", "capacity"], ctx)?;
            EventKind::SetCapacity {
                a: get_u32(t, "a", ctx)?,
                b: get_u32(t, "b", ctx)?,
                capacity: get_f64(t, "capacity", ctx)?,
            }
        }
        "surge" => {
            check_keys(
                t,
                &["at", "action", "src", "n", "rate", "video_secs", "dst"],
                ctx,
            )?;
            EventKind::Surge {
                src: get_u32(t, "src", ctx)?,
                n: get_u32(t, "n", ctx)?,
                rate: get_f64(t, "rate", ctx)?,
                video_secs: get_f64(t, "video_secs", ctx)?,
                dst: opt_dst(t, ctx)?,
            }
        }
        "flash_crowd" => {
            check_keys(
                t,
                &[
                    "at",
                    "action",
                    "src",
                    "n",
                    "mean_gap_secs",
                    "rate",
                    "video_secs",
                    "dst",
                ],
                ctx,
            )?;
            EventKind::FlashCrowd {
                src: get_u32(t, "src", ctx)?,
                n: get_u32(t, "n", ctx)?,
                mean_gap_secs: get_f64(t, "mean_gap_secs", ctx)?,
                rate: get_f64(t, "rate", ctx)?,
                video_secs: get_f64(t, "video_secs", ctx)?,
                dst: opt_dst(t, ctx)?,
            }
        }
        other => return fail(format!("unknown event action `{other}`")),
    };
    Ok(EventSpec { at, kind })
}

fn opt_f64_none(t: &Table, key: &str, ctx: &str) -> Result<Option<f64>, SpecError> {
    if t.contains_key(key) {
        Ok(Some(get_f64(t, key, ctx)?))
    } else {
        Ok(None)
    }
}

fn opt_u64_none(t: &Table, key: &str, ctx: &str) -> Result<Option<u64>, SpecError> {
    match t.get(key) {
        None => Ok(None),
        Some(v) => match v.as_i64() {
            Some(i) if i >= 0 => Ok(Some(i as u64)),
            _ => fail(format!(
                "`{ctx}.{key}` must be a non-negative integer, got {}",
                v.type_name()
            )),
        },
    }
}

fn parse_expect(t: &Table) -> Result<ExpectSpec, SpecError> {
    let ctx = "expect";
    check_keys(
        t,
        &[
            "max_unroutable_flow_secs",
            "min_unroutable_flow_secs",
            "max_mean_qoe",
            "min_mean_qoe",
            "max_stalls",
            "min_stalls",
            "max_final_lies",
            "min_peak_lies",
            "max_fwd_loops",
            "min_fwd_loops",
        ],
        ctx,
    )?;
    Ok(ExpectSpec {
        max_unroutable_flow_secs: opt_f64_none(t, "max_unroutable_flow_secs", ctx)?,
        min_unroutable_flow_secs: opt_f64_none(t, "min_unroutable_flow_secs", ctx)?,
        max_mean_qoe: opt_f64_none(t, "max_mean_qoe", ctx)?,
        min_mean_qoe: opt_f64_none(t, "min_mean_qoe", ctx)?,
        max_stalls: opt_u64_none(t, "max_stalls", ctx)?,
        min_stalls: opt_u64_none(t, "min_stalls", ctx)?,
        max_final_lies: opt_u64_none(t, "max_final_lies", ctx)?,
        min_peak_lies: opt_u64_none(t, "min_peak_lies", ctx)?,
        max_fwd_loops: opt_u64_none(t, "max_fwd_loops", ctx)?,
        min_fwd_loops: opt_u64_none(t, "min_fwd_loops", ctx)?,
    })
}

fn parse_trace_links(v: &Value) -> Result<Vec<(u32, u32)>, SpecError> {
    let Some(items) = v.as_array() else {
        return fail("`trace_links` must be an array of \"a-b\" strings");
    };
    let mut out = Vec::new();
    for item in items {
        let Some(s) = item.as_str() else {
            return fail("`trace_links` entries must be \"a-b\" strings");
        };
        let parts: Vec<&str> = s.split('-').collect();
        let pair = (|| -> Option<(u32, u32)> {
            let [a, b] = parts.as_slice() else {
                return None;
            };
            Some((a.trim().parse().ok()?, b.trim().parse().ok()?))
        })();
        match pair {
            Some(p) => out.push(p),
            None => return fail(format!("bad trace link `{s}` (expected \"a-b\")")),
        }
    }
    Ok(out)
}

impl ScenarioSpec {
    /// Parse and validate a scenario from TOML-subset source.
    pub fn from_toml_str(src: &str) -> Result<ScenarioSpec, SpecError> {
        let root = toml::parse(src).map_err(|e| SpecError(e.to_string()))?;
        check_keys(
            &root,
            &[
                "name",
                "description",
                "horizon_secs",
                "seed",
                "pin_seed",
                "capacity",
                "topology",
                "sinks",
                "controller",
                "workload",
                "event",
                "trace_links",
                "expect",
            ],
            "scenario",
        )?;
        let name = get_str(&root, "name", "scenario")?;
        if name.is_empty()
            || !name
                .chars()
                .all(|c| c.is_ascii_alphanumeric() || c == '_' || c == '-')
        {
            return fail(format!(
                "scenario name `{name}` must be a non-empty [A-Za-z0-9_-]+ slug"
            ));
        }
        let topology = match root.get("topology").and_then(|v| v.as_table()) {
            Some(t) => parse_topology(t)?,
            None => return fail("missing [topology] table"),
        };
        let sinks = match root.get("sinks") {
            None => Vec::new(),
            Some(v) => {
                let Some(items) = v.as_array() else {
                    return fail("`sinks` must be an array of router ids");
                };
                let mut out = Vec::new();
                for item in items {
                    match item.as_i64() {
                        Some(i) if i > 0 => out.push(i as u32),
                        _ => return fail("`sinks` entries must be positive router ids"),
                    }
                }
                out
            }
        };
        let controller = match root.get("controller") {
            None => None,
            Some(Value::Table(t)) => parse_controller(t)?,
            Some(other) => {
                return fail(format!(
                    "`controller` must be a table, got {}",
                    other.type_name()
                ))
            }
        };
        let workloads = match root.get("workload") {
            None => Vec::new(),
            Some(Value::Array(items)) => {
                let mut out = Vec::new();
                for (i, item) in items.iter().enumerate() {
                    match item.as_table() {
                        Some(t) => out.push(parse_workload(t, i)?),
                        None => return fail("`[[workload]]` entries must be tables"),
                    }
                }
                out
            }
            Some(other) => {
                return fail(format!(
                    "`workload` must be an array of tables, got {}",
                    other.type_name()
                ))
            }
        };
        let mut events = match root.get("event") {
            None => Vec::new(),
            Some(Value::Array(items)) => {
                let mut out = Vec::new();
                for (i, item) in items.iter().enumerate() {
                    match item.as_table() {
                        Some(t) => out.push(parse_event(t, i)?),
                        None => return fail("`[[event]]` entries must be tables"),
                    }
                }
                out
            }
            Some(other) => {
                return fail(format!(
                    "`event` must be an array of tables, got {}",
                    other.type_name()
                ))
            }
        };
        // Time order regardless of file order (stable by original
        // index for ties, which `sort_by` preserves).
        events.sort_by(|a, b| a.at.partial_cmp(&b.at).expect("event times are finite"));
        let trace_links = match root.get("trace_links") {
            None => Vec::new(),
            Some(v) => parse_trace_links(v)?,
        };
        let expect = match root.get("expect") {
            None => None,
            Some(Value::Table(t)) => Some(parse_expect(t)?),
            Some(other) => {
                return fail(format!(
                    "`expect` must be a table, got {}",
                    other.type_name()
                ))
            }
        };
        let seed = match root.get("seed") {
            None => 0,
            Some(v) => match v.as_i64() {
                Some(i) if i >= 0 => i as u64,
                _ => return fail("`seed` must be a non-negative integer"),
            },
        };
        let description = match root.get("description") {
            None => String::new(),
            Some(v) => match v.as_str() {
                Some(s) => s.to_string(),
                None => {
                    return fail(format!(
                        "`scenario.description` must be a string, got {}",
                        v.type_name()
                    ))
                }
            },
        };
        let spec = ScenarioSpec {
            name,
            description,
            horizon_secs: get_f64(&root, "horizon_secs", "scenario")?,
            seed,
            pin_seed: opt_bool(&root, "pin_seed", "scenario", false)?,
            capacity: get_f64(&root, "capacity", "scenario")?,
            topology,
            sinks,
            controller,
            workloads,
            events,
            trace_links,
            expect,
        };
        spec.validate()?;
        Ok(spec)
    }

    /// Structural sanity checks beyond types.
    ///
    /// Generator parameters are checked here so a bad `.toml` value
    /// surfaces as a [`SpecError`] naming the key, never as a panic
    /// from a builder's `assert!` deep inside `fib_igp`.
    fn validate(&self) -> Result<(), SpecError> {
        if self.horizon_secs <= 0.0 {
            return fail("`horizon_secs` must be positive");
        }
        if self.capacity <= 0.0 {
            return fail("`capacity` must be positive");
        }
        match self.topology {
            TopologySpec::Paper => {}
            TopologySpec::Line { n } | TopologySpec::FullMesh { n } => {
                if n < 2 {
                    return fail("`topology.n` must be at least 2");
                }
            }
            TopologySpec::Ring { n } => {
                if n < 3 {
                    return fail("`topology.n` must be at least 3 for a ring");
                }
            }
            TopologySpec::Grid { rows, cols } => {
                if rows == 0 || cols == 0 || rows * cols < 2 {
                    return fail("`topology.rows`/`topology.cols` must span at least 2 routers");
                }
            }
            TopologySpec::Random { n, max_metric, .. } => {
                if n < 2 {
                    return fail("`topology.n` must be at least 2");
                }
                if max_metric == 0 {
                    return fail("`topology.max_metric` must be at least 1");
                }
            }
            TopologySpec::Waxman { n, alpha, beta, .. } => {
                if n < 2 {
                    return fail("`topology.n` must be at least 2");
                }
                if alpha <= 0.0 || beta <= 0.0 {
                    return fail("`topology.alpha` and `topology.beta` must be positive");
                }
            }
            TopologySpec::FatTree { k } => {
                if k < 2 || k % 2 != 0 {
                    return fail("`topology.k` must be even and at least 2");
                }
            }
        }
        for (i, w) in self.workloads.iter().enumerate() {
            if let WorkloadSpec::Diurnal {
                period_secs,
                peak_per_sec,
                trough_per_sec,
                ..
            } = w
            {
                if *period_secs <= 0.0 {
                    return fail(format!("`workload[{i}].period_secs` must be positive"));
                }
                if *trough_per_sec < 0.0 || peak_per_sec < trough_per_sec {
                    return fail(format!(
                        "`workload[{i}]` needs peak_per_sec >= trough_per_sec >= 0"
                    ));
                }
            }
        }
        if self.workloads.is_empty()
            && !self.events.iter().any(|e| {
                matches!(
                    e.kind,
                    EventKind::Surge { .. } | EventKind::FlashCrowd { .. }
                )
            })
        {
            return fail("scenario has no workload and no demand events — nothing to simulate");
        }
        for e in &self.events {
            if e.at < 0.0 || e.at > self.horizon_secs {
                return fail(format!(
                    "event at t={} lies outside the horizon 0..{}",
                    e.at, self.horizon_secs
                ));
            }
            if let EventKind::SetCapacity { capacity, .. } = e.kind {
                if capacity <= 0.0 {
                    return fail("`set_capacity` events need a positive capacity");
                }
            }
        }
        if let Some(x) = &self.expect {
            let inverted_f = [
                (
                    "unroutable_flow_secs",
                    x.min_unroutable_flow_secs,
                    x.max_unroutable_flow_secs,
                ),
                ("mean_qoe", x.min_mean_qoe, x.max_mean_qoe),
            ];
            for (name, lo, hi) in inverted_f {
                if let (Some(lo), Some(hi)) = (lo, hi) {
                    if lo > hi {
                        return fail(format!("`expect` {name} bounds are inverted"));
                    }
                }
            }
            let inverted_u = [
                ("stalls", x.min_stalls, x.max_stalls),
                ("fwd_loops", x.min_fwd_loops, x.max_fwd_loops),
            ];
            for (name, lo, hi) in inverted_u {
                if let (Some(lo), Some(hi)) = (lo, hi) {
                    if lo > hi {
                        return fail(format!("`expect` {name} bounds are inverted"));
                    }
                }
            }
        }
        Ok(())
    }

    /// The sink routers, applying topology-specific defaults: the
    /// paper graph's C, the highest-id router otherwise.
    pub fn effective_sinks(&self) -> Vec<RouterId> {
        if !self.sinks.is_empty() {
            return self.sinks.iter().map(|s| RouterId(*s)).collect();
        }
        match self.topology {
            TopologySpec::Paper => vec![RouterId(7)],
            TopologySpec::Line { n } | TopologySpec::Ring { n } | TopologySpec::FullMesh { n } => {
                vec![RouterId(n)]
            }
            TopologySpec::Grid { rows, cols } => vec![RouterId(rows * cols)],
            TopologySpec::Random { n, .. } | TopologySpec::Waxman { n, .. } => vec![RouterId(n)],
            TopologySpec::FatTree { k } => {
                // Last edge switch of the last pod.
                let half = k / 2;
                vec![RouterId(half * half + k * k)]
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    const FULL: &str = r#"
name = "demo"
description = "a full example"
horizon_secs = 55.0
seed = 7
capacity = 4e6
trace_links = ["1-3", "2-4"]
sinks = [7]

[topology]
kind = "paper"

[controller]
enabled = true
attach = 5
target_util = 0.5

[[workload]]
kind = "paper"
src1 = 2
src2 = 1
rate = 125000.0
video_secs = 300.0

[[event]]
at = 20.0
action = "fail_link"
a = 2
b = 4

[[event]]
at = 10.0
action = "surge"
src = 2
n = 5
rate = 125000.0
video_secs = 60.0
"#;

    #[test]
    fn full_spec_parses() {
        let s = ScenarioSpec::from_toml_str(FULL).unwrap();
        assert_eq!(s.name, "demo");
        assert_eq!(s.topology, TopologySpec::Paper);
        assert_eq!(s.sinks, vec![7]);
        let ctl = s.controller.as_ref().unwrap();
        assert_eq!(ctl.attach, 5);
        assert!((ctl.target_util - 0.5).abs() < 1e-12);
        assert!((ctl.util_hi - 0.8).abs() < 1e-12, "default applies");
        assert_eq!(s.workloads.len(), 1);
        // Events are sorted by time regardless of file order.
        assert_eq!(s.events.len(), 2);
        assert!(s.events[0].at < s.events[1].at);
        assert!(matches!(s.events[0].kind, EventKind::Surge { .. }));
        assert_eq!(s.trace_links, vec![(1, 3), (2, 4)]);
    }

    #[test]
    fn sinks_default_by_topology() {
        let mut s = ScenarioSpec::from_toml_str(FULL).unwrap();
        s.sinks.clear();
        assert_eq!(s.effective_sinks(), vec![RouterId(7)]);
        s.topology = TopologySpec::FatTree { k: 4 };
        assert_eq!(s.effective_sinks(), vec![RouterId(20)]);
        s.topology = TopologySpec::Grid { rows: 3, cols: 4 };
        assert_eq!(s.effective_sinks(), vec![RouterId(12)]);
    }

    #[test]
    fn unknown_keys_are_rejected() {
        let bad = FULL.replace("target_util = 0.5", "target_utl = 0.5");
        let e = ScenarioSpec::from_toml_str(&bad).unwrap_err();
        assert!(e.to_string().contains("target_utl"), "{e}");
    }

    #[test]
    fn controller_disabled_and_missing() {
        let none = ScenarioSpec::from_toml_str(
            r#"
name = "base"
horizon_secs = 10.0
capacity = 1e6
[topology]
kind = "line"
n = 3
[[workload]]
kind = "constant"
at = 1.0
src = 1
n = 2
rate = 1e5
video_secs = 5.0
"#,
        )
        .unwrap();
        assert!(none.controller.is_none());
        let disabled = ScenarioSpec::from_toml_str(
            r#"
name = "base"
horizon_secs = 10.0
capacity = 1e6
[topology]
kind = "line"
n = 3
[controller]
enabled = false
[[workload]]
kind = "constant"
at = 1.0
src = 1
n = 2
rate = 1e5
video_secs = 5.0
"#,
        )
        .unwrap();
        assert!(disabled.controller.is_none());
    }

    #[test]
    fn validation_catches_nonsense() {
        let no_work = r#"
name = "x"
horizon_secs = 10.0
capacity = 1e6
[topology]
kind = "line"
n = 3
"#;
        assert!(ScenarioSpec::from_toml_str(no_work)
            .unwrap_err()
            .to_string()
            .contains("no workload"));
        let bad_event = FULL.replace("at = 20.0", "at = 99.0");
        assert!(ScenarioSpec::from_toml_str(&bad_event)
            .unwrap_err()
            .to_string()
            .contains("outside the horizon"));
        let bad_name = FULL.replace("name = \"demo\"", "name = \"has space\"");
        assert!(ScenarioSpec::from_toml_str(&bad_name).is_err());
    }

    #[test]
    fn generator_parameters_are_validated_not_asserted() {
        // Values the igp builders would assert on must come back as
        // SpecErrors naming the key, not process-aborting panics.
        for (topo, needle) in [
            ("kind = \"fat_tree\"\nk = 3", "topology.k"),
            ("kind = \"fat_tree\"\nk = 0", "topology.k"),
            (
                "kind = \"waxman\"\nn = 10\nalpha = 0.0\nbeta = 0.3",
                "alpha",
            ),
            (
                "kind = \"waxman\"\nn = 1\nalpha = 0.5\nbeta = 0.3",
                "topology.n",
            ),
            ("kind = \"ring\"\nn = 2", "topology.n"),
            ("kind = \"line\"\nn = 1", "topology.n"),
            ("kind = \"grid\"\nrows = 0\ncols = 3", "topology.rows"),
            ("kind = \"random\"\nn = 1", "topology.n"),
            ("kind = \"random\"\nn = 8\nmax_metric = 0", "max_metric"),
        ] {
            let src = format!(
                r#"
name = "t"
horizon_secs = 10.0
capacity = 1e6
sinks = [1]
[topology]
{topo}
[[workload]]
kind = "constant"
at = 1.0
src = 1
n = 1
rate = 1e5
video_secs = 5.0
"#
            );
            let e = ScenarioSpec::from_toml_str(&src).expect_err(&format!("should reject: {topo}"));
            assert!(e.to_string().contains(needle), "{topo}: {e}");
        }
    }

    #[test]
    fn diurnal_parameters_are_validated_not_asserted() {
        for (params, needle) in [
            (
                "period_secs = 0.0\npeak_per_sec = 1.0\ntrough_per_sec = 0.1",
                "period_secs",
            ),
            (
                "period_secs = 60.0\npeak_per_sec = 0.1\ntrough_per_sec = 1.0",
                "peak_per_sec",
            ),
            (
                "period_secs = 60.0\npeak_per_sec = 1.0\ntrough_per_sec = -0.5",
                "peak_per_sec",
            ),
        ] {
            let src = format!(
                r#"
name = "t"
horizon_secs = 10.0
capacity = 1e6
sinks = [3]
[topology]
kind = "line"
n = 3
[[workload]]
kind = "diurnal"
{params}
src = 1
rate = 1e5
video_secs = 5.0
"#
            );
            let e =
                ScenarioSpec::from_toml_str(&src).expect_err(&format!("should reject: {params}"));
            assert!(e.to_string().contains(needle), "{params}: {e}");
        }
    }

    #[test]
    fn all_generator_topologies_parse() {
        for (kind, extra) in [
            ("line", "n = 5"),
            ("ring", "n = 5"),
            ("grid", "rows = 2\ncols = 3"),
            ("full_mesh", "n = 4"),
            ("random", "n = 8\nextra_edges = 4\nmax_metric = 3"),
            ("waxman", "n = 10\nalpha = 0.5\nbeta = 0.4\nmax_metric = 3"),
            ("fat_tree", "k = 4"),
        ] {
            let src = format!(
                r#"
name = "t"
horizon_secs = 10.0
capacity = 1e6
[topology]
kind = "{kind}"
{extra}
[[workload]]
kind = "constant"
at = 1.0
src = 1
n = 1
rate = 1e5
video_secs = 5.0
"#
            );
            ScenarioSpec::from_toml_str(&src).unwrap_or_else(|e| panic!("{kind}: {e}"));
        }
    }
}
