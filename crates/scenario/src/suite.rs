//! Named suites over the shipped scenario files.
//!
//! A suite is an ordered list of scenario names (each backed by
//! `scenarios/<name>.toml`) plus an optional horizon override —
//! `smoke` trims the horizon so CI can run the pipeline twice and
//! byte-diff the outputs in seconds.

use crate::spec::{ScenarioSpec, SpecError};
use std::path::PathBuf;

/// A named, ordered collection of scenarios.
#[derive(Debug, Clone, Copy)]
pub struct Suite {
    /// Suite name (`--suite` argument).
    pub name: &'static str,
    /// What the suite demonstrates.
    pub description: &'static str,
    /// Scenario names, in run order.
    pub scenarios: &'static [&'static str],
    /// Horizon override in seconds (`None` = per-spec horizons).
    pub horizon_secs: Option<f64>,
}

/// Every scenario file shipped under `scenarios/`.
pub const ALL_SCENARIOS: &[&str] = &[
    "paper_demo",
    "flash_crowd_random",
    "link_failure_under_load",
    "capacity_degradation",
    "diurnal_mix",
    "no_controller_baseline",
    "metro_edge",
    "metro_core",
];

/// The built-in suites.
pub const SUITES: &[Suite] = &[
    Suite {
        name: "all",
        description: "every shipped scenario at its full horizon",
        scenarios: ALL_SCENARIOS,
        horizon_secs: None,
    },
    Suite {
        name: "smoke",
        description: "reduced-horizon pipeline check (CI determinism gate)",
        scenarios: &[
            "paper_demo",
            "link_failure_under_load",
            "no_controller_baseline",
            "metro_edge",
        ],
        horizon_secs: Some(20.0),
    },
    Suite {
        name: "scale",
        description: "city-scale stress runs riding on incremental recompute",
        scenarios: &["metro_edge", "metro_core"],
        horizon_secs: None,
    },
];

/// Look up a suite by name.
pub fn find_suite(name: &str) -> Option<&'static Suite> {
    SUITES.iter().find(|s| s.name == name)
}

/// The `scenarios/` directory at the workspace root.
pub fn scenarios_dir() -> PathBuf {
    PathBuf::from(env!("CARGO_MANIFEST_DIR"))
        .join("../..")
        .join("scenarios")
}

/// Load and validate `scenarios/<name>.toml`.
pub fn load_scenario(name: &str) -> Result<ScenarioSpec, SpecError> {
    let path = scenarios_dir().join(format!("{name}.toml"));
    let src = std::fs::read_to_string(&path)
        .map_err(|e| SpecError(format!("cannot read {}: {e}", path.display())))?;
    let spec = ScenarioSpec::from_toml_str(&src)?;
    if spec.name != name {
        return Err(SpecError(format!(
            "scenario file {name}.toml declares name `{}`",
            spec.name
        )));
    }
    Ok(spec)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn suites_reference_shipped_scenarios() {
        assert!(find_suite("all").is_some());
        assert!(find_suite("smoke").is_some());
        assert!(find_suite("nope").is_none());
        for suite in SUITES {
            for name in suite.scenarios {
                assert!(
                    ALL_SCENARIOS.contains(name),
                    "suite {} references unknown scenario {name}",
                    suite.name
                );
            }
        }
    }

    #[test]
    fn every_shipped_spec_parses() {
        for name in ALL_SCENARIOS {
            let spec = load_scenario(name).unwrap_or_else(|e| panic!("{name}: {e}"));
            assert_eq!(&spec.name, name);
        }
    }
}
