//! Named suites over the shipped scenario files.
//!
//! A suite is an ordered list of scenario names (each backed by
//! `scenarios/<name>.toml`) plus an optional horizon override —
//! `smoke` trims the horizon so CI can run the pipeline twice and
//! byte-diff the outputs in seconds.

use crate::spec::{ScenarioSpec, SpecError};
use std::path::PathBuf;

/// A named, ordered collection of scenarios.
#[derive(Debug, Clone, Copy)]
pub struct Suite {
    /// Suite name (`--suite` argument).
    pub name: &'static str,
    /// What the suite demonstrates.
    pub description: &'static str,
    /// Scenario names, in run order.
    pub scenarios: &'static [&'static str],
    /// Horizon override in seconds (`None` = per-spec horizons).
    pub horizon_secs: Option<f64>,
}

/// Every scenario file shipped under `scenarios/`.
pub const ALL_SCENARIOS: &[&str] = &[
    "paper_demo",
    "flash_crowd_random",
    "link_failure_under_load",
    "capacity_degradation",
    "diurnal_mix",
    "no_controller_baseline",
    "metro_edge",
    "metro_core",
];

/// The built-in suites.
pub const SUITES: &[Suite] = &[
    Suite {
        name: "all",
        description: "every shipped scenario at its full horizon",
        scenarios: ALL_SCENARIOS,
        horizon_secs: None,
    },
    Suite {
        name: "smoke",
        description: "reduced-horizon pipeline check (CI determinism gate)",
        scenarios: &[
            "paper_demo",
            "link_failure_under_load",
            "no_controller_baseline",
            "metro_edge",
        ],
        horizon_secs: Some(20.0),
    },
    Suite {
        name: "scale",
        description: "city-scale stress runs riding on incremental recompute",
        scenarios: &["metro_edge", "metro_core"],
        horizon_secs: None,
    },
];

/// Look up a suite by name.
pub fn find_suite(name: &str) -> Option<&'static Suite> {
    SUITES.iter().find(|s| s.name == name)
}

/// The `scenarios/` directory at the workspace root.
pub fn scenarios_dir() -> PathBuf {
    PathBuf::from(env!("CARGO_MANIFEST_DIR"))
        .join("../..")
        .join("scenarios")
}

/// Load and validate `scenarios/<name>.toml`.
pub fn load_scenario(name: &str) -> Result<ScenarioSpec, SpecError> {
    load_from(scenarios_dir().join(format!("{name}.toml")), name)
}

/// The `scenarios/found/` directory: the adversarial fuzzer's archived
/// regression corpus (see `docs/ADVERSARY.md`). Unlike the shipped
/// list, this family is discovered dynamically so archiving a new find
/// needs no code change.
pub fn found_dir() -> PathBuf {
    scenarios_dir().join("found")
}

/// Scenario names under `scenarios/found/`, sorted for a stable run
/// order. Missing directory = empty corpus, not an error.
pub fn found_scenarios() -> Vec<String> {
    let mut names = Vec::new();
    let Ok(entries) = std::fs::read_dir(found_dir()) else {
        return names;
    };
    for entry in entries.flatten() {
        let path = entry.path();
        if path.extension().and_then(|e| e.to_str()) == Some("toml") {
            if let Some(stem) = path.file_stem().and_then(|s| s.to_str()) {
                names.push(stem.to_string());
            }
        }
    }
    names.sort();
    names
}

/// Load and validate `scenarios/found/<name>.toml`.
pub fn load_found(name: &str) -> Result<ScenarioSpec, SpecError> {
    load_from(found_dir().join(format!("{name}.toml")), name)
}

fn load_from(path: PathBuf, name: &str) -> Result<ScenarioSpec, SpecError> {
    let src = std::fs::read_to_string(&path)
        .map_err(|e| SpecError(format!("cannot read {}: {e}", path.display())))?;
    let spec = ScenarioSpec::from_toml_str(&src)?;
    if spec.name != name {
        return Err(SpecError(format!(
            "scenario file {name}.toml declares name `{}`",
            spec.name
        )));
    }
    Ok(spec)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn suites_reference_shipped_scenarios() {
        assert!(find_suite("all").is_some());
        assert!(find_suite("smoke").is_some());
        assert!(find_suite("nope").is_none());
        for suite in SUITES {
            for name in suite.scenarios {
                assert!(
                    ALL_SCENARIOS.contains(name),
                    "suite {} references unknown scenario {name}",
                    suite.name
                );
            }
        }
    }

    #[test]
    fn every_shipped_spec_parses() {
        for name in ALL_SCENARIOS {
            let spec = load_scenario(name).unwrap_or_else(|e| panic!("{name}: {e}"));
            assert_eq!(&spec.name, name);
        }
    }

    #[test]
    fn found_corpus_parses_and_carries_expectations() {
        for name in found_scenarios() {
            let spec = load_found(&name).unwrap_or_else(|e| panic!("{name}: {e}"));
            assert_eq!(spec.name, name);
            let expect = spec
                .expect
                .as_ref()
                .unwrap_or_else(|| panic!("{name}: archived finds must carry [expect]"));
            assert!(
                !expect.is_empty(),
                "{name}: the [expect] stanza must constrain something"
            );
            assert!(spec.pin_seed, "{name}: archived finds must pin their seed");
        }
    }
}
