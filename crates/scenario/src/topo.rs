//! Binding from [`TopologySpec`] to concrete [`Topology`] values.
//!
//! All randomness comes from the caller's RNG, so a scenario's
//! topology is a pure function of its seed.

use crate::spec::TopologySpec;
use fib_igp::builders;
use fib_igp::topology::Topology;
use rand::rngs::StdRng;

/// Build the topology a spec names. Deterministic per RNG state.
pub fn build_topology(spec: &TopologySpec, rng: &mut StdRng) -> Topology {
    match *spec {
        TopologySpec::Paper => builders::paper_fig1(),
        TopologySpec::Line { n } => builders::line(n),
        TopologySpec::Ring { n } => builders::ring(n),
        TopologySpec::Grid { rows, cols } => builders::grid(rows, cols),
        TopologySpec::FullMesh { n } => builders::full_mesh(n),
        TopologySpec::Random {
            n,
            extra_edges,
            max_metric,
        } => builders::random_connected(rng, n, extra_edges, max_metric),
        TopologySpec::Waxman {
            n,
            alpha,
            beta,
            max_metric,
        } => builders::waxman(rng, n, alpha, beta, max_metric),
        TopologySpec::FatTree { k } => builders::fat_tree(k),
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use fib_igp::spf::shortest_paths;
    use rand::SeedableRng;

    #[test]
    fn every_kind_builds_connected() {
        let kinds = [
            TopologySpec::Paper,
            TopologySpec::Line { n: 4 },
            TopologySpec::Ring { n: 5 },
            TopologySpec::Grid { rows: 2, cols: 3 },
            TopologySpec::FullMesh { n: 4 },
            TopologySpec::Random {
                n: 9,
                extra_edges: 4,
                max_metric: 3,
            },
            TopologySpec::Waxman {
                n: 10,
                alpha: 0.6,
                beta: 0.3,
                max_metric: 4,
            },
            TopologySpec::FatTree { k: 4 },
        ];
        for kind in kinds {
            let mut rng = StdRng::seed_from_u64(7);
            let t = build_topology(&kind, &mut rng);
            t.validate().unwrap();
            let first = t.routers().next().unwrap();
            let sp = shortest_paths(&t, first);
            for r in t.routers() {
                assert!(sp.dist_to(r).is_finite(), "{kind:?}: {r} unreachable");
            }
        }
    }

    #[test]
    fn seeded_kinds_are_deterministic() {
        let kind = TopologySpec::Waxman {
            n: 14,
            alpha: 0.5,
            beta: 0.4,
            max_metric: 5,
        };
        let build = |seed| {
            let mut rng = StdRng::seed_from_u64(seed);
            build_topology(&kind, &mut rng)
                .all_links()
                .collect::<Vec<_>>()
        };
        assert_eq!(build(3), build(3));
        assert_ne!(build(3), build(4), "different seeds differ");
    }
}
