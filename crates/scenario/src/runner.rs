//! Composing and executing a scenario.
//!
//! [`build`] turns a validated [`ScenarioSpec`] into a ready
//! [`ScenarioRun`]: a [`Sim`] populated with the topology, an optional
//! Fibbing controller, the video session schedule, a utilization
//! probe, and the scripted link faults. [`ScenarioRun`] then drives
//! the deterministic event loop and condenses the outcome into a
//! [`ScenarioReport`].
//!
//! Sessions are *streamed*, not materialized: each workload entry
//! becomes one compact [`SessionGroup`] (source, rate, tag base, and
//! the arrival instants drawn from the seeded RNG), and the driver
//! builds the actual session objects lazily as their start times
//! arrive. A 2 000-session flash crowd costs a few dozen bytes per
//! pending session instead of a full spec each — the difference that
//! lets `metro_core`-scale scenarios run.
//!
//! Determinism: the only RNG streams are derived from the scenario
//! seed (one for the topology, one for the workloads), every arrival
//! instant is drawn before the simulation starts — in spec order, the
//! same draw sequence the old eager builder used, so same-seed runs
//! are byte-identical across the refactor — and the simulator itself
//! is a deterministic discrete-event system.

use crate::report::ScenarioReport;
use crate::spec::{ControllerSpec, EventKind, ScenarioSpec, SpecError, WorkloadSpec};
use crate::topo::build_topology;
use fib_core::prelude::{ControllerConfig, ControllerHandle, FibbingController};
use fib_igp::time::{Dur, Timestamp};
use fib_igp::topology::Topology;
use fib_igp::types::{Prefix, RouterId};
use fib_netsim::events::Event;
use fib_netsim::handler::{AppEvent, EventHandler};
use fib_netsim::link::LinkSpec;
use fib_netsim::sim::{SettleMode, Sim, SimConfig, SimContext};
use fib_video::prelude::{
    batch_starts, diurnal_starts, poisson_starts, summarize, GroupedSource, QoeHandle,
    SessionGroup, VideoWorkload,
};
use rand::rngs::StdRng;
use rand::SeedableRng;

/// Router id of the scenario's controller speaker (outside the id
/// range any generator produces).
pub const CONTROLLER_ID: RouterId = RouterId(10_000);

/// Options overriding spec defaults at run time (CLI flags, sweep
/// cells).
#[derive(Debug, Clone, Copy, Default)]
pub struct RunOptions {
    /// Override the spec's seed.
    pub seed: Option<u64>,
    /// Override the spec's horizon (seconds).
    pub horizon_secs: Option<f64>,
    /// Run without the controller even if the spec declares one (the
    /// sweep engine's paired-baseline cells; everything else — seed,
    /// topology, workload draws — stays identical, so a report delta
    /// against the controller-on twin isolates the controller).
    pub disable_controller: bool,
    /// Fluid settlement mode. [`SettleMode::Eager`] (the default)
    /// reproduces the pre-kernel machinery counters byte-for-byte —
    /// keep it for anything whose artifacts are pinned. Perf-oriented
    /// runs (the `sim_scale` sweep) opt into [`SettleMode::Lazy`],
    /// which collapses within-batch double settles; every observable
    /// (traces, rates, deliveries, QoE) is unchanged.
    pub settle: SettleMode,
    /// Arm the per-settle forwarding-loop probe (read-only — it never
    /// changes run artifacts, only fills `fwd_loop_settles` and the
    /// sim's violation log). Armed automatically for specs carrying an
    /// `[expect]` stanza; the adversary explorer arms it explicitly.
    pub check_loops: bool,
}

/// A composed, started scenario, ready to advance.
pub struct ScenarioRun {
    /// The underlying simulator (mid-run inspection welcome).
    pub sim: Sim,
    /// Live per-session QoE reports.
    pub qoe: QoeHandle,
    /// Live controller snapshot (`None` for baselines).
    pub ctrl: Option<ControllerHandle>,
    name: String,
    seed: u64,
    horizon_secs: f64,
    routers: usize,
    links: usize,
    sessions: usize,
    stimuli: Vec<f64>,
}

fn fail<T>(msg: impl Into<String>) -> Result<T, SpecError> {
    Err(SpecError(msg.into()))
}

/// Derive the workload RNG stream from the scenario seed (decoupled
/// from the topology stream so adding a workload never reshapes the
/// graph).
fn workload_seed(seed: u64) -> u64 {
    seed ^ 0x9E37_79B9_7F4A_7C15
}

fn at_secs(s: f64) -> Timestamp {
    Timestamp::ZERO + Dur::from_secs_f64(s)
}

/// The sampling probe: an [`EventHandler`] recording aggregate link
/// utilization (`util.max`, `util.mean`) every tick, data links only.
struct UtilProbe {
    exclude: Option<RouterId>,
}

impl UtilProbe {
    fn sample(&mut self, api: &mut SimContext<'_>) {
        let mut max = 0.0f64;
        let mut sum = 0.0f64;
        let mut count = 0usize;
        // `links()` carries the offered rate inline, so one arena pass
        // yields the whole utilization picture — no per-link lookups,
        // no snapshot Vec.
        for info in api.links() {
            if let Some(x) = self.exclude {
                if info.key.from == x || info.key.to == x {
                    continue;
                }
            }
            if !info.up || info.capacity <= 0.0 {
                continue;
            }
            let util = info.rate / info.capacity;
            max = max.max(util);
            sum += util;
            count += 1;
        }
        api.record("util.max", max);
        api.record(
            "util.mean",
            if count > 0 { sum / count as f64 } else { 0.0 },
        );
    }
}

impl EventHandler for UtilProbe {
    fn name(&self) -> &str {
        "util-probe"
    }

    fn tick_interval(&self) -> Option<Dur> {
        Some(Dur::from_millis(100))
    }

    fn on_event(&mut self, ctx: &mut SimContext<'_>, ev: AppEvent<'_>) {
        if let AppEvent::Tick = ev {
            self.sample(ctx);
        }
    }
}

/// Check every router a spec references exists in the topology.
fn check_router(topo: &Topology, id: u32, what: &str) -> Result<RouterId, SpecError> {
    let r = RouterId(id);
    if topo.contains(r) && r.is_real() {
        Ok(r)
    } else {
        fail(format!("{what} references unknown router {id}"))
    }
}

fn check_link(topo: &Topology, a: u32, b: u32, what: &str) -> Result<(), SpecError> {
    check_router(topo, a, what)?;
    check_router(topo, b, what)?;
    if topo.has_link(RouterId(a), RouterId(b)) {
        Ok(())
    } else {
        fail(format!("{what} references unknown link {a}-{b}"))
    }
}

/// Compose a scenario into a started [`ScenarioRun`].
pub fn build(spec: &ScenarioSpec, opts: RunOptions) -> Result<ScenarioRun, SpecError> {
    let seed = opts.seed.unwrap_or(spec.seed);
    if spec.pin_seed && seed != spec.seed {
        return fail(format!(
            "scenario `{}` pins seed {} (its fault script names links of \
             that seed's graph); run it without --seed",
            spec.name, spec.seed
        ));
    }
    let horizon_secs = opts.horizon_secs.unwrap_or(spec.horizon_secs);
    if horizon_secs <= 0.0 {
        return fail("horizon must be positive");
    }

    let mut topo_rng = StdRng::seed_from_u64(seed);
    let topo = build_topology(&spec.topology, &mut topo_rng);
    topo.validate()
        .map_err(|e| SpecError(format!("generated topology invalid: {e:?}")))?;

    // Sinks and their prefixes.
    let sinks = spec.effective_sinks();
    if sinks.is_empty() {
        return fail("scenario needs at least one sink");
    }
    if sinks.len() > u8::MAX as usize {
        return fail("at most 255 sinks are supported");
    }
    for s in &sinks {
        check_router(&topo, s.0, "sinks")?;
    }
    let prefix_of = |dst: usize| -> Result<Prefix, SpecError> {
        if dst < sinks.len() {
            Ok(Prefix::net24((dst + 1) as u8))
        } else {
            fail(format!(
                "dst index {dst} out of range (scenario has {} sinks)",
                sinks.len()
            ))
        }
    };

    // World: routers in ascending id order, links as sorted symmetric
    // pairs, uniform capacity.
    let mut sim = Sim::new(SimConfig {
        settle: opts.settle,
        check_loops: opts.check_loops || spec.expect.is_some(),
        ..SimConfig::default()
    });
    for r in topo.routers() {
        if r == CONTROLLER_ID {
            return fail(format!("router id {} is reserved for the controller", r.0));
        }
        sim.add_router(r);
    }
    let mut links = 0usize;
    for (a, b, m) in topo.all_links() {
        if a < b {
            sim.add_link(LinkSpec::new(a, b, m, spec.capacity));
            links += 1;
        }
    }
    for (i, sink) in sinks.iter().enumerate() {
        sim.announce_prefix(*sink, Prefix::net24((i + 1) as u8));
    }
    for (a, b) in &spec.trace_links {
        check_link(&topo, *a, *b, "trace_links")?;
        sim.sample_link(&format!("r{a}-r{b}"), RouterId(*a), RouterId(*b));
    }

    // Controller (before the workload driver, mirroring the demo's
    // app order so notifications reach it in the same relative order).
    let controller = if opts.disable_controller {
        None
    } else {
        spec.controller.as_ref()
    };
    let ctrl = match controller {
        None => None,
        Some(c) => {
            let attach = check_router(&topo, c.attach, "controller.attach")?;
            sim.add_controller_speaker(CONTROLLER_ID, attach);
            let mut app = FibbingController::new(controller_config(c));
            let handle = app.watch();
            sim.add_app(Box::new(app));
            Some(handle)
        }
    };

    // The session schedule, as compact waves: one [`SessionGroup`]
    // per workload entry / demand event. Arrival instants are drawn
    // from the workload RNG stream here, in spec order — exactly the
    // draw sequence the old eager builder used, so same-seed runs are
    // byte-identical — but the per-session objects are built lazily
    // by the driver as each start time arrives.
    let mut wl_rng = StdRng::seed_from_u64(workload_seed(seed));
    let mut groups: Vec<SessionGroup> = Vec::new();
    let mut session_count: u64 = 0;
    let mut stimuli: Vec<f64> = Vec::new();
    fn push_group(
        groups: &mut Vec<SessionGroup>,
        session_count: &mut u64,
        src: RouterId,
        dst: Prefix,
        rate: f64,
        video_secs: f64,
        starts: Vec<Timestamp>,
    ) {
        let tag_base = *session_count;
        *session_count += starts.len() as u64;
        groups.push(SessionGroup {
            src,
            dst,
            rate,
            video_secs,
            tag_base,
            starts,
        });
    }
    for w in &spec.workloads {
        match w {
            WorkloadSpec::Paper {
                src1,
                src2,
                rate,
                video_secs,
            } => {
                let s1 = check_router(&topo, *src1, "workload.src1")?;
                let s2 = check_router(&topo, *src2, "workload.src2")?;
                let dst = prefix_of(0)?;
                // The paper's Sec. 3 waves: 1 at t=0 and 30 at t=15
                // from the first source, then 31 at t=35 from the
                // second (same shape as `paper_schedule`).
                for (src, at, n) in [(s1, 0, 1u32), (s1, 15, 30), (s2, 35, 31)] {
                    push_group(
                        &mut groups,
                        &mut session_count,
                        src,
                        dst,
                        *rate,
                        *video_secs,
                        batch_starts(Timestamp::from_secs(at), n),
                    );
                }
                stimuli.extend([0.0, 15.0, 35.0]);
            }
            WorkloadSpec::Constant {
                at,
                src,
                n,
                rate,
                video_secs,
                dst,
            } => {
                let src = check_router(&topo, *src, "workload.src")?;
                push_group(
                    &mut groups,
                    &mut session_count,
                    src,
                    prefix_of(*dst)?,
                    *rate,
                    *video_secs,
                    batch_starts(at_secs(*at), *n),
                );
                stimuli.push(*at);
            }
            WorkloadSpec::Poisson {
                start,
                mean_gap_secs,
                n,
                src,
                rate,
                video_secs,
                dst,
            } => {
                let src = check_router(&topo, *src, "workload.src")?;
                push_group(
                    &mut groups,
                    &mut session_count,
                    src,
                    prefix_of(*dst)?,
                    *rate,
                    *video_secs,
                    poisson_starts(
                        &mut wl_rng,
                        at_secs(*start),
                        Dur::from_secs_f64(*mean_gap_secs),
                        *n,
                    ),
                );
                stimuli.push(*start);
            }
            WorkloadSpec::Diurnal {
                period_secs,
                peak_per_sec,
                trough_per_sec,
                src,
                rate,
                video_secs,
                dst,
            } => {
                let src = check_router(&topo, *src, "workload.src")?;
                push_group(
                    &mut groups,
                    &mut session_count,
                    src,
                    prefix_of(*dst)?,
                    *rate,
                    *video_secs,
                    diurnal_starts(
                        &mut wl_rng,
                        horizon_secs,
                        *period_secs,
                        *peak_per_sec,
                        *trough_per_sec,
                    ),
                );
                // A continuous process, not a discrete stimulus.
            }
        }
    }
    for e in &spec.events {
        match &e.kind {
            EventKind::FailLink { a, b } => {
                check_link(&topo, *a, *b, "fail_link event")?;
                sim.schedule(
                    at_secs(e.at),
                    Event::LinkAdmin {
                        a: RouterId(*a),
                        b: RouterId(*b),
                        up: false,
                    },
                );
                stimuli.push(e.at);
            }
            EventKind::RestoreLink { a, b } => {
                check_link(&topo, *a, *b, "restore_link event")?;
                sim.schedule(
                    at_secs(e.at),
                    Event::LinkAdmin {
                        a: RouterId(*a),
                        b: RouterId(*b),
                        up: true,
                    },
                );
                stimuli.push(e.at);
            }
            EventKind::SetCapacity { a, b, capacity } => {
                check_link(&topo, *a, *b, "set_capacity event")?;
                sim.schedule(
                    at_secs(e.at),
                    Event::LinkCapacity {
                        a: RouterId(*a),
                        b: RouterId(*b),
                        capacity: *capacity,
                    },
                );
                stimuli.push(e.at);
            }
            EventKind::Surge {
                src,
                n,
                rate,
                video_secs,
                dst,
            } => {
                let src = check_router(&topo, *src, "surge event")?;
                push_group(
                    &mut groups,
                    &mut session_count,
                    src,
                    prefix_of(*dst)?,
                    *rate,
                    *video_secs,
                    batch_starts(at_secs(e.at), *n),
                );
                stimuli.push(e.at);
            }
            EventKind::FlashCrowd {
                src,
                n,
                mean_gap_secs,
                rate,
                video_secs,
                dst,
            } => {
                let src = check_router(&topo, *src, "flash_crowd event")?;
                push_group(
                    &mut groups,
                    &mut session_count,
                    src,
                    prefix_of(*dst)?,
                    *rate,
                    *video_secs,
                    poisson_starts(
                        &mut wl_rng,
                        at_secs(e.at),
                        Dur::from_secs_f64(*mean_gap_secs),
                        *n,
                    ),
                );
                stimuli.push(e.at);
            }
        }
    }
    let sessions = session_count as usize;
    let (driver, qoe) =
        VideoWorkload::from_source(Box::new(GroupedSource::new(groups)), Dur::from_millis(100));
    sim.add_app(Box::new(driver));
    sim.add_app(Box::new(UtilProbe {
        exclude: ctrl.as_ref().map(|_| CONTROLLER_ID),
    }));

    stimuli.sort_by(|a, b| a.partial_cmp(b).expect("finite times"));
    stimuli.dedup();

    sim.start();
    Ok(ScenarioRun {
        sim,
        qoe,
        ctrl,
        name: spec.name.clone(),
        seed,
        horizon_secs,
        routers: topo.router_count(),
        links,
        sessions,
        stimuli,
    })
}

fn controller_config(c: &ControllerSpec) -> ControllerConfig {
    let mut cfg = ControllerConfig::new(CONTROLLER_ID);
    cfg.target_util = c.target_util;
    cfg.util_hi = c.util_hi;
    cfg.util_lo = c.util_lo;
    cfg.slot_budget = c.slot_budget;
    cfg.default_flow_rate = c.default_flow_rate;
    cfg.predictive = c.predictive;
    cfg.use_snmp = c.use_snmp;
    cfg.trace_lies = true;
    cfg
}

impl ScenarioRun {
    /// Advance simulated time to `secs` (for mid-run inspection, e.g.
    /// checking installed plans at a milestone).
    pub fn run_until_secs(&mut self, secs: f64) {
        self.sim.run_until(at_secs(secs));
    }

    /// Scenario name.
    pub fn name(&self) -> &str {
        &self.name
    }

    /// Seed in effect (after overrides).
    pub fn seed(&self) -> u64 {
        self.seed
    }

    /// Horizon in effect (after overrides).
    pub fn horizon_secs(&self) -> f64 {
        self.horizon_secs
    }

    /// Run to the horizon and condense the outcome.
    pub fn finish(mut self) -> ScenarioReport {
        self.run_until_secs(self.horizon_secs);
        let stats = self.sim.stats();
        let rec = self.sim.recorder();
        let max_util = rec.max("util.max").unwrap_or(0.0);
        let mean_util = {
            let pts = rec.series("util.mean");
            if pts.is_empty() {
                0.0
            } else {
                pts.iter().map(|(_, v)| *v).sum::<f64>() / pts.len() as f64
            }
        };
        let lies = rec.series("ctrl.lies");
        let peak_lies = lies.iter().map(|(_, v)| *v).fold(0.0f64, f64::max) as u64;
        let final_lies = lies.last().map(|(_, v)| *v).unwrap_or(0.0) as u64;
        // Reaction latency: first moment a lie is installed, measured
        // from the most recent stimulus at or before it.
        let reaction_secs = lies.iter().find(|(_, v)| *v > 0.0).map(|(t, _)| {
            let stim = self
                .stimuli
                .iter()
                .copied()
                .filter(|s| *s <= *t)
                .fold(0.0f64, f64::max);
            t - stim
        });
        let snap = self.ctrl.as_ref().map(|h| *h.lock());
        let qoe = summarize(&self.qoe.lock().values().cloned().collect::<Vec<_>>());
        ScenarioReport {
            name: self.name.clone(),
            seed: self.seed,
            horizon_secs: self.horizon_secs,
            routers: self.routers,
            links: self.links,
            sessions: self.sessions,
            max_util,
            mean_util,
            peak_lies,
            final_lies,
            injections: snap.map(|s| s.stats.injections).unwrap_or(0),
            retractions: snap.map(|s| s.stats.retractions).unwrap_or(0),
            reactions: snap.map(|s| s.stats.reactions).unwrap_or(0),
            reaction_secs,
            unroutable_flow_secs: stats.unroutable_flow_secs,
            fwd_loop_settles: stats.fwd_loop_settles,
            ctrl_pkts: stats.ctrl_pkts,
            ctrl_bytes: stats.ctrl_bytes,
            qoe,
            trace_csv: rec.to_csv(),
        }
    }
}

/// Build and run a scenario end to end.
pub fn run(spec: &ScenarioSpec, opts: RunOptions) -> Result<ScenarioReport, SpecError> {
    Ok(build(spec, opts)?.finish())
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::spec::ScenarioSpec;

    /// A deliberately tiny scenario: 3-router triangle with a slow
    /// detour, a surge that overloads the shortest path, controller
    /// on. Fast enough for debug-mode tests.
    const TINY: &str = r#"
name = "tiny"
description = "triangle overload"
horizon_secs = 30.0
seed = 1
capacity = 1e6
sinks = [3]
trace_links = ["1-2"]

[topology]
kind = "ring"
n = 3

[controller]
attach = 2
default_flow_rate = 100000.0

[[workload]]
kind = "constant"
at = 10.0
src = 1
n = 12
rate = 1e5
video_secs = 60.0
"#;

    #[test]
    fn tiny_scenario_runs_and_reports() {
        let spec = ScenarioSpec::from_toml_str(TINY).unwrap();
        let report = run(&spec, RunOptions::default()).unwrap();
        assert_eq!(report.name, "tiny");
        assert_eq!(report.routers, 3);
        assert_eq!(report.links, 3);
        assert_eq!(report.sessions, 12);
        assert!(report.max_util > 0.5, "load visible: {}", report.max_util);
        assert!(report.peak_lies >= 1, "controller reacted");
        assert!(report.reaction_secs.is_some());
        assert!(report.qoe.sessions == 12);
        assert!(report.trace_csv.contains("r1-r2"));
        assert!(report.trace_csv.contains("ctrl.lies"));
        assert!(report.trace_csv.contains("util.max"));
    }

    #[test]
    fn same_seed_byte_identical_reports() {
        let spec = ScenarioSpec::from_toml_str(TINY).unwrap();
        let a = run(&spec, RunOptions::default()).unwrap();
        let b = run(&spec, RunOptions::default()).unwrap();
        assert_eq!(a.summary_csv(), b.summary_csv());
        assert_eq!(a.trace_csv, b.trace_csv);
    }

    #[test]
    fn overrides_apply() {
        let spec = ScenarioSpec::from_toml_str(TINY).unwrap();
        let run = build(
            &spec,
            RunOptions {
                seed: Some(99),
                horizon_secs: Some(12.0),
                ..RunOptions::default()
            },
        )
        .unwrap();
        assert_eq!(run.seed(), 99);
        assert!((run.horizon_secs() - 12.0).abs() < 1e-12);
        let report = run.finish();
        assert_eq!(report.seed, 99);
        assert!((report.horizon_secs - 12.0).abs() < 1e-12);
    }

    #[test]
    fn baseline_without_controller() {
        let src = TINY
            .replace("[controller]\nattach = 2\ndefault_flow_rate = 100000.0", "")
            .replace("name = \"tiny\"", "name = \"tiny-base\"");
        let spec = ScenarioSpec::from_toml_str(&src).unwrap();
        let report = run(&spec, RunOptions::default()).unwrap();
        assert_eq!(report.peak_lies, 0);
        assert_eq!(report.injections, 0);
        assert!(report.reaction_secs.is_none());
        assert!(report.max_util > 0.9, "uncontrolled overload saturates");
    }

    #[test]
    fn pinned_seed_rejects_overrides() {
        let pinned = TINY.replace("seed = 1", "seed = 1\npin_seed = true");
        let spec = ScenarioSpec::from_toml_str(&pinned).unwrap();
        // The spec's own seed (explicit or defaulted) is fine.
        assert!(build(
            &spec,
            RunOptions {
                seed: Some(1),
                horizon_secs: Some(5.0),
                ..RunOptions::default()
            },
        )
        .is_ok());
        // Any other seed is rejected, loudly.
        let err = match build(
            &spec,
            RunOptions {
                seed: Some(2),
                ..RunOptions::default()
            },
        ) {
            Err(e) => e,
            Ok(_) => panic!("pinned seed must reject overrides"),
        };
        assert!(err.to_string().contains("pins seed"), "{err}");
        // Unpinned specs still take overrides.
        let spec = ScenarioSpec::from_toml_str(TINY).unwrap();
        assert!(build(
            &spec,
            RunOptions {
                seed: Some(2),
                horizon_secs: Some(5.0),
                ..RunOptions::default()
            },
        )
        .is_ok());
    }

    #[test]
    fn disable_controller_builds_a_true_baseline_twin() {
        let spec = ScenarioSpec::from_toml_str(TINY).unwrap();
        let opts = RunOptions {
            disable_controller: true,
            ..RunOptions::default()
        };
        let base = run(&spec, opts).unwrap();
        assert_eq!(base.peak_lies, 0, "no controller, no lies");
        assert_eq!(base.injections, 0);
        // Same seed, same workload draws: the twin sees the identical
        // schedule, so the delta against the controller-on run is
        // attributable to the controller alone.
        let on = run(&spec, RunOptions::default()).unwrap();
        assert_eq!(base.sessions, on.sessions);
        assert!(
            on.qoe.mean_score >= base.qoe.mean_score,
            "controller must not hurt QoE here: on={} base={}",
            on.qoe.mean_score,
            base.qoe.mean_score
        );
    }

    #[test]
    fn bad_references_are_caught_at_build() {
        let bad_sink = TINY.replace("sinks = [3]", "sinks = [9]");
        let spec = ScenarioSpec::from_toml_str(&bad_sink).unwrap();
        assert!(build(&spec, RunOptions::default()).is_err());
        let bad_trace = TINY.replace("trace_links = [\"1-2\"]", "trace_links = [\"1-9\"]");
        let spec = ScenarioSpec::from_toml_str(&bad_trace).unwrap();
        assert!(build(&spec, RunOptions::default()).is_err());
    }

    #[test]
    fn fault_script_strands_flows() {
        let src = r#"
name = "cut"
horizon_secs = 25.0
seed = 2
capacity = 1e6
sinks = [2]

[topology]
kind = "line"
n = 2

[[workload]]
kind = "constant"
at = 5.0
src = 1
n = 2
rate = 1e5
video_secs = 60.0

[[event]]
at = 10.0
action = "fail_link"
a = 1
b = 2

[[event]]
at = 20.0
action = "restore_link"
a = 1
b = 2
"#;
        let spec = ScenarioSpec::from_toml_str(src).unwrap();
        let report = run(&spec, RunOptions::default()).unwrap();
        // Two flows stranded for ~10 s.
        assert!(
            report.unroutable_flow_secs > 15.0,
            "blackout recorded: {}",
            report.unroutable_flow_secs
        );
    }
}
