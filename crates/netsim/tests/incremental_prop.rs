//! Equivalence of the incremental data plane with full recompute.
//!
//! The simulator re-resolves only dirty flows and reuses the fluid
//! allocator across event batches (`crates/netsim/src/dirty.rs`).
//! These properties drive random event sequences — flow churn, cap
//! changes, link failures/restores, capacity brown-outs — through a
//! random topology and, at every checkpoint, compare the live state
//! against a from-scratch reference: every flow's path re-resolved
//! through the current FIBs (`resolve_path`) and the whole allocation
//! recomputed by the retained reference allocator (`max_min_keyed`).
//! Paths must match exactly, rates and link loads within 1e-9 (they
//! are in fact bit-equal), and same-seed runs must be byte-identical.

use fib_igp::time::Timestamp;
use fib_igp::types::{Metric, Prefix, RouterId};
use fib_netsim::events::Event;
use fib_netsim::fib::{resolve_path, Fib};
use fib_netsim::flow::{FlowId, FlowSpec};
use fib_netsim::fluid::max_min_keyed;
use fib_netsim::link::{LinkInfo, LinkKey, LinkSpec};
use fib_netsim::sim::{Sim, SimConfig};
use proptest::prelude::*;
use std::collections::BTreeMap;

fn r(n: u32) -> RouterId {
    RouterId(n)
}

/// Allocate an id and schedule a typed flow start (the sequence the
/// old `schedule_flow` convenience produced).
fn sched_flow(sim: &mut Sim, at: Timestamp, spec: FlowSpec) -> FlowId {
    let id = sim.new_flow_id();
    sim.schedule(at, Event::FlowStart { id, spec });
    id
}

/// One scripted action of a random scenario.
#[derive(Debug, Clone)]
enum Op {
    Start {
        at_ms: u64,
        src: u32,
        cap: Option<f64>,
    },
    StopNth {
        at_ms: u64,
        nth: usize,
    },
    CapNth {
        at_ms: u64,
        nth: usize,
        cap: Option<f64>,
    },
    FailLink {
        at_ms: u64,
        a: u32,
        b: u32,
    },
    RestoreLink {
        at_ms: u64,
        a: u32,
        b: u32,
    },
    SetCapacity {
        at_ms: u64,
        a: u32,
        b: u32,
        cap: f64,
    },
}

/// A random but always-connected world: a line backbone `1..=n` plus
/// chords, prefix at router `n`.
fn build_sim(n: u32, chords: &[(u32, u32, u32)], caps: &[f64]) -> Sim {
    let mut sim = Sim::new(SimConfig::default());
    for i in 1..=n {
        sim.add_router(r(i));
    }
    let mut li = 0usize;
    let cap_of = |li: &mut usize| {
        let c = caps[*li % caps.len()];
        *li += 1;
        c
    };
    for i in 1..n {
        let c = cap_of(&mut li);
        sim.add_link(LinkSpec::new(r(i), r(i + 1), Metric(1), c));
    }
    for (a, b, m) in chords {
        let (a, b) = (a % n + 1, b % n + 1);
        if a == b {
            continue;
        }
        // Skip duplicates of backbone or earlier chords (the sim
        // supports only one link per router pair).
        if a.abs_diff(b) == 1 {
            continue;
        }
        let c = cap_of(&mut li);
        if sim.ctx().ifindex_for(r(a), r(b)).is_none() {
            sim.add_link(LinkSpec::new(r(a), r(b), Metric(1 + m % 4), c));
        }
    }
    sim.announce_prefix(r(n), Prefix::net24(1));
    sim
}

/// Schedule the ops, run to each checkpoint, and verify the live
/// incremental state against the from-scratch reference.
fn run_and_verify(n: u32, chords: &[(u32, u32, u32)], caps: &[f64], ops: &[Op]) -> String {
    let mut sim = build_sim(n, chords, caps);
    let mut flow_ids = Vec::new();
    let base = 12_000u64; // after IGP convergence
    for op in ops {
        match *op {
            Op::Start { at_ms, src, cap } => {
                let mut spec = FlowSpec::new(r(src % n + 1), Prefix::net24(1));
                spec.cap = cap;
                flow_ids.push(sched_flow(
                    &mut sim,
                    Timestamp::from_millis(base + at_ms),
                    spec,
                ));
            }
            Op::StopNth { at_ms, nth } => {
                if !flow_ids.is_empty() {
                    let id = flow_ids[nth % flow_ids.len()];
                    sim.schedule(Timestamp::from_millis(base + at_ms), Event::FlowStop { id });
                }
            }
            Op::CapNth { at_ms, nth, cap } => {
                if !flow_ids.is_empty() {
                    let id = flow_ids[nth % flow_ids.len()];
                    sim.schedule(
                        Timestamp::from_millis(base + at_ms),
                        Event::FlowCap { id, cap },
                    );
                }
            }
            Op::FailLink { at_ms, a, b } => {
                sim.schedule(
                    Timestamp::from_millis(base + at_ms),
                    Event::LinkAdmin {
                        a: r(a % n + 1),
                        b: r(b % n + 1),
                        up: false,
                    },
                );
            }
            Op::RestoreLink { at_ms, a, b } => {
                sim.schedule(
                    Timestamp::from_millis(base + at_ms),
                    Event::LinkAdmin {
                        a: r(a % n + 1),
                        b: r(b % n + 1),
                        up: true,
                    },
                );
            }
            Op::SetCapacity { at_ms, a, b, cap } => {
                sim.schedule(
                    Timestamp::from_millis(base + at_ms),
                    Event::LinkCapacity {
                        a: r(a % n + 1),
                        b: r(b % n + 1),
                        capacity: cap,
                    },
                );
            }
        }
    }
    sim.sample_link("probe", r(1), r(2));
    sim.start();

    let mut fingerprint = String::new();
    // Checkpoints: before the script, mid-script, after every event
    // has fired, and after extra convergence time.
    for at_ms in [11_000u64, 14_000, 17_000, 20_000, 26_000] {
        sim.run_until(Timestamp::from_millis(at_ms));
        verify_against_reference(&mut sim);
        for f in sim.flows() {
            fingerprint.push_str(&format!(
                "{}:{}:{:x};",
                f.id,
                f.path.as_ref().map(|p| p.len()).unwrap_or(0),
                f.rate.to_bits()
            ));
        }
        fingerprint.push('|');
    }
    fingerprint.push_str(&sim.recorder().to_csv());
    fingerprint
}

/// The heart of the property: cached paths and rates must equal a
/// from-scratch recompute of the entire data plane.
fn verify_against_reference(sim: &mut Sim) {
    // Reference path resolution over cloned FIBs.
    let routers: Vec<RouterId> = sim.ctx().routers().collect();
    let mut fibs: BTreeMap<RouterId, Fib> = BTreeMap::new();
    for router in routers {
        if let Some(f) = sim.fib(router) {
            fibs.insert(router, f.clone());
        }
    }
    let links: Vec<LinkInfo> = sim.ctx().links().collect();
    let up: BTreeMap<LinkKey, bool> = links.iter().map(|l| (l.key, l.up)).collect();
    let capacities: BTreeMap<LinkKey, f64> = links
        .iter()
        .filter(|l| l.up)
        .map(|l| (l.key, l.capacity))
        .collect();

    let flows: Vec<_> = sim.flows().cloned().collect();
    let mut routed: Vec<(Vec<LinkKey>, Option<f64>)> = Vec::new();
    let mut routed_rates: Vec<f64> = Vec::new();
    for f in &flows {
        let reference = match resolve_path(&fibs, &f.key) {
            Ok(p) if p.iter().all(|l| up.get(l).copied().unwrap_or(false)) => Some(p),
            _ => None,
        };
        assert_eq!(
            reference, f.path,
            "cached path of {} diverges from full recompute",
            f.id
        );
        if let Some(p) = reference {
            routed.push((p, f.cap));
            routed_rates.push(f.rate);
        } else {
            assert_eq!(f.rate, 0.0, "pathless flow {} has a rate", f.id);
        }
    }
    let (ref_rates, ref_loads) = max_min_keyed(&capacities, &routed);
    for (i, (got, want)) in routed_rates.iter().zip(ref_rates.iter()).enumerate() {
        assert!(
            (got - want).abs() <= 1e-9,
            "rate of routed flow #{i} diverges: {got} vs {want}"
        );
    }
    for (key, want) in &ref_loads {
        let got = sim.ctx().link_rate(*key).unwrap_or(0.0);
        assert!(
            (got - want).abs() <= 1e-9,
            "load of {key} diverges: {got} vs {want}"
        );
    }
}

fn op_strategy() -> impl Strategy<Value = Op> {
    prop_oneof![
        (0u64..12_000, 0u32..16, proptest::option::of(1e4f64..2e5))
            .prop_map(|(at_ms, src, cap)| Op::Start { at_ms, src, cap }),
        (2_000u64..12_000, 0usize..16).prop_map(|(at_ms, nth)| Op::StopNth { at_ms, nth }),
        (
            2_000u64..12_000,
            0usize..16,
            proptest::option::of(1e4f64..2e5)
        )
            .prop_map(|(at_ms, nth, cap)| Op::CapNth { at_ms, nth, cap }),
        (1_000u64..8_000, 0u32..16, 0u32..16).prop_map(|(at_ms, a, b)| Op::FailLink {
            at_ms,
            a,
            b
        }),
        (8_000u64..12_000, 0u32..16, 0u32..16).prop_map(|(at_ms, a, b)| Op::RestoreLink {
            at_ms,
            a,
            b
        }),
        (1_000u64..12_000, 0u32..16, 0u32..16, 1e5f64..2e6)
            .prop_map(|(at_ms, a, b, cap)| Op::SetCapacity { at_ms, a, b, cap }),
    ]
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(24))]

    /// Random event sequences: the incremental engine stays exactly
    /// equivalent to full recompute at every checkpoint, and the whole
    /// run is byte-deterministic per seed.
    #[test]
    fn prop_incremental_equals_full_recompute(
        n in 4u32..7,
        chords in proptest::collection::vec((0u32..16, 0u32..16, 0u32..8), 0..5),
        caps in proptest::collection::vec(2e5f64..2e6, 1..4),
        ops in proptest::collection::vec(op_strategy(), 1..14),
    ) {
        let a = run_and_verify(n, &chords, &caps, &ops);
        let b = run_and_verify(n, &chords, &caps, &ops);
        prop_assert_eq!(a, b);
    }
}
