//! Deterministic ECMP flow hashing.
//!
//! Routers hash a flow key over their ECMP next-hop slots. Two
//! properties matter for the reproduction:
//!
//! * **per-router independence** — real routers perturb the hash with a
//!   router-specific seed so consecutive hops don't correlate (the
//!   classic ECMP polarization problem); we mix the router id in;
//! * **slot granularity** — uneven Fibbing splits appear because the
//!   same next-hop can occupy several slots (distinct forwarding
//!   addresses). The hash picks a *slot*; the slot maps to a gateway.

use fib_igp::types::{Prefix, RouterId};

/// Identity of one transport flow (the simulator's 5-tuple stand-in).
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub struct FlowKey {
    /// Ingress router of the flow.
    pub src: RouterId,
    /// Destination prefix.
    pub dst: Prefix,
    /// Flow discriminator (models src/dst ports).
    pub id: u64,
}

const FNV_OFFSET: u64 = 0xcbf2_9ce4_8422_2325;
const FNV_PRIME: u64 = 0x0000_0100_0000_01b3;

/// FNV-1a over a byte slice.
fn fnv1a(init: u64, bytes: &[u8]) -> u64 {
    let mut h = init;
    for &b in bytes {
        h ^= u64::from(b);
        h = h.wrapping_mul(FNV_PRIME);
    }
    h
}

/// Hash a flow at a router into one of `slots` ECMP slots.
///
/// Panics if `slots == 0` (a router never hashes over an empty
/// next-hop set — that is a forwarding bug upstream).
pub fn slot_for(router: RouterId, flow: &FlowKey, slots: usize) -> usize {
    assert!(slots > 0, "ECMP hash over zero slots");
    let mut h = fnv1a(FNV_OFFSET, &router.0.to_be_bytes());
    h = fnv1a(h, &flow.src.0.to_be_bytes());
    h = fnv1a(h, &flow.dst.addr().to_be_bytes());
    h = fnv1a(h, &[flow.dst.len()]);
    h = fnv1a(h, &flow.id.to_be_bytes());
    (h % slots as u64) as usize
}

#[cfg(test)]
mod tests {
    use super::*;

    fn key(id: u64) -> FlowKey {
        FlowKey {
            src: RouterId(1),
            dst: Prefix::net24(1),
            id,
        }
    }

    #[test]
    fn deterministic() {
        let a = slot_for(RouterId(2), &key(7), 3);
        let b = slot_for(RouterId(2), &key(7), 3);
        assert_eq!(a, b);
    }

    #[test]
    fn routers_decorrelate() {
        // The same flow set must not map identically at two routers
        // (anti-polarization). With 64 flows over 2 slots the chance of
        // identical mappings by luck is 2^-64.
        let flows: Vec<FlowKey> = (0..64).map(key).collect();
        let at_r2: Vec<usize> = flows.iter().map(|f| slot_for(RouterId(2), f, 2)).collect();
        let at_r3: Vec<usize> = flows.iter().map(|f| slot_for(RouterId(3), f, 2)).collect();
        assert_ne!(at_r2, at_r3);
    }

    #[test]
    fn dispersion_is_roughly_uniform() {
        let slots = 3;
        let mut counts = vec![0usize; slots];
        for id in 0..3000 {
            counts[slot_for(RouterId(5), &key(id), slots)] += 1;
        }
        for c in &counts {
            // Expect ~1000 each; allow ±15%.
            assert!(
                (850..=1150).contains(c),
                "skewed ECMP dispersion: {counts:?}"
            );
        }
    }

    #[test]
    #[should_panic(expected = "zero slots")]
    fn zero_slots_panics() {
        let _ = slot_for(RouterId(1), &key(0), 0);
    }
}
