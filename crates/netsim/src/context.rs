//! The typed world handle.
//!
//! [`SimContext`] replaces the old `Sim::api() -> &mut dyn SimApi`
//! object-safety indirection with a concrete handle carrying typed
//! accessors: components receive `&mut SimContext` during dispatch,
//! and host code obtains the same handle between runs via
//! [`crate::sim::Sim::ctx`]. Reads that used to return snapshot
//! `Vec`s ([`routers`](SimContext::routers),
//! [`links`](SimContext::links), [`flows`](SimContext::flows)) are
//! iterators over the arenas; scheduling goes through the single typed
//! [`schedule`](SimContext::schedule) path and returns a cancellable
//! [`EventId`].

use crate::events::Event;
use crate::flow::{Flow, FlowId, FlowSpec};
use crate::link::{LinkInfo, LinkKey};
use crate::sim::Core;
use fib_igp::error::InstanceError;
use fib_igp::time::Timestamp;
use fib_igp::topology::Topology;
use fib_igp::types::{FwAddr, Metric, Prefix, RouterId};
use fib_sim_kernel::EventId;
use fib_telemetry::mib::{Oid, Value};

/// Everything a component (or host code between runs) may do to the
/// simulated world.
pub struct SimContext<'a> {
    pub(crate) core: &'a mut Core,
}

impl SimContext<'_> {
    /// Current simulation time.
    pub fn now(&self) -> Timestamp {
        self.core.now
    }

    /// All real routers (controller speakers included), ascending.
    pub fn routers(&self) -> impl Iterator<Item = RouterId> + '_ {
        self.core.router_slot.keys().copied()
    }

    /// All directed links with provisioning data (and the current
    /// offered rate), in key order.
    pub fn links(&self) -> impl Iterator<Item = LinkInfo> + '_ {
        // The IGP cost is provisioning data (the operator configured
        // it), so it is recorded on the link itself at creation time —
        // no LSDB consultation, no per-link topology materialization.
        self.core.link_idx.iter().map(|(k, &ix)| {
            let r = &self.core.link_recs[ix as usize];
            LinkInfo {
                key: *k,
                capacity: r.state.capacity,
                cost: r.cost,
                delay: r.state.delay,
                up: r.state.up,
                rate: r.state.rate,
            }
        })
    }

    /// Which router announces each prefix (static provisioning view).
    pub fn prefix_owners(&self) -> &[(Prefix, RouterId)] {
        &self.core.prefix_owners
    }

    /// The topology as learned by `speaker`'s LSDB (what a controller
    /// actually knows — including every currently installed lie).
    pub fn topology_view(&self, speaker: RouterId) -> Option<Topology> {
        let slot = *self.core.router_slot.get(&speaker)?;
        Some(self.core.instances[slot as usize].lsdb().to_topology())
    }

    /// SNMP GET against a router's agent (counts as management
    /// traffic).
    pub fn snmp_get(&mut self, router: RouterId, oid: &Oid) -> Option<Value> {
        self.core.stats.snmp_ops += 1;
        let slot = *self.core.router_slot.get(&router)?;
        self.core.agents[slot as usize].get(oid)
    }

    /// SNMP WALK under an OID prefix.
    pub fn snmp_walk(&mut self, router: RouterId, prefix: &Oid) -> Vec<(Oid, Value)> {
        self.core.stats.snmp_ops += 1;
        match self.core.router_slot.get(&router) {
            Some(&slot) => self.core.agents[slot as usize].walk(prefix),
            None => Vec::new(),
        }
    }

    /// The SNMP ifIndex of the interface on `from` facing `to`.
    pub fn ifindex_for(&self, from: RouterId, to: RouterId) -> Option<u32> {
        self.core
            .iface_to_link
            .iter()
            .find(|((r, _), &ix)| *r == from && self.core.link_recs[ix as usize].state.key.to == to)
            .map(|((_, i), _)| u32::from(i.0) + 1)
    }

    /// Inject a lie through `speaker`'s protocol instance.
    #[allow(clippy::too_many_arguments)]
    pub fn inject_fake(
        &mut self,
        speaker: RouterId,
        fake: RouterId,
        attach: RouterId,
        attach_metric: Metric,
        prefix: Prefix,
        prefix_metric: Metric,
        fw: FwAddr,
    ) -> Result<(), InstanceError> {
        let slot = *self
            .core
            .router_slot
            .get(&speaker)
            .ok_or(InstanceError::UnknownIface(u16::MAX))?;
        let r = self.core.instances[slot as usize].inject_fake(
            fake,
            attach,
            attach_metric,
            prefix,
            prefix_metric,
            fw,
        );
        self.core.touch(slot);
        r
    }

    /// Retract a lie previously injected through `speaker`.
    pub fn retract_fake(&mut self, speaker: RouterId, fake: RouterId) -> Result<(), InstanceError> {
        let slot = *self
            .core
            .router_slot
            .get(&speaker)
            .ok_or(InstanceError::UnknownIface(u16::MAX))?;
        let r = self.core.instances[slot as usize].retract_fake(fake);
        self.core.touch(slot);
        r
    }

    /// Start a flow now; returns its id.
    pub fn start_flow(&mut self, spec: FlowSpec) -> FlowId {
        let id = self.core.alloc_flow_id();
        self.core.start_flow_with_id(id, spec);
        id
    }

    /// Stop a flow; `false` if unknown.
    pub fn stop_flow(&mut self, id: FlowId) -> bool {
        self.core.stop_flow_inner(id)
    }

    /// Change a flow's application rate cap; `false` if unknown.
    pub fn set_flow_cap(&mut self, id: FlowId, cap: Option<f64>) -> bool {
        self.core.set_flow_cap_inner(id, cap)
    }

    /// A live flow by id.
    pub fn flow(&self, id: FlowId) -> Option<&Flow> {
        self.core.flow(id)
    }

    /// Iterate all live flows in id order (no snapshot allocation).
    pub fn flows(&self) -> impl Iterator<Item = &Flow> + '_ {
        self.core.flow_recs.iter().flatten()
    }

    /// Current allocated rate of a flow (bytes/s).
    pub fn flow_rate(&self, id: FlowId) -> Option<f64> {
        self.core.flow(id).map(|f| f.rate)
    }

    /// Total bytes delivered by a flow so far.
    pub fn flow_delivered(&self, id: FlowId) -> Option<f64> {
        self.core.flow(id).map(|f| f.delivered)
    }

    /// Current path of a flow (directed links), if routed.
    pub fn flow_path(&self, id: FlowId) -> Option<&[LinkKey]> {
        self.core.flow(id).and_then(|f| f.path.as_deref())
    }

    /// Current offered rate on a directed link (bytes/s).
    pub fn link_rate(&self, key: LinkKey) -> Option<f64> {
        self.core
            .link_idx
            .get(&key)
            .map(|&ix| self.core.link_recs[ix as usize].state.rate)
    }

    /// Administratively fail a symmetric link (both directions) now.
    ///
    /// With carrier detection enabled the IGP instances at both ends
    /// are notified immediately and re-converge around the failure;
    /// data flows re-resolve their paths at the next settlement.
    /// Returns `false` if no such link exists.
    pub fn fail_link(&mut self, a: RouterId, b: RouterId) -> bool {
        self.core.set_link_up(a, b, false)
    }

    /// Restore a previously failed symmetric link. Counterpart of
    /// [`SimContext::fail_link`]; returns `false` if no such link
    /// exists.
    pub fn restore_link(&mut self, a: RouterId, b: RouterId) -> bool {
        self.core.set_link_up(a, b, true)
    }

    /// Change a symmetric link's per-direction capacity (bytes/s) now.
    ///
    /// The fluid allocation is recomputed at the next settlement; the
    /// IGP is *not* involved (capacity is not part of the link-state
    /// database). Returns `false` if no such link exists or `capacity`
    /// is not positive.
    pub fn set_link_capacity(&mut self, a: RouterId, b: RouterId, capacity: f64) -> bool {
        self.core.set_link_capacity_inner(a, b, capacity)
    }

    /// A router's installed ECMP next-hops toward a prefix (empty if
    /// none — used by verification and experiments, not by the
    /// controller's decision logic).
    pub fn fib_nexthops(&self, router: RouterId, prefix: Prefix) -> Vec<FwAddr> {
        match self.core.fibs.get(&router).and_then(|f| f.lookup(prefix)) {
            Some(crate::fib::FibEntry::Via(v)) => v.clone(),
            _ => Vec::new(),
        }
    }

    /// Append a point to a named trace series at the current time.
    pub fn record(&mut self, series: &str, value: f64) {
        let now = self.core.now;
        self.core.recorder.record(series, now, value);
    }

    /// Allocate a fresh flow id for an [`Event::FlowStart`] schedule.
    pub fn new_flow_id(&mut self) -> FlowId {
        self.core.alloc_flow_id()
    }

    /// Schedule a typed event; returns its cancellable id.
    pub fn schedule(&mut self, at: Timestamp, ev: Event) -> EventId {
        self.core.schedule_event(at, ev)
    }

    /// Cancel a scheduled event (`true` iff it was still pending).
    pub fn cancel(&mut self, id: EventId) -> bool {
        self.core.queue.cancel(id)
    }
}
