//! Dirty-set tracking for incremental data-plane recompute.
//!
//! The simulator used to re-resolve *every* flow's path and rebuild
//! the whole fluid allocation at the end of every event batch — cost
//! `O(flows × events)` no matter how small the change. This module
//! holds the two pieces that replace the old `dirty: bool`:
//!
//! * [`FlowIndex`] — the prefix → flows reverse index (the data-plane
//!   sibling of [`crate::fib`]): when a router's FIB download changes
//!   the entry for a prefix, only flows destined to a matching prefix
//!   can be affected, and the index finds them without scanning the
//!   flow table.
//! * [`DirtySet`] — the accumulated invalidations of one event batch:
//!   the set of flows whose cached path must be re-resolved, plus a
//!   flag that the allocation must be revisited at all (capacity and
//!   cap changes move rates without moving paths).
//!
//! Invalidation triggers (who marks what) live in `sim.rs`; the
//! correctness contract — a flow not marked dirty resolves to exactly
//! the path it is caching — is proptested against a full recompute in
//! `tests/incremental_prop.rs`.

use crate::flow::FlowId;
use fib_igp::types::Prefix;
use std::collections::{BTreeMap, BTreeSet};

/// Reverse index from destination prefix to the flows targeting it.
#[derive(Debug, Default)]
pub struct FlowIndex {
    by_prefix: BTreeMap<Prefix, BTreeSet<FlowId>>,
}

impl FlowIndex {
    /// An empty index.
    pub fn new() -> FlowIndex {
        FlowIndex::default()
    }

    /// Register a flow under its destination prefix.
    pub fn insert(&mut self, dst: Prefix, id: FlowId) {
        self.by_prefix.entry(dst).or_default().insert(id);
    }

    /// Remove a flow (no-op if absent).
    pub fn remove(&mut self, dst: Prefix, id: FlowId) {
        if let Some(set) = self.by_prefix.get_mut(&dst) {
            set.remove(&id);
            if set.is_empty() {
                self.by_prefix.remove(&dst);
            }
        }
    }

    /// Flows whose destination lookup can be altered by a FIB entry
    /// change for `changed`: their dst equals it or lies under it
    /// (longest-prefix match consults exactly the containing entries).
    pub fn affected_by(&self, changed: Prefix) -> impl Iterator<Item = FlowId> + '_ {
        self.by_prefix
            .iter()
            .filter(move |(dst, _)| **dst == changed || changed.contains(**dst))
            .flat_map(|(_, ids)| ids.iter().copied())
    }
}

/// The invalidations accumulated since the last reallocation.
#[derive(Debug, Default)]
pub struct DirtySet {
    /// Flows whose cached path must be re-resolved.
    paths: BTreeSet<FlowId>,
    /// Anything at all changed (paths, caps, capacities): the
    /// allocator must be consulted at the end of the batch. Mirrors
    /// the old `dirty: bool` exactly, so reallocation happens at the
    /// same instants as before the refactor.
    realloc: bool,
}

impl DirtySet {
    /// A clean set.
    pub fn new() -> DirtySet {
        DirtySet::default()
    }

    /// Mark one flow's path stale (implies a reallocation).
    pub fn mark_flow(&mut self, id: FlowId) {
        self.paths.insert(id);
        self.realloc = true;
    }

    /// Drop a flow from the set (it stopped; nothing to re-resolve).
    pub fn forget_flow(&mut self, id: FlowId) {
        self.paths.remove(&id);
    }

    /// Mark that rates must be recomputed without touching any path.
    pub fn mark_realloc(&mut self) {
        self.realloc = true;
    }

    /// Does the batch need a reallocation pass?
    pub fn needs_realloc(&self) -> bool {
        self.realloc
    }

    /// Take the stale-flow set and reset the whole dirty state.
    pub fn take(&mut self) -> BTreeSet<FlowId> {
        self.realloc = false;
        std::mem::take(&mut self.paths)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn id(n: u64) -> FlowId {
        FlowId(n)
    }

    #[test]
    fn index_tracks_membership() {
        let mut ix = FlowIndex::new();
        let p = Prefix::net24(1);
        ix.insert(p, id(1));
        ix.insert(p, id(2));
        ix.insert(Prefix::net24(2), id(3));
        let hits: Vec<FlowId> = ix.affected_by(p).collect();
        assert_eq!(hits, vec![id(1), id(2)]);
        ix.remove(p, id(1));
        let hits: Vec<FlowId> = ix.affected_by(p).collect();
        assert_eq!(hits, vec![id(2)]);
        ix.remove(p, id(9)); // unknown: no-op
    }

    #[test]
    fn index_matches_containing_prefixes() {
        let mut ix = FlowIndex::new();
        let narrow = Prefix::net24(1);
        let wide = Prefix::new(narrow.addr(), 8);
        ix.insert(narrow, id(1));
        // A change to a containing (wider) entry can redirect the
        // narrow lookup when no exact entry exists.
        let hits: Vec<FlowId> = ix.affected_by(wide).collect();
        assert_eq!(hits, vec![id(1)]);
        // A change to an unrelated prefix touches nothing.
        assert_eq!(ix.affected_by(Prefix::net24(9)).count(), 0);
    }

    #[test]
    fn dirty_set_accumulates_and_resets() {
        let mut d = DirtySet::new();
        assert!(!d.needs_realloc());
        d.mark_realloc();
        assert!(d.needs_realloc());
        assert!(d.take().is_empty());
        assert!(!d.needs_realloc());
        d.mark_flow(id(4));
        d.mark_flow(id(5));
        d.forget_flow(id(4));
        assert!(d.needs_realloc());
        let taken = d.take();
        assert_eq!(taken.into_iter().collect::<Vec<_>>(), vec![id(5)]);
        assert!(!d.needs_realloc());
    }
}
