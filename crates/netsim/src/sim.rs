//! The co-simulation world.
//!
//! [`Sim`] binds everything together in one deterministic event loop:
//!
//! * an IGP [`Instance`] per router,
//!   exchanging real (encoded, checksummed) protocol packets over the
//!   simulated links with propagation delay;
//! * FIB downloads from converged instances into data-plane [`Fib`]s;
//! * fluid traffic: flows resolve their paths through the FIBs (per
//!   hop ECMP hashing) and share link capacity max-min fairly; link
//!   and flow counters integrate rates between events;
//! * SNMP agents per router whose ifTable counters are fed by the data
//!   and control planes alike;
//! * pluggable [`App`]s (the Fibbing controller, workload drivers)
//!   receiving ticks and flow notifications.
//!
//! Any change (FIB update, flow churn, link event) marks the world
//! dirty; at the end of each event batch the allocator settles paths
//! and rates, so traces reflect transients like ECMP shifts
//! mid-convergence.
//!
//! The settling is *incremental* (see [`crate::dirty`]): each change
//! marks exactly the flows it can reroute — the started/stopped flow,
//! flows crossing a failed or restored link, flows destined to a
//! prefix whose FIB entry changed on a router their path visits — and
//! the reallocation pass re-resolves only those, feeding the reusable
//! [`crate::fluid::Allocator`]. [`SimStats`] counts resolved vs
//! skipped paths and allocator fills vs skips so a regression back to
//! global recompute is visible as data, not just as wall time.

use crate::api::{App, SimApi};
use crate::dirty::{DirtySet, FlowIndex};
use crate::ecmp::FlowKey;
use crate::event::EventQueue;
use crate::fib::{resolve_path, Fib};
use crate::flow::{Flow, FlowId, FlowInfo, FlowSpec};
use crate::fluid::Allocator;
use crate::link::{LinkInfo, LinkKey, LinkSpec, LinkState};
use crate::trace::Recorder;
use bytes::Bytes;
use fib_igp::error::InstanceError;
use fib_igp::instance::{Config as IgpConfig, Instance, Output};
use fib_igp::time::{Dur, Timestamp};
use fib_igp::topology::Topology;
use fib_igp::types::{FwAddr, IfaceId, Metric, Prefix, RouterId};
use fib_telemetry::counters::{CounterWidth, IfaceCounters};
use fib_telemetry::mib::{Agent, Oid, Value};
use std::collections::BTreeMap;

/// Simulator configuration.
#[derive(Debug, Clone)]
pub struct SimConfig {
    /// IGP hello interval.
    pub hello_interval: Dur,
    /// IGP dead interval.
    pub dead_interval: Dur,
    /// IGP retransmit interval.
    pub rxmt_interval: Dur,
    /// IGP SPF delay.
    pub spf_delay: Dur,
    /// Trace sampling period.
    pub sample_interval: Dur,
    /// SNMP counter width exposed by agents.
    pub counter_width: CounterWidth,
    /// Immediate carrier-loss detection on link-down events.
    pub carrier_detect: bool,
}

impl Default for SimConfig {
    fn default() -> Self {
        SimConfig {
            hello_interval: Dur::from_secs(1),
            dead_interval: Dur::from_secs(4),
            rxmt_interval: Dur::from_secs(1),
            spf_delay: Dur::from_millis(50),
            sample_interval: Dur::from_millis(100),
            counter_width: CounterWidth::C64,
            carrier_detect: true,
        }
    }
}

/// Aggregate world statistics.
#[derive(Debug, Clone, Copy, Default)]
pub struct SimStats {
    /// Control-plane packets delivered.
    pub ctrl_pkts: u64,
    /// Control-plane bytes delivered.
    pub ctrl_bytes: u64,
    /// Control packets dropped on down links.
    pub ctrl_dropped: u64,
    /// Fluid re-allocations performed.
    pub reallocs: u64,
    /// Simulation events dispatched (packets, flow churn, ticks,
    /// samples, link scripts).
    pub events: u64,
    /// Flow paths re-resolved because the dirty set named them.
    pub paths_resolved: u64,
    /// Flow paths kept from cache across reallocations (what the old
    /// global recompute would have re-resolved; `paths_resolved +
    /// paths_skipped` is exactly the pre-refactor resolution count).
    pub paths_skipped: u64,
    /// Allocation fill passes actually executed.
    pub alloc_fills: u64,
    /// Allocations answered from the unchanged-input cache.
    pub alloc_skips: u64,
    /// Full Dijkstra runs across all IGP instances.
    pub spf_full_runs: u64,
    /// Route-phase-only (partial) SPF runs across all IGP instances
    /// (lie/prefix churn that left the real graph untouched).
    pub spf_partial_runs: u64,
    /// SNMP operations served.
    pub snmp_ops: u64,
    /// Dirty-flow re-resolutions that failed (flow found temporarily
    /// unroutable; counted per resolution attempt, not per realloc).
    pub unroutable: u64,
    /// Integrated flow-seconds spent without a usable path (1 flow
    /// stranded for 2 s contributes 2.0) — the scenario engine's
    /// blackout metric.
    pub unroutable_flow_secs: f64,
}

impl SimStats {
    /// The integer machinery counters as a named
    /// [`fib_telemetry::rollup::Rollup`], so multi-run harnesses (the
    /// sweep engine) can merge per-run snapshots into fleet totals.
    /// `unroutable_flow_secs` is a float metric, not a counter, and is
    /// deliberately excluded.
    pub fn rollup(&self) -> fib_telemetry::rollup::Rollup {
        let mut r = fib_telemetry::rollup::Rollup::new();
        r.add("alloc_fills", self.alloc_fills);
        r.add("alloc_skips", self.alloc_skips);
        r.add("ctrl_bytes", self.ctrl_bytes);
        r.add("ctrl_dropped", self.ctrl_dropped);
        r.add("ctrl_pkts", self.ctrl_pkts);
        r.add("events", self.events);
        r.add("paths_resolved", self.paths_resolved);
        r.add("paths_skipped", self.paths_skipped);
        r.add("reallocs", self.reallocs);
        r.add("snmp_ops", self.snmp_ops);
        r.add("spf_full_runs", self.spf_full_runs);
        r.add("spf_partial_runs", self.spf_partial_runs);
        r.add("unroutable_resolutions", self.unroutable);
        r
    }
}

#[derive(Debug)]
struct LinkRec {
    state: LinkState,
    /// Interface on `state.key.from` transmitting onto this direction.
    tx_iface: IfaceId,
    /// Interface on `state.key.to` receiving from this direction.
    rx_iface: IfaceId,
    /// Provisioned IGP cost (from the link spec — the operator's view,
    /// served by [`SimApi::links`] without consulting any LSDB).
    cost: Metric,
    /// Fractional byte carry for counter integration.
    carry: f64,
}

enum Ev {
    Pkt {
        to: RouterId,
        iface: IfaceId,
        data: Bytes,
    },
    FlowStart(FlowId, FlowSpec),
    FlowStop(FlowId),
    SetFlowCap(FlowId, Option<f64>),
    AppTick(usize),
    Sample,
    LinkAdmin {
        a: RouterId,
        b: RouterId,
        up: bool,
    },
    LinkCap {
        a: RouterId,
        b: RouterId,
        capacity: f64,
    },
}

/// Everything except the apps (so apps can borrow the world mutably).
pub struct Core {
    cfg: SimConfig,
    now: Timestamp,
    queue: EventQueue<Ev>,
    instances: BTreeMap<RouterId, Instance>,
    fibs: BTreeMap<RouterId, Fib>,
    links: BTreeMap<LinkKey, LinkRec>,
    iface_to_link: BTreeMap<(RouterId, IfaceId), LinkKey>,
    agents: BTreeMap<RouterId, Agent>,
    prefix_owners: Vec<(Prefix, RouterId)>,
    flows: BTreeMap<FlowId, Flow>,
    flow_index: FlowIndex,
    alloc: Allocator<LinkKey>,
    next_flow_id: u64,
    last_accrue: Timestamp,
    dirty: DirtySet,
    started: bool,
    pending_flow_events: Vec<(bool, FlowInfo)>, // (started?, info)
    pending_ticks: Vec<usize>,
    recorder: Recorder,
    sampled: BTreeMap<String, LinkKey>,
    /// Aggregate statistics.
    pub stats: SimStats,
}

/// The simulator: the world plus its applications.
pub struct Sim {
    core: Core,
    apps: Vec<Box<dyn App>>,
    tick_intervals: Vec<Option<Dur>>,
}

impl Core {
    fn new(cfg: SimConfig) -> Core {
        Core {
            cfg,
            now: Timestamp::ZERO,
            queue: EventQueue::new(),
            instances: BTreeMap::new(),
            fibs: BTreeMap::new(),
            links: BTreeMap::new(),
            iface_to_link: BTreeMap::new(),
            agents: BTreeMap::new(),
            prefix_owners: Vec::new(),
            flows: BTreeMap::new(),
            flow_index: FlowIndex::new(),
            alloc: Allocator::new(),
            next_flow_id: 0,
            last_accrue: Timestamp::ZERO,
            dirty: DirtySet::new(),
            started: false,
            pending_flow_events: Vec::new(),
            pending_ticks: Vec::new(),
            recorder: Recorder::new(),
            sampled: BTreeMap::new(),
            stats: SimStats::default(),
        }
    }

    fn next_iface(&self, r: RouterId) -> IfaceId {
        let n = self
            .iface_to_link
            .keys()
            .filter(|(rid, _)| *rid == r)
            .count();
        IfaceId(n as u16)
    }

    fn add_router_inner(&mut self, id: RouterId, compute_routes: bool) {
        let mut cfg = IgpConfig::new(id);
        cfg.hello_interval = self.cfg.hello_interval;
        cfg.dead_interval = self.cfg.dead_interval;
        cfg.rxmt_interval = self.cfg.rxmt_interval;
        cfg.spf_delay = self.cfg.spf_delay;
        cfg.compute_routes = compute_routes;
        self.instances.insert(id, Instance::new(cfg));
        self.fibs.insert(id, Fib::new());
        self.agents.insert(id, Agent::new(format!("{id}")));
    }

    fn add_link_inner(&mut self, spec: LinkSpec) {
        let ia = self.next_iface(spec.a);
        // Register a's iface before computing b's (self-loops are not
        // supported; asserted here).
        assert_ne!(spec.a, spec.b, "self-loop links are not supported");
        let kab = LinkKey::new(spec.a, spec.b);
        self.iface_to_link.insert((spec.a, ia), kab);
        let ib = self.next_iface(spec.b);
        let kba = LinkKey::new(spec.b, spec.a);
        self.iface_to_link.insert((spec.b, ib), kba);

        self.instances
            .get_mut(&spec.a)
            .expect("add routers before links")
            .add_iface(ia, spec.cost);
        self.instances
            .get_mut(&spec.b)
            .expect("add routers before links")
            .add_iface(ib, spec.cost);

        self.links.insert(
            kab,
            LinkRec {
                state: LinkState {
                    key: kab,
                    capacity: spec.capacity,
                    delay: spec.delay,
                    up: true,
                    rate: 0.0,
                },
                tx_iface: ia,
                rx_iface: ib,
                cost: spec.cost,
                carry: 0.0,
            },
        );
        self.links.insert(
            kba,
            LinkRec {
                state: LinkState {
                    key: kba,
                    capacity: spec.capacity,
                    delay: spec.delay,
                    up: true,
                    rate: 0.0,
                },
                tx_iface: ib,
                rx_iface: ia,
                cost: spec.cost,
                carry: 0.0,
            },
        );

        // SNMP: one ifTable row per interface (ifIndex = iface + 1).
        let width = self.cfg.counter_width;
        self.agents
            .get_mut(&spec.a)
            .expect("agent exists")
            .add_iface(u32::from(ia.0) + 1, IfaceCounters::new(width));
        self.agents
            .get_mut(&spec.b)
            .expect("agent exists")
            .add_iface(u32::from(ib.0) + 1, IfaceCounters::new(width));
    }

    fn min_instance_timer(&self) -> Option<Timestamp> {
        self.instances.values().filter_map(|i| i.next_timer()).min()
    }

    /// Integrate rates into counters/deliveries from `last_accrue` to `t`.
    fn accrue_to(&mut self, t: Timestamp) {
        if t <= self.last_accrue {
            return;
        }
        let dt = (t - self.last_accrue).as_secs_f64();
        self.last_accrue = t;
        // Link counters.
        let mut updates: Vec<(RouterId, u32, RouterId, u32, u64)> = Vec::new();
        for rec in self.links.values_mut() {
            if rec.state.rate <= 0.0 {
                continue;
            }
            rec.carry += rec.state.rate * dt;
            let whole = rec.carry.floor();
            rec.carry -= whole;
            if whole > 0.0 {
                updates.push((
                    rec.state.key.from,
                    u32::from(rec.tx_iface.0) + 1,
                    rec.state.key.to,
                    u32::from(rec.rx_iface.0) + 1,
                    whole as u64,
                ));
            }
        }
        for (from, tx_idx, to, rx_idx, bytes) in updates {
            if let Some(c) = self
                .agents
                .get_mut(&from)
                .and_then(|a| a.counters_mut(tx_idx))
            {
                c.out_octets.add(bytes);
                c.out_pkts.add(bytes / 1500 + 1);
            }
            if let Some(c) = self
                .agents
                .get_mut(&to)
                .and_then(|a| a.counters_mut(rx_idx))
            {
                c.in_octets.add(bytes);
                c.in_pkts.add(bytes / 1500 + 1);
            }
        }
        // Flow deliveries.
        let mut stranded = 0usize;
        for f in self.flows.values_mut() {
            if f.rate > 0.0 {
                f.delivered += f.rate * dt;
            }
            if f.path.is_none() {
                stranded += 1;
            }
        }
        self.stats.unroutable_flow_secs += stranded as f64 * dt;
    }

    fn dispatch(&mut self, ev: Ev) {
        self.stats.events += 1;
        match ev {
            Ev::Pkt { to, iface, data } => {
                let len = data.len() as u64;
                // Account received control bytes.
                if let Some(key) = self.iface_to_link.get(&(to, iface)).copied() {
                    let rx_key = key.reversed();
                    if let Some(rec) = self.links.get(&rx_key) {
                        if !rec.state.up {
                            self.stats.ctrl_dropped += 1;
                            return;
                        }
                    }
                    let idx = u32::from(iface.0) + 1;
                    if let Some(c) = self.agents.get_mut(&to).and_then(|a| a.counters_mut(idx)) {
                        c.count_rx(len);
                    }
                }
                if let Some(inst) = self.instances.get_mut(&to) {
                    let _ = inst.handle_packet(iface, data, self.now);
                    self.stats.ctrl_pkts += 1;
                    self.stats.ctrl_bytes += len;
                }
            }
            Ev::FlowStart(id, spec) => {
                self.start_flow_with_id(id, spec);
            }
            Ev::FlowStop(id) => {
                self.stop_flow_inner(id);
            }
            Ev::SetFlowCap(id, cap) => {
                self.set_flow_cap_inner(id, cap);
            }
            Ev::AppTick(i) => {
                self.pending_ticks.push(i);
            }
            Ev::Sample => {
                let now = self.now;
                let points: Vec<(String, f64)> = self
                    .sampled
                    .iter()
                    .map(|(name, key)| {
                        let rate = self.links.get(key).map(|r| r.state.rate).unwrap_or(0.0);
                        (name.clone(), rate)
                    })
                    .collect();
                for (name, rate) in points {
                    self.recorder.record(&name, now, rate);
                }
                self.queue
                    .push(self.now + self.cfg.sample_interval, Ev::Sample);
            }
            Ev::LinkAdmin { a, b, up } => {
                self.set_link_up(a, b, up);
            }
            Ev::LinkCap { a, b, capacity } => {
                self.set_link_capacity_inner(a, b, capacity);
            }
        }
    }

    fn start_flow_with_id(&mut self, id: FlowId, spec: FlowSpec) {
        let key = FlowKey {
            src: spec.src,
            dst: spec.dst,
            id: spec.hash_id.unwrap_or(id.0),
        };
        let flow = Flow {
            id,
            key,
            cap: spec.cap,
            tag: spec.tag,
            started_at: self.now,
            rate: 0.0,
            path: None,
            delivered: 0.0,
        };
        let info = flow.info();
        self.flow_index.insert(key.dst, id);
        self.flows.insert(id, flow);
        self.dirty.mark_flow(id);
        self.pending_flow_events.push((true, info));
    }

    fn stop_flow_inner(&mut self, id: FlowId) -> bool {
        match self.flows.remove(&id) {
            Some(f) => {
                self.flow_index.remove(f.key.dst, id);
                self.dirty.forget_flow(id);
                self.dirty.mark_realloc();
                self.pending_flow_events.push((false, f.info()));
                true
            }
            None => false,
        }
    }

    fn set_flow_cap_inner(&mut self, id: FlowId, cap: Option<f64>) -> bool {
        match self.flows.get_mut(&id) {
            Some(f) => {
                if f.cap != cap {
                    f.cap = cap;
                    // A cap moves rates, never paths: no re-resolution.
                    self.dirty.mark_realloc();
                }
                true
            }
            None => false,
        }
    }

    fn set_link_up(&mut self, a: RouterId, b: RouterId, up: bool) -> bool {
        let mut found = false;
        let keys = [LinkKey::new(a, b), LinkKey::new(b, a)];
        for key in keys {
            if let Some(rec) = self.links.get_mut(&key) {
                rec.state.up = up;
                self.dirty.mark_realloc();
                found = true;
            }
        }
        if found {
            // Re-resolve flows whose cached path crosses the link, and
            // — on restore — every stranded flow: its FIB path may now
            // be usable again even before the IGP reacts.
            let dirty = &mut self.dirty;
            for f in self.flows.values() {
                match &f.path {
                    Some(p) if p.iter().any(|l| keys.contains(l)) => dirty.mark_flow(f.id),
                    None if up => dirty.mark_flow(f.id),
                    _ => {}
                }
            }
        }
        if found && self.cfg.carrier_detect {
            let pairs = [(a, b), (b, a)];
            for (r, peer) in pairs {
                let iface = self
                    .iface_to_link
                    .iter()
                    .find(|((rid, _), k)| *rid == r && k.to == peer)
                    .map(|((_, i), _)| *i);
                if let (Some(iface), Some(inst)) = (iface, self.instances.get_mut(&r)) {
                    let _ = inst.set_iface_enabled(iface, up, self.now);
                }
            }
        }
        found
    }

    fn set_link_capacity_inner(&mut self, a: RouterId, b: RouterId, capacity: f64) -> bool {
        if capacity <= 0.0 {
            return false;
        }
        let mut found = false;
        for key in [LinkKey::new(a, b), LinkKey::new(b, a)] {
            if let Some(rec) = self.links.get_mut(&key) {
                if rec.state.capacity != capacity {
                    rec.state.capacity = capacity;
                    // Capacity moves rates, never paths.
                    self.dirty.mark_realloc();
                }
                found = true;
            }
        }
        found
    }

    fn poll_instances(&mut self, t: Timestamp) {
        for inst in self.instances.values_mut() {
            if inst.next_timer().map(|d| d <= t).unwrap_or(false) {
                inst.poll_timers(t);
            }
        }
    }

    fn collect_outputs(&mut self) {
        let ids: Vec<RouterId> = self.instances.keys().copied().collect();
        let mut sends: Vec<(RouterId, IfaceId, Bytes)> = Vec::new();
        for id in ids {
            let inst = self.instances.get_mut(&id).expect("known id");
            for out in inst.drain_output() {
                match out {
                    Output::Send { iface, data } => sends.push((id, iface, data)),
                    Output::FibUpdate(table) => {
                        let changed = self.fibs.entry(id).or_default().install_diff(&table);
                        // The instance only emits on route-table change,
                        // so settle the allocation either way (pinned
                        // realloc instants); re-resolve exactly the
                        // flows this download can reroute.
                        self.dirty.mark_realloc();
                        self.invalidate_fib_change(id, &changed);
                    }
                    Output::NeighborChange { .. } => {}
                }
            }
        }
        for (from, iface, data) in sends {
            let Some(key) = self.iface_to_link.get(&(from, iface)).copied() else {
                self.stats.ctrl_dropped += 1;
                continue;
            };
            let Some(rec) = self.links.get(&key) else {
                self.stats.ctrl_dropped += 1;
                continue;
            };
            if !rec.state.up {
                self.stats.ctrl_dropped += 1;
                continue;
            }
            // Account transmitted control bytes.
            let idx = u32::from(rec.tx_iface.0) + 1;
            let len = data.len() as u64;
            let (to, rx_iface, delay) = (key.to, rec.rx_iface, rec.state.delay);
            if let Some(c) = self.agents.get_mut(&from).and_then(|a| a.counters_mut(idx)) {
                c.count_tx(len);
            }
            self.queue.push(
                self.now + delay,
                Ev::Pkt {
                    to,
                    iface: rx_iface,
                    data,
                },
            );
        }
    }

    /// Mark the flows a FIB download at `router` can actually reroute:
    /// destined to a changed prefix (via the reverse index) *and*
    /// either currently stranded or passing through `router` — a walk
    /// that never visits the router cannot change when only that
    /// router's table did.
    fn invalidate_fib_change(&mut self, router: RouterId, changed: &[Prefix]) {
        let dirty = &mut self.dirty;
        for p in changed {
            for id in self.flow_index.affected_by(*p) {
                let Some(f) = self.flows.get(&id) else {
                    continue;
                };
                let touched = match &f.path {
                    None => true,
                    Some(path) => f.key.src == router || path.iter().any(|l| l.to == router),
                };
                if touched {
                    dirty.mark_flow(id);
                }
            }
        }
    }

    /// Settle the data plane after an event batch: re-resolve exactly
    /// the dirty flows' paths, then hand the full routed set to the
    /// reusable allocator (which itself skips when nothing moved).
    fn reallocate(&mut self) {
        self.stats.reallocs += 1;
        let dirty_flows = self.dirty.take();
        let mut resolved = 0u64;
        for id in &dirty_flows {
            // A flow may have been marked and then stopped in the same
            // batch.
            let Some(key) = self.flows.get(id).map(|f| f.key) else {
                continue;
            };
            resolved += 1;
            match resolve_path(&self.fibs, &key) {
                Ok(path) => {
                    let usable = path
                        .iter()
                        .all(|l| self.links.get(l).map(|r| r.state.up).unwrap_or(false));
                    let f = self.flows.get_mut(id).expect("known flow");
                    if usable {
                        f.path = Some(path);
                    } else {
                        f.path = None;
                        self.stats.unroutable += 1;
                    }
                }
                Err(_) => {
                    self.flows.get_mut(id).expect("known flow").path = None;
                    self.stats.unroutable += 1;
                }
            }
        }
        self.stats.paths_resolved += resolved;
        self.stats.paths_skipped += self.flows.len() as u64 - resolved;
        // Allocation over up links only; flow inputs reference the
        // cached paths directly (no per-realloc clones).
        let capacities: BTreeMap<LinkKey, f64> = self
            .links
            .iter()
            .filter(|(_, r)| r.state.up)
            .map(|(k, r)| (*k, r.state.capacity))
            .collect();
        self.alloc.allocate(
            &capacities,
            self.flows
                .values()
                .filter_map(|f| f.path.as_deref().map(|p| (p, f.cap))),
        );
        let rates = self.alloc.rates();
        let mut next_rate = rates.iter().copied();
        for f in self.flows.values_mut() {
            f.rate = if f.path.is_some() {
                next_rate.next().expect("one rate per routed flow")
            } else {
                0.0
            };
        }
        for (k, rec) in self.links.iter_mut() {
            rec.state.rate = self.alloc.load(k);
        }
    }
}

impl SimApi for Core {
    fn now(&self) -> Timestamp {
        self.now
    }

    fn routers(&self) -> Vec<RouterId> {
        self.instances.keys().copied().collect()
    }

    fn links(&self) -> Vec<LinkInfo> {
        // The IGP cost is provisioning data (the operator configured
        // it), so it is recorded on the link itself at creation time —
        // no LSDB consultation, no per-link topology materialization.
        self.links
            .iter()
            .map(|(k, r)| LinkInfo {
                key: *k,
                capacity: r.state.capacity,
                cost: r.cost,
                delay: r.state.delay,
                up: r.state.up,
            })
            .collect()
    }

    fn prefix_owners(&self) -> Vec<(Prefix, RouterId)> {
        self.prefix_owners.clone()
    }

    fn topology_view(&self, speaker: RouterId) -> Option<Topology> {
        self.instances.get(&speaker).map(|i| i.lsdb().to_topology())
    }

    fn snmp_get(&mut self, router: RouterId, oid: &Oid) -> Option<Value> {
        self.stats.snmp_ops += 1;
        self.agents.get(&router)?.get(oid)
    }

    fn snmp_walk(&mut self, router: RouterId, prefix: &Oid) -> Vec<(Oid, Value)> {
        self.stats.snmp_ops += 1;
        self.agents
            .get(&router)
            .map(|a| a.walk(prefix))
            .unwrap_or_default()
    }

    fn ifindex_for(&self, from: RouterId, to: RouterId) -> Option<u32> {
        self.iface_to_link
            .iter()
            .find(|((r, _), k)| *r == from && k.to == to)
            .map(|((_, i), _)| u32::from(i.0) + 1)
    }

    fn inject_fake(
        &mut self,
        speaker: RouterId,
        fake: RouterId,
        attach: RouterId,
        attach_metric: Metric,
        prefix: Prefix,
        prefix_metric: Metric,
        fw: FwAddr,
    ) -> Result<(), InstanceError> {
        let inst = self
            .instances
            .get_mut(&speaker)
            .ok_or(InstanceError::UnknownIface(u16::MAX))?;
        inst.inject_fake(fake, attach, attach_metric, prefix, prefix_metric, fw)
    }

    fn retract_fake(&mut self, speaker: RouterId, fake: RouterId) -> Result<(), InstanceError> {
        let inst = self
            .instances
            .get_mut(&speaker)
            .ok_or(InstanceError::UnknownIface(u16::MAX))?;
        inst.retract_fake(fake)
    }

    fn start_flow(&mut self, spec: FlowSpec) -> FlowId {
        self.next_flow_id += 1;
        let id = FlowId(self.next_flow_id);
        self.start_flow_with_id(id, spec);
        id
    }

    fn stop_flow(&mut self, id: FlowId) -> bool {
        self.stop_flow_inner(id)
    }

    fn set_flow_cap(&mut self, id: FlowId, cap: Option<f64>) -> bool {
        self.set_flow_cap_inner(id, cap)
    }

    fn flow_rate(&self, id: FlowId) -> Option<f64> {
        self.flows.get(&id).map(|f| f.rate)
    }

    fn flow_delivered(&self, id: FlowId) -> Option<f64> {
        self.flows.get(&id).map(|f| f.delivered)
    }

    fn flow_path(&self, id: FlowId) -> Option<Vec<LinkKey>> {
        self.flows.get(&id).and_then(|f| f.path.clone())
    }

    fn link_rate(&self, key: LinkKey) -> Option<f64> {
        self.links.get(&key).map(|r| r.state.rate)
    }

    fn fail_link(&mut self, a: RouterId, b: RouterId) -> bool {
        self.set_link_up(a, b, false)
    }

    fn restore_link(&mut self, a: RouterId, b: RouterId) -> bool {
        self.set_link_up(a, b, true)
    }

    fn set_link_capacity(&mut self, a: RouterId, b: RouterId, capacity: f64) -> bool {
        self.set_link_capacity_inner(a, b, capacity)
    }

    fn fib_nexthops(&self, router: RouterId, prefix: Prefix) -> Vec<FwAddr> {
        match self.fibs.get(&router).and_then(|f| f.lookup(prefix)) {
            Some(crate::fib::FibEntry::Via(v)) => v.clone(),
            _ => Vec::new(),
        }
    }

    fn record(&mut self, series: &str, value: f64) {
        let now = self.now;
        self.recorder.record(series, now, value);
    }
}

impl Sim {
    /// Create an empty world.
    pub fn new(cfg: SimConfig) -> Sim {
        Sim {
            core: Core::new(cfg),
            apps: Vec::new(),
            tick_intervals: Vec::new(),
        }
    }

    /// Add a forwarding router.
    pub fn add_router(&mut self, id: RouterId) {
        self.core.add_router_inner(id, true);
    }

    /// Add a controller speaker: participates in the IGP (flooding,
    /// injection) but computes no routes. Attach it to `attach` with a
    /// deliberately high cost so it never carries transit traffic.
    pub fn add_controller_speaker(&mut self, id: RouterId, attach: RouterId) {
        self.core.add_router_inner(id, false);
        self.core.add_link_inner(
            LinkSpec::new(id, attach, Metric(10_000), 1e7).with_delay(Dur::from_millis(1)),
        );
    }

    /// Add a symmetric link.
    pub fn add_link(&mut self, spec: LinkSpec) {
        self.core.add_link_inner(spec);
    }

    /// Announce a prefix at a router (metric 0).
    pub fn announce_prefix(&mut self, router: RouterId, prefix: Prefix) {
        self.core
            .instances
            .get_mut(&router)
            .expect("router exists")
            .announce(prefix, Metric::ZERO);
        self.core.prefix_owners.push((prefix, router));
    }

    /// Register an application.
    pub fn add_app(&mut self, app: Box<dyn App>) -> usize {
        self.tick_intervals.push(app.tick_interval());
        self.apps.push(app);
        self.apps.len() - 1
    }

    /// Name a link direction for trace sampling.
    pub fn sample_link(&mut self, name: &str, from: RouterId, to: RouterId) {
        self.core
            .sampled
            .insert(name.to_string(), LinkKey::new(from, to));
    }

    /// Schedule a flow start; returns the id it will get.
    pub fn schedule_flow(&mut self, at: Timestamp, spec: FlowSpec) -> FlowId {
        self.core.next_flow_id += 1;
        let id = FlowId(self.core.next_flow_id);
        self.core.queue.push(at, Ev::FlowStart(id, spec));
        id
    }

    /// Schedule a flow stop.
    pub fn schedule_flow_stop(&mut self, at: Timestamp, id: FlowId) {
        self.core.queue.push(at, Ev::FlowStop(id));
    }

    /// Schedule a flow cap change.
    pub fn schedule_flow_cap(&mut self, at: Timestamp, id: FlowId, cap: Option<f64>) {
        self.core.queue.push(at, Ev::SetFlowCap(id, cap));
    }

    /// Schedule a link admin up/down event (the scheduled counterpart
    /// of [`SimApi::fail_link`] / [`SimApi::restore_link`]).
    pub fn schedule_link_admin(&mut self, at: Timestamp, a: RouterId, b: RouterId, up: bool) {
        self.core.queue.push(at, Ev::LinkAdmin { a, b, up });
    }

    /// Schedule a symmetric link capacity change (the scheduled
    /// counterpart of [`SimApi::set_link_capacity`]).
    pub fn schedule_link_capacity(&mut self, at: Timestamp, a: RouterId, b: RouterId, cap: f64) {
        self.core.queue.push(
            at,
            Ev::LinkCap {
                a,
                b,
                capacity: cap,
            },
        );
    }

    /// Start the world: instances come up, apps get `on_start`, the
    /// sampler begins.
    pub fn start(&mut self) {
        assert!(!self.core.started, "start() called twice");
        self.core.started = true;
        for inst in self.core.instances.values_mut() {
            inst.start(self.core.now);
        }
        self.core.collect_outputs();
        self.core.queue.push(self.core.now, Ev::Sample);
        for (i, interval) in self.tick_intervals.iter().enumerate() {
            if let Some(d) = interval {
                self.core.queue.push(self.core.now + *d, Ev::AppTick(i));
            }
        }
        for app in self.apps.iter_mut() {
            app.on_start(&mut self.core);
        }
        self.core.collect_outputs();
        if self.core.dirty.needs_realloc() {
            self.core.reallocate();
        }
    }

    /// Run the world until `until` (inclusive of events at `until`).
    pub fn run_until(&mut self, until: Timestamp) {
        assert!(self.core.started, "call start() first");
        loop {
            let next_pkt = self.core.queue.peek_time();
            let next_timer = self.core.min_instance_timer();
            let next = match (next_pkt, next_timer) {
                (Some(a), Some(b)) => a.min(b),
                (Some(a), None) => a,
                (None, Some(b)) => b,
                (None, None) => break,
            };
            if next > until {
                break;
            }
            let t = next.max(self.core.now);
            self.core.accrue_to(t);
            self.core.now = t;
            while let Some((_, ev)) = self.core.queue.pop_due(t) {
                self.core.dispatch(ev);
            }
            self.core.poll_instances(t);
            self.core.collect_outputs();
            // Settle the fluid allocation before apps observe the
            // world: a capacity change or FIB download in this batch
            // must not be visible as stale rates against new
            // provisioning. Apps may dirty the world again (new
            // flows, lies), so settle once more afterwards.
            if self.core.dirty.needs_realloc() {
                self.core.reallocate();
            }
            self.dispatch_apps();
            if self.core.dirty.needs_realloc() {
                self.core.reallocate();
            }
        }
        if until > self.core.now {
            self.core.accrue_to(until);
            self.core.now = until;
        }
    }

    fn dispatch_apps(&mut self) {
        // Bounded ping-pong: apps reacting to notifications may create
        // flows, which notify again within the same instant.
        for _round in 0..8 {
            let ticks: Vec<usize> = std::mem::take(&mut self.core.pending_ticks);
            let events: Vec<(bool, FlowInfo)> = std::mem::take(&mut self.core.pending_flow_events);
            if ticks.is_empty() && events.is_empty() {
                break;
            }
            for i in ticks {
                if let Some(app) = self.apps.get_mut(i) {
                    app.on_tick(&mut self.core);
                }
                // Re-arm the periodic tick.
                if let Some(Some(d)) = self.tick_intervals.get(i) {
                    self.core.queue.push(self.core.now + *d, Ev::AppTick(i));
                }
            }
            for (started, info) in events {
                for app in self.apps.iter_mut() {
                    if started {
                        app.on_flow_started(&mut self.core, &info);
                    } else {
                        app.on_flow_stopped(&mut self.core, &info);
                    }
                }
            }
            self.core.collect_outputs();
        }
    }

    /// Current time.
    pub fn now(&self) -> Timestamp {
        self.core.now
    }

    /// Read access to the world (SimApi view).
    pub fn api(&mut self) -> &mut dyn SimApi {
        &mut self.core
    }

    /// The trace recorder.
    pub fn recorder(&self) -> &Recorder {
        &self.core.recorder
    }

    /// World statistics (allocator and per-instance SPF counters are
    /// folded in at read time).
    pub fn stats(&self) -> SimStats {
        let mut s = self.core.stats;
        s.alloc_fills = self.core.alloc.fills;
        s.alloc_skips = self.core.alloc.skips;
        for inst in self.core.instances.values() {
            let (full, partial) = inst.spf_run_counts();
            s.spf_full_runs += full;
            s.spf_partial_runs += partial;
        }
        s
    }

    /// A router's protocol instance (inspection).
    pub fn instance(&self, id: RouterId) -> Option<&Instance> {
        self.core.instances.get(&id)
    }

    /// A router's current FIB (inspection).
    pub fn fib(&self, id: RouterId) -> Option<&Fib> {
        self.core.fibs.get(&id)
    }

    /// Snapshot of all flows (inspection).
    pub fn flows(&self) -> Vec<&Flow> {
        self.core.flows.values().collect()
    }

    /// Current rate of a directed link.
    pub fn link_rate(&self, from: RouterId, to: RouterId) -> Option<f64> {
        self.core
            .links
            .get(&LinkKey::new(from, to))
            .map(|r| r.state.rate)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn r(n: u32) -> RouterId {
        RouterId(n)
    }

    /// r1 - r2 - r3 line, prefix at r3, capacities 1 MB/s.
    fn line_sim() -> Sim {
        let mut sim = Sim::new(SimConfig::default());
        for i in 1..=3 {
            sim.add_router(r(i));
        }
        sim.add_link(LinkSpec::new(r(1), r(2), Metric(1), 1e6));
        sim.add_link(LinkSpec::new(r(2), r(3), Metric(1), 1e6));
        sim.announce_prefix(r(3), Prefix::net24(1));
        sim
    }

    #[test]
    fn igp_converges_and_flow_routes() {
        let mut sim = line_sim();
        let fid = sim.schedule_flow(
            Timestamp::from_secs(10),
            FlowSpec::new(r(1), Prefix::net24(1)),
        );
        sim.start();
        sim.run_until(Timestamp::from_secs(12));
        // Flow should be at full capacity over both links.
        let api = sim.api();
        let rate = api.flow_rate(fid).unwrap();
        assert!((rate - 1e6).abs() < 1.0, "rate {rate}");
        let path = api.flow_path(fid).unwrap();
        assert_eq!(
            path,
            vec![LinkKey::new(r(1), r(2)), LinkKey::new(r(2), r(3))]
        );
        assert!((sim.link_rate(r(1), r(2)).unwrap() - 1e6).abs() < 1.0);
    }

    #[test]
    fn two_flows_share_bottleneck() {
        let mut sim = line_sim();
        let f1 = sim.schedule_flow(
            Timestamp::from_secs(10),
            FlowSpec::new(r(1), Prefix::net24(1)),
        );
        let f2 = sim.schedule_flow(
            Timestamp::from_secs(10),
            FlowSpec::new(r(2), Prefix::net24(1)),
        );
        sim.start();
        sim.run_until(Timestamp::from_secs(12));
        let api = sim.api();
        let r1 = api.flow_rate(f1).unwrap();
        let r2 = api.flow_rate(f2).unwrap();
        assert!((r1 - 5e5).abs() < 1.0, "r1 {r1}");
        assert!((r2 - 5e5).abs() < 1.0, "r2 {r2}");
    }

    #[test]
    fn capped_flow_stays_capped() {
        let mut sim = line_sim();
        let f = sim.schedule_flow(
            Timestamp::from_secs(10),
            FlowSpec::new(r(1), Prefix::net24(1)).with_cap(1e5),
        );
        sim.start();
        sim.run_until(Timestamp::from_secs(15));
        let api = sim.api();
        assert!((api.flow_rate(f).unwrap() - 1e5).abs() < 1.0);
        // Delivered ≈ cap × elapsed (5 s minus allocation instant).
        let delivered = api.flow_delivered(f).unwrap();
        assert!(
            delivered > 4.0e5 && delivered < 5.5e5,
            "delivered {delivered}"
        );
    }

    #[test]
    fn counters_reflect_data_traffic() {
        let mut sim = line_sim();
        sim.schedule_flow(
            Timestamp::from_secs(10),
            FlowSpec::new(r(1), Prefix::net24(1)).with_cap(1e5),
        );
        sim.start();
        sim.run_until(Timestamp::from_secs(20));
        // r1's interface toward r2 should show ~1e6 bytes out.
        let api = sim.api();
        let idx = api.ifindex_for(r(1), r(2)).unwrap();
        let v = api.snmp_get(r(1), &fib_telemetry::mib::oids::if_out_octets().child(idx));
        match v {
            Some(Value::Counter(c)) => {
                assert!((9e5..1.2e6).contains(&(c as f64)), "unexpected counter {c}");
            }
            other => panic!("unexpected SNMP value {other:?}"),
        }
    }

    #[test]
    fn flow_stops_and_link_drains() {
        let mut sim = line_sim();
        let f = sim.schedule_flow(
            Timestamp::from_secs(10),
            FlowSpec::new(r(1), Prefix::net24(1)),
        );
        sim.schedule_flow_stop(Timestamp::from_secs(20), f);
        sim.start();
        sim.run_until(Timestamp::from_secs(25));
        assert_eq!(sim.link_rate(r(1), r(2)), Some(0.0));
        assert!(sim.flows().is_empty());
    }

    #[test]
    fn link_failure_makes_flow_unroutable_then_recovers() {
        // Square topology with two paths.
        let mut sim = Sim::new(SimConfig::default());
        for i in 1..=4 {
            sim.add_router(r(i));
        }
        sim.add_link(LinkSpec::new(r(1), r(2), Metric(1), 1e6));
        sim.add_link(LinkSpec::new(r(2), r(4), Metric(1), 1e6));
        sim.add_link(LinkSpec::new(r(1), r(3), Metric(10), 1e6));
        sim.add_link(LinkSpec::new(r(3), r(4), Metric(10), 1e6));
        sim.announce_prefix(r(4), Prefix::net24(1));
        let f = sim.schedule_flow(
            Timestamp::from_secs(10),
            FlowSpec::new(r(1), Prefix::net24(1)),
        );
        sim.schedule_link_admin(Timestamp::from_secs(20), r(1), r(2), false);
        sim.start();
        sim.run_until(Timestamp::from_secs(15));
        {
            let api = sim.api();
            assert_eq!(
                api.flow_path(f).unwrap()[0],
                LinkKey::new(r(1), r(2)),
                "initial path via r2"
            );
        }
        sim.run_until(Timestamp::from_secs(30));
        let api = sim.api();
        let path = api.flow_path(f).expect("rerouted after failure");
        assert_eq!(path[0], LinkKey::new(r(1), r(3)), "rerouted via r3");
        assert!((api.flow_rate(f).unwrap() - 1e6).abs() < 1.0);
    }

    #[test]
    fn api_fail_and_restore_link() {
        let mut sim = line_sim();
        let f = sim.schedule_flow(
            Timestamp::from_secs(10),
            FlowSpec::new(r(1), Prefix::net24(1)),
        );
        sim.start();
        sim.run_until(Timestamp::from_secs(12));
        assert!(sim.api().flow_path(f).is_some());
        // Fail the only link out of r1: the flow strands and the
        // blackout clock runs.
        assert!(sim.api().fail_link(r(1), r(2)));
        assert!(!sim.api().fail_link(r(1), r(9)), "unknown link");
        sim.run_until(Timestamp::from_secs(20));
        assert!(sim.api().flow_path(f).is_none(), "no path while down");
        let stranded = sim.stats().unroutable_flow_secs;
        assert!(stranded > 7.0, "blackout seconds accrue: {stranded}");
        // Restore: the IGP re-converges and the flow routes again.
        assert!(sim.api().restore_link(r(1), r(2)));
        sim.run_until(Timestamp::from_secs(40));
        assert!(sim.api().flow_path(f).is_some(), "rerouted after restore");
        let after = sim.stats().unroutable_flow_secs;
        assert!(
            after - stranded < 15.0,
            "clock stops once routed: {after} vs {stranded}"
        );
    }

    #[test]
    fn capacity_change_rescales_allocation() {
        let mut sim = line_sim();
        let f = sim.schedule_flow(
            Timestamp::from_secs(10),
            FlowSpec::new(r(1), Prefix::net24(1)),
        );
        sim.schedule_link_capacity(Timestamp::from_secs(20), r(1), r(2), 2.5e5);
        sim.start();
        sim.run_until(Timestamp::from_secs(15));
        assert!((sim.api().flow_rate(f).unwrap() - 1e6).abs() < 1.0);
        sim.run_until(Timestamp::from_secs(25));
        // The degraded link is now the bottleneck.
        assert!((sim.api().flow_rate(f).unwrap() - 2.5e5).abs() < 1.0);
        // Direct API variant, and validation of bad inputs.
        assert!(sim.api().set_link_capacity(r(1), r(2), 1e6));
        assert!(!sim.api().set_link_capacity(r(1), r(2), 0.0));
        assert!(!sim.api().set_link_capacity(r(1), r(9), 1e6));
        sim.run_until(Timestamp::from_secs(30));
        assert!((sim.api().flow_rate(f).unwrap() - 1e6).abs() < 1.0);
    }

    #[test]
    fn sampling_records_series() {
        let mut sim = line_sim();
        sim.sample_link("r1-r2", r(1), r(2));
        sim.schedule_flow(
            Timestamp::from_secs(10),
            FlowSpec::new(r(1), Prefix::net24(1)).with_cap(2e5),
        );
        sim.start();
        sim.run_until(Timestamp::from_secs(15));
        let series = sim.recorder().series("r1-r2");
        assert!(!series.is_empty());
        let max = sim.recorder().max("r1-r2").unwrap();
        assert!((max - 2e5).abs() < 1.0, "max {max}");
        // Before the flow: zero.
        assert_eq!(sim.recorder().value_at("r1-r2", 5.0), Some(0.0));
    }

    #[test]
    fn determinism_same_seed_same_trace() {
        let run = || {
            let mut sim = line_sim();
            sim.sample_link("r1-r2", r(1), r(2));
            for i in 0..10 {
                sim.schedule_flow(
                    Timestamp::from_secs(10 + i),
                    FlowSpec::new(r(1), Prefix::net24(1)).with_cap(5e4),
                );
            }
            sim.start();
            sim.run_until(Timestamp::from_secs(30));
            sim.recorder().to_csv()
        };
        assert_eq!(run(), run());
    }

    #[test]
    fn fake_injection_changes_fib_via_flooding() {
        // Triangle: r1-r2 cost 1, r2-r3 cost 1, r1-r3 cost 5.
        // Prefix at r3. r1 routes via r2 (cost 2). A controller speaker
        // at r4 injects a fake node on r1 with cost 2 via the direct
        // r1→r3 link: r1 gains a second ECMP slot.
        let mut sim = Sim::new(SimConfig::default());
        for i in 1..=3 {
            sim.add_router(r(i));
        }
        sim.add_link(LinkSpec::new(r(1), r(2), Metric(1), 1e6));
        sim.add_link(LinkSpec::new(r(2), r(3), Metric(1), 1e6));
        sim.add_link(LinkSpec::new(r(1), r(3), Metric(5), 1e6));
        sim.announce_prefix(r(3), Prefix::net24(1));
        sim.add_controller_speaker(r(100), r(2));
        sim.start();
        sim.run_until(Timestamp::from_secs(10));
        {
            let api = sim.api();
            assert_eq!(
                api.fib_nexthops(r(1), Prefix::net24(1)),
                vec![FwAddr::primary(r(2))]
            );
            api.inject_fake(
                r(100),
                RouterId::fake(0),
                r(1),
                Metric(1),
                Prefix::net24(1),
                Metric(1),
                FwAddr::secondary(r(3), 1),
            )
            .unwrap();
        }
        sim.run_until(Timestamp::from_secs(20));
        let api = sim.api();
        let hops = api.fib_nexthops(r(1), Prefix::net24(1));
        assert_eq!(
            hops,
            vec![FwAddr::primary(r(2)), FwAddr::secondary(r(3), 1)],
            "lie should add an ECMP slot at r1"
        );
    }
}
