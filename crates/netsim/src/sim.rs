//! The co-simulation world.
//!
//! [`Sim`] binds everything together in one deterministic event loop
//! built on the `fib-sim-kernel` primitives:
//!
//! * one time-ordered, cancellable [`EventQueue`] with stable FIFO
//!   tie-breaking carries every event — protocol packets in flight,
//!   flow churn, link scripts, component ticks, trace samples;
//! * an IGP [`Instance`] per router exchanges real (encoded,
//!   checksummed) protocol packets over the simulated links; their
//!   internal timer deadlines are tracked in a [`DeadlineHeap`]
//!   (`O(log n)` per change, not `O(routers)` per batch);
//! * FIB downloads from converged instances into data-plane [`Fib`]s;
//! * fluid traffic: flows resolve their paths through the FIBs (per
//!   hop ECMP hashing) and share link capacity max-min fairly; link
//!   and flow counters integrate rates between events;
//! * SNMP agents per router whose ifTable counters are fed by the data
//!   and control planes alike;
//! * pluggable components (the Fibbing controller, workload drivers,
//!   probes) behind the [`EventHandler`] trait, registered into a flat
//!   arena and addressed by [`ComponentId`].
//!
//! Routers, links, and flows live in dense arenas: hot paths index by
//! slot (`u32`/`usize`), never by name or map probe. The key-ordered
//! maps remain only as cold-path views (API lookups, provisioning
//! iteration) so observable iteration orders are unchanged from the
//! pre-kernel simulator — byte-determinism of every pinned artifact is
//! an invariant, asserted against pre-port reference traces in
//! `tests/kernel_pin.rs`.
//!
//! Settling is *incremental* (see [`crate::dirty`]) and its schedule
//! is configurable ([`SettleMode`]): `Eager` reproduces the historical
//! settle-twice-per-batch schedule (and therefore the historical
//! machinery counters, which pinned sweep artifacts embed); `Lazy`
//! defers settlement to the next observation point — time advancing
//! over unsettled state, components about to run, or the end of a
//! `run_until` — producing byte-identical traces with fewer
//! allocator passes (asserted in tests).

use crate::dirty::{DirtySet, FlowIndex};
use crate::ecmp::FlowKey;
use crate::events::Event;
use crate::fib::{resolve_path, Fib};
use crate::flow::{Flow, FlowId, FlowInfo, FlowSpec};
use crate::fluid::Allocator;
use crate::handler::{AppEvent, EventHandler};
use crate::link::{LinkKey, LinkSpec, LinkState};
use crate::trace::Recorder;
use bytes::Bytes;
use fib_igp::instance::{Config as IgpConfig, Instance, Output};
use fib_igp::time::{Dur, Timestamp};
use fib_igp::types::{IfaceId, Metric, Prefix, RouterId};
pub use fib_sim_kernel::TieBreak;
use fib_sim_kernel::{ComponentId, DeadlineHeap, EventId, EventQueue, Registry};
use fib_telemetry::counters::{CounterWidth, IfaceCounters};
use fib_telemetry::mib::Agent;
use std::collections::{BTreeMap, BTreeSet};

pub use crate::context::SimContext;

/// When the fluid allocation settles after changes dirty the world.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub enum SettleMode {
    /// Settle up to twice per event batch (before and after component
    /// dispatch), exactly like the pre-kernel simulator. This keeps
    /// the machinery counters (`reallocs`, `paths_resolved`,
    /// `alloc_fills`, …) byte-identical to historical runs — pinned
    /// sweep artifacts embed them — and is the default.
    #[default]
    Eager,
    /// Settle only at observation points: when time is about to
    /// advance over unsettled state (rate integration is itself an
    /// observer), when components are about to run in a batch, and at
    /// the end of `run_until`. Traces, flow deliveries, counters, and
    /// every rate any observer can read are byte-identical to `Eager`
    /// (asserted in tests); only the machinery counters differ —
    /// within-batch double settles collapse into one.
    Lazy,
}

/// Simulator configuration.
#[derive(Debug, Clone)]
pub struct SimConfig {
    /// IGP hello interval.
    pub hello_interval: Dur,
    /// IGP dead interval.
    pub dead_interval: Dur,
    /// IGP retransmit interval.
    pub rxmt_interval: Dur,
    /// IGP SPF delay.
    pub spf_delay: Dur,
    /// Trace sampling period.
    pub sample_interval: Dur,
    /// SNMP counter width exposed by agents.
    pub counter_width: CounterWidth,
    /// Immediate carrier-loss detection on link-down events.
    pub carrier_detect: bool,
    /// Settlement schedule (see [`SettleMode`]).
    pub settle: SettleMode,
    /// Run the forwarding loop-freedom probe at every settle point
    /// (see [`Sim::loop_violations`]). Off by default: the probe is a
    /// safety-invariant check for adversarial exploration, not part of
    /// the pinned simulation schedule (it reads, never mutates, so
    /// enabling it cannot change any artifact byte — it only costs
    /// time).
    pub check_loops: bool,
}

impl Default for SimConfig {
    fn default() -> Self {
        SimConfig {
            hello_interval: Dur::from_secs(1),
            dead_interval: Dur::from_secs(4),
            rxmt_interval: Dur::from_secs(1),
            spf_delay: Dur::from_millis(50),
            sample_interval: Dur::from_millis(100),
            counter_width: CounterWidth::C64,
            carrier_detect: true,
            settle: SettleMode::Eager,
            check_loops: false,
        }
    }
}

/// Aggregate world statistics.
#[derive(Debug, Clone, Copy, Default)]
pub struct SimStats {
    /// Control-plane packets delivered.
    pub ctrl_pkts: u64,
    /// Control-plane bytes delivered.
    pub ctrl_bytes: u64,
    /// Control packets dropped on down links.
    pub ctrl_dropped: u64,
    /// Fluid re-allocations performed.
    pub reallocs: u64,
    /// Simulation events dispatched (packets, flow churn, ticks,
    /// samples, link scripts).
    pub events: u64,
    /// Flow paths re-resolved because the dirty set named them.
    pub paths_resolved: u64,
    /// Flow paths kept from cache across reallocations (what the old
    /// global recompute would have re-resolved; `paths_resolved +
    /// paths_skipped` is exactly the pre-refactor resolution count).
    pub paths_skipped: u64,
    /// Allocation fill passes actually executed.
    pub alloc_fills: u64,
    /// Allocations answered from the unchanged-input cache.
    pub alloc_skips: u64,
    /// Full Dijkstra runs across all IGP instances.
    pub spf_full_runs: u64,
    /// Route-phase-only (partial) SPF runs across all IGP instances
    /// (lie/prefix churn that left the real graph untouched).
    pub spf_partial_runs: u64,
    /// SNMP operations served.
    pub snmp_ops: u64,
    /// Dirty-flow re-resolutions that failed (flow found temporarily
    /// unroutable; counted per resolution attempt, not per realloc).
    pub unroutable: u64,
    /// Integrated flow-seconds spent without a usable path (1 flow
    /// stranded for 2 s contributes 2.0) — the scenario engine's
    /// blackout metric.
    pub unroutable_flow_secs: f64,
    /// Settle points at which the loop-freedom probe found at least
    /// one forwarding cycle (0 unless [`SimConfig::check_loops`] is
    /// on). Deliberately *not* part of [`SimStats::rollup`]: pinned
    /// sweep artifacts embed the rollup key set.
    pub fwd_loop_settles: u64,
}

/// One forwarding cycle caught by the loop-freedom probe
/// ([`SimConfig::check_loops`]): at a settle point, following every
/// ECMP slot of each router's FIB entry for `prefix` closed a cycle
/// through `cycle` (first router repeated implicitly).
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct LoopViolation {
    /// Simulation time of the settle point.
    pub at: Timestamp,
    /// The destination prefix whose forwarding graph is cyclic.
    pub prefix: Prefix,
    /// The routers on the cycle, in forwarding order.
    pub cycle: Vec<RouterId>,
}

impl SimStats {
    /// The integer machinery counters as a named
    /// [`fib_telemetry::rollup::Rollup`], so multi-run harnesses (the
    /// sweep engine) can merge per-run snapshots into fleet totals.
    /// `unroutable_flow_secs` is a float metric, not a counter, and is
    /// deliberately excluded.
    pub fn rollup(&self) -> fib_telemetry::rollup::Rollup {
        let mut r = fib_telemetry::rollup::Rollup::new();
        r.add("alloc_fills", self.alloc_fills);
        r.add("alloc_skips", self.alloc_skips);
        r.add("ctrl_bytes", self.ctrl_bytes);
        r.add("ctrl_dropped", self.ctrl_dropped);
        r.add("ctrl_pkts", self.ctrl_pkts);
        r.add("events", self.events);
        r.add("paths_resolved", self.paths_resolved);
        r.add("paths_skipped", self.paths_skipped);
        r.add("reallocs", self.reallocs);
        r.add("snmp_ops", self.snmp_ops);
        r.add("spf_full_runs", self.spf_full_runs);
        r.add("spf_partial_runs", self.spf_partial_runs);
        r.add("unroutable_resolutions", self.unroutable);
        r
    }
}

#[derive(Debug)]
pub(crate) struct LinkRec {
    pub(crate) state: LinkState,
    /// Interface on `state.key.from` transmitting onto this direction.
    pub(crate) tx_iface: IfaceId,
    /// Interface on `state.key.to` receiving from this direction.
    pub(crate) rx_iface: IfaceId,
    /// Provisioned IGP cost (from the link spec — the operator's view,
    /// served without consulting any LSDB).
    pub(crate) cost: Metric,
    /// Fractional byte carry for counter integration.
    pub(crate) carry: f64,
    /// Router/agent arena slot of `state.key.from`.
    pub(crate) from_slot: u32,
    /// Router/agent arena slot of `state.key.to`.
    pub(crate) to_slot: u32,
}

/// Internal queue payload: public [`Event`]s plus the kernel's own
/// traffic (packets in flight, component ticks, trace samples).
pub(crate) enum Ev {
    Pkt {
        to_slot: u32,
        iface: IfaceId,
        data: Bytes,
    },
    Tick(ComponentId),
    Sample,
    User(Event),
}

/// Everything except the components (so components can borrow the
/// world mutably while being dispatched).
pub(crate) struct Core {
    pub(crate) cfg: SimConfig,
    pub(crate) now: Timestamp,
    pub(crate) queue: EventQueue<Timestamp, Ev>,
    // Router arena: slot = registration order; id-ordered views kept
    // for cold paths and observable iteration order.
    pub(crate) router_ids: Vec<RouterId>,
    pub(crate) router_slot: BTreeMap<RouterId, u32>,
    pub(crate) instances: Vec<Instance>,
    pub(crate) agents: Vec<Agent>,
    pub(crate) fibs: BTreeMap<RouterId, Fib>,
    pub(crate) deadlines: DeadlineHeap<Timestamp>,
    due_scratch: Vec<u32>,
    /// Instance slots touched since the last output collection.
    touched: BTreeSet<u32>,
    // Link arena: directed records in creation order (the two
    // directions of one symmetric link are adjacent: sibling = ix ^ 1)
    // plus the key-ordered index for lookups and stable iteration.
    pub(crate) link_recs: Vec<LinkRec>,
    pub(crate) link_idx: BTreeMap<LinkKey, u32>,
    pub(crate) iface_to_link: BTreeMap<(RouterId, IfaceId), u32>,
    pub(crate) prefix_owners: Vec<(Prefix, RouterId)>,
    // Flow arena indexed by `FlowId.0` (ids are dense, counter-issued).
    pub(crate) flow_recs: Vec<Option<Flow>>,
    pub(crate) live_flows: usize,
    /// Live flows currently without a usable path (incremental form of
    /// the per-batch stranded scan; feeds `unroutable_flow_secs`).
    stranded: usize,
    pub(crate) flow_index: FlowIndex,
    pub(crate) alloc: Allocator<LinkKey>,
    pub(crate) next_flow_id: u64,
    last_accrue: Timestamp,
    pub(crate) dirty: DirtySet,
    pub(crate) started: bool,
    /// Entry dirt: the world was mutated outside any batch (host code
    /// between `run_until` calls). Such dirt settles after the next
    /// batch's output collection — the historical schedule — never at
    /// accrual, so rate integration over the gap keeps the stale rates
    /// the pre-kernel simulator used.
    needs_batch_settle: bool,
    in_batch: bool,
    pub(crate) pending_flow_events: Vec<(bool, FlowInfo)>, // (started?, info)
    pub(crate) pending_ticks: Vec<ComponentId>,
    pub(crate) recorder: Recorder,
    /// Sampled link series, name-sorted (the recorder emission order).
    pub(crate) sampled: Vec<(String, LinkKey)>,
    /// Aggregate statistics.
    pub stats: SimStats,
    /// Forwarding cycles found by the loop-freedom probe, capped at
    /// [`LOOP_LOG_CAP`] (the settle counter in [`SimStats`] keeps
    /// counting past the cap).
    pub(crate) loop_log: Vec<LoopViolation>,
}

/// Cap on retained [`LoopViolation`] records (deterministic prefix of
/// the detection sequence; the counter keeps the true total).
pub const LOOP_LOG_CAP: usize = 64;

/// The simulator: the world plus its registered components.
pub struct Sim {
    pub(crate) core: Core,
    apps: Registry<dyn EventHandler>,
    tick_intervals: Vec<Option<Dur>>,
}

impl Core {
    fn new(cfg: SimConfig) -> Core {
        Core {
            cfg,
            now: Timestamp::ZERO,
            queue: EventQueue::new(),
            router_ids: Vec::new(),
            router_slot: BTreeMap::new(),
            instances: Vec::new(),
            agents: Vec::new(),
            fibs: BTreeMap::new(),
            deadlines: DeadlineHeap::new(),
            due_scratch: Vec::new(),
            touched: BTreeSet::new(),
            link_recs: Vec::new(),
            link_idx: BTreeMap::new(),
            iface_to_link: BTreeMap::new(),
            prefix_owners: Vec::new(),
            flow_recs: Vec::new(),
            live_flows: 0,
            stranded: 0,
            flow_index: FlowIndex::new(),
            alloc: Allocator::new(),
            next_flow_id: 0,
            last_accrue: Timestamp::ZERO,
            dirty: DirtySet::new(),
            started: false,
            needs_batch_settle: false,
            in_batch: false,
            pending_flow_events: Vec::new(),
            pending_ticks: Vec::new(),
            recorder: Recorder::new(),
            sampled: Vec::new(),
            stats: SimStats::default(),
            loop_log: Vec::new(),
        }
    }

    pub(crate) fn flow(&self, id: FlowId) -> Option<&Flow> {
        self.flow_recs.get(id.0 as usize).and_then(|o| o.as_ref())
    }

    /// Record that `slot`'s instance may have new output and a new
    /// earliest deadline. Every `&mut Instance` access goes through
    /// here (or is followed by it).
    pub(crate) fn touch(&mut self, slot: u32) {
        self.touched.insert(slot);
        let next = self.instances[slot as usize].next_timer();
        self.deadlines.set(slot, next);
    }

    /// Mark that a world mutation happened outside any batch.
    fn note_mutation(&mut self) {
        if self.started && !self.in_batch {
            self.needs_batch_settle = true;
        }
    }

    fn next_iface(&self, r: RouterId) -> IfaceId {
        let n = self
            .iface_to_link
            .keys()
            .filter(|(rid, _)| *rid == r)
            .count();
        IfaceId(n as u16)
    }

    pub(crate) fn add_router_inner(&mut self, id: RouterId, compute_routes: bool) {
        let mut cfg = IgpConfig::new(id);
        cfg.hello_interval = self.cfg.hello_interval;
        cfg.dead_interval = self.cfg.dead_interval;
        cfg.rxmt_interval = self.cfg.rxmt_interval;
        cfg.spf_delay = self.cfg.spf_delay;
        cfg.compute_routes = compute_routes;
        let slot = self.instances.len() as u32;
        assert!(
            self.router_slot.insert(id, slot).is_none(),
            "router {id} added twice"
        );
        self.router_ids.push(id);
        self.instances.push(Instance::new(cfg));
        self.agents.push(Agent::new(format!("{id}")));
        self.fibs.insert(id, Fib::new());
        let heap_slot = self.deadlines.push_slot();
        debug_assert_eq!(heap_slot, slot);
    }

    pub(crate) fn add_link_inner(&mut self, spec: LinkSpec) {
        let ia = self.next_iface(spec.a);
        // Register a's iface before computing b's (self-loops are not
        // supported; asserted here).
        assert_ne!(spec.a, spec.b, "self-loop links are not supported");
        let a_slot = *self.router_slot.get(&spec.a).expect("add routers first");
        let b_slot = *self.router_slot.get(&spec.b).expect("add routers first");
        let kab = LinkKey::new(spec.a, spec.b);
        let ix_ab = self.link_recs.len() as u32;
        self.iface_to_link.insert((spec.a, ia), ix_ab);
        let ib = self.next_iface(spec.b);
        let kba = LinkKey::new(spec.b, spec.a);
        self.iface_to_link.insert((spec.b, ib), ix_ab + 1);

        self.instances[a_slot as usize].add_iface(ia, spec.cost);
        self.instances[b_slot as usize].add_iface(ib, spec.cost);

        let mk = |key: LinkKey| LinkState {
            key,
            capacity: spec.capacity,
            delay: spec.delay,
            up: true,
            rate: 0.0,
        };
        self.link_recs.push(LinkRec {
            state: mk(kab),
            tx_iface: ia,
            rx_iface: ib,
            cost: spec.cost,
            carry: 0.0,
            from_slot: a_slot,
            to_slot: b_slot,
        });
        self.link_recs.push(LinkRec {
            state: mk(kba),
            tx_iface: ib,
            rx_iface: ia,
            cost: spec.cost,
            carry: 0.0,
            from_slot: b_slot,
            to_slot: a_slot,
        });
        self.link_idx.insert(kab, ix_ab);
        self.link_idx.insert(kba, ix_ab + 1);

        // SNMP: one ifTable row per interface (ifIndex = iface + 1).
        let width = self.cfg.counter_width;
        self.agents[a_slot as usize].add_iface(u32::from(ia.0) + 1, IfaceCounters::new(width));
        self.agents[b_slot as usize].add_iface(u32::from(ib.0) + 1, IfaceCounters::new(width));
    }

    /// Integrate rates into counters/deliveries from `last_accrue` to `t`.
    fn accrue_to(&mut self, t: Timestamp) {
        if t <= self.last_accrue {
            return;
        }
        // Lazy settling: time is about to advance over unsettled state
        // — rate integration observes the rates, so settle first.
        // Entry dirt is exempt: it settles on the historical schedule
        // (after the next batch's output collection), preserving the
        // stale-rate integration over the gap.
        if self.cfg.settle == SettleMode::Lazy
            && !self.needs_batch_settle
            && self.dirty.needs_realloc()
        {
            self.reallocate();
        }
        let dt = (t - self.last_accrue).as_secs_f64();
        self.last_accrue = t;
        // Link counters: dense sweep, direct agent-slot indexing, no
        // intermediate allocation.
        let Core {
            link_recs, agents, ..
        } = self;
        for rec in link_recs.iter_mut() {
            if rec.state.rate <= 0.0 {
                continue;
            }
            rec.carry += rec.state.rate * dt;
            let whole = rec.carry.floor();
            rec.carry -= whole;
            if whole > 0.0 {
                let bytes = whole as u64;
                let tx_idx = u32::from(rec.tx_iface.0) + 1;
                let rx_idx = u32::from(rec.rx_iface.0) + 1;
                if let Some(c) = agents[rec.from_slot as usize].counters_mut(tx_idx) {
                    c.out_octets.add(bytes);
                    c.out_pkts.add(bytes / 1500 + 1);
                }
                if let Some(c) = agents[rec.to_slot as usize].counters_mut(rx_idx) {
                    c.in_octets.add(bytes);
                    c.in_pkts.add(bytes / 1500 + 1);
                }
            }
        }
        // Flow deliveries.
        for f in self.flow_recs.iter_mut().flatten() {
            if f.rate > 0.0 {
                f.delivered += f.rate * dt;
            }
        }
        self.stats.unroutable_flow_secs += self.stranded as f64 * dt;
    }

    fn dispatch(&mut self, ev: Ev) {
        self.stats.events += 1;
        fib_trace::set_sim_now(self.now.0);
        let _span = fib_trace::span(fib_trace::Phase::KernelDispatch);
        match ev {
            Ev::Pkt {
                to_slot,
                iface,
                data,
            } => {
                let len = data.len() as u64;
                let to = self.router_ids[to_slot as usize];
                // Account received control bytes; drop on a down link.
                if let Some(&ix) = self.iface_to_link.get(&(to, iface)) {
                    let rx = (ix ^ 1) as usize;
                    if !self.link_recs[rx].state.up {
                        self.stats.ctrl_dropped += 1;
                        return;
                    }
                    let idx = u32::from(iface.0) + 1;
                    if let Some(c) = self.agents[to_slot as usize].counters_mut(idx) {
                        c.count_rx(len);
                    }
                }
                let _ = self.instances[to_slot as usize].handle_packet(iface, data, self.now);
                self.stats.ctrl_pkts += 1;
                self.stats.ctrl_bytes += len;
                self.touch(to_slot);
            }
            Ev::Tick(cid) => {
                self.pending_ticks.push(cid);
            }
            Ev::Sample => {
                let now = self.now;
                for i in 0..self.sampled.len() {
                    let rate = {
                        let key = self.sampled[i].1;
                        self.link_idx
                            .get(&key)
                            .map(|&ix| self.link_recs[ix as usize].state.rate)
                            .unwrap_or(0.0)
                    };
                    let name = &self.sampled[i].0;
                    self.recorder.record(name, now, rate);
                }
                self.queue
                    .push(self.now + self.cfg.sample_interval, Ev::Sample);
            }
            Ev::User(ev) => self.apply_event(ev),
        }
    }

    /// Apply a public [`Event`] now (shared by queue dispatch and the
    /// immediate-action context methods).
    fn apply_event(&mut self, ev: Event) {
        match ev {
            Event::FlowStart { id, spec } => self.start_flow_with_id(id, spec),
            Event::FlowStop { id } => {
                self.stop_flow_inner(id);
            }
            Event::FlowCap { id, cap } => {
                self.set_flow_cap_inner(id, cap);
            }
            Event::LinkAdmin { a, b, up } => {
                self.set_link_up(a, b, up);
            }
            Event::LinkCapacity { a, b, capacity } => {
                self.set_link_capacity_inner(a, b, capacity);
            }
        }
    }

    /// Allocate the next flow id (the dense index into the flow arena).
    pub(crate) fn alloc_flow_id(&mut self) -> FlowId {
        self.next_flow_id += 1;
        FlowId(self.next_flow_id)
    }

    /// Schedule a public event; one path for every kind.
    pub(crate) fn schedule_event(&mut self, at: Timestamp, ev: Event) -> EventId {
        self.queue.push(at, Ev::User(ev))
    }

    pub(crate) fn start_flow_with_id(&mut self, id: FlowId, spec: FlowSpec) {
        let key = FlowKey {
            src: spec.src,
            dst: spec.dst,
            id: spec.hash_id.unwrap_or(id.0),
        };
        let flow = Flow {
            id,
            key,
            cap: spec.cap,
            tag: spec.tag,
            started_at: self.now,
            rate: 0.0,
            path: None,
            delivered: 0.0,
        };
        let info = flow.info();
        self.flow_index.insert(key.dst, id);
        let slot = id.0 as usize;
        if self.flow_recs.len() <= slot {
            self.flow_recs.resize_with(slot + 1, || None);
        }
        match self.flow_recs[slot].replace(flow) {
            Some(old) => {
                // Same replace-silently semantics as the old map
                // insert (reachable only by rescheduling a live id).
                if old.path.is_none() {
                    self.stranded -= 1;
                }
            }
            None => self.live_flows += 1,
        }
        self.stranded += 1;
        self.dirty.mark_flow(id);
        self.pending_flow_events.push((true, info));
        self.note_mutation();
    }

    pub(crate) fn stop_flow_inner(&mut self, id: FlowId) -> bool {
        let Some(f) = self.flow_recs.get_mut(id.0 as usize).and_then(|o| o.take()) else {
            return false;
        };
        self.live_flows -= 1;
        if f.path.is_none() {
            self.stranded -= 1;
        }
        self.flow_index.remove(f.key.dst, id);
        self.dirty.forget_flow(id);
        self.dirty.mark_realloc();
        self.pending_flow_events.push((false, f.info()));
        self.note_mutation();
        true
    }

    pub(crate) fn set_flow_cap_inner(&mut self, id: FlowId, cap: Option<f64>) -> bool {
        match self
            .flow_recs
            .get_mut(id.0 as usize)
            .and_then(|o| o.as_mut())
        {
            Some(f) => {
                if f.cap != cap {
                    f.cap = cap;
                    // A cap moves rates, never paths: no re-resolution.
                    self.dirty.mark_realloc();
                    self.note_mutation();
                }
                true
            }
            None => false,
        }
    }

    pub(crate) fn set_link_up(&mut self, a: RouterId, b: RouterId, up: bool) -> bool {
        let mut found = false;
        let keys = [LinkKey::new(a, b), LinkKey::new(b, a)];
        for key in keys {
            if let Some(&ix) = self.link_idx.get(&key) {
                self.link_recs[ix as usize].state.up = up;
                self.dirty.mark_realloc();
                found = true;
            }
        }
        if found {
            // Re-resolve flows whose cached path crosses the link, and
            // — on restore — every stranded flow: its FIB path may now
            // be usable again even before the IGP reacts.
            let dirty = &mut self.dirty;
            for f in self.flow_recs.iter().flatten() {
                match &f.path {
                    Some(p) if p.iter().any(|l| keys.contains(l)) => dirty.mark_flow(f.id),
                    None if up => dirty.mark_flow(f.id),
                    _ => {}
                }
            }
        }
        if found && self.cfg.carrier_detect {
            let pairs = [(a, b), (b, a)];
            for (r, peer) in pairs {
                let iface = self
                    .iface_to_link
                    .iter()
                    .find(|((rid, _), &ix)| {
                        *rid == r && self.link_recs[ix as usize].state.key.to == peer
                    })
                    .map(|((_, i), _)| *i);
                if let (Some(iface), Some(&slot)) = (iface, self.router_slot.get(&r)) {
                    let now = self.now;
                    let _ = self.instances[slot as usize].set_iface_enabled(iface, up, now);
                    self.touch(slot);
                }
            }
        }
        if found {
            self.note_mutation();
        }
        found
    }

    pub(crate) fn set_link_capacity_inner(
        &mut self,
        a: RouterId,
        b: RouterId,
        capacity: f64,
    ) -> bool {
        if capacity <= 0.0 {
            return false;
        }
        let mut found = false;
        for key in [LinkKey::new(a, b), LinkKey::new(b, a)] {
            if let Some(&ix) = self.link_idx.get(&key) {
                let rec = &mut self.link_recs[ix as usize];
                if rec.state.capacity != capacity {
                    rec.state.capacity = capacity;
                    // Capacity moves rates, never paths.
                    self.dirty.mark_realloc();
                    self.note_mutation();
                }
                found = true;
            }
        }
        found
    }

    /// Poll exactly the instances whose earliest deadline is due.
    fn poll_due(&mut self, t: Timestamp) {
        let mut due = std::mem::take(&mut self.due_scratch);
        self.deadlines.pop_due(t, &mut due);
        for &slot in &due {
            self.instances[slot as usize].poll_timers(t);
            self.touch(slot);
        }
        self.due_scratch = due;
    }

    fn collect_outputs(&mut self) {
        if self.touched.is_empty() {
            return;
        }
        // Drain touched instances in RouterId order — the exact
        // iteration (and hence packet push) order of the old
        // scan-everyone collector; untouched instances have nothing.
        let mut order: Vec<u32> = self.touched.iter().copied().collect();
        self.touched.clear();
        order.sort_by_key(|&s| self.router_ids[s as usize]);
        let mut sends: Vec<(u32, IfaceId, Bytes)> = Vec::new();
        for &slot in &order {
            let id = self.router_ids[slot as usize];
            for out in self.instances[slot as usize].drain_output() {
                match out {
                    Output::Send { iface, data } => sends.push((slot, iface, data)),
                    Output::FibUpdate(table) => {
                        let _span = fib_trace::span(fib_trace::Phase::FibInstall);
                        let changed = self.fibs.entry(id).or_default().install_diff(&table);
                        // The instance only emits on route-table change,
                        // so settle the allocation either way (pinned
                        // realloc instants); re-resolve exactly the
                        // flows this download can reroute.
                        self.dirty.mark_realloc();
                        self.invalidate_fib_change(id, &changed);
                    }
                    Output::NeighborChange { .. } => {}
                }
            }
        }
        for (from_slot, iface, data) in sends {
            let from = self.router_ids[from_slot as usize];
            let Some(&ix) = self.iface_to_link.get(&(from, iface)) else {
                self.stats.ctrl_dropped += 1;
                continue;
            };
            let rec = &self.link_recs[ix as usize];
            if !rec.state.up {
                self.stats.ctrl_dropped += 1;
                continue;
            }
            // Account transmitted control bytes.
            let idx = u32::from(rec.tx_iface.0) + 1;
            let len = data.len() as u64;
            let (to_slot, rx_iface, delay) = (rec.to_slot, rec.rx_iface, rec.state.delay);
            if let Some(c) = self.agents[from_slot as usize].counters_mut(idx) {
                c.count_tx(len);
            }
            self.queue.push(
                self.now + delay,
                Ev::Pkt {
                    to_slot,
                    iface: rx_iface,
                    data,
                },
            );
        }
    }

    /// Mark the flows a FIB download at `router` can actually reroute:
    /// destined to a changed prefix (via the reverse index) *and*
    /// either currently stranded or passing through `router` — a walk
    /// that never visits the router cannot change when only that
    /// router's table did.
    fn invalidate_fib_change(&mut self, router: RouterId, changed: &[Prefix]) {
        let dirty = &mut self.dirty;
        for p in changed {
            for id in self.flow_index.affected_by(*p) {
                let Some(f) = self.flow_recs.get(id.0 as usize).and_then(|o| o.as_ref()) else {
                    continue;
                };
                let touched = match &f.path {
                    None => true,
                    Some(path) => f.key.src == router || path.iter().any(|l| l.to == router),
                };
                if touched {
                    dirty.mark_flow(id);
                }
            }
        }
    }

    /// Settle the data plane: re-resolve exactly the dirty flows'
    /// paths, then hand the full routed set to the reusable allocator
    /// (which itself skips when nothing moved).
    fn reallocate(&mut self) {
        self.stats.reallocs += 1;
        let _span = fib_trace::span(fib_trace::Phase::Settle);
        let dirty_flows = self.dirty.take();
        fib_trace::observe("settle.dirty_flows", dirty_flows.len() as u64);
        let mut resolved = 0u64;
        for id in &dirty_flows {
            // A flow may have been marked and then stopped in the same
            // batch.
            let Some(key) = self.flow(*id).map(|f| f.key) else {
                continue;
            };
            resolved += 1;
            let new_path = match resolve_path(&self.fibs, &key) {
                Ok(path) => {
                    let usable = path.iter().all(|l| {
                        self.link_idx
                            .get(l)
                            .map(|&ix| self.link_recs[ix as usize].state.up)
                            .unwrap_or(false)
                    });
                    if usable {
                        Some(path)
                    } else {
                        self.stats.unroutable += 1;
                        None
                    }
                }
                Err(_) => {
                    self.stats.unroutable += 1;
                    None
                }
            };
            let f = self.flow_recs[id.0 as usize].as_mut().expect("known flow");
            match (&f.path, &new_path) {
                (None, Some(_)) => self.stranded -= 1,
                (Some(_), None) => self.stranded += 1,
                _ => {}
            }
            f.path = new_path;
        }
        self.stats.paths_resolved += resolved;
        self.stats.paths_skipped += self.live_flows as u64 - resolved;
        // Allocation over up links only; flow inputs reference the
        // cached paths directly (no per-realloc clones).
        let capacities: BTreeMap<LinkKey, f64> = self
            .link_idx
            .iter()
            .filter(|(_, &ix)| self.link_recs[ix as usize].state.up)
            .map(|(k, &ix)| (*k, self.link_recs[ix as usize].state.capacity))
            .collect();
        self.alloc.allocate(
            &capacities,
            self.flow_recs
                .iter()
                .flatten()
                .filter_map(|f| f.path.as_deref().map(|p| (p, f.cap))),
        );
        let rates = self.alloc.rates();
        let mut next_rate = rates.iter().copied();
        for f in self.flow_recs.iter_mut().flatten() {
            f.rate = if f.path.is_some() {
                next_rate.next().expect("one rate per routed flow")
            } else {
                0.0
            };
        }
        for (k, &ix) in self.link_idx.iter() {
            self.link_recs[ix as usize].state.rate = self.alloc.load(k);
        }
        if self.cfg.check_loops {
            self.check_forwarding_loops();
        }
    }

    /// The loop-freedom probe: walk every announced prefix's live
    /// forwarding graph (each router's FIB entry contributes an edge
    /// per distinct ECMP next-hop router) and record any cycle. Pure
    /// read over the FIBs — it never dirties or mutates the world, so
    /// the settle schedule and all artifacts are unaffected.
    fn check_forwarding_loops(&mut self) {
        let mut prefixes: Vec<Prefix> = self.prefix_owners.iter().map(|(p, _)| *p).collect();
        prefixes.sort();
        prefixes.dedup();
        let mut found_any = false;
        for prefix in prefixes {
            // Edges in RouterId order (deterministic walk).
            let mut edges: BTreeMap<RouterId, Vec<RouterId>> = BTreeMap::new();
            for (r, fib) in &self.fibs {
                if let Some(crate::fib::FibEntry::Via(slots)) = fib.lookup(prefix) {
                    let mut hops: Vec<RouterId> = slots.iter().map(|s| s.router).collect();
                    hops.sort();
                    hops.dedup();
                    edges.insert(*r, hops);
                }
            }
            if let Some(cycle) = find_cycle(&edges) {
                found_any = true;
                if self.loop_log.len() < LOOP_LOG_CAP {
                    self.loop_log.push(LoopViolation {
                        at: self.now,
                        prefix,
                        cycle,
                    });
                }
            }
        }
        if found_any {
            self.stats.fwd_loop_settles += 1;
        }
    }
}

/// Find one cycle in a next-hop multigraph (iterative colored DFS,
/// deterministic: roots and neighbors visit in sorted order). Returns
/// the routers on the cycle in forwarding order.
fn find_cycle(edges: &BTreeMap<RouterId, Vec<RouterId>>) -> Option<Vec<RouterId>> {
    #[derive(Clone, Copy, PartialEq)]
    enum Color {
        White,
        Gray,
        Black,
    }
    let mut color: BTreeMap<RouterId, Color> = edges.keys().map(|r| (*r, Color::White)).collect();
    for &root in edges.keys() {
        if color[&root] != Color::White {
            continue;
        }
        // Stack of (node, next neighbor index); `path` mirrors the
        // gray chain for cycle extraction.
        let mut stack: Vec<(RouterId, usize)> = vec![(root, 0)];
        color.insert(root, Color::Gray);
        let mut path: Vec<RouterId> = vec![root];
        while let Some((node, idx)) = stack.last_mut() {
            let node = *node;
            let hops = edges.get(&node).map(|v| v.as_slice()).unwrap_or(&[]);
            if *idx >= hops.len() {
                color.insert(node, Color::Black);
                stack.pop();
                path.pop();
                continue;
            }
            let next = hops[*idx];
            *idx += 1;
            match color.get(&next).copied() {
                // Terminal routers (Local entry or no entry) have no
                // outgoing edges and cannot be on a cycle.
                None => {}
                Some(Color::White) => {
                    color.insert(next, Color::Gray);
                    stack.push((next, 0));
                    path.push(next);
                }
                Some(Color::Gray) => {
                    let start = path.iter().position(|r| *r == next).expect("gray on path");
                    return Some(path[start..].to_vec());
                }
                Some(Color::Black) => {}
            }
        }
    }
    None
}

impl Sim {
    /// Create an empty world.
    pub fn new(cfg: SimConfig) -> Sim {
        Sim {
            core: Core::new(cfg),
            apps: Registry::new(),
            tick_intervals: Vec::new(),
        }
    }

    /// Add a forwarding router.
    pub fn add_router(&mut self, id: RouterId) {
        self.core.add_router_inner(id, true);
    }

    /// Add a controller speaker: participates in the IGP (flooding,
    /// injection) but computes no routes. Attach it to `attach` with a
    /// deliberately high cost so it never carries transit traffic.
    pub fn add_controller_speaker(&mut self, id: RouterId, attach: RouterId) {
        self.core.add_router_inner(id, false);
        self.core.add_link_inner(
            LinkSpec::new(id, attach, Metric(10_000), 1e7).with_delay(Dur::from_millis(1)),
        );
    }

    /// Add a symmetric link.
    pub fn add_link(&mut self, spec: LinkSpec) {
        self.core.add_link_inner(spec);
    }

    /// Announce a prefix at a router (metric 0).
    pub fn announce_prefix(&mut self, router: RouterId, prefix: Prefix) {
        let slot = *self.core.router_slot.get(&router).expect("router exists");
        self.core.instances[slot as usize].announce(prefix, Metric::ZERO);
        if self.core.started {
            self.core.touch(slot);
        }
        self.core.prefix_owners.push((prefix, router));
    }

    /// Register a component; its [`ComponentId`] is the next dense
    /// arena index (the handler's name is kept for tracing).
    pub fn add_app(&mut self, app: Box<dyn EventHandler>) -> ComponentId {
        self.tick_intervals.push(app.tick_interval());
        let name = app.name().to_string();
        self.apps.register(name, app)
    }

    /// Name a link direction for trace sampling.
    pub fn sample_link(&mut self, name: &str, from: RouterId, to: RouterId) {
        let key = LinkKey::new(from, to);
        match self
            .core
            .sampled
            .binary_search_by(|(n, _)| n.as_str().cmp(name))
        {
            Ok(i) => self.core.sampled[i].1 = key,
            Err(i) => self.core.sampled.insert(i, (name.to_string(), key)),
        }
    }

    /// Allocate a fresh flow id for a [`Event::FlowStart`] schedule.
    pub fn new_flow_id(&mut self) -> FlowId {
        self.core.alloc_flow_id()
    }

    /// Schedule a typed event; returns its cancellable id.
    pub fn schedule(&mut self, at: Timestamp, ev: Event) -> EventId {
        self.core.schedule_event(at, ev)
    }

    /// Cancel a scheduled event (`true` iff it was still pending).
    pub fn cancel(&mut self, id: EventId) -> bool {
        self.core.queue.cancel(id)
    }

    /// Arm (or disarm with `None`) the kernel queue's same-time
    /// [`TieBreak`] hook — the adversarial schedule explorer's
    /// injection point. Unarmed (the default), the queue is
    /// byte-identical to stock FIFO.
    pub fn set_tie_break(&mut self, hook: Option<Box<dyn TieBreak<Timestamp>>>) {
        self.core.queue.set_tie_break(hook);
    }

    /// The forwarding cycles caught so far by the loop-freedom probe
    /// (empty unless [`SimConfig::check_loops`] is set; capped at
    /// [`LOOP_LOG_CAP`] records while
    /// [`SimStats::fwd_loop_settles`] keeps counting).
    pub fn loop_violations(&self) -> &[LoopViolation] {
        &self.core.loop_log
    }

    /// Start the world: instances come up, components get
    /// [`AppEvent::Start`], the sampler begins.
    pub fn start(&mut self) {
        assert!(!self.core.started, "start() called twice");
        self.core.started = true;
        self.core.in_batch = true;
        for slot in 0..self.core.instances.len() as u32 {
            let now = self.core.now;
            self.core.instances[slot as usize].start(now);
            self.core.touch(slot);
        }
        self.core.collect_outputs();
        self.core.queue.push(self.core.now, Ev::Sample);
        for (i, interval) in self.tick_intervals.iter().enumerate() {
            if let Some(d) = interval {
                let at = self.core.now + *d;
                self.core.queue.push(at, Ev::Tick(ComponentId(i as u32)));
            }
        }
        for i in 0..self.apps.len() {
            let cid = ComponentId(i as u32);
            let mut ctx = SimContext {
                core: &mut self.core,
            };
            if let Some(app) = self.apps.get_mut(cid) {
                app.on_event(&mut ctx, AppEvent::Start);
            }
        }
        self.core.collect_outputs();
        if self.core.dirty.needs_realloc() {
            self.core.reallocate();
        }
        self.core.needs_batch_settle = false;
        self.core.in_batch = false;
    }

    /// Run the world until `until` (inclusive of events at `until`).
    pub fn run_until(&mut self, until: Timestamp) {
        assert!(self.core.started, "call start() first");
        let lazy = self.core.cfg.settle == SettleMode::Lazy;
        loop {
            let next_pkt = self.core.queue.peek_time();
            let next_timer = self.core.deadlines.peek_min();
            let next = match (next_pkt, next_timer) {
                (Some(a), Some(b)) => a.min(b),
                (Some(a), None) => a,
                (None, Some(b)) => b,
                (None, None) => break,
            };
            if next > until {
                break;
            }
            let t = next.max(self.core.now);
            self.core.in_batch = true;
            self.core.accrue_to(t);
            self.core.now = t;
            if fib_trace::enabled() {
                fib_trace::set_sim_now(t.0);
                fib_trace::counter("queue.depth", self.core.queue.len() as f64);
            }
            while let Some((_, ev)) = self.core.queue.pop_due(t) {
                self.core.dispatch(ev);
            }
            self.core.poll_due(t);
            self.core.collect_outputs();
            if lazy {
                // Settle only if components are about to observe the
                // world in this batch, or entry dirt is on its
                // historical schedule; otherwise defer to the next
                // observation point (accrual, or the end of the run).
                let apps_pending = !self.core.pending_ticks.is_empty()
                    || !self.core.pending_flow_events.is_empty();
                if self.core.dirty.needs_realloc() && (self.core.needs_batch_settle || apps_pending)
                {
                    self.core.reallocate();
                    self.core.needs_batch_settle = false;
                }
                self.dispatch_apps();
            } else {
                // Settle the fluid allocation before components
                // observe the world: a capacity change or FIB download
                // in this batch must not be visible as stale rates
                // against new provisioning. Components may dirty the
                // world again (new flows, lies), so settle once more
                // afterwards.
                if self.core.dirty.needs_realloc() {
                    self.core.reallocate();
                }
                self.core.needs_batch_settle = false;
                self.dispatch_apps();
                if self.core.dirty.needs_realloc() {
                    self.core.reallocate();
                }
            }
            self.core.in_batch = false;
        }
        if until > self.core.now {
            self.core.in_batch = true;
            self.core.accrue_to(until);
            self.core.now = until;
            self.core.in_batch = false;
        }
        if lazy && !self.core.needs_batch_settle && self.core.dirty.needs_realloc() {
            // End-of-run observation point: host code reads next.
            self.core.reallocate();
        }
    }

    fn dispatch_apps(&mut self) {
        // Bounded ping-pong: components reacting to notifications may
        // create flows, which notify again within the same instant.
        for _round in 0..8 {
            let ticks: Vec<ComponentId> = std::mem::take(&mut self.core.pending_ticks);
            let events: Vec<(bool, FlowInfo)> = std::mem::take(&mut self.core.pending_flow_events);
            if ticks.is_empty() && events.is_empty() {
                break;
            }
            for cid in ticks {
                let mut ctx = SimContext {
                    core: &mut self.core,
                };
                if let Some(app) = self.apps.get_mut(cid) {
                    app.on_event(&mut ctx, AppEvent::Tick);
                }
                // Re-arm the periodic tick.
                if let Some(Some(d)) = self.tick_intervals.get(cid.index()) {
                    let at = self.core.now + *d;
                    self.core.queue.push(at, Ev::Tick(cid));
                }
            }
            for (started, info) in events {
                for i in 0..self.apps.len() {
                    let cid = ComponentId(i as u32);
                    let mut ctx = SimContext {
                        core: &mut self.core,
                    };
                    if let Some(app) = self.apps.get_mut(cid) {
                        let ev = if started {
                            AppEvent::FlowStarted(&info)
                        } else {
                            AppEvent::FlowStopped(&info)
                        };
                        app.on_event(&mut ctx, ev);
                    }
                }
            }
            self.core.collect_outputs();
        }
    }

    /// Current time.
    pub fn now(&self) -> Timestamp {
        self.core.now
    }

    /// The typed world handle (what components receive during
    /// dispatch; host code uses it between runs for the same reads,
    /// mutations, and scheduling).
    pub fn ctx(&mut self) -> SimContext<'_> {
        SimContext {
            core: &mut self.core,
        }
    }

    /// The trace recorder.
    pub fn recorder(&self) -> &Recorder {
        &self.core.recorder
    }

    /// World statistics (allocator and per-instance SPF counters are
    /// folded in at read time).
    pub fn stats(&self) -> SimStats {
        let mut s = self.core.stats;
        s.alloc_fills = self.core.alloc.fills;
        s.alloc_skips = self.core.alloc.skips;
        for inst in &self.core.instances {
            let (full, partial) = inst.spf_run_counts();
            s.spf_full_runs += full;
            s.spf_partial_runs += partial;
        }
        s
    }

    /// A router's protocol instance (inspection).
    pub fn instance(&self, id: RouterId) -> Option<&Instance> {
        let slot = *self.core.router_slot.get(&id)?;
        self.core.instances.get(slot as usize)
    }

    /// A router's current FIB (inspection).
    pub fn fib(&self, id: RouterId) -> Option<&Fib> {
        self.core.fibs.get(&id)
    }

    /// Iterate all live flows in id order (no snapshot allocation).
    pub fn flows(&self) -> impl Iterator<Item = &Flow> + '_ {
        self.core.flow_recs.iter().flatten()
    }

    /// Number of live flows.
    pub fn flow_count(&self) -> usize {
        self.core.live_flows
    }

    /// Current rate of a directed link.
    pub fn link_rate(&self, from: RouterId, to: RouterId) -> Option<f64> {
        self.core
            .link_idx
            .get(&LinkKey::new(from, to))
            .map(|&ix| self.core.link_recs[ix as usize].state.rate)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use fib_igp::types::FwAddr;
    use fib_telemetry::mib::Value;

    fn r(n: u32) -> RouterId {
        RouterId(n)
    }

    /// r1 - r2 - r3 line, prefix at r3, capacities 1 MB/s.
    fn line_sim() -> Sim {
        let mut sim = Sim::new(SimConfig::default());
        for i in 1..=3 {
            sim.add_router(r(i));
        }
        sim.add_link(LinkSpec::new(r(1), r(2), Metric(1), 1e6));
        sim.add_link(LinkSpec::new(r(2), r(3), Metric(1), 1e6));
        sim.announce_prefix(r(3), Prefix::net24(1));
        sim
    }

    /// Schedule a flow start through the typed event path.
    fn sched_flow(sim: &mut Sim, at: Timestamp, spec: FlowSpec) -> FlowId {
        let id = sim.new_flow_id();
        sim.schedule(at, Event::FlowStart { id, spec });
        id
    }

    #[test]
    fn igp_converges_and_flow_routes() {
        let mut sim = line_sim();
        let fid = sched_flow(
            &mut sim,
            Timestamp::from_secs(10),
            FlowSpec::new(r(1), Prefix::net24(1)),
        );
        sim.start();
        sim.run_until(Timestamp::from_secs(12));
        // Flow should be at full capacity over both links.
        let ctx = sim.ctx();
        let rate = ctx.flow_rate(fid).unwrap();
        assert!((rate - 1e6).abs() < 1.0, "rate {rate}");
        let path = ctx.flow_path(fid).unwrap();
        assert_eq!(path, &[LinkKey::new(r(1), r(2)), LinkKey::new(r(2), r(3))]);
        assert!((sim.link_rate(r(1), r(2)).unwrap() - 1e6).abs() < 1.0);
    }

    #[test]
    fn two_flows_share_bottleneck() {
        let mut sim = line_sim();
        let f1 = sched_flow(
            &mut sim,
            Timestamp::from_secs(10),
            FlowSpec::new(r(1), Prefix::net24(1)),
        );
        let f2 = sched_flow(
            &mut sim,
            Timestamp::from_secs(10),
            FlowSpec::new(r(2), Prefix::net24(1)),
        );
        sim.start();
        sim.run_until(Timestamp::from_secs(12));
        let ctx = sim.ctx();
        let r1 = ctx.flow_rate(f1).unwrap();
        let r2 = ctx.flow_rate(f2).unwrap();
        assert!((r1 - 5e5).abs() < 1.0, "r1 {r1}");
        assert!((r2 - 5e5).abs() < 1.0, "r2 {r2}");
    }

    #[test]
    fn capped_flow_stays_capped() {
        let mut sim = line_sim();
        let f = sched_flow(
            &mut sim,
            Timestamp::from_secs(10),
            FlowSpec::new(r(1), Prefix::net24(1)).with_cap(1e5),
        );
        sim.start();
        sim.run_until(Timestamp::from_secs(15));
        let ctx = sim.ctx();
        assert!((ctx.flow_rate(f).unwrap() - 1e5).abs() < 1.0);
        // Delivered ≈ cap × elapsed (5 s minus allocation instant).
        let delivered = ctx.flow_delivered(f).unwrap();
        assert!(
            delivered > 4.0e5 && delivered < 5.5e5,
            "delivered {delivered}"
        );
    }

    #[test]
    fn counters_reflect_data_traffic() {
        let mut sim = line_sim();
        sched_flow(
            &mut sim,
            Timestamp::from_secs(10),
            FlowSpec::new(r(1), Prefix::net24(1)).with_cap(1e5),
        );
        sim.start();
        sim.run_until(Timestamp::from_secs(20));
        // r1's interface toward r2 should show ~1e6 bytes out.
        let mut ctx = sim.ctx();
        let idx = ctx.ifindex_for(r(1), r(2)).unwrap();
        let v = ctx.snmp_get(r(1), &fib_telemetry::mib::oids::if_out_octets().child(idx));
        match v {
            Some(Value::Counter(c)) => {
                assert!((9e5..1.2e6).contains(&(c as f64)), "unexpected counter {c}");
            }
            other => panic!("unexpected SNMP value {other:?}"),
        }
    }

    #[test]
    fn flow_stops_and_link_drains() {
        let mut sim = line_sim();
        let f = sched_flow(
            &mut sim,
            Timestamp::from_secs(10),
            FlowSpec::new(r(1), Prefix::net24(1)),
        );
        sim.schedule(Timestamp::from_secs(20), Event::FlowStop { id: f });
        sim.start();
        sim.run_until(Timestamp::from_secs(25));
        assert_eq!(sim.link_rate(r(1), r(2)), Some(0.0));
        assert!(sim.flows().next().is_none());
        assert_eq!(sim.flow_count(), 0);
    }

    #[test]
    fn link_failure_makes_flow_unroutable_then_recovers() {
        // Square topology with two paths.
        let mut sim = Sim::new(SimConfig::default());
        for i in 1..=4 {
            sim.add_router(r(i));
        }
        sim.add_link(LinkSpec::new(r(1), r(2), Metric(1), 1e6));
        sim.add_link(LinkSpec::new(r(2), r(4), Metric(1), 1e6));
        sim.add_link(LinkSpec::new(r(1), r(3), Metric(10), 1e6));
        sim.add_link(LinkSpec::new(r(3), r(4), Metric(10), 1e6));
        sim.announce_prefix(r(4), Prefix::net24(1));
        let f = sched_flow(
            &mut sim,
            Timestamp::from_secs(10),
            FlowSpec::new(r(1), Prefix::net24(1)),
        );
        sim.schedule(
            Timestamp::from_secs(20),
            Event::LinkAdmin {
                a: r(1),
                b: r(2),
                up: false,
            },
        );
        sim.start();
        sim.run_until(Timestamp::from_secs(15));
        assert_eq!(
            sim.ctx().flow_path(f).unwrap()[0],
            LinkKey::new(r(1), r(2)),
            "initial path via r2"
        );
        sim.run_until(Timestamp::from_secs(30));
        let ctx = sim.ctx();
        let path = ctx.flow_path(f).expect("rerouted after failure");
        assert_eq!(path[0], LinkKey::new(r(1), r(3)), "rerouted via r3");
        assert!((ctx.flow_rate(f).unwrap() - 1e6).abs() < 1.0);
    }

    #[test]
    fn ctx_fail_and_restore_link() {
        let mut sim = line_sim();
        let f = sched_flow(
            &mut sim,
            Timestamp::from_secs(10),
            FlowSpec::new(r(1), Prefix::net24(1)),
        );
        sim.start();
        sim.run_until(Timestamp::from_secs(12));
        assert!(sim.ctx().flow_path(f).is_some());
        // Fail the only link out of r1: the flow strands and the
        // blackout clock runs.
        assert!(sim.ctx().fail_link(r(1), r(2)));
        assert!(!sim.ctx().fail_link(r(1), r(9)), "unknown link");
        sim.run_until(Timestamp::from_secs(20));
        assert!(sim.ctx().flow_path(f).is_none(), "no path while down");
        let stranded = sim.stats().unroutable_flow_secs;
        assert!(stranded > 7.0, "blackout seconds accrue: {stranded}");
        // Restore: the IGP re-converges and the flow routes again.
        assert!(sim.ctx().restore_link(r(1), r(2)));
        sim.run_until(Timestamp::from_secs(40));
        assert!(sim.ctx().flow_path(f).is_some(), "rerouted after restore");
        let after = sim.stats().unroutable_flow_secs;
        assert!(
            after - stranded < 15.0,
            "clock stops once routed: {after} vs {stranded}"
        );
    }

    #[test]
    fn capacity_change_rescales_allocation() {
        let mut sim = line_sim();
        let f = sched_flow(
            &mut sim,
            Timestamp::from_secs(10),
            FlowSpec::new(r(1), Prefix::net24(1)),
        );
        sim.schedule(
            Timestamp::from_secs(20),
            Event::LinkCapacity {
                a: r(1),
                b: r(2),
                capacity: 2.5e5,
            },
        );
        sim.start();
        sim.run_until(Timestamp::from_secs(15));
        assert!((sim.ctx().flow_rate(f).unwrap() - 1e6).abs() < 1.0);
        sim.run_until(Timestamp::from_secs(25));
        // The degraded link is now the bottleneck.
        assert!((sim.ctx().flow_rate(f).unwrap() - 2.5e5).abs() < 1.0);
        // Direct context variant, and validation of bad inputs.
        assert!(sim.ctx().set_link_capacity(r(1), r(2), 1e6));
        assert!(!sim.ctx().set_link_capacity(r(1), r(2), 0.0));
        assert!(!sim.ctx().set_link_capacity(r(1), r(9), 1e6));
        sim.run_until(Timestamp::from_secs(30));
        assert!((sim.ctx().flow_rate(f).unwrap() - 1e6).abs() < 1.0);
    }

    #[test]
    fn sampling_records_series() {
        let mut sim = line_sim();
        sim.sample_link("r1-r2", r(1), r(2));
        sched_flow(
            &mut sim,
            Timestamp::from_secs(10),
            FlowSpec::new(r(1), Prefix::net24(1)).with_cap(2e5),
        );
        sim.start();
        sim.run_until(Timestamp::from_secs(15));
        let series = sim.recorder().series("r1-r2");
        assert!(!series.is_empty());
        let max = sim.recorder().max("r1-r2").unwrap();
        assert!((max - 2e5).abs() < 1.0, "max {max}");
        // Before the flow: zero.
        assert_eq!(sim.recorder().value_at("r1-r2", 5.0), Some(0.0));
    }

    #[test]
    fn determinism_same_seed_same_trace() {
        let run = || {
            let mut sim = line_sim();
            sim.sample_link("r1-r2", r(1), r(2));
            for i in 0..10 {
                sched_flow(
                    &mut sim,
                    Timestamp::from_secs(10 + i),
                    FlowSpec::new(r(1), Prefix::net24(1)).with_cap(5e4),
                );
            }
            sim.start();
            sim.run_until(Timestamp::from_secs(30));
            sim.recorder().to_csv()
        };
        assert_eq!(run(), run());
    }

    #[test]
    fn fake_injection_changes_fib_via_flooding() {
        // Triangle: r1-r2 cost 1, r2-r3 cost 1, r1-r3 cost 5.
        // Prefix at r3. r1 routes via r2 (cost 2). A controller speaker
        // at r4 injects a fake node on r1 with cost 2 via the direct
        // r1→r3 link: r1 gains a second ECMP slot.
        let mut sim = Sim::new(SimConfig::default());
        for i in 1..=3 {
            sim.add_router(r(i));
        }
        sim.add_link(LinkSpec::new(r(1), r(2), Metric(1), 1e6));
        sim.add_link(LinkSpec::new(r(2), r(3), Metric(1), 1e6));
        sim.add_link(LinkSpec::new(r(1), r(3), Metric(5), 1e6));
        sim.announce_prefix(r(3), Prefix::net24(1));
        sim.add_controller_speaker(r(100), r(2));
        sim.start();
        sim.run_until(Timestamp::from_secs(10));
        {
            let mut ctx = sim.ctx();
            assert_eq!(
                ctx.fib_nexthops(r(1), Prefix::net24(1)),
                vec![FwAddr::primary(r(2))]
            );
            ctx.inject_fake(
                r(100),
                RouterId::fake(0),
                r(1),
                Metric(1),
                Prefix::net24(1),
                Metric(1),
                FwAddr::secondary(r(3), 1),
            )
            .unwrap();
        }
        sim.run_until(Timestamp::from_secs(20));
        let ctx = sim.ctx();
        let hops = ctx.fib_nexthops(r(1), Prefix::net24(1));
        assert_eq!(
            hops,
            vec![FwAddr::primary(r(2)), FwAddr::secondary(r(3), 1)],
            "lie should add an ECMP slot at r1"
        );
    }

    /// Scheduled events are cancellable until they fire.
    #[test]
    fn cancelled_events_never_apply() {
        let mut sim = line_sim();
        let f = sched_flow(
            &mut sim,
            Timestamp::from_secs(10),
            FlowSpec::new(r(1), Prefix::net24(1)),
        );
        let stop = sim.schedule(Timestamp::from_secs(20), Event::FlowStop { id: f });
        let fail = sim.schedule(
            Timestamp::from_secs(20),
            Event::LinkAdmin {
                a: r(1),
                b: r(2),
                up: false,
            },
        );
        assert!(sim.cancel(stop));
        assert!(sim.cancel(fail));
        assert!(!sim.cancel(stop), "double cancel reports false");
        sim.start();
        sim.run_until(Timestamp::from_secs(25));
        // Neither the stop nor the failure happened.
        assert_eq!(sim.flow_count(), 1);
        assert!((sim.ctx().flow_rate(f).unwrap() - 1e6).abs() < 1.0);
        assert!(!sim.cancel(stop), "cancel after fire window reports false");
    }

    /// Lazy settling produces byte-identical traces and deliveries;
    /// only the machinery counters (reallocs, resolution counts) may
    /// differ.
    #[test]
    fn lazy_settle_trace_identical_to_eager() {
        let run = |settle: SettleMode| {
            let mut sim = Sim::new(SimConfig {
                settle,
                ..SimConfig::default()
            });
            for i in 1..=3 {
                sim.add_router(r(i));
            }
            sim.add_link(LinkSpec::new(r(1), r(2), Metric(1), 1e6));
            sim.add_link(LinkSpec::new(r(2), r(3), Metric(1), 1e6));
            sim.announce_prefix(r(3), Prefix::net24(1));
            sim.sample_link("r1-r2", r(1), r(2));
            let mut ids = Vec::new();
            for i in 0..6 {
                ids.push(sched_flow(
                    &mut sim,
                    Timestamp::from_millis(8_000 + 1_700 * i),
                    FlowSpec::new(r(1), Prefix::net24(1)).with_cap(1e5 + 3e4 * i as f64),
                ));
            }
            sim.schedule(Timestamp::from_secs(14), Event::FlowStop { id: ids[1] });
            sim.schedule(
                Timestamp::from_secs(16),
                Event::LinkCapacity {
                    a: r(1),
                    b: r(2),
                    capacity: 4e5,
                },
            );
            sim.schedule(
                Timestamp::from_secs(18),
                Event::LinkAdmin {
                    a: r(2),
                    b: r(3),
                    up: false,
                },
            );
            sim.schedule(
                Timestamp::from_secs(22),
                Event::LinkAdmin {
                    a: r(2),
                    b: r(3),
                    up: true,
                },
            );
            sim.start();
            sim.run_until(Timestamp::from_secs(13));
            // Mutate between runs: entry dirt must follow the
            // historical settle schedule in both modes.
            sim.ctx().set_link_capacity(r(2), r(3), 8e5);
            sim.run_until(Timestamp::from_secs(30));
            let delivered: Vec<(FlowId, Option<f64>)> = ids
                .iter()
                .map(|&id| (id, sim.ctx().flow_delivered(id)))
                .collect();
            let stats = sim.stats();
            (sim.recorder().to_csv(), delivered, stats)
        };
        let (csv_e, del_e, st_e) = run(SettleMode::Eager);
        let (csv_l, del_l, st_l) = run(SettleMode::Lazy);
        assert_eq!(csv_e, csv_l, "recorded traces must match");
        assert_eq!(del_e, del_l, "flow deliveries must match");
        // Observable statistics match; machinery counters may not.
        assert_eq!(st_e.events, st_l.events);
        assert_eq!(st_e.ctrl_pkts, st_l.ctrl_pkts);
        assert_eq!(st_e.ctrl_bytes, st_l.ctrl_bytes);
        assert_eq!(st_e.unroutable_flow_secs, st_l.unroutable_flow_secs);
        assert!(
            st_l.reallocs <= st_e.reallocs,
            "lazy settles at most as often: {} vs {}",
            st_l.reallocs,
            st_e.reallocs
        );
    }

    #[test]
    fn find_cycle_detects_and_orders() {
        let mut edges: BTreeMap<RouterId, Vec<RouterId>> = BTreeMap::new();
        // 1 -> 2 -> 3 -> local (no cycle).
        edges.insert(r(1), vec![r(2)]);
        edges.insert(r(2), vec![r(3)]);
        assert_eq!(find_cycle(&edges), None);
        // Add 3 -> 1: cycle 1 -> 2 -> 3.
        edges.insert(r(3), vec![r(1)]);
        assert_eq!(find_cycle(&edges), Some(vec![r(1), r(2), r(3)]));
        // ECMP branch where only one branch loops is still caught.
        let mut edges: BTreeMap<RouterId, Vec<RouterId>> = BTreeMap::new();
        edges.insert(r(1), vec![r(2), r(4)]);
        edges.insert(r(4), vec![r(5)]);
        edges.insert(r(5), vec![r(4)]);
        assert_eq!(find_cycle(&edges), Some(vec![r(4), r(5)]));
    }

    #[test]
    fn loop_probe_is_silent_on_a_healthy_world_and_changes_nothing() {
        let run = |check_loops: bool| {
            let mut sim = Sim::new(SimConfig {
                check_loops,
                ..SimConfig::default()
            });
            for i in 1..=3 {
                sim.add_router(r(i));
            }
            sim.add_link(LinkSpec::new(r(1), r(2), Metric(1), 1e6));
            sim.add_link(LinkSpec::new(r(2), r(3), Metric(1), 1e6));
            sim.announce_prefix(r(3), Prefix::net24(1));
            sched_flow(
                &mut sim,
                Timestamp::from_secs(10),
                FlowSpec::new(r(1), Prefix::net24(1)),
            );
            sim.start();
            sim.run_until(Timestamp::from_secs(15));
            assert_eq!(sim.loop_violations(), &[] as &[LoopViolation]);
            (sim.recorder().to_csv(), sim.stats().events)
        };
        assert_eq!(run(false), run(true), "probe must be read-only");
    }

    #[test]
    fn armed_identity_tie_break_changes_nothing() {
        struct Identity;
        impl TieBreak<Timestamp> for Identity {
            fn permute(&mut self, _at: Timestamp, _n: usize, _out: &mut Vec<u32>) {}
        }
        let run = |armed: bool| {
            let mut sim = line_sim();
            if armed {
                sim.set_tie_break(Some(Box::new(Identity)));
            }
            for i in 0..4 {
                sched_flow(
                    &mut sim,
                    Timestamp::from_secs(10),
                    FlowSpec::new(r(1 + i % 2), Prefix::net24(1)),
                );
            }
            sim.start();
            sim.run_until(Timestamp::from_secs(20));
            let stats = sim.stats();
            (sim.recorder().to_csv(), stats.events, stats.ctrl_pkts)
        };
        assert_eq!(run(false), run(true));
    }
}
