//! A deterministic discrete-event queue.
//!
//! Events fire in `(time, insertion sequence)` order, so simultaneous
//! events are processed exactly in the order they were scheduled —
//! identical runs produce identical traces, which the reproducibility
//! tests assert.

use fib_igp::time::Timestamp;
use std::collections::BinaryHeap;

struct Entry<T> {
    at: Timestamp,
    seq: u64,
    item: T,
}

impl<T> PartialEq for Entry<T> {
    fn eq(&self, other: &Self) -> bool {
        self.at == other.at && self.seq == other.seq
    }
}
impl<T> Eq for Entry<T> {}
impl<T> PartialOrd for Entry<T> {
    fn partial_cmp(&self, other: &Self) -> Option<std::cmp::Ordering> {
        Some(self.cmp(other))
    }
}
impl<T> Ord for Entry<T> {
    fn cmp(&self, other: &Self) -> std::cmp::Ordering {
        // Reversed: BinaryHeap is a max-heap, we want earliest first.
        (other.at, other.seq).cmp(&(self.at, self.seq))
    }
}

/// Min-heap of timestamped events with FIFO tie-breaking.
pub struct EventQueue<T> {
    heap: BinaryHeap<Entry<T>>,
    seq: u64,
}

impl<T> EventQueue<T> {
    /// An empty queue.
    pub fn new() -> EventQueue<T> {
        EventQueue {
            heap: BinaryHeap::new(),
            seq: 0,
        }
    }

    /// Schedule `item` at `at`.
    pub fn push(&mut self, at: Timestamp, item: T) {
        self.seq += 1;
        self.heap.push(Entry {
            at,
            seq: self.seq,
            item,
        });
    }

    /// Time of the earliest pending event.
    pub fn peek_time(&self) -> Option<Timestamp> {
        self.heap.peek().map(|e| e.at)
    }

    /// Pop the earliest event if it is due at or before `now`.
    pub fn pop_due(&mut self, now: Timestamp) -> Option<(Timestamp, T)> {
        if self.heap.peek().map(|e| e.at <= now).unwrap_or(false) {
            let e = self.heap.pop().expect("peeked");
            Some((e.at, e.item))
        } else {
            None
        }
    }

    /// Pop the earliest event unconditionally.
    pub fn pop(&mut self) -> Option<(Timestamp, T)> {
        self.heap.pop().map(|e| (e.at, e.item))
    }

    /// Number of pending events.
    pub fn len(&self) -> usize {
        self.heap.len()
    }

    /// `true` if nothing is pending.
    pub fn is_empty(&self) -> bool {
        self.heap.is_empty()
    }
}

impl<T> Default for EventQueue<T> {
    fn default() -> Self {
        EventQueue::new()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn t(ms: u64) -> Timestamp {
        Timestamp::from_millis(ms)
    }

    #[test]
    fn pops_in_time_order() {
        let mut q = EventQueue::new();
        q.push(t(30), "c");
        q.push(t(10), "a");
        q.push(t(20), "b");
        assert_eq!(q.peek_time(), Some(t(10)));
        assert_eq!(q.pop(), Some((t(10), "a")));
        assert_eq!(q.pop(), Some((t(20), "b")));
        assert_eq!(q.pop(), Some((t(30), "c")));
        assert_eq!(q.pop(), None);
    }

    #[test]
    fn simultaneous_events_are_fifo() {
        let mut q = EventQueue::new();
        for i in 0..100 {
            q.push(t(5), i);
        }
        for i in 0..100 {
            assert_eq!(q.pop().unwrap().1, i);
        }
    }

    #[test]
    fn pop_due_respects_now() {
        let mut q = EventQueue::new();
        q.push(t(10), 1);
        q.push(t(20), 2);
        assert_eq!(q.pop_due(t(5)), None);
        assert_eq!(q.pop_due(t(10)), Some((t(10), 1)));
        assert_eq!(q.pop_due(t(15)), None);
        assert_eq!(q.len(), 1);
        assert!(!q.is_empty());
    }
}
