//! Max-min fair fluid bandwidth allocation.
//!
//! Long-lived TCP flows sharing a capacitated network converge (to
//! first order) to the max-min fair allocation. The demo's Fig. 2
//! reports per-link throughput of 31–62 concurrent video flows; a
//! fluid model reproduces those equilibria deterministically and
//! without packet-level noise — the standard substitution for a
//! Mininet data plane (see DESIGN.md).
//!
//! The allocator implements progressive filling with per-flow rate
//! caps: all unfixed flows grow at the same rate; a step ends when a
//! link saturates (its flows are frozen) or a flow hits its cap
//! (application-limited, e.g. a video at its bitrate).
//!
//! Two implementations exist:
//!
//! * [`max_min_allocation`] / [`max_min_keyed`] — the straightforward
//!   full recompute, allocating fresh buffers per call. Retained as
//!   the reference the incremental allocator is proptested against
//!   (bit-for-bit, not just within a tolerance).
//! * [`Allocator`] — the hot-path version the simulator uses: buffers
//!   persist across calls, a call whose inputs are unchanged returns
//!   the cached result without touching the fill at all, and the fill
//!   itself keeps *active* flow/link sets so bottleneck groups that
//!   froze in an earlier round are skipped in later rounds instead of
//!   rescanned.
//!
//! Why no finer-grained reuse (refilling only the connected component
//! a change touched): progressive filling interleaves growth steps
//! *across* components — a freeze in one component splits the delta
//! sequence applied to every other. The final rates are mathematically
//! identical either way, but f64 addition is not associative, so a
//! per-component refill lands on different last-ulp bits than the
//! global fill that produced the previous trace. This repo pins runs
//! byte-for-byte (determinism tests, CI diffs), and an ulp can
//! amplify through discrete branches (a player stalling, a controller
//! threshold), so the allocator only skips work where the result is
//! provably bit-identical: unchanged inputs, and frozen groups within
//! one fill.

use std::collections::BTreeMap;

/// Input flow: the links it crosses (indexes into the capacity slice)
/// and an optional application rate cap in bytes/s.
#[derive(Debug, Clone)]
pub struct FluidFlow {
    /// Indexes of crossed links.
    pub links: Vec<usize>,
    /// Application-level cap (`None` = network-limited only).
    pub cap: Option<f64>,
}

/// Result of an allocation.
#[derive(Debug, Clone, PartialEq)]
pub struct Allocation {
    /// Per-flow rate in bytes/s (same order as the input).
    pub rates: Vec<f64>,
    /// Per-link total load in bytes/s (same order as capacities).
    pub link_loads: Vec<f64>,
}

/// Compute the max-min fair allocation of `flows` over links with the
/// given `capacities` (bytes/s).
///
/// Complexity: O(rounds × (F + L)) with rounds ≤ F + L. Flows crossing
/// no link (degenerate) are limited only by their cap (or get 0.0 if
/// uncapped — nothing constrains them, but an unconstrained flow has
/// no meaningful rate; we pin it to its cap or 0).
pub fn max_min_allocation(capacities: &[f64], flows: &[FluidFlow]) -> Allocation {
    let nl = capacities.len();
    let nf = flows.len();
    let mut rates = vec![0.0f64; nf];
    let mut fixed = vec![false; nf];
    let mut residual: Vec<f64> = capacities.to_vec();
    let mut link_active: Vec<usize> = vec![0; nl];

    for f in flows {
        for &l in &f.links {
            assert!(l < nl, "flow references unknown link {l}");
        }
    }

    // Degenerate flows: no links.
    for (i, f) in flows.iter().enumerate() {
        if f.links.is_empty() {
            rates[i] = f.cap.unwrap_or(0.0);
            fixed[i] = true;
        }
    }

    for (i, f) in flows.iter().enumerate() {
        if fixed[i] {
            continue;
        }
        for &l in &f.links {
            link_active[l] += 1;
        }
    }

    let mut remaining: usize = fixed.iter().filter(|x| !**x).count();
    let mut guard = 0usize;
    while remaining > 0 {
        guard += 1;
        assert!(
            guard <= nf + nl + 2,
            "progressive filling failed to converge"
        );
        // Largest uniform increment allowed by links.
        let mut delta = f64::INFINITY;
        for l in 0..nl {
            if link_active[l] > 0 {
                delta = delta.min((residual[l] / link_active[l] as f64).max(0.0));
            }
        }
        // ... and by flow caps.
        for (i, f) in flows.iter().enumerate() {
            if fixed[i] {
                continue;
            }
            if let Some(cap) = f.cap {
                delta = delta.min((cap - rates[i]).max(0.0));
            }
        }
        if !delta.is_finite() {
            // No link constrains any active flow and no caps: nothing
            // to grow against (cannot happen for flows with links and
            // positive capacities, but guard anyway).
            break;
        }

        // Apply the increment.
        for (i, f) in flows.iter().enumerate() {
            if fixed[i] {
                continue;
            }
            rates[i] += delta;
            for &l in &f.links {
                residual[l] -= delta;
            }
        }

        // Freeze flows at caps.
        let mut newly_fixed: Vec<usize> = Vec::new();
        for (i, f) in flows.iter().enumerate() {
            if fixed[i] {
                continue;
            }
            if let Some(cap) = f.cap {
                if rates[i] >= cap - 1e-9 {
                    newly_fixed.push(i);
                    continue;
                }
            }
        }
        // Freeze flows on saturated links.
        const EPS: f64 = 1e-9;
        for l in 0..nl {
            if link_active[l] > 0 && residual[l] <= EPS {
                for (i, f) in flows.iter().enumerate() {
                    if !fixed[i] && f.links.contains(&l) && !newly_fixed.contains(&i) {
                        newly_fixed.push(i);
                    }
                }
            }
        }
        if newly_fixed.is_empty() {
            // Numerical corner: force the most constrained flow fixed.
            if let Some(i) = (0..nf).find(|i| !fixed[*i]) {
                newly_fixed.push(i);
            }
        }
        for i in newly_fixed {
            if !fixed[i] {
                fixed[i] = true;
                remaining -= 1;
                for &l in &flows[i].links {
                    link_active[l] -= 1;
                }
            }
        }
    }

    let mut link_loads = vec![0.0; nl];
    for (i, f) in flows.iter().enumerate() {
        for &l in &f.links {
            link_loads[l] += rates[i];
        }
    }
    Allocation { rates, link_loads }
}

/// Convenience wrapper keyed by arbitrary link identifiers.
pub fn max_min_keyed<K: Ord + Clone>(
    capacities: &BTreeMap<K, f64>,
    flows: &[(Vec<K>, Option<f64>)],
) -> (Vec<f64>, BTreeMap<K, f64>) {
    let keys: Vec<K> = capacities.keys().cloned().collect();
    let index: BTreeMap<K, usize> = keys
        .iter()
        .enumerate()
        .map(|(i, k)| (k.clone(), i))
        .collect();
    let caps: Vec<f64> = keys.iter().map(|k| capacities[k]).collect();
    let fluid_flows: Vec<FluidFlow> = flows
        .iter()
        .map(|(links, cap)| FluidFlow {
            links: links.iter().map(|k| index[k]).collect(),
            cap: *cap,
        })
        .collect();
    let alloc = max_min_allocation(&caps, &fluid_flows);
    let loads: BTreeMap<K, f64> = keys.into_iter().zip(alloc.link_loads).collect();
    (alloc.rates, loads)
}

/// The simulator's reusable max-min allocator (see module docs).
///
/// Call [`Allocator::allocate`] with the full current input (up-link
/// capacities and routed flows). The allocator compares the input
/// against the previous call: when nothing changed it returns the
/// cached result (a *skip*, counted in [`Allocator::skips`]); when
/// anything changed it re-runs progressive filling with buffer reuse
/// and active-set bookkeeping (a *fill*, counted in
/// [`Allocator::fills`]). Output is bit-identical to
/// [`max_min_allocation`] on the same input.
#[derive(Debug, Default)]
pub struct Allocator<K: Ord + Clone> {
    // --- previous input (the memo key) ---
    keys: Vec<K>,
    index: BTreeMap<K, usize>,
    caps: Vec<f64>,
    flow_offsets: Vec<usize>,
    flow_links: Vec<usize>,
    flow_caps: Vec<Option<f64>>,
    valid: bool,
    // --- cached output ---
    rates: Vec<f64>,
    loads: Vec<f64>,
    // --- scratch for input staging and the fill ---
    new_offsets: Vec<usize>,
    new_links: Vec<usize>,
    new_caps: Vec<Option<f64>>,
    residual: Vec<f64>,
    link_active: Vec<usize>,
    fixed: Vec<bool>,
    active_flows: Vec<usize>,
    active_links: Vec<usize>,
    newly_fixed: Vec<usize>,
    /// Fill passes actually executed.
    pub fills: u64,
    /// Calls answered from the cache (inputs unchanged).
    pub skips: u64,
}

impl<K: Ord + Clone> Allocator<K> {
    /// A fresh allocator with empty buffers.
    pub fn new() -> Self {
        Allocator {
            keys: Vec::new(),
            index: BTreeMap::new(),
            caps: Vec::new(),
            flow_offsets: vec![0],
            flow_links: Vec::new(),
            flow_caps: Vec::new(),
            valid: false,
            rates: Vec::new(),
            loads: Vec::new(),
            new_offsets: Vec::new(),
            new_links: Vec::new(),
            new_caps: Vec::new(),
            residual: Vec::new(),
            link_active: Vec::new(),
            fixed: Vec::new(),
            active_flows: Vec::new(),
            active_links: Vec::new(),
            newly_fixed: Vec::new(),
            fills: 0,
            skips: 0,
        }
    }

    /// Compute (or reuse) the max-min allocation.
    ///
    /// `flows` yields each routed flow's crossed links and cap, in a
    /// stable order (the caller's flow-id order); per-flow rates come
    /// back in the same order via [`Allocator::rates`], per-link loads
    /// via [`Allocator::load`].
    pub fn allocate<'a, I>(&mut self, capacities: &BTreeMap<K, f64>, flows: I)
    where
        K: 'a,
        I: IntoIterator<Item = (&'a [K], Option<f64>)>,
    {
        // Stage the link universe; rebuild the index only on change.
        let links_unchanged = self.valid
            && self.keys.len() == capacities.len()
            && self
                .keys
                .iter()
                .zip(self.caps.iter())
                .zip(capacities.iter())
                .all(|((k, c), (nk, nc))| k == nk && c.to_bits() == nc.to_bits());
        if !links_unchanged {
            self.keys.clear();
            self.caps.clear();
            self.keys.extend(capacities.keys().cloned());
            self.caps.extend(capacities.values().copied());
            self.index = self
                .keys
                .iter()
                .enumerate()
                .map(|(i, k)| (k.clone(), i))
                .collect();
        }

        // Stage the flows into scratch CSR form.
        self.new_offsets.clear();
        self.new_links.clear();
        self.new_caps.clear();
        self.new_offsets.push(0);
        for (links, cap) in flows {
            for k in links {
                let idx = *self.index.get(k).expect("flow references unknown link key");
                self.new_links.push(idx);
            }
            self.new_offsets.push(self.new_links.len());
            self.new_caps.push(cap);
        }

        let flows_unchanged = self.valid
            && self.new_offsets == self.flow_offsets
            && self.new_links == self.flow_links
            && self.new_caps.len() == self.flow_caps.len()
            && self
                .new_caps
                .iter()
                .zip(self.flow_caps.iter())
                .all(|(a, b)| match (a, b) {
                    (Some(x), Some(y)) => x.to_bits() == y.to_bits(),
                    (None, None) => true,
                    _ => false,
                });
        if links_unchanged && flows_unchanged {
            self.skips += 1;
            return;
        }

        // Commit the staged input and run the fill.
        std::mem::swap(&mut self.flow_offsets, &mut self.new_offsets);
        std::mem::swap(&mut self.flow_links, &mut self.new_links);
        std::mem::swap(&mut self.flow_caps, &mut self.new_caps);
        self.fill();
        self.valid = true;
        self.fills += 1;
    }

    /// Per-flow rates of the last call, in the caller's flow order.
    pub fn rates(&self) -> &[f64] {
        &self.rates
    }

    /// Load of one link after the last call (0.0 for unknown keys).
    pub fn load(&self, key: &K) -> f64 {
        self.index.get(key).map(|i| self.loads[*i]).unwrap_or(0.0)
    }

    fn flow_links_of(&self, i: usize) -> &[usize] {
        &self.flow_links[self.flow_offsets[i]..self.flow_offsets[i + 1]]
    }

    /// Progressive filling, arithmetic identical to
    /// [`max_min_allocation`] (asserted bit-for-bit in proptests), but
    /// with active-set bookkeeping: flows and links frozen in earlier
    /// rounds — entire exhausted bottleneck groups — are skipped, not
    /// rescanned, in later rounds.
    fn fill(&mut self) {
        let nl = self.keys.len();
        let nf = self.flow_caps.len();
        self.rates.clear();
        self.rates.resize(nf, 0.0);
        self.fixed.clear();
        self.fixed.resize(nf, false);
        self.residual.clear();
        self.residual.extend_from_slice(&self.caps);
        self.link_active.clear();
        self.link_active.resize(nl, 0);

        // Degenerate flows (no links) are limited only by their cap.
        for i in 0..nf {
            if self.flow_offsets[i] == self.flow_offsets[i + 1] {
                self.rates[i] = self.flow_caps[i].unwrap_or(0.0);
                self.fixed[i] = true;
            }
        }
        for i in 0..nf {
            if self.fixed[i] {
                continue;
            }
            for l in self.flow_offsets[i]..self.flow_offsets[i + 1] {
                self.link_active[self.flow_links[l]] += 1;
            }
        }
        self.active_flows.clear();
        self.active_flows
            .extend((0..nf).filter(|i| !self.fixed[*i]));
        self.active_links.clear();
        self.active_links
            .extend((0..nl).filter(|l| self.link_active[*l] > 0));

        let mut remaining = self.active_flows.len();
        let mut guard = 0usize;
        while remaining > 0 {
            guard += 1;
            assert!(
                guard <= nf + nl + 2,
                "progressive filling failed to converge"
            );
            // Largest uniform increment allowed by active links …
            let mut delta = f64::INFINITY;
            for &l in &self.active_links {
                delta = delta.min((self.residual[l] / self.link_active[l] as f64).max(0.0));
            }
            // … and by active flows' caps.
            for &i in &self.active_flows {
                if let Some(cap) = self.flow_caps[i] {
                    delta = delta.min((cap - self.rates[i]).max(0.0));
                }
            }
            if !delta.is_finite() {
                // No link constrains any active flow and no caps:
                // nothing to grow against (guarded; cannot happen for
                // flows with links and positive capacities).
                break;
            }

            // Apply the increment, in ascending flow order (the
            // residual subtraction order pins the f64 bits).
            for &i in &self.active_flows {
                self.rates[i] += delta;
                for l in self.flow_offsets[i]..self.flow_offsets[i + 1] {
                    self.residual[self.flow_links[l]] -= delta;
                }
            }

            // Freeze flows at caps, then flows on saturated links —
            // same scan order as the reference so the fallback below
            // picks the same flow.
            self.newly_fixed.clear();
            for &i in &self.active_flows {
                if let Some(cap) = self.flow_caps[i] {
                    if self.rates[i] >= cap - 1e-9 {
                        self.newly_fixed.push(i);
                    }
                }
            }
            const EPS: f64 = 1e-9;
            for li in 0..self.active_links.len() {
                let l = self.active_links[li];
                if self.residual[l] <= EPS {
                    for fi in 0..self.active_flows.len() {
                        let i = self.active_flows[fi];
                        if self.flow_links_of(i).contains(&l) && !self.newly_fixed.contains(&i) {
                            self.newly_fixed.push(i);
                        }
                    }
                }
            }
            if self.newly_fixed.is_empty() {
                // Numerical corner: force the most constrained flow
                // fixed (first active flow — lists stay ascending).
                self.newly_fixed.push(self.active_flows[0]);
            }
            for ni in 0..self.newly_fixed.len() {
                let i = self.newly_fixed[ni];
                if !self.fixed[i] {
                    self.fixed[i] = true;
                    remaining -= 1;
                    for l in self.flow_offsets[i]..self.flow_offsets[i + 1] {
                        self.link_active[self.flow_links[l]] -= 1;
                    }
                }
            }
            let fixed = &self.fixed;
            self.active_flows.retain(|i| !fixed[*i]);
            let link_active = &self.link_active;
            self.active_links.retain(|l| link_active[*l] > 0);
        }

        // Link loads, in the reference's flow-major accumulation order.
        self.loads.clear();
        self.loads.resize(nl, 0.0);
        for i in 0..nf {
            for l in self.flow_offsets[i]..self.flow_offsets[i + 1] {
                self.loads[self.flow_links[l]] += self.rates[i];
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use proptest::prelude::*;

    fn flow(links: &[usize], cap: Option<f64>) -> FluidFlow {
        FluidFlow {
            links: links.to_vec(),
            cap,
        }
    }

    #[test]
    fn single_link_fair_share() {
        let a = max_min_allocation(
            &[90.0],
            &[flow(&[0], None), flow(&[0], None), flow(&[0], None)],
        );
        for r in &a.rates {
            assert!((r - 30.0).abs() < 1e-6);
        }
        assert!((a.link_loads[0] - 90.0).abs() < 1e-6);
    }

    #[test]
    fn caps_redistribute_to_uncapped() {
        // One capped flow leaves room for the others.
        let a = max_min_allocation(
            &[90.0],
            &[flow(&[0], Some(10.0)), flow(&[0], None), flow(&[0], None)],
        );
        assert!((a.rates[0] - 10.0).abs() < 1e-6);
        assert!((a.rates[1] - 40.0).abs() < 1e-6);
        assert!((a.rates[2] - 40.0).abs() < 1e-6);
    }

    #[test]
    fn bottleneck_is_the_minimum_link() {
        // Flow crosses links of 100 and 30: bottleneck 30.
        let a = max_min_allocation(&[100.0, 30.0], &[flow(&[0, 1], None)]);
        assert!((a.rates[0] - 30.0).abs() < 1e-6);
    }

    #[test]
    fn classic_three_flow_example() {
        // Two links, capacity 1 each. Flow A uses both, flows B and C
        // one each. Max-min: A = 0.5, B = C = 0.5.
        let a = max_min_allocation(
            &[1.0, 1.0],
            &[flow(&[0, 1], None), flow(&[0], None), flow(&[1], None)],
        );
        assert!((a.rates[0] - 0.5).abs() < 1e-6);
        assert!((a.rates[1] - 0.5).abs() < 1e-6);
        assert!((a.rates[2] - 0.5).abs() < 1e-6);
    }

    #[test]
    fn asymmetric_bottlenecks() {
        // Link 0: cap 2, link 1: cap 1. Flow A on both, B on 0, C on 1.
        // Round 1: growth until link 1 saturates at 0.5 (A and C fixed
        // at 0.5). B continues until link 0 saturates: B = 1.5.
        let a = max_min_allocation(
            &[2.0, 1.0],
            &[flow(&[0, 1], None), flow(&[0], None), flow(&[1], None)],
        );
        assert!((a.rates[0] - 0.5).abs() < 1e-6);
        assert!((a.rates[1] - 1.5).abs() < 1e-6);
        assert!((a.rates[2] - 0.5).abs() < 1e-6);
    }

    #[test]
    fn flow_without_links_gets_cap() {
        let a = max_min_allocation(&[], &[flow(&[], Some(42.0)), flow(&[], None)]);
        assert_eq!(a.rates, vec![42.0, 0.0]);
    }

    #[test]
    fn keyed_wrapper_roundtrips() {
        let mut caps = BTreeMap::new();
        caps.insert("x", 100.0);
        caps.insert("y", 50.0);
        let flows = vec![(vec!["x", "y"], None), (vec!["x"], Some(20.0))];
        let (rates, loads) = max_min_keyed(&caps, &flows);
        assert!((rates[0] - 50.0).abs() < 1e-6);
        assert!((rates[1] - 20.0).abs() < 1e-6);
        assert!((loads["x"] - 70.0).abs() < 1e-6);
        assert!((loads["y"] - 50.0).abs() < 1e-6);
    }

    #[test]
    fn allocator_matches_reference_and_skips_unchanged() {
        let mut caps = BTreeMap::new();
        caps.insert("x", 100.0);
        caps.insert("y", 50.0);
        let flows: Vec<(Vec<&str>, Option<f64>)> =
            vec![(vec!["x", "y"], None), (vec!["x"], Some(20.0))];
        let mut alloc = Allocator::new();
        let as_input =
            |flows: &[(Vec<&'static str>, Option<f64>)]| -> Vec<(Vec<&'static str>, Option<f64>)> {
                flows.to_vec()
            };
        let input = as_input(&flows);
        alloc.allocate(&caps, input.iter().map(|(l, c)| (l.as_slice(), *c)));
        let (ref_rates, ref_loads) = max_min_keyed(&caps, &flows);
        assert_eq!(alloc.rates(), ref_rates.as_slice());
        assert_eq!(alloc.load(&"x"), ref_loads["x"]);
        assert_eq!(alloc.load(&"y"), ref_loads["y"]);
        assert_eq!((alloc.fills, alloc.skips), (1, 0));

        // Same input again: answered from cache.
        alloc.allocate(&caps, input.iter().map(|(l, c)| (l.as_slice(), *c)));
        assert_eq!((alloc.fills, alloc.skips), (1, 1));
        assert_eq!(alloc.rates(), ref_rates.as_slice());

        // A cap change forces a refill; results track the reference.
        let flows2: Vec<(Vec<&str>, Option<f64>)> =
            vec![(vec!["x", "y"], None), (vec!["x"], Some(30.0))];
        alloc.allocate(&caps, flows2.iter().map(|(l, c)| (l.as_slice(), *c)));
        assert_eq!((alloc.fills, alloc.skips), (2, 1));
        let (ref2, _) = max_min_keyed(&caps, &flows2);
        assert_eq!(alloc.rates(), ref2.as_slice());

        // A capacity change (same keys) also forces a refill.
        caps.insert("y", 60.0);
        alloc.allocate(&caps, flows2.iter().map(|(l, c)| (l.as_slice(), *c)));
        assert_eq!((alloc.fills, alloc.skips), (3, 1));
        let (ref3, _) = max_min_keyed(&caps, &flows2);
        assert_eq!(alloc.rates(), ref3.as_slice());
    }

    #[test]
    fn allocator_handles_empty_and_degenerate_inputs() {
        let mut alloc: Allocator<&str> = Allocator::new();
        let caps = BTreeMap::new();
        let flows: Vec<(Vec<&str>, Option<f64>)> = vec![(vec![], Some(42.0)), (vec![], None)];
        alloc.allocate(&caps, flows.iter().map(|(l, c)| (l.as_slice(), *c)));
        assert_eq!(alloc.rates(), &[42.0, 0.0]);
        assert_eq!(alloc.load(&"nope"), 0.0);
        alloc.allocate(&caps, std::iter::empty());
        assert!(alloc.rates().is_empty());
    }

    proptest! {
        /// The reusable allocator is BIT-identical to the reference on
        /// arbitrary inputs, including across a sequence of calls that
        /// exercises the memo/refill paths (this is what licenses the
        /// simulator to reuse cached results: the pinned byte-for-byte
        /// traces cannot tell the two apart).
        #[test]
        fn prop_allocator_bitwise_equals_reference(
            caps in proptest::collection::vec(1.0f64..1000.0, 1..8),
            steps in proptest::collection::vec(
                proptest::collection::vec(
                    (proptest::collection::vec(0usize..8, 0..4), proptest::option::of(1.0f64..500.0)),
                    0..16
                ),
                1..5
            )
        ) {
            let nl = caps.len();
            let keyed: BTreeMap<usize, f64> =
                caps.iter().copied().enumerate().collect();
            let mut alloc: Allocator<usize> = Allocator::new();
            for flows_raw in &steps {
                let flows: Vec<(Vec<usize>, Option<f64>)> = flows_raw
                    .iter()
                    .map(|(ls, cap)| {
                        let mut links: Vec<usize> = ls.iter().map(|l| l % nl).collect();
                        links.sort();
                        links.dedup();
                        (links, *cap)
                    })
                    .collect();
                alloc.allocate(&keyed, flows.iter().map(|(l, c)| (l.as_slice(), *c)));
                let (ref_rates, ref_loads) = max_min_keyed(&keyed, &flows);
                prop_assert_eq!(alloc.rates().len(), ref_rates.len());
                for (a, b) in alloc.rates().iter().zip(ref_rates.iter()) {
                    prop_assert_eq!(a.to_bits(), b.to_bits());
                }
                for (k, load) in &ref_loads {
                    prop_assert_eq!(alloc.load(k).to_bits(), load.to_bits());
                }
            }
        }

        /// No link is ever overloaded and no flow exceeds its cap.
        #[test]
        fn prop_feasibility(
            caps in proptest::collection::vec(1.0f64..1000.0, 1..8),
            flows_raw in proptest::collection::vec(
                (proptest::collection::vec(0usize..8, 1..4), proptest::option::of(1.0f64..500.0)),
                1..20
            )
        ) {
            let nl = caps.len();
            let flows: Vec<FluidFlow> = flows_raw
                .iter()
                .map(|(ls, cap)| {
                    let mut links: Vec<usize> = ls.iter().map(|l| l % nl).collect();
                    links.sort();
                    links.dedup();
                    FluidFlow { links, cap: *cap }
                })
                .collect();
            let a = max_min_allocation(&caps, &flows);
            for (l, load) in a.link_loads.iter().enumerate() {
                prop_assert!(*load <= caps[l] + 1e-6, "link {l} overloaded: {load} > {}", caps[l]);
            }
            for (i, f) in flows.iter().enumerate() {
                if let Some(cap) = f.cap {
                    prop_assert!(a.rates[i] <= cap + 1e-6);
                }
                prop_assert!(a.rates[i] >= -1e-9);
            }
        }

        /// Max-min property (bottleneck justification): every flow is
        /// either at its cap or crosses at least one saturated link.
        #[test]
        fn prop_maxmin_justified(
            caps in proptest::collection::vec(1.0f64..1000.0, 1..6),
            flows_raw in proptest::collection::vec(
                (proptest::collection::vec(0usize..6, 1..3), proptest::option::of(1.0f64..500.0)),
                1..12
            )
        ) {
            let nl = caps.len();
            let flows: Vec<FluidFlow> = flows_raw
                .iter()
                .map(|(ls, cap)| {
                    let mut links: Vec<usize> = ls.iter().map(|l| l % nl).collect();
                    links.sort();
                    links.dedup();
                    FluidFlow { links, cap: *cap }
                })
                .collect();
            let a = max_min_allocation(&caps, &flows);
            for (i, f) in flows.iter().enumerate() {
                let at_cap = f.cap.map(|c| a.rates[i] >= c - 1e-6).unwrap_or(false);
                let bottlenecked = f
                    .links
                    .iter()
                    .any(|&l| a.link_loads[l] >= caps[l] - 1e-6);
                prop_assert!(
                    at_cap || bottlenecked,
                    "flow {i} (rate {}) neither capped nor bottlenecked",
                    a.rates[i]
                );
            }
        }
    }
}
