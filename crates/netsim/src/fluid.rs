//! Max-min fair fluid bandwidth allocation.
//!
//! Long-lived TCP flows sharing a capacitated network converge (to
//! first order) to the max-min fair allocation. The demo's Fig. 2
//! reports per-link throughput of 31–62 concurrent video flows; a
//! fluid model reproduces those equilibria deterministically and
//! without packet-level noise — the standard substitution for a
//! Mininet data plane (see DESIGN.md).
//!
//! The allocator implements progressive filling with per-flow rate
//! caps: all unfixed flows grow at the same rate; a step ends when a
//! link saturates (its flows are frozen) or a flow hits its cap
//! (application-limited, e.g. a video at its bitrate).

use std::collections::BTreeMap;

/// Input flow: the links it crosses (indexes into the capacity slice)
/// and an optional application rate cap in bytes/s.
#[derive(Debug, Clone)]
pub struct FluidFlow {
    /// Indexes of crossed links.
    pub links: Vec<usize>,
    /// Application-level cap (`None` = network-limited only).
    pub cap: Option<f64>,
}

/// Result of an allocation.
#[derive(Debug, Clone, PartialEq)]
pub struct Allocation {
    /// Per-flow rate in bytes/s (same order as the input).
    pub rates: Vec<f64>,
    /// Per-link total load in bytes/s (same order as capacities).
    pub link_loads: Vec<f64>,
}

/// Compute the max-min fair allocation of `flows` over links with the
/// given `capacities` (bytes/s).
///
/// Complexity: O(rounds × (F + L)) with rounds ≤ F + L. Flows crossing
/// no link (degenerate) are limited only by their cap (or get 0.0 if
/// uncapped — nothing constrains them, but an unconstrained flow has
/// no meaningful rate; we pin it to its cap or 0).
pub fn max_min_allocation(capacities: &[f64], flows: &[FluidFlow]) -> Allocation {
    let nl = capacities.len();
    let nf = flows.len();
    let mut rates = vec![0.0f64; nf];
    let mut fixed = vec![false; nf];
    let mut residual: Vec<f64> = capacities.to_vec();
    let mut link_active: Vec<usize> = vec![0; nl];

    for f in flows {
        for &l in &f.links {
            assert!(l < nl, "flow references unknown link {l}");
        }
    }

    // Degenerate flows: no links.
    for (i, f) in flows.iter().enumerate() {
        if f.links.is_empty() {
            rates[i] = f.cap.unwrap_or(0.0);
            fixed[i] = true;
        }
    }

    for (i, f) in flows.iter().enumerate() {
        if fixed[i] {
            continue;
        }
        for &l in &f.links {
            link_active[l] += 1;
        }
    }

    let mut remaining: usize = fixed.iter().filter(|x| !**x).count();
    let mut guard = 0usize;
    while remaining > 0 {
        guard += 1;
        assert!(
            guard <= nf + nl + 2,
            "progressive filling failed to converge"
        );
        // Largest uniform increment allowed by links.
        let mut delta = f64::INFINITY;
        for l in 0..nl {
            if link_active[l] > 0 {
                delta = delta.min((residual[l] / link_active[l] as f64).max(0.0));
            }
        }
        // ... and by flow caps.
        for (i, f) in flows.iter().enumerate() {
            if fixed[i] {
                continue;
            }
            if let Some(cap) = f.cap {
                delta = delta.min((cap - rates[i]).max(0.0));
            }
        }
        if !delta.is_finite() {
            // No link constrains any active flow and no caps: nothing
            // to grow against (cannot happen for flows with links and
            // positive capacities, but guard anyway).
            break;
        }

        // Apply the increment.
        for (i, f) in flows.iter().enumerate() {
            if fixed[i] {
                continue;
            }
            rates[i] += delta;
            for &l in &f.links {
                residual[l] -= delta;
            }
        }

        // Freeze flows at caps.
        let mut newly_fixed: Vec<usize> = Vec::new();
        for (i, f) in flows.iter().enumerate() {
            if fixed[i] {
                continue;
            }
            if let Some(cap) = f.cap {
                if rates[i] >= cap - 1e-9 {
                    newly_fixed.push(i);
                    continue;
                }
            }
        }
        // Freeze flows on saturated links.
        const EPS: f64 = 1e-9;
        for l in 0..nl {
            if link_active[l] > 0 && residual[l] <= EPS {
                for (i, f) in flows.iter().enumerate() {
                    if !fixed[i] && f.links.contains(&l) && !newly_fixed.contains(&i) {
                        newly_fixed.push(i);
                    }
                }
            }
        }
        if newly_fixed.is_empty() {
            // Numerical corner: force the most constrained flow fixed.
            if let Some(i) = (0..nf).find(|i| !fixed[*i]) {
                newly_fixed.push(i);
            }
        }
        for i in newly_fixed {
            if !fixed[i] {
                fixed[i] = true;
                remaining -= 1;
                for &l in &flows[i].links {
                    link_active[l] -= 1;
                }
            }
        }
    }

    let mut link_loads = vec![0.0; nl];
    for (i, f) in flows.iter().enumerate() {
        for &l in &f.links {
            link_loads[l] += rates[i];
        }
    }
    Allocation { rates, link_loads }
}

/// Convenience wrapper keyed by arbitrary link identifiers.
pub fn max_min_keyed<K: Ord + Clone>(
    capacities: &BTreeMap<K, f64>,
    flows: &[(Vec<K>, Option<f64>)],
) -> (Vec<f64>, BTreeMap<K, f64>) {
    let keys: Vec<K> = capacities.keys().cloned().collect();
    let index: BTreeMap<K, usize> = keys
        .iter()
        .enumerate()
        .map(|(i, k)| (k.clone(), i))
        .collect();
    let caps: Vec<f64> = keys.iter().map(|k| capacities[k]).collect();
    let fluid_flows: Vec<FluidFlow> = flows
        .iter()
        .map(|(links, cap)| FluidFlow {
            links: links.iter().map(|k| index[k]).collect(),
            cap: *cap,
        })
        .collect();
    let alloc = max_min_allocation(&caps, &fluid_flows);
    let loads: BTreeMap<K, f64> = keys.into_iter().zip(alloc.link_loads).collect();
    (alloc.rates, loads)
}

#[cfg(test)]
mod tests {
    use super::*;
    use proptest::prelude::*;

    fn flow(links: &[usize], cap: Option<f64>) -> FluidFlow {
        FluidFlow {
            links: links.to_vec(),
            cap,
        }
    }

    #[test]
    fn single_link_fair_share() {
        let a = max_min_allocation(
            &[90.0],
            &[flow(&[0], None), flow(&[0], None), flow(&[0], None)],
        );
        for r in &a.rates {
            assert!((r - 30.0).abs() < 1e-6);
        }
        assert!((a.link_loads[0] - 90.0).abs() < 1e-6);
    }

    #[test]
    fn caps_redistribute_to_uncapped() {
        // One capped flow leaves room for the others.
        let a = max_min_allocation(
            &[90.0],
            &[flow(&[0], Some(10.0)), flow(&[0], None), flow(&[0], None)],
        );
        assert!((a.rates[0] - 10.0).abs() < 1e-6);
        assert!((a.rates[1] - 40.0).abs() < 1e-6);
        assert!((a.rates[2] - 40.0).abs() < 1e-6);
    }

    #[test]
    fn bottleneck_is_the_minimum_link() {
        // Flow crosses links of 100 and 30: bottleneck 30.
        let a = max_min_allocation(&[100.0, 30.0], &[flow(&[0, 1], None)]);
        assert!((a.rates[0] - 30.0).abs() < 1e-6);
    }

    #[test]
    fn classic_three_flow_example() {
        // Two links, capacity 1 each. Flow A uses both, flows B and C
        // one each. Max-min: A = 0.5, B = C = 0.5.
        let a = max_min_allocation(
            &[1.0, 1.0],
            &[flow(&[0, 1], None), flow(&[0], None), flow(&[1], None)],
        );
        assert!((a.rates[0] - 0.5).abs() < 1e-6);
        assert!((a.rates[1] - 0.5).abs() < 1e-6);
        assert!((a.rates[2] - 0.5).abs() < 1e-6);
    }

    #[test]
    fn asymmetric_bottlenecks() {
        // Link 0: cap 2, link 1: cap 1. Flow A on both, B on 0, C on 1.
        // Round 1: growth until link 1 saturates at 0.5 (A and C fixed
        // at 0.5). B continues until link 0 saturates: B = 1.5.
        let a = max_min_allocation(
            &[2.0, 1.0],
            &[flow(&[0, 1], None), flow(&[0], None), flow(&[1], None)],
        );
        assert!((a.rates[0] - 0.5).abs() < 1e-6);
        assert!((a.rates[1] - 1.5).abs() < 1e-6);
        assert!((a.rates[2] - 0.5).abs() < 1e-6);
    }

    #[test]
    fn flow_without_links_gets_cap() {
        let a = max_min_allocation(&[], &[flow(&[], Some(42.0)), flow(&[], None)]);
        assert_eq!(a.rates, vec![42.0, 0.0]);
    }

    #[test]
    fn keyed_wrapper_roundtrips() {
        let mut caps = BTreeMap::new();
        caps.insert("x", 100.0);
        caps.insert("y", 50.0);
        let flows = vec![(vec!["x", "y"], None), (vec!["x"], Some(20.0))];
        let (rates, loads) = max_min_keyed(&caps, &flows);
        assert!((rates[0] - 50.0).abs() < 1e-6);
        assert!((rates[1] - 20.0).abs() < 1e-6);
        assert!((loads["x"] - 70.0).abs() < 1e-6);
        assert!((loads["y"] - 50.0).abs() < 1e-6);
    }

    proptest! {
        /// No link is ever overloaded and no flow exceeds its cap.
        #[test]
        fn prop_feasibility(
            caps in proptest::collection::vec(1.0f64..1000.0, 1..8),
            flows_raw in proptest::collection::vec(
                (proptest::collection::vec(0usize..8, 1..4), proptest::option::of(1.0f64..500.0)),
                1..20
            )
        ) {
            let nl = caps.len();
            let flows: Vec<FluidFlow> = flows_raw
                .iter()
                .map(|(ls, cap)| {
                    let mut links: Vec<usize> = ls.iter().map(|l| l % nl).collect();
                    links.sort();
                    links.dedup();
                    FluidFlow { links, cap: *cap }
                })
                .collect();
            let a = max_min_allocation(&caps, &flows);
            for (l, load) in a.link_loads.iter().enumerate() {
                prop_assert!(*load <= caps[l] + 1e-6, "link {l} overloaded: {load} > {}", caps[l]);
            }
            for (i, f) in flows.iter().enumerate() {
                if let Some(cap) = f.cap {
                    prop_assert!(a.rates[i] <= cap + 1e-6);
                }
                prop_assert!(a.rates[i] >= -1e-9);
            }
        }

        /// Max-min property (bottleneck justification): every flow is
        /// either at its cap or crosses at least one saturated link.
        #[test]
        fn prop_maxmin_justified(
            caps in proptest::collection::vec(1.0f64..1000.0, 1..6),
            flows_raw in proptest::collection::vec(
                (proptest::collection::vec(0usize..6, 1..3), proptest::option::of(1.0f64..500.0)),
                1..12
            )
        ) {
            let nl = caps.len();
            let flows: Vec<FluidFlow> = flows_raw
                .iter()
                .map(|(ls, cap)| {
                    let mut links: Vec<usize> = ls.iter().map(|l| l % nl).collect();
                    links.sort();
                    links.dedup();
                    FluidFlow { links, cap: *cap }
                })
                .collect();
            let a = max_min_allocation(&caps, &flows);
            for (i, f) in flows.iter().enumerate() {
                let at_cap = f.cap.map(|c| a.rates[i] >= c - 1e-6).unwrap_or(false);
                let bottlenecked = f
                    .links
                    .iter()
                    .any(|&l| a.link_loads[l] >= caps[l] - 1e-6);
                prop_assert!(
                    at_cap || bottlenecked,
                    "flow {i} (rate {}) neither capped nor bottlenecked",
                    a.rates[i]
                );
            }
        }
    }
}
