//! The application interface to the simulator.
//!
//! Control logic — the Fibbing controller, video workload drivers,
//! baseline TE agents — plugs into the simulator as an [`App`]. Apps
//! interact with the world exclusively through [`SimApi`]: they can
//! read provisioning data, poll SNMP agents, steer their own protocol
//! speaker (inject/retract lies), and manage traffic flows. The
//! simulator dispatches ticks and flow notifications ("servers notify
//! the controller when they have a new client", Sec. 3 of the paper).

use crate::flow::{FlowId, FlowInfo, FlowSpec};
use crate::link::{LinkInfo, LinkKey};
use fib_igp::error::InstanceError;
use fib_igp::time::{Dur, Timestamp};
use fib_igp::topology::Topology;
use fib_igp::types::{FwAddr, Metric, Prefix, RouterId};
use fib_telemetry::mib::{Oid, Value};

/// Everything an application may do to the simulated world.
pub trait SimApi {
    /// Current simulation time.
    fn now(&self) -> Timestamp;

    /// All real routers (controller speakers included).
    fn routers(&self) -> Vec<RouterId>;

    /// All directed links with provisioning data.
    fn links(&self) -> Vec<LinkInfo>;

    /// Which router announces each prefix (static provisioning view).
    fn prefix_owners(&self) -> Vec<(Prefix, RouterId)>;

    /// The topology as learned by `speaker`'s LSDB (what a controller
    /// actually knows — including every currently installed lie).
    fn topology_view(&self, speaker: RouterId) -> Option<Topology>;

    /// SNMP GET against a router's agent (counts as management
    /// traffic).
    fn snmp_get(&mut self, router: RouterId, oid: &Oid) -> Option<Value>;

    /// SNMP WALK under an OID prefix.
    fn snmp_walk(&mut self, router: RouterId, prefix: &Oid) -> Vec<(Oid, Value)>;

    /// The SNMP ifIndex of the interface on `from` facing `to`.
    fn ifindex_for(&self, from: RouterId, to: RouterId) -> Option<u32>;

    /// Inject a lie through `speaker`'s protocol instance.
    #[allow(clippy::too_many_arguments)]
    fn inject_fake(
        &mut self,
        speaker: RouterId,
        fake: RouterId,
        attach: RouterId,
        attach_metric: Metric,
        prefix: Prefix,
        prefix_metric: Metric,
        fw: FwAddr,
    ) -> Result<(), InstanceError>;

    /// Retract a lie previously injected through `speaker`.
    fn retract_fake(&mut self, speaker: RouterId, fake: RouterId) -> Result<(), InstanceError>;

    /// Start a flow now; returns its id.
    fn start_flow(&mut self, spec: FlowSpec) -> FlowId;

    /// Stop a flow; `false` if unknown.
    fn stop_flow(&mut self, id: FlowId) -> bool;

    /// Change a flow's application rate cap; `false` if unknown.
    fn set_flow_cap(&mut self, id: FlowId, cap: Option<f64>) -> bool;

    /// Current allocated rate of a flow (bytes/s).
    fn flow_rate(&self, id: FlowId) -> Option<f64>;

    /// Total bytes delivered by a flow so far.
    fn flow_delivered(&self, id: FlowId) -> Option<f64>;

    /// Current path of a flow (directed links).
    fn flow_path(&self, id: FlowId) -> Option<Vec<LinkKey>>;

    /// Current offered rate on a directed link (bytes/s).
    fn link_rate(&self, key: LinkKey) -> Option<f64>;

    /// Administratively fail a symmetric link (both directions) now.
    ///
    /// With carrier detection enabled the IGP instances at both ends
    /// are notified immediately and re-converge around the failure;
    /// data flows re-resolve their paths at the end of the current
    /// event batch. Returns `false` if no such link exists.
    fn fail_link(&mut self, a: RouterId, b: RouterId) -> bool;

    /// Restore a previously failed symmetric link. Counterpart of
    /// [`SimApi::fail_link`]; returns `false` if no such link exists.
    fn restore_link(&mut self, a: RouterId, b: RouterId) -> bool;

    /// Change a symmetric link's per-direction capacity (bytes/s) now.
    ///
    /// The fluid allocation is recomputed at the end of the current
    /// event batch; the IGP is *not* involved (capacity is not part of
    /// the link-state database). Returns `false` if no such link
    /// exists or `capacity` is not positive.
    fn set_link_capacity(&mut self, a: RouterId, b: RouterId, capacity: f64) -> bool;

    /// A router's installed ECMP next-hops toward a prefix (empty if
    /// none — used by verification and experiments, not by the
    /// controller's decision logic).
    fn fib_nexthops(&self, router: RouterId, prefix: Prefix) -> Vec<FwAddr>;

    /// Append a point to a named trace series at the current time.
    fn record(&mut self, series: &str, value: f64);
}

/// A pluggable application (controller, workload driver, baseline).
pub trait App {
    /// Human-readable name (diagnostics, trace prefixes).
    fn name(&self) -> &str;

    /// If `Some`, the simulator calls [`App::on_tick`] at this period.
    fn tick_interval(&self) -> Option<Dur> {
        None
    }

    /// Called once when the simulation starts.
    fn on_start(&mut self, _api: &mut dyn SimApi) {}

    /// Periodic tick (see [`App::tick_interval`]).
    fn on_tick(&mut self, _api: &mut dyn SimApi) {}

    /// A flow started (the paper's "server notifies the controller of
    /// a new client").
    fn on_flow_started(&mut self, _api: &mut dyn SimApi, _info: &FlowInfo) {}

    /// A flow stopped.
    fn on_flow_stopped(&mut self, _api: &mut dyn SimApi, _info: &FlowInfo) {}
}
