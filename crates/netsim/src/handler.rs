//! Components: the uniform handler trait applications implement.
//!
//! This absorbs the old four-method `App` trait into the kernel's
//! component/event model: one [`EventHandler::on_event`] entry point
//! receiving typed [`AppEvent`]s, with the world reachable through the
//! [`SimContext`] handle. Components are
//! registered into a flat arena and addressed by
//! [`ComponentId`](fib_sim_kernel::ComponentId) — names exist for
//! tracing only.

use crate::flow::FlowInfo;
use crate::sim::SimContext;
use fib_igp::time::Dur;

/// An event delivered to a component.
#[derive(Debug)]
pub enum AppEvent<'a> {
    /// The simulation started (delivered once, during `Sim::start`).
    Start,
    /// Periodic tick (see [`EventHandler::tick_interval`]).
    Tick,
    /// A flow started somewhere in the world (the paper's "server
    /// notifies the controller of a new client").
    FlowStarted(&'a FlowInfo),
    /// A flow stopped.
    FlowStopped(&'a FlowInfo),
}

/// A pluggable component (controller, workload driver, probe).
pub trait EventHandler {
    /// Human-readable name (tracing, diagnostics).
    fn name(&self) -> &str;

    /// If `Some`, the simulator delivers [`AppEvent::Tick`] at this
    /// period.
    fn tick_interval(&self) -> Option<Dur> {
        None
    }

    /// Handle one event.
    fn on_event(&mut self, ctx: &mut SimContext<'_>, ev: AppEvent<'_>);
}
