//! Physical links: capacity, delay, and identification.

use fib_igp::time::Dur;
use fib_igp::types::{Metric, RouterId};
use std::fmt;

/// A *directed* link identifier.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub struct LinkKey {
    /// Transmitting router.
    pub from: RouterId,
    /// Receiving router.
    pub to: RouterId,
}

impl LinkKey {
    /// Build a key.
    pub fn new(from: RouterId, to: RouterId) -> LinkKey {
        LinkKey { from, to }
    }

    /// The opposite direction.
    pub fn reversed(self) -> LinkKey {
        LinkKey {
            from: self.to,
            to: self.from,
        }
    }
}

impl fmt::Display for LinkKey {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{}->{}", self.from, self.to)
    }
}

/// Specification of a symmetric physical link.
#[derive(Debug, Clone, Copy)]
pub struct LinkSpec {
    /// One endpoint.
    pub a: RouterId,
    /// Other endpoint.
    pub b: RouterId,
    /// IGP cost (both directions).
    pub cost: Metric,
    /// Capacity in bytes/s (each direction).
    pub capacity: f64,
    /// One-way propagation delay.
    pub delay: Dur,
}

impl LinkSpec {
    /// A link with 1 ms delay — the common case in the demo testbed.
    pub fn new(a: RouterId, b: RouterId, cost: Metric, capacity: f64) -> LinkSpec {
        LinkSpec {
            a,
            b,
            cost,
            capacity,
            delay: Dur::from_millis(1),
        }
    }

    /// Override the propagation delay.
    pub fn with_delay(mut self, delay: Dur) -> LinkSpec {
        self.delay = delay;
        self
    }
}

/// Runtime state of one link direction.
#[derive(Debug, Clone)]
pub struct LinkState {
    /// Direction identifier.
    pub key: LinkKey,
    /// Capacity in bytes/s.
    pub capacity: f64,
    /// One-way delay.
    pub delay: Dur,
    /// Administrative/carrier state.
    pub up: bool,
    /// Current offered data rate (bytes/s) from the fluid allocation.
    pub rate: f64,
}

impl LinkState {
    /// Utilization as a fraction of capacity.
    pub fn utilization(&self) -> f64 {
        if self.capacity <= 0.0 {
            0.0
        } else {
            self.rate / self.capacity
        }
    }
}

/// Summary info exposed to applications (the provisioning view an
/// operator has).
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct LinkInfo {
    /// Direction identifier.
    pub key: LinkKey,
    /// Capacity in bytes/s.
    pub capacity: f64,
    /// IGP cost.
    pub cost: Metric,
    /// One-way delay.
    pub delay: Dur,
    /// Whether the direction is up.
    pub up: bool,
    /// Current offered data rate (bytes/s) as of the last settlement —
    /// included so per-tick observers (utilization probes) need no
    /// second lookup per link.
    pub rate: f64,
}

impl LinkInfo {
    /// Utilization as a fraction of capacity.
    pub fn utilization(&self) -> f64 {
        if self.capacity <= 0.0 {
            0.0
        } else {
            self.rate / self.capacity
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn key_display_and_reverse() {
        let k = LinkKey::new(RouterId(1), RouterId(2));
        assert_eq!(k.to_string(), "r1->r2");
        assert_eq!(k.reversed(), LinkKey::new(RouterId(2), RouterId(1)));
        assert_eq!(k.reversed().reversed(), k);
    }

    #[test]
    fn utilization_is_rate_over_capacity() {
        let mut s = LinkState {
            key: LinkKey::new(RouterId(1), RouterId(2)),
            capacity: 1000.0,
            delay: Dur::from_millis(1),
            up: true,
            rate: 250.0,
        };
        assert!((s.utilization() - 0.25).abs() < 1e-12);
        s.capacity = 0.0;
        assert_eq!(s.utilization(), 0.0);
    }

    #[test]
    fn spec_builder() {
        let s =
            LinkSpec::new(RouterId(1), RouterId(2), Metric(5), 4e6).with_delay(Dur::from_millis(7));
        assert_eq!(s.delay, Dur::from_millis(7));
        assert_eq!(s.cost, Metric(5));
    }
}
