//! The typed event vocabulary of the simulator.
//!
//! The old surface had one `schedule_*` method per event kind; the
//! redesigned API has exactly one scheduling path —
//! [`crate::sim::Sim::schedule`] / `SimContext::schedule` — over this
//! enum, returning a cancellable [`EventId`].

use crate::flow::{FlowId, FlowSpec};
use fib_igp::types::RouterId;

pub use fib_sim_kernel::EventId;

/// A schedulable world event.
///
/// Internal events (protocol packets, app ticks, trace samples) are
/// not part of the public vocabulary: they are emitted by the kernel
/// loop itself.
#[derive(Debug, Clone)]
pub enum Event {
    /// Start a flow under a pre-allocated id (see
    /// [`crate::sim::Sim::new_flow_id`]).
    FlowStart {
        /// The id the flow will carry.
        id: FlowId,
        /// What to start.
        spec: FlowSpec,
    },
    /// Stop a flow (no-op if unknown by then).
    FlowStop {
        /// The flow to stop.
        id: FlowId,
    },
    /// Change a flow's application rate cap (`None` = uncapped).
    FlowCap {
        /// The flow to change.
        id: FlowId,
        /// New cap in bytes/s.
        cap: Option<f64>,
    },
    /// Administratively fail (`up = false`) or restore (`up = true`)
    /// the symmetric link `a – b`.
    LinkAdmin {
        /// One endpoint.
        a: RouterId,
        /// Other endpoint.
        b: RouterId,
        /// Target administrative state.
        up: bool,
    },
    /// Change the symmetric link `a – b`'s per-direction capacity.
    LinkCapacity {
        /// One endpoint.
        a: RouterId,
        /// Other endpoint.
        b: RouterId,
        /// New capacity in bytes/s (rejected if not positive).
        capacity: f64,
    },
}
