//! Traffic flows.

use crate::ecmp::FlowKey;
use crate::link::LinkKey;
use fib_igp::time::Timestamp;
use fib_igp::types::{Prefix, RouterId};

/// Opaque flow identifier assigned by the simulator.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub struct FlowId(pub u64);

impl std::fmt::Display for FlowId {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "flow{}", self.0)
    }
}

/// Parameters of a flow to start.
#[derive(Debug, Clone)]
pub struct FlowSpec {
    /// Ingress router.
    pub src: RouterId,
    /// Destination prefix.
    pub dst: Prefix,
    /// Application rate cap in bytes/s (`None` = network-limited).
    pub cap: Option<f64>,
    /// Optional explicit hash discriminator; the simulator assigns a
    /// unique one if absent. Distinct discriminators model distinct
    /// transport ports.
    pub hash_id: Option<u64>,
    /// Opaque user tag (e.g. a video session id).
    pub tag: u64,
}

impl FlowSpec {
    /// A network-limited flow.
    pub fn new(src: RouterId, dst: Prefix) -> FlowSpec {
        FlowSpec {
            src,
            dst,
            cap: None,
            hash_id: None,
            tag: 0,
        }
    }

    /// Set an application rate cap.
    pub fn with_cap(mut self, cap: f64) -> FlowSpec {
        self.cap = Some(cap);
        self
    }

    /// Set the hash discriminator.
    pub fn with_hash_id(mut self, id: u64) -> FlowSpec {
        self.hash_id = Some(id);
        self
    }

    /// Set the user tag.
    pub fn with_tag(mut self, tag: u64) -> FlowSpec {
        self.tag = tag;
        self
    }
}

/// Live state of a flow.
#[derive(Debug, Clone)]
pub struct Flow {
    /// Identifier.
    pub id: FlowId,
    /// Hash key (src, dst, discriminator).
    pub key: FlowKey,
    /// Application rate cap.
    pub cap: Option<f64>,
    /// User tag.
    pub tag: u64,
    /// Start time.
    pub started_at: Timestamp,
    /// Current allocated rate (bytes/s).
    pub rate: f64,
    /// Current path (directed links), `None` while unroutable.
    pub path: Option<Vec<LinkKey>>,
    /// Total bytes delivered so far (fluid integration).
    pub delivered: f64,
}

/// Summary handed to applications in flow notifications.
#[derive(Debug, Clone, PartialEq)]
pub struct FlowInfo {
    /// Identifier.
    pub id: FlowId,
    /// Ingress router.
    pub src: RouterId,
    /// Destination prefix.
    pub dst: Prefix,
    /// Application rate cap.
    pub cap: Option<f64>,
    /// User tag.
    pub tag: u64,
}

impl Flow {
    /// The notification summary for this flow.
    pub fn info(&self) -> FlowInfo {
        FlowInfo {
            id: self.id,
            src: self.key.src,
            dst: self.key.dst,
            cap: self.cap,
            tag: self.tag,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn spec_builder_chain() {
        let s = FlowSpec::new(RouterId(1), Prefix::net24(2))
            .with_cap(125_000.0)
            .with_hash_id(42)
            .with_tag(7);
        assert_eq!(s.cap, Some(125_000.0));
        assert_eq!(s.hash_id, Some(42));
        assert_eq!(s.tag, 7);
    }

    #[test]
    fn flow_info_mirrors_flow() {
        let f = Flow {
            id: FlowId(3),
            key: FlowKey {
                src: RouterId(1),
                dst: Prefix::net24(2),
                id: 9,
            },
            cap: None,
            tag: 5,
            started_at: Timestamp::ZERO,
            rate: 0.0,
            path: None,
            delivered: 0.0,
        };
        let info = f.info();
        assert_eq!(info.id, FlowId(3));
        assert_eq!(info.src, RouterId(1));
        assert_eq!(info.tag, 5);
        assert_eq!(format!("{}", f.id), "flow3");
    }
}
