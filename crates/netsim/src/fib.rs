//! Data-plane forwarding tables and path resolution.
//!
//! A [`Fib`] is the downloaded form of an IGP route table: per prefix,
//! either local delivery or a vector of ECMP slots (forwarding
//! addresses). [`resolve_path`] walks a flow hop-by-hop through the
//! network's FIBs exactly as packets would be forwarded, hashing at
//! every router — including the *address-level* slot granularity that
//! realises Fibbing's uneven splits.

use crate::ecmp::{slot_for, FlowKey};
use crate::link::LinkKey;
use fib_igp::rib::RouteTable;
use fib_igp::types::{FwAddr, Prefix, RouterId};
use std::collections::BTreeMap;
use std::fmt;

/// One prefix's forwarding entry.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum FibEntry {
    /// Deliver locally (the prefix is attached here).
    Local,
    /// Forward via one of these ECMP slots.
    Via(Vec<FwAddr>),
}

/// A router's forwarding table.
#[derive(Debug, Clone, Default)]
pub struct Fib {
    entries: BTreeMap<Prefix, FibEntry>,
}

impl Fib {
    /// An empty FIB.
    pub fn new() -> Fib {
        Fib::default()
    }

    /// Download a route table (replaces all entries).
    pub fn install(&mut self, table: &RouteTable) {
        let _ = self.install_diff(table);
    }

    /// Download a route table and report which prefixes' entries
    /// actually changed (added, removed, or rewritten) — the
    /// invalidation feed for the simulator's dirty-set recompute: only
    /// flows destined to a changed prefix can be rerouted by this
    /// download.
    pub fn install_diff(&mut self, table: &RouteTable) -> Vec<Prefix> {
        let mut next: BTreeMap<Prefix, FibEntry> = BTreeMap::new();
        for (p, route) in &table.routes {
            if route.local {
                next.insert(*p, FibEntry::Local);
            } else if !route.nexthops.is_empty() {
                next.insert(*p, FibEntry::Via(route.nexthops.clone()));
            }
        }
        let mut changed: Vec<Prefix> = Vec::new();
        for (p, e) in &next {
            if self.entries.get(p) != Some(e) {
                changed.push(*p);
            }
        }
        for p in self.entries.keys() {
            if !next.contains_key(p) {
                changed.push(*p);
            }
        }
        changed.sort();
        changed.dedup();
        self.entries = next;
        changed
    }

    /// Longest-prefix-match lookup (exact container since prefixes are
    /// disjoint in our experiments, but LPM is honoured).
    pub fn lookup(&self, dst: Prefix) -> Option<&FibEntry> {
        // Exact match first.
        if let Some(e) = self.entries.get(&dst) {
            return Some(e);
        }
        // Longest containing prefix.
        self.entries
            .iter()
            .filter(|(p, _)| p.contains(dst))
            .max_by_key(|(p, _)| p.len())
            .map(|(_, e)| e)
    }

    /// Number of prefixes installed.
    pub fn len(&self) -> usize {
        self.entries.len()
    }

    /// `true` if no entries are installed.
    pub fn is_empty(&self) -> bool {
        self.entries.is_empty()
    }

    /// Iterate entries.
    pub fn iter(&self) -> impl Iterator<Item = (&Prefix, &FibEntry)> {
        self.entries.iter()
    }
}

/// Why a flow could not be routed.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum PathError {
    /// A router on the way had no route for the destination.
    NoRoute(RouterId),
    /// Forwarding revisited a router (transient micro-loop).
    Loop(RouterId),
    /// The hop budget was exceeded.
    TooLong,
}

impl fmt::Display for PathError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            PathError::NoRoute(r) => write!(f, "no route at {r}"),
            PathError::Loop(r) => write!(f, "forwarding loop at {r}"),
            PathError::TooLong => write!(f, "path exceeds hop budget"),
        }
    }
}

impl std::error::Error for PathError {}

/// Maximum hops before a path is declared too long (TTL stand-in).
pub const MAX_HOPS: usize = 64;

/// Resolve the sequence of directed links a flow traverses, hashing at
/// each router over its FIB's ECMP slots.
pub fn resolve_path(
    fibs: &BTreeMap<RouterId, Fib>,
    flow: &FlowKey,
) -> Result<Vec<LinkKey>, PathError> {
    let mut path = Vec::new();
    let mut cur = flow.src;
    let mut visited = vec![cur];
    loop {
        let fib = fibs.get(&cur).ok_or(PathError::NoRoute(cur))?;
        match fib.lookup(flow.dst) {
            None => return Err(PathError::NoRoute(cur)),
            Some(FibEntry::Local) => return Ok(path),
            Some(FibEntry::Via(slots)) => {
                let slot = slot_for(cur, flow, slots.len());
                let nh = slots[slot].router;
                path.push(LinkKey::new(cur, nh));
                if visited.contains(&nh) {
                    return Err(PathError::Loop(nh));
                }
                visited.push(nh);
                cur = nh;
                if path.len() > MAX_HOPS {
                    return Err(PathError::TooLong);
                }
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use fib_igp::rib::Route;
    use fib_igp::types::Metric;

    fn r(n: u32) -> RouterId {
        RouterId(n)
    }

    fn fib_via(entries: &[(Prefix, &[FwAddr])]) -> Fib {
        let mut f = Fib::new();
        for (p, hops) in entries {
            f.entries.insert(*p, FibEntry::Via(hops.to_vec()));
        }
        f
    }

    fn fib_local(p: Prefix) -> Fib {
        let mut f = Fib::new();
        f.entries.insert(p, FibEntry::Local);
        f
    }

    #[test]
    fn install_from_route_table() {
        let mut table = RouteTable::empty(r(1));
        table.routes.insert(
            Prefix::net24(1),
            Route {
                dist: Metric(2),
                nexthops: vec![FwAddr::primary(r(2))],
                local: false,
            },
        );
        table.routes.insert(
            Prefix::net24(2),
            Route {
                dist: Metric(0),
                nexthops: vec![],
                local: true,
            },
        );
        let mut fib = Fib::new();
        fib.install(&table);
        assert_eq!(fib.len(), 2);
        assert_eq!(fib.lookup(Prefix::net24(2)), Some(&FibEntry::Local));
        assert!(matches!(
            fib.lookup(Prefix::net24(1)),
            Some(FibEntry::Via(v)) if v.len() == 1
        ));
    }

    #[test]
    fn install_diff_reports_exact_changes() {
        let route = |to: u32| Route {
            dist: Metric(1),
            nexthops: vec![FwAddr::primary(r(to))],
            local: false,
        };
        let mut t1 = RouteTable::empty(r(1));
        t1.routes.insert(Prefix::net24(1), route(2));
        t1.routes.insert(Prefix::net24(2), route(3));
        let mut fib = Fib::new();
        // First install: everything is new.
        assert_eq!(
            fib.install_diff(&t1),
            vec![Prefix::net24(1), Prefix::net24(2)]
        );
        // Identical re-install: nothing changed.
        assert!(fib.install_diff(&t1).is_empty());
        // One rewrite, one removal, one addition.
        let mut t2 = RouteTable::empty(r(1));
        t2.routes.insert(Prefix::net24(1), route(9));
        t2.routes.insert(Prefix::net24(3), route(3));
        assert_eq!(
            fib.install_diff(&t2),
            vec![Prefix::net24(1), Prefix::net24(2), Prefix::net24(3)]
        );
        // A route losing all next-hops (and not local) is a removal.
        let mut t3 = t2.clone();
        t3.routes
            .get_mut(&Prefix::net24(3))
            .unwrap()
            .nexthops
            .clear();
        assert_eq!(fib.install_diff(&t3), vec![Prefix::net24(3)]);
        assert_eq!(fib.len(), 1);
    }

    #[test]
    fn lookup_uses_longest_prefix() {
        let wide = Prefix::new(0x0A00_0000, 8);
        let narrow = Prefix::net24(1);
        let mut f = Fib::new();
        f.entries
            .insert(wide, FibEntry::Via(vec![FwAddr::primary(r(9))]));
        f.entries
            .insert(narrow, FibEntry::Via(vec![FwAddr::primary(r(2))]));
        match f.lookup(Prefix::net24(1)) {
            Some(FibEntry::Via(v)) => assert_eq!(v[0].router, r(2)),
            other => panic!("unexpected {other:?}"),
        }
        // An address under the wide prefix but not the narrow one.
        match f.lookup(Prefix::new(0x0A05_0000, 24)) {
            Some(FibEntry::Via(v)) => assert_eq!(v[0].router, r(9)),
            other => panic!("unexpected {other:?}"),
        }
    }

    #[test]
    fn path_resolution_follows_fibs() {
        let p = Prefix::net24(1);
        let mut fibs = BTreeMap::new();
        fibs.insert(r(1), fib_via(&[(p, &[FwAddr::primary(r(2))])]));
        fibs.insert(r(2), fib_via(&[(p, &[FwAddr::primary(r(3))])]));
        fibs.insert(r(3), fib_local(p));
        let flow = FlowKey {
            src: r(1),
            dst: p,
            id: 1,
        };
        let path = resolve_path(&fibs, &flow).unwrap();
        assert_eq!(
            path,
            vec![LinkKey::new(r(1), r(2)), LinkKey::new(r(2), r(3))]
        );
    }

    #[test]
    fn missing_route_is_reported() {
        let p = Prefix::net24(1);
        let mut fibs = BTreeMap::new();
        fibs.insert(r(1), fib_via(&[(p, &[FwAddr::primary(r(2))])]));
        fibs.insert(r(2), Fib::new());
        let flow = FlowKey {
            src: r(1),
            dst: p,
            id: 1,
        };
        assert_eq!(resolve_path(&fibs, &flow), Err(PathError::NoRoute(r(2))));
    }

    #[test]
    fn loops_are_detected() {
        let p = Prefix::net24(1);
        let mut fibs = BTreeMap::new();
        fibs.insert(r(1), fib_via(&[(p, &[FwAddr::primary(r(2))])]));
        fibs.insert(r(2), fib_via(&[(p, &[FwAddr::primary(r(1))])]));
        let flow = FlowKey {
            src: r(1),
            dst: p,
            id: 1,
        };
        assert_eq!(resolve_path(&fibs, &flow), Err(PathError::Loop(r(1))));
    }

    #[test]
    fn ecmp_slots_split_flows() {
        // r1 has 3 slots: [r2, r3#1, r3#2] → r3 should receive roughly
        // two thirds of many flows.
        let p = Prefix::net24(1);
        let mut fibs = BTreeMap::new();
        fibs.insert(
            r(1),
            fib_via(&[(
                p,
                &[
                    FwAddr::primary(r(2)),
                    FwAddr::secondary(r(3), 1),
                    FwAddr::secondary(r(3), 2),
                ][..],
            )]),
        );
        fibs.insert(r(2), fib_local(p));
        fibs.insert(r(3), fib_local(p));
        let mut via3 = 0;
        let n = 3000;
        for id in 0..n {
            let flow = FlowKey {
                src: r(1),
                dst: p,
                id,
            };
            let path = resolve_path(&fibs, &flow).unwrap();
            if path[0].to == r(3) {
                via3 += 1;
            }
        }
        let frac = via3 as f64 / n as f64;
        assert!(
            (frac - 2.0 / 3.0).abs() < 0.05,
            "expected ~2/3 via r3, got {frac}"
        );
    }
}
