//! Time-series recording for figures and experiments.
//!
//! The recorder stores named series of `(seconds, value)` points and
//! exports long-format CSV (`series,time,value`) — the format the
//! benchmark harness turns into the paper's figures.

use fib_igp::time::Timestamp;
use std::collections::BTreeMap;
use std::fmt::Write as _;

/// A named collection of time series.
#[derive(Debug, Clone, Default)]
pub struct Recorder {
    series: BTreeMap<String, Vec<(f64, f64)>>,
}

impl Recorder {
    /// An empty recorder.
    pub fn new() -> Recorder {
        Recorder::default()
    }

    /// Append a point to a series (created on first use).
    pub fn record(&mut self, series: &str, at: Timestamp, value: f64) {
        self.series
            .entry(series.to_string())
            .or_default()
            .push((at.as_secs_f64(), value));
    }

    /// The points of one series.
    pub fn series(&self, name: &str) -> &[(f64, f64)] {
        self.series.get(name).map(|v| v.as_slice()).unwrap_or(&[])
    }

    /// All series names.
    pub fn names(&self) -> Vec<&str> {
        self.series.keys().map(|s| s.as_str()).collect()
    }

    /// Maximum value of a series (`None` if empty/unknown).
    pub fn max(&self, name: &str) -> Option<f64> {
        self.series
            .get(name)?
            .iter()
            .map(|(_, v)| *v)
            .fold(None, |acc, v| Some(acc.map_or(v, |a: f64| a.max(v))))
    }

    /// Mean value of a series over `[from, to)` seconds.
    pub fn mean_over(&self, name: &str, from: f64, to: f64) -> Option<f64> {
        let pts: Vec<f64> = self
            .series
            .get(name)?
            .iter()
            .filter(|(t, _)| *t >= from && *t < to)
            .map(|(_, v)| *v)
            .collect();
        if pts.is_empty() {
            None
        } else {
            Some(pts.iter().sum::<f64>() / pts.len() as f64)
        }
    }

    /// Value at the latest point not after `at_secs`.
    pub fn value_at(&self, name: &str, at_secs: f64) -> Option<f64> {
        self.series
            .get(name)?
            .iter()
            .take_while(|(t, _)| *t <= at_secs)
            .last()
            .map(|(_, v)| *v)
    }

    /// Long-format CSV export (`series,time,value`).
    pub fn to_csv(&self) -> String {
        let mut out = String::from("series,time,value\n");
        for (name, pts) in &self.series {
            for (t, v) in pts {
                let _ = writeln!(out, "{name},{t:.6},{v:.6}");
            }
        }
        out
    }

    /// Render series as a compact ASCII chart (rows = series), used by
    /// examples to visualize Fig. 2-style results in a terminal.
    pub fn ascii_chart(&self, names: &[&str], width: usize, t_max: f64, v_max: f64) -> String {
        let mut out = String::new();
        for name in names {
            let pts = self.series(name);
            let mut row = vec![b' '; width];
            for (t, v) in pts {
                if *t > t_max {
                    continue;
                }
                let x = ((t / t_max) * (width.saturating_sub(1)) as f64) as usize;
                let level = (v / v_max * 8.0).clamp(0.0, 8.0) as usize;
                const BARS: [u8; 9] = [b' ', b'.', b':', b'-', b'=', b'+', b'*', b'#', b'@'];
                row[x.min(width - 1)] = BARS[level];
            }
            let _ = writeln!(out, "{name:>10} |{}|", String::from_utf8_lossy(&row));
        }
        out
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn t(ms: u64) -> Timestamp {
        Timestamp::from_millis(ms)
    }

    #[test]
    fn record_and_query() {
        let mut r = Recorder::new();
        r.record("a", t(0), 1.0);
        r.record("a", t(500), 3.0);
        r.record("a", t(1000), 2.0);
        r.record("b", t(0), 9.0);
        assert_eq!(r.series("a").len(), 3);
        assert_eq!(r.max("a"), Some(3.0));
        assert_eq!(r.max("zzz"), None);
        assert_eq!(r.names(), vec!["a", "b"]);
        assert_eq!(r.value_at("a", 0.7), Some(3.0));
        assert_eq!(r.value_at("a", 0.1), Some(1.0));
        let m = r.mean_over("a", 0.0, 1.1).unwrap();
        assert!((m - 2.0).abs() < 1e-9);
    }

    #[test]
    fn csv_is_long_format() {
        let mut r = Recorder::new();
        r.record("x", t(1000), 5.0);
        let csv = r.to_csv();
        assert!(csv.starts_with("series,time,value\n"));
        assert!(csv.contains("x,1.000000,5.000000"));
    }

    #[test]
    fn ascii_chart_renders_each_series() {
        let mut r = Recorder::new();
        for i in 0..10 {
            r.record("s1", t(i * 100), i as f64);
        }
        let chart = r.ascii_chart(&["s1"], 20, 1.0, 10.0);
        assert!(chart.contains("s1"));
        assert!(chart.contains('|'));
    }
}
