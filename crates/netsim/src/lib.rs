//! # fib-netsim — deterministic data-plane and co-simulation
//!
//! The paper's demo ran on an emulated testbed (Mininet + Quagga).
//! This crate is its simulation substitute, built on the generic
//! `fib-sim-kernel` primitives (cancellable event queue, deadline
//! heap, component registry):
//!
//! * [`events`] — the typed event vocabulary and the one scheduling
//!   path over it (cancellable via `EventId`);
//! * [`handler`] — the component trait ([`handler::EventHandler`])
//!   applications implement, and the [`handler::AppEvent`]s they
//!   receive;
//! * [`context`] — the typed [`context::SimContext`] world handle;
//! * [`link`] — capacitated, delayed, directed links;
//! * [`fib`] — downloaded forwarding tables and hop-by-hop path
//!   resolution with per-router ECMP hashing ([`ecmp`]);
//! * [`dirty`] — dirty-set invalidation tracking and the
//!   prefix → flows reverse index behind incremental recompute;
//! * [`fluid`] — max-min fair bandwidth sharing (the first-order model
//!   of competing TCP flows), with application rate caps;
//! * [`flow`] — traffic flows and notifications;
//! * [`trace`] — time-series recording and CSV export for figures;
//! * [`sim`] — the co-simulation world: real IGP instances exchanging
//!   encoded packets over the links, FIB downloads, SNMP agents fed by
//!   both planes, and pluggable components (the Fibbing controller,
//!   video drivers, baselines).
//!
//! Everything is deterministic: identical inputs produce
//! byte-identical traces (asserted in tests, including against
//! pre-kernel reference traces in `tests/kernel_pin.rs`).

#![warn(missing_docs)]
#![forbid(unsafe_code)]

pub mod context;
pub mod dirty;
pub mod ecmp;
pub mod events;
pub mod fib;
pub mod flow;
pub mod fluid;
pub mod handler;
pub mod link;
pub mod sim;
pub mod trace;

/// Convenient re-exports of the most used items.
pub mod prelude {
    pub use crate::context::SimContext;
    pub use crate::ecmp::{slot_for, FlowKey};
    pub use crate::events::{Event, EventId};
    pub use crate::fib::{resolve_path, Fib, FibEntry, PathError};
    pub use crate::flow::{Flow, FlowId, FlowInfo, FlowSpec};
    pub use crate::fluid::{max_min_allocation, max_min_keyed, Allocation, Allocator, FluidFlow};
    pub use crate::handler::{AppEvent, EventHandler};
    pub use crate::link::{LinkInfo, LinkKey, LinkSpec, LinkState};
    pub use crate::sim::{SettleMode, Sim, SimConfig, SimStats};
    pub use crate::trace::Recorder;
    pub use fib_igp::time::{Dur, Timestamp};
    pub use fib_sim_kernel::ComponentId;
}
